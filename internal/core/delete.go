package core

import (
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// Delete removes one data record matching rec exactly (same coordinates
// and same measure values). If several identical records exist, one of
// them is removed. It returns ErrNotFound when no matching record exists.
//
// Deletion is the natural completion of the paper's "fully dynamic"
// design: directory MDSs and materialized aggregates on the deletion path
// are recomputed exactly (MIN/MAX cannot be maintained incrementally under
// removal), empty nodes are unlinked, oversized supernodes shrink back,
// and a root with a single directory entry is collapsed.
func (t *Tree) Delete(rec cube.Record) error {
	if t.replica {
		return ErrReplica
	}
	if err := t.schema.ValidateRecord(rec); err != nil {
		return err
	}
	t.mu.Lock()
	lsn, err := t.deleteLocked(rec, true)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.waitDurable(lsn)
}

// deleteLocked applies one delete under the tree write lock, appending the
// logical record after the mutation when log is true (see insertLocked).
func (t *Tree) deleteLocked(rec cube.Record, log bool) (uint64, error) {
	recMDS := mds.FromLeaves(rec.Coords)
	found, err := t.deleteFrom(t.root, rec, recMDS)
	if err != nil {
		return 0, err
	}
	if !found {
		t.metrics.deleteMisses.Inc()
		return 0, ErrNotFound
	}
	t.count--
	t.metrics.deletes.Inc()

	// Collapse trivial roots: a directory root with one entry hands the
	// root role to its only child.
	for {
		root, err := t.getNode(t.root)
		if err != nil {
			return 0, err
		}
		if root.leaf || len(root.entries) != 1 {
			break
		}
		child := root.entries[0].Child
		if err := t.dropNode(root.id); err != nil {
			return 0, err
		}
		t.root = child
		t.height--
	}

	// Refresh the root MDS exactly.
	root, err := t.getNode(t.root)
	if err != nil {
		return 0, err
	}
	if len(root.entries) == 0 {
		t.rootMDS = mds.Top(t.schema.Dims())
	} else {
		t.rootMDS, err = root.cover(t.space())
		if err != nil {
			return 0, err
		}
	}
	if !log {
		return 0, nil
	}
	return t.logMutation(walOpDelete, rec)
}

// deleteFrom removes the record from the subtree at id. It probes every
// entry whose MDS contains the record's MDS (entries may overlap, so
// several probes can be necessary) and, once the record is found, repairs
// the entry's MDS and aggregate from the child's exact state.
func (t *Tree) deleteFrom(id nodeID, rec cube.Record, recMDS mds.MDS) (bool, error) {
	n, err := t.getNode(id)
	if err != nil {
		return false, err
	}
	space := t.space()

	if n.leaf {
		for i := range n.entries {
			if recordsEqual(n.entries[i].Rec, rec) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.shrink(&t.cfg)
				t.markDirty(n)
				return true, nil
			}
		}
		return false, nil
	}

	for i := range n.entries {
		e := &n.entries[i]
		contained, err := mds.Contains(space, e.MDS, recMDS)
		if err != nil {
			return false, err
		}
		if !contained {
			continue
		}
		found, err := t.deleteFrom(e.Child, rec, recMDS)
		if err != nil {
			return false, err
		}
		if !found {
			continue
		}
		child, err := t.getNode(e.Child)
		if err != nil {
			return false, err
		}
		if len(child.entries) == 0 {
			if err := t.dropNode(child.id); err != nil {
				return false, err
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			// Repair the entry at its own relevant levels: the exact
			// child cover lifted to the entry's levels is the minimal
			// describing MDS there.
			cover, err := child.cover(space)
			if err != nil {
				return false, err
			}
			e.MDS, err = mds.Adapt(space, cover, e.MDS)
			if err != nil {
				return false, err
			}
			e.Agg = child.aggregate(t.schema.Measures())
		}
		n.shrink(&t.cfg)
		t.markDirty(n)
		return true, nil
	}
	return false, nil
}

// shrink lets a supernode give blocks back once its occupancy allows.
func (n *node) shrink(cfg *Config) {
	want := blocksForEntries(len(n.entries), n.leaf, cfg)
	if want < n.blocks {
		n.blocks = want
	}
}

// recordsEqual compares coordinates and measure values exactly.
func recordsEqual(a, b cube.Record) bool {
	if len(a.Coords) != len(b.Coords) || len(a.Measures) != len(b.Measures) {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	for j := range a.Measures {
		if a.Measures[j] != b.Measures[j] {
			return false
		}
	}
	return true
}
