// Package core implements the DC-tree of Ester, Kohlhammer and Kriegel
// (ICDE 2000): a fully dynamic, X-tree-like index structure for data cubes
// that uses minimum describing sequences (MDSs) over concept hierarchies
// instead of minimum bounding rectangles, and materializes the aggregated
// measure values of every subtree in its directory entries.
//
// The tree supports single-record insertion and deletion with all derived
// information (directory MDSs and materialized aggregates) maintained
// incrementally, and answers general range queries — a contiguous
// hierarchy-level range per dimension, aggregated with SUM, COUNT, AVG,
// MIN or MAX — using the materialized aggregates to stop descending as
// soon as a directory entry is fully contained in the query range.
package core

import (
	"errors"
	"fmt"
	"time"
)

// Config carries the tuning knobs of a DC-tree. The zero value is not
// usable; DefaultConfig returns the values used throughout the paper
// reproduction, and Normalize fills unset fields.
type Config struct {
	// BlockSize is the size of one storage block in bytes. Nodes occupy
	// one block; supernodes occupy consecutive multiples of it.
	BlockSize int

	// DirCapacity is the maximum number of entries of a one-block
	// directory node; a supernode of b blocks holds b×DirCapacity.
	DirCapacity int

	// LeafCapacity is the maximum number of data records of a one-block
	// data node.
	LeafCapacity int

	// MinFillRatio is the balance criterion of the split algorithm: a
	// split is acceptable only if each group receives at least this
	// fraction of the entries (§4.2 "nodes are balanced").
	MinFillRatio float64

	// MaxOverlapRatio is the overlap criterion of the split algorithm: a
	// split is acceptable only if overlap(G1,G2)/extension(G1,G2) does not
	// exceed this fraction (§4.2 "overlap is not too high"). The default
	// matches the X-tree's published 20 % threshold.
	MaxOverlapRatio float64

	// MaxSupernodeBlocks caps supernode growth as a safety valve; at the
	// cap the node accepts an unbalanced topological fallback split
	// instead of growing further. 0 means unlimited.
	MaxSupernodeBlocks int

	// RefineBound controls how eagerly a freshly split node's MDS lowers
	// its relevant levels: after a split, every dimension descends to the
	// finest hierarchy level at which the node's value set still has at
	// most RefineBound values. Lower levels make directory MDSs more
	// precise — more query pruning and more materialized-aggregate hits —
	// at the cost of larger MDSs. 0 selects the default; -1 disables
	// refinement (the relevant level then only decreases via the split
	// dimension itself).
	RefineBound int

	// Materialize controls whether directory entries store the aggregates
	// of their subtrees. Disabling it (ablation) forces every range query
	// to descend to the data nodes, like the X-tree baseline.
	Materialize bool

	// DisableSupernodes forces the split algorithm to fall back to an
	// unbalanced best-effort split instead of creating supernodes
	// (ablation of the X-tree inheritance).
	DisableSupernodes bool

	// FlatChooseSubtree makes the insert path weigh every new attribute
	// value equally instead of geometrically favoring coarse levels
	// (ablation). With it, records scatter across the coarse partition —
	// one new region costs the same as one new customer — and the tree
	// degenerates into unsplittable supernodes; see DESIGN.md §3.1.
	FlatChooseSubtree bool

	// CommitInterval is the group-commit window of a WAL-backed tree
	// (NewDurable/OpenDurable): an acknowledged Insert/Delete waits at most
	// this long for the committer to batch concurrent appends into one
	// fsync. 0 selects the 2 ms default; a negative value disables group
	// commit entirely and fsyncs after every append (the naive baseline —
	// maximally eager, minimally fast). Ignored by trees without a WAL.
	CommitInterval time.Duration

	// CommitBytes closes a group-commit batch early once this many payload
	// bytes are pending, bounding the data at risk inside one window under
	// write bursts. 0 selects the 256 KiB default.
	CommitBytes int

	// CommitAutoTune lets the group committer adapt its window at runtime:
	// the effective interval tracks an EWMA of observed fsync latency (the
	// point where batching amortizes the sync without adding avoidable
	// latency) while sustained single-record batches collapse the window
	// toward zero, so sparse writers pay no idle wait. CommitInterval then
	// serves as the starting value and bounds the adapted window at 8× its
	// setting. Like NodeLayout this is a per-open runtime knob, not
	// persisted in the metadata. Ignored in naive mode (negative
	// CommitInterval) and by trees without a WAL.
	CommitAutoTune bool

	// CheckpointInterval, when positive, makes a WAL-backed tree checkpoint
	// itself in the background at least this often: dirty nodes are written
	// with the fuzzy protocol (writers stall only for the capture and
	// install critical sections) and superseded log segments are dropped.
	// 0 (the default) disables the timer; Flush/Checkpoint remain available.
	CheckpointInterval time.Duration

	// CheckpointDirtyBytes, when positive, triggers a background checkpoint
	// once the estimated dirty footprint (dirty nodes × block size) reaches
	// this many bytes, bounding both recovery replay work and WAL growth
	// under sustained writes. 0 (the default) disables the byte trigger.
	CheckpointDirtyBytes int

	// WALRecordFormat selects how mutation records are encoded into the
	// WAL. Format 2 (the default) logs dictionary registrations as separate
	// delta records so mutations carry compact interned IDs; format 1 is
	// the legacy encoding that re-spells the full per-dimension string
	// paths in every record. Recovery decodes both regardless of this
	// setting, so the knob (and the build writing the log) can change
	// between opens.
	WALRecordFormat int

	// NodeLayout selects how checkpoints encode node payloads. Layout 3
	// (the default) is the fixed-stride flat encoding that memory-mapped
	// reads walk in place without decoding; layout 2 is the legacy varint
	// encoding. Reads decode both regardless of this setting, and the
	// choice is deliberately not persisted in the meta page: an image
	// written by an older build upgrades extent by extent as its nodes are
	// rewritten by later checkpoints.
	NodeLayout int

	// SyncReplication, when positive, makes the group committer withhold
	// write acknowledgements until that many followers have confirmed the
	// commit LSN (1 = semi-synchronous, n = quorum of n). Followers confirm
	// through Tree.ObserveFollowerAck, which the in-process replication
	// source wires to the follower ack path. 0 (the default) acknowledges
	// on local fsync alone — asynchronous replication. Like NodeLayout this
	// is a per-open runtime knob, not persisted in the metadata; it is
	// ignored by trees without a WAL.
	SyncReplication int

	// VersionRetention bounds how many MVCC versions the tree keeps live.
	// Versions are durable (checkpoints persist their overlays, recovery
	// rehydrates them), so without a retention policy history grows until
	// explicitly released. The policy is applied automatically after every
	// Snapshot and at the start of every checkpoint, and on demand through
	// PruneVersions. The zero value disables automatic pruning. Persisted
	// in the metadata blob (v8).
	VersionRetention VersionRetention

	// SyncReplicationTimeout bounds how long a synchronous write waits for
	// follower confirmation. On expiry the write is acknowledged on local
	// durability alone and the dctree_repl_sync_degraded_total counter is
	// incremented — the mode degrades to asynchronous rather than blocking
	// the primary on a dead follower. 0 selects the 1 s default. Ignored
	// when SyncReplication is 0.
	SyncReplicationTimeout time.Duration
}

// VersionRetention is the automatic pruning policy for durable MVCC
// versions (Config.VersionRetention). A version is pruned — released
// exactly as Version.Release would, with a durable release record on
// WAL-backed trees — once it violates either bound. Zero fields impose no
// bound; the zero value keeps every version until explicitly released.
type VersionRetention struct {
	// KeepLast, when positive, retains only the newest KeepLast versions;
	// older ones are pruned.
	KeepLast int

	// MaxAge, when positive, prunes versions whose capture time is further
	// than MaxAge in the past. Recovered versions keep their original
	// capture time when rehydrated from a checkpoint; versions re-captured
	// from the log tail restart the clock at replay time.
	MaxAge time.Duration
}

// active reports whether the policy imposes any bound.
func (r VersionRetention) active() bool { return r.KeepLast > 0 || r.MaxAge > 0 }

// DefaultConfig returns the configuration used by the paper reproduction.
func DefaultConfig() Config {
	return Config{
		BlockSize:          4096,
		DirCapacity:        24,
		LeafCapacity:       48,
		MinFillRatio:       0.35,
		MaxOverlapRatio:    0.20,
		MaxSupernodeBlocks: 64,
		RefineBound:        8,
		Materialize:        true,
		NodeLayout:         3,
		CommitInterval:     2 * time.Millisecond,
		CommitBytes:        256 << 10,

		SyncReplicationTimeout: time.Second,
	}
}

// Errors returned by DC-tree operations.
var (
	ErrBadConfig  = errors.New("dctree: invalid configuration")
	ErrNotFound   = errors.New("dctree: record not found")
	ErrBadQuery   = errors.New("dctree: malformed query MDS")
	ErrCorrupt    = errors.New("dctree: corrupt tree state")
	ErrBadMeasure = errors.New("dctree: measure index out of range")
)

// Normalize fills unset fields from DefaultConfig and validates ranges.
func (c *Config) Normalize() error {
	d := DefaultConfig()
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.DirCapacity == 0 {
		c.DirCapacity = d.DirCapacity
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = d.LeafCapacity
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = d.MinFillRatio
	}
	if c.MaxOverlapRatio == 0 {
		c.MaxOverlapRatio = d.MaxOverlapRatio
	}
	if c.MaxSupernodeBlocks == 0 {
		c.MaxSupernodeBlocks = d.MaxSupernodeBlocks
	}
	if c.RefineBound == 0 {
		c.RefineBound = d.RefineBound
	}
	if c.CommitInterval == 0 {
		c.CommitInterval = d.CommitInterval
	}
	if c.CommitBytes == 0 {
		c.CommitBytes = d.CommitBytes
	}
	if c.WALRecordFormat == 0 {
		c.WALRecordFormat = walFormatIDs
	}
	if c.SyncReplicationTimeout == 0 {
		c.SyncReplicationTimeout = d.SyncReplicationTimeout
	}
	if c.NodeLayout == 0 {
		c.NodeLayout = int(layoutV3)
	}
	switch {
	case c.BlockSize < 256:
		return fmt.Errorf("%w: block size %d < 256", ErrBadConfig, c.BlockSize)
	case c.DirCapacity < 4:
		return fmt.Errorf("%w: directory capacity %d < 4", ErrBadConfig, c.DirCapacity)
	case c.LeafCapacity < 4:
		return fmt.Errorf("%w: leaf capacity %d < 4", ErrBadConfig, c.LeafCapacity)
	case c.MinFillRatio < 0 || c.MinFillRatio > 0.5:
		return fmt.Errorf("%w: min fill ratio %g outside [0,0.5]", ErrBadConfig, c.MinFillRatio)
	case c.MaxOverlapRatio < 0 || c.MaxOverlapRatio > 1:
		return fmt.Errorf("%w: max overlap ratio %g outside [0,1]", ErrBadConfig, c.MaxOverlapRatio)
	case c.MaxSupernodeBlocks < 0:
		return fmt.Errorf("%w: negative supernode cap", ErrBadConfig)
	case c.RefineBound < -1:
		return fmt.Errorf("%w: refine bound below -1", ErrBadConfig)
	case c.CommitBytes < 0:
		return fmt.Errorf("%w: negative commit bytes", ErrBadConfig)
	case c.CheckpointInterval < 0:
		return fmt.Errorf("%w: negative checkpoint interval", ErrBadConfig)
	case c.CheckpointDirtyBytes < 0:
		return fmt.Errorf("%w: negative checkpoint dirty bytes", ErrBadConfig)
	case c.WALRecordFormat != walFormatPaths && c.WALRecordFormat != walFormatIDs:
		return fmt.Errorf("%w: wal record format %d (want 1 or 2)", ErrBadConfig, c.WALRecordFormat)
	case c.NodeLayout != int(layoutV2) && c.NodeLayout != int(layoutV3):
		return fmt.Errorf("%w: node layout %d (want 2 or 3)", ErrBadConfig, c.NodeLayout)
	case c.SyncReplication < 0:
		return fmt.Errorf("%w: negative sync replication ack count", ErrBadConfig)
	case c.VersionRetention.KeepLast < 0:
		return fmt.Errorf("%w: negative version retention keep-last", ErrBadConfig)
	case c.VersionRetention.MaxAge < 0:
		return fmt.Errorf("%w: negative version retention max-age", ErrBadConfig)
	case c.SyncReplicationTimeout < 0:
		return fmt.Errorf("%w: negative sync replication timeout", ErrBadConfig)
	}
	return nil
}
