package core

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// testSchema builds a small TPC-D-like cube: Customer (Region>Nation>Cust),
// Part (Brand>Part), Time (Year>Month) with one measure.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Brand")
	tim := hierarchy.MustNew("Time", "Month", "Year")
	return cube.MustNewSchema([]*hierarchy.Hierarchy{cust, part, tim}, "Price")
}

// genRecords interns n random records into the schema.
func genRecords(t testing.TB, s *cube.Schema, rng *rand.Rand, n int) []cube.Record {
	t.Helper()
	recs := make([]cube.Record, n)
	for i := range recs {
		r, err := s.InternRecord([][]string{
			{fmt.Sprintf("R%d", rng.Intn(4)), fmt.Sprintf("N%d", rng.Intn(12)), fmt.Sprintf("C%d", rng.Intn(300))},
			{fmt.Sprintf("B%d", rng.Intn(8)), fmt.Sprintf("P%d", rng.Intn(200))},
			{fmt.Sprintf("Y%d", rng.Intn(5)), fmt.Sprintf("M%d", rng.Intn(60))},
		}, []float64{math.Round(rng.Float64()*10000) / 100})
		if err != nil {
			t.Fatalf("InternRecord: %v", err)
		}
		recs[i] = r
	}
	return recs
}

// smallConfig forces frequent splits so even small tests exercise the full
// machinery.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.BlockSize = 1024
	cfg.DirCapacity = 6
	cfg.LeafCapacity = 8
	cfg.MaxSupernodeBlocks = 8
	return cfg
}

func newTestTree(t testing.TB, cfg Config) *Tree {
	t.Helper()
	s := testSchema(t)
	tree, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree
}

// randomQuery builds a random valid query MDS over the schema, mimicking
// the paper's generator: per dimension pick a hierarchy level (sometimes
// ALL) and a random subset of values of that level up to the selectivity.
func randomQuery(rng *rand.Rand, s *cube.Schema, selectivity float64) mds.MDS {
	space := s.Space()
	q := make(mds.MDS, len(space))
	for d, h := range space {
		if rng.Intn(6) == 0 {
			q[d] = mds.AllDim()
			continue
		}
		level := rng.Intn(h.Depth())
		vals, _ := h.ValuesAt(level)
		if len(vals) == 0 {
			q[d] = mds.AllDim()
			continue
		}
		k := int(selectivity * float64(len(vals)))
		if k < 1 {
			k = 1
		}
		perm := rng.Perm(len(vals))[:k]
		ids := make([]hierarchy.ID, k)
		for i, p := range perm {
			ids[i] = vals[p]
		}
		hierarchy.SortIDs(ids)
		q[d] = mds.DimSet{Level: level, IDs: ids}
	}
	return q
}

// bruteAgg computes the ground-truth aggregate of a query over records.
func bruteAgg(t testing.TB, s *cube.Schema, recs []cube.Record, q mds.MDS, measure int) cube.Agg {
	t.Helper()
	var agg cube.Agg
	for _, r := range recs {
		ok, err := q.ContainsLeaves(s.Space(), r.Coords)
		if err != nil {
			t.Fatalf("ContainsLeaves: %v", err)
		}
		if ok {
			agg.Add(r.Measures[measure])
		}
	}
	return agg
}

func aggMatches(got, want cube.Agg) bool {
	if got.Count != want.Count {
		return false
	}
	if want.Count == 0 {
		return got == (cube.Agg{})
	}
	return got.Min == want.Min && got.Max == want.Max && floatClose(got.Sum, want.Sum)
}

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	if tree.Count() != 0 || tree.Height() != 1 {
		t.Fatalf("empty tree count=%d height=%d", tree.Count(), tree.Height())
	}
	q := mds.Top(tree.Schema().Dims())
	agg, err := tree.RangeAgg(q, 0)
	if err != nil {
		t.Fatalf("RangeAgg: %v", err)
	}
	if !agg.IsEmpty() {
		t.Fatalf("empty tree agg = %+v", agg)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !tree.RootMDS().Equal(mds.Top(3)) {
		t.Fatalf("root MDS of empty tree = %v", tree.RootMDS())
	}
}

func TestInsertRejectsBadRecords(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	if err := tree.Insert(cube.Record{}); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := tree.Insert(cube.Record{
		Coords:   []hierarchy.ID{hierarchy.MakeID(1, 0), hierarchy.MakeID(0, 0), hierarchy.MakeID(0, 0)},
		Measures: []float64{1},
	}); err == nil {
		t.Fatal("non-leaf coordinate accepted")
	}
}

func TestInsertAndExactQueries(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(1))
	recs := genRecords(t, s, rng, 500)
	for i, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tree.Count() != 500 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d: splits never happened", tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Whole-cube query equals total.
	var want cube.Agg
	for _, r := range recs {
		want.Add(r.Measures[0])
	}
	got, err := tree.RangeAgg(mds.Top(3), 0)
	if err != nil {
		t.Fatalf("RangeAgg: %v", err)
	}
	if !aggMatches(got, want) {
		t.Fatalf("whole-cube agg = %+v, want %+v", got, want)
	}

	// Random queries against brute force, across selectivities and ops.
	for i := 0; i < 300; i++ {
		sel := []float64{0.01, 0.05, 0.25, 0.6}[i%4]
		q := randomQuery(rng, s, sel)
		want := bruteAgg(t, s, recs, q, 0)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query %d mismatch:\n q=%v\n got %+v\nwant %+v", i, q, got, want)
		}
		for _, op := range []cube.Op{cube.Sum, cube.Count, cube.Avg, cube.Min, cube.Max} {
			v, err := tree.RangeQuery(q, op, 0)
			if err != nil {
				t.Fatalf("RangeQuery: %v", err)
			}
			w := want.Value(op)
			if math.IsNaN(w) {
				if !math.IsNaN(v) {
					t.Fatalf("op %v = %g, want NaN", op, v)
				}
			} else if !floatClose(v, w) {
				t.Fatalf("op %v = %g, want %g", op, v, w)
			}
		}
	}
}

func TestMaterializedHits(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(3))
	recs := genRecords(t, s, rng, 800)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// A whole-cube query must answer from the root's materialized entries
	// without visiting every node.
	_, st, err := tree.RangeQueryStats(mds.Top(3), cube.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaterializedHits == 0 {
		t.Fatalf("whole-cube query had no materialized hits: %+v", st)
	}
	if st.NodesVisited != 1 {
		t.Fatalf("whole-cube query visited %d nodes, want 1 (root only)", st.NodesVisited)
	}

	// Broad queries must visit far fewer nodes than the tree has.
	levels, err := tree.LevelStats()
	if err != nil {
		t.Fatal(err)
	}
	totalNodes := 0
	for _, l := range levels {
		totalNodes += l.Nodes
	}
	q := randomQuery(rng, s, 0.5)
	_, st, err = tree.RangeQueryStats(q, cube.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesVisited >= totalNodes {
		t.Fatalf("broad query visited all %d nodes", totalNodes)
	}
}

func TestQueryValidation(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	if _, err := tree.RangeQuery(mds.Top(2), cube.Sum, 0); err == nil {
		t.Fatal("wrong-arity query accepted")
	}
	if _, err := tree.RangeQuery(mds.Top(3), cube.Sum, 5); err == nil {
		t.Fatal("bad measure accepted")
	}
	bad := mds.Top(3)
	bad[0] = mds.DimSet{Level: 0, IDs: nil}
	if _, err := tree.RangeQuery(bad, cube.Sum, 0); err == nil {
		t.Fatal("empty dim set accepted")
	}
}

func TestSupernodesAppear(t *testing.T) {
	// Skewed data — every record in the same region/brand/year — forces
	// high-level splits to fail and supernodes to appear, the Fig. 13
	// phenomenon.
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	s := tree.Schema()
	rng := rand.New(rand.NewSource(7))
	var recs []cube.Record
	for i := 0; i < 600; i++ {
		r, err := s.InternRecord([][]string{
			{"R0", fmt.Sprintf("N%d", rng.Intn(2)), fmt.Sprintf("C%d", rng.Intn(30))},
			{"B0", fmt.Sprintf("P%d", rng.Intn(20))},
			{"Y0", fmt.Sprintf("M%d", rng.Intn(6))},
		}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	levels, err := tree.LevelStats()
	if err != nil {
		t.Fatal(err)
	}
	supers := 0
	for _, l := range levels {
		supers += l.Supernodes
	}
	if supers == 0 {
		t.Skip("no supernodes emerged under this workload (acceptable but unexpected)")
	}
	// Queries stay correct in the presence of supernodes.
	for i := 0; i < 50; i++ {
		q := randomQuery(rng, s, 0.3)
		want := bruteAgg(t, s, recs, q, 0)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query mismatch with supernodes: got %+v want %+v", got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(9))
	recs := genRecords(t, s, rng, 400)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Delete a random half, validating along the way.
	perm := rng.Perm(len(recs))
	deleted := make(map[int]bool)
	for i := 0; i < 200; i++ {
		k := perm[i]
		if err := tree.Delete(recs[k]); err != nil {
			t.Fatalf("Delete %d: %v", k, err)
		}
		deleted[k] = true
		if i%50 == 0 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate after %d deletes: %v", i+1, err)
			}
		}
	}
	if tree.Count() != 200 {
		t.Fatalf("Count = %d", tree.Count())
	}
	var live []cube.Record
	for i, r := range recs {
		if !deleted[i] {
			live = append(live, r)
		}
	}
	for i := 0; i < 100; i++ {
		q := randomQuery(rng, s, 0.25)
		want := bruteAgg(t, s, live, q, 0)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("post-delete query mismatch: got %+v want %+v", got, want)
		}
	}

	// Deleting a vanished record fails.
	if err := tree.Delete(recs[perm[0]]); err != ErrNotFound {
		t.Fatalf("re-delete = %v, want ErrNotFound", err)
	}
	// Mismatched measures fail too.
	ghost := live[0].Clone()
	ghost.Measures[0] += 1
	if err := tree.Delete(ghost); err != ErrNotFound {
		t.Fatalf("ghost delete = %v, want ErrNotFound", err)
	}

	// Drain completely.
	for _, r := range live {
		if err := tree.Delete(r); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if tree.Count() != 0 {
		t.Fatalf("drained count = %d", tree.Count())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate drained: %v", err)
	}
	agg, _ := tree.RangeAgg(mds.Top(3), 0)
	if !agg.IsEmpty() {
		t.Fatalf("drained agg = %+v", agg)
	}
	// The tree remains usable after draining.
	if err := tree.Insert(recs[0]); err != nil {
		t.Fatalf("insert after drain: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after revival: %v", err)
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(21))
	var live []cube.Record
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			r := genRecords(t, s, rng, 1)[0]
			if err := tree.Insert(r); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			live = append(live, r)
		} else {
			k := rng.Intn(len(live))
			if err := tree.Delete(live[k]); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		if step%250 == 249 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("step %d validate: %v", step, err)
			}
			q := randomQuery(rng, s, 0.3)
			want := bruteAgg(t, s, live, q, 0)
			got, err := tree.RangeAgg(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !aggMatches(got, want) {
				t.Fatalf("step %d query mismatch: got %+v want %+v", step, got, want)
			}
		}
	}
}

func TestScan(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(13))
	recs := genRecords(t, s, rng, 120)
	var wantSum float64
	for _, r := range recs {
		tree.Insert(r)
		wantSum += r.Measures[0]
	}
	var gotSum float64
	n := 0
	if err := tree.Scan(func(r cube.Record) bool {
		gotSum += r.Measures[0]
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 120 || !floatClose(gotSum, wantSum) {
		t.Fatalf("scan n=%d sum=%g want %g", n, gotSum, wantSum)
	}
	// Early stop.
	n = 0
	tree.Scan(func(cube.Record) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestAblationsAgreeWithDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := testSchema(t)
	recs := genRecords(t, s, rng, 600)

	build := func(mutate func(*Config)) *Tree {
		cfg := smallConfig()
		mutate(&cfg)
		tree, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		return tree
	}
	base := build(func(*Config) {})
	noMat := build(func(c *Config) { c.Materialize = false })
	noSuper := build(func(c *Config) { c.DisableSupernodes = true })

	for i := 0; i < 100; i++ {
		q := randomQuery(rng, s, 0.2)
		want, err := base.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for name, tree := range map[string]*Tree{"noMaterialize": noMat, "noSupernodes": noSuper} {
			got, err := tree.RangeAgg(q, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !aggMatches(got, want) {
				t.Fatalf("%s disagrees: got %+v want %+v", name, got, want)
			}
		}
	}
	// The no-materialization tree must never report materialized hits.
	_, st, _ := noMat.RangeQueryStats(mds.Top(3), cube.Sum, 0)
	if st.MaterializedHits != 0 {
		t.Fatalf("materialization disabled but hits = %d", st.MaterializedHits)
	}
}

func TestConfigValidation(t *testing.T) {
	s := testSchema(t)
	bad := []Config{
		{BlockSize: 64},
		{DirCapacity: 2},
		{LeafCapacity: 1},
		{MinFillRatio: 0.9},
		{MaxOverlapRatio: 2},
		{MaxSupernodeBlocks: -1},
	}
	for i, cfg := range bad {
		if _, err := New(storage.NewMemStore(4096), s, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// Block size mismatch with store.
	cfg := DefaultConfig()
	cfg.BlockSize = 2048
	if _, err := New(storage.NewMemStore(4096), s, cfg); err == nil {
		t.Error("block size mismatch accepted")
	}
}

func TestPersistenceRoundtrip(t *testing.T) {
	for _, backend := range []string{"mem", "paged"} {
		t.Run(backend, func(t *testing.T) {
			cfg := smallConfig()
			var store storage.Store
			var reopen func() storage.Store
			if backend == "mem" {
				ms := storage.NewMemStore(cfg.BlockSize)
				store = ms
				reopen = func() storage.Store { return ms }
			} else {
				path := filepath.Join(t.TempDir(), "tree.dc")
				ps, err := storage.OpenPagedStore(path, cfg.BlockSize, 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				store = ps
				reopen = func() storage.Store {
					ps.Close()
					ps2, err := storage.OpenPagedStore(path, cfg.BlockSize, 1<<20)
					if err != nil {
						t.Fatal(err)
					}
					return ps2
				}
			}

			s := testSchema(t)
			tree, err := New(store, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			recs := genRecords(t, s, rng, 700)
			for _, r := range recs {
				if err := tree.Insert(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			queries := make([]mds.MDS, 60)
			wants := make([]cube.Agg, len(queries))
			for i := range queries {
				queries[i] = randomQuery(rng, s, 0.2)
				w, err := tree.RangeAgg(queries[i], 0)
				if err != nil {
					t.Fatal(err)
				}
				wants[i] = w
			}

			tree2, err := Open(reopen())
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if tree2.Count() != tree.Count() || tree2.Height() != tree.Height() {
				t.Fatalf("shape after reopen: count %d/%d height %d/%d",
					tree2.Count(), tree.Count(), tree2.Height(), tree.Height())
			}
			if err := tree2.Validate(); err != nil {
				t.Fatalf("Validate reopened: %v", err)
			}
			for i, q := range queries {
				// Queries must be answerable against the reopened tree's
				// own (decoded) dictionaries: re-resolve by value names.
				got, err := tree2.RangeAgg(q, 0)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if !aggMatches(got, wants[i]) {
					t.Fatalf("query %d after reopen: got %+v want %+v", i, got, wants[i])
				}
			}
			// The reopened tree accepts further inserts and deletes.
			extra := genRecordsInto(t, tree2.Schema(), rng, 50)
			for _, r := range extra {
				if err := tree2.Insert(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree2.Validate(); err != nil {
				t.Fatalf("Validate after post-reopen inserts: %v", err)
			}
		})
	}
}

// genRecordsInto is genRecords against an existing (possibly reopened)
// schema.
func genRecordsInto(t testing.TB, s *cube.Schema, rng *rand.Rand, n int) []cube.Record {
	t.Helper()
	recs := make([]cube.Record, n)
	for i := range recs {
		r, err := s.InternRecord([][]string{
			{fmt.Sprintf("R%d", rng.Intn(4)), fmt.Sprintf("N%d", rng.Intn(12)), fmt.Sprintf("C%d", rng.Intn(300))},
			{fmt.Sprintf("B%d", rng.Intn(8)), fmt.Sprintf("P%d", rng.Intn(200))},
			{fmt.Sprintf("Y%d", rng.Intn(5)), fmt.Sprintf("M%d", rng.Intn(60))},
		}, []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	return recs
}

func TestEvictCacheAndRefault(t *testing.T) {
	cfg := smallConfig()
	store := storage.NewMemStore(cfg.BlockSize)
	s := testSchema(t)
	tree, err := New(store, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	recs := genRecords(t, s, rng, 300)
	for _, r := range recs {
		tree.Insert(r)
	}
	want, _ := tree.RangeAgg(mds.Top(3), 0)

	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.EvictCache()
	if tree.CachedNodes() != 0 {
		t.Fatalf("cache not empty after flush+evict: %d", tree.CachedNodes())
	}
	store.ResetStats()
	got, err := tree.RangeAgg(mds.Top(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !aggMatches(got, want) {
		t.Fatalf("cold query = %+v want %+v", got, want)
	}
	if store.Stats().Reads == 0 {
		t.Fatal("cold query did not fault nodes from the store")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelStatsShape(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(29))
	for _, r := range genRecords(t, s, rng, 700) {
		tree.Insert(r)
	}
	levels, err := tree.LevelStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != tree.Height() {
		t.Fatalf("levels = %d, height = %d", len(levels), tree.Height())
	}
	if levels[0].Nodes != 1 {
		t.Fatalf("root level has %d nodes", levels[0].Nodes)
	}
	total := 0
	for i, l := range levels {
		if l.Level != i {
			t.Fatalf("level %d labeled %d", i, l.Level)
		}
		if l.Nodes == 0 {
			t.Fatalf("level %d empty", i)
		}
		if l.AvgEntries <= 0 || l.AvgBlocks < 1 {
			t.Fatalf("level %d stats: %+v", i, l)
		}
		total += l.Nodes
	}
	// Leaf level holds all records.
	leaf := levels[len(levels)-1]
	if int64(leaf.Entries) != tree.Count() {
		t.Fatalf("leaf entries %d != count %d", leaf.Entries, tree.Count())
	}
}

func TestSplitDimensionOrder(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	m := mds.MDS{
		{Level: 1, IDs: []hierarchy.ID{hierarchy.MakeID(1, 0)}},
		mds.AllDim(),
		{Level: 0, IDs: []hierarchy.ID{hierarchy.MakeID(0, 0)}},
	}
	order := tree.splitDimensionOrder(m)
	if order[0] != 1 {
		t.Fatalf("ALL dimension must be tried first, got %v", order)
	}
	if order[1] != 0 || order[2] != 2 {
		t.Fatalf("expected level order [1 0 2], got %v", order)
	}
}

func BenchmarkInsert(b *testing.B) {
	cfg := DefaultConfig()
	s := testSchema(b)
	tree, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	recs := genRecordsInto(b, s, rng, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	cfg := DefaultConfig()
	s := testSchema(b)
	tree, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, r := range genRecordsInto(b, s, rng, 20000) {
		tree.Insert(r)
	}
	queries := make([]mds.MDS, 64)
	for i := range queries {
		queries[i] = randomQuery(rng, s, 0.05)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.RangeAgg(queries[i%len(queries)], 0); err != nil {
			b.Fatal(err)
		}
	}
}
