package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// TestConcurrentQueriesDuringInserts exercises the paper's motivating
// scenario: the warehouse stays continuously available for OLAP while
// single-record updates stream in. Run with -race.
func TestConcurrentQueriesDuringInserts(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(41))
	warm := genRecords(t, s, rng, 300)
	stream := genRecords(t, s, rng, 700)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-generate queries: the query workers must not touch the
	// hierarchies' mutable dictionaries while the writer registers values.
	queries := make([]mds.MDS, 200)
	qrng := rand.New(rand.NewSource(43))
	for i := range queries {
		queries[i] = randomQuery(qrng, s, 0.25)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range stream {
			if err := tree.Insert(r); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				q := queries[(i*7+w)%len(queries)]
				agg, err := tree.RangeAgg(q, 0)
				if err != nil {
					errs <- err
					return
				}
				// Monotone sanity: counts are never negative and never
				// exceed the total stream.
				if agg.Count < 0 || agg.Count > int64(len(warm)+len(stream)) {
					errs <- ErrCorrupt
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent workload: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Count() != int64(len(warm)+len(stream)) {
		t.Fatalf("count = %d", tree.Count())
	}
	// Final ground truth.
	all := append(append([]cube.Record(nil), warm...), stream...)
	for i := 0; i < 40; i++ {
		q := queries[i]
		want := bruteAgg(t, s, all, q, 0)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query %d mismatch after concurrent run", i)
		}
	}
}
