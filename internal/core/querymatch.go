package core

import (
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// Allocation-free per-entry match tests for the range-query hot path.
// Semantically identical to mds.Overlap(q, m) > 0 and mds.Contains(q, m),
// but without materializing lifted value sets: each comparison lifts
// individual IDs through the father dictionaries and binary-searches the
// sorted sets.

// matchEntry classifies an entry MDS against the query: whether they
// overlap at all, and whether the query fully contains the entry.
func (t *Tree) matchEntry(q, m mds.MDS) (overlaps, contained bool, err error) {
	space := t.space()
	contained = true
	for d := range q {
		ov, cont, err := dimMatch(space[d], q[d], m[d])
		if err != nil {
			return false, false, err
		}
		if !ov {
			return false, false, nil
		}
		if !cont {
			contained = false
		}
	}
	return true, contained, nil
}

// dimMatch compares one dimension of the query against one dimension of
// an entry MDS.
func dimMatch(h *hierarchy.Hierarchy, q, m mds.DimSet) (overlaps, contained bool, err error) {
	switch {
	case q.Level == hierarchy.LevelALL:
		// Unconstrained dimension: everything overlaps and is contained.
		return true, true, nil
	case m.Level == hierarchy.LevelALL:
		// The entry covers every value of the dimension, the query only
		// some: they overlap, but the query cannot contain the entry.
		return true, false, nil
	case m.Level == q.Level:
		overlaps, contained = intersectAndSubset(m.IDs, q.IDs)
		return overlaps, contained, nil
	case m.Level < q.Level:
		// Entry is finer: lift each entry value to the query's level.
		// The loop ends early only once both answers are settled.
		contained = true
		for _, v := range m.IDs {
			anc, err := h.AncestorAt(v, q.Level)
			if err != nil {
				return false, false, err
			}
			if idMember(q.IDs, anc) {
				overlaps = true
			} else {
				contained = false
			}
			if overlaps && !contained {
				return true, false, nil
			}
		}
		return overlaps, overlaps && contained, nil
	default: // m.Level > q.Level: entry coarser than the query.
		// A coarser entry can never be contained; it overlaps if some
		// query value lifts into the entry's set.
		for _, u := range q.IDs {
			anc, err := h.AncestorAt(u, m.Level)
			if err != nil {
				return false, false, err
			}
			if idMember(m.IDs, anc) {
				return true, false, nil
			}
		}
		return false, false, nil
	}
}

// intersectAndSubset reports, for sorted slices, whether a∩b ≠ ∅ and
// whether a ⊆ b in one pass.
func intersectAndSubset(a, b []hierarchy.ID) (intersects, subset bool) {
	subset = true
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			subset = false
			i++
		case a[i] > b[j]:
			j++
		default:
			intersects = true
			i++
			j++
		}
		if intersects && !subset {
			return true, false
		}
	}
	if i < len(a) {
		subset = false
	}
	return intersects, subset && len(a) > 0
}
