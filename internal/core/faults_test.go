package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/storage"
)

// faultStore wraps a Store and fails operations once armed. It injects
// the storage-layer errors the tree must surface without corrupting its
// in-memory state.
type faultStore struct {
	storage.Store
	failReads  bool
	failWrites bool
	failAllocs bool
	failMeta   bool
}

var errInjected = errors.New("injected fault")

func (f *faultStore) Read(id storage.PageID) ([]byte, int, error) {
	if f.failReads {
		return nil, 0, errInjected
	}
	return f.Store.Read(id)
}

func (f *faultStore) Write(id storage.PageID, blocks int, data []byte) error {
	if f.failWrites {
		return errInjected
	}
	return f.Store.Write(id, blocks, data)
}

func (f *faultStore) Alloc(blocks int) (storage.PageID, error) {
	if f.failAllocs {
		return storage.NilPage, errInjected
	}
	return f.Store.Alloc(blocks)
}

func (f *faultStore) SetMeta(data []byte) error {
	if f.failMeta {
		return errInjected
	}
	return f.Store.SetMeta(data)
}

func buildFaultTree(t *testing.T) (*Tree, *faultStore) {
	t.Helper()
	cfg := smallConfig()
	fs := &faultStore{Store: storage.NewMemStore(cfg.BlockSize)}
	s := testSchema(t)
	tree, err := New(fs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for _, r := range genRecords(t, s, rng, 300) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tree, fs
}

func TestFlushSurfacesWriteErrors(t *testing.T) {
	tree, fs := buildFaultTree(t)
	fs.failWrites = true
	if err := tree.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush with failing writes = %v", err)
	}
	// Recovery: clearing the fault lets the same Flush succeed (dirty
	// bookkeeping was not lost).
	fs.failWrites = false
	if err := tree.Flush(); err != nil {
		t.Fatalf("Flush after fault cleared: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after recovery: %v", err)
	}
}

func TestFlushSurfacesAllocAndMetaErrors(t *testing.T) {
	tree, fs := buildFaultTree(t)
	fs.failAllocs = true
	if err := tree.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush with failing allocs = %v", err)
	}
	fs.failAllocs = false
	fs.failMeta = true
	if err := tree.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush with failing meta = %v", err)
	}
	fs.failMeta = false
	if err := tree.Flush(); err != nil {
		t.Fatalf("Flush after faults cleared: %v", err)
	}
}

func TestQuerySurfacesReadErrors(t *testing.T) {
	tree, fs := buildFaultTree(t)
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.EvictCache()
	fs.failReads = true
	q := tree.RootMDS()
	if _, err := tree.RangeAgg(q, 0); !errors.Is(err, errInjected) {
		t.Fatalf("cold query with failing reads = %v", err)
	}
	// Clearing the fault restores service.
	fs.failReads = false
	if _, err := tree.RangeAgg(q, 0); err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after read faults: %v", err)
	}
}

func TestOpenSurfacesCorruptMeta(t *testing.T) {
	cfg := smallConfig()
	store := storage.NewMemStore(cfg.BlockSize)
	s := testSchema(t)
	tree, err := New(store, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(93))
	for _, r := range genRecords(t, s, rng, 100) {
		tree.Insert(r)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, err := store.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere in the metadata must be rejected, never panic.
	for cut := 0; cut < len(meta); cut += 7 {
		store.SetMeta(meta[:cut])
		if _, err := Open(store); err == nil {
			t.Fatalf("Open accepted metadata truncated at %d", cut)
		}
	}
	// Bit flips in the header area must be rejected too.
	for i := 0; i < 16 && i < len(meta); i++ {
		bad := append([]byte(nil), meta...)
		bad[i] ^= 0xFF
		store.SetMeta(bad)
		if _, err := Open(store); err == nil {
			t.Logf("note: header byte %d flip undetected (field tolerant by design)", i)
		}
	}
	// Restoring the original metadata restores the tree.
	store.SetMeta(meta)
	reopened, err := Open(store)
	if err != nil {
		t.Fatalf("Open after restore: %v", err)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("Validate after restore: %v", err)
	}
}

func TestOpenSurfacesCorruptNodes(t *testing.T) {
	cfg := smallConfig()
	store := storage.NewMemStore(cfg.BlockSize)
	s := testSchema(t)
	tree, err := New(store, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(95))
	for _, r := range genRecords(t, s, rng, 400) {
		tree.Insert(r)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}

	// Overwrite every node extent with garbage; reopening parses the
	// metadata fine but the first descent must fail cleanly.
	reopened, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	for id, ref := range reopened.table {
		_ = id
		garbage := make([]byte, 16)
		rng.Read(garbage)
		if err := store.Write(ref.page, ref.blocks, garbage); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reopened.RangeAgg(reopened.RootMDS(), 0); err == nil {
		t.Fatal("query over garbage nodes succeeded")
	}
}
