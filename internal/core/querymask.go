package core

import (
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// queryCtx precomputes, per constrained dimension, a membership mask for
// every hierarchy level at or below the query's level: mask[L][c] reports
// whether the value MakeID(L, c) lies under some query value. Masks are
// built once per query by propagating the query's value set down the
// dense father tables; afterwards every membership test on the descent —
// per directory-entry value and per data record — is a single indexed
// load instead of an ancestor walk plus binary search.
type queryCtx struct {
	q mds.MDS
	// masks[d] is nil for unconstrained (ALL) dimensions; otherwise
	// masks[d][L] is non-nil for 0 ≤ L ≤ q[d].Level.
	masks [][][]bool
}

func (t *Tree) newQueryCtx(q mds.MDS) (*queryCtx, error) {
	space := t.space()
	ctx := &queryCtx{q: q, masks: make([][][]bool, len(q))}
	for d, h := range space {
		lq := q[d].Level
		if lq == hierarchy.LevelALL {
			continue
		}
		levels := make([][]bool, lq+1)
		count, err := h.CountAt(lq)
		if err != nil {
			return nil, err
		}
		top := make([]bool, count)
		for _, id := range q[d].IDs {
			top[id.Code()] = true
		}
		levels[lq] = top
		for l := lq - 1; l >= 0; l-- {
			parents, err := h.ParentTable(l)
			if err != nil {
				return nil, err
			}
			m := make([]bool, len(parents))
			up := levels[l+1]
			for c, p := range parents {
				m[c] = up[p.Code()]
			}
			levels[l] = m
		}
		ctx.masks[d] = levels
	}
	return ctx, nil
}

// recordInRange reports whether a data record lies inside the query range:
// one mask load per constrained dimension.
func (ctx *queryCtx) recordInRange(coords []hierarchy.ID) bool {
	for d, levels := range ctx.masks {
		if levels == nil {
			continue
		}
		c := coords[d]
		// Records may carry values registered after the query context was
		// built (concurrent inserts between queries); treat unknown codes
		// as outside the range, consistent with the query's snapshot.
		m := levels[0]
		if int(c.Code()) >= len(m) || !m[c.Code()] {
			return false
		}
	}
	return true
}

// matchEntry classifies an entry MDS against the query: whether the entry
// overlaps the range at all, and whether the range fully contains it.
func (ctx *queryCtx) matchEntry(t *Tree, m mds.MDS) (overlaps, contained bool, err error) {
	space := t.space()
	contained = true
	for d := range ctx.q {
		levels := ctx.masks[d]
		if levels == nil {
			continue // unconstrained dimension
		}
		e := m[d]
		qd := ctx.q[d]
		if e.Level == hierarchy.LevelALL || levelAboveInt(e.Level, qd.Level) {
			// The entry is coarser than the query: never contained;
			// overlap needs the slow upward path (rare — only while a
			// subtree has not yet refined this dimension).
			ov, _, err := dimMatch(space[d], qd, e)
			if err != nil {
				return false, false, err
			}
			if !ov {
				return false, false, nil
			}
			contained = false
			continue
		}
		// Entry at or below the query level: single mask per value.
		mask := levels[e.Level]
		dimOverlap := false
		dimContained := true
		for _, v := range e.IDs {
			if int(v.Code()) < len(mask) && mask[v.Code()] {
				dimOverlap = true
			} else {
				dimContained = false
			}
			if dimOverlap && !dimContained {
				break
			}
		}
		if !dimOverlap {
			return false, false, nil
		}
		if !dimContained {
			contained = false
		}
	}
	return true, contained, nil
}
