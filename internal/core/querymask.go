package core

import (
	"fmt"

	"github.com/dcindex/dctree/internal/bitmap"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// queryCtx precomputes, per constrained dimension, a membership mask for
// every hierarchy level at or below the query's level: masks[d][L] reports
// whether the value MakeID(L, c) lies under some query value. Masks are
// built once per query by propagating the query's value set down the dense
// father tables; afterwards every membership test on the descent — per
// directory-entry value and per data record — is a single word load.
//
// The masks are word-packed bitmap.Dense bitsets (8× denser than the []bool
// they replace) carved out of two arenas owned by the queryCtx, and whole
// queryCtx values are recycled through the tree's qcPool: a steady-state
// query builds its masks without allocating. Execute releases the context
// back to the pool after the descent — no goroutine may retain it past the
// query (parallel workers are joined before release).
type queryCtx struct {
	q mds.MDS
	// masks[d] is nil for unconstrained (ALL) dimensions; otherwise
	// masks[d][L] is non-nil for 0 ≤ L ≤ q[d].Level.
	masks [][]bitmap.Dense
	// slab is the word arena backing every mask; lvlSlab the arena backing
	// the per-dimension level slices. Both grow to the largest query seen
	// and are reused verbatim afterwards.
	slab    []uint64
	lvlSlab []bitmap.Dense
}

func (t *Tree) newQueryCtx(q mds.MDS) (*queryCtx, error) {
	space := t.space()
	qc, _ := t.qcPool.Get().(*queryCtx)
	if qc == nil {
		qc = &queryCtx{}
		t.metrics.maskPoolMisses.Inc()
	} else {
		t.metrics.maskPoolHits.Inc()
	}
	qc.q = q
	if cap(qc.masks) < len(q) {
		qc.masks = make([][]bitmap.Dense, len(q))
	} else {
		qc.masks = qc.masks[:len(q)]
	}

	// First pass: size the arenas. CountAt is a dictionary lookup, so the
	// extra pass costs nothing next to allocating per-level masks would.
	totalWords, totalLevels := 0, 0
	for d, h := range space {
		lq := q[d].Level
		if lq == hierarchy.LevelALL {
			qc.masks[d] = nil
			continue
		}
		totalLevels += lq + 1
		for l := 0; l <= lq; l++ {
			count, err := h.CountAt(l)
			if err != nil {
				t.putQueryCtx(qc)
				return nil, err
			}
			totalWords += bitmap.DenseWords(count)
		}
	}
	if cap(qc.slab) < totalWords {
		qc.slab = make([]uint64, totalWords)
	} else {
		qc.slab = qc.slab[:totalWords]
		clear(qc.slab)
	}
	if cap(qc.lvlSlab) < totalLevels {
		qc.lvlSlab = make([]bitmap.Dense, totalLevels)
	} else {
		qc.lvlSlab = qc.lvlSlab[:totalLevels]
	}

	// Second pass: carve the masks and propagate the query's value set
	// down the father tables.
	wOff, lOff := 0, 0
	for d, h := range space {
		lq := q[d].Level
		if lq == hierarchy.LevelALL {
			continue
		}
		levels := qc.lvlSlab[lOff : lOff+lq+1 : lOff+lq+1]
		lOff += lq + 1
		for l := 0; l <= lq; l++ {
			count, err := h.CountAt(l)
			if err != nil {
				t.putQueryCtx(qc)
				return nil, err
			}
			w := bitmap.DenseWords(count)
			levels[l] = bitmap.Dense(qc.slab[wOff : wOff+w : wOff+w])
			wOff += w
		}
		top := levels[lq]
		for _, id := range q[d].IDs {
			top.Set(id.Code())
		}
		for l := lq - 1; l >= 0; l-- {
			parents, err := h.ParentTable(l)
			if err != nil {
				t.putQueryCtx(qc)
				return nil, err
			}
			m, up := levels[l], levels[l+1]
			for c, p := range parents {
				if up.Get(p.Code()) {
					m.Set(uint32(c))
				}
			}
		}
		qc.masks[d] = levels
	}
	return qc, nil
}

// putQueryCtx returns a query context's arenas to the pool. The caller must
// guarantee no descent still references it.
func (t *Tree) putQueryCtx(qc *queryCtx) {
	qc.q = nil // do not retain the caller's query MDS
	t.qcPool.Put(qc)
}

// recordInRange reports whether a data record lies inside the query range:
// one mask word load per constrained dimension.
func (ctx *queryCtx) recordInRange(coords []hierarchy.ID) bool {
	for d, levels := range ctx.masks {
		if levels == nil {
			continue
		}
		// Records may carry values registered after the query context was
		// built (concurrent inserts between queries); Dense.Get treats
		// codes beyond the mask as outside the range, consistent with the
		// query's snapshot.
		if !levels[0].Get(coords[d].Code()) {
			return false
		}
	}
	return true
}

// recordInRangeFlat is recordInRange over a flat node's data entry i: the
// coordinates are read straight from the mapped bytes, one mask word load
// per constrained dimension, no record materialization.
func (ctx *queryCtx) recordInRangeFlat(f *flatNode, i int) bool {
	for d, levels := range ctx.masks {
		if levels == nil {
			continue
		}
		if !levels[0].Get(f.coord(i, d).Code()) {
			return false
		}
	}
	return true
}

// matchEntryFlat is matchEntry over a flat node's entry i: the entry's MDS
// is walked in its wire encoding via a view iterator, testing each ID
// against the query masks in place. Only the rare coarser-than-query
// dimension materializes a DimSet for the slow upward path. A malformed
// encoding surfaces as ErrCorrupt — the descent plumbs entry-match errors
// already.
func (ctx *queryCtx) matchEntryFlat(t *Tree, f *flatNode, i int) (overlaps, contained bool, err error) {
	it, err := mds.NewViewIter(f.entryMDS(i))
	if err != nil || it.Dims() != len(ctx.q) {
		return false, false, fmt.Errorf("%w: node %d entry %d mds", ErrCorrupt, f.id, i)
	}
	space := t.space()
	contained = true
	for d := range ctx.q {
		dv, ok := it.Next()
		if !ok {
			return false, false, fmt.Errorf("%w: node %d entry %d mds dim %d", ErrCorrupt, f.id, i, d)
		}
		levels := ctx.masks[d]
		if levels == nil {
			continue // unconstrained dimension; still consumed above
		}
		qd := ctx.q[d]
		if dv.IsALL() || levelAboveInt(dv.Level, qd.Level) {
			ov, _, err := dimMatch(space[d], qd, dv.DimSet())
			if err != nil {
				return false, false, err
			}
			if !ov {
				return false, false, nil
			}
			contained = false
			continue
		}
		// dv.Level ≤ qd.Level here, so the mask exists: single word per value.
		mask := levels[dv.Level]
		dimOverlap := false
		dimContained := true
		for j, n := 0, dv.Len(); j < n; j++ {
			if mask.Get(dv.ID(j).Code()) {
				dimOverlap = true
			} else {
				dimContained = false
			}
			if dimOverlap && !dimContained {
				break
			}
		}
		if !dimOverlap {
			return false, false, nil
		}
		if !dimContained {
			contained = false
		}
	}
	return true, contained, nil
}

// matchEntry classifies an entry MDS against the query: whether the entry
// overlaps the range at all, and whether the range fully contains it.
func (ctx *queryCtx) matchEntry(t *Tree, m mds.MDS) (overlaps, contained bool, err error) {
	space := t.space()
	contained = true
	for d := range ctx.q {
		levels := ctx.masks[d]
		if levels == nil {
			continue // unconstrained dimension
		}
		e := m[d]
		qd := ctx.q[d]
		if e.Level == hierarchy.LevelALL || levelAboveInt(e.Level, qd.Level) {
			// The entry is coarser than the query: never contained;
			// overlap needs the slow upward path (rare — only while a
			// subtree has not yet refined this dimension).
			ov, _, err := dimMatch(space[d], qd, e)
			if err != nil {
				return false, false, err
			}
			if !ov {
				return false, false, nil
			}
			contained = false
			continue
		}
		// Entry at or below the query level: single mask word per value.
		mask := levels[e.Level]
		dimOverlap := false
		dimContained := true
		for _, v := range e.IDs {
			if mask.Get(v.Code()) {
				dimOverlap = true
			} else {
				dimContained = false
			}
			if dimOverlap && !dimContained {
				break
			}
		}
		if !dimOverlap {
			return false, false, nil
		}
		if !dimContained {
			contained = false
		}
	}
	return true, contained, nil
}
