package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// MVCC snapshots.
//
// A Version is a cheap, immutable, named snapshot of the whole tree,
// generalizing what fuzzy-checkpoint capture already does internally: under
// one short hold of the tree write lock, Snapshot copies the node→extent
// translation table, encodes the payload of every node that is dirty (its
// in-memory state is newer than its extent) into a copy-on-write overlay,
// and pins every extent the table references so later checkpoint installs
// park their frees instead of returning the extents to the allocator.
//
// From then on the version is self-contained: an as-of query resolves every
// node through the overlay first and the pinned extents second, decoding
// into the version's own node cache — it never touches the live table, the
// live node cache, or the tree lock. Long OLAP scans pinned to a version
// therefore run concurrently with inserts, deletes and checkpoints, which
// is the paper's motivating warehouse scenario taken one step further.
//
// Durability: live versions survive checkpoints, crashes and clean
// restarts. On a WAL-backed tree every Snapshot appends a version record
// (walOpVersion) whose LSN defines the snapshot point, group-committed
// before Snapshot returns; crash recovery re-captures versions whose
// records are still in the log tail. Versions older than the last
// checkpoint are not lost when the log truncates: every checkpoint writes
// each live version's overlay payloads into checksummed storage extents
// and records a per-version manifest (table, pins, identity) in the
// metadata blob (v8), and recovery rehydrates those versions from the
// manifest BEFORE replaying the log tail. Release is durable too — it
// appends a walOpVersionRelease record, so a released version cannot
// resurrect from a stale manifest after a crash.
//
// A version therefore disappears only through explicit Release or the
// retention policy (Config.VersionRetention: keep-last-N and/or max-age,
// applied after snapshots and at checkpoint start, or on demand through
// PruneVersions) — never through WAL truncation. The version-number mint
// is persisted in the metadata blob (since v5), so numbers stay unique
// across restarts.

// ErrVersionReleased reports a query against a version handle whose
// Release has already run (or whose tree no longer knows it).
var ErrVersionReleased = errors.New("dctree: version has been released")

// ErrVersionForeign reports a version handle used against a tree other
// than the one that created it.
var ErrVersionForeign = errors.New("dctree: version belongs to a different tree")

// Version is one pinned MVCC snapshot. Handles are safe for concurrent
// use; queries against a version run without the tree lock. Release the
// handle when done — a live version pins the storage extents it reads,
// keeping them out of the allocator — or configure VersionRetention to
// prune automatically.
type Version struct {
	t       *Tree
	id      uint64
	lsn     uint64
	created time.Time

	root    nodeID
	rootMDS mds.MDS
	height  int
	count   int64
	table   map[nodeID]extentRef // immutable after capture
	overlay map[nodeID][]byte    // encoded payloads of nodes dirty at capture
	// pinned holds the extents of the captured table, pinned in t.pins. It
	// is immutable after capture: release unpins the pages but never
	// mutates the slice, so lock-free readers (Versions) stay race-free.
	pinned []storage.PageID

	// Durable-overlay state, written by checkpoint installs under t.mu:
	// once a checkpoint has persisted the version's overlay payloads into
	// extents, ovExtents maps each overlay node to its extent (merged over
	// table in the persisted manifest), ovPinned holds those extents' pins,
	// and persisted latches so later checkpoints only re-encode the
	// manifest instead of rewriting payloads (atomic so tooling can read it
	// lock-free).
	ovExtents map[nodeID]extentRef
	ovPinned  []storage.PageID
	persisted atomic.Bool

	// pinCount mirrors len(pinned)+len(ovPinned) for lock-free reporting.
	pinCount atomic.Int64

	// nc caches nodes decoded from the overlay or the pinned extents. It is
	// private to the version: the tree's own cache holds live nodes that
	// writers mutate in place under the tree lock.
	nc *nodeCache

	// refs counts the handle itself plus every in-flight query; the drop to
	// zero unpins the extents. released latches the one Release call.
	refs     atomic.Int64
	released atomic.Bool
}

// ID returns the version number. Numbers are minted monotonically and are
// unique for the lifetime of the index, across restarts.
func (v *Version) ID() uint64 { return v.id }

// LSN returns the WAL position that defines the snapshot point (0 on trees
// without a WAL).
func (v *Version) LSN() uint64 { return v.lsn }

// Count returns the number of live data records the version captured.
func (v *Version) Count() int64 { return v.count }

// CreatedAt returns when the snapshot was captured. Versions rehydrated
// from a checkpoint manifest keep their original capture time; versions
// re-captured from the log tail report the replay time.
func (v *Version) CreatedAt() time.Time { return v.created }

// Released reports whether the handle has been released.
func (v *Version) Released() bool { return v.released.Load() }

// acquire takes a query reference; it fails once the version is released.
func (v *Version) acquire() error {
	if v.released.Load() {
		return ErrVersionReleased
	}
	for {
		r := v.refs.Load()
		if r <= 0 {
			return ErrVersionReleased
		}
		if v.refs.CompareAndSwap(r, r+1) {
			// Release may have latched between the Load and the CAS; the
			// reference taken here keeps the extents pinned either way, so
			// an in-flight query still completes safely.
			return nil
		}
	}
}

// unref drops one reference; the last drop returns the pinned extents.
func (v *Version) unref() {
	if v.refs.Add(-1) == 0 {
		v.t.mu.Lock()
		v.t.releaseVersionExtentsLocked(v)
		v.t.mu.Unlock()
	}
}

// Release ends the version's life: a release record is appended to the WAL
// (so the version cannot rehydrate from an older checkpoint manifest after
// a crash), the handle is removed from the tree's registry and, once any
// in-flight queries drain, its extent pins are dropped — frees that
// checkpoints parked behind them are queued and execute after the next
// durable metadata swap. Releasing twice returns ErrVersionReleased.
func (v *Version) Release() error {
	lsn, err := v.release()
	if err != nil {
		return err
	}
	return v.t.waitDurable(lsn)
}

// release latches the version released and performs the in-memory release
// under t.mu, returning the LSN of the release record to wait on (0 when
// the tree has no WAL, or when the log is already poisoned — the in-memory
// release proceeds regardless; a resurrected version after a crash is
// re-releasable).
func (v *Version) release() (uint64, error) {
	if v.released.Swap(true) {
		return 0, ErrVersionReleased
	}
	t := v.t
	t.mu.Lock()
	var lsn uint64
	if t.wal != nil {
		if l, err := t.wal.append(encodeVersionReleaseRecord(v.id)); err == nil {
			lsn = l
		}
	}
	t.versionGen++
	t.finishReleaseLocked(v)
	t.mu.Unlock()
	return lsn, nil
}

// finishReleaseLocked completes a release whose released latch is already
// set: the registry entry goes, the handle's reference is dropped, and if
// no query is in flight the pins are returned. Caller holds t.mu.
func (t *Tree) finishReleaseLocked(v *Version) {
	t.vmu.Lock()
	if cur, ok := t.versions[v.id]; ok && cur == v {
		delete(t.versions, v.id)
	}
	t.vmu.Unlock()
	if v.refs.Add(-1) == 0 {
		t.releaseVersionExtentsLocked(v)
	}
}

// releaseVersionReplayLocked releases the version named by a replayed
// walOpVersionRelease record, tolerating versions that are not live (the
// release may shadow a version whose snapshot record the same replay never
// saw, or one already released). Called by ApplyReplicated under t.mu and
// by single-threaded crash recovery.
func (t *Tree) releaseVersionReplayLocked(id uint64) {
	t.vmu.Lock()
	v := t.versions[id]
	t.vmu.Unlock()
	if v == nil || v.released.Swap(true) {
		return
	}
	t.versionGen++
	t.finishReleaseLocked(v)
}

// getNode resolves a node as of the version: overlay payloads win over the
// pinned extents (the overlay holds the strictly newer in-memory state of
// nodes that were dirty at capture). Decoded nodes are cached in the
// version's private cache with the same singleflight discipline as the live
// read path. Version implements nodeSource.
func (v *Version) getNode(id nodeID) (*node, error) {
	if n := v.nc.get(id); n != nil {
		v.t.metrics.cacheHits.Inc()
		return n, nil
	}
	v.t.metrics.cacheMisses.Inc()
	n, shared, err := v.nc.fault(id, func() (*node, error) { return v.loadNode(id) })
	if shared {
		v.t.metrics.cacheFaultsShared.Inc()
	}
	return n, err
}

func (v *Version) loadNode(id nodeID) (*node, error) {
	if payload, ok := v.overlay[id]; ok {
		// Overlays are always encoded in v2 (snapshotLocked captures dirty
		// nodes with appendEncode).
		return decodeNode(id, payload, v.t.schema.Dims(), v.t.schema.Measures())
	}
	ref, ok := v.table[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d has no extent in version %d", ErrCorrupt, id, v.id)
	}
	payload, _, err := v.t.store.Read(ref.page)
	if err != nil {
		return nil, fmt.Errorf("dctree: reading node %d of version %d: %w", id, v.id, err)
	}
	if ref.layout == layoutV3 {
		return decodeFlatNode(id, payload, v.t.schema.Dims(), v.t.schema.Measures())
	}
	return decodeNode(id, payload, v.t.schema.Dims(), v.t.schema.Measures())
}

// getView resolves a node for a read-only as-of descent: nodes already
// decoded into the version's private cache (and overlay nodes, which have
// no extent) come back as heap nodes; clean layout-v3 extents are served
// as zero-copy flatNode views. The view's lifetime is bounded by the
// query's reference on the version — the pinned extent cannot be freed and
// rewritten while the version holds its pin, even across checkpoint
// installs. Version implements nodeSource.
func (v *Version) getView(id nodeID) (nodeView, error) {
	if n := v.nc.get(id); n != nil {
		v.t.metrics.cacheHits.Inc()
		return nodeView{n: n}, nil
	}
	if v.t.viewer != nil && !v.t.noZeroCopy.Load() {
		if _, inOverlay := v.overlay[id]; !inOverlay {
			if ref, ok := v.table[id]; ok && ref.layout == layoutV3 {
				if payload, _, err := v.t.viewer.ViewExtent(ref.page); err == nil {
					f, ferr := makeFlatNode(id, payload, v.t.schema.Dims(), v.t.schema.Measures())
					if ferr != nil {
						return nodeView{}, ferr
					}
					v.t.metrics.flatNodeReads.Inc()
					return nodeView{f: f}, nil
				}
			}
		}
	}
	v.t.metrics.decodeFallbacks.Inc()
	n, err := v.getNode(id)
	return nodeView{n: n}, err
}

// Scan streams every data record of the version to fn in unspecified
// order; fn returning false stops the scan. Like as-of queries it runs
// without the tree lock.
func (v *Version) Scan(fn func(cube.Record) bool) error {
	if err := v.acquire(); err != nil {
		return err
	}
	defer v.unref()
	_, err := v.t.scanNode(v, v.root, fn)
	return err
}

// EvictCache drops the version's decoded-node cache; subsequent as-of
// queries fault nodes back from the overlay and the pinned extents. For
// long-lived versions on memory-constrained serving paths.
func (v *Version) EvictCache() {
	v.nc.evictClean()
}

// Snapshot captures a new version of the tree under one short hold of the
// write lock: the translation table is copied, dirty nodes are encoded into
// the overlay, and every table extent is pinned against later checkpoint
// frees. On a WAL-backed tree the version record is group-committed before
// Snapshot returns. The version is durable: checkpoints persist its
// overlay into storage extents and its manifest into the metadata blob, so
// it survives crashes and restarts until released or pruned by the
// retention policy (which is applied before returning).
func (t *Tree) Snapshot() (*Version, error) {
	// Replicas reconstruct the primary's versions from replicated version
	// records; minting local version numbers would collide with them.
	if t.replica {
		return nil, ErrReplica
	}
	t.mu.Lock()
	v, err := t.snapshotLocked(0, 0)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := t.waitDurable(v.lsn); err != nil {
		_ = v.Release()
		return nil, err
	}
	t.PruneVersions()
	return v, nil
}

// snapshotLocked captures a version. Caller holds t.mu. A zero versionID
// mints the next number and (on a WAL-backed tree) appends a version record
// whose LSN becomes the snapshot point; a nonzero versionID re-captures a
// recovered version at the given replay LSN without logging.
//
// The overlay is captured BEFORE the version record is appended: a capture
// failure (e.g. a dirty node that lost residency) must not leave an orphan
// record in the log for recovery to trip over. Both happen under the same
// t.mu hold, so the record's LSN still identifies exactly the captured
// state.
func (t *Tree) snapshotLocked(versionID, lsn uint64) (*Version, error) {
	mint := versionID == 0
	if mint {
		versionID = t.versionSeq + 1
	}

	v := &Version{
		t:       t,
		id:      versionID,
		lsn:     lsn,
		created: time.Now(),
		root:    t.root,
		rootMDS: t.rootMDS.Clone(),
		height:  t.height,
		count:   t.count,
		table:   make(map[nodeID]extentRef, len(t.table)),
		overlay: make(map[nodeID][]byte),
		nc:      newNodeCache(),
	}
	v.refs.Store(1)

	// Copy-on-write overlay: a dirty node's extent (if any) is stale, so
	// its current state is captured by value now. Writers keep mutating the
	// live *node afterwards; the encoded payload here no longer changes.
	for _, e := range t.nc.dirtySnapshot() {
		n := t.nc.get(e.id)
		if n == nil {
			if _, inTable := t.table[e.id]; inTable {
				return nil, fmt.Errorf("%w: node %d is dirty but not resident", ErrCorrupt, e.id)
			}
			continue // leftover flag with no state behind it
		}
		v.overlay[e.id] = n.appendEncode(nil, t.schema.Dims(), t.schema.Measures())
	}

	// The capture succeeded; only now does the version record enter the
	// log. An append failure leaves no side effects behind (no pins, no
	// registry entry, no record).
	if mint && t.wal != nil {
		recLSN, err := t.wal.append(encodeVersionRecord(versionID))
		if err != nil {
			return nil, err
		}
		v.lsn = recLSN
	}
	if versionID > t.versionSeq {
		t.versionSeq = versionID
	}

	// Registry collision: a live version with the same number is possible
	// on the replica re-capture path (a restarted follower replaying a
	// mirror range that overlaps versions restored from its checkpoint).
	// Displacing it silently would leak its extent pins forever — release
	// it properly first.
	t.vmu.Lock()
	displaced := t.versions[versionID]
	t.vmu.Unlock()
	if displaced != nil && !displaced.released.Swap(true) {
		t.finishReleaseLocked(displaced)
	}

	// Pin the captured table's extents so checkpoint installs park their
	// frees while this version is live. Nodes covered by the overlay do not
	// need their extents, but pinning uniformly keeps the invariant simple:
	// everything the version's table references stays readable.
	v.pinned = make([]storage.PageID, 0, len(t.table))
	for id, ref := range t.table {
		v.table[id] = ref
		if t.pins.Pin(ref.page) {
			v.pinned = append(v.pinned, ref.page)
		}
	}
	v.pinCount.Store(int64(len(v.pinned)))

	t.latestVersionID = versionID
	t.latestVersionLSN = v.lsn
	t.versionGen++

	t.vmu.Lock()
	t.versions[versionID] = v
	t.vmu.Unlock()

	t.metrics.snapshots.Inc()
	t.metrics.snapshotOverlayNodes.Add(int64(len(v.overlay)))
	return v, nil
}

// releaseVersionExtentsLocked drops the version's extent pins. Frees that
// checkpoints parked behind the pins come due here, but are NOT executed
// immediately: the last durable metadata blob may still reference the
// extents through the version's manifest, so they join the pending-free
// list and are returned to the allocator only after the next durable swap
// (ordinary shadow-paging discipline). Caller holds t.mu.
func (t *Tree) releaseVersionExtentsLocked(v *Version) {
	for _, pages := range [2][]storage.PageID{v.pinned, v.ovPinned} {
		for _, page := range pages {
			ext, due := t.pins.Unpin(page)
			if !due {
				continue
			}
			t.pendingFree = append(t.pendingFree, extentRef{page: ext.Page, blocks: ext.Blocks})
		}
	}
	t.metrics.snapshotReleases.Inc()
}

// PruneVersions applies the tree's configured retention policy
// (Config.VersionRetention), releasing every version beyond it, and
// returns the pruned version numbers. A nil/zero policy prunes nothing.
func (t *Tree) PruneVersions() []uint64 {
	return t.PruneVersionsPolicy(t.cfg.VersionRetention)
}

// PruneVersionsPolicy applies an explicit retention policy: versions older
// than the newest KeepLast, or captured more than MaxAge ago, are released
// exactly as Version.Release would release them (durable release records
// on WAL-backed trees; one combined durability wait covers them all).
// Returns the pruned version numbers, oldest first.
func (t *Tree) PruneVersionsPolicy(r VersionRetention) []uint64 {
	if !r.active() {
		return nil
	}
	infos := t.Versions()
	cut := make(map[uint64]bool)
	if r.KeepLast > 0 && len(infos) > r.KeepLast {
		for _, vi := range infos[:len(infos)-r.KeepLast] {
			cut[vi.ID] = true
		}
	}
	if r.MaxAge > 0 {
		dead := time.Now().Add(-r.MaxAge)
		for _, vi := range infos {
			if vi.CreatedAt.Before(dead) {
				cut[vi.ID] = true
			}
		}
	}
	var pruned []uint64
	var maxLSN uint64
	for _, vi := range infos {
		if !cut[vi.ID] {
			continue
		}
		v, ok := t.VersionByID(vi.ID)
		if !ok {
			continue
		}
		lsn, err := v.release()
		if err != nil {
			continue // raced with an explicit Release; nothing to do
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		pruned = append(pruned, vi.ID)
	}
	if len(pruned) > 0 {
		t.metrics.versionsPruned.Add(int64(len(pruned)))
		_ = t.waitDurable(maxLSN)
	}
	return pruned
}

// VersionInfo describes one live version for tooling.
type VersionInfo struct {
	ID        uint64    // version number
	LSN       uint64    // WAL position of the snapshot point (0 without a WAL)
	Records   int64     // live data records at capture
	Overlay   int       // nodes captured by value (dirty at snapshot time)
	Pinned    int       // storage extents the version pins
	Persisted bool      // overlay persisted into extents by a checkpoint
	CreatedAt time.Time // capture (or recovery re-capture) time
}

// LatestVersion reports the most recent snapshot's stamps as persisted in
// the metadata (since v5): its version number and the WAL LSN of its
// record. Zero values mean no snapshot was ever taken. The stamped version
// is not necessarily live — it may have been released or pruned.
func (t *Tree) LatestVersion() (id, lsn uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.latestVersionID, t.latestVersionLSN
}

// Versions lists the live versions, oldest number first.
func (t *Tree) Versions() []VersionInfo {
	t.vmu.Lock()
	infos := make([]VersionInfo, 0, len(t.versions))
	for _, v := range t.versions {
		infos = append(infos, VersionInfo{
			ID:        v.id,
			LSN:       v.lsn,
			Records:   v.count,
			Overlay:   len(v.overlay),
			Pinned:    int(v.pinCount.Load()),
			Persisted: v.persisted.Load(),
			CreatedAt: v.created,
		})
	}
	t.vmu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// VersionByID returns the live version with the given number.
func (t *Tree) VersionByID(id uint64) (*Version, bool) {
	t.vmu.Lock()
	defer t.vmu.Unlock()
	v, ok := t.versions[id]
	return v, ok
}

// ReleaseVersion releases the live version with the given number. It
// returns ErrVersionReleased if no such version is live.
func (t *Tree) ReleaseVersion(id uint64) error {
	v, ok := t.VersionByID(id)
	if !ok {
		return fmt.Errorf("%w: version %d", ErrVersionReleased, id)
	}
	return v.Release()
}
