package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// shipAll replays every record of the primary's live WAL into the replica —
// the in-process equivalent of what repl.Follower does across processes.
func shipAll(t *testing.T, primary, replica *Tree) {
	t.Helper()
	epoch := primary.Epoch()
	if err := primary.wal.w.Replay(func(lsn uint64, payload []byte) error {
		return replica.ApplyReplicated(epoch, lsn, append([]byte(nil), payload...))
	}); err != nil {
		t.Fatalf("shipping: %v", err)
	}
}

func TestReplicaApplyMirrorsPrimary(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	schema := testSchema(t)
	st := storage.NewMemStore(cfg.BlockSize)
	primary, err := NewDurableOpts(st, schema, cfg, dir+"/idx", storage.WALOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	// Bootstrap the follower from the schema blob captured BEFORE any
	// insert registered values: the shipped dict deltas must rebuild the
	// dictionaries on the replica side.
	blob, err := primary.EncodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	rschema, err := DecodeSchema(blob)
	if err != nil {
		t.Fatalf("DecodeSchema: %v", err)
	}
	rstore := storage.NewMemStore(cfg.BlockSize)
	replica, err := NewReplica(rstore, rschema, cfg)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	if !replica.IsReplica() {
		t.Fatal("NewReplica tree does not report IsReplica")
	}

	rng := rand.New(rand.NewSource(42))
	recs := genRecords(t, schema, rng, 400)
	live := make([]cube.Record, 0, len(recs))
	for i, r := range recs {
		if err := primary.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		live = append(live, r)
	}
	// A mid-stream snapshot: its version record must reconstruct on the
	// replica and serve as-of queries at the snapshot point.
	ver, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	countAtSnap := primary.Count()
	// Deletes after the snapshot point.
	for i := 0; i < 50; i++ {
		if err := primary.Delete(live[i]); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	live = live[50:]

	shipAll(t, primary, replica)

	if got, want := replica.Count(), primary.Count(); got != want {
		t.Fatalf("replica count = %d, primary %d", got, want)
	}
	if got, want := replica.AppliedLSN(), primary.wal.w.LastLSN(); got != want {
		t.Fatalf("applied lsn = %d, want %d", got, want)
	}
	verifyAgainstOracle(t, replica, live, 30, 7)

	// The primary's snapshot exists on the replica under the same ID and
	// answers queries at the pre-delete state.
	rv, ok := replica.VersionByID(ver.ID())
	if !ok {
		t.Fatalf("version %d not live on replica", ver.ID())
	}
	var n int64
	if err := rv.Scan(func(cube.Record) bool { n++; return true }); err != nil {
		t.Fatalf("as-of scan: %v", err)
	}
	if n != countAtSnap {
		t.Fatalf("as-of records = %d, want %d", n, countAtSnap)
	}

	// Local mutations are rejected.
	if err := replica.Insert(recs[0]); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica Insert err = %v, want ErrReplica", err)
	}
	if err := replica.Delete(recs[0]); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica Delete err = %v, want ErrReplica", err)
	}
	if err := replica.BulkLoad(recs); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica BulkLoad err = %v, want ErrReplica", err)
	}
	if _, err := replica.Snapshot(); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica Snapshot err = %v, want ErrReplica", err)
	}
}

func TestReplicaCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	schema := testSchema(t)
	primary, err := NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		dir+"/idx", storage.WALOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	rng := rand.New(rand.NewSource(7))
	recs := genRecords(t, schema, rng, 200)
	for _, r := range recs[:120] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	blob, err := primary.EncodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	rschema, err := DecodeSchema(blob)
	if err != nil {
		t.Fatal(err)
	}
	rstore := storage.NewMemStore(cfg.BlockSize)
	replica, err := NewReplica(rstore, rschema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, replica)
	applied := replica.AppliedLSN()
	if applied == 0 {
		t.Fatal("nothing applied")
	}

	// A replica checkpoint persists the applied frontier in place of a WAL
	// LSN; reopening resumes exactly there, and re-shipping the whole log
	// is a no-op for everything at or below it.
	if err := replica.Close(); err != nil {
		t.Fatalf("replica close: %v", err)
	}
	replica, err = OpenReplica(rstore)
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	if got := replica.AppliedLSN(); got != applied {
		t.Fatalf("reopened applied lsn = %d, want %d", got, applied)
	}
	if got, want := replica.Count(), int64(120); got != want {
		t.Fatalf("reopened count = %d, want %d", got, want)
	}
	shipAll(t, primary, replica) // overlapping re-ship: idempotent
	if got, want := replica.Count(), int64(120); got != want {
		t.Fatalf("count after re-ship = %d, want %d", got, want)
	}

	// New primary records continue applying after the restart.
	for _, r := range recs[120:] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, primary, replica)
	if got, want := replica.Count(), primary.Count(); got != want {
		t.Fatalf("final count = %d, primary %d", got, want)
	}
	verifyAgainstOracle(t, replica, recs, 20, 11)
}

func TestDecodeSchemaRejectsCorrupt(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	blob, err := tree.EncodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSchema(blob); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("DCSCHM01"),
		[]byte("NOTMAGIC" + string(blob[8:])),
		blob[:len(blob)-1],
		append(append([]byte(nil), blob...), 0xff),
	} {
		if _, err := DecodeSchema(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeSchema(%d bytes) err = %v, want ErrCorrupt", len(bad), err)
		}
	}
}
