package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/mds"
)

// collectNodes walks the whole tree and returns every node, root first.
func collectNodes(t *testing.T, tree *Tree) []*node {
	t.Helper()
	var nodes []*node
	var walk func(id nodeID)
	walk = func(id nodeID) {
		n, err := tree.getNode(id)
		if err != nil {
			t.Fatalf("getNode(%d): %v", id, err)
		}
		nodes = append(nodes, n)
		if n.leaf {
			return
		}
		for i := range n.entries {
			walk(n.entries[i].Child)
		}
	}
	walk(tree.root)
	return nodes
}

// requireNodesEqual compares a decoded node against the original field by
// field — the equivalence both decoders (varint and flat) must satisfy.
func requireNodesEqual(t *testing.T, got, want *node) {
	t.Helper()
	if got.id != want.id || got.leaf != want.leaf || got.blocks != want.blocks ||
		len(got.entries) != len(want.entries) {
		t.Fatalf("node %d: shape (leaf=%v blocks=%d entries=%d) != (leaf=%v blocks=%d entries=%d)",
			want.id, got.leaf, got.blocks, len(got.entries),
			want.leaf, want.blocks, len(want.entries))
	}
	for i := range want.entries {
		ge, we := &got.entries[i], &want.entries[i]
		if !ge.MDS.Equal(we.MDS) {
			t.Fatalf("node %d entry %d: MDS %v != %v", want.id, i, ge.MDS, we.MDS)
		}
		if len(ge.Agg) != len(we.Agg) {
			t.Fatalf("node %d entry %d: agg len %d != %d", want.id, i, len(ge.Agg), len(we.Agg))
		}
		for j := range we.Agg {
			if ge.Agg[j] != we.Agg[j] {
				t.Fatalf("node %d entry %d measure %d: agg %+v != %+v", want.id, i, j, ge.Agg[j], we.Agg[j])
			}
		}
		if want.leaf {
			if len(ge.Rec.Coords) != len(we.Rec.Coords) {
				t.Fatalf("node %d entry %d: coord count", want.id, i)
			}
			for d := range we.Rec.Coords {
				if ge.Rec.Coords[d] != we.Rec.Coords[d] {
					t.Fatalf("node %d entry %d dim %d: coord %v != %v",
						want.id, i, d, ge.Rec.Coords[d], we.Rec.Coords[d])
				}
			}
			for j := range we.Rec.Measures {
				if ge.Rec.Measures[j] != we.Rec.Measures[j] {
					t.Fatalf("node %d entry %d: measure %d differs", want.id, i, j)
				}
			}
		} else if ge.Child != we.Child {
			t.Fatalf("node %d entry %d: child %d != %d", want.id, i, ge.Child, we.Child)
		}
	}
}

// TestFlatNodeRoundTrip: every node of a grown tree survives flat encode →
// flat view accessors → full heap decode unchanged, including supernodes.
func TestFlatNodeRoundTrip(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(7))
	for _, r := range genRecords(t, s, rng, 900) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	dims, measures := s.Dims(), s.Measures()
	nodes := collectNodes(t, tree)
	// Splits don't reliably produce supernodes under this workload, so
	// synthesize one: a multi-block directory node holding every directory
	// entry of the tree. The codec only depends on the node's own fields.
	super := &node{id: 999999, blocks: 4}
	for _, n := range nodes {
		if !n.leaf {
			super.entries = append(super.entries, n.entries...)
		}
	}
	if len(super.entries) < smallConfig().DirCapacity*2 {
		t.Fatalf("synthetic supernode too small: %d entries", len(super.entries))
	}
	nodes = append(nodes, super)
	for _, n := range nodes {
		buf := n.appendEncodeFlat(nil, dims, measures)
		f, err := makeFlatNode(n.id, buf, dims, measures)
		if err != nil {
			t.Fatalf("makeFlatNode(%d): %v", n.id, err)
		}
		if f.leaf != n.leaf || f.count != len(n.entries) || f.blocks != n.blocks {
			t.Fatalf("node %d: flat shape (leaf=%v count=%d blocks=%d)", n.id, f.leaf, f.count, f.blocks)
		}
		// Spot-check the in-place accessors against the heap entries.
		for i := range n.entries {
			e := &n.entries[i]
			wantMDS := e.MDS.AppendEncode(nil)
			if !bytes.Equal(f.entryMDS(i), wantMDS) {
				t.Fatalf("node %d entry %d: flat MDS bytes differ", n.id, i)
			}
			for j := 0; j < measures; j++ {
				if f.agg(i, j) != e.Agg[j] {
					t.Fatalf("node %d entry %d: agg(%d) = %+v, want %+v", n.id, i, j, f.agg(i, j), e.Agg[j])
				}
			}
			if n.leaf {
				for d := 0; d < dims; d++ {
					if f.coord(i, d) != e.Rec.Coords[d] {
						t.Fatalf("node %d entry %d: coord(%d) differs", n.id, i, d)
					}
				}
				for j := 0; j < measures; j++ {
					if f.measure(i, j) != e.Rec.Measures[j] {
						t.Fatalf("node %d entry %d: measure(%d) differs", n.id, i, j)
					}
				}
			} else if f.child(i) != e.Child {
				t.Fatalf("node %d entry %d: child differs", n.id, i)
			}
		}
		dec, err := decodeFlatNode(n.id, buf, dims, measures)
		if err != nil {
			t.Fatalf("decodeFlatNode(%d): %v", n.id, err)
		}
		requireNodesEqual(t, dec, n)
	}
}

// TestFlatNodeEmpty: the flat codec handles a zero-entry node (an empty
// tree's root data node).
func TestFlatNodeEmpty(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	n, err := tree.getNode(tree.root)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.entries) != 0 {
		t.Fatalf("fresh root has %d entries", len(n.entries))
	}
	buf := n.appendEncodeFlat(nil, s.Dims(), s.Measures())
	dec, err := decodeFlatNode(n.id, buf, s.Dims(), s.Measures())
	if err != nil {
		t.Fatal(err)
	}
	requireNodesEqual(t, dec, n)
}

// TestFlatNodeVarintEquivalence: decoding a node from the flat layout and
// from the legacy varint layout yields identical heap nodes.
func TestFlatNodeVarintEquivalence(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(13))
	for _, r := range genRecords(t, s, rng, 400) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	dims, measures := s.Dims(), s.Measures()
	for _, n := range collectNodes(t, tree) {
		v2, err := decodeNode(n.id, n.appendEncode(nil, dims, measures), dims, measures)
		if err != nil {
			t.Fatalf("decodeNode(%d): %v", n.id, err)
		}
		v3, err := decodeFlatNode(n.id, n.appendEncodeFlat(nil, dims, measures), dims, measures)
		if err != nil {
			t.Fatalf("decodeFlatNode(%d): %v", n.id, err)
		}
		requireNodesEqual(t, v3, v2)
	}
}

// TestFlatNodeCorruptFailClosed: damaged flat encodings are rejected by
// makeFlatNode, never served or panicked on.
func TestFlatNodeCorruptFailClosed(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(17))
	for _, r := range genRecords(t, s, rng, 60) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	dims, measures := s.Dims(), s.Measures()
	n, err := tree.getNode(tree.root)
	if err != nil {
		t.Fatal(err)
	}
	good := n.appendEncodeFlat(nil, dims, measures)
	if _, err := makeFlatNode(n.id, good, dims, measures); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), good...))
		if _, err := makeFlatNode(n.id, b, dims, measures); err == nil {
			t.Errorf("%s: corrupt encoding accepted", name)
		}
		if _, err := decodeFlatNode(n.id, b, dims, measures); err == nil {
			t.Errorf("%s: corrupt encoding decoded", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("hostile count", func(b []byte) []byte {
		b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0x7F
		return b
	})
	mutate("total length mismatch", func(b []byte) []byte { return append(b, 0) })
	mutate("non-monotone offsets", func(b []byte) []byte {
		// First offset-table slot (entry 0's MDS offset) bumped past the
		// second: the monotonicity check must catch it.
		b[flatHeaderSize] = 0xEE
		return b
	})
	mutate("empty", func(b []byte) []byte { return nil })
}

// TestFlatNodeMDSView: the flat entry MDS bytes decode through the view
// iterator to the same DimViews the full decoder produces.
func TestFlatNodeMDSView(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(19))
	for _, r := range genRecords(t, s, rng, 300) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	dims, measures := s.Dims(), s.Measures()
	for _, n := range collectNodes(t, tree) {
		buf := n.appendEncodeFlat(nil, dims, measures)
		f, err := makeFlatNode(n.id, buf, dims, measures)
		if err != nil {
			t.Fatal(err)
		}
		for i := range n.entries {
			it, err := mds.NewViewIter(f.entryMDS(i))
			if err != nil {
				t.Fatalf("node %d entry %d: %v", n.id, i, err)
			}
			want := n.entries[i].MDS
			if it.Dims() != len(want) {
				t.Fatalf("node %d entry %d: view dims %d != %d", n.id, i, it.Dims(), len(want))
			}
			for d := range want {
				dv, ok := it.Next()
				if !ok {
					t.Fatalf("node %d entry %d: view ended at dim %d", n.id, i, d)
				}
				if !(mds.MDS{dv.DimSet()}).Equal(mds.MDS{want[d]}) {
					t.Fatalf("node %d entry %d dim %d: view %v != %v", n.id, i, d, dv.DimSet(), want[d])
				}
			}
		}
	}
}
