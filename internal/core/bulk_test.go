package core

import (
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

func TestBulkLoadMatchesDynamic(t *testing.T) {
	cfg := smallConfig()
	s := testSchema(t)
	rng := rand.New(rand.NewSource(71))
	recs := genRecords(t, s, rng, 1500)

	dyn, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := dyn.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(recs); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if bulk.Count() != dyn.Count() {
		t.Fatalf("counts: bulk %d, dynamic %d", bulk.Count(), dyn.Count())
	}
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk Validate: %v", err)
	}

	// Same answers as the dynamically built tree for random queries.
	for i := 0; i < 200; i++ {
		q := randomQuery(rng, s, []float64{0.01, 0.05, 0.25}[i%3])
		want := bruteAgg(t, s, recs, q, 0)
		got, err := bulk.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query %d: bulk %+v != brute %+v", i, got, want)
		}
	}

	// A bulk-loaded tree keeps accepting dynamic updates.
	extra := genRecords(t, s, rng, 300)
	for _, r := range extra {
		if err := bulk.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulk.Delete(recs[0]); err != nil {
		t.Fatalf("delete after bulk: %v", err)
	}
	if err := bulk.Validate(); err != nil {
		t.Fatalf("Validate after post-bulk updates: %v", err)
	}
	all := append(append([]cube.Record(nil), recs[1:]...), extra...)
	q := randomQuery(rng, s, 0.25)
	want := bruteAgg(t, s, all, q, 0)
	got, _ := bulk.RangeAgg(q, 0)
	if !aggMatches(got, want) {
		t.Fatalf("post-bulk updates: got %+v want %+v", got, want)
	}
}

func TestBulkLoadEdgeCases(t *testing.T) {
	cfg := smallConfig()
	s := testSchema(t)
	tree, _ := New(storage.NewMemStore(cfg.BlockSize), s, cfg)

	// Empty bulk load is a no-op.
	if err := tree.BulkLoad(nil); err != nil {
		t.Fatalf("empty BulkLoad: %v", err)
	}
	if tree.Count() != 0 {
		t.Fatal("empty bulk load changed the tree")
	}

	// Single record.
	rng := rand.New(rand.NewSource(73))
	one := genRecords(t, s, rng, 1)
	if err := tree.BulkLoad(one); err != nil {
		t.Fatal(err)
	}
	if tree.Count() != 1 || tree.Height() != 1 {
		t.Fatalf("after single bulk: count=%d height=%d", tree.Count(), tree.Height())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}

	// Bulk load into a non-empty tree is rejected.
	if err := tree.BulkLoad(one); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}

	// Invalid records are rejected up front.
	tree2, _ := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	bad := one[0].Clone()
	bad.Measures = nil
	if err := tree2.BulkLoad([]cube.Record{bad}); err == nil {
		t.Fatal("invalid record accepted")
	}
	if tree2.Count() != 0 {
		t.Fatal("failed bulk load left records behind")
	}
}

func TestBulkLoadPersistence(t *testing.T) {
	cfg := smallConfig()
	store := storage.NewMemStore(cfg.BlockSize)
	s := testSchema(t)
	tree, _ := New(store, s, cfg)
	rng := rand.New(rand.NewSource(79))
	recs := genRecords(t, s, rng, 800)
	if err := tree.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	want, _ := tree.RangeAgg(mds.Top(3), 0)

	reopened, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := reopened.RangeAgg(mds.Top(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !aggMatches(got, want) {
		t.Fatalf("reopened bulk tree: %+v want %+v", got, want)
	}
}

// TestBulkLoadClustering checks the point of bulk loading: leaves end up
// hierarchically clustered, so directory MDSs are narrow and coarse
// queries prune well.
func TestBulkLoadClustering(t *testing.T) {
	cfg := smallConfig()
	s := testSchema(t)
	tree, _ := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
	rng := rand.New(rand.NewSource(83))
	recs := genRecords(t, s, rng, 2000)
	if err := tree.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// A single-region query must not visit most of the tree.
	space := s.Space()
	regions, _ := space[0].ValuesAt(2)
	q := mds.Top(3)
	q[0] = mds.DimSet{Level: 2, IDs: regions[:1]}
	_, st, err := tree.RangeQueryStats(q, cube.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	levels, _ := tree.LevelStats()
	total := 0
	for _, l := range levels {
		total += l.Nodes
	}
	if st.NodesVisited*2 > total {
		t.Fatalf("single-region query visited %d of %d nodes: bulk clustering ineffective", st.NodesVisited, total)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	cfg := DefaultConfig()
	s := testSchema(b)
	rng := rand.New(rand.NewSource(1))
	recs := genRecordsInto(b, s, rng, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := New(storage.NewMemStore(cfg.BlockSize), s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.BulkLoad(recs); err != nil {
			b.Fatal(err)
		}
	}
}
