package core

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/storage"
)

// Tests for WAL record format v2 (dictionary deltas + interned IDs), the
// cross-version decode path, and the satellite bug regressions in the same
// layer.

// newDurableOnDisk creates a WAL-backed tree on real files and returns it
// with its paths (so tests can snapshot crash images).
func newDurableOnDisk(t *testing.T, cfg Config) (*Tree, *storage.PagedStore, string, string) {
	t.Helper()
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewDurable(st, testSchema(t), cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return tree, st, storePath, walPrefix
}

func recoverImage(t *testing.T, cfg Config, storePath, walPrefix, dir string) *Tree {
	t.Helper()
	imgStore, imgPrefix := copyCrashImage(t, storePath, walPrefix, dir)
	cst, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctree, err := OpenDurable(cst, imgPrefix)
	if err != nil {
		cst.Close()
		t.Fatalf("OpenDurable on crash image: %v", err)
	}
	t.Cleanup(func() { ctree.Close(); cst.Close() })
	return ctree
}

// TestV2FormatCrashRecovery: the default (v2) format survives a crash with
// NO checkpoint after the inserts — every dictionary registration must come
// back from the logged deltas alone, and the ID-only mutation records must
// resolve against them.
func TestV2FormatCrashRecovery(t *testing.T) {
	cfg := durableConfig()
	tree, _, storePath, walPrefix := newDurableOnDisk(t, cfg)
	defer tree.Close()
	if tree.cfg.WALRecordFormat != walFormatIDs {
		t.Fatalf("default WALRecordFormat = %d, want %d", tree.cfg.WALRecordFormat, walFormatIDs)
	}
	rng := rand.New(rand.NewSource(21))
	recs := genRecords(t, tree.Schema(), rng, 120)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := tree.Metrics().WALDictDeltas; n == 0 {
		t.Fatal("no dictionary deltas were logged for fresh registrations")
	}
	if bpr := tree.Metrics().WALBytesPerRecord; bpr <= 0 {
		t.Fatalf("WALBytesPerRecord = %g, want > 0", bpr)
	}

	ctree := recoverImage(t, cfg, storePath, walPrefix, filepath.Join(t.TempDir(), "img"))
	verifyAgainstOracle(t, ctree, recs, 30, 22)
}

// TestV2DictDeltaCheckpointOverlap pins the fuzzy-capture overlap case: a
// registration interned BEFORE a checkpoint (so the captured dictionaries
// carry it) whose delta record lands AFTER the checkpoint LSN (drained by
// the next mutation). Recovery replays that delta against dictionaries that
// already contain it — RestoreValue must treat the exact match as a no-op.
func TestV2DictDeltaCheckpointOverlap(t *testing.T) {
	cfg := durableConfig()
	tree, _, storePath, walPrefix := newDurableOnDisk(t, cfg)
	defer tree.Close()
	rng := rand.New(rand.NewSource(5))
	recs := genRecords(t, tree.Schema(), rng, 40)
	for _, r := range recs[:20] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Intern a brand-new path now (hooks queue its deltas), checkpoint
	// (captures the registrations, supersedes nothing of the pending list),
	// THEN insert it (drains the deltas past the checkpoint LSN).
	late, err := tree.Schema().InternRecord([][]string{
		{"R-late", "N-late", "C-late"}, {"B-late", "P-late"}, {"Y-late", "M-late"},
	}, []float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(late); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[20:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	ctree := recoverImage(t, cfg, storePath, walPrefix, filepath.Join(t.TempDir(), "img"))
	verifyAgainstOracle(t, ctree, append(append([]cube.Record{}, recs...), late), 30, 6)
}

// TestCrossVersionV1LogRecovery: a log written entirely in the legacy
// string-path format (what the previous build produced) must still recover
// to seqscan-oracle equality under the current build.
func TestCrossVersionV1LogRecovery(t *testing.T) {
	cfg := durableConfig()
	cfg.WALRecordFormat = walFormatPaths
	tree, _, storePath, walPrefix := newDurableOnDisk(t, cfg)
	defer tree.Close()
	rng := rand.New(rand.NewSource(33))
	recs := genRecords(t, tree.Schema(), rng, 100)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	live := recs
	for i := 0; i < 10; i++ {
		if err := tree.Delete(live[0]); err != nil {
			t.Fatal(err)
		}
		live = live[1:]
	}
	if n := tree.Metrics().WALDictDeltas; n != 0 {
		t.Fatalf("v1 format logged %d dict deltas, want 0", n)
	}

	ctree := recoverImage(t, cfg, storePath, walPrefix, filepath.Join(t.TempDir(), "img"))
	if got := ctree.Config().WALRecordFormat; got != walFormatPaths {
		t.Fatalf("recovered tree format = %d, want persisted %d", got, walFormatPaths)
	}
	if n := ctree.Metrics().RecoveryReplayedRecords; n != int64(len(recs)+10) {
		t.Fatalf("replayed %d records, want %d", n, len(recs)+10)
	}
	verifyAgainstOracle(t, ctree, live, 30, 34)
}

// TestMixedFormatLogRecovery: v1 and v2 records interleaved in one log (a
// build upgrade mid-log) replay correctly — decode dispatches per record.
func TestMixedFormatLogRecovery(t *testing.T) {
	cfg := durableConfig()
	tree, _, storePath, walPrefix := newDurableOnDisk(t, cfg)
	defer tree.Close()
	rng := rand.New(rand.NewSource(44))
	recs := genRecords(t, tree.Schema(), rng, 60) // v2 records
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Splice a legacy-format record into the same log, the way a not-yet-
	// upgraded writer would have: full string paths, no delta dependency.
	legacy, err := tree.Schema().InternRecord([][]string{
		{"R-v1", "N-v1", "C-v1"}, {"B-v1", "P-v1"}, {"Y-v1", "M-v1"},
	}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := tree.encodeWALRecordV1(walOpInsert, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.wal.append(payload); err != nil {
		t.Fatal(err)
	}

	// The live tree never applied the spliced record, so only the crash
	// image sees it: recovery must surface exactly recs + legacy.
	ctree := recoverImage(t, cfg, storePath, walPrefix, filepath.Join(t.TempDir(), "img"))
	verifyAgainstOracle(t, ctree, append(append([]cube.Record{}, recs...), legacy), 30, 45)
}

// TestNaiveModeBatchMaxMetric is the satellite #4 regression: naive commit
// mode (CommitInterval < 0) fsyncs one record per batch, and the max-batch
// gauge must report 1, not its zero value.
func TestNaiveModeBatchMaxMetric(t *testing.T) {
	cfg := durableConfig() // CommitInterval = -1
	tree, _, _, _ := newDurableOnDisk(t, cfg)
	defer tree.Close()
	recs := genRecords(t, tree.Schema(), rand.New(rand.NewSource(9)), 5)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	m := tree.Metrics()
	if m.WALGroupCommitBatchMax != 1 {
		t.Fatalf("naive-mode WALGroupCommitBatchMax = %d, want 1", m.WALGroupCommitBatchMax)
	}
	if m.WALGroupCommitBatchMean != 1 {
		t.Fatalf("naive-mode WALGroupCommitBatchMean = %g, want 1", m.WALGroupCommitBatchMean)
	}
	if m.WALFsyncs < int64(len(recs)) {
		t.Fatalf("naive mode issued %d fsyncs for %d appends", m.WALFsyncs, m.WALAppends)
	}
}

// TestMetaReaderStringNegativeLength is the satellite #1 regression: a
// uvarint length above MaxInt64 used to overflow int(l) negative, pass the
// remaining-bytes check, and panic on the negative slice bound.
func TestMetaReaderStringNegativeLength(t *testing.T) {
	// 0xff ×9 then 0x01 encodes 2^63+... — above MaxInt64.
	blob := append(bytes.Repeat([]byte{0xff}, 9), 0x01)
	r := metaReader{buf: blob}
	if s := r.string(); s != "" || r.err == nil {
		t.Fatalf("string() on negative-length input: %q, err %v", s, r.err)
	}
}

// TestDecodeMetaCorruptInputs feeds decodeMeta systematically damaged blobs
// derived from a real one: every truncation, a negative-length string, and
// a hostile table length must fail closed with ErrCorrupt — never panic,
// never over-allocate.
func TestDecodeMetaCorruptInputs(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	recs := genRecords(t, tree.Schema(), rand.New(rand.NewSource(3)), 30)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Flush so the translation table is populated (extents are assigned
	// lazily) — decodeMeta rejects a root without an extent.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.mu.Lock()
	blob, err := tree.encodeMeta(tree.metaSnapshotLocked())
	tree.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeMeta(blob); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}

	// Every prefix truncation.
	for i := 0; i < len(blob); i++ {
		if _, err := decodeMeta(blob[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Negative-length string: replace the measure name's length prefix
	// ("Price", length byte 5) with a uvarint above MaxInt64.
	idx := bytes.Index(blob, []byte("\x05Price"))
	if idx < 0 {
		t.Fatal("measure name not found in blob")
	}
	evil := append(append(append([]byte{}, blob[:idx]...),
		append(bytes.Repeat([]byte{0xff}, 9), 0x01)...), blob[idx+1:]...)
	if _, err := decodeMeta(evil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative-length string: %v, want ErrCorrupt", err)
	}
	// Hostile translation-table length: truncate right after the schema and
	// claim a huge table.
	tblIdx := bytes.Index(blob, []byte("\x05Price")) + len("\x05Price")
	hostile := append(append([]byte{}, blob[:tblIdx]...),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	if _, err := decodeMeta(hostile); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile table length: %v, want ErrCorrupt", err)
	}
}

// TestApplyDictDeltaRoundTripAndCorruption: deltas captured from one
// hierarchy rebuild an identical twin; corrupt payloads fail closed.
func TestApplyDictDeltaRoundTrip(t *testing.T) {
	src := testSchema(t)
	dst := testSchema(t)
	var deltas []dictDelta
	for d := 0; d < src.Dims(); d++ {
		h, err := src.Dim(d)
		if err != nil {
			t.Fatal(err)
		}
		dim := d
		h.SetRegisterHook(func(id, parent hierarchy.ID, name string) {
			deltas = append(deltas, dictDelta{dim: dim, id: id, parent: parent, name: name})
		})
	}
	recs := genRecords(t, src, rand.New(rand.NewSource(8)), 50)
	payload := encodeDictDelta(deltas)
	if err := applyDictDelta(dst, payload); err != nil {
		t.Fatalf("applyDictDelta: %v", err)
	}
	// Re-applying the same payload is idempotent (checkpoint overlap).
	if err := applyDictDelta(dst, payload); err != nil {
		t.Fatalf("applyDictDelta twice: %v", err)
	}
	for _, r := range recs {
		if err := dst.ValidateRecord(r); err != nil {
			t.Fatalf("record not resolvable in rebuilt dictionaries: %v", err)
		}
	}
	for d := 0; d < dst.Dims(); d++ {
		h, _ := dst.Dim(d)
		if err := h.Validate(); err != nil {
			t.Fatalf("rebuilt hierarchy invalid: %v", err)
		}
	}

	// Corruptions: truncations and a delta that would leave a code hole.
	for i := 1; i < len(payload); i += 7 {
		if err := applyDictDelta(testSchema(t), payload[:i]); err == nil {
			t.Fatalf("truncated delta payload (%d bytes) accepted", i)
		}
	}
	hole := encodeDictDelta([]dictDelta{{dim: 0, id: hierarchy.MakeID(0, 5), parent: hierarchy.ALL, name: "gap"}})
	if err := applyDictDelta(testSchema(t), hole); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("code-hole delta: %v, want ErrCorrupt", err)
	}
}
