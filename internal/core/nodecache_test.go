package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// slowReadStore delays every extent read, widening the fault window so
// singleflight races become deterministic.
type slowReadStore struct {
	storage.Store
	delay time.Duration
	reads atomic.Int64
}

func (s *slowReadStore) Read(id storage.PageID) ([]byte, int, error) {
	s.reads.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.Store.Read(id)
}

// TestNodeCacheShardOps unit-stresses the sharded cache itself: concurrent
// putNew/get/markDirty/drop/dirtyIDs/evictClean/len/fault over overlapping
// IDs. Run with -race; the assertions are secondary to the race detector.
func TestNodeCacheShardOps(t *testing.T) {
	c := newNodeCache()
	const ids = 256
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				id := nodeID(rng.Intn(ids) + 1)
				switch i % 6 {
				case 0:
					c.putNew(&node{id: id, leaf: true, blocks: 1})
				case 1:
					c.get(id)
				case 2:
					c.markDirty(id)
				case 3:
					c.drop(id)
				case 4:
					c.clearDirty(c.dirtyIDs())
				case 5:
					if _, _, err := c.fault(id, func() (*node, error) {
						return &node{id: id, leaf: true, blocks: 1}, nil
					}); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c.evictClean()
	if n := c.len(); n < 0 || n > ids {
		t.Fatalf("len = %d", n)
	}
	// Every remaining resident node must be dirty.
	for i := range c.shards {
		sh := &c.shards[i]
		for id := range sh.nodes {
			if _, dirty := sh.dirty[id]; !dirty {
				t.Fatalf("clean node %d survived evictClean", id)
			}
		}
	}
}

// TestSingleflightFaultStorm asserts that a storm of concurrent getNode
// calls for the same cold node performs exactly one store read (and one
// decode): every other caller piggybacks on the leader's in-flight fault.
func TestSingleflightFaultStorm(t *testing.T) {
	cfg := smallConfig()
	ss := &slowReadStore{Store: storage.NewMemStore(cfg.BlockSize), delay: 50 * time.Millisecond}
	s := testSchema(t)
	tree, err := New(ss, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, r := range genRecords(t, s, rng, 200) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.EvictCache()

	before := ss.reads.Load()
	sharedBefore := tree.Metrics().CacheFaultsShared
	const storm = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, storm)
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tree.mu.RLock()
			defer tree.mu.RUnlock()
			if _, err := tree.getNode(tree.root); err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ss.reads.Load() - before; got != 1 {
		t.Fatalf("fault storm performed %d store reads, want 1", got)
	}
	if shared := tree.Metrics().CacheFaultsShared - sharedBefore; shared != storm-1 {
		t.Fatalf("shared faults = %d, want %d", shared, storm-1)
	}
}

// TestEvictCachePreservesDirtyNodes is the regression test for the
// insert → EvictCache → query interleaving: EvictCache must not drop nodes
// whose in-memory state has not been flushed, or their mutations would be
// silently lost. Run with -race.
func TestEvictCachePreservesDirtyNodes(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(99))
	warm := genRecords(t, s, rng, 300)
	stream := genRecords(t, s, rng, 400)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing has been flushed: every node is dirty, so eviction must be a
	// no-op and the full count must survive.
	tree.EvictCache()
	all, err := tree.RangeAgg(tree.RootMDS(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count != int64(len(warm)) {
		t.Fatalf("count after evict = %d, want %d", all.Count, len(warm))
	}

	// Interleave inserts, evictions and queries concurrently.
	queries := make([]mds.MDS, 50)
	qrng := rand.New(rand.NewSource(101))
	for i := range queries {
		queries[i] = randomQuery(qrng, s, 0.25)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, r := range stream {
			if err := tree.Insert(r); err != nil {
				errs <- err
				return
			}
			if i%50 == 25 {
				tree.EvictCache()
			}
			if i%100 == 75 {
				if err := tree.Flush(); err != nil {
					errs <- err
					return
				}
				tree.EvictCache()
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				q := queries[(i*3+w)%len(queries)]
				if _, err := tree.RangeAgg(q, 0); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	total := append(append([]cube.Record(nil), warm...), stream...)
	if tree.Count() != int64(len(total)) {
		t.Fatalf("count = %d, want %d", tree.Count(), len(total))
	}
	for i := 0; i < 20; i++ {
		q := queries[i]
		want := bruteAgg(t, s, total, q, 0)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query %d mismatch after evict interleaving", i)
		}
	}
}

// TestConcurrentCacheStress drives getNode/markDirty/dropNode/Flush through
// the public API under -race: queries fault nodes while inserts split and
// drop them and a background goroutine flushes and evicts.
func TestConcurrentCacheStress(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(31))
	warm := genRecords(t, s, rng, 300)
	stream := genRecords(t, s, rng, 400)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	queries := make([]mds.MDS, 64)
	qrng := rand.New(rand.NewSource(33))
	for i := range queries {
		queries[i] = randomQuery(qrng, s, 0.25)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	wg.Add(1)
	go func() { // writer: inserts mark nodes dirty and drop split victims
		defer wg.Done()
		defer close(stop)
		for _, r := range stream {
			if err := tree.Insert(r); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // flusher: flush + evict rounds concurrently with everything
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			// Paced, not spinning: a busy flush loop would make the test's
			// wall clock depend on host load instead of on the workload.
			case <-time.After(time.Millisecond):
			}
			if err := tree.Flush(); err != nil {
				errs <- err
				return
			}
			tree.EvictCache()
			tree.CachedNodes()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // readers: serial and parallel descents fault nodes
			defer wg.Done()
			for i := 0; i < 200; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i*5+w)%len(queries)]
				var err error
				if w%2 == 0 {
					_, err = tree.RangeAgg(q, 0)
				} else {
					_, err = tree.RangeAggParallel(q, 0, 4)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	m := tree.Metrics()
	if m.CacheHits == 0 || m.CacheMisses == 0 {
		t.Fatalf("cache stress exercised no hits/misses: %+v", m)
	}
}

// TestQueryCtxPoolReuse asserts that steady-state queries recycle their
// mask arenas and keep answering correctly while alternating query shapes
// (which forces arena reslicing and regrowth).
func TestQueryCtxPoolReuse(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(55))
	recs := genRecords(t, s, rng, 500)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	qrng := rand.New(rand.NewSource(57))
	shapes := []mds.MDS{
		randomQuery(qrng, s, 0.05),
		randomQuery(qrng, s, 0.6),
		tree.RootMDS(),
		randomQuery(qrng, s, 0.25),
	}
	wants := make([]cube.Agg, len(shapes))
	for i, q := range shapes {
		wants[i] = bruteAgg(t, s, recs, q, 0)
	}
	for round := 0; round < 10; round++ {
		for i, q := range shapes {
			got, err := tree.RangeAgg(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !aggMatches(got, wants[i]) {
				t.Fatalf("round %d query %d: %+v != %+v", round, i, got, wants[i])
			}
		}
	}
	m := tree.Metrics()
	if m.MaskPoolHits == 0 {
		t.Fatalf("mask pool never hit: %+v", m)
	}
	if m.MaskPoolHitRatio <= 0.5 {
		t.Fatalf("mask pool hit ratio = %g, want > 0.5", m.MaskPoolHitRatio)
	}
}

// TestParallelStealMetrics asserts the work-stealing descent reports queue
// activity on a tree deep enough to fan out.
func TestParallelStealMetrics(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(61))
	for _, r := range genRecords(t, s, rng, 2000) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Fully-contained queries are answered by materialized aggregates at the
	// root without descending; partially-overlapping ranges force workers
	// down the tree and onto the shared queue.
	qrng := rand.New(rand.NewSource(63))
	for i := 0; i < 16; i++ {
		q := randomQuery(qrng, s, 0.3)
		if _, err := tree.RangeAggParallel(q, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	m := tree.Metrics()
	if m.ParallelTasksSpawned == 0 {
		t.Fatalf("no tasks spawned onto the steal queue: %+v", m)
	}
}
