package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// entry is one slot of a DC-tree node. In a directory node it references a
// child node; in a data node it holds one data record. Either way it
// carries the describing MDS and the materialized aggregate vector of
// everything below it (for a record: the record's own measures) — the
// paper's "the measure value ... will be stored together with the MDS in
// each node of the DC-tree" (§3.2).
type entry struct {
	MDS   mds.MDS
	Agg   cube.AggVector
	Child nodeID      // directory entries only
	Rec   cube.Record // data entries only
}

// node is the in-memory form of a DC-tree node. A node's own MDS is not
// stored in the node but in its parent's entry (the root's in the tree
// metadata); it always equals the cover of the node's entry MDSs.
type node struct {
	id      nodeID
	leaf    bool
	blocks  int // logical size in blocks; >1 marks a supernode
	entries []entry
}

// capacity returns the entry capacity of the node under cfg, accounting for
// supernode extents (§4.2: "directory node capacity multiplied by the
// number of blocks of the supernode").
func (n *node) capacity(cfg *Config) int {
	per := cfg.DirCapacity
	if n.leaf {
		per = cfg.LeafCapacity
	}
	return per * n.blocks
}

// overflowing reports whether the node exceeds its (super)capacity.
func (n *node) overflowing(cfg *Config) bool {
	return len(n.entries) > n.capacity(cfg)
}

// isSuper reports whether the node is a supernode.
func (n *node) isSuper() bool { return n.blocks > 1 }

// cover computes the node's MDS from its entries.
func (n *node) cover(space mds.Space) (mds.MDS, error) {
	members := make([]mds.MDS, len(n.entries))
	for i := range n.entries {
		members[i] = n.entries[i].MDS
	}
	return mds.Cover(space, members...)
}

// aggregate computes the node's aggregate vector from its entries.
func (n *node) aggregate(measures int) cube.AggVector {
	v := cube.NewAggVector(measures)
	for i := range n.entries {
		v.Merge(n.entries[i].Agg)
	}
	return v
}

// Node encoding (one extent per node):
//
//	uint8    flags (bit 0: leaf)
//	uvarint  blocks
//	uvarint  entry count
//	per entry:
//	  MDS (mds codec)
//	  per measure: float64 sum, varint count, float64 min, float64 max
//	  directory: uvarint child page id
//	  leaf:      uint32 coord per dimension, float64 per measure

const nodeFlagLeaf = 1

// appendEncode serializes the node.
func (n *node) appendEncode(buf []byte, dims, measures int) []byte {
	var flags byte
	if n.leaf {
		flags |= nodeFlagLeaf
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(n.blocks))
	buf = binary.AppendUvarint(buf, uint64(len(n.entries)))
	for i := range n.entries {
		e := &n.entries[i]
		buf = e.MDS.AppendEncode(buf)
		for _, a := range e.Agg {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Sum))
			buf = binary.AppendVarint(buf, a.Count)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Min))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Max))
		}
		if n.leaf {
			for _, c := range e.Rec.Coords {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
			}
			for _, m := range e.Rec.Measures {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
			}
		} else {
			buf = binary.AppendUvarint(buf, uint64(e.Child))
		}
	}
	return buf
}

// decodeNode parses a node payload (layout v2, the varint stream).
//
// Per-entry state is carved out of node-scoped arenas — one backing array
// each for aggregate vectors, record coordinates, record measures, and the
// MDS dimension sets and ID values — so a node of k entries decodes with
// O(1) slice allocations instead of O(k). Every carve is a capacity-capped
// subslice: when an arena grows and reallocates, earlier entries keep
// aliasing the old backing array, which stays correct because decoded
// values are only ever mutated in place within an entry's own disjoint
// region, never appended through.
func decodeNode(id nodeID, buf []byte, dims, measures int) (*node, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("%w: empty node %d", ErrCorrupt, id)
	}
	n := &node{id: id, leaf: buf[0]&nodeFlagLeaf != 0}
	off := 1
	blocks, k := binary.Uvarint(buf[off:])
	if k <= 0 || blocks < 1 {
		return nil, fmt.Errorf("%w: node %d blocks", ErrCorrupt, id)
	}
	off += k
	n.blocks = int(blocks)
	count, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: node %d entry count", ErrCorrupt, id)
	}
	// Arena sizing: a hostile count must not drive a huge upfront
	// allocation, so cap the pre-size by what the remaining bytes could
	// possibly hold (every entry takes ≥ 2 bytes even when empty).
	if count > uint64(len(buf)-off) {
		return nil, fmt.Errorf("%w: node %d entry count", ErrCorrupt, id)
	}
	off += k
	n.entries = make([]entry, count)
	aggArena := make(cube.AggVector, int(count)*measures)
	var dimArena []mds.DimSet
	var idArena []hierarchy.ID
	var coordArena []hierarchy.ID
	var measureArena []float64
	if n.leaf {
		coordArena = make([]hierarchy.ID, 0, int(count)*dims)
		measureArena = make([]float64, 0, int(count)*measures)
	}
	for i := range n.entries {
		e := &n.entries[i]
		m, k, err := mds.AppendDecode(buf[off:], &dimArena, &idArena)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d entry %d mds: %v", ErrCorrupt, id, i, err)
		}
		off += k
		e.MDS = m
		e.Agg = aggArena[i*measures : (i+1)*measures : (i+1)*measures]
		for j := 0; j < measures; j++ {
			if len(buf[off:]) < 8 {
				return nil, fmt.Errorf("%w: node %d entry %d agg", ErrCorrupt, id, i)
			}
			e.Agg[j].Sum = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			c, k := binary.Varint(buf[off:])
			if k <= 0 {
				return nil, fmt.Errorf("%w: node %d entry %d agg count", ErrCorrupt, id, i)
			}
			off += k
			e.Agg[j].Count = c
			if len(buf[off:]) < 16 {
				return nil, fmt.Errorf("%w: node %d entry %d agg minmax", ErrCorrupt, id, i)
			}
			e.Agg[j].Min = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			e.Agg[j].Max = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		if n.leaf {
			if len(buf[off:]) < 4*dims+8*measures {
				return nil, fmt.Errorf("%w: node %d entry %d record", ErrCorrupt, id, i)
			}
			cs := len(coordArena)
			for d := 0; d < dims; d++ {
				coordArena = append(coordArena, hierarchy.ID(binary.LittleEndian.Uint32(buf[off:])))
				off += 4
			}
			e.Rec.Coords = coordArena[cs:len(coordArena):len(coordArena)]
			ms := len(measureArena)
			for j := 0; j < measures; j++ {
				measureArena = append(measureArena, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
				off += 8
			}
			e.Rec.Measures = measureArena[ms:len(measureArena):len(measureArena)]
		} else {
			child, k := binary.Uvarint(buf[off:])
			if k <= 0 || child == 0 {
				return nil, fmt.Errorf("%w: node %d entry %d child", ErrCorrupt, id, i)
			}
			off += k
			e.Child = nodeID(child)
		}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: node %d has %d trailing bytes", ErrCorrupt, id, len(buf)-off)
	}
	return n, nil
}
