package core

import (
	"fmt"
	"math"

	"github.com/dcindex/dctree/internal/mds"
)

// LevelStat aggregates node statistics for one level of the tree.
// Level 0 is the root level, level Height()-1 the data nodes — Fig. 13 of
// the paper plots AvgEntries for levels 1 and 2 (the two highest levels
// below the root).
type LevelStat struct {
	Level      int
	Nodes      int
	Supernodes int
	Entries    int
	AvgEntries float64
	AvgBlocks  float64
}

// LevelStats walks the tree and reports per-level node statistics.
func (t *Tree) LevelStats() ([]LevelStat, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	stats := make([]LevelStat, t.height)
	var walk func(id nodeID, level int) error
	walk = func(id nodeID, level int) error {
		n, err := t.getNode(id)
		if err != nil {
			return err
		}
		if level >= len(stats) {
			return fmt.Errorf("%w: node %d at level %d exceeds height %d", ErrCorrupt, id, level, t.height)
		}
		s := &stats[level]
		s.Level = level
		s.Nodes++
		s.Entries += len(n.entries)
		s.AvgBlocks += float64(n.blocks)
		if n.isSuper() {
			s.Supernodes++
		}
		if n.leaf {
			return nil
		}
		for i := range n.entries {
			if err := walk(n.entries[i].Child, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return nil, err
	}
	for i := range stats {
		if stats[i].Nodes > 0 {
			stats[i].AvgEntries = float64(stats[i].Entries) / float64(stats[i].Nodes)
			stats[i].AvgBlocks /= float64(stats[i].Nodes)
		}
	}
	return stats, nil
}

// Validate deep-checks every structural invariant of the tree:
//
//   - every entry's MDS is a valid MDS of the schema's space;
//   - every directory entry's MDS equals the exact cover of its child;
//   - every directory entry's aggregate equals the recomputed aggregate of
//     its child (up to float rounding in Sum);
//   - data nodes appear exactly at the bottom level, record arity is
//     correct, leaf entry MDSs describe their records;
//   - no node except the root is empty, no node overflows its capacity,
//     supernode block counts are consistent;
//   - the record count and the root MDS match reality.
//
// Validate is the oracle behind the randomized workload tests.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	space := t.space()
	measures := t.schema.Measures()

	var records int64
	// walk returns the subtree's record-level cover (the exact MDS of its
	// data records, Definition 3), against which every entry's stored MDS
	// is checked: lifted to the entry's own relevant levels, the record
	// cover must reproduce the entry MDS exactly — coverage + minimality.
	var walk func(id nodeID, level int) (mds.MDS, error)
	walk = func(id nodeID, level int) (mds.MDS, error) {
		n, err := t.getNode(id)
		if err != nil {
			return nil, err
		}
		if n.blocks < 1 {
			return nil, fmt.Errorf("%w: node %d has %d blocks", ErrCorrupt, id, n.blocks)
		}
		if len(n.entries) > n.capacity(&t.cfg) {
			return nil, fmt.Errorf("%w: node %d overflows: %d entries, capacity %d",
				ErrCorrupt, id, len(n.entries), n.capacity(&t.cfg))
		}
		if len(n.entries) == 0 && id != t.root {
			return nil, fmt.Errorf("%w: non-root node %d is empty", ErrCorrupt, id)
		}
		if n.leaf != (level == t.height-1) {
			return nil, fmt.Errorf("%w: node %d leaf=%v at level %d of height %d",
				ErrCorrupt, id, n.leaf, level, t.height)
		}
		var members []mds.MDS
		for i := range n.entries {
			e := &n.entries[i]
			if err := e.MDS.Validate(space); err != nil {
				return nil, fmt.Errorf("node %d entry %d: %w", id, i, err)
			}
			if len(e.Agg) != measures {
				return nil, fmt.Errorf("%w: node %d entry %d has %d aggs", ErrCorrupt, id, i, len(e.Agg))
			}
			if n.leaf {
				records++
				if err := t.schema.ValidateRecord(e.Rec); err != nil {
					return nil, fmt.Errorf("node %d entry %d: %w", id, i, err)
				}
				want := mds.FromLeaves(e.Rec.Coords)
				if !e.MDS.Equal(want) {
					return nil, fmt.Errorf("%w: node %d entry %d MDS %v does not describe record %v",
						ErrCorrupt, id, i, e.MDS, want)
				}
				for j := range e.Agg {
					if e.Agg[j].Count != 1 || e.Agg[j].Sum != e.Rec.Measures[j] {
						return nil, fmt.Errorf("%w: node %d entry %d agg mismatch", ErrCorrupt, id, i)
					}
				}
				members = append(members, want)
				continue
			}
			child, err := t.getNode(e.Child)
			if err != nil {
				return nil, err
			}
			childRecCover, err := walk(e.Child, level+1)
			if err != nil {
				return nil, err
			}
			// Definition 3 at the entry's own relevant levels: the child
			// subtree's record-level cover, lifted to the entry's levels,
			// must reproduce the entry MDS exactly (coverage+minimality).
			levels := make([]int, len(e.MDS))
			for d := range e.MDS {
				levels[d] = e.MDS[d].Level
			}
			wantMDS, err := mds.AdaptToLevels(space, childRecCover, levels)
			if err != nil {
				return nil, err
			}
			if !e.MDS.Equal(wantMDS) {
				return nil, fmt.Errorf("%w: node %d entry %d MDS %v != lifted record cover %v",
					ErrCorrupt, id, i, e.MDS, wantMDS)
			}
			wantAgg := child.aggregate(measures)
			for j := range wantAgg {
				got, want := e.Agg[j], wantAgg[j]
				if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
					!floatClose(got.Sum, want.Sum) {
					return nil, fmt.Errorf("%w: node %d entry %d measure %d agg %+v != child %+v",
						ErrCorrupt, id, i, j, got, want)
				}
			}
			members = append(members, childRecCover)
		}
		if len(members) == 0 {
			return mds.Top(len(space)), nil
		}
		return mds.Cover(space, members...)
	}
	recCover, err := walk(t.root, 0)
	if err != nil {
		return err
	}
	if records != t.count {
		return fmt.Errorf("%w: tree claims %d records, found %d", ErrCorrupt, t.count, records)
	}

	if records > 0 {
		// The incrementally maintained root MDS may be coarser than the
		// exact record cover, but it must contain it.
		ok, err := mds.Contains(space, t.rootMDS, recCover)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: root MDS %v does not cover records %v", ErrCorrupt, t.rootMDS, recCover)
		}
	}
	return nil
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*scale+1e-9
}
