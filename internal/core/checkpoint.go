package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/dcindex/dctree/internal/storage"
)

// Fuzzy checkpoints.
//
// A checkpoint persists every dirty node with shadow paging and swaps the
// metadata blob (which carries the node→extent translation table) last, so
// a crash at any point leaves the previously persisted tree intact. The
// fuzzy protocol splits the work into three phases so that the expensive
// part — writing the dirty extents — runs WITHOUT the tree write lock,
// concurrently with inserts, deletes and queries:
//
//  1. Capture (tree write lock): snapshot the checkpoint LSN, encode every
//     dirty node's payload, copy the metadata fields and the translation
//     table, and detach the pending-free list. The captured image is
//     exactly the tree state at the checkpoint LSN: WAL appends happen
//     under the same lock, so every mutation with LSN ≤ cLSN is in the
//     image and every later mutation is in the log with LSN > cLSN —
//     replay after a crash never double-applies.
//  2. Background write (no tree lock): allocate a fresh extent per captured
//     node and write the captured payload. Writers running meanwhile only
//     touch in-memory nodes and the WAL; a node they re-dirty keeps a newer
//     dirty sequence and is re-captured by the next checkpoint.
//  3. Install (tree write lock, short): encode and swap the metadata, sync,
//     then point the live table at the fresh extents, clear the dirty flags
//     whose sequence is unchanged, and release the shadowed extents.
//
// Nothing observable by the live tree changes until the swap succeeded, so
// any failure rolls back by freeing the fresh extents and re-attaching the
// captured pending-free list — the table, checkpoint LSN and dirty flags
// were never touched.

// ckptNode is one dirty node captured for a checkpoint.
type ckptNode struct {
	id      nodeID
	seq     uint64 // dirty sequence at capture; clear-if-unchanged at install
	payload []byte
	layout  uint8     // node encoding of payload (cfg.NodeLayout at capture)
	need    int       // extent size in blocks
	old     extentRef // extent superseded by this write
	hasOld  bool
	fresh   extentRef // assigned by the background write phase
}

// ckptCapture is the consistent image one checkpoint persists.
type ckptCapture struct {
	lsn     uint64
	skip    bool // nothing dirty, nothing to free, LSN unchanged
	nodes   []ckptNode
	meta    metaSnapshot
	freeNow []extentRef // pending frees detached at capture, released after the swap
}

// captureLocked snapshots the checkpoint image. Caller holds t.mu.
func (t *Tree) captureLocked() (*ckptCapture, error) {
	c := &ckptCapture{lsn: t.checkpointLSN}
	if t.wal != nil {
		c.lsn = t.wal.w.LastLSN()
	} else if t.replica && t.appliedLSN > c.lsn {
		// A replica has no WAL of its own: its checkpoints persist the
		// applied frontier, so a restarted follower resumes replay exactly
		// past what this image already contains.
		c.lsn = t.appliedLSN
	}
	for _, e := range t.nc.dirtySnapshot() {
		n := t.nc.get(e.id)
		if n == nil {
			if _, inTable := t.table[e.id]; inTable {
				// EvictCache keeps dirty nodes resident and dropNode clears
				// the flag, so a dirty node with an extent but no in-memory
				// state has lost unpersisted mutations — fail loudly instead
				// of silently checkpointing its stale extent as current.
				return nil, fmt.Errorf("%w: node %d is dirty but not resident", ErrCorrupt, e.id)
			}
			// Dirty, absent, and unknown to the table: a leftover flag with
			// no state behind it. Clear it so it cannot pin cache evictions
			// or retrigger this path forever.
			t.nc.clearDirtyIf(e.id, e.seq)
			continue
		}
		// Every rewrite re-encodes in the configured layout, so a v2 image
		// upgrades to v3 extent by extent as its nodes go dirty.
		var payload []byte
		layout := layoutV2
		if t.cfg.NodeLayout == 3 {
			payload = n.appendEncodeFlat(nil, t.schema.Dims(), t.schema.Measures())
			layout = layoutV3
		} else {
			payload = n.appendEncode(nil, t.schema.Dims(), t.schema.Measures())
		}
		need := storage.BlocksFor(t.cfg.BlockSize, len(payload))
		if need < n.blocks {
			need = n.blocks // supernodes occupy their full logical extent
		}
		cn := ckptNode{id: e.id, seq: e.seq, payload: payload, layout: layout, need: need}
		if old, ok := t.table[e.id]; ok {
			cn.old, cn.hasOld = old, true
		}
		c.nodes = append(c.nodes, cn)
	}
	// Deterministic write order (the dirty snapshot walks hash-ordered
	// shards) keeps crash images reproducible under a given fault budget.
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].id < c.nodes[j].id })

	c.freeNow = t.pendingFree
	t.pendingFree = nil
	c.meta = t.metaSnapshotLocked()
	c.meta.checkpointLSN = c.lsn
	c.skip = len(c.nodes) == 0 && len(c.freeNow) == 0 && c.lsn == t.checkpointLSN
	return c, nil
}

// writeExtents is the background phase: write every captured payload to a
// fresh extent and record it in the capture's table copy. Runs without the
// tree lock; only the store (internally synchronized) is touched.
func (t *Tree) writeExtents(ctx context.Context, c *ckptCapture) error {
	for i := range c.nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		cn := &c.nodes[i]
		page, err := t.store.Alloc(cn.need)
		if err != nil {
			return err
		}
		cn.fresh = extentRef{page: page, blocks: cn.need, layout: cn.layout}
		if err := t.store.Write(page, cn.need, cn.payload); err != nil {
			return err
		}
		c.meta.table[cn.id] = cn.fresh
	}
	return nil
}

// installLocked is the short critical section that makes the checkpoint
// current: swap the metadata durably, then update the in-memory state.
// Every error return happens BEFORE any in-memory mutation, so the caller
// can roll back; once the swap is durable the install cannot fail — frees
// are retried at the next checkpoint instead of unwinding a committed
// state. Caller holds t.mu.
func (t *Tree) installLocked(c *ckptCapture) error {
	meta, err := t.encodeMeta(c.meta)
	if err != nil {
		return err
	}
	if err := t.store.SetMeta(meta); err != nil {
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}

	// The swap is durable. From here on, only bookkeeping.
	t.checkpointLSN = c.lsn
	var deferred []extentRef
	var parked int64
	free := func(ref extentRef) {
		// A live MVCC version may still be reading this extent through its
		// captured table: park the free in the pin ledger instead, to be
		// executed when the last version pinning it is released.
		if t.pins.FreeOrDefer(ref.page, ref.blocks) {
			parked++
			return
		}
		if err := t.store.Free(ref.page, ref.blocks); err != nil {
			deferred = append(deferred, ref)
		}
	}
	for i := range c.nodes {
		cn := &c.nodes[i]
		// A captured node is still live if it has an extent or is resident:
		// fresh nodes reach their first checkpoint with no table entry yet,
		// and only dropNode removes a dirty node from both places.
		_, inTable := t.table[cn.id]
		if inTable || t.nc.get(cn.id) != nil {
			t.table[cn.id] = cn.fresh
			if !t.nc.clearDirtyIf(cn.id, cn.seq) {
				// Re-dirtied during the background write: the fresh extent
				// holds the captured (consistent, WAL-covered) version and
				// the node stays queued for the next checkpoint.
				t.metrics.checkpointRequeued.Inc()
			}
			if cn.hasOld {
				free(cn.old)
			}
		} else {
			// Dropped during the background write. The metadata just made
			// durable references the fresh extent, so it must survive until
			// the NEXT swap supersedes it; dropNode already queued the old
			// extent the same way.
			t.pendingFree = append(t.pendingFree, cn.fresh)
		}
	}
	for _, ref := range c.freeNow {
		free(ref)
	}
	if len(deferred) > 0 {
		// A failed Free after a durable swap is not a checkpoint failure:
		// the tree is consistent and the extent merely stays allocated.
		// Keep it queued so the next checkpoint retries the release.
		t.pendingFree = append(t.pendingFree, deferred...)
		t.metrics.checkpointFreeDeferred.Add(int64(len(deferred)))
	}
	if parked > 0 {
		t.metrics.snapshotFreesParked.Add(parked)
	}

	if t.wal != nil {
		// Drop log segments wholly superseded by this checkpoint. Failure
		// (or a crash before this point) is safe: recovery filters replay
		// by the checkpoint LSN, so leftover records are skipped, never
		// re-applied — the log is just larger than it needs to be.
		_ = t.wal.w.TruncateBefore(c.lsn)
		t.wal.checkpointDone(c.lsn)
	}
	return nil
}

// rollbackLocked undoes a failed checkpoint: free the fresh extents the
// background phase allocated (best-effort — on a dead store they are
// unreachable anyway, the durable metadata never referenced them) and
// re-attach the captured pending frees. The table, dirty flags and
// checkpoint LSN were never touched, so the tree continues exactly as if
// the checkpoint had not been attempted. Caller holds t.mu.
func (t *Tree) rollbackLocked(c *ckptCapture) {
	for i := range c.nodes {
		if fresh := c.nodes[i].fresh; fresh.page != storage.NilPage {
			_ = t.store.Free(fresh.page, fresh.blocks)
		}
	}
	t.pendingFree = append(c.freeNow, t.pendingFree...)
}

// Checkpoint persists all dirty nodes and the tree metadata with the fuzzy
// protocol: writers are stalled only during the capture and install
// critical sections, not while the dirty extents are written. Concurrent
// checkpoints serialize. The context cancels only the background write
// phase (the checkpoint rolls back); a started install always completes.
func (t *Tree) Checkpoint(ctx context.Context) error {
	return t.checkpoint(ctx, false)
}

// Flush writes all dirty nodes and the tree metadata to the store and
// syncs it, using the fuzzy checkpoint protocol. After a successful Flush
// the tree can be reopened with Open. On a WAL-backed tree, Flush is a
// CHECKPOINT: the durable metadata records the log frontier it supersedes
// and superseded log segments are dropped. It is not the durability
// boundary — acknowledged mutations are already safe in the log before
// Flush runs.
func (t *Tree) Flush() error {
	return t.checkpoint(context.Background(), false)
}

// FlushSync is the pre-fuzzy baseline: capture, write and install all run
// under one continuous hold of the tree write lock, stalling every writer
// for the full duration. It persists the identical state and exists so the
// checkpoint benchmark can measure what the fuzzy protocol buys.
func (t *Tree) FlushSync() error {
	return t.checkpoint(context.Background(), true)
}

// checkpoint runs one checkpoint, fuzzy or synchronous. The writer-stall
// counter accumulates only the time writers were actually excluded, which
// for the fuzzy path is the two short critical sections.
func (t *Tree) checkpoint(ctx context.Context, sync bool) error {
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	start := time.Now()

	var (
		c     *ckptCapture
		err   error
		stall time.Duration
	)
	if sync {
		t.mu.Lock()
		c, err = t.captureLocked()
		if err == nil && !c.skip {
			if err = t.writeExtents(ctx, c); err == nil {
				err = t.installLocked(c)
			}
			if err != nil {
				t.rollbackLocked(c)
			}
		}
		stall = time.Since(start)
		t.mu.Unlock()
	} else {
		t.mu.Lock()
		capStart := time.Now()
		c, err = t.captureLocked()
		stall = time.Since(capStart)
		t.mu.Unlock()
		if err == nil && !c.skip {
			werr := t.writeExtents(ctx, c)
			t.mu.Lock()
			insStart := time.Now()
			if werr == nil {
				werr = t.installLocked(c)
			}
			if werr != nil {
				t.rollbackLocked(c)
			}
			stall += time.Since(insStart)
			t.mu.Unlock()
			err = werr
		}
	}

	t.metrics.checkpointStallNs.Add(int64(stall))
	if err != nil {
		t.metrics.checkpointFailures.Inc()
		return err
	}
	if c.skip {
		return nil
	}
	var bytes int64
	for i := range c.nodes {
		bytes += int64(len(c.nodes[i].payload))
	}
	t.metrics.checkpoints.Inc()
	t.metrics.checkpointPages.Add(int64(len(c.nodes)))
	t.metrics.checkpointBytes.Add(bytes)
	t.metrics.checkpointLatency.Observe(time.Since(start))
	return nil
}

// checkpointer is the background auto-trigger: a WAL-backed tree with
// CheckpointInterval or CheckpointDirtyBytes set checkpoints itself
// without the application calling Flush.
type checkpointer struct {
	t        *Tree
	interval time.Duration
	bytes    int64
	stop     chan struct{}
	done     chan struct{}
}

// startCheckpointer launches the auto-trigger goroutine if either knob is
// set. Called once, before the tree is shared.
func (t *Tree) startCheckpointer() {
	if t.cfg.CheckpointInterval <= 0 && t.cfg.CheckpointDirtyBytes <= 0 {
		return
	}
	cp := &checkpointer{
		t:        t,
		interval: t.cfg.CheckpointInterval,
		bytes:    int64(t.cfg.CheckpointDirtyBytes),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	t.cp = cp
	go cp.run()
}

// run polls until shutdown: on every tick the checkpoint fires if the
// interval elapsed since the last one or the estimated dirty footprint
// (dirty nodes × block size) reached the byte threshold. Failures are
// counted by the checkpoint itself and retried on the next due tick.
func (cp *checkpointer) run() {
	defer close(cp.done)
	const bytePoll = 50 * time.Millisecond
	tick := cp.interval
	if cp.bytes > 0 && (tick <= 0 || tick > bytePoll) {
		tick = bytePoll
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-cp.stop:
			return
		case <-ticker.C:
		}
		due := cp.interval > 0 && time.Since(last) >= cp.interval
		if !due && cp.bytes > 0 {
			due = cp.t.nc.dirtyLen()*int64(cp.t.cfg.BlockSize) >= cp.bytes
		}
		if !due {
			continue
		}
		_ = cp.t.Checkpoint(context.Background())
		last = time.Now()
	}
}

// shutdown stops the auto-trigger and waits for an in-flight checkpoint to
// finish.
func (cp *checkpointer) shutdown() {
	close(cp.stop)
	<-cp.done
}

// VerifyError is one damaged extent found by VerifyExtents.
type VerifyError struct {
	NodeID uint64
	Page   storage.PageID
	Blocks int
	Err    error
}

// VerifyReport summarizes a physical scan of every extent the tree's
// translation table references.
type VerifyReport struct {
	Extents     int // extents scanned
	Checksummed int // extents carrying a CRC (v2 store format)
	// Node layout population: extents holding the varint (v2) and flat
	// (v3) node encodings, per the translation table. A mixed image is
	// normal mid-upgrade — v2 extents go v3 as their nodes are rewritten.
	LayoutV2 int
	LayoutV3 int
	// Mapped counts extents whose checksum was verified through the
	// memory-mapped view path (VerifyOpts.Mmap on a store that maps).
	Mapped int
	Errors []VerifyError // damaged extents, in node-ID order
}

// OK reports whether the scan found no damage.
func (r VerifyReport) OK() bool { return len(r.Errors) == 0 }

// VerifyOpts configures VerifyExtentsOpts.
type VerifyOpts struct {
	// Mmap verifies extents through the store's memory-mapped views (the
	// bytes queries actually read zero-copy) instead of plain file reads.
	// Stores without a mapping fall back to the file read per extent.
	Mmap bool
}

// extentVerifier is implemented by stores that can check an extent's
// checksum without decoding (and without polluting a buffer pool).
type extentVerifier interface {
	VerifyExtent(id storage.PageID) (blocks int, checksummed bool, err error)
}

// extentViewVerifier is implemented by stores that can force-verify an
// extent through their memory mapping (bypassing the verified-bit cache).
type extentViewVerifier interface {
	VerifyExtentView(id storage.PageID) (blocks int, checksummed bool, mapped bool, err error)
}

// VerifyExtents reads every extent referenced by the translation table and
// verifies its checksum (on stores that carry them; otherwise the read
// itself is the check). Damage is collected, not returned early, so one
// scan reports every bad extent.
func (t *Tree) VerifyExtents() VerifyReport {
	return t.VerifyExtentsOpts(VerifyOpts{})
}

// VerifyExtentsOpts is VerifyExtents with options (dctool verify -mmap).
func (t *Tree) VerifyExtentsOpts(opts VerifyOpts) VerifyReport {
	t.mu.RLock()
	refs := make(map[nodeID]extentRef, len(t.table))
	for id, ref := range t.table {
		refs[id] = ref
	}
	t.mu.RUnlock()

	ids := make([]nodeID, 0, len(refs))
	for id := range refs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var rep VerifyReport
	ev, hasVerify := t.store.(extentVerifier)
	vv, hasView := t.store.(extentViewVerifier)
	for _, id := range ids {
		ref := refs[id]
		rep.Extents++
		switch ref.layout {
		case layoutV3:
			rep.LayoutV3++
		default:
			rep.LayoutV2++
		}
		var err error
		checksummed := false
		switch {
		case opts.Mmap && hasView:
			var mapped bool
			_, checksummed, mapped, err = vv.VerifyExtentView(ref.page)
			if mapped {
				rep.Mapped++
			}
		case hasVerify:
			_, checksummed, err = ev.VerifyExtent(ref.page)
		default:
			_, _, err = t.store.Read(ref.page)
		}
		if checksummed {
			rep.Checksummed++
		}
		if err != nil {
			rep.Errors = append(rep.Errors, VerifyError{
				NodeID: uint64(id), Page: ref.page, Blocks: ref.blocks, Err: err,
			})
		}
	}
	return rep
}
