package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/dcindex/dctree/internal/storage"
)

// Fuzzy checkpoints.
//
// A checkpoint persists every dirty node with shadow paging and swaps the
// metadata blob (which carries the node→extent translation table) last, so
// a crash at any point leaves the previously persisted tree intact. The
// fuzzy protocol splits the work into three phases so that the expensive
// part — writing the dirty extents — runs WITHOUT the tree write lock,
// concurrently with inserts, deletes and queries:
//
//  1. Capture (tree write lock): snapshot the checkpoint LSN, encode every
//     dirty node's payload, copy the metadata fields and the translation
//     table, and detach the pending-free list. The captured image is
//     exactly the tree state at the checkpoint LSN: WAL appends happen
//     under the same lock, so every mutation with LSN ≤ cLSN is in the
//     image and every later mutation is in the log with LSN > cLSN —
//     replay after a crash never double-applies.
//  2. Background write (no tree lock): allocate a fresh extent per captured
//     node and write the captured payload. Writers running meanwhile only
//     touch in-memory nodes and the WAL; a node they re-dirty keeps a newer
//     dirty sequence and is re-captured by the next checkpoint.
//  3. Install (tree write lock, short): encode and swap the metadata, sync,
//     then point the live table at the fresh extents, clear the dirty flags
//     whose sequence is unchanged, and release the shadowed extents.
//
// Nothing observable by the live tree changes until the swap succeeded, so
// any failure rolls back by freeing the fresh extents and re-attaching the
// captured pending-free list — the table, checkpoint LSN and dirty flags
// were never touched.

// ckptNode is one dirty node captured for a checkpoint.
type ckptNode struct {
	id      nodeID
	seq     uint64 // dirty sequence at capture; clear-if-unchanged at install
	payload []byte
	layout  uint8     // node encoding of payload (cfg.NodeLayout at capture)
	need    int       // extent size in blocks
	old     extentRef // extent superseded by this write
	hasOld  bool
	fresh   extentRef // assigned by the background write phase
}

// ckptVersion is one live MVCC version captured for a checkpoint: the
// manifest to persist in meta v8, and — for versions no earlier checkpoint
// persisted — the overlay payloads the background phase writes to fresh
// extents (reusing ckptNode: id, payload, need, fresh; seq/old unused).
type ckptVersion struct {
	v       *Version
	m       versionManifest
	pending []ckptNode
}

// ckptCapture is the consistent image one checkpoint persists.
type ckptCapture struct {
	lsn     uint64
	skip    bool // nothing dirty, nothing to free, LSN and versions unchanged
	nodes   []ckptNode
	meta    metaSnapshot
	freeNow []extentRef // pending frees detached at capture, released after the swap
	// versions are the live versions at capture; versionGen is the registry
	// generation they represent, stamped into versionGenPersisted when the
	// swap lands so later no-op checkpoints may skip.
	versions   []ckptVersion
	versionGen uint64
}

// captureLocked snapshots the checkpoint image. Caller holds t.mu.
func (t *Tree) captureLocked() (*ckptCapture, error) {
	c := &ckptCapture{lsn: t.checkpointLSN}
	if t.wal != nil {
		c.lsn = t.wal.w.LastLSN()
	} else if t.replica && t.appliedLSN > c.lsn {
		// A replica has no WAL of its own: its checkpoints persist the
		// applied frontier, so a restarted follower resumes replay exactly
		// past what this image already contains.
		c.lsn = t.appliedLSN
	}
	for _, e := range t.nc.dirtySnapshot() {
		n := t.nc.get(e.id)
		if n == nil {
			if _, inTable := t.table[e.id]; inTable {
				// EvictCache keeps dirty nodes resident and dropNode clears
				// the flag, so a dirty node with an extent but no in-memory
				// state has lost unpersisted mutations — fail loudly instead
				// of silently checkpointing its stale extent as current.
				return nil, fmt.Errorf("%w: node %d is dirty but not resident", ErrCorrupt, e.id)
			}
			// Dirty, absent, and unknown to the table: a leftover flag with
			// no state behind it. Clear it so it cannot pin cache evictions
			// or retrigger this path forever.
			t.nc.clearDirtyIf(e.id, e.seq)
			continue
		}
		// Every rewrite re-encodes in the configured layout, so a v2 image
		// upgrades to v3 extent by extent as its nodes go dirty.
		var payload []byte
		layout := layoutV2
		if t.cfg.NodeLayout == 3 {
			payload = n.appendEncodeFlat(nil, t.schema.Dims(), t.schema.Measures())
			layout = layoutV3
		} else {
			payload = n.appendEncode(nil, t.schema.Dims(), t.schema.Measures())
		}
		need := storage.BlocksFor(t.cfg.BlockSize, len(payload))
		if need < n.blocks {
			need = n.blocks // supernodes occupy their full logical extent
		}
		cn := ckptNode{id: e.id, seq: e.seq, payload: payload, layout: layout, need: need}
		if old, ok := t.table[e.id]; ok {
			cn.old, cn.hasOld = old, true
		}
		c.nodes = append(c.nodes, cn)
	}
	// Deterministic write order (the dirty snapshot walks hash-ordered
	// shards) keeps crash images reproducible under a given fault budget.
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].id < c.nodes[j].id })

	c.freeNow = t.pendingFree
	t.pendingFree = nil
	c.meta = t.metaSnapshotLocked()
	c.meta.checkpointLSN = c.lsn
	c.versions = t.captureVersionsLocked()
	c.versionGen = t.versionGen
	c.skip = len(c.nodes) == 0 && len(c.freeNow) == 0 && c.lsn == t.checkpointLSN &&
		c.versionGen == t.versionGenPersisted
	return c, nil
}

// captureVersionsLocked snapshots every live version for the checkpoint's
// meta v8 manifests. Already-persisted versions only need their manifest
// re-encoded (table merged with the overlay extents an earlier checkpoint
// wrote); unpersisted ones additionally hand their overlay payloads to the
// background phase for extent writes. Caller holds t.mu, which also
// guards v.ovExtents and the persisted latch.
func (t *Tree) captureVersionsLocked() []ckptVersion {
	t.vmu.Lock()
	live := make([]*Version, 0, len(t.versions))
	for _, v := range t.versions {
		if !v.released.Load() {
			live = append(live, v)
		}
	}
	t.vmu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })

	out := make([]ckptVersion, 0, len(live))
	for _, v := range live {
		cv := ckptVersion{v: v, m: versionManifest{
			id:      v.id,
			lsn:     v.lsn,
			created: v.created.UnixNano(),
			root:    v.root,
			rootMDS: v.rootMDS,
			height:  v.height,
			count:   v.count,
		}}
		table := make(map[nodeID]extentRef, len(v.table)+len(v.overlay))
		for id, ref := range v.table {
			table[id] = ref
		}
		if v.persisted.Load() {
			for id, ref := range v.ovExtents {
				table[id] = ref
			}
		} else {
			for id, payload := range v.overlay {
				cv.pending = append(cv.pending, ckptNode{
					id:      id,
					payload: payload,
					layout:  layoutV2, // overlays are captured with appendEncode
					need:    storage.BlocksFor(t.cfg.BlockSize, len(payload)),
				})
			}
			sort.Slice(cv.pending, func(i, j int) bool { return cv.pending[i].id < cv.pending[j].id })
		}
		cv.m.table = table
		out = append(out, cv)
	}
	return out
}

// writeExtents is the background phase: write every captured payload to a
// fresh extent and record it in the capture's table copy. Runs without the
// tree lock; only the store (internally synchronized) is touched.
func (t *Tree) writeExtents(ctx context.Context, c *ckptCapture) error {
	for i := range c.nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		cn := &c.nodes[i]
		page, err := t.store.Alloc(cn.need)
		if err != nil {
			return err
		}
		cn.fresh = extentRef{page: page, blocks: cn.need, layout: cn.layout}
		if err := t.store.Write(page, cn.need, cn.payload); err != nil {
			return err
		}
		c.meta.table[cn.id] = cn.fresh
	}
	for vi := range c.versions {
		cv := &c.versions[vi]
		for i := range cv.pending {
			if err := ctx.Err(); err != nil {
				return err
			}
			cn := &cv.pending[i]
			page, err := t.store.Alloc(cn.need)
			if err != nil {
				return err
			}
			cn.fresh = extentRef{page: page, blocks: cn.need, layout: cn.layout}
			if err := t.store.Write(page, cn.need, cn.payload); err != nil {
				return err
			}
			// The manifest table is this version's durable translation: its
			// overlay entries now point at the fresh extents just written.
			cv.m.table[cn.id] = cn.fresh
		}
	}
	return nil
}

// installLocked is the short critical section that makes the checkpoint
// current: swap the metadata durably, then update the in-memory state.
// Every error return happens BEFORE any in-memory mutation, so the caller
// can roll back; once the swap is durable the install cannot fail — frees
// are retried at the next checkpoint instead of unwinding a committed
// state. Caller holds t.mu.
//
// Because the whole install runs under one continuous hold of t.mu (and
// every pin-ledger mutation happens under t.mu), the pre-swap analysis —
// which captured nodes are still live, which superseded extents will be
// parked behind a version pin versus freed, which captured versions were
// released meanwhile — exactly matches the post-swap execution, so the
// parked-free list persisted in the meta blob is the ledger state a
// reopening process must restore.
func (t *Tree) installLocked(c *ckptCapture) error {
	// Pre-swap analysis: nothing in-memory is mutated here, only the
	// capture's meta snapshot is completed.
	live := make([]bool, len(c.nodes))
	var toPark, toFree []extentRef
	classify := func(ref extentRef) {
		// A live MVCC version may still be reading this extent through its
		// captured table: park the free in the pin ledger instead, to be
		// executed when the last version pinning it is released.
		if t.pins.Pinned(ref.page) {
			toPark = append(toPark, ref)
		} else {
			toFree = append(toFree, ref)
		}
	}
	for i := range c.nodes {
		cn := &c.nodes[i]
		// A captured node is still live if it has an extent or is resident:
		// fresh nodes reach their first checkpoint with no table entry yet,
		// and only dropNode removes a dirty node from both places.
		_, inTable := t.table[cn.id]
		if inTable || t.nc.get(cn.id) != nil {
			live[i] = true
			if cn.hasOld {
				classify(cn.old)
			}
		}
	}
	for _, ref := range c.freeNow {
		classify(ref)
	}
	// Versions released between capture and install drop out of the meta
	// manifests; their freshly written overlay extents are unreferenced and
	// freed outright. (A crash between their WAL release record and the
	// next swap degrades to the accepted pendingFree-leak class.)
	surviving := make([]ckptVersion, 0, len(c.versions))
	for i := range c.versions {
		cv := &c.versions[i]
		if cv.v.released.Load() {
			for j := range cv.pending {
				if f := cv.pending[j].fresh; f.page != storage.NilPage {
					toFree = append(toFree, f)
				}
			}
			continue
		}
		surviving = append(surviving, *cv)
	}
	c.meta.versions = c.meta.versions[:0]
	for i := range surviving {
		c.meta.versions = append(c.meta.versions, surviving[i].m)
	}
	// The persisted parked-free list = the ledger now + what this install
	// will park + the surviving overlay extents this install will park
	// behind their version's pin (disjoint sets: fresh allocations cannot
	// collide with already-parked or about-to-park superseded extents).
	def := t.pins.Deferred()
	for _, ref := range toPark {
		def = append(def, storage.Extent{Page: ref.page, Blocks: ref.blocks})
	}
	for i := range surviving {
		for j := range surviving[i].pending {
			f := surviving[i].pending[j].fresh
			def = append(def, storage.Extent{Page: f.page, Blocks: f.blocks})
		}
	}
	c.meta.deferred = def

	meta, err := t.encodeMeta(c.meta)
	if err != nil {
		return err
	}
	if err := t.store.SetMeta(meta); err != nil {
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}

	// The swap is durable. From here on, only bookkeeping.
	t.checkpointLSN = c.lsn
	var deferred []extentRef
	var parked int64
	for i := range c.nodes {
		cn := &c.nodes[i]
		if live[i] {
			t.table[cn.id] = cn.fresh
			if !t.nc.clearDirtyIf(cn.id, cn.seq) {
				// Re-dirtied during the background write: the fresh extent
				// holds the captured (consistent, WAL-covered) version and
				// the node stays queued for the next checkpoint.
				t.metrics.checkpointRequeued.Inc()
			}
		} else {
			// Dropped during the background write. The metadata just made
			// durable references the fresh extent, so it must survive until
			// the NEXT swap supersedes it; dropNode already queued the old
			// extent the same way.
			t.pendingFree = append(t.pendingFree, cn.fresh)
		}
	}
	for _, ref := range toPark {
		if t.pins.FreeOrDefer(ref.page, ref.blocks) {
			parked++
			continue
		}
		// Unreachable under the continuous lock hold (the pin observed by
		// the classification cannot have vanished), but degrade safely.
		if err := t.store.Free(ref.page, ref.blocks); err != nil {
			deferred = append(deferred, ref)
		}
	}
	for _, ref := range toFree {
		if err := t.store.Free(ref.page, ref.blocks); err != nil {
			deferred = append(deferred, ref)
		}
	}
	if len(deferred) > 0 {
		// A failed Free after a durable swap is not a checkpoint failure:
		// the tree is consistent and the extent merely stays allocated.
		// Keep it queued so the next checkpoint retries the release.
		t.pendingFree = append(t.pendingFree, deferred...)
		t.metrics.checkpointFreeDeferred.Add(int64(len(deferred)))
	}
	if parked > 0 {
		t.metrics.snapshotFreesParked.Add(parked)
	}

	// Persist the surviving versions' overlay state: the fresh overlay
	// extents become the version's durable overlay, pinned by the version
	// and parked in the ledger so releasing the version (now or after a
	// reopen) returns them due for freeing.
	for i := range surviving {
		cv := &surviving[i]
		v := cv.v
		if len(cv.pending) > 0 {
			if v.ovExtents == nil {
				v.ovExtents = make(map[nodeID]extentRef, len(cv.pending))
			}
			var ovBytes int64
			for j := range cv.pending {
				cn := &cv.pending[j]
				v.ovExtents[cn.id] = cn.fresh
				ovBytes += int64(len(cn.payload))
				if t.pins.Pin(cn.fresh.page) {
					v.ovPinned = append(v.ovPinned, cn.fresh.page)
				}
				_ = t.pins.FreeOrDefer(cn.fresh.page, cn.fresh.blocks)
			}
			v.pinCount.Store(int64(len(v.pinned) + len(v.ovPinned)))
			t.metrics.versionOverlayExtents.Add(int64(len(cv.pending)))
			t.metrics.versionOverlayBytes.Add(ovBytes)
		}
		v.persisted.Store(true)
	}
	t.versionGenPersisted = c.versionGen

	if t.wal != nil {
		// Drop log segments wholly superseded by this checkpoint. Failure
		// (or a crash before this point) is safe: recovery filters replay
		// by the checkpoint LSN, so leftover records are skipped, never
		// re-applied — the log is just larger than it needs to be.
		_ = t.wal.w.TruncateBefore(c.lsn)
		t.wal.checkpointDone(c.lsn)
	}
	return nil
}

// rollbackLocked undoes a failed checkpoint: free the fresh extents the
// background phase allocated (best-effort — on a dead store they are
// unreachable anyway, the durable metadata never referenced them) and
// re-attach the captured pending frees. The table, dirty flags and
// checkpoint LSN were never touched, so the tree continues exactly as if
// the checkpoint had not been attempted. Caller holds t.mu.
func (t *Tree) rollbackLocked(c *ckptCapture) {
	for i := range c.nodes {
		if fresh := c.nodes[i].fresh; fresh.page != storage.NilPage {
			_ = t.store.Free(fresh.page, fresh.blocks)
		}
	}
	for i := range c.versions {
		for j := range c.versions[i].pending {
			if fresh := c.versions[i].pending[j].fresh; fresh.page != storage.NilPage {
				_ = t.store.Free(fresh.page, fresh.blocks)
			}
		}
	}
	t.pendingFree = append(c.freeNow, t.pendingFree...)
}

// Checkpoint persists all dirty nodes and the tree metadata with the fuzzy
// protocol: writers are stalled only during the capture and install
// critical sections, not while the dirty extents are written. Concurrent
// checkpoints serialize. The context cancels only the background write
// phase (the checkpoint rolls back); a started install always completes.
func (t *Tree) Checkpoint(ctx context.Context) error {
	return t.checkpoint(ctx, false)
}

// Flush writes all dirty nodes and the tree metadata to the store and
// syncs it, using the fuzzy checkpoint protocol. After a successful Flush
// the tree can be reopened with Open. On a WAL-backed tree, Flush is a
// CHECKPOINT: the durable metadata records the log frontier it supersedes
// and superseded log segments are dropped. It is not the durability
// boundary — acknowledged mutations are already safe in the log before
// Flush runs.
func (t *Tree) Flush() error {
	return t.checkpoint(context.Background(), false)
}

// FlushSync is the pre-fuzzy baseline: capture, write and install all run
// under one continuous hold of the tree write lock, stalling every writer
// for the full duration. It persists the identical state and exists so the
// checkpoint benchmark can measure what the fuzzy protocol buys.
func (t *Tree) FlushSync() error {
	return t.checkpoint(context.Background(), true)
}

// checkpoint runs one checkpoint, fuzzy or synchronous. The writer-stall
// counter accumulates only the time writers were actually excluded, which
// for the fuzzy path is the two short critical sections.
func (t *Tree) checkpoint(ctx context.Context, sync bool) error {
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	// Retention runs at the start of every checkpoint (after serializing on
	// ckptMu, before any lock on t.mu — the ckptMu→t.mu order holds): aged
	// versions are released first so this checkpoint neither persists their
	// manifests nor rewrites their overlays.
	t.PruneVersions()
	start := time.Now()

	var (
		c     *ckptCapture
		err   error
		stall time.Duration
	)
	if sync {
		t.mu.Lock()
		c, err = t.captureLocked()
		if err == nil && !c.skip {
			if err = t.writeExtents(ctx, c); err == nil {
				err = t.installLocked(c)
			}
			if err != nil {
				t.rollbackLocked(c)
			}
		}
		stall = time.Since(start)
		t.mu.Unlock()
	} else {
		t.mu.Lock()
		capStart := time.Now()
		c, err = t.captureLocked()
		stall = time.Since(capStart)
		t.mu.Unlock()
		if err == nil && !c.skip {
			werr := t.writeExtents(ctx, c)
			t.mu.Lock()
			insStart := time.Now()
			if werr == nil {
				werr = t.installLocked(c)
			}
			if werr != nil {
				t.rollbackLocked(c)
			}
			stall += time.Since(insStart)
			t.mu.Unlock()
			err = werr
		}
	}

	t.metrics.checkpointStallNs.Add(int64(stall))
	if err != nil {
		t.metrics.checkpointFailures.Inc()
		return err
	}
	if c.skip {
		return nil
	}
	var bytes int64
	for i := range c.nodes {
		bytes += int64(len(c.nodes[i].payload))
	}
	t.metrics.checkpoints.Inc()
	t.metrics.checkpointPages.Add(int64(len(c.nodes)))
	t.metrics.checkpointBytes.Add(bytes)
	t.metrics.checkpointLatency.Observe(time.Since(start))
	return nil
}

// checkpointer is the background auto-trigger: a WAL-backed tree with
// CheckpointInterval or CheckpointDirtyBytes set checkpoints itself
// without the application calling Flush.
type checkpointer struct {
	t        *Tree
	interval time.Duration
	bytes    int64
	stop     chan struct{}
	done     chan struct{}
}

// startCheckpointer launches the auto-trigger goroutine if either knob is
// set. Called once, before the tree is shared.
func (t *Tree) startCheckpointer() {
	if t.cfg.CheckpointInterval <= 0 && t.cfg.CheckpointDirtyBytes <= 0 {
		return
	}
	cp := &checkpointer{
		t:        t,
		interval: t.cfg.CheckpointInterval,
		bytes:    int64(t.cfg.CheckpointDirtyBytes),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	t.cp = cp
	go cp.run()
}

// run polls until shutdown: on every tick the checkpoint fires if the
// interval elapsed since the last one or the estimated dirty footprint
// (dirty nodes × block size) reached the byte threshold. Failures are
// counted by the checkpoint itself and retried on the next due tick.
func (cp *checkpointer) run() {
	defer close(cp.done)
	const bytePoll = 50 * time.Millisecond
	tick := cp.interval
	if cp.bytes > 0 && (tick <= 0 || tick > bytePoll) {
		tick = bytePoll
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-cp.stop:
			return
		case <-ticker.C:
		}
		due := cp.interval > 0 && time.Since(last) >= cp.interval
		if !due && cp.bytes > 0 {
			due = cp.t.nc.dirtyLen()*int64(cp.t.cfg.BlockSize) >= cp.bytes
		}
		if !due {
			continue
		}
		_ = cp.t.Checkpoint(context.Background())
		last = time.Now()
	}
}

// shutdown stops the auto-trigger and waits for an in-flight checkpoint to
// finish.
func (cp *checkpointer) shutdown() {
	close(cp.stop)
	<-cp.done
}

// VerifyError is one damaged extent found by VerifyExtents.
type VerifyError struct {
	NodeID uint64
	Page   storage.PageID
	Blocks int
	Err    error
}

// VerifyReport summarizes a physical scan of every extent the tree's
// translation table references.
type VerifyReport struct {
	Extents     int // extents scanned
	Checksummed int // extents carrying a CRC (v2 store format)
	// Node layout population: extents holding the varint (v2) and flat
	// (v3) node encodings, per the translation table. A mixed image is
	// normal mid-upgrade — v2 extents go v3 as their nodes are rewritten.
	LayoutV2 int
	LayoutV3 int
	// Mapped counts extents whose checksum was verified through the
	// memory-mapped view path (VerifyOpts.Mmap on a store that maps).
	Mapped int
	Errors []VerifyError // damaged extents, in node-ID order
}

// OK reports whether the scan found no damage.
func (r VerifyReport) OK() bool { return len(r.Errors) == 0 }

// VerifyOpts configures VerifyExtentsOpts.
type VerifyOpts struct {
	// Mmap verifies extents through the store's memory-mapped views (the
	// bytes queries actually read zero-copy) instead of plain file reads.
	// Stores without a mapping fall back to the file read per extent.
	Mmap bool
}

// extentVerifier is implemented by stores that can check an extent's
// checksum without decoding (and without polluting a buffer pool).
type extentVerifier interface {
	VerifyExtent(id storage.PageID) (blocks int, checksummed bool, err error)
}

// extentViewVerifier is implemented by stores that can force-verify an
// extent through their memory mapping (bypassing the verified-bit cache).
type extentViewVerifier interface {
	VerifyExtentView(id storage.PageID) (blocks int, checksummed bool, mapped bool, err error)
}

// VerifyExtents reads every extent referenced by the translation table and
// verifies its checksum (on stores that carry them; otherwise the read
// itself is the check). Damage is collected, not returned early, so one
// scan reports every bad extent.
func (t *Tree) VerifyExtents() VerifyReport {
	return t.VerifyExtentsOpts(VerifyOpts{})
}

// VerifyExtentsOpts is VerifyExtents with options (dctool verify -mmap).
func (t *Tree) VerifyExtentsOpts(opts VerifyOpts) VerifyReport {
	t.mu.RLock()
	refs := make(map[nodeID]extentRef, len(t.table))
	for id, ref := range t.table {
		refs[id] = ref
	}
	t.mu.RUnlock()

	ids := make([]nodeID, 0, len(refs))
	for id := range refs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var rep VerifyReport
	ev, hasVerify := t.store.(extentVerifier)
	vv, hasView := t.store.(extentViewVerifier)
	for _, id := range ids {
		ref := refs[id]
		rep.Extents++
		switch ref.layout {
		case layoutV3:
			rep.LayoutV3++
		default:
			rep.LayoutV2++
		}
		var err error
		checksummed := false
		switch {
		case opts.Mmap && hasView:
			var mapped bool
			_, checksummed, mapped, err = vv.VerifyExtentView(ref.page)
			if mapped {
				rep.Mapped++
			}
		case hasVerify:
			_, checksummed, err = ev.VerifyExtent(ref.page)
		default:
			_, _, err = t.store.Read(ref.page)
		}
		if checksummed {
			rep.Checksummed++
		}
		if err != nil {
			rep.Errors = append(rep.Errors, VerifyError{
				NodeID: uint64(id), Page: ref.page, Blocks: ref.blocks, Err: err,
			})
		}
	}
	return rep
}
