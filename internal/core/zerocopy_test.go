package core

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// newPagedTree builds a tree on a file-backed store and loads n records.
func newPagedTree(t *testing.T, cfg Config, n int) (*Tree, *storage.PagedStore, []cube.Record, *rand.Rand) {
	t.Helper()
	st, err := storage.OpenPagedStore(filepath.Join(t.TempDir(), "index.dc"), cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := testSchema(t)
	tree, err := New(st, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	recs := genRecords(t, s, rng, n)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tree, st, recs, rng
}

// TestZeroCopyQueryEquivalence: on a flushed layout-v3 image, every query —
// serial, all-measures, and parallel — returns identical answers with the
// flat view path on and off, and the flat path actually serves reads.
func TestZeroCopyQueryEquivalence(t *testing.T) {
	tree, _, _, rng := newPagedTree(t, smallConfig(), 800)
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	s := tree.Schema()
	for i := 0; i < 40; i++ {
		q := randomQuery(rng, s, 0.3)
		reqs := []QueryRequest{
			{Query: q},
			{Query: q, AllMeasures: true},
			{Query: q, Parallel: 4},
		}
		for _, req := range reqs {
			tree.SetZeroCopyReads(false)
			tree.EvictCache()
			want, err := tree.Execute(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			tree.SetZeroCopyReads(true)
			tree.EvictCache()
			got, err := tree.Execute(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !aggMatches(got.Agg, want.Agg) {
				t.Fatalf("query %d: flat %+v != decode %+v", i, got.Agg, want.Agg)
			}
			if req.AllMeasures {
				for j := range want.AggVector {
					if !aggMatches(got.AggVector[j], want.AggVector[j]) {
						t.Fatalf("query %d measure %d: flat %+v != decode %+v",
							i, j, got.AggVector[j], want.AggVector[j])
					}
				}
			}
		}
	}
	m := tree.Metrics()
	if m.FlatNodeReads == 0 {
		t.Fatalf("flat path never served a read: %+v", m)
	}
	if m.MmapViews == 0 {
		t.Fatalf("no mapped views served: %+v", m)
	}
}

// TestZeroCopyScanEquivalence: Scan delivers the same record multiset over
// flat views as over decoded nodes.
func TestZeroCopyScanEquivalence(t *testing.T) {
	tree, _, recs, _ := newPagedTree(t, smallConfig(), 500)
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	count := func() (n int, sum float64) {
		tree.EvictCache()
		err := tree.Scan(func(r cube.Record) bool {
			n++
			sum += r.Measures[0]
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, sum
	}
	tree.SetZeroCopyReads(false)
	wantN, wantSum := count()
	tree.SetZeroCopyReads(true)
	gotN, gotSum := count()
	if gotN != wantN || gotSum != wantSum {
		t.Fatalf("flat scan (%d, %g) != decode scan (%d, %g)", gotN, gotSum, wantN, wantSum)
	}
	if wantN != len(recs) {
		t.Fatalf("scan returned %d records, want %d", wantN, len(recs))
	}
}

// TestLayoutV2Upgrade: an image written with the legacy varint layout
// opens and answers queries (via the decode path), and its extents upgrade
// to the flat layout as checkpoints rewrite them.
func TestLayoutV2Upgrade(t *testing.T) {
	cfg := smallConfig()
	cfg.NodeLayout = 2
	path := filepath.Join(t.TempDir(), "index.dc")
	st, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := testSchema(t)
	tree, err := New(st, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	recs := genRecords(t, s, rng, 400)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	q := randomQuery(rng, s, 0.4)
	want, err := tree.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep := tree.VerifyExtents(); rep.LayoutV3 != 0 || rep.LayoutV2 != rep.Extents {
		t.Fatalf("v2 image layout census: %+v", rep)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the default config: reads must keep working through the
	// decode path, with zero flat reads.
	st2, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tree2, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	got, err := tree2.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !aggMatches(got, want) {
		t.Fatalf("reopened v2 image: %+v, want %+v", got, want)
	}
	if m := tree2.Metrics(); m.FlatNodeReads != 0 {
		t.Fatalf("flat reads served from a v2 image: %+v", m)
	}

	// Delete+reinsert every record dirties each leaf's root path, so the
	// next checkpoint rewrites (and thereby upgrades) those extents.
	for _, r := range recs {
		if err := tree2.Delete(r); err != nil {
			t.Fatal(err)
		}
		if err := tree2.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := tree2.VerifyExtentsOpts(VerifyOpts{Mmap: true})
	if !rep.OK() {
		t.Fatalf("verify after upgrade: %+v", rep.Errors)
	}
	if rep.LayoutV3 == 0 {
		t.Fatalf("no extents upgraded to the flat layout: %+v", rep)
	}
	tree2.EvictCache()
	got, err = tree2.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !aggMatches(got, want) {
		t.Fatalf("after upgrade: %+v, want %+v", got, want)
	}
	if m := tree2.Metrics(); m.FlatNodeReads == 0 {
		t.Fatalf("upgraded image served no flat reads: %+v", m)
	}
}

// TestSnapshotFlatViewsSurviveChurn: as-of queries over flat views run
// lock-free while writers grow and checkpoint the tree — remaps happen
// mid-descent and checkpoint installs land while extents are mapped and
// pinned. Run with -race this doubles as the memory-safety stress.
func TestSnapshotFlatViewsSurviveChurn(t *testing.T) {
	cfg := smallConfig()
	tree, _, _, rng := newPagedTree(t, cfg, 600)
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	s := tree.Schema()

	snap, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantCount := snap.Count()
	q := randomQuery(rng, s, 0.5)
	want, err := tree.Execute(context.Background(), QueryRequest{Query: q, AsOf: snap})
	if err != nil {
		t.Fatal(err)
	}

	extra := genRecords(t, s, rand.New(rand.NewSource(99)), 1500)
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		werr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, r := range extra {
			if stop.Load() {
				return
			}
			if err := tree.Insert(r); err != nil {
				werr = err
				return
			}
			// Checkpoints rewrite extents and grow the file, forcing
			// remaps under the reader's feet.
			if i%150 == 149 {
				if err := tree.Checkpoint(context.Background()); err != nil {
					werr = err
					return
				}
			}
		}
	}()

	for i := 0; i < 60; i++ {
		snap.EvictCache()
		got, err := tree.Execute(context.Background(), QueryRequest{Query: q, AsOf: snap})
		if err != nil {
			t.Errorf("as-of query %d: %v", i, err)
			break
		}
		if !aggMatches(got.Agg, want.Agg) {
			t.Errorf("as-of query %d drifted: %+v, want %+v", i, got.Agg, want.Agg)
			break
		}
		var n int64
		if err := snap.Scan(func(cube.Record) bool { n++; return true }); err != nil {
			t.Errorf("as-of scan %d: %v", i, err)
			break
		}
		if n != wantCount {
			t.Errorf("as-of scan %d saw %d records, want %d", i, n, wantCount)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if werr != nil {
		t.Fatalf("writer: %v", werr)
	}
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
