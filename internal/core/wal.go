package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// This file wires the storage-layer WAL into the tree's write path.
//
// Durability contract of a WAL-backed tree (NewDurable/OpenDurable):
// when Insert or Delete returns nil, the mutation's logical record is on
// stable storage and survives a crash — either inside the WAL tail, to be
// replayed by OpenDurable, or inside a checkpoint (Flush) that superseded
// it. The record is appended under the tree write lock AFTER the in-memory
// mutation succeeds, so the append order equals the mutation order and
// only acknowledged-able mutations are logged; the caller then blocks
// OUTSIDE the lock until the group committer's next fsync covers its LSN.
//
// Checkpoints: Flush persists the full tree with shadow paging, stamps the
// WAL's last LSN into the metadata blob as the checkpoint LSN, and then
// truncates the log. Recovery replays only records with LSN strictly
// greater than the checkpoint LSN, so a crash BETWEEN the durable metadata
// swap and the truncation is safe: the leftover records replay as no-ops
// filtered by LSN, not as double-applied mutations.
//
// Logical records encode per-dimension top-down *string* paths rather than
// interned hierarchy IDs: dictionary registrations are only durable at
// checkpoint time, so a replayed record may mention values the reopened
// dictionaries have never seen. Re-interning through Schema.InternRecord
// re-registers them exactly as the original insert did.

// walOp discriminates logical WAL records.
const (
	walOpInsert byte = 1
	walOpDelete byte = 2
)

// ErrWALRejected is returned by NewDurable when the WAL already holds
// records: creating a fresh tree over a log tail would silently discard
// recoverable mutations — use OpenDurable instead.
var ErrWALRejected = errors.New("dctree: wal holds unreplayed records")

// walState runs group commit for one tree's WAL: appenders (holding the
// tree write lock) register their appended LSN, a committer goroutine
// batches all registrations inside a CommitInterval window (closed early
// at CommitBytes pending payload) into one fsync, and acknowledgment
// waiters block outside the tree lock until the durable frontier covers
// their LSN. With a negative CommitInterval there is no committer: every
// append fsyncs inline (the naive baseline dcbench -wal compares against).
type walState struct {
	w        *storage.WAL
	interval time.Duration
	bytes    int64
	m        *treeMetrics

	mu sync.Mutex
	// Two condition variables on one mutex keep the wakeups targeted: an
	// append signals only the committer; a finished batch broadcasts only
	// to acknowledgment waiters. A single shared cond would wake every
	// blocked appender on every append — a thundering herd that dominates
	// the commit path's cost at high fan-in.
	commitCond *sync.Cond // committer waits here for pending appends
	ackCond    *sync.Cond // waitDurable blocks here for the frontier
	durableLSN uint64     // highest LSN known durable (fsync or checkpoint)
	pendingLSN uint64     // highest appended LSN
	pendingB   int64      // payload bytes appended since the last batch closed
	err        error      // sticky: a failed fsync poisons the write path
	closing    bool
	done       chan struct{}
}

func newWALState(w *storage.WAL, cfg *Config, m *treeMetrics) *walState {
	ws := &walState{
		w:        w,
		interval: cfg.CommitInterval,
		bytes:    int64(cfg.CommitBytes),
		m:        m,
		done:     make(chan struct{}),
	}
	ws.commitCond = sync.NewCond(&ws.mu)
	ws.ackCond = sync.NewCond(&ws.mu)
	ws.durableLSN = w.SyncedLSN()
	ws.pendingLSN = w.LastLSN()
	if ws.interval >= 0 {
		go ws.run()
	} else {
		close(ws.done)
	}
	return ws
}

// append writes one logical record and registers it for the next commit
// batch. Called with the tree write lock held — it must not block on disk
// in group-commit mode (the fsync happens on the committer goroutine).
func (ws *walState) append(payload []byte) (uint64, error) {
	ws.mu.Lock()
	if err := ws.err; err != nil {
		ws.mu.Unlock()
		return 0, err
	}
	ws.mu.Unlock()

	lsn, err := ws.w.Append(payload)
	if err != nil {
		return 0, err
	}
	ws.m.walAppends.Inc()

	if ws.interval < 0 {
		// Naive mode: one fsync per append, inline.
		covered, err := ws.w.Sync()
		if err != nil {
			ws.poison(err)
			return 0, err
		}
		ws.m.walFsyncs.Inc()
		ws.m.walBatches.Inc()
		ws.m.walBatchRecords.Inc()
		ws.noteDurable(covered)
		return lsn, nil
	}

	ws.mu.Lock()
	if lsn > ws.pendingLSN {
		ws.pendingLSN = lsn
	}
	ws.pendingB += int64(len(payload))
	ws.commitCond.Signal() // wake the committer
	ws.mu.Unlock()
	return lsn, nil
}

// waitDurable blocks until lsn is durable (or the write path is
// poisoned). Called WITHOUT the tree lock, so concurrent mutators keep
// filling the current batch while earlier callers wait on it.
func (ws *walState) waitDurable(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for ws.durableLSN < lsn && ws.err == nil {
		if ws.closing {
			return ErrClosed
		}
		ws.ackCond.Wait()
	}
	return ws.err
}

// run is the group committer: wait for pending appends, let the batch
// window fill, fsync once, publish the new durable frontier.
func (ws *walState) run() {
	defer close(ws.done)
	for {
		ws.mu.Lock()
		for ws.pendingLSN <= ws.durableLSN && !ws.closing && ws.err == nil {
			ws.commitCond.Wait()
		}
		if ws.err != nil || (ws.closing && ws.pendingLSN <= ws.durableLSN) {
			ws.mu.Unlock()
			return
		}
		fill := !ws.closing && ws.pendingB < ws.bytes
		ws.mu.Unlock()

		if fill && ws.interval > 0 {
			time.Sleep(ws.interval)
		}

		ws.mu.Lock()
		prev := ws.durableLSN
		ws.pendingB = 0
		ws.mu.Unlock()

		covered, err := ws.w.Sync()
		if err != nil {
			ws.poison(err)
			return
		}
		ws.m.walFsyncs.Inc()
		if batch := int64(covered) - int64(prev); batch > 0 {
			ws.m.walBatches.Inc()
			ws.m.walBatchRecords.Add(batch)
			if batch > ws.m.walBatchMax.Load() {
				ws.m.walBatchMax.Set(batch)
			}
		}
		ws.noteDurable(covered)
	}
}

// noteDurable advances the durable frontier and wakes acknowledgment
// waiters.
func (ws *walState) noteDurable(lsn uint64) {
	ws.mu.Lock()
	if lsn > ws.durableLSN {
		ws.durableLSN = lsn
	}
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// poison records a write-path failure; every waiter and later append sees
// it. Durability can no longer be promised, so the tree stays read-only
// in practice until reopened.
func (ws *walState) poison(err error) {
	ws.mu.Lock()
	if ws.err == nil {
		ws.err = err
	}
	ws.commitCond.Signal()
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// checkpointDone is called by a checkpoint install after the durable
// metadata swap superseded the log up to lsn: everything there is durable
// via the checkpoint, so waiters on those records unblock even though
// their fsync never happened.
func (ws *walState) checkpointDone(lsn uint64) {
	ws.mu.Lock()
	if lsn > ws.durableLSN {
		ws.durableLSN = lsn
	}
	ws.pendingB = 0
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// shutdown stops the committer (flushing any pending batch) and closes
// the log files.
func (ws *walState) shutdown() error {
	ws.mu.Lock()
	ws.closing = true
	ws.commitCond.Signal()
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
	<-ws.done
	return ws.w.Close()
}

// ErrClosed is returned by operations on a closed tree.
var ErrClosed = errors.New("dctree: tree is closed")

// encodeWALRecord serializes one logical mutation: op byte, measures, then
// per dimension the top-down path of value names (length-prefixed each, so
// names may contain any byte).
func (t *Tree) encodeWALRecord(op byte, rec cube.Record) ([]byte, error) {
	buf := []byte{op}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Measures)))
	for _, m := range rec.Measures {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	}
	space := t.space()
	buf = binary.AppendUvarint(buf, uint64(len(space)))
	for d, h := range space {
		depth := h.Depth()
		names := make([]string, depth)
		cur := rec.Coords[d]
		for l := 0; l < depth; l++ {
			name, err := h.ValueName(cur)
			if err != nil {
				return nil, err
			}
			names[l] = name
			if l+1 < depth {
				cur, err = h.Parent(cur)
				if err != nil {
					return nil, err
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(depth))
		for l := depth - 1; l >= 0; l-- { // top-down
			buf = binary.AppendUvarint(buf, uint64(len(names[l])))
			buf = append(buf, names[l]...)
		}
	}
	return buf, nil
}

// decodeWALRecord parses a logical record and re-interns it through the
// schema, re-registering any dictionary values the checkpoint predates.
func decodeWALRecord(schema *cube.Schema, payload []byte) (byte, cube.Record, error) {
	r := metaReader{buf: payload}
	if len(payload) < 1 {
		return 0, cube.Record{}, fmt.Errorf("%w: empty wal record", ErrCorrupt)
	}
	op := r.byte()
	if op != walOpInsert && op != walOpDelete {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record op %d", ErrCorrupt, op)
	}
	nm := int(r.uvarint())
	if r.err != nil || nm != schema.Measures() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record measures", ErrCorrupt)
	}
	measures := make([]float64, nm)
	for j := range measures {
		measures[j] = r.float64()
	}
	nd := int(r.uvarint())
	if r.err != nil || nd != schema.Dims() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record dims", ErrCorrupt)
	}
	paths := make([][]string, nd)
	for d := range paths {
		depth := int(r.uvarint())
		if r.err != nil || depth < 1 || depth > 64 {
			return 0, cube.Record{}, fmt.Errorf("%w: wal record dim %d depth", ErrCorrupt, d)
		}
		path := make([]string, depth)
		for l := range path {
			path[l] = r.string()
		}
		paths[d] = path
	}
	if r.err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record: %v", ErrCorrupt, r.err)
	}
	rec, err := schema.InternRecord(paths, measures)
	if err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record intern: %v", ErrCorrupt, err)
	}
	return op, rec, nil
}

// logMutation appends the logical record for an applied mutation. Called
// under the tree write lock, after the in-memory mutation succeeded.
// Returns the LSN to wait on (0 when the tree has no WAL).
func (t *Tree) logMutation(op byte, rec cube.Record) (uint64, error) {
	if t.wal == nil {
		return 0, nil
	}
	payload, err := t.encodeWALRecord(op, rec)
	if err != nil {
		return 0, err
	}
	return t.wal.append(payload)
}

// waitDurable blocks until the given LSN is durable. No-op for trees
// without a WAL.
func (t *Tree) waitDurable(lsn uint64) error {
	if t.wal == nil {
		return nil
	}
	return t.wal.waitDurable(lsn)
}

// NewDurable creates an empty WAL-backed DC-tree: the write-ahead log at
// walPrefix protects every acknowledged mutation, and the group-commit
// knobs come from cfg (CommitInterval/CommitBytes). The WAL must be empty;
// a log with records belongs to an existing tree and must go through
// OpenDurable, or its recoverable mutations would be silently discarded.
func NewDurable(store storage.Store, schema *cube.Schema, cfg Config, walPrefix string) (*Tree, error) {
	return NewDurableOpts(store, schema, cfg, walPrefix, storage.WALOptions{})
}

// NewDurableOpts is NewDurable with explicit WAL options (segment size,
// and the benchmarks' modeled sync delay).
func NewDurableOpts(store storage.Store, schema *cube.Schema, cfg Config, walPrefix string, wopts storage.WALOptions) (*Tree, error) {
	t, err := New(store, schema, cfg)
	if err != nil {
		return nil, err
	}
	w, err := storage.OpenWAL(walPrefix, wopts)
	if err != nil {
		return nil, err
	}
	if w.Records() > 0 {
		w.Close()
		return nil, ErrWALRejected
	}
	t.checkpointLSN = w.LastLSN()
	// Initial checkpoint: the store must hold valid (empty-tree) metadata
	// before the first log record is acknowledged, or a crash before the
	// first Flush would leave a log tail with no tree to replay it into.
	if err := t.Flush(); err != nil {
		w.Close()
		return nil, err
	}
	t.wal = newWALState(w, &t.cfg, &t.metrics)
	t.startCheckpointer()
	return t, nil
}

// OpenDurable reopens a WAL-backed tree: the last checkpoint is loaded
// from the store, then every log record past the checkpoint LSN is
// replayed through the normal insert/delete path, rebuilding MDSs,
// materialized aggregates and split history exactly as the lost process
// built them. The replayed state is in memory (and still covered by the
// log); the next Flush checkpoints it.
func OpenDurable(store storage.Store, walPrefix string) (*Tree, error) {
	t, err := Open(store)
	if err != nil {
		return nil, err
	}
	w, err := storage.OpenWAL(walPrefix, storage.WALOptions{})
	if err != nil {
		return nil, err
	}
	if err := t.recoverFrom(w); err != nil {
		w.Close()
		return nil, err
	}
	t.wal = newWALState(w, &t.cfg, &t.metrics)
	t.startCheckpointer()
	return t, nil
}

// recoverFrom replays the WAL tail past the tree's checkpoint LSN.
func (t *Tree) recoverFrom(w *storage.WAL) error {
	return w.Replay(func(lsn uint64, payload []byte) error {
		if lsn <= t.checkpointLSN {
			return nil // superseded by the checkpoint
		}
		op, rec, err := decodeWALRecord(t.schema, payload)
		if err != nil {
			return err
		}
		switch op {
		case walOpInsert:
			if _, err := t.insertLocked(rec, false); err != nil {
				return fmt.Errorf("dctree: replaying insert lsn %d: %w", lsn, err)
			}
		case walOpDelete:
			if _, err := t.deleteLocked(rec, false); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("dctree: replaying delete lsn %d: %w", lsn, err)
			}
		}
		t.metrics.recoveryReplayed.Inc()
		return nil
	})
}

// Close stops the background checkpointer (if any), checkpoints the tree
// (Flush) and shuts down the WAL committer and log files. The underlying
// store remains open — its lifecycle belongs to the caller. Safe on trees
// without a WAL, where it is equivalent to Flush.
func (t *Tree) Close() error {
	if t.cp != nil {
		t.cp.shutdown()
		t.cp = nil
	}
	err := t.Flush()
	if t.wal != nil {
		if werr := t.wal.shutdown(); err == nil {
			err = werr
		}
		t.wal = nil
	}
	return err
}

// WALStats exposes the log's activity counters (zero value without a WAL).
func (t *Tree) WALStats() storage.WALStats {
	if t.wal == nil {
		return storage.WALStats{}
	}
	return t.wal.w.Stats()
}
