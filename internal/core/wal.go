package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/storage"
)

// This file wires the storage-layer WAL into the tree's write path.
//
// Durability contract of a WAL-backed tree (NewDurable/OpenDurable):
// when Insert or Delete returns nil, the mutation's logical record is on
// stable storage and survives a crash — either inside the WAL tail, to be
// replayed by OpenDurable, or inside a checkpoint (Flush) that superseded
// it. The record is appended under the tree write lock AFTER the in-memory
// mutation succeeds, so the append order equals the mutation order and
// only acknowledged-able mutations are logged; the caller then blocks
// OUTSIDE the lock until the group committer's next fsync covers its LSN.
//
// Checkpoints: Flush persists the full tree with shadow paging, stamps the
// WAL's last LSN into the metadata blob as the checkpoint LSN, and then
// truncates the log. Recovery replays only records with LSN strictly
// greater than the checkpoint LSN, so a crash BETWEEN the durable metadata
// swap and the truncation is safe: the leftover records replay as no-ops
// filtered by LSN, not as double-applied mutations.
//
// Record formats. Dictionary registrations are only durable at checkpoint
// time, so a replayed record may mention values the reopened dictionaries
// have never seen. The two formats resolve that differently:
//
//   - v1 (WALRecordFormat 1, legacy): every mutation record re-spells the
//     per-dimension top-down *string* paths; re-interning through
//     Schema.InternRecord re-registers them exactly as the original insert
//     did. Robust, but deep hierarchies pay the full path bytes on every
//     append.
//   - v2 (WALRecordFormat 2, default): new-value registrations are logged
//     as separate walOpDictDelta records — framed ahead of the mutation
//     record that first needs them, inside the same tree-lock critical
//     section, so the delta's LSN is always lower and a torn tail can
//     never keep a mutation without its delta. Mutation records then carry
//     only the interned leaf IDs. Recovery replays deltas into the
//     reopened dictionaries (idempotently: a fuzzy checkpoint may already
//     carry a registration whose delta is past the checkpoint LSN) before
//     re-validating mutations.
//
// Decoding dispatches on the op byte, so logs freely mix formats and a
// tree can reopen logs written by either setting (cross-version recovery).

// walOp discriminates logical WAL records.
const (
	walOpInsert    byte = 1 // v1 insert: string paths
	walOpDelete    byte = 2 // v1 delete: string paths
	walOpDictDelta byte = 3 // dictionary registration delta batch
	walOpInsertV2  byte = 4 // v2 insert: interned leaf IDs
	walOpDeleteV2  byte = 5 // v2 delete: interned leaf IDs
	walOpVersion   byte = 6 // MVCC snapshot marker: version ID at this LSN
	// walOpVersionRelease marks a version's release at this LSN. Recovery
	// and replicas release the named version if it is live; without the
	// record, a version released after the last checkpoint would rehydrate
	// from the checkpoint's manifest (meta v8) and resurrect on reopen.
	walOpVersionRelease byte = 7
)

// Config.WALRecordFormat values.
const (
	walFormatPaths = 1 // legacy full string paths
	walFormatIDs   = 2 // dictionary deltas + interned IDs
)

// dictDelta is one observed dictionary registration awaiting its WAL
// record: value name under parent received id in dimension dim.
type dictDelta struct {
	dim    int
	id     hierarchy.ID
	parent hierarchy.ID
	name   string
}

// ErrWALRejected is returned by NewDurable when the WAL already holds
// records: creating a fresh tree over a log tail would silently discard
// recoverable mutations — use OpenDurable instead.
var ErrWALRejected = errors.New("dctree: wal holds unreplayed records")

// ErrFenced is the fencing violation: a replication peer presented an
// epoch older than the local one. A follower returns it from
// ApplyReplicated when a deposed primary keeps shipping records minted
// before the promotion; a primary's write path is poisoned with it when a
// follower acknowledgment reveals a higher epoch — the primary has been
// deposed, and acknowledging further writes would lose them on failover.
// Like an fsync failure it is sticky: the poisoned tree stays queryable
// but rejects mutations until reopened.
var ErrFenced = errors.New("dctree: replication epoch fenced (peer was promoted)")

// walState runs group commit for one tree's WAL: appenders (holding the
// tree write lock) register their appended LSN, a committer goroutine
// batches all registrations inside a CommitInterval window (closed early
// at CommitBytes pending payload) into one fsync, and acknowledgment
// waiters block outside the tree lock until the durable frontier covers
// their LSN. With a negative CommitInterval there is no committer: every
// append fsyncs inline (the naive baseline dcbench -wal compares against).
type walState struct {
	w        *storage.WAL
	interval time.Duration
	bytes    int64
	m        *treeMetrics

	// Group-commit autotuning (Config.CommitAutoTune): the committer adapts
	// its effective window each batch instead of sleeping the fixed
	// interval. effNs is the current window in nanoseconds (atomic: the
	// committer stores, Metrics loads); fsyncEWMA and sparseRuns are
	// committer-goroutine-only state — an exponentially weighted average of
	// observed fsync latency, and how many consecutive batches held a single
	// record (the signal that waiting buys no batching).
	autotune   bool
	effNs      atomic.Int64
	fsyncEWMA  time.Duration
	sparseRuns int

	// Synchronous replication (Config.SyncReplication): when syncAcks > 0,
	// waitDurable additionally blocks until replLSN — the syncAcks-th
	// highest follower-confirmed LSN — covers the write, or syncTimeout
	// expires and the write degrades to asynchronous acknowledgment.
	syncAcks    int
	syncTimeout time.Duration

	mu sync.Mutex
	// Two condition variables on one mutex keep the wakeups targeted: an
	// append signals only the committer; a finished batch broadcasts only
	// to acknowledgment waiters. A single shared cond would wake every
	// blocked appender on every append — a thundering herd that dominates
	// the commit path's cost at high fan-in.
	commitCond *sync.Cond // committer waits here for pending appends
	ackCond    *sync.Cond // waitDurable blocks here for the frontier
	durableLSN uint64     // highest LSN known durable (fsync or checkpoint)
	pendingLSN uint64     // highest appended LSN
	pendingB   int64      // payload bytes appended since the last batch closed
	err        error      // sticky: a failed fsync poisons the write path
	closing    bool
	done       chan struct{}
	// Follower acknowledgment registry: the highest LSN each follower has
	// confirmed durable on its side. The minimum is the log retention
	// floor (a truncation past it would strand the slowest follower); the
	// syncAcks-th highest is replLSN, the quorum-confirmed frontier
	// synchronous writes wait on.
	followers map[string]uint64
	replLSN   uint64
}

func newWALState(w *storage.WAL, cfg *Config, m *treeMetrics) *walState {
	ws := &walState{
		w:           w,
		interval:    cfg.CommitInterval,
		bytes:       int64(cfg.CommitBytes),
		m:           m,
		syncAcks:    cfg.SyncReplication,
		syncTimeout: cfg.SyncReplicationTimeout,
		followers:   make(map[string]uint64),
		done:        make(chan struct{}),
	}
	ws.commitCond = sync.NewCond(&ws.mu)
	ws.ackCond = sync.NewCond(&ws.mu)
	ws.durableLSN = w.SyncedLSN()
	ws.pendingLSN = w.LastLSN()
	ws.autotune = cfg.CommitAutoTune && ws.interval > 0
	if ws.interval > 0 {
		ws.effNs.Store(int64(ws.interval))
		m.walCommitIntervalNs.Set(int64(ws.interval))
	}
	if ws.interval >= 0 {
		go ws.run()
	} else {
		close(ws.done)
	}
	return ws
}

// append writes one logical record and registers it for the next commit
// batch. Called with the tree write lock held — it must not block on disk
// in group-commit mode (the fsync happens on the committer goroutine).
func (ws *walState) append(payload []byte) (uint64, error) {
	ws.mu.Lock()
	if err := ws.err; err != nil {
		ws.mu.Unlock()
		return 0, err
	}
	ws.mu.Unlock()

	lsn, err := ws.w.Append(payload)
	if err != nil {
		return 0, err
	}
	ws.m.walAppends.Inc()

	if ws.interval < 0 {
		// Naive mode: one fsync per append, inline.
		covered, err := ws.w.Sync()
		if err != nil {
			ws.poison(err)
			return 0, err
		}
		ws.m.walFsyncs.Inc()
		ws.m.walBatches.Inc()
		ws.m.walBatchRecords.Inc()
		// Every naive-mode batch is exactly one record; the max-batch gauge
		// must say so rather than sit at its zero value precisely in the one
		// mode where the batch size is known a priori.
		if ws.m.walBatchMax.Load() < 1 {
			ws.m.walBatchMax.Set(1)
		}
		ws.noteDurable(covered)
		return lsn, nil
	}

	ws.mu.Lock()
	if lsn > ws.pendingLSN {
		ws.pendingLSN = lsn
	}
	ws.pendingB += int64(len(payload))
	ws.commitCond.Signal() // wake the committer
	ws.mu.Unlock()
	return lsn, nil
}

// waitDurable blocks until lsn is durable (or the write path is
// poisoned). Called WITHOUT the tree lock, so concurrent mutators keep
// filling the current batch while earlier callers wait on it. Under
// synchronous replication (syncAcks > 0) it then also waits for the
// quorum frontier to cover lsn; if syncTimeout expires first the write is
// acknowledged on local durability alone and the degradation is counted —
// a dead follower slows the primary down to the timeout, never to a halt.
func (ws *walState) waitDurable(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for ws.durableLSN < lsn && ws.err == nil {
		if ws.closing {
			return ErrClosed
		}
		ws.ackCond.Wait()
	}
	if ws.err != nil || ws.syncAcks <= 0 || ws.replLSN >= lsn {
		return ws.err
	}
	// Quorum wait. sync.Cond has no timed wait, so a one-shot timer flips
	// a per-waiter flag and broadcasts; the loop re-checks it on wakeup.
	timedOut := false
	timer := time.AfterFunc(ws.syncTimeout, func() {
		ws.mu.Lock()
		timedOut = true
		ws.ackCond.Broadcast()
		ws.mu.Unlock()
	})
	defer timer.Stop()
	for ws.replLSN < lsn && ws.err == nil && !ws.closing && !timedOut {
		ws.ackCond.Wait()
	}
	if ws.err != nil {
		return ws.err
	}
	if ws.replLSN < lsn {
		// Timed out (or the tree is closing): the record is durable locally
		// but unconfirmed by the quorum. Degrade to async rather than fail
		// a write that recovery would replay anyway.
		ws.m.replSyncDegraded.Inc()
	}
	return nil
}

// observeAck records one follower's confirmation that it has durably
// applied the log through lsn, and returns the new retention floor (the
// slowest follower's frontier) for the caller to push into the WAL. The
// quorum frontier advances to the syncAcks-th highest confirmed LSN,
// waking synchronous writers it now covers.
func (ws *walState) observeAck(follower string, lsn uint64) uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if lsn > ws.followers[follower] {
		ws.followers[follower] = lsn
	}
	floor := ^uint64(0)
	for _, l := range ws.followers {
		if l < floor {
			floor = l
		}
	}
	if ws.syncAcks > 0 && len(ws.followers) >= ws.syncAcks {
		acked := make([]uint64, 0, len(ws.followers))
		for _, l := range ws.followers {
			acked = append(acked, l)
		}
		sort.Slice(acked, func(i, j int) bool { return acked[i] > acked[j] })
		if fr := acked[ws.syncAcks-1]; fr > ws.replLSN {
			ws.replLSN = fr
			ws.ackCond.Broadcast()
		}
	}
	return floor
}

// run is the group committer: wait for pending appends, let the batch
// window fill, fsync once, publish the new durable frontier.
func (ws *walState) run() {
	defer close(ws.done)
	for {
		ws.mu.Lock()
		for ws.pendingLSN <= ws.durableLSN && !ws.closing && ws.err == nil {
			ws.commitCond.Wait()
		}
		if ws.err != nil || (ws.closing && ws.pendingLSN <= ws.durableLSN) {
			ws.mu.Unlock()
			return
		}
		fill := !ws.closing && ws.pendingB < ws.bytes
		ws.mu.Unlock()

		if iv := ws.window(); fill && iv > 0 {
			time.Sleep(iv)
		}

		ws.mu.Lock()
		prev := ws.durableLSN
		ws.pendingB = 0
		ws.mu.Unlock()

		syncStart := time.Now()
		covered, err := ws.w.Sync()
		if err != nil {
			ws.poison(err)
			return
		}
		ws.m.walFsyncs.Inc()
		batch := int64(covered) - int64(prev)
		if batch > 0 {
			ws.m.walBatches.Inc()
			ws.m.walBatchRecords.Add(batch)
			if batch > ws.m.walBatchMax.Load() {
				ws.m.walBatchMax.Set(batch)
			}
		}
		if ws.autotune {
			ws.retune(time.Since(syncStart), batch)
		}
		ws.noteDurable(covered)
	}
}

// window returns the batch window the committer sleeps: the configured
// interval, or the adapted one under autotuning.
func (ws *walState) window() time.Duration {
	if ws.autotune {
		return time.Duration(ws.effNs.Load())
	}
	return ws.interval
}

// retune adapts the group-commit window after one batch. Committer
// goroutine only. Two forces act on the window:
//
//   - Sustained batching pulls it toward the fsync-latency EWMA: while one
//     sync is in flight the next batch fills for free, so a window much
//     longer than the sync adds latency without batching more, and a much
//     shorter one issues syncs faster than the device completes them.
//     The pull is gradual (a quarter of the gap per batch) so one outlier
//     sync cannot yank the window.
//   - Consecutive single-record batches mean arrivals are sparser than the
//     window: waiting delayed the lone record and batched nothing, so the
//     window halves toward zero and solo writers converge on sync-per-append
//     latency. One sparse batch is ignored — bursty workloads routinely
//     trail a burst with a straggler.
//
// The window is clamped to [0, 8×CommitInterval], so the configured value
// keeps its meaning as the knob an operator reasons about.
func (ws *walState) retune(fsync time.Duration, batch int64) {
	if ws.fsyncEWMA == 0 {
		ws.fsyncEWMA = fsync
	} else {
		ws.fsyncEWMA += (fsync - ws.fsyncEWMA) / 4
	}
	if batch <= 1 {
		ws.sparseRuns++
	} else {
		ws.sparseRuns = 0
	}
	cur := time.Duration(ws.effNs.Load())
	var next time.Duration
	if ws.sparseRuns >= 2 {
		next = cur / 2
	} else {
		next = cur + (ws.fsyncEWMA-cur)/4
	}
	if lim := 8 * ws.interval; next > lim {
		next = lim
	}
	if next < 0 {
		next = 0
	}
	if next != cur {
		ws.effNs.Store(int64(next))
		ws.m.walAutotuneAdjusts.Inc()
	}
	ws.m.walCommitIntervalNs.Set(int64(next))
}

// noteDurable advances the durable frontier and wakes acknowledgment
// waiters.
func (ws *walState) noteDurable(lsn uint64) {
	ws.mu.Lock()
	if lsn > ws.durableLSN {
		ws.durableLSN = lsn
	}
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// poison records a write-path failure; every waiter and later append sees
// it. Durability can no longer be promised, so the tree stays read-only
// in practice until reopened.
func (ws *walState) poison(err error) {
	ws.mu.Lock()
	if ws.err == nil {
		ws.err = err
	}
	ws.commitCond.Signal()
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// checkpointDone is called by a checkpoint install after the durable
// metadata swap superseded the log up to lsn: everything there is durable
// via the checkpoint, so waiters on those records unblock even though
// their fsync never happened.
func (ws *walState) checkpointDone(lsn uint64) {
	ws.mu.Lock()
	if lsn > ws.durableLSN {
		ws.durableLSN = lsn
	}
	ws.pendingB = 0
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
}

// shutdown stops the committer (flushing any pending batch) and closes
// the log files.
func (ws *walState) shutdown() error {
	ws.mu.Lock()
	ws.closing = true
	ws.commitCond.Signal()
	ws.ackCond.Broadcast()
	ws.mu.Unlock()
	<-ws.done
	return ws.w.Close()
}

// ErrClosed is returned by operations on a closed tree.
var ErrClosed = errors.New("dctree: tree is closed")

// encodeWALRecord serializes one logical mutation in the tree's configured
// record format.
func (t *Tree) encodeWALRecord(op byte, rec cube.Record) ([]byte, error) {
	if t.cfg.WALRecordFormat == walFormatIDs {
		return encodeWALRecordV2(op, rec), nil
	}
	return t.encodeWALRecordV1(op, rec)
}

// encodeWALRecordV1 serializes one logical mutation in the legacy format:
// op byte, measures, then per dimension the top-down path of value names
// (length-prefixed each, so names may contain any byte).
func (t *Tree) encodeWALRecordV1(op byte, rec cube.Record) ([]byte, error) {
	buf := []byte{op}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Measures)))
	for _, m := range rec.Measures {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	}
	space := t.space()
	buf = binary.AppendUvarint(buf, uint64(len(space)))
	for d, h := range space {
		depth := h.Depth()
		names := make([]string, depth)
		cur := rec.Coords[d]
		for l := 0; l < depth; l++ {
			name, err := h.ValueName(cur)
			if err != nil {
				return nil, err
			}
			names[l] = name
			if l+1 < depth {
				cur, err = h.Parent(cur)
				if err != nil {
					return nil, err
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(depth))
		for l := depth - 1; l >= 0; l-- { // top-down
			buf = binary.AppendUvarint(buf, uint64(len(names[l])))
			buf = append(buf, names[l]...)
		}
	}
	return buf, nil
}

// encodeWALRecordV2 serializes one logical mutation in the compact format:
// op byte, measures, then one interned leaf ID per dimension. The IDs are
// meaningful because every registration they depend on is either in the
// last checkpoint's dictionaries or in a walOpDictDelta record with a
// lower LSN.
func encodeWALRecordV2(op byte, rec cube.Record) []byte {
	if op == walOpInsert {
		op = walOpInsertV2
	} else {
		op = walOpDeleteV2
	}
	buf := make([]byte, 0, 4+9*len(rec.Measures)+5*len(rec.Coords))
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Measures)))
	for _, m := range rec.Measures {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Coords)))
	for _, c := range rec.Coords {
		buf = binary.AppendUvarint(buf, uint64(uint32(c)))
	}
	return buf
}

// encodeDictDelta serializes a batch of dictionary registrations: op byte,
// entry count, then per entry the dimension, the minted ID, its parent and
// the value name.
func encodeDictDelta(deltas []dictDelta) []byte {
	buf := []byte{walOpDictDelta}
	buf = binary.AppendUvarint(buf, uint64(len(deltas)))
	for _, d := range deltas {
		buf = binary.AppendUvarint(buf, uint64(d.dim))
		buf = binary.AppendUvarint(buf, uint64(uint32(d.id)))
		buf = binary.AppendUvarint(buf, uint64(uint32(d.parent)))
		buf = binary.AppendUvarint(buf, uint64(len(d.name)))
		buf = append(buf, d.name...)
	}
	return buf
}

// applyDictDelta replays one walOpDictDelta payload into the schema's
// dictionaries. Idempotent for registrations a fuzzy checkpoint already
// captured; any other disagreement between log and dictionaries (or any
// malformed byte) fails closed with ErrCorrupt.
func applyDictDelta(schema *cube.Schema, payload []byte) error {
	r := metaReader{buf: payload}
	if r.byte() != walOpDictDelta {
		return fmt.Errorf("%w: not a dict delta record", ErrCorrupt)
	}
	count := r.uvarint()
	if r.err != nil || count > uint64(len(payload)) {
		return fmt.Errorf("%w: dict delta count", ErrCorrupt)
	}
	for i := uint64(0); i < count; i++ {
		dim := r.uvarint()
		id := r.uvarint()
		parent := r.uvarint()
		name := r.string()
		if r.err != nil {
			return fmt.Errorf("%w: dict delta entry %d: %v", ErrCorrupt, i, r.err)
		}
		if dim >= uint64(schema.Dims()) || id > math.MaxUint32 || parent > math.MaxUint32 {
			return fmt.Errorf("%w: dict delta entry %d out of range", ErrCorrupt, i)
		}
		h, err := schema.Dim(int(dim))
		if err != nil {
			return fmt.Errorf("%w: dict delta entry %d: %v", ErrCorrupt, i, err)
		}
		if err := h.RestoreValue(hierarchy.ID(id), hierarchy.ID(parent), name); err != nil {
			return fmt.Errorf("%w: dict delta entry %d: %v", ErrCorrupt, i, err)
		}
	}
	if r.off != len(payload) {
		return fmt.Errorf("%w: dict delta trailing bytes", ErrCorrupt)
	}
	return nil
}

// decodeWALRecord parses a logical mutation record of either format,
// returning the canonical v1 op. v1 records re-intern through the schema
// (re-registering any dictionary values the checkpoint predates); v2
// records resolve their IDs against dictionaries that the checkpoint plus
// the preceding dict deltas have already rebuilt.
func decodeWALRecord(schema *cube.Schema, payload []byte) (byte, cube.Record, error) {
	if len(payload) < 1 {
		return 0, cube.Record{}, fmt.Errorf("%w: empty wal record", ErrCorrupt)
	}
	switch payload[0] {
	case walOpInsert, walOpDelete:
		return decodeWALRecordV1(schema, payload)
	case walOpInsertV2, walOpDeleteV2:
		return decodeWALRecordV2(schema, payload)
	default:
		return 0, cube.Record{}, fmt.Errorf("%w: wal record op %d", ErrCorrupt, payload[0])
	}
}

func decodeWALRecordV2(schema *cube.Schema, payload []byte) (byte, cube.Record, error) {
	r := metaReader{buf: payload}
	op := walOpInsert
	if r.byte() == walOpDeleteV2 {
		op = walOpDelete
	}
	nm := int(r.uvarint())
	if r.err != nil || nm != schema.Measures() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record measures", ErrCorrupt)
	}
	measures := make([]float64, nm)
	for j := range measures {
		measures[j] = r.float64()
	}
	nd := int(r.uvarint())
	if r.err != nil || nd != schema.Dims() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record dims", ErrCorrupt)
	}
	coords := make([]hierarchy.ID, nd)
	for d := range coords {
		v := r.uvarint()
		if v > math.MaxUint32 {
			return 0, cube.Record{}, fmt.Errorf("%w: wal record dim %d id", ErrCorrupt, d)
		}
		coords[d] = hierarchy.ID(v)
	}
	if r.err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record: %v", ErrCorrupt, r.err)
	}
	rec := cube.Record{Coords: coords, Measures: measures}
	// The IDs must already be registered leaves: either the checkpoint's
	// dictionaries or a preceding dict delta carried them. An unknown ID
	// means the log lost a delta — corruption, not a recoverable state.
	if err := schema.ValidateRecord(rec); err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record ids: %v", ErrCorrupt, err)
	}
	return op, rec, nil
}

func decodeWALRecordV1(schema *cube.Schema, payload []byte) (byte, cube.Record, error) {
	r := metaReader{buf: payload}
	op := r.byte()
	nm := int(r.uvarint())
	if r.err != nil || nm != schema.Measures() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record measures", ErrCorrupt)
	}
	measures := make([]float64, nm)
	for j := range measures {
		measures[j] = r.float64()
	}
	nd := int(r.uvarint())
	if r.err != nil || nd != schema.Dims() {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record dims", ErrCorrupt)
	}
	paths := make([][]string, nd)
	for d := range paths {
		depth := int(r.uvarint())
		if r.err != nil || depth < 1 || depth > 64 {
			return 0, cube.Record{}, fmt.Errorf("%w: wal record dim %d depth", ErrCorrupt, d)
		}
		path := make([]string, depth)
		for l := range path {
			path[l] = r.string()
		}
		paths[d] = path
	}
	if r.err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record: %v", ErrCorrupt, r.err)
	}
	rec, err := schema.InternRecord(paths, measures)
	if err != nil {
		return 0, cube.Record{}, fmt.Errorf("%w: wal record intern: %v", ErrCorrupt, err)
	}
	return op, rec, nil
}

// encodeVersionRecord serializes an MVCC snapshot marker: the record's LSN
// is the snapshot point, and the payload names the version it defines.
func encodeVersionRecord(versionID uint64) []byte {
	buf := []byte{walOpVersion}
	return binary.AppendUvarint(buf, versionID)
}

// decodeVersionRecord parses a walOpVersion payload.
func decodeVersionRecord(payload []byte) (uint64, error) {
	r := metaReader{buf: payload}
	if r.byte() != walOpVersion {
		return 0, fmt.Errorf("%w: not a version record", ErrCorrupt)
	}
	id := r.uvarint()
	if r.err != nil || id == 0 || r.off != len(payload) {
		return 0, fmt.Errorf("%w: version record", ErrCorrupt)
	}
	return id, nil
}

// encodeVersionReleaseRecord serializes an MVCC release marker: the named
// version is no longer live from this LSN on.
func encodeVersionReleaseRecord(versionID uint64) []byte {
	buf := []byte{walOpVersionRelease}
	return binary.AppendUvarint(buf, versionID)
}

// decodeVersionReleaseRecord parses a walOpVersionRelease payload.
func decodeVersionReleaseRecord(payload []byte) (uint64, error) {
	r := metaReader{buf: payload}
	if r.byte() != walOpVersionRelease {
		return 0, fmt.Errorf("%w: not a version release record", ErrCorrupt)
	}
	id := r.uvarint()
	if r.err != nil || id == 0 || r.off != len(payload) {
		return 0, fmt.Errorf("%w: version release record", ErrCorrupt)
	}
	return id, nil
}

// installDictHooks arms the per-dimension registration hooks that feed
// dictionary deltas into dictPending. Called once a durable tree's record
// format is known to be v2 — AFTER the initial checkpoint (NewDurable) or
// recovery (OpenDurable), whose own registrations need no deltas: the
// former persists the dictionaries in meta, the latter's source records
// stay in the log until a checkpoint supersedes them.
func (t *Tree) installDictHooks() {
	if t.cfg.WALRecordFormat != walFormatIDs {
		return
	}
	for d := 0; d < t.schema.Dims(); d++ {
		h, err := t.schema.Dim(d)
		if err != nil {
			continue
		}
		dim := d
		h.SetRegisterHook(func(id, parent hierarchy.ID, name string) {
			t.dictMu.Lock()
			t.dictPending = append(t.dictPending, dictDelta{dim: dim, id: id, parent: parent, name: name})
			t.dictMu.Unlock()
		})
	}
}

// logMutation appends the logical record for an applied mutation — preceded,
// in v2 format, by a dict delta record for any registrations observed since
// the last mutation. Called under the tree write lock, after the in-memory
// mutation succeeded, so the delta's LSN is strictly below the mutation's
// and no later mutation can slip between them. Returns the LSN to wait on
// (0 when the tree has no WAL).
func (t *Tree) logMutation(op byte, rec cube.Record) (uint64, error) {
	if t.wal == nil {
		return 0, nil
	}
	if t.cfg.WALRecordFormat == walFormatIDs {
		t.dictMu.Lock()
		deltas := t.dictPending
		t.dictPending = nil
		t.dictMu.Unlock()
		if len(deltas) > 0 {
			if _, err := t.wal.append(encodeDictDelta(deltas)); err != nil {
				return 0, err
			}
			t.metrics.walDictDeltas.Add(int64(len(deltas)))
		}
	}
	payload, err := t.encodeWALRecord(op, rec)
	if err != nil {
		return 0, err
	}
	return t.wal.append(payload)
}

// waitDurable blocks until the given LSN is durable. No-op for trees
// without a WAL.
func (t *Tree) waitDurable(lsn uint64) error {
	if t.wal == nil {
		return nil
	}
	return t.wal.waitDurable(lsn)
}

// NewDurable creates an empty WAL-backed DC-tree: the write-ahead log at
// walPrefix protects every acknowledged mutation, and the group-commit
// knobs come from cfg (CommitInterval/CommitBytes). The WAL must be empty;
// a log with records belongs to an existing tree and must go through
// OpenDurable, or its recoverable mutations would be silently discarded.
func NewDurable(store storage.Store, schema *cube.Schema, cfg Config, walPrefix string) (*Tree, error) {
	return NewDurableOpts(store, schema, cfg, walPrefix, storage.WALOptions{})
}

// NewDurableOpts is NewDurable with explicit WAL options (segment size,
// and the benchmarks' modeled sync delay).
func NewDurableOpts(store storage.Store, schema *cube.Schema, cfg Config, walPrefix string, wopts storage.WALOptions) (*Tree, error) {
	t, err := New(store, schema, cfg)
	if err != nil {
		return nil, err
	}
	w, err := storage.OpenWAL(walPrefix, wopts)
	if err != nil {
		return nil, err
	}
	if w.Records() > 0 {
		w.Close()
		return nil, ErrWALRejected
	}
	// Fresh durable trees start at epoch 1 (0 is reserved for pre-fencing
	// trees, which nothing ever fences). The empty first segment is
	// restamped so the log agrees with the meta from the first record on.
	t.epoch = 1
	if e := w.Epoch(); e > t.epoch {
		t.epoch = e // reattached to a pre-epoched (empty) log
	}
	w.SetEpoch(t.epoch)
	t.checkpointLSN = w.LastLSN()
	// Initial checkpoint: the store must hold valid (empty-tree) metadata
	// before the first log record is acknowledged, or a crash before the
	// first Flush would leave a log tail with no tree to replay it into.
	if err := t.Flush(); err != nil {
		w.Close()
		return nil, err
	}
	// Hooks arm only now: the pre-existing dictionary contents (if the
	// schema was pre-registered) are already durable in the checkpoint.
	t.installDictHooks()
	t.wal = newWALState(w, &t.cfg, &t.metrics)
	t.startCheckpointer()
	return t, nil
}

// OpenDurable reopens a WAL-backed tree: the last checkpoint is loaded
// from the store, then every log record past the checkpoint LSN is
// replayed through the normal insert/delete path, rebuilding MDSs,
// materialized aggregates and split history exactly as the lost process
// built them. The replayed state is in memory (and still covered by the
// log); the next Flush checkpoints it.
func OpenDurable(store storage.Store, walPrefix string) (*Tree, error) {
	return OpenDurableOpts(store, walPrefix, storage.WALOptions{})
}

// OpenDurableOpts is OpenDurable with explicit WAL options. Reopening is
// where the write-side knobs (compression, recycle pool) must be
// re-passed to stay in effect — the log file itself records per frame
// whether it is compressed, so reading never depends on them.
func OpenDurableOpts(store storage.Store, walPrefix string, wopts storage.WALOptions) (*Tree, error) {
	t, err := Open(store)
	if err != nil {
		return nil, err
	}
	w, err := storage.OpenWAL(walPrefix, wopts)
	if err != nil {
		return nil, err
	}
	// Reconcile the fencing epoch: the meta blob and the WAL segment
	// headers each carry it durably, and either can be ahead (a promotion
	// rotates the log before the next checkpoint rewrites the meta; a
	// checkpoint can survive a log truncated by retention). The truth is
	// the maximum, pushed back down into the WAL so new segments carry it.
	if e := w.Epoch(); e > t.epoch {
		t.epoch = e
	}
	w.SetEpoch(t.epoch)
	if err := t.recoverFrom(w); err != nil {
		w.Close()
		return nil, err
	}
	// Hooks arm only after recovery: replayed registrations come from
	// records still in the log (or deltas already there), so logging them
	// again would be redundant.
	t.installDictHooks()
	t.wal = newWALState(w, &t.cfg, &t.metrics)
	t.startCheckpointer()
	return t, nil
}

// recoverFrom replays the WAL tail past the tree's checkpoint LSN:
// dictionary deltas rebuild the registrations first (their LSNs precede
// every mutation that needs them), then mutations re-apply through the
// normal insert/delete path. recoveryReplayed counts mutations only —
// deltas are bookkeeping, not replayed updates.
func (t *Tree) recoverFrom(w *storage.WAL) error {
	return w.Replay(func(lsn uint64, payload []byte) error {
		if lsn <= t.checkpointLSN {
			return nil // superseded by the checkpoint
		}
		if len(payload) > 0 && payload[0] == walOpDictDelta {
			if err := applyDictDelta(t.schema, payload); err != nil {
				return fmt.Errorf("dctree: replaying dict delta lsn %d: %w", lsn, err)
			}
			return nil
		}
		if len(payload) > 0 && payload[0] == walOpVersion {
			// The tree right now is exactly the state at this record's LSN
			// (checkpoint plus the replayed prefix), so re-capturing here
			// reconstructs the version with its original contents. Versions
			// whose record the checkpoint superseded were rehydrated from the
			// checkpoint's manifests (meta v8) before replay started — the
			// LSN filter above keeps the two sources disjoint.
			id, err := decodeVersionRecord(payload)
			if err != nil {
				return fmt.Errorf("dctree: replaying version record lsn %d: %w", lsn, err)
			}
			if _, err := t.snapshotLocked(id, lsn); err != nil {
				return fmt.Errorf("dctree: reconstructing version %d lsn %d: %w", id, lsn, err)
			}
			t.metrics.snapshotsRecovered.Inc()
			return nil
		}
		if len(payload) > 0 && payload[0] == walOpVersionRelease {
			// A release past the checkpoint: the version may have been
			// rehydrated from the checkpoint's manifest or re-captured from
			// an earlier record in this replay — either way it must not
			// survive the restart its owner released it before.
			id, err := decodeVersionReleaseRecord(payload)
			if err != nil {
				return fmt.Errorf("dctree: replaying version release lsn %d: %w", lsn, err)
			}
			t.releaseVersionReplayLocked(id)
			return nil
		}
		op, rec, err := decodeWALRecord(t.schema, payload)
		if err != nil {
			return err
		}
		switch op {
		case walOpInsert:
			if _, err := t.insertLocked(rec, false); err != nil {
				return fmt.Errorf("dctree: replaying insert lsn %d: %w", lsn, err)
			}
		case walOpDelete:
			if _, err := t.deleteLocked(rec, false); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("dctree: replaying delete lsn %d: %w", lsn, err)
			}
		}
		t.metrics.recoveryReplayed.Inc()
		return nil
	})
}

// Close stops the background checkpointer (if any), checkpoints the tree
// (Flush) and shuts down the WAL committer and log files. The underlying
// store remains open — its lifecycle belongs to the caller. Safe on trees
// without a WAL, where it is equivalent to Flush.
func (t *Tree) Close() error {
	if t.cp != nil {
		t.cp.shutdown()
		t.cp = nil
	}
	// Live versions are NOT released here: the final checkpoint persists
	// their overlays and manifests (meta v8), so they survive the restart
	// and rehydrate on the next open. Release or prune explicitly to let
	// their extents go.
	err := t.Flush()
	if t.wal != nil {
		if werr := t.wal.shutdown(); err == nil {
			err = werr
		}
		t.wal = nil
	}
	return err
}

// WAL exposes the tree's write-ahead log to the log-shipping layer
// (internal/repl): segment enumeration with durable frontiers, range reads,
// and the replication retention floor. Nil on trees without a WAL. Callers
// must not append, sync, truncate or close the log — those belong to the
// tree's committer and checkpoints.
func (t *Tree) WAL() *storage.WAL {
	if t.wal == nil {
		return nil
	}
	return t.wal.w
}

// WALStats exposes the log's activity counters (zero value without a WAL).
func (t *Tree) WALStats() storage.WALStats {
	if t.wal == nil {
		return storage.WALStats{}
	}
	return t.wal.w.Stats()
}

// Epoch returns the tree's replication fencing epoch: 1 for a fresh
// durable tree, incremented by every promotion, 0 for trees that predate
// fencing. Shipped log records carry the epoch of the segment that holds
// them; a follower refuses records below its own epoch (ErrFenced).
func (t *Tree) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// BumpEpoch increments the fencing epoch and makes the new value durable
// before returning: the WAL rotates onto a segment stamped with the new
// epoch (its header is fsynced by creation), so every record acknowledged
// after a promotion is provably from the new timeline even if the process
// dies before the next checkpoint persists the epoch in meta. Promotion
// (internal/repl) is the only intended caller.
func (t *Tree) BumpEpoch() (uint64, error) {
	if t.wal == nil {
		return 0, fmt.Errorf("dctree: BumpEpoch on a tree without a WAL")
	}
	epoch, err := t.wal.w.BumpEpoch()
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.epoch = epoch
	t.mu.Unlock()
	return epoch, nil
}

// ObserveFollowerAck folds one follower acknowledgment into the primary:
// the follower named has durably applied the shipped log through lsn
// while on the given epoch. The replication retention floor tracks the
// slowest follower, synchronous writers waiting on the quorum frontier
// wake as it advances — and an acknowledgment from a HIGHER epoch means a
// follower was promoted while this primary kept running: the write path
// is poisoned with ErrFenced exactly as a failed fsync would poison it,
// because acknowledging further writes here would lose them on failover.
// No-op on trees without a WAL.
func (t *Tree) ObserveFollowerAck(follower string, epoch, lsn uint64) error {
	if t.wal == nil {
		return nil
	}
	if own := t.Epoch(); epoch > own && own > 0 {
		t.wal.poison(ErrFenced)
		return ErrFenced
	}
	floor := t.wal.observeAck(follower, lsn)
	t.wal.w.SetRetainLSN(floor)
	return nil
}
