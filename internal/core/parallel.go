package core

import (
	"context"
	"sync"

	"github.com/dcindex/dctree/internal/cube"
)

// executeParallel runs one range query over a worker pool: the subtrees of
// the shallowest directory levels are fanned out across goroutines and
// their partial aggregates merged. Queries only read the tree (inserts are
// excluded by the tree lock for the duration), so the descent parallelizes
// embarrassingly; this helps the large low-selectivity queries whose cost
// is dominated by leaf scans.
//
// Every worker runs its own descent over the shared query context, so
// cancellation is polled per worker and each worker's QueryStats are
// merged into the result — the parallel path reports the same work
// counters as the serial one (the pruning decisions are identical; only
// the traversal order differs).
//
// Called from Execute with the tree read lock held and req.Parallel ≥ 1.
func (t *Tree) executeParallel(ctx context.Context, qc *queryCtx, req QueryRequest) (QueryResult, error) {
	var res QueryResult
	measures := t.schema.Measures()
	var vec cube.AggVector
	if req.AllMeasures {
		vec = cube.NewAggVector(measures)
	}

	// Collect the frontier: the roots of independent subtrees to fan out,
	// answering or pruning what can be decided on the way. The frontier is
	// grown breadth-first until it has enough tasks to occupy the workers.
	// The expansion itself is accounted on d0, the coordinator's descent.
	d0 := &descent{qc: qc, ctx: ctx, check: ctxCheckInterval}
	type task struct{ id nodeID }
	frontier := []task{{id: t.root}}
	for len(frontier) < req.Parallel*4 {
		next := make([]task, 0, len(frontier)*8)
		expanded := false
		for _, tk := range frontier {
			n, err := t.getNode(tk.id)
			if err != nil {
				res.Stats = d0.st
				return res, err
			}
			if n.leaf {
				// Leaves at the frontier are cheap: answer inline.
				var err error
				if req.AllMeasures {
					err = t.queryNodeAll(tk.id, d0, vec)
				} else {
					err = t.queryNode(tk.id, d0, req.Measure, &res.Agg)
				}
				if err != nil {
					res.Agg = cube.Agg{}
					res.Stats = d0.st
					return res, err
				}
				continue
			}
			expanded = true
			if err := d0.visit(); err != nil {
				res.Stats = d0.st
				return res, err
			}
			for i := range n.entries {
				e := &n.entries[i]
				d0.st.EntriesScanned++
				overlaps, contained, err := qc.matchEntry(t, e.MDS)
				if err != nil {
					res.Stats = d0.st
					return res, err
				}
				if !overlaps {
					d0.st.EntriesPruned++
					continue
				}
				if t.cfg.Materialize && contained {
					if req.AllMeasures {
						vec.Merge(e.Agg)
					} else {
						res.Agg.Merge(e.Agg[req.Measure])
					}
					d0.st.MaterializedHits++
					continue
				}
				next = append(next, task{id: e.Child})
			}
		}
		frontier = next
		if !expanded || len(frontier) == 0 {
			break
		}
	}
	if len(frontier) == 0 {
		if req.AllMeasures {
			res.AggVector = vec
		}
		res.Stats = d0.st
		return res, nil
	}

	// Fan the frontier out over the workers. Each worker accumulates a
	// private aggregate and descent; both are merged under mu at the end,
	// so no shared state is touched on the hot path.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		workErr error
	)
	tasks := make(chan task)
	for w := 0; w < req.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local cube.Agg
			var localVec cube.AggVector
			if req.AllMeasures {
				localVec = cube.NewAggVector(measures)
			}
			d := &descent{qc: qc, ctx: ctx, check: ctxCheckInterval}
			fail := func(err error) {
				mu.Lock()
				if workErr == nil {
					workErr = err
				}
				d0.st.add(d.st)
				mu.Unlock()
				// Drain remaining tasks so the sender never blocks.
				for range tasks {
				}
			}
			for tk := range tasks {
				var err error
				if req.AllMeasures {
					err = t.queryNodeAll(tk.id, d, localVec)
				} else {
					err = t.queryNode(tk.id, d, req.Measure, &local)
				}
				if err != nil {
					fail(err)
					return
				}
			}
			mu.Lock()
			if req.AllMeasures {
				vec.Merge(localVec)
			} else {
				res.Agg.Merge(local)
			}
			d0.st.add(d.st)
			mu.Unlock()
		}()
	}
	for _, tk := range frontier {
		tasks <- tk
	}
	close(tasks)
	wg.Wait()
	res.Stats = d0.st
	if workErr != nil {
		return QueryResult{Stats: d0.st}, workErr
	}
	if req.AllMeasures {
		res.AggVector = vec
	}
	return res, nil
}
