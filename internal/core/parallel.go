package core

import (
	"context"
	"sync"

	"github.com/dcindex/dctree/internal/cube"
)

// The parallel descent is morsel-style work stealing: one shared queue of
// subtree tasks, seeded with the root. Each worker drains a task depth-first
// over a private stack, but whenever it uncovers a partially-overlapping
// child while the queue is hungry (an idle worker, or fewer queued tasks
// than workers) it pushes the child onto the queue instead — so a skewed
// supernode subtree is split up and redistributed on the fly rather than
// pinning the whole pool behind one straggler, and every other worker keeps
// locality by staying on its own stack while the queue is primed.
//
// Queries only read the tree (inserts are excluded by the tree lock for the
// duration), so no task ever touches shared mutable state: workers hold a
// private aggregate and descent, merged once at the end.

// stealTask is one subtree handed through the shared queue. origin is the
// worker index that pushed it (-1 for the root seed), which lets the queue
// count cross-worker steals.
type stealTask struct {
	id     nodeID
	origin int
}

// stealQueue is the shared LIFO work queue. pending counts queued plus
// in-flight tasks; the descent is complete when it reaches zero.
type stealQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	tasks   []stealTask
	pending int
	waiting int
	workers int
	aborted bool
	spawned int64 // tasks pushed beyond the root seed
	stolen  int64 // tasks popped by a worker other than their pusher
}

func newStealQueue(workers int, seed nodeID) *stealQueue {
	q := &stealQueue{
		workers: workers,
		pending: 1,
		tasks:   []stealTask{{id: seed, origin: -1}},
	}
	q.cond.L = &q.mu
	return q
}

// pop blocks until a task is available, the descent completes, or an abort.
func (q *stealQueue) pop(w int) (nodeID, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted || q.pending == 0 {
			return nilNode, false
		}
		if n := len(q.tasks); n > 0 {
			tk := q.tasks[n-1]
			q.tasks = q.tasks[:n-1]
			if tk.origin >= 0 && tk.origin != w {
				q.stolen++
			}
			return tk.id, true
		}
		q.waiting++
		q.cond.Wait()
		q.waiting--
	}
}

// trySpawn offers a subtree to the queue. It accepts only while the queue
// is hungry; otherwise the caller keeps the subtree on its local stack and
// avoids the shared-queue round trip.
func (q *stealQueue) trySpawn(id nodeID, w int) bool {
	q.mu.Lock()
	if q.aborted || (q.waiting == 0 && len(q.tasks) >= q.workers) {
		q.mu.Unlock()
		return false
	}
	q.tasks = append(q.tasks, stealTask{id: id, origin: w})
	q.pending++
	q.spawned++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// done retires one popped task; the last retirement releases every waiter.
func (q *stealQueue) done() {
	q.mu.Lock()
	q.pending--
	finished := q.pending == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// abort makes further pops fail and wakes every waiter. Workers already
// inside a task notice through their own error or context poll.
func (q *stealQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// executeParallel runs one range query over a work-stealing worker pool.
//
// Every worker runs its own descent over the shared query context, so
// cancellation is polled per worker and each worker's QueryStats are merged
// into the result — the parallel path reports exactly the serial path's
// work counters (every overlapping node is visited once; only the traversal
// order differs).
//
// Called from Execute with req.Parallel ≥ 1 — under the tree read lock for
// live queries, lock-free over a pinned version for as-of queries; src and
// root name the resolver and seed either way.
func (t *Tree) executeParallel(ctx context.Context, qc *queryCtx, req QueryRequest, src nodeSource, root nodeID) (QueryResult, error) {
	var res QueryResult
	measures := t.schema.Measures()
	var vec cube.AggVector
	if req.AllMeasures {
		vec = cube.NewAggVector(measures)
	}

	q := newStealQueue(req.Parallel, root)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		workErr error
		st      QueryStats
	)
	for w := 0; w < req.Parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := &descent{src: src, qc: qc, ctx: ctx, check: ctxCheckInterval}
			var local cube.Agg
			var localVec cube.AggVector
			if req.AllMeasures {
				localVec = cube.NewAggVector(measures)
			}
			err := t.stealWorker(w, q, d, req, &local, localVec)
			if err != nil {
				q.abort()
			}
			mu.Lock()
			if err != nil && workErr == nil {
				workErr = err
			}
			st.add(d.st)
			if req.AllMeasures {
				vec.Merge(localVec)
			} else {
				res.Agg.Merge(local)
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	t.metrics.stealSpawned.Add(q.spawned)
	t.metrics.stealStolen.Add(q.stolen)
	res.Stats = st
	if workErr != nil {
		return QueryResult{Stats: st}, workErr
	}
	if req.AllMeasures {
		res.AggVector = vec
	}
	return res, nil
}

// stealWorker pops subtree tasks until the descent completes or aborts.
func (t *Tree) stealWorker(w int, q *stealQueue, d *descent, req QueryRequest, agg *cube.Agg, vec cube.AggVector) error {
	var stack []nodeID
	for {
		id, ok := q.pop(w)
		if !ok {
			return nil
		}
		err := t.stealDescend(id, w, q, d, req, agg, vec, &stack)
		q.done()
		if err != nil {
			return err
		}
	}
}

// stealDescend drains one subtree with an explicit stack, answering or
// pruning what can be decided per entry and offering partially-overlapping
// children to the shared queue while it is hungry. The stack's backing
// array is reused across tasks.
func (t *Tree) stealDescend(root nodeID, w int, q *stealQueue, d *descent, req QueryRequest, agg *cube.Agg, vec cube.AggVector, stack *[]nodeID) error {
	s := (*stack)[:0]
	defer func() { *stack = s }()
	s = append(s, root)
	for len(s) > 0 {
		id := s[len(s)-1]
		s = s[:len(s)-1]
		nv, err := d.src.getView(id)
		if err != nil {
			return err
		}
		if err := d.visit(); err != nil {
			return err
		}
		if nv.n == nil {
			f := &nv.f
			if f.leaf {
				for i := 0; i < f.count; i++ {
					d.st.EntriesScanned++
					if d.qc.recordInRangeFlat(f, i) {
						if req.AllMeasures {
							for j := 0; j < f.measures; j++ {
								vec[j].Add(f.measure(i, j))
							}
						} else {
							agg.Add(f.measure(i, req.Measure))
						}
						d.st.RecordsMatched++
					}
				}
				continue
			}
			for i := 0; i < f.count; i++ {
				d.st.EntriesScanned++
				overlaps, contained, err := d.qc.matchEntryFlat(t, f, i)
				if err != nil {
					return err
				}
				if !overlaps {
					d.st.EntriesPruned++
					continue
				}
				if t.cfg.Materialize && contained {
					if req.AllMeasures {
						f.mergeAggInto(i, vec)
					} else {
						agg.Merge(f.agg(i, req.Measure))
					}
					d.st.MaterializedHits++
					continue
				}
				child := f.child(i)
				if q.trySpawn(child, w) {
					continue
				}
				s = append(s, child)
			}
			continue
		}
		n := nv.n
		if n.leaf {
			for i := range n.entries {
				e := &n.entries[i]
				d.st.EntriesScanned++
				if d.qc.recordInRange(e.Rec.Coords) {
					if req.AllMeasures {
						vec.AddRecord(e.Rec.Measures)
					} else {
						agg.Add(e.Rec.Measures[req.Measure])
					}
					d.st.RecordsMatched++
				}
			}
			continue
		}
		for i := range n.entries {
			e := &n.entries[i]
			d.st.EntriesScanned++
			overlaps, contained, err := d.qc.matchEntry(t, e.MDS)
			if err != nil {
				return err
			}
			if !overlaps {
				d.st.EntriesPruned++
				continue
			}
			if t.cfg.Materialize && contained {
				if req.AllMeasures {
					vec.Merge(e.Agg)
				} else {
					agg.Merge(e.Agg[req.Measure])
				}
				d.st.MaterializedHits++
				continue
			}
			if q.trySpawn(e.Child, w) {
				continue
			}
			s = append(s, e.Child)
		}
	}
	return nil
}
