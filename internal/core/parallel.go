package core

import (
	"runtime"
	"sync"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// RangeAggParallel answers the same query as RangeAgg using a worker pool:
// the subtrees of the shallowest directory levels are fanned out across
// goroutines and their partial aggregates merged. Queries only read the
// tree (inserts are excluded by the tree lock for the duration), so the
// descent parallelizes embarrassingly; this helps the large
// low-selectivity queries whose cost is dominated by leaf scans.
// workers ≤ 0 selects GOMAXPROCS.
func (t *Tree) RangeAggParallel(q mds.MDS, measure int, workers int) (cube.Agg, error) {
	if measure < 0 || measure >= t.schema.Measures() {
		return cube.Agg{}, ErrBadMeasure
	}
	if err := q.Validate(t.space()); err != nil {
		return cube.Agg{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	ctx, err := t.newQueryCtx(q)
	if err != nil {
		return cube.Agg{}, err
	}

	// Collect the frontier: the roots of independent subtrees to fan out,
	// answering or pruning what can be decided on the way. The frontier is
	// grown breadth-first until it has enough tasks to occupy the workers.
	var result cube.Agg
	type task struct{ id nodeID }
	frontier := []task{{id: t.root}}
	for len(frontier) < workers*4 {
		next := make([]task, 0, len(frontier)*8)
		expanded := false
		for _, tk := range frontier {
			n, err := t.getNode(tk.id)
			if err != nil {
				return cube.Agg{}, err
			}
			if n.leaf {
				// Leaves at the frontier are cheap: answer inline.
				var st QueryStats
				if err := t.queryNode(tk.id, ctx, measure, &result, &st); err != nil {
					return cube.Agg{}, err
				}
				continue
			}
			expanded = true
			for i := range n.entries {
				e := &n.entries[i]
				overlaps, contained, err := ctx.matchEntry(t, e.MDS)
				if err != nil {
					return cube.Agg{}, err
				}
				if !overlaps {
					continue
				}
				if t.cfg.Materialize && contained {
					result.Merge(e.Agg[measure])
					continue
				}
				next = append(next, task{id: e.Child})
			}
		}
		frontier = next
		if !expanded || len(frontier) == 0 {
			break
		}
	}
	if len(frontier) == 0 {
		return result, nil
	}

	// Fan the frontier out over the workers.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		workErr error
	)
	tasks := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local cube.Agg
			var st QueryStats
			for tk := range tasks {
				if err := t.queryNode(tk.id, ctx, measure, &local, &st); err != nil {
					mu.Lock()
					if workErr == nil {
						workErr = err
					}
					mu.Unlock()
					// Drain remaining tasks so the sender never blocks.
					for range tasks {
					}
					return
				}
			}
			mu.Lock()
			result.Merge(local)
			mu.Unlock()
		}()
	}
	for _, tk := range frontier {
		tasks <- tk
	}
	close(tasks)
	wg.Wait()
	if workErr != nil {
		return cube.Agg{}, workErr
	}
	return result, nil
}
