package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// The version durability suite proves the meta v8 contract: a live version
// survives checkpoints, crashes and clean restarts — rehydrated from the
// manifest the last checkpoint persisted, byte-equal to a seqscan oracle
// frozen at its capture instant — and disappears only through explicit
// Release (durable via its WAL record) or the retention policy, never
// through WAL truncation.

// TestVersionSurvivesCheckpointCrash is the tentpole acceptance test: a
// version snapshotted BEFORE a checkpoint (whose install truncates the log
// past the version record) must be queryable after checkpoint + crash +
// recovery with seqscan-oracle byte equality.
func TestVersionSurvivesCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := durableConfig()

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	recs := genRecords(t, schema, rng, 200)
	for _, r := range recs[:120] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	versionID := v.ID()
	oracle := append([]cube.Record(nil), recs[:120]...)
	if len(tree.Versions()) != 1 || tree.Versions()[0].Persisted {
		t.Fatalf("fresh version should be live and not yet persisted: %+v", tree.Versions())
	}

	// The checkpoint persists the version's overlay and manifest and
	// truncates the log — the version record may be gone from the tail.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if !tree.Versions()[0].Persisted {
		t.Fatalf("version not marked persisted after checkpoint: %+v", tree.Versions())
	}
	if m := tree.Metrics(); m.VersionOverlayExtents == 0 && len(oracle) > 0 {
		// The snapshot was taken with dirty nodes (no Flush in between), so
		// the checkpoint must have written overlay extents for it.
		t.Fatalf("checkpoint wrote no overlay extents: %+v", m)
	}

	// Churn past the checkpoint, then crash without closing.
	for _, r := range recs[120:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range recs[:30] {
		if err := tree.Delete(r); err != nil {
			t.Fatal(err)
		}
	}
	imgStore, imgWAL := copyCrashImage(t, storePath, walPrefix, filepath.Join(dir, "crash"))
	v.Release()
	tree.Close()
	st.Close()

	ist, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ist.Close()
	recovered, err := OpenDurable(ist, imgWAL)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer recovered.Close()

	if got := recovered.Count(); got != 170 {
		t.Fatalf("recovered live count = %d, want 170", got)
	}
	rv, ok := recovered.VersionByID(versionID)
	if !ok {
		t.Fatalf("version %d not rehydrated (live: %+v)", versionID, recovered.Versions())
	}
	if m := recovered.Metrics(); m.VersionsRehydrated != 1 {
		t.Fatalf("VersionsRehydrated = %d, want 1", m.VersionsRehydrated)
	}
	if !rv.persisted.Load() {
		t.Fatal("rehydrated version not marked persisted")
	}
	// The rehydrated version answers entirely from its manifest extents.
	rv.EvictCache()
	verifyVersion(t, recovered, rv, oracle, 25, 72)

	// Releasing the rehydrated version drains its pins; the next checkpoint
	// returns the parked extents to the allocator and drops the manifest.
	if err := rv.Release(); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := recovered.Metrics(); m.LiveVersions != 0 || m.PinnedExtents != 0 || m.DeferredExtentBlocks != 0 {
		t.Fatalf("pins leaked after release: %+v live, %d pinned, %d deferred blocks",
			m.LiveVersions, m.PinnedExtents, m.DeferredExtentBlocks)
	}
	if err := recovered.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionSurvivesCleanRestart proves manifests work without any WAL: a
// version live at Flush+Close rehydrates on a plain Open.
func TestVersionSurvivesCleanRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	path := filepath.Join(dir, "store.dc")
	st, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := New(st, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	recs := genRecords(t, schema, rng, 120)
	for _, r := range recs[:80] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	oracle := append([]cube.Record(nil), recs[:80]...)
	for _, r := range recs[80:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	versionID := v.ID()
	st.Close()

	st2, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reopened, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	rv, ok := reopened.VersionByID(versionID)
	if !ok {
		t.Fatalf("version %d did not survive the clean restart (live: %+v)",
			versionID, reopened.Versions())
	}
	if got := rv.CreatedAt(); !got.Equal(v.CreatedAt()) {
		t.Fatalf("rehydrated capture time %v != original %v", got, v.CreatedAt())
	}
	verifyVersion(t, reopened, rv, oracle, 20, 74)
	if err := rv.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionReleaseSurvivesCrash proves release durability: a version whose
// manifest an earlier checkpoint persisted, then released (WAL release
// record), must NOT resurrect from the stale manifest after a crash.
func TestVersionReleaseSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := durableConfig()

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	for _, r := range genRecords(t, schema, rng, 60) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	versionID := v.ID()
	if err := tree.Flush(); err != nil { // manifest persisted
		t.Fatal(err)
	}
	if err := v.Release(); err != nil { // durable release record in the tail
		t.Fatal(err)
	}

	imgStore, imgWAL := copyCrashImage(t, storePath, walPrefix, filepath.Join(dir, "crash"))
	tree.Close()

	ist, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ist.Close()
	recovered, err := OpenDurable(ist, imgWAL)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer recovered.Close()
	if _, ok := recovered.VersionByID(versionID); ok {
		t.Fatalf("released version %d resurrected from a stale manifest", versionID)
	}
	// It rehydrated from the manifest, then the release record replayed —
	// either way no version is live and no pins remain after a checkpoint.
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := recovered.Metrics(); m.LiveVersions != 0 || m.PinnedExtents != 0 {
		t.Fatalf("leaked after replayed release: %d live, %d pinned",
			m.LiveVersions, m.PinnedExtents)
	}
}

// TestVersionRetention covers the pruning policy: explicit KeepLast/MaxAge
// policies via PruneVersionsPolicy, and the config-driven automatic prune
// that runs after every Snapshot.
func TestVersionRetention(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(83))
	recs := genRecords(t, tree.Schema(), rng, 50)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		v, err := tree.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID())
	}

	pruned := tree.PruneVersionsPolicy(VersionRetention{KeepLast: 2})
	if len(pruned) != 3 {
		t.Fatalf("KeepLast=2 pruned %v, want the 3 oldest", pruned)
	}
	for i, id := range pruned {
		if id != ids[i] {
			t.Fatalf("pruned %v, want oldest-first %v", pruned, ids[:3])
		}
	}
	infos := tree.Versions()
	if len(infos) != 2 || infos[0].ID != ids[3] || infos[1].ID != ids[4] {
		t.Fatalf("survivors = %+v, want ids %v", infos, ids[3:])
	}
	if m := tree.Metrics(); m.VersionsPruned != 3 {
		t.Fatalf("VersionsPruned = %d, want 3", m.VersionsPruned)
	}

	// MaxAge: everything captured so far is older than a nanosecond-scale
	// horizon by the time we check.
	time.Sleep(2 * time.Millisecond)
	if pruned := tree.PruneVersionsPolicy(VersionRetention{MaxAge: time.Millisecond}); len(pruned) != 2 {
		t.Fatalf("MaxAge pruned %v, want the remaining 2", pruned)
	}
	if n := len(tree.Versions()); n != 0 {
		t.Fatalf("%d versions live after MaxAge prune", n)
	}

	// Config-driven: Snapshot applies the policy before returning.
	tree2 := newTestTree(t, func() Config {
		c := smallConfig()
		c.VersionRetention = VersionRetention{KeepLast: 2}
		return c
	}())
	for _, r := range genRecords(t, tree2.Schema(), rng, 50) {
		if err := tree2.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := tree2.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if n := len(tree2.Versions()); n > 2 {
			t.Fatalf("auto-prune let %d versions live (KeepLast=2)", n)
		}
	}
	if m := tree2.Metrics(); m.VersionsPruned != 2 || m.LiveVersions != 2 {
		t.Fatalf("auto-prune accounting off: %d pruned, %d live",
			m.VersionsPruned, m.LiveVersions)
	}
}

// TestVersionRetentionNegativeConfig: negative knobs are rejected.
func TestVersionRetentionNegativeConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.VersionRetention.KeepLast = -1
	if err := cfg.Normalize(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("KeepLast=-1: got %v, want ErrBadConfig", err)
	}
	cfg = smallConfig()
	cfg.VersionRetention.MaxAge = -time.Second
	if err := cfg.Normalize(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("MaxAge<0: got %v, want ErrBadConfig", err)
	}
}

// TestVersionsRaceWithRelease is the satellite-1 regression: Versions()
// reads pin counts lock-free while releases drop pins concurrently; under
// -race this failed when Versions read len(v.pinned) against a release
// writing the slice.
func TestVersionsRaceWithRelease(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(89))
	for _, r := range genRecords(t, tree.Schema(), rng, 80) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: hammer Versions and Metrics
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, vi := range tree.Versions() {
				_ = vi.Pinned
				_ = vi.Persisted
			}
			_ = tree.Metrics().PinnedExtents
		}
	}()
	wg.Add(1)
	go func() { // churn: checkpoints interleave with snapshot/release
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tree.Checkpoint(context.Background())
		}
	}()
	for i := 0; i < 200; i++ {
		v, err := tree.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Release(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m := tree.Metrics(); m.LiveVersions != 0 || m.PinnedExtents != 0 {
		t.Fatalf("leak after churn: %d live, %d pinned", m.LiveVersions, m.PinnedExtents)
	}
}

// TestSnapshotCollisionReleasesDisplaced is the satellite-2 regression: a
// replayed version record whose number collides with a live version (the
// replica re-capture path) must release the displaced version's pins, not
// silently overwrite the registry entry and leak them forever.
func TestSnapshotCollisionReleasesDisplaced(t *testing.T) {
	cfg := durableConfig()
	schema := testSchema(t)
	rstore := storage.NewMemStore(cfg.BlockSize)
	replica, err := NewReplica(rstore, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	// genRecords interns on schema, which the replica shares in-process, so
	// hand-built v2 records decode without shipped dict deltas.
	rng := rand.New(rand.NewSource(97))
	recs := genRecords(t, schema, rng, 40)
	// Build a plausible shipped stream by hand: inserts, a version record,
	// more inserts, then the SAME version number again at a later LSN.
	lsn := uint64(0)
	next := func() uint64 { lsn++; return lsn }
	type frame struct {
		lsn     uint64
		payload []byte
	}
	var stream []frame
	for _, r := range recs[:20] {
		stream = append(stream, frame{next(), encodeWALRecordV2(walOpInsert, r)})
	}
	stream = append(stream, frame{next(), encodeVersionRecord(7)})
	for _, r := range recs[20:] {
		stream = append(stream, frame{next(), encodeWALRecordV2(walOpInsert, r)})
	}
	stream = append(stream, frame{next(), encodeVersionRecord(7)}) // collision

	for _, f := range stream {
		if err := replica.ApplyReplicated(0, f.lsn, f.payload); err != nil {
			t.Fatalf("apply lsn %d: %v", f.lsn, err)
		}
	}

	infos := replica.Versions()
	if len(infos) != 1 || infos[0].ID != 7 {
		t.Fatalf("registry after collision: %+v, want exactly one version 7", infos)
	}
	if infos[0].Records != 40 {
		t.Fatalf("surviving version captured %d records, want the later capture's 40", infos[0].Records)
	}
	// The displaced capture's pins must be gone: release the survivor and
	// the ledger must drain completely.
	if err := replica.ReleaseVersion(7); err != nil {
		t.Fatal(err)
	}
	if m := replica.Metrics(); m.PinnedExtents != 0 {
		t.Fatalf("displaced version leaked %d pinned extents", m.PinnedExtents)
	}
}

// TestSnapshotOrphanRollback is the satellite-3 regression: when the
// snapshot capture fails (a dirty node that lost residency), no version
// record may be left in the WAL and no state may change — previously the
// record was appended first, leaving an orphan for recovery to trip over.
func TestSnapshotOrphanRollback(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	schema := testSchema(t)
	st := storage.NewMemStore(cfg.BlockSize)
	tree, err := NewDurable(st, schema, cfg, filepath.Join(dir, "idx"))
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(101))
	for _, r := range genRecords(t, schema, rng, 60) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the corrupt state: a node that is in the table and flagged
	// dirty but not resident (the invariant Snapshot must fail loudly on).
	tree.mu.Lock()
	var victim nodeID
	for id := range tree.table {
		victim = id
		break
	}
	tree.mu.Unlock()
	tree.EvictCache()
	tree.nc.markDirty(victim)

	lsnBefore := tree.wal.w.LastLSN()
	latestBefore, _ := tree.LatestVersion()
	if _, err := tree.Snapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Snapshot on corrupt state: got %v, want ErrCorrupt", err)
	}
	if got := tree.wal.w.LastLSN(); got != lsnBefore {
		t.Fatalf("orphan record appended: LSN %d → %d", lsnBefore, got)
	}
	if n := len(tree.Versions()); n != 0 {
		t.Fatalf("%d versions registered by a failed snapshot", n)
	}
	if latest, _ := tree.LatestVersion(); latest != latestBefore {
		t.Fatalf("latest-version stamp moved on failure: %d → %d", latestBefore, latest)
	}

	// Clear the fabricated flag; the tree is fully usable and the mint was
	// not burned.
	tree.nc.clearDirty([]nodeID{victim})
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after repair: %v", err)
	}
	if v.ID() != 1 {
		t.Fatalf("mint burned by failed snapshot: first ID = %d, want 1", v.ID())
	}
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionCrashMatrix interleaves snapshots, churn, releases and fuzzy
// checkpoints at randomized points, then crashes and verifies that exactly
// the unreleased versions survive recovery, each byte-equal to its oracle.
func TestVersionCrashMatrix(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			storePath := filepath.Join(dir, "store.dc")
			walPrefix := filepath.Join(dir, "idx")
			cfg := durableConfig()

			st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
			if err != nil {
				t.Fatal(err)
			}
			schema := testSchema(t)
			tree, err := NewDurable(st, schema, cfg, walPrefix)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1000 + seed))
			recs := genRecords(t, schema, rng, 400)

			var live []cube.Record
			oracles := make(map[uint64][]cube.Record) // versionID → frozen oracle
			released := make(map[uint64]bool)
			next := 0
			for round := 0; round < 8; round++ {
				// Insert a batch, delete a few.
				n := 20 + rng.Intn(30)
				for i := 0; i < n && next < len(recs); i++ {
					if err := tree.Insert(recs[next]); err != nil {
						t.Fatal(err)
					}
					live = append(live, recs[next])
					next++
				}
				for i := 0; i < 5 && len(live) > 10; i++ {
					j := rng.Intn(len(live))
					if err := tree.Delete(live[j]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:j], live[j+1:]...)
				}
				switch rng.Intn(3) {
				case 0: // snapshot
					v, err := tree.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					oracles[v.ID()] = append([]cube.Record(nil), live...)
				case 1: // checkpoint (persists manifests, truncates log)
					if err := tree.Checkpoint(context.Background()); err != nil {
						t.Fatal(err)
					}
				case 2: // release a random live version, durably
					infos := tree.Versions()
					if len(infos) > 0 {
						id := infos[rng.Intn(len(infos))].ID
						if err := tree.ReleaseVersion(id); err != nil {
							t.Fatal(err)
						}
						released[id] = true
					}
				}
			}

			imgStore, imgWAL := copyCrashImage(t, storePath, walPrefix, filepath.Join(dir, "crash"))
			tree.Close()
			st.Close()

			ist, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer ist.Close()
			recovered, err := OpenDurable(ist, imgWAL)
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			defer recovered.Close()

			for id, oracle := range oracles {
				rv, ok := recovered.VersionByID(id)
				if released[id] {
					if ok {
						t.Fatalf("released version %d survived recovery", id)
					}
					continue
				}
				if !ok {
					t.Fatalf("version %d lost by recovery (live: %+v)", id, recovered.Versions())
				}
				verifyVersion(t, recovered, rv, oracle, 10, 2000+seed)
			}
			if err := recovered.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPrimaryReplicaVersionParity ships a primary's full log — snapshots and
// durable releases included — into a replica and requires the two version
// registries to agree, with every surviving replica version byte-equal to
// the oracle frozen at the primary's capture instant.
func TestPrimaryReplicaVersionParity(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	schema := testSchema(t)
	st := storage.NewMemStore(cfg.BlockSize)
	primary, err := NewDurableOpts(st, schema, cfg, dir+"/idx", storage.WALOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	blob, err := primary.EncodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	rschema, err := DecodeSchema(blob)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewReplica(storage.NewMemStore(cfg.BlockSize), rschema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	rng := rand.New(rand.NewSource(131))
	recs := genRecords(t, schema, rng, 300)
	var live []cube.Record
	oracles := make(map[uint64][]cube.Record)
	for i, r := range recs {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
		live = append(live, r)
		if i%60 == 59 {
			v, err := primary.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			oracles[v.ID()] = append([]cube.Record(nil), live...)
		}
	}
	// Release the oldest snapshot durably: the release record must ship too.
	infos := primary.Versions()
	if err := primary.ReleaseVersion(infos[0].ID); err != nil {
		t.Fatal(err)
	}
	delete(oracles, infos[0].ID)

	shipAll(t, primary, replica)

	pids := primary.Versions()
	rids := replica.Versions()
	if len(pids) != len(rids) {
		t.Fatalf("version parity broken: primary %+v, replica %+v", pids, rids)
	}
	for i := range pids {
		if pids[i].ID != rids[i].ID {
			t.Fatalf("version parity broken at %d: primary %+v, replica %+v", i, pids, rids)
		}
	}
	for id, oracle := range oracles {
		rv, ok := replica.VersionByID(id)
		if !ok {
			t.Fatalf("version %d missing on replica", id)
		}
		got := sortedKeys(scanVersion(t, rv))
		want := sortedKeys(oracle)
		if len(got) != len(want) {
			t.Fatalf("replica version %d: %d records, oracle %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("replica version %d diverges at record %d", id, i)
			}
		}
	}
}
