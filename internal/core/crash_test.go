package core

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// crashStore fails every mutating operation once the op budget runs out,
// simulating a process death at an arbitrary point during Flush. All
// state persisted before the "crash" stays readable.
type crashStore struct {
	storage.Store
	budget int // mutations allowed before the crash; -1 = unlimited
}

var errCrashed = errors.New("simulated crash")

func (c *crashStore) spend() error {
	if c.budget < 0 {
		return nil
	}
	if c.budget == 0 {
		return errCrashed
	}
	c.budget--
	return nil
}

func (c *crashStore) Alloc(blocks int) (storage.PageID, error) {
	if err := c.spend(); err != nil {
		return storage.NilPage, err
	}
	return c.Store.Alloc(blocks)
}

func (c *crashStore) Write(id storage.PageID, blocks int, data []byte) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Write(id, blocks, data)
}

func (c *crashStore) Free(id storage.PageID, blocks int) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Free(id, blocks)
}

func (c *crashStore) SetMeta(data []byte) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.SetMeta(data)
}

func (c *crashStore) Sync() error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Sync()
}

// TestCrashDuringFlushPreservesLastCheckpoint is the shadow-paging
// guarantee: whatever point a flush dies at, reopening the store yields
// exactly the previously flushed tree.
func TestCrashDuringFlushPreservesLastCheckpoint(t *testing.T) {
	cfg := smallConfig()
	s := testSchema(t)
	rng := rand.New(rand.NewSource(201))
	warm := genRecords(t, s, rng, 300)
	extra := genRecords(t, s, rng, 200)

	// Determine how many store mutations a full second flush performs, so
	// the crash sweep covers every prefix.
	probeStore := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	probe, err := New(probeStore, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm {
		probe.Insert(r)
	}
	if err := probe.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, r := range extra {
		probe.Insert(r)
	}
	before := probeStore.Stats()
	if err := probe.Flush(); err != nil {
		t.Fatal(err)
	}
	delta := probeStore.Stats().Sub(before)
	totalOps := int(delta.Allocs + delta.Writes + delta.Frees + 2) // + meta + sync

	checkpointCount := int64(len(warm))
	for budget := 0; budget < totalOps; budget += 3 {
		cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
		tree, err := New(cs, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range warm {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.Flush(); err != nil {
			t.Fatalf("checkpoint flush: %v", err)
		}
		checkpointSum, err := tree.RangeAgg(tree.RootMDS(), 0)
		if err != nil {
			t.Fatal(err)
		}

		for _, r := range extra {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		cs.budget = budget
		err = tree.Flush()
		cs.budget = -1
		// Failures after the durable metadata swap (releasing shadowed
		// extents) are absorbed and retried at the next checkpoint, so a
		// large enough budget lets the flush succeed; any reported error
		// must be the injected crash.
		flushSucceeded := err == nil
		if err != nil && !errors.Is(err, errCrashed) {
			t.Fatalf("budget %d: unexpected flush error %v", budget, err)
		}

		// "Reboot": reopen from the store contents only. Atomicity means
		// exactly one of two states is visible: the checkpoint (crash
		// before the metadata swap committed) or the complete new tree
		// (crash after — only the release of shadowed extents was lost).
		reopened, err := Open(cs.Store)
		if err != nil {
			t.Fatalf("budget %d: Open after crash: %v", budget, err)
		}
		newCount := checkpointCount + int64(len(extra))
		switch reopened.Count() {
		case checkpointCount:
			if flushSucceeded {
				t.Fatalf("budget %d: flush reported success but only the checkpoint survived", budget)
			}
			got, err := reopened.RangeAgg(reopened.RootMDS(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != checkpointSum.Count || !floatClose(got.Sum, checkpointSum.Sum) {
				t.Fatalf("budget %d: checkpoint agg %+v, want %+v", budget, got, checkpointSum)
			}
		case newCount:
			// Post-commit crash: the full new state must be present.
		default:
			t.Fatalf("budget %d: reopened count %d, want %d (checkpoint) or %d (committed)",
				budget, reopened.Count(), checkpointCount, newCount)
		}
		if err := reopened.Validate(); err != nil {
			t.Fatalf("budget %d: reopened tree corrupt: %v", budget, err)
		}
	}
}

// TestCrashAfterDeleteFlush covers the dropNode deferred-free path: a
// crash between a delete's flush steps must not have recycled extents the
// previous checkpoint still references.
func TestCrashAfterDeleteFlush(t *testing.T) {
	cfg := smallConfig()
	cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	s := testSchema(t)
	tree, err := New(cs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(203))
	recs := genRecords(t, s, rng, 400)
	for _, r := range recs {
		tree.Insert(r)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete enough to empty nodes (dropNode path), then crash mid-flush.
	for _, r := range recs[:200] {
		if err := tree.Delete(r); err != nil {
			t.Fatal(err)
		}
	}
	cs.budget = 5
	if err := tree.Flush(); err == nil {
		t.Fatal("flush survived crash budget")
	}
	cs.budget = -1

	reopened, err := Open(cs.Store)
	if err != nil {
		t.Fatalf("Open after crashed delete-flush: %v", err)
	}
	if reopened.Count() != 400 {
		t.Fatalf("reopened count = %d, want the 400-record checkpoint", reopened.Count())
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("reopened tree corrupt: %v", err)
	}
	var total cube.Agg
	for _, r := range recs {
		total.Add(r.Measures[0])
	}
	got, _ := reopened.RangeAgg(reopened.RootMDS(), 0)
	if got.Count != total.Count {
		t.Fatalf("agg count %d want %d", got.Count, total.Count)
	}
}

// TestGroupCommitCrashStress drives the group-commit path from many
// goroutines — with checkpoints racing the committer's fsync — then
// snapshots the files mid-flight as a crash image and proves the
// durability contract: every Insert acknowledged before the snapshot is
// present in the recovered tree. Run under -race this also exercises the
// Sync-vs-Truncate interaction between the committer and Flush.
func TestGroupCommitCrashStress(t *testing.T) {
	const (
		workers   = 8
		perWorker = 120
	)
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := smallConfig()
	cfg.CommitInterval = 500 * time.Microsecond
	cfg.CommitBytes = 64 << 10

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// Pre-generate records with a unique measure key per record so
	// membership in the recovered tree is unambiguous.
	rng := rand.New(rand.NewSource(99))
	recs := genRecords(t, schema, rng, workers*perWorker)
	for i := range recs {
		recs[i].Measures[0] = float64(i) + 0.125
	}

	var (
		ackedMu sync.Mutex
		acked   []cube.Record
	)
	ackedCount := func() int {
		ackedMu.Lock()
		defer ackedMu.Unlock()
		return len(acked)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := recs[w*perWorker+i]
				if err := tree.Insert(r); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				ackedMu.Lock()
				acked = append(acked, r)
				ackedMu.Unlock()
			}
		}(w)
	}

	// Checkpoints concurrent with appends and group commits: Flush
	// truncates the log out from under the committer's in-flight fsync,
	// which must be absorbed, not surface as a commit failure.
	for i := 0; i < 5; i++ {
		if err := tree.Flush(); err != nil {
			t.Fatalf("concurrent checkpoint %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	afterCheckpoints := ackedCount()

	// Let more inserts land past the last checkpoint, then snapshot the
	// files as a crash image while workers keep appending. No checkpoint
	// runs concurrently with the copy, so the store file is quiescent;
	// the WAL tail may be torn mid-frame, which recovery must absorb.
	for ackedCount() < afterCheckpoints+200 && ackedCount() < workers*perWorker {
		time.Sleep(200 * time.Microsecond)
	}
	ackedMu.Lock()
	ackedSnapshot := make([]cube.Record, len(acked))
	copy(ackedSnapshot, acked)
	ackedMu.Unlock()
	crashDir := filepath.Join(dir, "crash")
	imgStore, imgPrefix := copyCrashImage(t, storePath, walPrefix, crashDir)

	wg.Wait()
	if t.Failed() {
		return
	}

	// The live tree must have batched: strictly fewer fsyncs than appends.
	stats := tree.WALStats()
	if stats.Appends == 0 || stats.Syncs == 0 {
		t.Fatalf("no WAL activity recorded: %+v", stats)
	}
	if stats.Syncs >= stats.Appends {
		t.Errorf("group commit did not batch: %d syncs for %d appends", stats.Syncs, stats.Appends)
	}

	// Recover the crash image. The image's own log tail plus its
	// checkpoint define the exact recovered record set.
	inserts, deletes := imageRecords(t, schema, imgStore, imgPrefix, cfg.BlockSize)
	if len(deletes) != 0 {
		t.Fatalf("image log holds %d deletes, workload had none", len(deletes))
	}
	cst, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cst.Close()
	ctree, err := OpenDurable(cst, imgPrefix)
	if err != nil {
		t.Fatalf("crash image failed to reopen: %v", err)
	}
	defer ctree.Close()
	if got, want := ctree.Metrics().RecoveryReplayedRecords, int64(len(inserts)); got != want {
		t.Fatalf("replayed %d records, image log holds %d", got, want)
	}
	if err := ctree.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}

	// Durability: every acknowledged insert is in the recovered tree —
	// either replayed from the log or inside the checkpointed state.
	replayed := make(map[float64]bool, len(inserts))
	for _, r := range inserts {
		replayed[r.Measures[0]] = true
	}
	checkpointed := int(ctree.Count()) - len(inserts)
	if checkpointed < 0 {
		t.Fatalf("image replayed %d inserts into a tree of %d", len(inserts), ctree.Count())
	}
	missing := 0
	for _, r := range ackedSnapshot {
		if !replayed[r.Measures[0]] {
			missing++ // must be covered by the checkpoint instead
		}
	}
	if missing > checkpointed {
		t.Fatalf("%d acked records in neither the replayable log nor the checkpoint (checkpoint holds %d)",
			missing-checkpointed, checkpointed)
	}
	if got, want := int(ctree.Count()), len(ackedSnapshot); got < want {
		t.Fatalf("recovered %d records, but %d were acknowledged before the crash", got, want)
	}

	// The root aggregate must account for every recovered record.
	all, err := ctree.RangeAgg(mds.Top(schema.Dims()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(all.Count) != ctree.Count() {
		t.Fatalf("root aggregate count %v != tree count %d", all.Count, ctree.Count())
	}
}

// TestFlushRecoversAfterCrash checks the in-memory tree remains usable and
// can complete a later flush after a failed one.
func TestFlushRecoversAfterCrash(t *testing.T) {
	cfg := smallConfig()
	cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	s := testSchema(t)
	tree, err := New(cs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(207))
	for _, r := range genRecords(t, s, rng, 300) {
		tree.Insert(r)
	}
	cs.budget = 7
	if err := tree.Flush(); err == nil {
		t.Fatal("flush survived crash budget")
	}
	cs.budget = -1
	if err := tree.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	reopened, err := Open(cs.Store)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Count() != 300 {
		t.Fatalf("count = %d", reopened.Count())
	}
	if err := reopened.Validate(); err != nil {
		t.Fatal(err)
	}
}
