package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// crashStore fails every mutating operation once the op budget runs out,
// simulating a process death at an arbitrary point during Flush. All
// state persisted before the "crash" stays readable.
type crashStore struct {
	storage.Store
	budget int // mutations allowed before the crash; -1 = unlimited
}

var errCrashed = errors.New("simulated crash")

func (c *crashStore) spend() error {
	if c.budget < 0 {
		return nil
	}
	if c.budget == 0 {
		return errCrashed
	}
	c.budget--
	return nil
}

func (c *crashStore) Alloc(blocks int) (storage.PageID, error) {
	if err := c.spend(); err != nil {
		return storage.NilPage, err
	}
	return c.Store.Alloc(blocks)
}

func (c *crashStore) Write(id storage.PageID, blocks int, data []byte) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Write(id, blocks, data)
}

func (c *crashStore) Free(id storage.PageID, blocks int) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Free(id, blocks)
}

func (c *crashStore) SetMeta(data []byte) error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.SetMeta(data)
}

func (c *crashStore) Sync() error {
	if err := c.spend(); err != nil {
		return err
	}
	return c.Store.Sync()
}

// TestCrashDuringFlushPreservesLastCheckpoint is the shadow-paging
// guarantee: whatever point a flush dies at, reopening the store yields
// exactly the previously flushed tree.
func TestCrashDuringFlushPreservesLastCheckpoint(t *testing.T) {
	cfg := smallConfig()
	s := testSchema(t)
	rng := rand.New(rand.NewSource(201))
	warm := genRecords(t, s, rng, 300)
	extra := genRecords(t, s, rng, 200)

	// Determine how many store mutations a full second flush performs, so
	// the crash sweep covers every prefix.
	probeStore := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	probe, err := New(probeStore, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm {
		probe.Insert(r)
	}
	if err := probe.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, r := range extra {
		probe.Insert(r)
	}
	before := probeStore.Stats()
	if err := probe.Flush(); err != nil {
		t.Fatal(err)
	}
	delta := probeStore.Stats().Sub(before)
	totalOps := int(delta.Allocs + delta.Writes + delta.Frees + 2) // + meta + sync

	checkpointCount := int64(len(warm))
	for budget := 0; budget < totalOps; budget += 3 {
		cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
		tree, err := New(cs, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range warm {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.Flush(); err != nil {
			t.Fatalf("checkpoint flush: %v", err)
		}
		checkpointSum, err := tree.RangeAgg(tree.RootMDS(), 0)
		if err != nil {
			t.Fatal(err)
		}

		for _, r := range extra {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		cs.budget = budget
		err = tree.Flush()
		cs.budget = -1
		if err == nil {
			t.Fatalf("budget %d: flush unexpectedly survived", budget)
		}
		if !errors.Is(err, errCrashed) {
			t.Fatalf("budget %d: unexpected flush error %v", budget, err)
		}

		// "Reboot": reopen from the store contents only. Atomicity means
		// exactly one of two states is visible: the checkpoint (crash
		// before the metadata swap committed) or the complete new tree
		// (crash after — only the release of shadowed extents was lost).
		reopened, err := Open(cs.Store)
		if err != nil {
			t.Fatalf("budget %d: Open after crash: %v", budget, err)
		}
		newCount := checkpointCount + int64(len(extra))
		switch reopened.Count() {
		case checkpointCount:
			got, err := reopened.RangeAgg(reopened.RootMDS(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != checkpointSum.Count || !floatClose(got.Sum, checkpointSum.Sum) {
				t.Fatalf("budget %d: checkpoint agg %+v, want %+v", budget, got, checkpointSum)
			}
		case newCount:
			// Post-commit crash: the full new state must be present.
		default:
			t.Fatalf("budget %d: reopened count %d, want %d (checkpoint) or %d (committed)",
				budget, reopened.Count(), checkpointCount, newCount)
		}
		if err := reopened.Validate(); err != nil {
			t.Fatalf("budget %d: reopened tree corrupt: %v", budget, err)
		}
	}
}

// TestCrashAfterDeleteFlush covers the dropNode deferred-free path: a
// crash between a delete's flush steps must not have recycled extents the
// previous checkpoint still references.
func TestCrashAfterDeleteFlush(t *testing.T) {
	cfg := smallConfig()
	cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	s := testSchema(t)
	tree, err := New(cs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(203))
	recs := genRecords(t, s, rng, 400)
	for _, r := range recs {
		tree.Insert(r)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete enough to empty nodes (dropNode path), then crash mid-flush.
	for _, r := range recs[:200] {
		if err := tree.Delete(r); err != nil {
			t.Fatal(err)
		}
	}
	cs.budget = 5
	if err := tree.Flush(); err == nil {
		t.Fatal("flush survived crash budget")
	}
	cs.budget = -1

	reopened, err := Open(cs.Store)
	if err != nil {
		t.Fatalf("Open after crashed delete-flush: %v", err)
	}
	if reopened.Count() != 400 {
		t.Fatalf("reopened count = %d, want the 400-record checkpoint", reopened.Count())
	}
	if err := reopened.Validate(); err != nil {
		t.Fatalf("reopened tree corrupt: %v", err)
	}
	var total cube.Agg
	for _, r := range recs {
		total.Add(r.Measures[0])
	}
	got, _ := reopened.RangeAgg(reopened.RootMDS(), 0)
	if got.Count != total.Count {
		t.Fatalf("agg count %d want %d", got.Count, total.Count)
	}
}

// TestFlushRecoversAfterCrash checks the in-memory tree remains usable and
// can complete a later flush after a failed one.
func TestFlushRecoversAfterCrash(t *testing.T) {
	cfg := smallConfig()
	cs := &crashStore{Store: storage.NewMemStore(cfg.BlockSize), budget: -1}
	s := testSchema(t)
	tree, err := New(cs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(207))
	for _, r := range genRecords(t, s, rng, 300) {
		tree.Insert(r)
	}
	cs.budget = 7
	if err := tree.Flush(); err == nil {
		t.Fatal("flush survived crash budget")
	}
	cs.budget = -1
	if err := tree.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	reopened, err := Open(cs.Store)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Count() != 300 {
		t.Fatalf("count = %d", reopened.Count())
	}
	if err := reopened.Validate(); err != nil {
		t.Fatal(err)
	}
}
