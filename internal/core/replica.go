package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/storage"
)

// Replica apply mode: the receiving half of log-shipping replication
// (internal/repl). A replica tree has no WAL of its own — its state
// advances solely through ApplyReplicated, which replays the primary's WAL
// records through the same code paths crash recovery uses. Between batches
// the tree is fully queryable (Execute, AsOf, Scan) under its normal read
// lock; local mutations are rejected with ErrReplica so the replicated
// state can never diverge from the primary's log.
//
// Durability on the follower side works like recovery in reverse: the
// follower keeps the shipped log bytes in its own mirror, so a replica
// checkpoint (Flush) only has to persist the applied frontier —
// captureLocked stamps appliedLSN where a primary would stamp its WAL
// LSN — and a restarted follower reopens with OpenReplica and re-applies
// the mirror strictly past the persisted checkpoint LSN.

// ErrReplica is returned by local mutation entrypoints (Insert, Delete,
// BulkLoad, Snapshot) on a replica tree: replicas change only by applying
// the primary's log. Promote a follower to reopen its state read-write.
var ErrReplica = errors.New("dctree: tree is a read-only replica")

// NewReplica creates an empty apply-only tree for the given schema — the
// starting point for bootstrapping a follower from the primary's log
// replayed from LSN 1. The schema normally comes from DecodeSchema over
// the primary's EncodeSchema blob; with WAL record format 2 the shipped
// dictionary deltas re-register values idempotently, so a schema that
// already carries registrations is safe. The initial state is checkpointed
// immediately so the store reopens even if the process dies before the
// first applied batch.
func NewReplica(store storage.Store, schema *cube.Schema, cfg Config) (*Tree, error) {
	t, err := New(store, schema, cfg)
	if err != nil {
		return nil, err
	}
	t.replica = true
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenReplica reopens a persisted tree in apply-only mode: the last
// checkpoint is loaded and the applied frontier resumes at its checkpoint
// LSN. The follower then re-applies its mirrored log from there —
// ApplyReplicated skips records at or below the frontier, so overlapping
// replay is harmless.
func OpenReplica(store storage.Store) (*Tree, error) {
	t, err := Open(store)
	if err != nil {
		return nil, err
	}
	t.replica = true
	t.appliedLSN = t.checkpointLSN
	return t, nil
}

// IsReplica reports whether the tree is in apply-only replica mode.
func (t *Tree) IsReplica() bool { return t.replica }

// AppliedLSN returns the replica's applied frontier: the LSN of the last
// replicated record folded into the tree. Zero on non-replica trees.
func (t *Tree) AppliedLSN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.appliedLSN
}

// ApplyReplicated applies one shipped WAL record at the given LSN to a
// replica tree, dispatching exactly as crash recovery does: dictionary
// deltas rebuild registrations, version records re-capture the primary's
// MVCC snapshots (serving AsOf on the follower), and mutations re-apply
// through the normal insert/delete path. Records at or below the applied
// frontier (or the checkpoint LSN after a restart) are skipped, so
// re-shipping an overlapping range is idempotent. The tree write lock is
// held per record, keeping the replica continuously queryable between
// records of a batch.
//
// epoch is the fencing epoch of the segment the record was shipped from.
// The idempotence check runs FIRST — restart replay of a mirror that
// legitimately mixes epochs (history from before a promotion below the
// frontier) must never fence. A NEW record from an epoch below the
// replica's is a deposed primary still writing: it is rejected with
// ErrFenced and nothing is applied. A record from a higher epoch advances
// the replica's epoch — it has durably observed the new timeline and will
// refuse the old one from here on. Epoch 0 records (a pre-fencing
// primary) are accepted by a replica still at epoch 0.
func (t *Tree) ApplyReplicated(epoch, lsn uint64, payload []byte) error {
	if !t.replica {
		return fmt.Errorf("dctree: ApplyReplicated on a non-replica tree")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if lsn <= t.appliedLSN || lsn <= t.checkpointLSN {
		return nil // already applied, or inside the restored checkpoint
	}
	if epoch < t.epoch {
		return fmt.Errorf("%w: record epoch %d below replica epoch %d (lsn %d)", ErrFenced, epoch, t.epoch, lsn)
	}
	if epoch > t.epoch {
		t.epoch = epoch
	}
	if len(payload) > 0 && payload[0] == walOpDictDelta {
		if err := applyDictDelta(t.schema, payload); err != nil {
			return fmt.Errorf("dctree: applying dict delta lsn %d: %w", lsn, err)
		}
		t.markApplied(lsn)
		return nil
	}
	if len(payload) > 0 && payload[0] == walOpVersion {
		id, err := decodeVersionRecord(payload)
		if err != nil {
			return fmt.Errorf("dctree: applying version record lsn %d: %w", lsn, err)
		}
		if _, err := t.snapshotLocked(id, lsn); err != nil {
			return fmt.Errorf("dctree: reconstructing version %d lsn %d: %w", id, lsn, err)
		}
		t.metrics.snapshotsRecovered.Inc()
		t.markApplied(lsn)
		return nil
	}
	if len(payload) > 0 && payload[0] == walOpVersionRelease {
		id, err := decodeVersionReleaseRecord(payload)
		if err != nil {
			return fmt.Errorf("dctree: applying version release lsn %d: %w", lsn, err)
		}
		// Tolerates versions that are not live on the follower (e.g. a
		// mirror shipped from past the version's own record).
		t.releaseVersionReplayLocked(id)
		t.markApplied(lsn)
		return nil
	}
	op, rec, err := decodeWALRecord(t.schema, payload)
	if err != nil {
		return err
	}
	switch op {
	case walOpInsert:
		if _, err := t.insertLocked(rec, false); err != nil {
			return fmt.Errorf("dctree: applying insert lsn %d: %w", lsn, err)
		}
	case walOpDelete:
		if _, err := t.deleteLocked(rec, false); err != nil && !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("dctree: applying delete lsn %d: %w", lsn, err)
		}
	}
	t.metrics.replicaApplied.Inc()
	t.markApplied(lsn)
	return nil
}

// markApplied advances the applied frontier. Caller holds t.mu.
func (t *Tree) markApplied(lsn uint64) {
	if lsn > t.appliedLSN {
		t.appliedLSN = lsn
	}
}

// Schema blob: the bootstrap payload a primary hands a brand-new follower
// so it can build an empty replica tree and replay the log from LSN 1
// (the /repl/v1/schema endpoint, dctool replica -from URL). It reuses the
// hierarchy and measure encodings of the metadata blob under its own
// magic, so the wire format evolves independently of meta versions.

const schemaBlobMagic = "DCSCHM01"

// EncodeSchema serializes the tree's cube schema — every dimension with
// its full dictionary, plus the measure names — as a self-contained blob
// for bootstrapping replicas. Taken under the tree lock so concurrent
// registrations cannot tear the dictionaries; with record format 2 a
// superset of the dictionaries at any log position is safe, because
// shipped dict deltas re-register idempotently.
func (t *Tree) EncodeSchema() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := []byte(schemaBlobMagic)
	buf = binary.AppendUvarint(buf, uint64(t.schema.Dims()))
	for i := 0; i < t.schema.Dims(); i++ {
		h, err := t.schema.Dim(i)
		if err != nil {
			return nil, err
		}
		buf = h.AppendEncode(buf)
	}
	buf = binary.AppendUvarint(buf, uint64(t.schema.Measures()))
	for j := 0; j < t.schema.Measures(); j++ {
		name, err := t.schema.MeasureName(j)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	return buf, nil
}

// DecodeSchema parses an EncodeSchema blob back into a schema. Corrupt
// input fails closed with ErrCorrupt, never a panic.
func DecodeSchema(blob []byte) (*cube.Schema, error) {
	if len(blob) < len(schemaBlobMagic) || string(blob[:len(schemaBlobMagic)]) != schemaBlobMagic {
		return nil, fmt.Errorf("%w: bad schema blob magic", ErrCorrupt)
	}
	r := metaReader{buf: blob, off: len(schemaBlobMagic)}
	dims := int(r.uvarint())
	if r.err != nil || dims < 1 || dims > 64 {
		return nil, fmt.Errorf("%w: schema blob dimension count", ErrCorrupt)
	}
	hs := make([]*hierarchy.Hierarchy, dims)
	for i := range hs {
		h, n, err := hierarchy.DecodeHierarchy(r.buf[r.off:])
		if err != nil {
			return nil, fmt.Errorf("%w: schema blob dimension %d: %v", ErrCorrupt, i, err)
		}
		hs[i] = h
		r.off += n
	}
	nMeasures := int(r.uvarint())
	if r.err != nil || nMeasures < 1 || nMeasures > 256 {
		return nil, fmt.Errorf("%w: schema blob measure count", ErrCorrupt)
	}
	measures := make([]string, nMeasures)
	for j := range measures {
		measures[j] = r.string()
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: schema blob: %v", ErrCorrupt, r.err)
	}
	if r.off != len(blob) {
		return nil, fmt.Errorf("%w: schema blob trailing bytes", ErrCorrupt)
	}
	return cube.NewSchema(hs, measures...)
}
