package core

import (
	"fmt"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// insertResult reports the outcome of an insertion into a subtree to the
// parent level. When split is true the child node was divided in two: the
// original node id kept the first group, newID holds the second, and the
// exact covers/aggregates of both are returned so the parent can replace
// its entry (incremental updates are not sufficient after a split, because
// splitting can lower the relevant level of a dimension, §3.2).
type insertResult struct {
	split   bool
	newID   nodeID
	origMDS mds.MDS
	newMDS  mds.MDS
	origAgg cube.AggVector
	newAgg  cube.AggVector
}

// recContext bundles the per-insert derived state: the record's MDS and
// aggregate, plus its ancestor at every hierarchy level of every dimension
// (anc[d][l]). The ancestors are the hot currency of the descent — the
// choose-subtree cost function and the incremental MDS updates consult
// them per entry — so they are walked exactly once per insert.
type recContext struct {
	rec    cube.Record
	recMDS mds.MDS
	agg    cube.AggVector
	anc    [][]hierarchy.ID
}

func (t *Tree) newRecContext(rec cube.Record) (*recContext, error) {
	space := t.space()
	rc := &recContext{
		rec:    rec,
		recMDS: mds.FromLeaves(rec.Coords),
		agg:    cube.AggOfRecord(rec.Measures),
		anc:    make([][]hierarchy.ID, len(space)),
	}
	for d, h := range space {
		levels := make([]hierarchy.ID, h.Depth())
		cur := rec.Coords[d]
		levels[0] = cur
		for l := 1; l < h.Depth(); l++ {
			p, err := h.Parent(cur)
			if err != nil {
				return nil, err
			}
			cur = p
			levels[l] = cur
		}
		rc.anc[d] = levels
	}
	return rc, nil
}

// Insert adds one data record to the tree, maintaining all directory MDSs
// and materialized aggregates on the insertion path (Fig. 4). The record's
// coordinates must be leaf-level IDs registered in the schema's dimension
// hierarchies (use cube.Schema.InternRecord to produce them).
//
// On a WAL-backed tree (NewDurable/OpenDurable), a nil return means the
// record is durable: its logical log record was fsynced (group commit) or
// superseded by a checkpoint. The durability wait happens outside the
// tree lock, so concurrent inserts batch into shared fsyncs.
func (t *Tree) Insert(rec cube.Record) error {
	if t.replica {
		return ErrReplica
	}
	if err := t.schema.ValidateRecord(rec); err != nil {
		return err
	}
	start := time.Now()
	t.mu.Lock()
	lsn, err := t.insertLocked(rec, true)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	if err := t.waitDurable(lsn); err != nil {
		return err
	}
	t.metrics.insertLatency.Observe(time.Since(start))
	return nil
}

// insertLocked applies one insert under the tree write lock. When log is
// true and the tree has a WAL, the logical record is appended AFTER the
// mutation succeeds (same lock, so log order equals mutation order) and
// its LSN returned for the caller to await; recovery replays with log
// false, since the records it applies are already in the log.
func (t *Tree) insertLocked(rec cube.Record, log bool) (uint64, error) {
	rc, err := t.newRecContext(rec)
	if err != nil {
		return 0, err
	}
	recMDS := rc.recMDS

	// The root's relevant levels are always (ALL,…,ALL): it describes the
	// whole cube, so its first split refines some dimension to the top
	// named level (the paper's initial MDS, §3.2).
	res, err := t.insertInto(t.root, mds.Top(t.schema.Dims()), rc)
	if err != nil {
		return 0, err
	}
	if res.split {
		// The root was split: grow the tree by one level (the only way a
		// DC-tree gains height).
		t.metrics.rootSplits.Inc()
		newRoot := t.newNode(false)
		newRoot.entries = []entry{
			{MDS: res.origMDS, Agg: res.origAgg, Child: t.root},
			{MDS: res.newMDS, Agg: res.newAgg, Child: res.newID},
		}
		t.root = newRoot.id
		t.height++
		t.rootMDS, err = mds.Cover(t.space(), res.origMDS, res.newMDS)
	} else {
		t.rootMDS, err = mds.Cover(t.space(), t.rootMDS, recMDS)
	}
	if err != nil {
		return 0, err
	}
	t.count++
	t.metrics.inserts.Inc()
	if !log {
		return 0, nil
	}
	return t.logMutation(walOpInsert, rec)
}

// insertInto inserts the record into the subtree rooted at id, whose
// describing MDS is nodeMDS (the parent entry's MDS, or Top for the root).
func (t *Tree) insertInto(id nodeID, nodeMDS mds.MDS, rc *recContext) (insertResult, error) {
	n, err := t.getNode(id)
	if err != nil {
		return insertResult{}, err
	}
	t.markDirty(n)

	if n.leaf {
		n.entries = append(n.entries, entry{
			MDS: rc.recMDS.Clone(),
			Agg: rc.agg.Clone(),
			Rec: rc.rec.Clone(),
		})
		if !n.overflowing(&t.cfg) {
			return insertResult{}, nil
		}
		return t.splitNode(n, nodeMDS)
	}

	// Directory node (Fig. 4): update the chosen entry's measure value and
	// MDS, then descend.
	idx, err := t.chooseSubtree(n, rc)
	if err != nil {
		return insertResult{}, err
	}
	e := &n.entries[idx]
	t.coverRecord(e, rc)
	e.Agg.Merge(rc.agg)

	res, err := t.insertInto(e.Child, e.MDS, rc)
	if err != nil {
		return insertResult{}, err
	}
	if !res.split {
		return insertResult{}, nil
	}

	// The child was split: refresh this entry with the exact cover of the
	// first group and add a new son for the second (Fig. 4 "Insert new
	// son"). Re-resolve the entry pointer: the recursion cannot have
	// mutated this node, but the compiler cannot know that.
	e = &n.entries[idx]
	e.MDS = res.origMDS
	e.Agg = res.origAgg
	n.entries = append(n.entries, entry{MDS: res.newMDS, Agg: res.newAgg, Child: res.newID})
	if !n.overflowing(&t.cfg) {
		return insertResult{}, nil
	}
	return t.splitNode(n, nodeMDS)
}

// chooseSubtree selects the directory entry to follow for a record
// (the choose_subtree of Fig. 4). Like the X-tree's, it minimizes the
// enlargement the record causes — but enlargement of an MDS must respect
// the concept hierarchies: adding a value that forces a NEW coarse-level
// value (a new region) fragments the tree's partitioning far more than
// adding one fine value under an already-covered coarse value (a new
// customer inside a covered nation). The cost of following an entry is
// therefore the weighted count of new attribute values per hierarchy
// level, with geometrically dominant weights toward coarse levels, so the
// comparison is effectively lexicographic coarse-level-first. Cost 0 means
// the entry already contains the record; among equal costs the smaller
// volume, then the smaller MDS size win (most specific subtree).
func (t *Tree) chooseSubtree(n *node, rc *recContext) (int, error) {
	if len(n.entries) == 0 {
		return 0, fmt.Errorf("%w: empty directory node %d", ErrCorrupt, n.id)
	}
	best := -1
	var bestCost, bestVol float64
	var bestSize int
	for i := range n.entries {
		e := &n.entries[i]
		cost, err := t.enlargementCost(e.MDS, rc)
		if err != nil {
			return 0, err
		}
		vol := e.MDS.Volume()
		size := e.MDS.Size()
		better := best == -1 ||
			cost < bestCost ||
			(cost == bestCost && vol < bestVol) ||
			(cost == bestCost && vol == bestVol && size < bestSize)
		if better {
			best, bestCost, bestVol, bestSize = i, cost, vol, size
		}
	}
	return best, nil
}

// levelWeight is the per-hierarchy-level base of the enlargement cost:
// one new value at level L costs levelWeight^L, so a single coarse-level
// addition outweighs any realistic number of finer ones.
const levelWeight = 1 << 16

// enlargementCost measures how badly a record MDS enlarges an entry MDS:
// for every dimension, one unit of cost levelWeight^L for each hierarchy
// level L (from the entry's relevant level up to the level below ALL) at
// which the record's ancestor is not yet among the entry's values. A
// record fully contained in the entry costs 0.
func (t *Tree) enlargementCost(entryMDS mds.MDS, rc *recContext) (float64, error) {
	space := t.space()
	weight := float64(levelWeight)
	if t.cfg.FlatChooseSubtree {
		weight = 1 // ablation: hierarchy-blind enlargement
	}
	cost := 0.0
	for d, h := range space {
		ds := entryMDS[d]
		if ds.Level == hierarchy.LevelALL {
			continue // ALL covers everything at no new values
		}
		// Fast path: membership at the entry's own level is a binary
		// search over the sorted value set, and covers the common case of
		// a record routed into a subtree that already describes it.
		if idMember(ds.IDs, rc.anc[d][ds.Level]) {
			continue
		}
		cost += pow(weight, ds.Level)
		for level := ds.Level + 1; level <= h.TopLevel(); level++ {
			anc := rc.anc[d][level]
			covered := false
			for _, v := range ds.IDs {
				va, err := h.AncestorAt(v, level)
				if err != nil {
					return 0, err
				}
				if va == anc {
					covered = true
					break
				}
			}
			if covered {
				break // monotone: covered here means covered above too
			}
			cost += pow(weight, level)
		}
	}
	return cost, nil
}

// coverRecord folds the record into an entry's MDS in place: per
// dimension, the record's ancestor at the entry's relevant level is
// inserted into the sorted value set if missing. Equivalent to
// mds.Cover(e.MDS, recMDS) — levels are preserved because Cover takes the
// maximum member level — but without re-unioning the untouched values.
func (t *Tree) coverRecord(e *entry, rc *recContext) {
	for d := range e.MDS {
		ds := &e.MDS[d]
		if ds.Level == hierarchy.LevelALL {
			continue
		}
		anc := rc.anc[d][ds.Level]
		ids := ds.IDs
		lo, hi := 0, len(ids)
		for lo < hi {
			mid := (lo + hi) / 2
			if ids[mid] < anc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ids) && ids[lo] == anc {
			continue
		}
		ids = append(ids, 0)
		copy(ids[lo+1:], ids[lo:])
		ids[lo] = anc
		ds.IDs = ids
	}
}

// pow is a small positive-integer power for float64 (avoids importing
// math for a hot-path helper).
func pow(base float64, exp int) float64 {
	v := 1.0
	for i := 0; i < exp; i++ {
		v *= base
	}
	return v
}

// idMember reports membership in a sorted ID slice via binary search.
func idMember(ids []hierarchy.ID, id hierarchy.ID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}
