package core

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// The checkpoint suite pins the error-path contract of the fuzzy
// checkpoint: a failed checkpoint leaks nothing and changes nothing, a
// failed free after a durable swap defers instead of corrupting, and the
// dirty-but-absent invariant fails loudly.

// faultTree builds a tree over a FaultStore-wrapped MemStore so tests can
// inject per-op failures and audit extent counts.
func faultTree(t *testing.T, cfg Config) (*Tree, *storage.FaultStore, *storage.MemStore) {
	t.Helper()
	ms := storage.NewMemStore(cfg.BlockSize)
	fs := storage.NewFaultStore(ms)
	tree, err := New(fs, testSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, fs, ms
}

// TestCheckpointRollbackReleasesFreshExtents is the regression test for the
// shadow-extent leak: a checkpoint that dies mid-write (Alloc or Write)
// must free every fresh extent it allocated and leave the table pointing at
// the old, still-valid extents. Before the fix the failed flush left the
// table referencing half-written extents and orphaned the rest.
func TestCheckpointRollbackReleasesFreshExtents(t *testing.T) {
	tree, fs, ms := faultTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(11))
	warm := genRecords(t, s, rng, 300)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	more := genRecords(t, s, rng, 200)
	for _, r := range more {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	before := ms.ExtentCount()
	plans := []storage.FaultPlan{
		{Mode: storage.FailStop, Op: "write", Budget: 2, Transient: true},
		{Mode: storage.FailStop, Op: "alloc", Budget: 1, Transient: true},
		{Mode: storage.FailStop, Op: "setmeta", Transient: true},
		{Mode: storage.FailStop, Op: "sync", Transient: true},
	}
	for _, plan := range plans {
		fs.ArmPlan(plan)
		err := tree.Flush()
		fired := fs.Fired()
		fs.Disarm()
		if err == nil {
			t.Fatalf("op %q: flush survived the injected fault", plan.Op)
		}
		if !fired {
			t.Fatalf("op %q: fault never fired", plan.Op)
		}
		if got := ms.ExtentCount(); got != before {
			t.Fatalf("op %q: extent count %d after failed flush, want %d (leak)", plan.Op, got, before)
		}
	}
	if fails := tree.Metrics().CheckpointFailures; fails != int64(len(plans)) {
		t.Fatalf("CheckpointFailures = %d, want %d", fails, len(plans))
	}

	// The rolled-back tree retries cleanly and persists the full state.
	if err := tree.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	all := append(append([]cube.Record(nil), warm...), more...)
	verifyAgainstOracle(t, tree, all, 15, 13)
	if rep := tree.VerifyExtents(); !rep.OK() {
		t.Fatalf("verify after retry: %d damaged extents", len(rep.Errors))
	}
}

// TestCheckpointFreeFailureIsDeferred is the regression test for the lost
// pending-free tail: once the metadata swap is durable, a Free that fails
// must not fail the checkpoint — the extent stays queued and the next
// checkpoint reclaims it. Before the fix the pending list was cleared
// up front and a partial Free failure leaked the unfreed tail forever.
func TestCheckpointFreeFailureIsDeferred(t *testing.T) {
	tree, fs, ms := faultTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(17))
	warm := genRecords(t, s, rng, 300)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	more := genRecords(t, s, rng, 300) // rewrites old extents, splits queue frees
	for _, r := range more {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	fs.ArmPlan(storage.FaultPlan{Mode: storage.FailStop, Op: "free", Transient: true})
	err := tree.Flush()
	fired := fs.Fired()
	fs.Disarm()
	if err != nil {
		t.Fatalf("flush failed on a post-swap free: %v", err)
	}
	if !fired {
		t.Fatal("free fault never fired; workload produced no frees")
	}
	deferred := tree.Metrics().CheckpointDeferredFrees
	if deferred < 1 {
		t.Fatalf("CheckpointDeferredFrees = %d, want >= 1", deferred)
	}

	// The deferred extent is reclaimed by the next checkpoint: afterwards
	// the store holds exactly the extents the translation table references.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := tree.VerifyExtents()
	if !rep.OK() {
		t.Fatalf("verify: %d damaged extents", len(rep.Errors))
	}
	if got := ms.ExtentCount(); got != rep.Extents {
		t.Fatalf("store holds %d extents, table references %d (deferred free never retried)", got, rep.Extents)
	}
	all := append(append([]cube.Record(nil), warm...), more...)
	verifyAgainstOracle(t, tree, all, 15, 19)
}

// TestCheckpointPhantomDirtyNotInTable: a dirty flag with no in-memory node
// and no extent behind it is a stale leftover; the checkpoint clears it and
// carries on instead of failing or looping on it forever.
func TestCheckpointPhantomDirtyNotInTable(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	rng := rand.New(rand.NewSource(23))
	for _, r := range genRecords(t, tree.Schema(), rng, 100) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.nc.markDirty(nodeID(1 << 40)) // never allocated
	if err := tree.Flush(); err != nil {
		t.Fatalf("flush with phantom flag: %v", err)
	}
	if n := tree.nc.dirtyLen(); n != 0 {
		t.Fatalf("%d dirty flags survive the flush; phantom not cleared", n)
	}
}

// TestCheckpointPhantomDirtyInTable is the regression test for the silent
// skip: a node that is dirty, absent from the cache, but present in the
// table has lost unpersisted mutations (EvictCache keeps dirty nodes
// resident), and checkpointing its stale extent as current would be silent
// data loss. The checkpoint must refuse with ErrCorrupt.
func TestCheckpointPhantomDirtyInTable(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	rng := rand.New(rand.NewSource(29))
	for _, r := range genRecords(t, tree.Schema(), rng, 100) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.EvictCache() // everything clean → cache empties, table stays

	tree.mu.RLock()
	var victim nodeID
	for id := range tree.table {
		victim = id
		break
	}
	resident := tree.nc.get(victim) != nil
	tree.mu.RUnlock()
	if resident {
		t.Fatal("victim still resident after evict; test premise broken")
	}

	tree.nc.markDirty(victim)
	if err := tree.Flush(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flush with dirty evicted node = %v, want ErrCorrupt", err)
	}
}

// gateStore blocks the first extent write until released, holding a fuzzy
// checkpoint inside its background phase so the test can mutate the tree
// mid-checkpoint deterministically.
type gateStore struct {
	storage.Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateStore) Write(id storage.PageID, blocks int, data []byte) error {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.Store.Write(id, blocks, data)
}

// TestCheckpointRequeuesReDirtiedNodes drives the fuzzy protocol's core
// property: inserts proceed while the background phase writes, and a node
// re-dirtied after capture keeps its dirty flag (the checkpoint persists
// the captured version; the next one picks up the newer state).
func TestCheckpointRequeuesReDirtiedNodes(t *testing.T) {
	cfg := smallConfig()
	gs := &gateStore{
		Store:   storage.NewMemStore(cfg.BlockSize),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	s := testSchema(t)
	tree, err := New(gs, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	warm := genRecords(t, s, rng, 300)
	for _, r := range warm {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	extra := genRecords(t, s, rng, 100)

	done := make(chan error, 1)
	go func() { done <- tree.Checkpoint(context.Background()) }()
	<-gs.entered // background write phase is in flight, tree lock free

	// These inserts MUST NOT block on the checkpoint (the old synchronous
	// flush held the write lock for the whole store pass). They re-dirty
	// captured nodes — at minimum the root, which is on every insert path.
	for _, r := range extra {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	close(gs.release)
	if err := <-done; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	if re := tree.Metrics().CheckpointRequeuedNodes; re == 0 {
		t.Fatal("no node was requeued; inserts did not overlap the background phase")
	}
	if n := tree.nc.dirtyLen(); n == 0 {
		t.Fatal("re-dirtied nodes lost their dirty flags at install")
	}

	// The next checkpoint persists the newer state; a cold reopen of the
	// store must see every record.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(gs.Store)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]cube.Record(nil), warm...), extra...)
	verifyAgainstOracle(t, reopened, all, 15, 37)
}

// TestFuzzyCheckpointConcurrentInserts is the -race stress demanded by the
// durability contract: concurrent inserters race several background
// checkpoints on a real paged store + WAL, and after close + recovery the
// tree answers exactly like a seqscan oracle.
func TestFuzzyCheckpointConcurrentInserts(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := smallConfig()
	cfg.CommitInterval = time.Millisecond

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	recs := genRecords(t, schema, rng, 800)

	const writers = 4
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	per := len(recs) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(batch []cube.Record) {
			defer wg.Done()
			for _, r := range batch {
				if err := tree.Insert(r); err != nil {
					errs <- err
					return
				}
			}
		}(recs[w*per : (w+1)*per])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := tree.Checkpoint(context.Background()); err != nil {
				errs <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tree2, err := OpenDurable(st2, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	verifyAgainstOracle(t, tree2, recs, 25, 43)
	if rep := tree2.VerifyExtents(); !rep.OK() {
		t.Fatalf("verify after recovery: %d damaged extents", len(rep.Errors))
	}
}

// TestAutoCheckpointer covers both triggers of the background checkpointer
// and the persistence of its knobs through the metadata.
func TestAutoCheckpointer(t *testing.T) {
	waitFor := func(t *testing.T, tree *Tree, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for tree.Metrics().Checkpoints == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: no checkpoint fired", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Run("interval", func(t *testing.T) {
		dir := t.TempDir()
		cfg := smallConfig()
		cfg.CommitInterval = time.Millisecond
		cfg.CheckpointInterval = 20 * time.Millisecond
		st, err := storage.OpenPagedStore(filepath.Join(dir, "store.dc"), cfg.BlockSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		tree, err := NewDurable(st, testSchema(t), cfg, filepath.Join(dir, "idx"))
		if err != nil {
			t.Fatal(err)
		}
		defer tree.Close()
		rng := rand.New(rand.NewSource(47))
		for _, r := range genRecords(t, tree.Schema(), rng, 50) {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, tree, "interval trigger")
	})
	t.Run("dirty-bytes", func(t *testing.T) {
		dir := t.TempDir()
		cfg := smallConfig()
		cfg.CommitInterval = time.Millisecond
		cfg.CheckpointDirtyBytes = 1 // any dirty node trips the threshold
		st, err := storage.OpenPagedStore(filepath.Join(dir, "store.dc"), cfg.BlockSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		tree, err := NewDurable(st, testSchema(t), cfg, filepath.Join(dir, "idx"))
		if err != nil {
			t.Fatal(err)
		}
		defer tree.Close()
		rng := rand.New(rand.NewSource(53))
		for _, r := range genRecords(t, tree.Schema(), rng, 50) {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, tree, "dirty-bytes trigger")
	})
	t.Run("knobs-persist", func(t *testing.T) {
		// The v3 metadata carries both knobs, so a reopened tree resumes
		// auto-checkpointing without the caller re-passing its Config.
		cfg := smallConfig()
		cfg.CheckpointInterval = 42 * time.Second
		cfg.CheckpointDirtyBytes = 1 << 20
		ms := storage.NewMemStore(cfg.BlockSize)
		tree, err := New(ms, testSchema(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(59))
		for _, r := range genRecords(t, tree.Schema(), rng, 20) {
			if err := tree.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(ms)
		if err != nil {
			t.Fatal(err)
		}
		if got := reopened.cfg.CheckpointInterval; got != cfg.CheckpointInterval {
			t.Fatalf("CheckpointInterval after reopen = %v", got)
		}
		if got := reopened.cfg.CheckpointDirtyBytes; got != cfg.CheckpointDirtyBytes {
			t.Fatalf("CheckpointDirtyBytes after reopen = %d", got)
		}
	})
}
