package core

import (
	"io"
	"time"

	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/obs"
	"github.com/dcindex/dctree/internal/storage"
)

// treeMetrics is the tree's always-on instrumentation: atomic counters and
// histograms updated on the hot paths (single atomic operations, no locks,
// no allocation) and read by Tree.Metrics. The zero value is ready to use.
//
// Query-side counters are recorded exactly once per query at the Execute
// choke point, never inside the descent, so they stay consistent across
// the serial, parallel, and all-measures paths and across every public
// convenience wrapper.
type treeMetrics struct {
	inserts       obs.Counter
	insertLatency obs.Histogram
	deletes       obs.Counter
	deleteMisses  obs.Counter

	queries      obs.Counter
	queryErrors  obs.Counter
	queryCancels obs.Counter
	queryLatency obs.Histogram
	slowQueries  obs.Counter

	splitsHierarchy  obs.Counter
	splitsForced     obs.Counter
	supernodeCreated obs.Counter
	supernodeGrown   obs.Counter
	rootSplits       obs.Counter

	qNodesVisited     obs.Counter
	qEntriesScanned   obs.Counter
	qEntriesPruned    obs.Counter
	qMaterializedHits obs.Counter
	qRecordsMatched   obs.Counter

	// Read-path concurrency instrumentation: sharded node cache, pooled
	// query-mask arenas, and the work-stealing parallel descent.
	cacheHits         obs.Counter
	cacheMisses       obs.Counter
	cacheFaultsShared obs.Counter
	maskPoolHits      obs.Counter
	maskPoolMisses    obs.Counter
	stealSpawned      obs.Counter
	stealStolen       obs.Counter

	// Zero-copy read path: descents answered from a flat node view over
	// mapped bytes, and reads that fell back to the heap decode path
	// (layout-v2 extent, mmap unavailable, or zero-copy disabled).
	flatNodeReads   obs.Counter
	decodeFallbacks obs.Counter

	// Durable write path: WAL appends, fsyncs issued by the group
	// committer (or inline in naive mode), commit batches with their
	// record totals and high-water size, and records re-applied by
	// OpenDurable recovery.
	walAppends       obs.Counter
	walFsyncs        obs.Counter
	walBatches       obs.Counter
	walBatchRecords  obs.Counter
	walBatchMax      obs.Gauge
	walDictDeltas    obs.Counter
	recoveryReplayed obs.Counter
	// Group-commit autotuning: the committer's current effective window in
	// nanoseconds, and how many batches moved it.
	walCommitIntervalNs obs.Gauge
	walAutotuneAdjusts  obs.Counter
	// Replica apply mode: mutation records folded in by ApplyReplicated
	// (dict deltas and version records are bookkeeping, like recovery).
	replicaApplied obs.Counter
	// Synchronous replication: writes that timed out waiting for the
	// follower quorum and were acknowledged on local durability alone.
	replSyncDegraded obs.Counter

	// Fuzzy checkpoints: completed and failed checkpoints, pages (extents)
	// and payload bytes written, nodes re-dirtied during the background
	// write (re-queued for the next round), extent frees deferred past a
	// durable swap, cumulative writer-stall time (the capture and install
	// critical sections only), and end-to-end checkpoint latency.
	checkpoints            obs.Counter
	checkpointFailures     obs.Counter
	checkpointPages        obs.Counter
	checkpointBytes        obs.Counter
	checkpointRequeued     obs.Counter
	checkpointFreeDeferred obs.Counter
	checkpointStallNs      obs.Counter
	checkpointLatency      obs.Histogram

	// MVCC snapshots: versions captured (and, of those, reconstructed by
	// crash recovery), versions released, dirty nodes captured by value into
	// overlays, extent frees parked behind a live version's pin, and as-of
	// queries answered from a version without the tree lock.
	snapshots            obs.Counter
	snapshotsRecovered   obs.Counter
	snapshotReleases     obs.Counter
	snapshotOverlayNodes obs.Counter
	snapshotFreesParked  obs.Counter
	asOfQueries          obs.Counter

	// Durable versions (meta v8): versions released by retention pruning,
	// versions rehydrated from meta manifests at open, and overlay extents
	// (count and payload bytes) written to storage by checkpoint installs.
	versionsPruned        obs.Counter
	versionsRehydrated    obs.Counter
	versionOverlayExtents obs.Counter
	versionOverlayBytes   obs.Counter
}

// Metrics is a point-in-time snapshot of a tree's operational counters,
// latency histograms and the underlying store's I/O accounting. Counters
// accumulate since the Tree value was created (reopening an index starts
// fresh); the snapshot is taken field by field and may be torn by a few
// concurrent events, which is fine for monitoring.
type Metrics struct {
	// Update-path counters.
	Inserts      int64
	Deletes      int64
	DeleteMisses int64 // Delete calls that found no matching record

	// Query-path counters, recorded once per Execute call.
	Queries      int64
	QueryErrors  int64
	QueryCancels int64 // queries aborted by context cancellation/deadline
	SlowQueries  int64 // queries at or above the slow-query threshold

	// Split behavior, by kind (Fig. 5): accepted hierarchy splits,
	// forced overlap-minimal fallback splits, and supernode events.
	SplitsHierarchy   int64
	SplitsForced      int64
	SupernodesCreated int64 // node grew from one block to two
	SupernodesGrown   int64 // supernode gained one more block
	RootSplits        int64 // root splits, i.e. height increments

	// Aggregated query work (sums of QueryStats over all queries).
	QueryNodesVisited     int64
	QueryEntriesScanned   int64
	QueryEntriesPruned    int64
	QueryMaterializedHits int64
	QueryRecordsMatched   int64

	// Sharded node cache: hits resolved under a shard read lock, misses
	// faulted from the store, and misses that piggybacked on another
	// goroutine's in-flight decode (singleflight). CacheHitRatio is
	// CacheHits / (CacheHits + CacheMisses); 0 before any access.
	CacheHits         int64
	CacheMisses       int64
	CacheFaultsShared int64
	CacheHitRatio     float64

	// Query-mask arena pool: queries whose queryCtx was recycled from the
	// pool vs. freshly allocated. MaskPoolHitRatio is hits per query.
	MaskPoolHits     int64
	MaskPoolMisses   int64
	MaskPoolHitRatio float64

	// Work-stealing parallel descent: subtree tasks pushed back onto the
	// shared queue (beyond the root seed) and tasks taken by a worker other
	// than the one that pushed them.
	ParallelTasksSpawned int64
	ParallelTasksStolen  int64

	// Zero-copy read path. FlatNodeReads counts node resolutions served as
	// in-place flat views over memory-mapped extents; DecodeFallbacks counts
	// uncached resolutions that materialized a heap node instead (layout-v2
	// extent, mapping unavailable, or zero-copy disabled). MmapViews,
	// MmapRemaps and MmapFallbacks are the store-side accounting: extent
	// views served from the mapping, mapping rebuilds after file growth, and
	// view requests answered by a plain file read.
	FlatNodeReads   int64
	DecodeFallbacks int64
	MmapViews       int64
	MmapRemaps      int64
	MmapFallbacks   int64

	// Durable write path (all zero on trees without a WAL). Batch mean is
	// records per group-commit batch; max is the largest batch observed.
	WALAppends              int64
	WALFsyncs               int64
	WALGroupCommitBatchMean float64
	WALGroupCommitBatchMax  int64
	// WALDictDeltas counts dictionary registrations logged as delta
	// entries (record format 2); WALRecycledSegments counts segment
	// creations served from the recycle pool; WALBytesPerRecord is frame
	// bytes written per logical record appended — the compactness signal
	// dcbench -wal compares across record formats.
	WALDictDeltas           int64
	WALRecycledSegments     int64
	WALBytesPerRecord       float64
	RecoveryReplayedRecords int64
	// Group-commit autotuning (Config.CommitAutoTune): the committer's
	// current effective batch window and the number of batches that moved
	// it. Without autotuning the interval reports the configured value and
	// the adjust counter stays zero.
	WALCommitInterval  time.Duration
	WALAutotuneAdjusts int64

	// Replica apply mode: mutation records applied from the primary's log
	// (ReplicaApplied) and the applied LSN frontier. Zero on non-replicas.
	ReplicaApplied    int64
	ReplicaAppliedLSN uint64

	// Replication fencing and synchronous acknowledgment. FencingEpoch is
	// the tree's current epoch (0 = pre-fencing); ReplSyncDegraded counts
	// synchronous writes that timed out waiting for the follower quorum
	// and fell back to local-durability acknowledgment.
	FencingEpoch     uint64
	ReplSyncDegraded int64

	// Fuzzy checkpoints. CheckpointWriterStallSeconds is the cumulative
	// time writers were excluded by checkpoint critical sections — for the
	// fuzzy protocol the capture and install phases only, for FlushSync the
	// whole checkpoint; the gap between it and the latency histogram's sum
	// is exactly what backgrounding the extent writes buys.
	Checkpoints                  int64
	CheckpointFailures           int64
	CheckpointPagesWritten       int64
	CheckpointBytesWritten       int64
	CheckpointRequeuedNodes      int64
	CheckpointDeferredFrees      int64
	CheckpointWriterStallSeconds float64

	// MVCC snapshots. LiveVersions and PinnedExtents are point-in-time
	// gauges; DeferredExtentBlocks is the allocator space currently held
	// back by frees parked behind version pins.
	Snapshots            int64
	SnapshotsRecovered   int64 // versions reconstructed by WAL replay
	SnapshotReleases     int64
	SnapshotOverlayNodes int64 // dirty nodes captured by value at snapshot time
	SnapshotFreesParked  int64 // checkpoint frees parked behind a version pin
	AsOfQueries          int64 // queries answered from a version, lock-free
	LiveVersions         int
	PinnedExtents        int
	DeferredExtentBlocks int
	// Durable versions (meta v8). VersionsPruned counts versions released
	// by retention policy (Config.VersionRetention or dctool -prune);
	// VersionsRehydrated counts versions restored from meta manifests at
	// open; the overlay counters account the version overlay payloads
	// checkpoints wrote to their own storage extents.
	VersionsPruned        int64
	VersionsRehydrated    int64
	VersionOverlayExtents int64
	VersionOverlayBytes   int64

	// MaterializedHitRatio is QueryMaterializedHits / QueryEntriesScanned:
	// the fraction of examined entries answered from a materialized
	// aggregate without descending. PrunedEntryRatio is the analogous
	// fraction discarded without overlap. 0 when nothing was scanned.
	MaterializedHitRatio float64
	PrunedEntryRatio     float64

	// Latency distributions.
	InsertLatency     obs.HistogramSnapshot
	QueryLatency      obs.HistogramSnapshot
	CheckpointLatency obs.HistogramSnapshot

	// Tree shape.
	Records     int64
	Height      int
	CachedNodes int

	// Store is the underlying store's logical I/O accounting;
	// StoreHitRatio is Hits / (Hits + Misses) of the buffer pool (1 for
	// MemStore, which always hits; 0 before any read).
	Store         storage.Stats
	StoreHitRatio float64
}

// Metrics returns a snapshot of the tree's operational metrics.
func (t *Tree) Metrics() Metrics {
	m := &t.metrics
	s := Metrics{
		Inserts:      m.inserts.Load(),
		Deletes:      m.deletes.Load(),
		DeleteMisses: m.deleteMisses.Load(),

		Queries:      m.queries.Load(),
		QueryErrors:  m.queryErrors.Load(),
		QueryCancels: m.queryCancels.Load(),
		SlowQueries:  m.slowQueries.Load(),

		SplitsHierarchy:   m.splitsHierarchy.Load(),
		SplitsForced:      m.splitsForced.Load(),
		SupernodesCreated: m.supernodeCreated.Load(),
		SupernodesGrown:   m.supernodeGrown.Load(),
		RootSplits:        m.rootSplits.Load(),

		QueryNodesVisited:     m.qNodesVisited.Load(),
		QueryEntriesScanned:   m.qEntriesScanned.Load(),
		QueryEntriesPruned:    m.qEntriesPruned.Load(),
		QueryMaterializedHits: m.qMaterializedHits.Load(),
		QueryRecordsMatched:   m.qRecordsMatched.Load(),

		CacheHits:         m.cacheHits.Load(),
		CacheMisses:       m.cacheMisses.Load(),
		CacheFaultsShared: m.cacheFaultsShared.Load(),

		MaskPoolHits:   m.maskPoolHits.Load(),
		MaskPoolMisses: m.maskPoolMisses.Load(),

		ParallelTasksSpawned: m.stealSpawned.Load(),
		ParallelTasksStolen:  m.stealStolen.Load(),

		FlatNodeReads:   m.flatNodeReads.Load(),
		DecodeFallbacks: m.decodeFallbacks.Load(),

		WALAppends:              m.walAppends.Load(),
		WALFsyncs:               m.walFsyncs.Load(),
		WALGroupCommitBatchMax:  m.walBatchMax.Load(),
		WALDictDeltas:           m.walDictDeltas.Load(),
		RecoveryReplayedRecords: m.recoveryReplayed.Load(),
		WALCommitInterval:       time.Duration(m.walCommitIntervalNs.Load()),
		WALAutotuneAdjusts:      m.walAutotuneAdjusts.Load(),
		ReplicaApplied:          m.replicaApplied.Load(),
		ReplicaAppliedLSN:       t.AppliedLSN(),
		FencingEpoch:            t.Epoch(),
		ReplSyncDegraded:        m.replSyncDegraded.Load(),

		Checkpoints:                  m.checkpoints.Load(),
		CheckpointFailures:           m.checkpointFailures.Load(),
		CheckpointPagesWritten:       m.checkpointPages.Load(),
		CheckpointBytesWritten:       m.checkpointBytes.Load(),
		CheckpointRequeuedNodes:      m.checkpointRequeued.Load(),
		CheckpointDeferredFrees:      m.checkpointFreeDeferred.Load(),
		CheckpointWriterStallSeconds: float64(m.checkpointStallNs.Load()) / 1e9,

		Snapshots:            m.snapshots.Load(),
		SnapshotsRecovered:   m.snapshotsRecovered.Load(),
		SnapshotReleases:     m.snapshotReleases.Load(),
		SnapshotOverlayNodes: m.snapshotOverlayNodes.Load(),
		SnapshotFreesParked:  m.snapshotFreesParked.Load(),
		AsOfQueries:          m.asOfQueries.Load(),

		VersionsPruned:        m.versionsPruned.Load(),
		VersionsRehydrated:    m.versionsRehydrated.Load(),
		VersionOverlayExtents: m.versionOverlayExtents.Load(),
		VersionOverlayBytes:   m.versionOverlayBytes.Load(),

		InsertLatency:     m.insertLatency.Snapshot(),
		QueryLatency:      m.queryLatency.Snapshot(),
		CheckpointLatency: m.checkpointLatency.Snapshot(),

		Records:     t.Count(),
		Height:      t.Height(),
		CachedNodes: t.CachedNodes(),

		Store: t.store.Stats(),
	}
	if t.viewer != nil {
		vs := t.viewer.ViewStats()
		s.MmapViews = vs.Views
		s.MmapRemaps = vs.Remaps
		s.MmapFallbacks = vs.Fallbacks
	}
	t.vmu.Lock()
	s.LiveVersions = len(t.versions)
	t.vmu.Unlock()
	ps := t.pins.Stats()
	s.PinnedExtents = ps.PinnedExtents
	s.DeferredExtentBlocks = ps.DeferredBlocks
	if s.QueryEntriesScanned > 0 {
		s.MaterializedHitRatio = float64(s.QueryMaterializedHits) / float64(s.QueryEntriesScanned)
		s.PrunedEntryRatio = float64(s.QueryEntriesPruned) / float64(s.QueryEntriesScanned)
	}
	if probes := s.Store.Hits + s.Store.Misses; probes > 0 {
		s.StoreHitRatio = float64(s.Store.Hits) / float64(probes)
	}
	if probes := s.CacheHits + s.CacheMisses; probes > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(probes)
	}
	if probes := s.MaskPoolHits + s.MaskPoolMisses; probes > 0 {
		s.MaskPoolHitRatio = float64(s.MaskPoolHits) / float64(probes)
	}
	if batches := m.walBatches.Load(); batches > 0 {
		s.WALGroupCommitBatchMean = float64(m.walBatchRecords.Load()) / float64(batches)
	}
	if t.wal != nil {
		ws := t.wal.w.Stats()
		s.WALRecycledSegments = ws.Recycled
		if ws.Appends > 0 {
			s.WALBytesPerRecord = float64(ws.BytesStored) / float64(ws.Appends)
		}
	}
	return s
}

// Families renders the snapshot as Prometheus metric families under the
// dctree_ namespace.
func (m Metrics) Families() []obs.Family {
	kind := func(k string) []obs.Label { return []obs.Label{{Key: "kind", Value: k}} }
	return []obs.Family{
		obs.CounterFamily("dctree_inserts_total", "Records inserted.", m.Inserts),
		obs.CounterFamily("dctree_deletes_total", "Records deleted.", m.Deletes),
		obs.CounterFamily("dctree_delete_misses_total", "Delete calls that matched no record.", m.DeleteMisses),
		obs.CounterFamily("dctree_queries_total", "Range queries executed (all entrypoints).", m.Queries),
		obs.CounterFamily("dctree_query_errors_total", "Range queries that failed (excluding cancellations).", m.QueryErrors),
		obs.CounterFamily("dctree_query_cancels_total", "Range queries aborted by context cancellation or deadline.", m.QueryCancels),
		obs.CounterFamily("dctree_slow_queries_total", "Queries at or above the slow-query threshold.", m.SlowQueries),
		{
			Name: "dctree_splits_total", Help: "Node splits by kind (Fig. 5).", Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: kind("hierarchy"), Value: float64(m.SplitsHierarchy)},
				{Labels: kind("forced"), Value: float64(m.SplitsForced)},
			},
		},
		{
			Name: "dctree_supernode_events_total", Help: "Supernode creations and growths.", Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: kind("created"), Value: float64(m.SupernodesCreated)},
				{Labels: kind("grown"), Value: float64(m.SupernodesGrown)},
			},
		},
		obs.CounterFamily("dctree_root_splits_total", "Root splits (tree height increments).", m.RootSplits),
		obs.CounterFamily("dctree_query_nodes_visited_total", "Nodes visited by range queries.", m.QueryNodesVisited),
		obs.CounterFamily("dctree_query_entries_scanned_total", "Directory and data entries examined by range queries.", m.QueryEntriesScanned),
		obs.CounterFamily("dctree_query_entries_pruned_total", "Directory entries pruned without overlap.", m.QueryEntriesPruned),
		obs.CounterFamily("dctree_query_materialized_hits_total", "Directory entries answered from materialized aggregates.", m.QueryMaterializedHits),
		obs.CounterFamily("dctree_query_records_matched_total", "Data records individually matched by range queries.", m.QueryRecordsMatched),
		obs.CounterFamily("dctree_node_cache_hits_total", "Node reads served by the sharded in-memory cache.", m.CacheHits),
		obs.CounterFamily("dctree_node_cache_misses_total", "Node reads faulted from the store.", m.CacheMisses),
		obs.CounterFamily("dctree_node_cache_shared_faults_total", "Cache misses that piggybacked on another goroutine's in-flight decode.", m.CacheFaultsShared),
		obs.GaugeFamily("dctree_node_cache_hit_ratio", "Sharded node cache hits per access.", m.CacheHitRatio),
		obs.CounterFamily("dctree_mask_pool_hits_total", "Queries whose membership-mask arena was recycled from the pool.", m.MaskPoolHits),
		obs.CounterFamily("dctree_mask_pool_misses_total", "Queries that allocated a fresh membership-mask arena.", m.MaskPoolMisses),
		obs.GaugeFamily("dctree_mask_pool_hit_ratio", "Mask-arena pool hits per query.", m.MaskPoolHitRatio),
		obs.CounterFamily("dctree_parallel_tasks_spawned_total", "Subtree tasks pushed onto the shared work-stealing queue.", m.ParallelTasksSpawned),
		obs.CounterFamily("dctree_parallel_tasks_stolen_total", "Subtree tasks executed by a worker other than the one that pushed them.", m.ParallelTasksStolen),
		obs.CounterFamily("dctree_flat_node_reads_total", "Node resolutions served as zero-copy flat views over mapped extents.", m.FlatNodeReads),
		obs.CounterFamily("dctree_decode_fallback_total", "Uncached node resolutions that materialized a heap node instead of a flat view.", m.DecodeFallbacks),
		obs.CounterFamily("dctree_mmap_views_total", "Extent views served from the store's memory mapping.", m.MmapViews),
		obs.CounterFamily("dctree_mmap_remap_total", "Memory-mapping rebuilds after backing-file growth.", m.MmapRemaps),
		obs.CounterFamily("dctree_mmap_fallback_total", "Extent view requests answered by a plain file read.", m.MmapFallbacks),
		obs.CounterFamily("dctree_wal_appends_total", "Logical records appended to the write-ahead log.", m.WALAppends),
		obs.CounterFamily("dctree_wal_fsyncs_total", "WAL fsyncs issued (one per group-commit batch, or per append in naive mode).", m.WALFsyncs),
		{
			Name: "dctree_wal_group_commit_batch_size", Help: "Records per group-commit batch.", Type: obs.TypeGauge,
			Samples: []obs.Sample{
				{Labels: []obs.Label{{Key: "stat", Value: "mean"}}, Value: m.WALGroupCommitBatchMean},
				{Labels: []obs.Label{{Key: "stat", Value: "max"}}, Value: float64(m.WALGroupCommitBatchMax)},
			},
		},
		obs.CounterFamily("dctree_wal_dict_deltas_total", "Dictionary registrations logged as WAL delta entries (record format 2).", m.WALDictDeltas),
		obs.CounterFamily("dctree_wal_recycled_segments_total", "WAL segment creations served from the recycle pool instead of a fresh create.", m.WALRecycledSegments),
		obs.GaugeFamily("dctree_wal_bytes_per_record", "Frame bytes written to the WAL per logical record appended.", m.WALBytesPerRecord),
		obs.CounterFamily("dctree_recovery_replayed_records_total", "WAL records re-applied by OpenDurable crash recovery.", m.RecoveryReplayedRecords),
		obs.GaugeFamily("dctree_wal_commit_interval_seconds", "Effective group-commit batch window (adapted under CommitAutoTune).", m.WALCommitInterval.Seconds()),
		obs.CounterFamily("dctree_wal_autotune_adjustments_total", "Group-commit batches that moved the autotuned window.", m.WALAutotuneAdjusts),
		obs.CounterFamily("dctree_replica_applied_records_total", "Mutation records applied from the primary's log in replica mode.", m.ReplicaApplied),
		obs.GaugeFamily("dctree_replica_applied_lsn", "Replica applied-LSN frontier (0 on non-replicas).", float64(m.ReplicaAppliedLSN)),
		obs.GaugeFamily("dctree_fencing_epoch", "Replication fencing epoch (0 = pre-fencing, bumped by every promotion).", float64(m.FencingEpoch)),
		obs.CounterFamily("dctree_repl_sync_degraded_total", "Synchronous writes acknowledged on local durability after the follower-quorum wait timed out.", m.ReplSyncDegraded),
		obs.CounterFamily("dctree_checkpoints_total", "Checkpoints completed (Flush, Checkpoint, or the auto-trigger).", m.Checkpoints),
		obs.CounterFamily("dctree_checkpoint_failures_total", "Checkpoints that failed and rolled back.", m.CheckpointFailures),
		obs.CounterFamily("dctree_checkpoint_pages_written_total", "Node extents written by checkpoints.", m.CheckpointPagesWritten),
		obs.CounterFamily("dctree_checkpoint_bytes_written_total", "Node payload bytes written by checkpoints.", m.CheckpointBytesWritten),
		obs.CounterFamily("dctree_checkpoint_requeued_nodes_total", "Nodes re-dirtied during a background checkpoint write and kept queued.", m.CheckpointRequeuedNodes),
		obs.CounterFamily("dctree_checkpoint_deferred_frees_total", "Extent frees that failed after a durable swap and were retried later.", m.CheckpointDeferredFrees),
		{
			Name: "dctree_checkpoint_writer_stall_seconds_total", Help: "Cumulative time writers were excluded by checkpoint critical sections.", Type: obs.TypeCounter,
			Samples: []obs.Sample{{Value: m.CheckpointWriterStallSeconds}},
		},
		obs.HistogramFamily("dctree_checkpoint_duration_seconds", "End-to-end checkpoint latency.", m.CheckpointLatency),
		obs.CounterFamily("dctree_snapshots_total", "MVCC versions captured (Snapshot calls plus recovery reconstructions).", m.Snapshots),
		obs.CounterFamily("dctree_snapshots_recovered_total", "MVCC versions reconstructed by WAL replay.", m.SnapshotsRecovered),
		obs.CounterFamily("dctree_snapshot_releases_total", "MVCC versions released (pins dropped, parked frees executed).", m.SnapshotReleases),
		obs.CounterFamily("dctree_snapshot_overlay_nodes_total", "Dirty nodes captured by value into snapshot overlays.", m.SnapshotOverlayNodes),
		obs.CounterFamily("dctree_snapshot_frees_parked_total", "Checkpoint extent frees parked behind a live version's pin.", m.SnapshotFreesParked),
		obs.CounterFamily("dctree_asof_queries_total", "Queries answered from an MVCC version without the tree lock.", m.AsOfQueries),
		obs.CounterFamily("dctree_versions_pruned_total", "MVCC versions released by the retention policy.", m.VersionsPruned),
		obs.CounterFamily("dctree_versions_rehydrated_total", "MVCC versions restored from meta manifests at open.", m.VersionsRehydrated),
		obs.CounterFamily("dctree_version_overlay_extents_total", "Version overlay extents written to storage by checkpoints.", m.VersionOverlayExtents),
		obs.CounterFamily("dctree_version_overlay_bytes_total", "Version overlay payload bytes written to storage by checkpoints.", m.VersionOverlayBytes),
		obs.GaugeFamily("dctree_live_versions", "MVCC versions currently live.", float64(m.LiveVersions)),
		obs.GaugeFamily("dctree_pinned_extents", "Storage extents pinned by live versions.", float64(m.PinnedExtents)),
		obs.GaugeFamily("dctree_deferred_extent_blocks", "Allocator blocks held back by frees parked behind version pins.", float64(m.DeferredExtentBlocks)),
		obs.GaugeFamily("dctree_materialized_hit_ratio", "Materialized hits per entry scanned.", m.MaterializedHitRatio),
		obs.GaugeFamily("dctree_pruned_entry_ratio", "Pruned entries per entry scanned.", m.PrunedEntryRatio),
		obs.HistogramFamily("dctree_insert_duration_seconds", "Single-record insert latency.", m.InsertLatency),
		obs.HistogramFamily("dctree_query_duration_seconds", "Range query latency (all entrypoints).", m.QueryLatency),
		obs.GaugeFamily("dctree_records", "Live data records.", float64(m.Records)),
		obs.GaugeFamily("dctree_height", "Tree height (1 = the root is a data node).", float64(m.Height)),
		obs.GaugeFamily("dctree_cached_nodes", "Nodes resident in the in-memory cache.", float64(m.CachedNodes)),
		obs.CounterFamily("dctree_store_reads_total", "Logical extent reads at the store interface.", m.Store.Reads),
		obs.CounterFamily("dctree_store_writes_total", "Logical extent writes at the store interface.", m.Store.Writes),
		obs.CounterFamily("dctree_store_allocs_total", "Extent allocations.", m.Store.Allocs),
		obs.CounterFamily("dctree_store_frees_total", "Extent frees.", m.Store.Frees),
		obs.CounterFamily("dctree_store_pool_hits_total", "Reads served by the buffer pool.", m.Store.Hits),
		obs.CounterFamily("dctree_store_pool_misses_total", "Reads faulted from the backing file.", m.Store.Misses),
		obs.CounterFamily("dctree_store_bytes_read_total", "Payload bytes read.", m.Store.BytesRead),
		obs.CounterFamily("dctree_store_bytes_written_total", "Payload bytes written.", m.Store.BytesWritten),
		obs.GaugeFamily("dctree_store_pool_hit_ratio", "Buffer-pool hits per read probe.", m.StoreHitRatio),
	}
}

// WriteProm writes the snapshot in the Prometheus text exposition format.
func (m Metrics) WriteProm(w io.Writer) error {
	return obs.WriteProm(w, m.Families())
}

// SlowQueryEvent is handed to the slow-query hook for every query whose
// wall-clock latency reaches the configured threshold.
type SlowQueryEvent struct {
	// Query is a copy of the query MDS (safe to retain).
	Query mds.MDS
	// Elapsed is the query's wall-clock duration.
	Elapsed time.Duration
	// Stats is the work the query performed.
	Stats QueryStats
}

// slowQueryHook pairs the threshold with the callback; stored behind an
// atomic pointer so the hot path is one pointer load when disabled.
type slowQueryHook struct {
	threshold time.Duration
	fn        func(SlowQueryEvent)
}

// SetSlowQueryHook installs a slow-query log hook: every query (any
// entrypoint — they all funnel through Execute) whose latency is ≥
// threshold increments the SlowQueries counter and, if fn is non-nil,
// invokes fn synchronously on the query path with the query MDS, latency
// and work counters. Keep fn fast or hand off to a channel. A negative
// threshold removes the hook. Safe to call concurrently with queries.
func (t *Tree) SetSlowQueryHook(threshold time.Duration, fn func(SlowQueryEvent)) {
	if threshold < 0 {
		t.slowHook.Store(nil)
		return
	}
	t.slowHook.Store(&slowQueryHook{threshold: threshold, fn: fn})
}
