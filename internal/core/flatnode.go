package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// Checkpoint node layout v3: a fixed-stride, offset-indexed flat encoding
// designed to be QUERIED in place, without decoding. The v2 encoding
// (node.go) is a varint stream — compact, but every access walks the whole
// payload and materializes entries, MDSs and aggregate vectors on the heap.
// v3 trades a few percent of size for direct addressing, so a mapped
// extent serves MDS pruning, aggregate merges and record tests straight
// from the page cache:
//
//	header (20 bytes):
//	  [0]      magic 0xD3
//	  [1]      flags (bit 0: leaf)
//	  [2:4]    reserved (0)
//	  [4:8]    u32 blocks
//	  [8:12]   u32 entry count
//	  [12:16]  u32 mdsBase — start of the MDS blob area
//	  [16:20]  u32 total payload length
//	offset table:  (count+1) × u32, MDS blob offsets relative to mdsBase;
//	               off[0] = 0, monotone, off[count] = total − mdsBase
//	agg area:      count × measures × 32 bytes
//	               (f64 sum, i64 count, f64 min, f64 max — all LE)
//	fixed area:    leaf:      count × (dims × u32 coord + measures × f64)
//	               directory: count × u64 child node id
//	MDS area:      the entries' MDS wire encodings (mds codec),
//	               concatenated; entry i's blob is [off[i], off[i+1])
//
// Every per-entry access is index arithmetic: agg i,j at a fixed stride,
// child i one u64 load, MDS i one offset-table pair. The layout version
// travels per extent in the translation table (meta v6), so v2 and v3
// extents coexist in one image and v2 upgrades to v3 on rewrite.

const (
	// layoutV2 is the varint node encoding (node.go); layoutV3 the flat
	// encoding above. The zero value of an extentRef's layout field means
	// "unspecified" and is treated as v2 — the decode path reads anything.
	layoutV2 uint8 = 2
	layoutV3 uint8 = 3

	flatMagic      = 0xD3
	flatHeaderSize = 20
	flatAggStride  = 32
)

// flatLayoutSizes returns the section bases of a flat node with the given
// shape: offset-table end (= agg area start), fixed area start, MDS area
// start, and the per-entry fixed stride.
func flatLayoutSizes(leaf bool, count, dims, measures int) (aggBase, fixBase, mdsBase, fixedPer int) {
	aggBase = flatHeaderSize + 4*(count+1)
	fixBase = aggBase + flatAggStride*measures*count
	fixedPer = 8
	if leaf {
		fixedPer = 4*dims + 8*measures
	}
	mdsBase = fixBase + fixedPer*count
	return aggBase, fixBase, mdsBase, fixedPer
}

// appendEncodeFlat serializes the node in layout v3. The fixed-size prefix
// (header, offset table, agg and fixed areas) is reserved up front and
// filled by indexed writes; the MDS blobs are appended behind it, each one
// recording its start in the offset table as it goes — no second sizing
// pass over the MDS encodings.
func (n *node) appendEncodeFlat(buf []byte, dims, measures int) []byte {
	count := len(n.entries)
	aggBase, fixBase, mdsBase, fixedPer := flatLayoutSizes(n.leaf, count, dims, measures)
	start := len(buf)
	buf = append(buf, make([]byte, mdsBase)...)
	hdr := buf[start : start+mdsBase]
	hdr[0] = flatMagic
	if n.leaf {
		hdr[1] |= nodeFlagLeaf
	}
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n.blocks))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(mdsBase))
	for i := range n.entries {
		e := &n.entries[i]
		a := aggBase + flatAggStride*measures*i
		for j := range e.Agg {
			binary.LittleEndian.PutUint64(hdr[a:], math.Float64bits(e.Agg[j].Sum))
			binary.LittleEndian.PutUint64(hdr[a+8:], uint64(e.Agg[j].Count))
			binary.LittleEndian.PutUint64(hdr[a+16:], math.Float64bits(e.Agg[j].Min))
			binary.LittleEndian.PutUint64(hdr[a+24:], math.Float64bits(e.Agg[j].Max))
			a += flatAggStride
		}
		f := fixBase + fixedPer*i
		if n.leaf {
			for _, c := range e.Rec.Coords {
				binary.LittleEndian.PutUint32(hdr[f:], uint32(c))
				f += 4
			}
			for _, m := range e.Rec.Measures {
				binary.LittleEndian.PutUint64(hdr[f:], math.Float64bits(m))
				f += 8
			}
		} else {
			binary.LittleEndian.PutUint64(hdr[f:], uint64(e.Child))
		}
	}
	// MDS area + offset table. Appends may reallocate buf, so the table is
	// written through buf (re-indexed each round), never through hdr.
	for i := range n.entries {
		binary.LittleEndian.PutUint32(buf[start+flatHeaderSize+4*i:], uint32(len(buf)-start-mdsBase))
		buf = n.entries[i].MDS.AppendEncode(buf)
	}
	binary.LittleEndian.PutUint32(buf[start+flatHeaderSize+4*count:], uint32(len(buf)-start-mdsBase))
	binary.LittleEndian.PutUint32(buf[start+16:], uint32(len(buf)-start))
	return buf
}

// flatNode is a read-only view of a layout-v3 payload — typically a mapped
// extent, sometimes a pooled read buffer. It owns nothing: every accessor
// is pointer math over b, and b must stay valid for the flatNode's
// lifetime (the descent bounds it by the tree read lock or a version pin).
// The zero value is invalid; makeFlatNode validates the structural
// invariants once so the accessors can skip per-call checks.
type flatNode struct {
	id       nodeID
	b        []byte
	leaf     bool
	blocks   int
	count    int
	dims     int
	measures int
	aggBase  int
	fixBase  int
	mdsBase  int
	fixedPer int
}

// makeFlatNode validates a v3 payload's frame — header, section bases,
// offset-table monotonicity, and (for directories) non-nil children — in
// O(count), without touching the MDS blobs. MDS malformations surface
// later, at pruning time, as ErrCorrupt from the view iterator.
func makeFlatNode(id nodeID, b []byte, dims, measures int) (flatNode, error) {
	if len(b) < flatHeaderSize || b[0] != flatMagic {
		return flatNode{}, fmt.Errorf("%w: node %d: not a flat (v3) payload", ErrCorrupt, id)
	}
	f := flatNode{
		id:       id,
		b:        b,
		leaf:     b[1]&nodeFlagLeaf != 0,
		blocks:   int(binary.LittleEndian.Uint32(b[4:])),
		count:    int(binary.LittleEndian.Uint32(b[8:])),
		dims:     dims,
		measures: measures,
	}
	total := int(binary.LittleEndian.Uint32(b[16:]))
	mdsBase := int(binary.LittleEndian.Uint32(b[12:]))
	if f.blocks < 1 || f.count < 0 || total != len(b) {
		return flatNode{}, fmt.Errorf("%w: node %d: flat header blocks=%d count=%d total=%d/%d",
			ErrCorrupt, id, f.blocks, f.count, total, len(b))
	}
	// Recompute the bases from the shape: a payload whose stored mdsBase
	// disagrees was encoded for a different schema (or corrupted) and every
	// fixed-offset access would read the wrong section.
	aggBase, fixBase, wantBase, fixedPer := flatLayoutSizes(f.leaf, f.count, dims, measures)
	if mdsBase != wantBase || mdsBase > len(b) {
		return flatNode{}, fmt.Errorf("%w: node %d: flat mds base %d, want %d (len %d)",
			ErrCorrupt, id, mdsBase, wantBase, len(b))
	}
	f.aggBase, f.fixBase, f.mdsBase, f.fixedPer = aggBase, fixBase, mdsBase, fixedPer
	prev := uint32(0)
	for i := 0; i <= f.count; i++ {
		off := binary.LittleEndian.Uint32(b[flatHeaderSize+4*i:])
		if off < prev || int(off) > len(b)-mdsBase {
			return flatNode{}, fmt.Errorf("%w: node %d: flat offset table entry %d", ErrCorrupt, id, i)
		}
		prev = off
	}
	if int(prev) != len(b)-mdsBase {
		return flatNode{}, fmt.Errorf("%w: node %d: flat mds area length", ErrCorrupt, id)
	}
	if !f.leaf {
		for i := 0; i < f.count; i++ {
			if f.child(i) == nilNode {
				return flatNode{}, fmt.Errorf("%w: node %d entry %d: nil child", ErrCorrupt, id, i)
			}
		}
	}
	return f, nil
}

// valid reports whether the view is populated (nodeView dispatch).
func (f *flatNode) valid() bool { return f.b != nil }

// entryMDS returns entry i's MDS wire encoding, in place.
func (f *flatNode) entryMDS(i int) []byte {
	o := int(binary.LittleEndian.Uint32(f.b[flatHeaderSize+4*i:]))
	e := int(binary.LittleEndian.Uint32(f.b[flatHeaderSize+4*i+4:]))
	return f.b[f.mdsBase+o : f.mdsBase+e]
}

// agg returns entry i's aggregate of measure j.
func (f *flatNode) agg(i, j int) cube.Agg {
	a := f.aggBase + flatAggStride*(f.measures*i+j)
	return cube.Agg{
		Sum:   math.Float64frombits(binary.LittleEndian.Uint64(f.b[a:])),
		Count: int64(binary.LittleEndian.Uint64(f.b[a+8:])),
		Min:   math.Float64frombits(binary.LittleEndian.Uint64(f.b[a+16:])),
		Max:   math.Float64frombits(binary.LittleEndian.Uint64(f.b[a+24:])),
	}
}

// mergeAggInto folds entry i's full aggregate vector into vec.
func (f *flatNode) mergeAggInto(i int, vec cube.AggVector) {
	for j := 0; j < f.measures; j++ {
		vec[j].Merge(f.agg(i, j))
	}
}

// child returns directory entry i's child node id.
func (f *flatNode) child(i int) nodeID {
	return nodeID(binary.LittleEndian.Uint64(f.b[f.fixBase+f.fixedPer*i:]))
}

// coord returns data entry i's coordinate in dimension d.
func (f *flatNode) coord(i, d int) hierarchy.ID {
	return hierarchy.ID(binary.LittleEndian.Uint32(f.b[f.fixBase+f.fixedPer*i+4*d:]))
}

// measure returns data entry i's measure j.
func (f *flatNode) measure(i, j int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(f.b[f.fixBase+f.fixedPer*i+4*f.dims+8*j:]))
}

// record materializes data entry i as an owned Record (scan path).
func (f *flatNode) record(i int) cube.Record {
	r := cube.Record{
		Coords:   make([]hierarchy.ID, f.dims),
		Measures: make([]float64, f.measures),
	}
	for d := range r.Coords {
		r.Coords[d] = f.coord(i, d)
	}
	for j := range r.Measures {
		r.Measures[j] = f.measure(i, j)
	}
	return r
}

// decodeFlatNode materializes a layout-v3 payload as a heap node — the
// write path and the no-zero-copy fallback still need mutable *nodes. It
// shares the arena discipline of decodeNode: one allocation per node for
// entries, aggs, coords, measures and MDS storage each, instead of one per
// entry.
func decodeFlatNode(id nodeID, buf []byte, dims, measures int) (*node, error) {
	f, err := makeFlatNode(id, buf, dims, measures)
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: f.leaf, blocks: f.blocks, entries: make([]entry, f.count)}
	aggArena := make(cube.AggVector, f.count*measures)
	var dimArena []mds.DimSet
	var idArena []hierarchy.ID
	var coordArena []hierarchy.ID
	var measureArena []float64
	if f.leaf {
		coordArena = make([]hierarchy.ID, 0, f.count*dims)
		measureArena = make([]float64, 0, f.count*measures)
	}
	for i := range n.entries {
		e := &n.entries[i]
		m, k, err := mds.AppendDecode(f.entryMDS(i), &dimArena, &idArena)
		if err != nil || k != len(f.entryMDS(i)) {
			return nil, fmt.Errorf("%w: node %d entry %d mds: %v", ErrCorrupt, id, i, err)
		}
		e.MDS = m
		e.Agg = aggArena[i*measures : (i+1)*measures : (i+1)*measures]
		for j := 0; j < measures; j++ {
			e.Agg[j] = f.agg(i, j)
		}
		if f.leaf {
			cs := len(coordArena)
			for d := 0; d < dims; d++ {
				coordArena = append(coordArena, f.coord(i, d))
			}
			e.Rec.Coords = coordArena[cs:len(coordArena):len(coordArena)]
			ms := len(measureArena)
			for j := 0; j < measures; j++ {
				measureArena = append(measureArena, f.measure(i, j))
			}
			e.Rec.Measures = measureArena[ms:len(measureArena):len(measureArena)]
		} else {
			e.Child = f.child(i)
		}
	}
	return n, nil
}
