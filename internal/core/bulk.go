package core

import (
	"fmt"
	"sort"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// BulkLoad fills an empty tree from a record set in one pass: records are
// sorted hierarchically (per dimension top-down, dimensions
// round-robined), packed into full data nodes, and the directory is built
// bottom-up with exact covers, refined relevant levels, and materialized
// aggregates.
//
// This is the "bulk incremental update" mode of the systems the paper
// compares against (§1): it produces a well-clustered tree faster than
// record-at-a-time insertion, at the price of the warehouse being offline
// while it runs. It exists here to quantify that trade-off (see the
// BulkVsDynamic benchmark); the paper's contribution is that the DC-tree
// makes the trade-off unnecessary.
func (t *Tree) BulkLoad(recs []cube.Record) error {
	if t.replica {
		return ErrReplica
	}
	t.mu.Lock()
	needFlush, err := t.bulkLoadLocked(recs)
	t.mu.Unlock()
	if err != nil || !needFlush {
		return err
	}
	// A WAL-backed tree checkpoints immediately: bulk loading bypasses the
	// log, so until the flush lands nothing of the load would survive a
	// crash — and the log must not claim otherwise. The flush runs after
	// the lock is released: checkpoints take the checkpoint mutex before
	// the tree lock, never the other way around.
	return t.Flush()
}

// bulkLoadLocked builds the packed tree in memory; the caller flushes
// afterwards when the tree is WAL-backed. Caller holds t.mu.
func (t *Tree) bulkLoadLocked(recs []cube.Record) (needFlush bool, err error) {
	if t.count > 0 {
		return false, fmt.Errorf("%w: BulkLoad requires an empty tree", ErrBadConfig)
	}
	if len(recs) == 0 {
		return false, nil
	}
	for i := range recs {
		if err := t.schema.ValidateRecord(recs[i]); err != nil {
			return false, fmt.Errorf("record %d: %w", i, err)
		}
	}
	space := t.space()

	// Hierarchical sort: compare the records' concept paths level by
	// level, cycling through the dimensions at each depth, so that records
	// sharing coarse ancestors in any dimension end up adjacent — the
	// clustering the dynamic insert develops incrementally.
	keys := make([][]uint32, len(recs))
	maxDepth := 0
	for _, h := range space {
		if h.Depth() > maxDepth {
			maxDepth = h.Depth()
		}
	}
	for i, r := range recs {
		key := make([]uint32, 0, maxDepth*len(space))
		for depth := 0; depth < maxDepth; depth++ {
			for d, h := range space {
				level := h.TopLevel() - depth
				if level < 0 {
					continue
				}
				anc, err := h.AncestorAt(r.Coords[d], level)
				if err != nil {
					return false, err
				}
				key = append(key, anc.Code())
			}
		}
		keys[i] = key
	}
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})

	// Pack sorted records into full data nodes.
	type built struct {
		id  nodeID
		mds mds.MDS
		agg cube.AggVector
	}
	measures := t.schema.Measures()
	var level []built
	for lo := 0; lo < len(recs); lo += t.cfg.LeafCapacity {
		hi := lo + t.cfg.LeafCapacity
		if hi > len(recs) {
			hi = len(recs)
		}
		n := t.newNode(true)
		for _, idx := range order[lo:hi] {
			r := recs[idx]
			n.entries = append(n.entries, entry{
				MDS: mds.FromLeaves(r.Coords),
				Agg: cube.AggOfRecord(r.Measures),
				Rec: r.Clone(),
			})
		}
		m, err := t.bulkDescribe(n)
		if err != nil {
			return false, err
		}
		level = append(level, built{id: n.id, mds: m, agg: n.aggregate(measures)})
	}
	t.height = 1

	// Build the directory bottom-up, packing full directory nodes.
	for len(level) > 1 {
		var next []built
		for lo := 0; lo < len(level); lo += t.cfg.DirCapacity {
			hi := lo + t.cfg.DirCapacity
			if hi > len(level) {
				hi = len(level)
			}
			n := t.newNode(false)
			for _, b := range level[lo:hi] {
				n.entries = append(n.entries, entry{MDS: b.mds, Agg: b.agg, Child: b.id})
			}
			m, err := t.bulkDescribe(n)
			if err != nil {
				return false, err
			}
			next = append(next, built{id: n.id, mds: m, agg: n.aggregate(measures)})
		}
		level = next
		t.height++
	}

	root, err := t.getNode(level[0].id)
	if err != nil {
		return false, err
	}
	// Drop the old empty root and install the packed one.
	if err := t.dropNode(t.root); err != nil {
		return false, err
	}
	t.root = root.id
	t.rootMDS = level[0].mds
	t.count = int64(len(recs))
	return t.wal != nil, nil
}

// bulkDescribe computes a node's describing MDS for bulk loading: the
// exact cover lifted to coarse relevant levels, refined by the same rule
// the dynamic split path uses.
func (t *Tree) bulkDescribe(n *node) (mds.MDS, error) {
	space := t.space()
	cover, err := n.cover(space)
	if err != nil {
		return nil, err
	}
	// Lift to the coarsest describable form first (one value per
	// dimension where possible keeps the description minimal), then apply
	// the standard refinement bound downward.
	levels := make([]int, len(space))
	for d, h := range space {
		levels[d] = h.TopLevel()
	}
	coarse, err := mds.AdaptToLevels(space, cover, levels)
	if err != nil {
		return nil, err
	}
	return t.refineMDS(n, coarse)
}
