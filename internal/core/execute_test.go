package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// buildExecuteTree loads a tree big enough that queries traverse several
// levels and splits of every kind have happened.
func buildExecuteTree(t *testing.T, n int) (*Tree, []cube.Record, *rand.Rand) {
	t.Helper()
	tree := newTestTree(t, smallConfig())
	rng := rand.New(rand.NewSource(7))
	recs := genRecords(t, tree.Schema(), rng, n)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return tree, recs, rng
}

// TestExecuteWrapperEquivalence checks that every legacy query entrypoint
// returns exactly what a direct Execute call returns — they are thin
// wrappers over the same choke point.
func TestExecuteWrapperEquivalence(t *testing.T) {
	tree, recs, rng := buildExecuteTree(t, 1500)
	ctx := context.Background()

	for i := 0; i < 40; i++ {
		q := randomQuery(rng, tree.Schema(), 0.2)
		want := bruteAgg(t, tree.Schema(), recs, q, 0)

		res, err := tree.Execute(ctx, QueryRequest{Query: q, Measure: 0, CollectStats: true})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !aggMatches(res.Agg, want) {
			t.Fatalf("query %d: Execute agg %+v != brute %+v", i, res.Agg, want)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("query %d: Elapsed not set", i)
		}

		// RangeAgg.
		agg, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatalf("RangeAgg: %v", err)
		}
		if agg != res.Agg {
			t.Fatalf("query %d: RangeAgg %+v != Execute %+v", i, agg, res.Agg)
		}

		// RangeQuery, per operator.
		for _, op := range []cube.Op{cube.Sum, cube.Count, cube.Avg, cube.Min, cube.Max} {
			v, err := tree.RangeQuery(q, op, 0)
			if err != nil {
				t.Fatalf("RangeQuery: %v", err)
			}
			if v != res.Agg.Value(op) {
				t.Fatalf("query %d op %v: RangeQuery %g != Execute %g", i, op, v, res.Agg.Value(op))
			}
		}

		// RangeQueryStats: same value and identical work counters.
		v, st, err := tree.RangeQueryStats(q, cube.Sum, 0)
		if err != nil {
			t.Fatalf("RangeQueryStats: %v", err)
		}
		if v != res.Agg.Value(cube.Sum) || st != res.Stats {
			t.Fatalf("query %d: RangeQueryStats (%g, %+v) != Execute (%g, %+v)",
				i, v, st, res.Agg.Value(cube.Sum), res.Stats)
		}

		// RangeAggAll: measure 0 of the vector must equal the scalar path.
		vec, allSt, err := tree.RangeAggAll(q)
		if err != nil {
			t.Fatalf("RangeAggAll: %v", err)
		}
		if len(vec) != tree.Schema().Measures() || vec[0] != res.Agg {
			t.Fatalf("query %d: RangeAggAll %+v != Execute agg %+v", i, vec, res.Agg)
		}
		if allSt != res.Stats {
			t.Fatalf("query %d: RangeAggAll stats %+v != serial stats %+v", i, allSt, res.Stats)
		}

		// Parallel: same answer, and the merged worker stats must equal the
		// serial stats exactly (same pruning decisions, different order).
		for _, workers := range []int{1, 4} {
			pres, err := tree.Execute(ctx, QueryRequest{Query: q, Measure: 0, Parallel: workers, CollectStats: true})
			if err != nil {
				t.Fatalf("Execute parallel=%d: %v", workers, err)
			}
			if !aggMatches(pres.Agg, want) {
				t.Fatalf("query %d parallel=%d: agg %+v != brute %+v", i, workers, pres.Agg, want)
			}
			if pres.Stats != res.Stats {
				t.Fatalf("query %d parallel=%d: stats %+v != serial %+v", i, workers, pres.Stats, res.Stats)
			}
		}
		pagg, err := tree.RangeAggParallel(q, 0, 3)
		if err != nil {
			t.Fatalf("RangeAggParallel: %v", err)
		}
		if !aggMatches(pagg, want) {
			t.Fatalf("query %d: RangeAggParallel %+v != brute %+v", i, pagg, want)
		}
	}
}

// TestExecuteStatsGating: stats are returned only when requested.
func TestExecuteStatsGating(t *testing.T) {
	tree, _, rng := buildExecuteTree(t, 300)
	q := randomQuery(rng, tree.Schema(), 0.3)
	res, err := tree.Execute(context.Background(), QueryRequest{Query: q})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Stats != (QueryStats{}) {
		t.Fatalf("stats leaked without CollectStats: %+v", res.Stats)
	}
}

// TestExecuteValidation: bad requests fail with the typed errors before
// touching the tree.
func TestExecuteValidation(t *testing.T) {
	tree, _, rng := buildExecuteTree(t, 100)
	q := randomQuery(rng, tree.Schema(), 0.3)

	if _, err := tree.Execute(context.Background(), QueryRequest{Query: q, Measure: 7}); !errors.Is(err, ErrBadMeasure) {
		t.Fatalf("bad measure: got %v, want ErrBadMeasure", err)
	}
	if _, err := tree.Execute(context.Background(), QueryRequest{Query: q[:1]}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("short query: got %v, want ErrBadQuery", err)
	}
	errs := tree.Metrics().QueryErrors
	if errs < 2 {
		t.Fatalf("QueryErrors = %d, want ≥ 2", errs)
	}
}

// TestExecuteCancellation: a canceled context aborts the descent with
// context.Canceled, on both the serial and the parallel path, and the
// abort is counted as a cancellation, not an error.
func TestExecuteCancellation(t *testing.T) {
	tree, _, rng := buildExecuteTree(t, 2000)
	q := mds.Top(tree.Schema().Dims()) // full scan: maximum work

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := tree.Metrics()
	for _, workers := range []int{0, 4} {
		res, err := tree.Execute(ctx, QueryRequest{Query: q, Parallel: workers, CollectStats: true})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d: got %v, want context.Canceled", workers, err)
		}
		// The poll runs every ctxCheckInterval visits, so an aborted full
		// scan must have stopped well short of the whole tree.
		full, ferr := tree.Execute(context.Background(), QueryRequest{Query: q, CollectStats: true})
		if ferr != nil {
			t.Fatalf("full scan: %v", ferr)
		}
		if res.Stats.NodesVisited >= full.Stats.NodesVisited {
			t.Fatalf("parallel=%d: canceled scan visited %d of %d nodes",
				workers, res.Stats.NodesVisited, full.Stats.NodesVisited)
		}
	}
	m := tree.Metrics()
	if got := m.QueryCancels - before.QueryCancels; got != 2 {
		t.Fatalf("QueryCancels delta = %d, want 2", got)
	}
	if m.QueryErrors != before.QueryErrors {
		t.Fatalf("cancellation counted as error: %d -> %d", before.QueryErrors, m.QueryErrors)
	}

	// Deadline form: an already-expired deadline reports DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := tree.Execute(dctx, QueryRequest{Query: q}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}

	// Wrappers still work unchanged on a live context afterwards.
	if _, err := tree.RangeAgg(randomQuery(rng, tree.Schema(), 0.2), 0); err != nil {
		t.Fatalf("RangeAgg after cancellations: %v", err)
	}
}

// countdownCtx reports cancellation only after its Err method has been
// consulted fuse times — a deterministic probe for the in-descent poll.
type countdownCtx struct {
	context.Context
	calls, fuse int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.fuse {
		return context.Canceled
	}
	return nil
}

// TestExecuteCancellationMidDescent forces a descent long enough that the
// periodic context poll — not the upfront check — aborts it.
func TestExecuteCancellationMidDescent(t *testing.T) {
	cfg := smallConfig()
	cfg.Materialize = false // force full descents: no aggregate shortcuts
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(3))
	for _, r := range genRecords(t, tree.Schema(), rng, 2000) {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	q := mds.Top(tree.Schema().Dims())

	full, err := tree.Execute(context.Background(), QueryRequest{Query: q, CollectStats: true})
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	if full.Stats.NodesVisited <= 2*ctxCheckInterval {
		t.Fatalf("tree too small to exercise the poll: %d nodes", full.Stats.NodesVisited)
	}

	// Fuse 1: the upfront check passes, the first in-descent poll (at node
	// visit ctxCheckInterval) cancels.
	ctx := &countdownCtx{Context: context.Background(), fuse: 1}
	res, err := tree.Execute(ctx, QueryRequest{Query: q, CollectStats: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res.Stats.NodesVisited != ctxCheckInterval {
		t.Fatalf("canceled at %d node visits, want exactly %d", res.Stats.NodesVisited, ctxCheckInterval)
	}
}

// TestMetricsWorkload runs a known workload and checks that the metrics
// snapshot reflects it consistently.
func TestMetricsWorkload(t *testing.T) {
	tree, recs, rng := buildExecuteTree(t, 1200)

	const nq = 25
	for i := 0; i < nq; i++ {
		if _, err := tree.RangeAgg(randomQuery(rng, tree.Schema(), 0.2), 0); err != nil {
			t.Fatalf("RangeAgg: %v", err)
		}
	}
	if err := tree.Delete(recs[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := tree.Delete(recs[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete: got %v, want ErrNotFound", err)
	}

	m := tree.Metrics()
	if m.Inserts != 1200 {
		t.Fatalf("Inserts = %d, want 1200", m.Inserts)
	}
	if m.Deletes != 1 || m.DeleteMisses != 1 {
		t.Fatalf("Deletes = %d, DeleteMisses = %d, want 1, 1", m.Deletes, m.DeleteMisses)
	}
	if m.Records != 1199 {
		t.Fatalf("Records = %d, want 1199", m.Records)
	}
	if m.Queries != nq {
		t.Fatalf("Queries = %d, want %d", m.Queries, nq)
	}
	if m.QueryLatency.Count != nq {
		t.Fatalf("QueryLatency.Count = %d, want %d", m.QueryLatency.Count, nq)
	}
	if m.InsertLatency.Count != 1200 {
		t.Fatalf("InsertLatency.Count = %d, want 1200", m.InsertLatency.Count)
	}
	// 1200 records under smallConfig must have split many times and grown
	// the root at least twice.
	if m.SplitsHierarchy+m.SplitsForced == 0 {
		t.Fatal("no splits recorded")
	}
	if m.RootSplits < 2 || int64(m.Height) != m.RootSplits+1 {
		t.Fatalf("RootSplits = %d, Height = %d; want Height = RootSplits+1 ≥ 3", m.RootSplits, m.Height)
	}
	if m.QueryEntriesScanned == 0 || m.QueryNodesVisited == 0 {
		t.Fatalf("query work not recorded: %+v", m)
	}
	if m.MaterializedHitRatio <= 0 || m.MaterializedHitRatio > 1 {
		t.Fatalf("MaterializedHitRatio = %g, want (0, 1]", m.MaterializedHitRatio)
	}
	if m.PrunedEntryRatio < 0 || m.PrunedEntryRatio > 1 {
		t.Fatalf("PrunedEntryRatio = %g out of range", m.PrunedEntryRatio)
	}
	wantRatio := float64(m.QueryMaterializedHits) / float64(m.QueryEntriesScanned)
	if m.MaterializedHitRatio != wantRatio {
		t.Fatalf("MaterializedHitRatio = %g, want %g", m.MaterializedHitRatio, wantRatio)
	}

	// The Prometheus rendering carries the headline families.
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"dctree_inserts_total 1200",
		"dctree_queries_total 25",
		`dctree_splits_total{kind="hierarchy"}`,
		`dctree_supernode_events_total{kind="created"}`,
		"dctree_materialized_hit_ratio ",
		"dctree_query_duration_seconds_bucket{le=",
		"dctree_query_duration_seconds_count 25",
		"dctree_store_pool_hit_ratio ",
		"# TYPE dctree_query_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q", want)
		}
	}
}

// TestMetricsPagedStoreHitRatio checks the buffer-pool hit ratio surfaces
// through Tree.Metrics when the tree sits on a PagedStore.
func TestMetricsPagedStoreHitRatio(t *testing.T) {
	cfg := smallConfig()
	store, err := storage.OpenPagedStore(filepath.Join(t.TempDir(), "m.dc"), cfg.BlockSize, 1<<20)
	if err != nil {
		t.Fatalf("OpenPagedStore: %v", err)
	}
	defer store.Close()
	schema := testSchema(t)
	tree, err := New(store, schema, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, r := range genRecords(t, schema, rng, 400) {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tree.EvictCache()
	for i := 0; i < 10; i++ {
		if _, err := tree.RangeAgg(randomQuery(rng, schema, 0.3), 0); err != nil {
			t.Fatalf("RangeAgg: %v", err)
		}
		tree.EvictCache()
	}
	m := tree.Metrics()
	if m.Store.Reads == 0 || m.Store.Hits+m.Store.Misses != m.Store.Reads {
		t.Fatalf("store probes inconsistent: %+v", m.Store)
	}
	if m.StoreHitRatio <= 0 || m.StoreHitRatio > 1 {
		t.Fatalf("StoreHitRatio = %g, want (0, 1]", m.StoreHitRatio)
	}
	want := float64(m.Store.Hits) / float64(m.Store.Hits+m.Store.Misses)
	if m.StoreHitRatio != want {
		t.Fatalf("StoreHitRatio = %g, want %g", m.StoreHitRatio, want)
	}
}

// TestSlowQueryHook: a zero threshold fires on every query with the query
// MDS and its stats; removal stops the callbacks but past counts remain.
func TestSlowQueryHook(t *testing.T) {
	tree, _, rng := buildExecuteTree(t, 500)

	var events []SlowQueryEvent
	tree.SetSlowQueryHook(0, func(ev SlowQueryEvent) { events = append(events, ev) })

	q := randomQuery(rng, tree.Schema(), 0.3)
	v, st, err := tree.RangeQueryStats(q, cube.Sum, 0)
	if err != nil {
		t.Fatalf("RangeQueryStats: %v", err)
	}
	_ = v
	if len(events) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(events))
	}
	ev := events[0]
	if ev.Stats != st {
		t.Fatalf("event stats %+v != query stats %+v", ev.Stats, st)
	}
	if ev.Elapsed <= 0 {
		t.Fatal("event Elapsed not set")
	}
	if len(ev.Query) != len(q) {
		t.Fatalf("event query has %d dims, want %d", len(ev.Query), len(q))
	}

	// A threshold far above any test query never fires but the counter path
	// stays consistent; a negative threshold removes the hook entirely.
	tree.SetSlowQueryHook(time.Hour, func(ev SlowQueryEvent) { events = append(events, ev) })
	if _, err := tree.RangeAgg(q, 0); err != nil {
		t.Fatalf("RangeAgg: %v", err)
	}
	tree.SetSlowQueryHook(-1, nil)
	if _, err := tree.RangeAgg(q, 0); err != nil {
		t.Fatalf("RangeAgg: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("hook fired %d times after threshold/removal, want 1", len(events))
	}
	if got := tree.Metrics().SlowQueries; got != 1 {
		t.Fatalf("SlowQueries = %d, want 1", got)
	}
}

// TestExecuteConcurrentWithMetrics hammers Execute from several goroutines
// (serial and parallel descents, plus Metrics snapshots) to give the race
// detector surface over the whole observability path.
func TestExecuteConcurrentWithMetrics(t *testing.T) {
	tree, _, _ := buildExecuteTree(t, 800)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				q := randomQuery(rng, tree.Schema(), 0.2)
				var err error
				switch g % 4 {
				case 0:
					_, err = tree.RangeAgg(q, 0)
				case 1:
					_, err = tree.Execute(context.Background(), QueryRequest{Query: q, Parallel: 2})
				case 2:
					_, _, err = tree.RangeAggAll(q)
				default:
					_ = tree.Metrics()
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}
