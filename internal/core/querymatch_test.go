package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// randomSpaceMDS builds a random valid MDS over the test schema's space
// from registered leaves.
func randomSpaceMDS(rng *rand.Rand, space mds.Space, leaves [][]hierarchy.ID) mds.MDS {
	m := make(mds.MDS, len(space))
	for d, h := range space {
		if rng.Intn(7) == 0 {
			m[d] = mds.AllDim()
			continue
		}
		level := rng.Intn(h.Depth())
		// Collect the distinct ancestors available at this level first: a
		// blind rejection loop can demand more values than exist.
		distinct := map[hierarchy.ID]struct{}{}
		for _, leaf := range leaves[d] {
			anc, err := h.AncestorAt(leaf, level)
			if err != nil {
				panic(err)
			}
			distinct[anc] = struct{}{}
		}
		pool := make([]hierarchy.ID, 0, len(distinct))
		for id := range distinct {
			pool = append(pool, id)
		}
		k := 1 + rng.Intn(5)
		if k > len(pool) {
			k = len(pool)
		}
		perm := rng.Perm(len(pool))[:k]
		ids := make([]hierarchy.ID, 0, k)
		for _, p := range perm {
			ids = append(ids, pool[p])
		}
		hierarchy.SortIDs(ids)
		m[d] = mds.DimSet{Level: level, IDs: ids}
	}
	return m
}

// TestMatchEntryAgainstMDSAlgebra pins the allocation-free fast paths
// (matchEntry, queryCtx) to the reference mds.Overlap/mds.Contains on
// thousands of random (query, entry) pairs.
func TestMatchEntryAgainstMDSAlgebra(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	space := s.Space()
	rng := rand.New(rand.NewSource(51))

	leaves := make([][]hierarchy.ID, len(space))
	for _, r := range genRecords(t, s, rng, 300) {
		for d, c := range r.Coords {
			leaves[d] = append(leaves[d], c)
		}
	}

	for i := 0; i < 3000; i++ {
		q := randomSpaceMDS(rng, space, leaves)
		m := randomSpaceMDS(rng, space, leaves)

		ov, err := mds.Overlap(space, q, m)
		if err != nil {
			t.Fatal(err)
		}
		cont, err := mds.Contains(space, q, m)
		if err != nil {
			t.Fatal(err)
		}

		gotOv, gotCont, err := tree.matchEntry(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if gotOv != (ov > 0) {
			t.Fatalf("case %d: matchEntry overlap=%v, algebra=%g\nq=%v\nm=%v", i, gotOv, ov, q, m)
		}
		// Containment is only reported for overlapping entries (the query
		// path never asks otherwise).
		if gotOv && gotCont != cont {
			t.Fatalf("case %d: matchEntry contained=%v, algebra=%v\nq=%v\nm=%v", i, gotCont, cont, q, m)
		}

		ctx, err := tree.newQueryCtx(q)
		if err != nil {
			t.Fatal(err)
		}
		mOv, mCont, err := ctx.matchEntry(tree, m)
		if err != nil {
			t.Fatal(err)
		}
		if mOv != gotOv || (mOv && mCont != gotCont) {
			t.Fatalf("case %d: mask path (%v,%v) != slow path (%v,%v)\nq=%v\nm=%v",
				i, mOv, mCont, gotOv, gotCont, q, m)
		}
	}
}

// TestQueryCtxRecordInRange pins the mask-based record test to
// MDS.ContainsLeaves.
func TestQueryCtxRecordInRange(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	space := s.Space()
	rng := rand.New(rand.NewSource(53))
	recs := genRecords(t, s, rng, 400)
	leaves := make([][]hierarchy.ID, len(space))
	for _, r := range recs {
		for d, c := range r.Coords {
			leaves[d] = append(leaves[d], c)
		}
	}
	for i := 0; i < 300; i++ {
		q := randomSpaceMDS(rng, space, leaves)
		ctx, err := tree.newQueryCtx(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs[:50] {
			want, err := q.ContainsLeaves(space, r.Coords)
			if err != nil {
				t.Fatal(err)
			}
			if got := ctx.recordInRange(r.Coords); got != want {
				t.Fatalf("case %d: recordInRange=%v, ContainsLeaves=%v\nq=%v rec=%v", i, got, want, q, r.Coords)
			}
		}
	}
}

// TestRefineMDSKeepsExactness checks that post-split refinement yields
// descriptions that are exactly the subtree's record cover lifted to the
// refined levels (Validate enforces this globally; here we watch the
// level descent directly).
func TestRefineMDSKeepsExactness(t *testing.T) {
	cfg := smallConfig()
	cfg.RefineBound = 4
	tree := newTestTree(t, cfg)
	s := tree.Schema()
	// Narrow data: one region, one brand — refinement must descend.
	for i := 0; i < 200; i++ {
		r, err := s.InternRecord([][]string{
			{"R0", "N0", fmt.Sprintf("C%d", i%3)},
			{"B0", fmt.Sprintf("P%d", i%2)},
			{fmt.Sprintf("Y%d", i%2), fmt.Sprintf("M%d", i%4)},
		}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	root, err := tree.getNode(tree.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.leaf {
		t.Fatal("tree did not split")
	}
	// With ≤3 customers, ≤2 parts and ≤4 months, every dimension is
	// describable at leaf level within bound 4: entries must be refined
	// all the way down.
	for i := range root.entries {
		for d, ds := range root.entries[i].MDS {
			if ds.Level != 0 {
				t.Fatalf("entry %d dim %d still at level %d: %v", i, d, ds.Level, root.entries[i].MDS)
			}
		}
	}
	// And with refinement disabled, coarse levels persist.
	cfg2 := smallConfig()
	cfg2.RefineBound = -1
	tree2, err := New(storage.NewMemStore(cfg2.BlockSize), testSchema(t), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := tree2.Schema()
	for i := 0; i < 200; i++ {
		r, _ := s2.InternRecord([][]string{
			{"R0", "N0", fmt.Sprintf("C%d", i%3)},
			{"B0", fmt.Sprintf("P%d", i%2)},
			{fmt.Sprintf("Y%d", i%2), fmt.Sprintf("M%d", i%4)},
		}, []float64{1})
		if err := tree2.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree2.Validate(); err != nil {
		t.Fatalf("Validate (no refinement): %v", err)
	}
	root2, _ := tree2.getNode(tree2.root)
	coarse := false
	for i := range root2.entries {
		for _, ds := range root2.entries[i].MDS {
			if ds.Level != 0 {
				coarse = true
			}
		}
	}
	if root2.leaf {
		t.Fatal("tree2 did not split")
	}
	if !coarse {
		t.Fatal("refinement disabled but every entry reached leaf level")
	}
}

func TestAdaptToLevels(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	space := s.Space()
	recs := genRecords(t, s, rand.New(rand.NewSource(59)), 10)
	m := mds.FromLeaves(recs[0].Coords)

	lifted, err := mds.AdaptToLevels(space, m, []int{2, 1, hierarchy.LevelALL})
	if err != nil {
		t.Fatal(err)
	}
	if lifted[0].Level != 2 || lifted[1].Level != 1 || lifted[2].Level != hierarchy.LevelALL {
		t.Fatalf("levels after lift: %v", lifted)
	}
	// Lifting never lowers: targets below current levels are ignored.
	again, err := mds.AdaptToLevels(space, lifted, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(lifted) {
		t.Fatalf("AdaptToLevels lowered levels: %v", again)
	}
	if _, err := mds.AdaptToLevels(space, m, []int{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
