package core

import (
	"context"
	"runtime"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// QueryStats describes the work one range query performed.
type QueryStats struct {
	// NodesVisited counts nodes read during the descent.
	NodesVisited int
	// EntriesScanned counts directory and data entries examined.
	EntriesScanned int
	// EntriesPruned counts directory entries discarded without descending
	// because their MDS does not overlap the query range.
	EntriesPruned int
	// MaterializedHits counts directory entries fully contained in the
	// query range whose materialized aggregate answered their subtree
	// without descending — the DC-tree's core advantage.
	MaterializedHits int
	// RecordsMatched counts data records that individually matched.
	RecordsMatched int
}

// add accumulates another query's (or worker's) counters.
func (s *QueryStats) add(o QueryStats) {
	s.NodesVisited += o.NodesVisited
	s.EntriesScanned += o.EntriesScanned
	s.EntriesPruned += o.EntriesPruned
	s.MaterializedHits += o.MaterializedHits
	s.RecordsMatched += o.RecordsMatched
}

// nodeSource resolves node IDs for one query walk. The live tree resolves
// against its table and shared cache (under the tree read lock); a Version
// resolves against its captured overlay and pinned extents (no tree lock).
// The descent code is identical either way — only the resolver differs.
//
// getView is the read-only resolution: cached nodes come back as heap
// nodes, clean layout-v3 extents as zero-copy flatNode views. getNode
// always materializes a heap node (the write path and the scan/export
// helpers that need one).
type nodeSource interface {
	getNode(id nodeID) (*node, error)
	getView(id nodeID) (nodeView, error)
}

// nodeView is what a read-only descent walks: exactly one of a heap node
// (n != nil) or a flat in-place view (f.valid()).
type nodeView struct {
	n *node
	f flatNode
}

// descent carries the per-goroutine state of one range-query walk: the
// node resolver (live tree or pinned version), the shared read-only query
// context, the cancellation context with its poll countdown, and the work
// counters. Parallel queries give every worker its own descent over the
// same queryCtx.
type descent struct {
	src   nodeSource
	qc    *queryCtx
	ctx   context.Context
	check int // node visits until the next ctx poll
	st    QueryStats
}

// visit accounts one node and polls the context every ctxCheckInterval
// visits, so even a full scan of a large tree notices cancellation within
// a bounded amount of work.
func (d *descent) visit() error {
	d.st.NodesVisited++
	d.check--
	if d.check <= 0 {
		d.check = ctxCheckInterval
		if err := d.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// RangeQuery answers a general range query (Fig. 7): q selects, per
// dimension, a set of attribute values at one hierarchy level (use
// mds.AllDim() for unconstrained dimensions); op aggregates the chosen
// measure over every data record in the selected subcube.
//
// Deprecated: use Execute with QueryRequest{Query: q, Measure: measure}
// and read res.Agg.Value(op) — it adds context cancellation and the other
// request options. Behavior is identical to Execute with a background
// context; this wrapper remains for compatibility.
func (t *Tree) RangeQuery(q mds.MDS, op cube.Op, measure int) (float64, error) {
	res, err := t.Execute(context.Background(), QueryRequest{Query: q, Measure: measure})
	if err != nil {
		return 0, err
	}
	return res.Agg.Value(op), nil
}

// RangeAgg returns the full aggregate (sum, count, min, max) of a measure
// over the query range, from which every supported operator can be read.
//
// Deprecated: use Execute with QueryRequest{Query: q, Measure: measure}
// and read res.Agg.
func (t *Tree) RangeAgg(q mds.MDS, measure int) (cube.Agg, error) {
	res, err := t.Execute(context.Background(), QueryRequest{Query: q, Measure: measure})
	return res.Agg, err
}

// RangeQueryStats is RangeQuery plus work counters.
//
// Deprecated: use Execute with QueryRequest{Query: q, Measure: measure,
// CollectStats: true} and read res.Agg.Value(op) and res.Stats.
func (t *Tree) RangeQueryStats(q mds.MDS, op cube.Op, measure int) (float64, QueryStats, error) {
	res, err := t.Execute(context.Background(),
		QueryRequest{Query: q, Measure: measure, CollectStats: true})
	if err != nil {
		return 0, res.Stats, err
	}
	return res.Agg.Value(op), res.Stats, nil
}

// RangeAggAll aggregates every measure of the schema over the query range
// in a single descent — the natural form for reports that show several
// measures side by side.
//
// Deprecated: use Execute with QueryRequest{Query: q, AllMeasures: true,
// CollectStats: true} and read res.AggVector and res.Stats.
func (t *Tree) RangeAggAll(q mds.MDS) (cube.AggVector, QueryStats, error) {
	res, err := t.Execute(context.Background(),
		QueryRequest{Query: q, AllMeasures: true, CollectStats: true})
	return res.AggVector, res.Stats, err
}

// RangeAggParallel answers the same query as RangeAgg using a worker pool;
// workers ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use Execute with QueryRequest{Query: q, Measure: measure,
// Parallel: workers} and read res.Agg.
func (t *Tree) RangeAggParallel(q mds.MDS, measure int, workers int) (cube.Agg, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res, err := t.Execute(context.Background(),
		QueryRequest{Query: q, Measure: measure, Parallel: workers})
	return res.Agg, err
}

// queryNodeAll is queryNode generalized to every measure of the schema.
func (t *Tree) queryNodeAll(id nodeID, d *descent, result cube.AggVector) error {
	nv, err := d.src.getView(id)
	if err != nil {
		return err
	}
	if err := d.visit(); err != nil {
		return err
	}
	if nv.n == nil {
		f := &nv.f
		if f.leaf {
			for i := 0; i < f.count; i++ {
				d.st.EntriesScanned++
				if d.qc.recordInRangeFlat(f, i) {
					for j := 0; j < f.measures; j++ {
						result[j].Add(f.measure(i, j))
					}
					d.st.RecordsMatched++
				}
			}
			return nil
		}
		for i := 0; i < f.count; i++ {
			d.st.EntriesScanned++
			overlaps, contained, err := d.qc.matchEntryFlat(t, f, i)
			if err != nil {
				return err
			}
			if !overlaps {
				d.st.EntriesPruned++
				continue
			}
			if t.cfg.Materialize && contained {
				f.mergeAggInto(i, result)
				d.st.MaterializedHits++
				continue
			}
			if err := t.queryNodeAll(f.child(i), d, result); err != nil {
				return err
			}
		}
		return nil
	}

	n := nv.n
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			d.st.EntriesScanned++
			if d.qc.recordInRange(e.Rec.Coords) {
				result.AddRecord(e.Rec.Measures)
				d.st.RecordsMatched++
			}
		}
		return nil
	}
	for i := range n.entries {
		e := &n.entries[i]
		d.st.EntriesScanned++
		overlaps, contained, err := d.qc.matchEntry(t, e.MDS)
		if err != nil {
			return err
		}
		if !overlaps {
			d.st.EntriesPruned++
			continue
		}
		if t.cfg.Materialize && contained {
			result.Merge(e.Agg)
			d.st.MaterializedHits++
			continue
		}
		if err := t.queryNodeAll(e.Child, d, result); err != nil {
			return err
		}
	}
	return nil
}

// queryNode is the recursive range-query of Fig. 7. For every entry the
// query MDS and the entry MDS are made level-comparable (Overlap and
// Contains adapt internally); entries without overlap are pruned, entries
// fully contained in the range contribute their materialized aggregate,
// and partially overlapping directory entries are descended into.
func (t *Tree) queryNode(id nodeID, d *descent, measure int, result *cube.Agg) error {
	nv, err := d.src.getView(id)
	if err != nil {
		return err
	}
	if err := d.visit(); err != nil {
		return err
	}
	if nv.n == nil {
		f := &nv.f
		if f.leaf {
			for i := 0; i < f.count; i++ {
				d.st.EntriesScanned++
				if d.qc.recordInRangeFlat(f, i) {
					result.Add(f.measure(i, measure))
					d.st.RecordsMatched++
				}
			}
			return nil
		}
		for i := 0; i < f.count; i++ {
			d.st.EntriesScanned++
			overlaps, contained, err := d.qc.matchEntryFlat(t, f, i)
			if err != nil {
				return err
			}
			if !overlaps {
				d.st.EntriesPruned++
				continue
			}
			if t.cfg.Materialize && contained {
				result.Merge(f.agg(i, measure))
				d.st.MaterializedHits++
				continue
			}
			if err := t.queryNode(f.child(i), d, measure, result); err != nil {
				return err
			}
		}
		return nil
	}

	n := nv.n
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			d.st.EntriesScanned++
			if d.qc.recordInRange(e.Rec.Coords) {
				result.Add(e.Rec.Measures[measure])
				d.st.RecordsMatched++
			}
		}
		return nil
	}

	for i := range n.entries {
		e := &n.entries[i]
		d.st.EntriesScanned++
		overlaps, contained, err := d.qc.matchEntry(t, e.MDS)
		if err != nil {
			return err
		}
		if !overlaps {
			d.st.EntriesPruned++
			continue
		}
		if t.cfg.Materialize && contained {
			result.Merge(e.Agg[measure])
			d.st.MaterializedHits++
			continue
		}
		if err := t.queryNode(e.Child, d, measure, result); err != nil {
			return err
		}
	}
	return nil
}

// Scan streams every data record to fn in unspecified order; fn returning
// false stops the scan. Used by tools, tests, and the export path.
func (t *Tree) Scan(fn func(cube.Record) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.scanNode(t, t.root, fn)
	return err
}

func (t *Tree) scanNode(src nodeSource, id nodeID, fn func(cube.Record) bool) (bool, error) {
	nv, err := src.getView(id)
	if err != nil {
		return false, err
	}
	if nv.n == nil {
		f := &nv.f
		if f.leaf {
			for i := 0; i < f.count; i++ {
				if !fn(f.record(i)) {
					return false, nil
				}
			}
			return true, nil
		}
		for i := 0; i < f.count; i++ {
			cont, err := t.scanNode(src, f.child(i), fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}

	n := nv.n
	if n.leaf {
		for i := range n.entries {
			if !fn(n.entries[i].Rec.Clone()) {
				return false, nil
			}
		}
		return true, nil
	}
	for i := range n.entries {
		cont, err := t.scanNode(src, n.entries[i].Child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
