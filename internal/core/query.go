package core

import (
	"fmt"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// QueryStats describes the work one range query performed.
type QueryStats struct {
	// NodesVisited counts nodes read during the descent.
	NodesVisited int
	// EntriesScanned counts directory and data entries examined.
	EntriesScanned int
	// MaterializedHits counts directory entries fully contained in the
	// query range whose materialized aggregate answered their subtree
	// without descending — the DC-tree's core advantage.
	MaterializedHits int
	// RecordsMatched counts data records that individually matched.
	RecordsMatched int
}

// RangeQuery answers a general range query (Fig. 7): q selects, per
// dimension, a set of attribute values at one hierarchy level (use
// mds.AllDim() for unconstrained dimensions); op aggregates the chosen
// measure over every data record in the selected subcube.
func (t *Tree) RangeQuery(q mds.MDS, op cube.Op, measure int) (float64, error) {
	v, _, err := t.RangeQueryStats(q, op, measure)
	return v, err
}

// RangeAgg returns the full aggregate (sum, count, min, max) of a measure
// over the query range, from which every supported operator can be read.
func (t *Tree) RangeAgg(q mds.MDS, measure int) (cube.Agg, error) {
	agg, _, err := t.rangeAgg(q, measure)
	return agg, err
}

// RangeQueryStats is RangeQuery plus work counters.
func (t *Tree) RangeQueryStats(q mds.MDS, op cube.Op, measure int) (float64, QueryStats, error) {
	agg, st, err := t.rangeAgg(q, measure)
	if err != nil {
		return 0, st, err
	}
	return agg.Value(op), st, nil
}

func (t *Tree) rangeAgg(q mds.MDS, measure int) (cube.Agg, QueryStats, error) {
	var st QueryStats
	if measure < 0 || measure >= t.schema.Measures() {
		return cube.Agg{}, st, fmt.Errorf("%w: %d", ErrBadMeasure, measure)
	}
	if err := q.Validate(t.space()); err != nil {
		return cube.Agg{}, st, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	ctx, err := t.newQueryCtx(q)
	if err != nil {
		return cube.Agg{}, st, err
	}
	var result cube.Agg
	if err := t.queryNode(t.root, ctx, measure, &result, &st); err != nil {
		return cube.Agg{}, st, err
	}
	return result, st, nil
}

// RangeAggAll aggregates every measure of the schema over the query range
// in a single descent — the natural form for reports that show several
// measures side by side.
func (t *Tree) RangeAggAll(q mds.MDS) (cube.AggVector, QueryStats, error) {
	var st QueryStats
	if err := q.Validate(t.space()); err != nil {
		return nil, st, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	ctx, err := t.newQueryCtx(q)
	if err != nil {
		return nil, st, err
	}
	result := cube.NewAggVector(t.schema.Measures())
	if err := t.queryNodeAll(t.root, ctx, result, &st); err != nil {
		return nil, st, err
	}
	return result, st, nil
}

func (t *Tree) queryNodeAll(id nodeID, ctx *queryCtx, result cube.AggVector, st *QueryStats) error {
	n, err := t.getNode(id)
	if err != nil {
		return err
	}
	st.NodesVisited++

	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			st.EntriesScanned++
			if ctx.recordInRange(e.Rec.Coords) {
				result.AddRecord(e.Rec.Measures)
				st.RecordsMatched++
			}
		}
		return nil
	}
	for i := range n.entries {
		e := &n.entries[i]
		st.EntriesScanned++
		overlaps, contained, err := ctx.matchEntry(t, e.MDS)
		if err != nil {
			return err
		}
		if !overlaps {
			continue
		}
		if t.cfg.Materialize && contained {
			result.Merge(e.Agg)
			st.MaterializedHits++
			continue
		}
		if err := t.queryNodeAll(e.Child, ctx, result, st); err != nil {
			return err
		}
	}
	return nil
}

// queryNode is the recursive range-query of Fig. 7. For every entry the
// query MDS and the entry MDS are made level-comparable (Overlap and
// Contains adapt internally); entries without overlap are pruned, entries
// fully contained in the range contribute their materialized aggregate,
// and partially overlapping directory entries are descended into.
func (t *Tree) queryNode(id nodeID, ctx *queryCtx, measure int, result *cube.Agg, st *QueryStats) error {
	n, err := t.getNode(id)
	if err != nil {
		return err
	}
	st.NodesVisited++

	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			st.EntriesScanned++
			if ctx.recordInRange(e.Rec.Coords) {
				result.Add(e.Rec.Measures[measure])
				st.RecordsMatched++
			}
		}
		return nil
	}

	for i := range n.entries {
		e := &n.entries[i]
		st.EntriesScanned++
		overlaps, contained, err := ctx.matchEntry(t, e.MDS)
		if err != nil {
			return err
		}
		if !overlaps {
			continue
		}
		if t.cfg.Materialize && contained {
			result.Merge(e.Agg[measure])
			st.MaterializedHits++
			continue
		}
		if err := t.queryNode(e.Child, ctx, measure, result, st); err != nil {
			return err
		}
	}
	return nil
}

// Scan streams every data record to fn in unspecified order; fn returning
// false stops the scan. Used by tools, tests, and the export path.
func (t *Tree) Scan(fn func(cube.Record) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.scanNode(t.root, fn)
	return err
}

func (t *Tree) scanNode(id nodeID, fn func(cube.Record) bool) (bool, error) {
	n, err := t.getNode(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i := range n.entries {
			if !fn(n.entries[i].Rec.Clone()) {
				return false, nil
			}
		}
		return true, nil
	}
	for i := range n.entries {
		cont, err := t.scanNode(n.entries[i].Child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
