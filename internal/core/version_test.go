package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// The version suite proves the MVCC snapshot contract: a Version captured
// by Snapshot keeps answering queries and scans with EXACTLY the records
// live at capture time — byte-equal to a seqscan oracle frozen at the same
// instant — while inserts, deletes and checkpoints churn the live tree,
// and its pinned extents are returned to the allocator only when the last
// reference goes.

// recordKey serializes a record for multiset comparison: coordinates and
// the raw measure bits, so two scans are compared byte-equal.
func recordKey(r cube.Record) string {
	var b strings.Builder
	for _, c := range r.Coords {
		fmt.Fprintf(&b, "%d,", uint32(c))
	}
	b.WriteByte('|')
	for _, m := range r.Measures {
		fmt.Fprintf(&b, "%x,", m)
	}
	return b.String()
}

// sortedKeys flattens a record set into sorted keys — the canonical form
// both sides of an oracle comparison are reduced to.
func sortedKeys(recs []cube.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = recordKey(r)
	}
	sort.Strings(keys)
	return keys
}

// scanVersion collects every record the version holds.
func scanVersion(t testing.TB, v *Version) []cube.Record {
	t.Helper()
	var recs []cube.Record
	if err := v.Scan(func(r cube.Record) bool {
		recs = append(recs, r)
		return true
	}); err != nil {
		t.Fatalf("version scan: %v", err)
	}
	return recs
}

// verifyVersion checks the version against the oracle record set two ways:
// the full scan must be byte-equal as a multiset, and a batch of random
// as-of range aggregates must match brute force over the oracle.
func verifyVersion(t testing.TB, tree *Tree, v *Version, oracle []cube.Record, queries int, seed int64) {
	t.Helper()
	if got, want := v.Count(), int64(len(oracle)); got != want {
		t.Fatalf("version count = %d, want %d", got, want)
	}
	got := sortedKeys(scanVersion(t, v))
	want := sortedKeys(oracle)
	if len(got) != len(want) {
		t.Fatalf("version scan: %d records, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("version scan diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < queries; i++ {
		q := randomQuery(rng, tree.Schema(), 0.3)
		parallel := 0
		if i%3 == 2 {
			parallel = 4 // exercise the lock-free parallel descent too
		}
		res, err := tree.Execute(context.Background(),
			QueryRequest{Query: q, AsOf: v, Parallel: parallel})
		if err != nil {
			t.Fatalf("as-of query %d: %v", i, err)
		}
		want := bruteAgg(t, tree.Schema(), oracle, q, 0)
		if !aggMatches(res.Agg, want) {
			t.Fatalf("as-of query %d: got %+v, oracle %+v", i, res.Agg, want)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(11))
	recs := genRecords(t, tree.Schema(), rng, 150)
	for _, r := range recs[:100] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	defer v.Release()
	oracle := append([]cube.Record(nil), recs[:100]...)

	// Churn the live tree past the snapshot point.
	for _, r := range recs[100:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range recs[:20] {
		if err := tree.Delete(r); err != nil {
			t.Fatal(err)
		}
	}

	verifyVersion(t, tree, v, oracle, 25, 12)
	if got := tree.Count(); got != 130 {
		t.Fatalf("live count = %d, want 130", got)
	}
	if v.ID() != 1 {
		t.Fatalf("first version ID = %d, want 1", v.ID())
	}
	infos := tree.Versions()
	if len(infos) != 1 || infos[0].ID != 1 || infos[0].Records != 100 {
		t.Fatalf("Versions() = %+v", infos)
	}
}

// TestSnapshotAcrossCheckpointInstall is the heart of the pinning story: a
// checkpoint install frees the extents the snapshot is still reading from
// — the frees must park behind the pins, the snapshot must keep answering
// from the pre-install extents (cache evicted to force real reads), and
// releasing the snapshot must hand the parked extents back.
func TestSnapshotAcrossCheckpointInstall(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	st, err := storage.OpenPagedStore(filepath.Join(dir, "store.dc"), cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	schema := testSchema(t)
	tree, err := New(st, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	recs := genRecords(t, schema, rng, 300)
	for _, r := range recs[:200] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Persist so the snapshot's table references real extents.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	oracle := append([]cube.Record(nil), recs[:200]...)

	// Re-dirty broadly, then checkpoint: the install supersedes extents the
	// snapshot pinned, so their frees must park rather than execute.
	for _, r := range recs[200:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range recs[:50] {
		if err := tree.Delete(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	m := tree.Metrics()
	if m.SnapshotFreesParked == 0 {
		t.Fatal("checkpoint install parked no frees despite a live snapshot over its extents")
	}
	if m.PinnedExtents == 0 {
		t.Fatal("no extents pinned while a version is live")
	}

	// Force the version to read from its pinned extents, not its cache.
	v.EvictCache()
	verifyVersion(t, tree, v, oracle, 25, 24)

	// Releasing the last reference executes the parked frees.
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	m = tree.Metrics()
	if m.PinnedExtents != 0 || m.DeferredExtentBlocks != 0 {
		t.Fatalf("pins not drained after release: %+v pinned, %d blocks deferred",
			m.PinnedExtents, m.DeferredExtentBlocks)
	}
	if m.LiveVersions != 0 {
		t.Fatalf("LiveVersions = %d after release", m.LiveVersions)
	}
	// The tree remains fully usable and consistent.
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLifecycleErrors(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	other := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(31))
	for _, r := range genRecords(t, tree.Schema(), rng, 40) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng, tree.Schema(), 0.5)

	// A version is rejected by a tree it does not belong to.
	if _, err := other.Execute(context.Background(), QueryRequest{Query: randomQuery(rng, other.Schema(), 0.5), AsOf: v}); !errors.Is(err, ErrVersionForeign) {
		t.Fatalf("foreign version: got %v, want ErrVersionForeign", err)
	}

	if got, ok := tree.VersionByID(v.ID()); !ok || got != v {
		t.Fatalf("VersionByID(%d) = %v, %v", v.ID(), got, ok)
	}
	if err := tree.ReleaseVersion(v.ID()); err != nil {
		t.Fatal(err)
	}
	if !v.Released() {
		t.Fatal("version not marked released")
	}
	if _, err := tree.Execute(context.Background(), QueryRequest{Query: q, AsOf: v}); !errors.Is(err, ErrVersionReleased) {
		t.Fatalf("query on released version: got %v, want ErrVersionReleased", err)
	}
	if err := v.Scan(func(cube.Record) bool { return true }); !errors.Is(err, ErrVersionReleased) {
		t.Fatalf("scan on released version: got %v, want ErrVersionReleased", err)
	}
	if err := v.Release(); !errors.Is(err, ErrVersionReleased) {
		t.Fatalf("double release: got %v, want ErrVersionReleased", err)
	}
	if err := tree.ReleaseVersion(999); !errors.Is(err, ErrVersionReleased) {
		t.Fatalf("release unknown id: got %v, want ErrVersionReleased", err)
	}
	if n := len(tree.Versions()); n != 0 {
		t.Fatalf("%d versions live after release", n)
	}
}

// TestSnapshotVersionSeqPersists proves meta v5 keeps version numbers
// unique across restarts even though non-WAL versions themselves die with
// the process.
func TestSnapshotVersionSeqPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	path := filepath.Join(dir, "store.dc")
	st, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := New(st, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for _, r := range genRecords(t, schema, rng, 30) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v.ID() != 1 {
		t.Fatalf("first ID = %d", v.ID())
	}
	v.Release()
	if err := tree.Flush(); err != nil { // meta v5 carries versionSeq = 1
		t.Fatal(err)
	}
	st.Close()

	st2, err := storage.OpenPagedStore(path, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reopened, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(reopened.Versions()); n != 0 {
		t.Fatalf("non-WAL versions survived reopen: %d", n)
	}
	v2, err := reopened.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	if v2.ID() != 2 {
		t.Fatalf("post-reopen ID = %d, want 2 (mint must not repeat)", v2.ID())
	}
}

// TestAsOfAfterCrashRecovery proves the durability half of the tentpole:
// a version's WAL record past the last checkpoint lets OpenDurable
// reconstruct the version with exactly its original contents, verified
// against the oracle frozen at the original Snapshot call.
func TestAsOfAfterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := durableConfig()

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	recs := genRecords(t, schema, rng, 100)
	for _, r := range recs[:60] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	versionID := v.ID()
	oracle := append([]cube.Record(nil), recs[:60]...)
	for _, r := range recs[60:] {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: copy the store and log as they are, no Close, no checkpoint.
	imgStore, imgWAL := copyCrashImage(t, storePath, walPrefix, filepath.Join(dir, "crash"))
	v.Release()
	tree.Close()
	st.Close()

	ist, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ist.Close()
	recovered, err := OpenDurable(ist, imgWAL)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer recovered.Close()

	if got := recovered.Count(); got != 100 {
		t.Fatalf("recovered live count = %d, want 100", got)
	}
	rv, ok := recovered.VersionByID(versionID)
	if !ok {
		t.Fatalf("version %d not reconstructed by recovery (live: %+v)", versionID, recovered.Versions())
	}
	if m := recovered.Metrics(); m.SnapshotsRecovered != 1 {
		t.Fatalf("SnapshotsRecovered = %d, want 1", m.SnapshotsRecovered)
	}
	verifyVersion(t, recovered, rv, oracle, 25, 54)
	if err := rv.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotChurnStress is the -race acceptance test: snapshots taken
// while inserts, deletes and checkpoints churn underneath must stay
// byte-equal to a seqscan oracle frozen at their capture instant, with
// as-of queries (serial and parallel) running lock-free throughout. All
// records are interned up front: the hierarchy dictionaries are not
// internally synchronized, and lock-free snapshot reads may not race with
// registrations.
func TestSnapshotChurnStress(t *testing.T) {
	cfg := smallConfig()
	tree := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(61))
	const (
		writers       = 4
		perWriter     = 250
		snapshots     = 4
		queriesPerVer = 8
	)
	recs := genRecords(t, tree.Schema(), rng, writers*perWriter)

	// testMu serializes {mutation + oracle update} and {Snapshot + oracle
	// clone}, making the oracle exact at every capture instant. Everything
	// else — queries, scans, checkpoints — runs unserialized.
	var testMu sync.Mutex
	var oracle []cube.Record

	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := tree.Checkpoint(context.Background()); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			mine := recs[w*perWriter : (w+1)*perWriter]
			for i, r := range mine {
				testMu.Lock()
				err := tree.Insert(r)
				if err == nil {
					oracle = append(oracle, r)
				}
				testMu.Unlock()
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				// Delete every fourth of my own earlier records: churn that
				// relocates nodes without ever double-deleting.
				if i%4 == 3 {
					victim := mine[i-3]
					testMu.Lock()
					err := tree.Delete(victim)
					if err == nil {
						for j := range oracle {
							if recordKey(oracle[j]) == recordKey(victim) {
								oracle = append(oracle[:j], oracle[j+1:]...)
								break
							}
						}
					}
					testMu.Unlock()
					if err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Take snapshots at staggered points of the churn and verify each from
	// its own goroutine while the writers keep going.
	var verifyWG sync.WaitGroup
	for s := 0; s < snapshots; s++ {
		testMu.Lock()
		v, err := tree.Snapshot()
		frozen := append([]cube.Record(nil), oracle...)
		testMu.Unlock()
		if err != nil {
			t.Fatalf("snapshot %d: %v", s, err)
		}
		verifyWG.Add(1)
		go func(s int, v *Version, frozen []cube.Record) {
			defer verifyWG.Done()
			defer v.Release()
			got := sortedKeys(scanVersion(t, v))
			want := sortedKeys(frozen)
			if len(got) != len(want) {
				t.Errorf("snapshot %d: scan %d records, oracle %d", s, len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("snapshot %d diverges at record %d", s, i)
					return
				}
			}
			qrng := rand.New(rand.NewSource(int64(100 + s)))
			for i := 0; i < queriesPerVer; i++ {
				q := randomQuery(qrng, tree.Schema(), 0.3)
				parallel := 0
				if i%2 == 1 {
					parallel = 3
				}
				res, err := tree.Execute(context.Background(),
					QueryRequest{Query: q, AsOf: v, Parallel: parallel})
				if err != nil {
					t.Errorf("snapshot %d query %d: %v", s, i, err)
					return
				}
				want := bruteAgg(t, tree.Schema(), frozen, q, 0)
				if !aggMatches(res.Agg, want) {
					t.Errorf("snapshot %d query %d: got %+v, oracle %+v", s, i, res.Agg, want)
					return
				}
			}
		}(s, v, frozen)
	}

	writerWG.Wait()
	verifyWG.Wait()
	close(stopCkpt)
	ckptWG.Wait()

	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after churn: %v", err)
	}
	m := tree.Metrics()
	if m.LiveVersions != 0 || m.PinnedExtents != 0 {
		t.Fatalf("versions/pins leaked: %d live, %d pinned", m.LiveVersions, m.PinnedExtents)
	}
	testMu.Lock()
	want := int64(len(oracle))
	testMu.Unlock()
	if got := tree.Count(); got != want {
		t.Fatalf("final count = %d, oracle %d", got, want)
	}
}
