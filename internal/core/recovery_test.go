package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/seqscan"
	"github.com/dcindex/dctree/internal/storage"
)

// The recovery suite proves the durable write path's crash property: for
// every injected crash point, reopening the tree yields range-aggregate
// results identical to a sequential-scan oracle over exactly the records
// the surviving WAL prefix plus the last checkpoint carry — and every
// ACKNOWLEDGED mutation is in that set.

// durableConfig is smallConfig in naive commit mode: every append fsyncs
// inline, so the serial tests get a deterministic "acked ⇒ on disk after
// the call returned" baseline.
func durableConfig() Config {
	cfg := smallConfig()
	cfg.CommitInterval = -1
	return cfg
}

// copyFile snapshots one file as a crash image.
func copyFile(t testing.TB, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// copyCrashImage snapshots the store file and every WAL segment into dir.
func copyCrashImage(t testing.TB, storePath, walPrefix, dir string) (string, string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	dstStore := filepath.Join(dir, "store.dc")
	copyFile(t, storePath, dstStore)
	segs, err := filepath.Glob(walPrefix + ".*.wal")
	if err != nil {
		t.Fatal(err)
	}
	dstPrefix := filepath.Join(dir, "idx")
	for _, seg := range segs {
		base := filepath.Base(seg)
		// <oldbase>.<n>.wal → idx.<n>.wal
		suffix := base[len(filepath.Base(walPrefix)):]
		copyFile(t, seg, dstPrefix+suffix)
	}
	return dstStore, dstPrefix
}

// imageRecords reads a crash image's WAL and returns the logical records
// past the checkpoint the image's metadata declares — exactly what
// OpenDurable will replay. Opening the WAL also performs the torn-tail
// truncation recovery would perform, so the image is inspected through the
// same lens.
func imageRecords(t testing.TB, schema *cube.Schema, storePath, walPrefix string, blockSize int) (inserts, deletes []cube.Record) {
	t.Helper()
	st, err := storage.OpenPagedStore(storePath, blockSize, 0)
	if err != nil {
		t.Fatalf("opening image store: %v", err)
	}
	probe, err := Open(st)
	if err != nil {
		st.Close()
		t.Fatalf("opening image tree: %v", err)
	}
	checkpoint := probe.checkpointLSN
	st.Close()

	w, err := storage.OpenWAL(walPrefix, storage.WALOptions{})
	if err != nil {
		t.Fatalf("opening image wal: %v", err)
	}
	defer w.Close()
	if err := w.Replay(func(lsn uint64, payload []byte) error {
		if lsn <= checkpoint {
			return nil
		}
		if len(payload) > 0 && payload[0] == walOpDictDelta {
			// Dictionary deltas rebuild registrations the v2 mutation
			// records reference; the shared live schema already holds them,
			// so applying is idempotent and the delta itself is not a
			// logical mutation.
			if err := applyDictDelta(schema, payload); err != nil {
				return err
			}
			return nil
		}
		op, rec, err := decodeWALRecord(schema, payload)
		if err != nil {
			return err
		}
		if op == walOpInsert {
			inserts = append(inserts, rec)
		} else {
			deletes = append(deletes, rec)
		}
		return nil
	}); err != nil {
		t.Fatalf("replaying image wal: %v", err)
	}
	return inserts, deletes
}

// verifyAgainstOracle checks the recovered tree against a seqscan oracle
// over the expected record multiset with a batch of random range queries.
func verifyAgainstOracle(t testing.TB, tree *Tree, recs []cube.Record, queries int, seed int64) {
	t.Helper()
	oracle := seqscan.New(tree.Schema())
	for _, r := range recs {
		if err := oracle.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tree.Count(), int64(len(recs)); got != want {
		t.Fatalf("recovered count = %d, want %d", got, want)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < queries; i++ {
		q := randomQuery(rng, tree.Schema(), 0.3)
		got, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := oracle.RangeAgg(q, 0)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		if !aggMatches(got, want) {
			t.Fatalf("query %d: tree %+v, oracle %+v", i, got, want)
		}
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := durableConfig()

	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	recs := genRecords(t, schema, rng, 80)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	live := recs
	for i := 0; i < 15; i++ {
		if err := tree.Delete(live[0]); err != nil {
			t.Fatal(err)
		}
		live = live[1:]
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: checkpointed state, nothing to replay.
	st2, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tree2, err := OpenDurable(st2, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	if n := tree2.Metrics().RecoveryReplayedRecords; n != 0 {
		t.Fatalf("clean reopen replayed %d records", n)
	}
	verifyAgainstOracle(t, tree2, live, 40, 11)

	// The reopened tree keeps accepting durable writes.
	more := genRecords(t, tree2.Schema(), rng, 10)
	for _, r := range more {
		if err := tree2.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tree2.Count(), int64(len(live)+10); got != want {
		t.Fatalf("count after reopen inserts = %d, want %d", got, want)
	}
}

func TestNewDurableRejectsExistingLog(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.dc")
	walPrefix := filepath.Join(dir, "idx")
	cfg := durableConfig()
	st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	schema := testSchema(t)
	tree, err := NewDurable(st, schema, cfg, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(t, schema, rand.New(rand.NewSource(1)), 5)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a second process creating a fresh tree over the crashed
	// one's log: it must be refused, not silently discarded.
	if _, err := NewDurable(storage.NewMemStore(cfg.BlockSize), testSchema(t), cfg, walPrefix); !errors.Is(err, ErrWALRejected) {
		t.Fatalf("NewDurable over live log: %v", err)
	}
	tree.Close()
}

// TestRecoveryCrashMatrix sweeps process-crash points along a mixed
// insert/delete workload, with and without an intervening checkpoint, and
// with a torn WAL tail appended to the crash image. Every image must
// reopen to exactly the state its surviving log prefix describes, and
// every mutation acknowledged before the crash point must be in it.
func TestRecoveryCrashMatrix(t *testing.T) {
	const n = 90
	cfg := durableConfig()
	for _, checkpoint := range []bool{false, true} {
		for _, tearTail := range []bool{false, true} {
			name := fmt.Sprintf("checkpoint=%v/torn=%v", checkpoint, tearTail)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				storePath := filepath.Join(dir, "store.dc")
				walPrefix := filepath.Join(dir, "idx")
				st, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				schema := testSchema(t)
				tree, err := NewDurable(st, schema, cfg, walPrefix)
				if err != nil {
					t.Fatal(err)
				}
				defer tree.Close()

				rng := rand.New(rand.NewSource(23))
				recs := genRecords(t, schema, rng, n)
				acked := make(map[float64]cube.Record) // keyed by unique measure
				for i, r := range recs {
					r.Measures[0] = float64(i) + 0.25 // unique key per record
					if err := tree.Insert(r); err != nil {
						t.Fatal(err)
					}
					acked[r.Measures[0]] = r
					if i == n/3 && checkpoint {
						if err := tree.Flush(); err != nil {
							t.Fatal(err)
						}
					}
					if i%7 == 3 { // delete an earlier acked record
						victim := recs[i-2]
						if err := tree.Delete(victim); err != nil {
							t.Fatal(err)
						}
						delete(acked, victim.Measures[0])
					}
					if i%15 != 14 {
						continue
					}

					// Crash point: snapshot all files mid-stream.
					crashDir := filepath.Join(dir, fmt.Sprintf("crash-%d", i))
					imgStore, imgPrefix := copyCrashImage(t, storePath, walPrefix, crashDir)
					if tearTail {
						// A torn in-flight append at the moment of death,
						// on the active (last) segment.
						segs, err := filepath.Glob(imgPrefix + ".*.wal")
						if err != nil || len(segs) == 0 {
							t.Fatalf("crash image has no wal segments: %v", err)
						}
						f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
						if err != nil {
							t.Fatal(err)
						}
						f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xba, 0xad, 0xf0})
						f.Close()
					}

					// What the image's log preserves past its checkpoint is
					// exactly what recovery must replay.
					inserts, deletes := imageRecords(t, schema, imgStore, imgPrefix, cfg.BlockSize)

					cst, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
					if err != nil {
						t.Fatal(err)
					}
					ctree, err := OpenDurable(cst, imgPrefix)
					if err != nil {
						cst.Close()
						t.Fatalf("crash image at %d failed to reopen: %v", i, err)
					}
					if got, want := ctree.Metrics().RecoveryReplayedRecords, int64(len(inserts)+len(deletes)); got != want {
						t.Fatalf("crash at %d: replayed %d records, log holds %d", i, got, want)
					}
					// In naive commit mode each mutation is fsynced before
					// it is acknowledged, and the copy happened between
					// operations — so the recovered state must equal the
					// acked set exactly.
					exp := make([]cube.Record, 0, len(acked))
					for _, r := range acked {
						exp = append(exp, r)
					}
					verifyAgainstOracle(t, ctree, exp, 25, int64(i))
					ctree.Close()
					cst.Close()
				}
			})
		}
	}
}

// TestRecoveryCheckpointFaultSweep kills the STORE at every operation of a
// checkpoint (FailStop and TornWrite) and verifies the crash image — the
// partially checkpointed store file plus the untouched log — always
// recovers every acknowledged record. This exercises the interaction of
// shadow paging (the flush) with checkpoint-LSN filtering (the log).
func TestRecoveryCheckpointFaultSweep(t *testing.T) {
	const n = 60
	cfg := durableConfig()
	for _, mode := range []storage.FaultMode{storage.FailStop, storage.TornWrite} {
		modeName := "failstop"
		if mode == storage.TornWrite {
			modeName = "tornwrite"
		}
		t.Run(modeName, func(t *testing.T) {
			for budget := int64(0); ; budget++ {
				dir := t.TempDir()
				storePath := filepath.Join(dir, "store.dc")
				walPrefix := filepath.Join(dir, "idx")
				inner, err := storage.OpenPagedStore(storePath, cfg.BlockSize, 0)
				if err != nil {
					t.Fatal(err)
				}
				fs := storage.NewFaultStore(inner)
				schema := testSchema(t)
				tree, err := NewDurable(fs, schema, cfg, walPrefix)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(5))
				recs := genRecords(t, schema, rng, n)
				live := make([]cube.Record, 0, n)
				for i, r := range recs {
					r.Measures[0] = float64(i) + 0.5
					if err := tree.Insert(r); err != nil {
						t.Fatal(err)
					}
					live = append(live, r)
				}
				for i := 0; i < 10; i++ {
					if err := tree.Delete(live[0]); err != nil {
						t.Fatal(err)
					}
					live = live[1:]
				}

				// Crash the store partway through the checkpoint.
				fs.Arm(mode, budget)
				flushErr := tree.Flush()
				fired := fs.Fired()
				fs.Disarm()

				// Snapshot the files as the crash left them; release the
				// crashed process's handles.
				crashDir := filepath.Join(dir, "crash")
				imgStore, imgPrefix := copyCrashImage(t, storePath, walPrefix, crashDir)
				tree.wal.shutdown()
				inner.Close()

				cst, err := storage.OpenPagedStore(imgStore, cfg.BlockSize, 0)
				if err != nil {
					t.Fatalf("budget %d: reopening store: %v", budget, err)
				}
				ctree, err := OpenDurable(cst, imgPrefix)
				if err != nil {
					cst.Close()
					t.Fatalf("budget %d: reopening tree: %v", budget, err)
				}
				verifyAgainstOracle(t, ctree, live, 15, budget)
				ctree.Close()
				cst.Close()

				if flushErr == nil && !fired {
					// The whole checkpoint fit under the budget: the sweep
					// has covered every crash point. A nil error with the
					// fault fired means the fault landed on a post-swap
					// Free (absorbed, retried later) — keep sweeping.
					if budget == 0 {
						t.Fatal("flush succeeded with a zero fault budget — injection is not wired up")
					}
					break
				}
			}
		})
	}
}
