package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz targets for the decoders that consume untrusted on-disk bytes. The
// invariant under test is uniform: arbitrary input yields an error (usually
// ErrCorrupt), never a panic, never an unbounded allocation.

// fuzzNegativeLength is the regression seed for the metaReader.string
// overflow: a uvarint above MaxInt64 whose int conversion used to go
// negative and defeat the bounds check.
func fuzzNegativeLength() []byte {
	return append(bytes.Repeat([]byte{0xff}, 9), 0x01)
}

func FuzzDecodeWALRecord(f *testing.F) {
	seedTree := newTestTree(f, smallConfig())
	recs := genRecords(f, seedTree.Schema(), rand.New(rand.NewSource(1)), 3)
	for _, op := range []byte{walOpInsert, walOpDelete} {
		payload, err := seedTree.encodeWALRecordV1(op, recs[0])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add(encodeWALRecordV2(walOpInsert, recs[1]))
	f.Add(encodeWALRecordV2(walOpDelete, recs[2]))
	f.Add(encodeDictDelta([]dictDelta{{dim: 0, id: recs[0].Coords[0], name: "x"}}))
	f.Add([]byte{})
	f.Add([]byte{walOpDictDelta})
	f.Add(append([]byte{walOpInsertV2}, fuzzNegativeLength()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Fresh dictionaries per iteration: v1 decode re-interns paths and
		// dict deltas register values, so state must not leak across inputs.
		schema := testSchema(t)
		if len(data) > 0 && data[0] == walOpDictDelta {
			_ = applyDictDelta(schema, data)
			return
		}
		op, rec, err := decodeWALRecord(schema, data)
		if err != nil {
			return
		}
		if op != walOpInsert && op != walOpDelete {
			t.Fatalf("decoded op %d not canonical", op)
		}
		// Whatever decodes must be a fully valid record for the schema.
		if err := schema.ValidateRecord(rec); err != nil {
			t.Fatalf("decoded record fails validation: %v", err)
		}
	})
}

func FuzzDecodeMeta(f *testing.F) {
	tree := newTestTree(f, smallConfig())
	recs := genRecords(f, tree.Schema(), rand.New(rand.NewSource(2)), 20)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		f.Fatal(err)
	}
	tree.mu.Lock()
	blob, err := tree.encodeMeta(tree.metaSnapshotLocked())
	tree.mu.Unlock()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(metaMagic))
	f.Add(append([]byte(metaMagic), fuzzNegativeLength()...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := decodeMeta(data)
		if err != nil {
			return
		}
		// A blob that decodes must describe a self-consistent tree.
		if tr.schema == nil || tr.schema.Dims() < 1 || tr.schema.Measures() < 1 {
			t.Fatal("decoded tree has no schema")
		}
		if _, ok := tr.table[tr.root]; !ok {
			t.Fatal("decoded tree root has no extent")
		}
	})
}
