package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// Tree metadata blob: everything needed to reopen a persisted DC-tree —
// configuration, the cube schema including the full dimension dictionaries
// (the index is meaningless without them), the root pointer, and the
// logical-node translation table.

// Eight format versions are in play: v2 ("DCMETA02") extends v1 with the
// group-commit knobs (after the config flags byte) and the WAL checkpoint
// LSN (after nextID); v3 ("DCMETA03") appends the checkpoint auto-trigger
// knobs after CommitBytes; v4 ("DCMETA04") appends the WAL record format
// after CheckpointDirtyBytes; v5 ("DCMETA05") appends the MVCC version
// stamps (version-number mint, latest version ID and its LSN) after the
// checkpoint LSN; v6 ("DCMETA06") appends a node-layout tag to every
// translation-table entry, so reads know which extents hold the flat v3
// encoding; v7 ("DCMETA07") appends the replication fencing epoch after
// the version stamps, so a promoted follower's authority survives
// restarts even if its WAL is later truncated away; v8 ("DCMETA08")
// appends the version-retention knobs after the WAL record format and,
// after the translation table, one manifest per live MVCC version
// (identity, shape, and a table whose overlay entries point at extents
// the checkpoint wrote) plus the pin ledger's parked-free list — so
// versions survive checkpoints and restarts, rehydrated before the log
// tail replays. Writing always produces v8; reading accepts all eight,
// with newer fields defaulting to zero on older blobs (a zero record
// format normalizes to the current default; zero version stamps mean no
// snapshot was ever taken; a zero layout tag means the legacy varint
// encoding; a zero epoch means the tree predates fencing and accepts any
// source; a pre-v8 blob simply has no durable versions).
const (
	metaMagic   = "DCMETA08"
	metaMagicV7 = "DCMETA07"
	metaMagicV6 = "DCMETA06"
	metaMagicV5 = "DCMETA05"
	metaMagicV4 = "DCMETA04"
	metaMagicV3 = "DCMETA03"
	metaMagicV2 = "DCMETA02"
	metaMagicV1 = "DCMETA01"
)

// versionManifest is the durable image of one live MVCC version (meta v8):
// everything rehydration needs to rebuild the Version handle without the
// WAL — identity and snapshot point, capture time, tree shape at capture,
// and a translation table in which nodes that were dirty at capture point
// at the overlay extents the checkpoint wrote (layout v2) instead of the
// live table's extents.
type versionManifest struct {
	id      uint64
	lsn     uint64
	created int64 // capture time, Unix nanoseconds
	root    nodeID
	rootMDS mds.MDS
	height  int
	count   int64
	table   map[nodeID]extentRef
}

// metaSnapshot is the tree-shape half of the metadata blob, captured under
// the tree lock so a fuzzy checkpoint can encode and swap it while the
// live fields keep moving. The schema and config are not part of it: the
// config is immutable after New/Open, and the dictionaries only grow — a
// superset of the dictionaries at capture time decodes every captured
// node.
type metaSnapshot struct {
	root          nodeID
	rootMDS       mds.MDS
	height        int
	count         int64
	nextID        nodeID
	checkpointLSN uint64
	// MVCC version stamps (meta v5): the version-number mint and the most
	// recent snapshot's identity, so numbers never repeat across restarts
	// and tooling can report the last version even before recovery
	// reconstructs it.
	versionSeq       uint64
	latestVersionID  uint64
	latestVersionLSN uint64
	// epoch is the replication fencing epoch (meta v7): bumped by every
	// promotion, checked by followers and ApplyReplicated so a deposed
	// primary's stale log can never be folded back in.
	epoch uint64
	table map[nodeID]extentRef
	// versions and deferred are the durable MVCC state (meta v8): one
	// manifest per live version, and the pin ledger's parked frees as they
	// will stand the instant the swap lands. Both are assembled by the
	// checkpoint install (capture provides the manifests, install finalizes
	// them and computes the parked-free list), not by metaSnapshotLocked.
	versions []versionManifest
	deferred []storage.Extent
}

// metaSnapshotLocked copies the mutable metadata fields. Caller holds t.mu.
func (t *Tree) metaSnapshotLocked() metaSnapshot {
	table := make(map[nodeID]extentRef, len(t.table))
	for id, ref := range t.table {
		table[id] = ref
	}
	return metaSnapshot{
		root:             t.root,
		rootMDS:          t.rootMDS.Clone(),
		height:           t.height,
		count:            t.count,
		nextID:           t.nextID,
		checkpointLSN:    t.checkpointLSN,
		versionSeq:       t.versionSeq,
		latestVersionID:  t.latestVersionID,
		latestVersionLSN: t.latestVersionLSN,
		epoch:            t.epoch,
		table:            table,
	}
}

// encodeMeta serializes the metadata blob from a snapshot of the mutable
// fields plus the live (immutable or grow-only) config and schema. Must be
// called under t.mu: dictionary registrations race with encoding otherwise.
func (t *Tree) encodeMeta(snap metaSnapshot) ([]byte, error) {
	buf := []byte(metaMagic)

	// Config.
	buf = binary.AppendUvarint(buf, uint64(t.cfg.BlockSize))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.DirCapacity))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.LeafCapacity))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.cfg.MinFillRatio))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.cfg.MaxOverlapRatio))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.MaxSupernodeBlocks))
	buf = binary.AppendVarint(buf, int64(t.cfg.RefineBound))
	var flags byte
	if t.cfg.Materialize {
		flags |= 1
	}
	if t.cfg.DisableSupernodes {
		flags |= 2
	}
	if t.cfg.FlatChooseSubtree {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(t.cfg.CommitInterval))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.CommitBytes))
	buf = binary.AppendVarint(buf, int64(t.cfg.CheckpointInterval))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.CheckpointDirtyBytes))
	buf = binary.AppendUvarint(buf, uint64(t.cfg.WALRecordFormat))
	buf = binary.AppendVarint(buf, int64(t.cfg.VersionRetention.KeepLast))
	buf = binary.AppendVarint(buf, int64(t.cfg.VersionRetention.MaxAge))

	// Tree shape.
	buf = binary.AppendUvarint(buf, uint64(snap.root))
	buf = binary.AppendUvarint(buf, uint64(snap.height))
	buf = binary.AppendVarint(buf, snap.count)
	buf = binary.AppendUvarint(buf, uint64(snap.nextID))
	buf = binary.AppendUvarint(buf, snap.checkpointLSN)
	buf = binary.AppendUvarint(buf, snap.versionSeq)
	buf = binary.AppendUvarint(buf, snap.latestVersionID)
	buf = binary.AppendUvarint(buf, snap.latestVersionLSN)
	buf = binary.AppendUvarint(buf, snap.epoch)
	buf = snap.rootMDS.AppendEncode(buf)

	// Schema: dimensions with full dictionaries, then measure names.
	buf = binary.AppendUvarint(buf, uint64(t.schema.Dims()))
	for i := 0; i < t.schema.Dims(); i++ {
		h, err := t.schema.Dim(i)
		if err != nil {
			return nil, err
		}
		buf = h.AppendEncode(buf)
	}
	buf = binary.AppendUvarint(buf, uint64(t.schema.Measures()))
	for j := 0; j < t.schema.Measures(); j++ {
		name, err := t.schema.MeasureName(j)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}

	// Translation table (v6: each entry carries its node-layout tag).
	buf = binary.AppendUvarint(buf, uint64(len(snap.table)))
	for id, ref := range snap.table {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(ref.page))
		buf = binary.AppendUvarint(buf, uint64(ref.blocks))
		buf = binary.AppendUvarint(buf, uint64(ref.layout))
	}

	// Durable MVCC versions (v8): one manifest per live version, then the
	// pin ledger's parked frees. Rehydration pins every manifest-table
	// extent first and re-parks the frees behind those pins second, so the
	// reopened ledger matches the one this blob was written under.
	buf = binary.AppendUvarint(buf, uint64(len(snap.versions)))
	for i := range snap.versions {
		m := &snap.versions[i]
		buf = binary.AppendUvarint(buf, m.id)
		buf = binary.AppendUvarint(buf, m.lsn)
		buf = binary.AppendVarint(buf, m.created)
		buf = binary.AppendUvarint(buf, uint64(m.root))
		buf = binary.AppendUvarint(buf, uint64(m.height))
		buf = binary.AppendVarint(buf, m.count)
		buf = m.rootMDS.AppendEncode(buf)
		buf = binary.AppendUvarint(buf, uint64(len(m.table)))
		for id, ref := range m.table {
			buf = binary.AppendUvarint(buf, uint64(id))
			buf = binary.AppendUvarint(buf, uint64(ref.page))
			buf = binary.AppendUvarint(buf, uint64(ref.blocks))
			buf = binary.AppendUvarint(buf, uint64(ref.layout))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.deferred)))
	for _, e := range snap.deferred {
		buf = binary.AppendUvarint(buf, uint64(e.Page))
		buf = binary.AppendUvarint(buf, uint64(e.Blocks))
	}
	return buf, nil
}

// Open reopens a DC-tree persisted by Flush on the given store.
func Open(store storage.Store) (*Tree, error) {
	meta, err := store.GetMeta()
	if err != nil {
		return nil, fmt.Errorf("dctree: reading metadata: %w", err)
	}
	t, err := decodeMeta(meta)
	if err != nil {
		return nil, err
	}
	if t.cfg.BlockSize != store.BlockSize() {
		return nil, fmt.Errorf("%w: tree block size %d != store block size %d",
			ErrCorrupt, t.cfg.BlockSize, store.BlockSize())
	}
	t.store = store
	t.viewer, _ = store.(storage.ExtentViewer)
	return t, nil
}

// decodeMeta parses a metadata blob into a store-less Tree. Split out of
// Open so corrupt-input tests and the fuzz target can exercise the decoder
// directly: arbitrary bytes must yield ErrCorrupt, never a panic.
func decodeMeta(meta []byte) (*Tree, error) {
	if len(meta) < len(metaMagic) {
		return nil, fmt.Errorf("%w: bad metadata magic", ErrCorrupt)
	}
	var ver int
	switch string(meta[:len(metaMagic)]) {
	case metaMagic:
		ver = 8
	case metaMagicV7:
		ver = 7
	case metaMagicV6:
		ver = 6
	case metaMagicV5:
		ver = 5
	case metaMagicV4:
		ver = 4
	case metaMagicV3:
		ver = 3
	case metaMagicV2:
		ver = 2
	case metaMagicV1:
		ver = 1
	default:
		return nil, fmt.Errorf("%w: bad metadata magic", ErrCorrupt)
	}
	r := metaReader{buf: meta, off: len(metaMagic)}

	var cfg Config
	cfg.BlockSize = int(r.uvarint())
	cfg.DirCapacity = int(r.uvarint())
	cfg.LeafCapacity = int(r.uvarint())
	cfg.MinFillRatio = r.float64()
	cfg.MaxOverlapRatio = r.float64()
	cfg.MaxSupernodeBlocks = int(r.uvarint())
	cfg.RefineBound = int(r.varint())
	flags := r.byte()
	cfg.Materialize = flags&1 != 0
	cfg.DisableSupernodes = flags&2 != 0
	cfg.FlatChooseSubtree = flags&4 != 0
	if ver >= 2 {
		cfg.CommitInterval = time.Duration(r.varint())
		cfg.CommitBytes = int(r.uvarint())
	}
	if ver >= 3 {
		cfg.CheckpointInterval = time.Duration(r.varint())
		cfg.CheckpointDirtyBytes = int(r.uvarint())
	}
	if ver >= 4 {
		cfg.WALRecordFormat = int(r.uvarint())
	}
	if ver >= 8 {
		cfg.VersionRetention.KeepLast = int(r.varint())
		cfg.VersionRetention.MaxAge = time.Duration(r.varint())
	}

	root := nodeID(r.uvarint())
	height := int(r.uvarint())
	count := r.varint()
	nextID := nodeID(r.uvarint())
	var checkpointLSN uint64
	if ver >= 2 {
		checkpointLSN = r.uvarint()
	}
	var versionSeq, latestVersionID, latestVersionLSN uint64
	if ver >= 5 {
		versionSeq = r.uvarint()
		latestVersionID = r.uvarint()
		latestVersionLSN = r.uvarint()
	}
	var epoch uint64
	if ver >= 7 {
		epoch = r.uvarint()
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: metadata header: %v", ErrCorrupt, r.err)
	}
	rootMDS, n, err := mds.Decode(r.buf[r.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: root mds: %v", ErrCorrupt, err)
	}
	r.off += n

	dims := int(r.uvarint())
	if r.err != nil || dims < 1 || dims > 64 {
		return nil, fmt.Errorf("%w: dimension count", ErrCorrupt)
	}
	hs := make([]*hierarchy.Hierarchy, dims)
	for i := range hs {
		h, n, err := hierarchy.DecodeHierarchy(r.buf[r.off:])
		if err != nil {
			return nil, fmt.Errorf("%w: dimension %d: %v", ErrCorrupt, i, err)
		}
		hs[i] = h
		r.off += n
	}
	nMeasures := int(r.uvarint())
	if r.err != nil || nMeasures < 1 || nMeasures > 256 {
		return nil, fmt.Errorf("%w: measure count", ErrCorrupt)
	}
	measures := make([]string, nMeasures)
	for j := range measures {
		measures[j] = r.string()
	}
	schema, err := cube.NewSchema(hs, measures...)
	if err != nil {
		return nil, err
	}

	table, err := decodeExtentTable(&r, ver)
	if err != nil {
		return nil, fmt.Errorf("translation %w", err)
	}

	// Durable MVCC version manifests and the parked-free list (v8).
	var manifests []versionManifest
	var deferred []storage.Extent
	if ver >= 8 {
		nVersions := r.uvarint()
		// A manifest takes at least a handful of bytes; a count beyond the
		// remaining input is corrupt, checked before it sizes anything.
		if r.err == nil && nVersions > uint64(len(r.buf)-r.off) {
			return nil, fmt.Errorf("%w: version manifest count %d", ErrCorrupt, nVersions)
		}
		manifests = make([]versionManifest, 0, int(nVersions))
		for i := uint64(0); i < nVersions; i++ {
			var m versionManifest
			m.id = r.uvarint()
			m.lsn = r.uvarint()
			m.created = r.varint()
			m.root = nodeID(r.uvarint())
			m.height = int(r.uvarint())
			m.count = r.varint()
			if r.err != nil {
				return nil, fmt.Errorf("%w: version manifest %d: %v", ErrCorrupt, i, r.err)
			}
			if m.id == 0 {
				return nil, fmt.Errorf("%w: version manifest %d has id 0", ErrCorrupt, i)
			}
			vm, n, err := mds.Decode(r.buf[r.off:])
			if err != nil {
				return nil, fmt.Errorf("%w: version %d root mds: %v", ErrCorrupt, m.id, err)
			}
			m.rootMDS = vm
			r.off += n
			m.table, err = decodeExtentTable(&r, ver)
			if err != nil {
				return nil, fmt.Errorf("version %d %w", m.id, err)
			}
			if _, ok := m.table[m.root]; !ok {
				return nil, fmt.Errorf("%w: version %d root node %d missing from manifest", ErrCorrupt, m.id, m.root)
			}
			manifests = append(manifests, m)
		}
		nDeferred := r.uvarint()
		if r.err == nil && nDeferred > uint64(len(r.buf)-r.off) {
			return nil, fmt.Errorf("%w: deferred free count %d", ErrCorrupt, nDeferred)
		}
		for i := uint64(0); i < nDeferred; i++ {
			page := storage.PageID(r.uvarint())
			blocks := int(r.uvarint())
			deferred = append(deferred, storage.Extent{Page: page, Blocks: blocks})
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: metadata body: %v", ErrCorrupt, r.err)
	}

	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		schema:           schema,
		cfg:              cfg,
		root:             root,
		rootMDS:          rootMDS,
		height:           height,
		count:            count,
		nextID:           nextID,
		checkpointLSN:    checkpointLSN,
		versionSeq:       versionSeq,
		latestVersionID:  latestVersionID,
		latestVersionLSN: latestVersionLSN,
		epoch:            epoch,
		table:            table,
		nc:               newNodeCache(),
		versions:         make(map[uint64]*Version),
		pins:             storage.NewPins(),
	}
	if _, ok := t.table[root]; !ok {
		return nil, fmt.Errorf("%w: root node %d missing from table", ErrCorrupt, root)
	}
	t.rehydrateVersions(manifests, deferred)
	return t, nil
}

// decodeExtentTable parses one node→extent table (the main translation
// table or a version manifest's). The entry count is validated against the
// remaining input before it sizes the map, and unknown layout tags fail
// closed — serving an extent through the wrong decoder would misread data
// silently. A zero layout (pre-v6 blob rewritten by a v6 build) means the
// legacy varint encoding.
func decodeExtentTable(r *metaReader, ver int) (map[nodeID]extentRef, error) {
	tableLen64 := r.uvarint()
	if r.err == nil && tableLen64 > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("%w: table length %d", ErrCorrupt, tableLen64)
	}
	tableLen := int(tableLen64)
	table := make(map[nodeID]extentRef, tableLen)
	for i := 0; i < tableLen; i++ {
		id := nodeID(r.uvarint())
		page := storage.PageID(r.uvarint())
		blocks := int(r.uvarint())
		var layout uint8
		if ver >= 6 {
			l := r.uvarint()
			if r.err == nil && l != 0 && l != uint64(layoutV2) && l != uint64(layoutV3) {
				return nil, fmt.Errorf("%w: node %d layout %d", ErrCorrupt, id, l)
			}
			layout = uint8(l)
		}
		table[id] = extentRef{page: page, blocks: blocks, layout: layout}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: table body: %v", ErrCorrupt, r.err)
	}
	return table, nil
}

// rehydrateVersions rebuilds the live Version handles from the metadata's
// manifests (v8) and restores the pin ledger: every manifest-table extent
// is pinned FIRST, then the persisted parked frees re-park behind those
// pins (Pin refuses a page whose free is already deferred, so the order
// matters). A parked free whose extent no pinned table references any
// longer goes straight to the pending-free list and is returned to the
// allocator by the next durable swap. Runs during Open, before any WAL
// replay — recovery's version records all carry LSNs past the checkpoint,
// so the two sources never overlap.
func (t *Tree) rehydrateVersions(manifests []versionManifest, deferred []storage.Extent) {
	for i := range manifests {
		m := &manifests[i]
		v := &Version{
			t:       t,
			id:      m.id,
			lsn:     m.lsn,
			created: time.Unix(0, m.created),
			root:    m.root,
			rootMDS: m.rootMDS,
			height:  m.height,
			count:   m.count,
			table:   m.table,
			overlay: make(map[nodeID][]byte),
			nc:      newNodeCache(),
		}
		v.refs.Store(1)
		// The manifest table already merges the overlay extents, so the
		// rehydrated version reads everything from storage; persisted is
		// latched so the next checkpoint only re-encodes the manifest.
		v.persisted.Store(true)
		v.pinned = make([]storage.PageID, 0, len(m.table))
		for _, ref := range m.table {
			if t.pins.Pin(ref.page) {
				v.pinned = append(v.pinned, ref.page)
			}
		}
		v.pinCount.Store(int64(len(v.pinned)))
		t.versions[m.id] = v
		if m.id > t.versionSeq {
			t.versionSeq = m.id
		}
		t.metrics.versionsRehydrated.Inc()
	}
	for _, e := range deferred {
		if !t.pins.FreeOrDefer(e.Page, e.Blocks) {
			t.pendingFree = append(t.pendingFree, extentRef{page: e.Page, blocks: e.Blocks})
		}
	}
}

// metaReader is a cursor over the metadata blob with sticky errors.
type metaReader struct {
	buf []byte
	off int
	err error
}

func (r *metaReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *metaReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *metaReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.off < 8 {
		r.err = fmt.Errorf("truncated float at %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *metaReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = fmt.Errorf("truncated byte at %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *metaReader) string() string {
	l := r.uvarint()
	if r.err != nil {
		return ""
	}
	// Compare in uint64: a corrupt length above MaxInt64 converted to int
	// first would go negative, sail past a `remaining < l` check, and panic
	// on the negative slice bound below. Corrupt input must fail closed.
	if l > uint64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("truncated string at %d", r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(l)])
	r.off += int(l)
	return s
}
