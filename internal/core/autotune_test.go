package core

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/storage"
)

// TestCommitAutoTune drives the adaptive group committer through its two
// regimes: a concurrent burst against a slow modeled device must stretch
// the window from its configured seed toward the fsync latency, and a
// subsequent sparse single-writer phase must collapse it again. Thresholds
// are deliberately loose — the test asserts direction, not convergence
// speed, to stay robust on loaded CI machines.
func TestCommitAutoTune(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CommitInterval = 100 * time.Microsecond
	cfg.CommitAutoTune = true
	schema := testSchema(t)
	tree, err := NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		filepath.Join(dir, "idx"), storage.WALOptions{SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	if got := tree.Metrics().WALCommitInterval; got != cfg.CommitInterval {
		t.Fatalf("initial window = %v, want %v", got, cfg.CommitInterval)
	}

	// Burst: 4 writers keep batches full, so the window grows toward the
	// ~1 ms modeled fsync.
	recs := genRecords(t, schema, rand.New(rand.NewSource(1)), 400)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(recs); i += 4 {
				if err := tree.Insert(recs[i]); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := tree.Metrics()
	if m.WALAutotuneAdjusts == 0 {
		t.Fatal("no autotune adjustments under sustained batching")
	}
	burst := m.WALCommitInterval
	if burst <= cfg.CommitInterval {
		t.Fatalf("window after burst = %v, want > seed %v", burst, cfg.CommitInterval)
	}
	if lim := 8 * cfg.CommitInterval; burst > lim {
		t.Fatalf("window after burst = %v, beyond clamp %v", burst, lim)
	}

	// Sparse: one record per batch, spaced wider than the window — the
	// committer sheds the wait instead of delaying lone records.
	sparse := genRecords(t, schema, rand.New(rand.NewSource(2)), 24)
	for _, r := range sparse {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	if got := tree.Metrics().WALCommitInterval; got >= burst {
		t.Fatalf("window after sparse phase = %v, want < %v", got, burst)
	}
}

// TestAutoTuneOffKeepsFixedWindow pins the default behavior: without the
// knob the gauge reports the configured interval and never moves.
func TestAutoTuneOffKeepsFixedWindow(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CommitInterval = time.Millisecond
	schema := testSchema(t)
	tree, err := NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		filepath.Join(dir, "idx"), storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	for _, r := range genRecords(t, schema, rand.New(rand.NewSource(3)), 50) {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	m := tree.Metrics()
	if m.WALAutotuneAdjusts != 0 {
		t.Fatalf("adjustments = %d without CommitAutoTune", m.WALAutotuneAdjusts)
	}
	if m.WALCommitInterval != cfg.CommitInterval {
		t.Fatalf("window = %v, want fixed %v", m.WALCommitInterval, cfg.CommitInterval)
	}
}
