package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
)

// QueryRequest describes one range query for Execute. The zero value of
// the optional fields selects the simplest form: first measure, serial
// descent, no stats in the result.
type QueryRequest struct {
	// Query is the range, one DimSet per dimension of the schema (use
	// mds.AllDim() for unconstrained dimensions).
	Query mds.MDS
	// Measure selects the measure to aggregate (ignored when AllMeasures
	// is set).
	Measure int
	// AllMeasures aggregates every measure of the schema in one descent;
	// the result is returned in QueryResult.AggVector.
	AllMeasures bool
	// Parallel ≥ 1 fans the descent out over that many worker goroutines;
	// ≤ 0 runs the classic serial descent.
	Parallel int
	// CollectStats returns the work counters in QueryResult.Stats. The
	// counters are always maintained internally (they feed Tree.Metrics);
	// the flag only controls whether the caller gets a copy.
	CollectStats bool
	// AsOf pins the query to an MVCC version (Tree.Snapshot): nodes resolve
	// through the version's captured translation table and copy-on-write
	// overlay, and the descent runs WITHOUT the tree lock — concurrent
	// inserts, deletes and checkpoints neither block nor affect the result.
	// The version must come from this tree and must not be released while
	// the query runs. Nil queries the live tree.
	AsOf *Version
}

// QueryResult is the outcome of Execute.
type QueryResult struct {
	// Agg is the aggregate of the requested measure (single-measure form).
	Agg cube.Agg
	// AggVector holds one aggregate per measure (AllMeasures form).
	AggVector cube.AggVector
	// Stats reports the work performed, if requested. On error it holds
	// the work done up to the failure.
	Stats QueryStats
	// Elapsed is the wall-clock duration of the query.
	Elapsed time.Duration
}

// ctxCheckInterval is how many node visits pass between context polls on
// the descent: frequent enough that cancellation lands within microseconds
// on any realistic tree, rare enough to stay invisible in profiles.
const ctxCheckInterval = 64

// Execute is the single choke point every range-query entrypoint funnels
// through: it validates the request, runs the serial or parallel descent,
// and records the query's latency and work counters exactly once in the
// tree's metrics — regardless of which public convenience method
// (RangeQuery, RangeQueryStats, RangeAgg, RangeAggAll, RangeAggParallel)
// was called.
//
// ctx cancellation and deadlines are honored during the descent: the loop
// polls the context every ctxCheckInterval node visits (and every parallel
// worker polls its own slice of the tree), returning ctx.Err() promptly
// for long scans over large trees. A nil ctx is treated as
// context.Background().
func (t *Tree) Execute(ctx context.Context, req QueryRequest) (QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res, err := t.execute(ctx, req)
	res.Elapsed = time.Since(start)

	m := &t.metrics
	m.queries.Inc()
	m.queryLatency.Observe(res.Elapsed)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.queryCancels.Inc()
	default:
		m.queryErrors.Inc()
	}
	st := res.Stats
	m.qNodesVisited.Add(int64(st.NodesVisited))
	m.qEntriesScanned.Add(int64(st.EntriesScanned))
	m.qEntriesPruned.Add(int64(st.EntriesPruned))
	m.qMaterializedHits.Add(int64(st.MaterializedHits))
	m.qRecordsMatched.Add(int64(st.RecordsMatched))

	if h := t.slowHook.Load(); h != nil && res.Elapsed >= h.threshold {
		m.slowQueries.Inc()
		if h.fn != nil {
			h.fn(SlowQueryEvent{
				Query:   req.Query.Clone(),
				Elapsed: res.Elapsed,
				Stats:   st,
			})
		}
	}
	if !req.CollectStats {
		res.Stats = QueryStats{}
	}
	return res, err
}

// execute validates and runs the query; Execute wraps it with the
// once-per-query accounting.
func (t *Tree) execute(ctx context.Context, req QueryRequest) (QueryResult, error) {
	var res QueryResult
	if !req.AllMeasures && (req.Measure < 0 || req.Measure >= t.schema.Measures()) {
		return res, fmt.Errorf("%w: %d", ErrBadMeasure, req.Measure)
	}
	if err := req.Query.Validate(t.space()); err != nil {
		return res, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	// An already-canceled context never starts the descent; afterwards the
	// descent polls every ctxCheckInterval node visits.
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Pick the node resolver and root. Live queries hold the tree read lock
	// for the descent; as-of queries pin their version (so Release cannot
	// drop the extents mid-walk) and run entirely without the tree lock —
	// the version's table and overlay are immutable, the query masks only
	// read the grow-only hierarchies, and the version's node cache is
	// internally synchronized.
	var src nodeSource
	var root nodeID
	if v := req.AsOf; v != nil {
		if v.t != t {
			return res, ErrVersionForeign
		}
		if err := v.acquire(); err != nil {
			return res, err
		}
		defer v.unref()
		t.metrics.asOfQueries.Inc()
		src, root = v, v.root
	} else {
		t.mu.RLock()
		defer t.mu.RUnlock()
		src, root = t, t.root
	}

	qc, err := t.newQueryCtx(req.Query)
	if err != nil {
		return res, err
	}
	// The context and its mask arenas go back to the pool once the descent
	// is done; executeParallel joins every worker before returning, so no
	// goroutine holds qc past this function.
	defer t.putQueryCtx(qc)
	if req.Parallel > 0 {
		return t.executeParallel(ctx, qc, req, src, root)
	}

	d := &descent{src: src, qc: qc, ctx: ctx, check: ctxCheckInterval}
	if req.AllMeasures {
		vec := cube.NewAggVector(t.schema.Measures())
		err = t.queryNodeAll(root, d, vec)
		if err == nil {
			res.AggVector = vec
		}
	} else {
		err = t.queryNode(root, d, req.Measure, &res.Agg)
		if err != nil {
			res.Agg = cube.Agg{}
		}
	}
	res.Stats = d.st
	return res, err
}
