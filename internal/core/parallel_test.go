package core

import (
	"math/rand"
	"testing"
)

func TestParallelQueryMatchesSequential(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	rng := rand.New(rand.NewSource(211))
	recs := genRecords(t, s, rng, 3000)
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		q := randomQuery(rng, s, []float64{0.01, 0.05, 0.25, 0.6}[i%4])
		want, err := tree.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			got, err := tree.RangeAggParallel(q, 0, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if got.Count != want.Count || !floatClose(got.Sum, want.Sum) ||
				(want.Count > 0 && (got.Min != want.Min || got.Max != want.Max)) {
				t.Fatalf("workers=%d query %d: parallel %+v != sequential %+v", workers, i, got, want)
			}
		}
	}
	// Validation errors surface.
	if _, err := tree.RangeAggParallel(tree.RootMDS(), 9, 2); err == nil {
		t.Fatal("bad measure accepted")
	}
}

func TestParallelQueryEmptyAndTinyTrees(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	s := tree.Schema()
	got, err := tree.RangeAggParallel(tree.RootMDS(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEmpty() {
		t.Fatalf("empty tree agg = %+v", got)
	}
	rng := rand.New(rand.NewSource(213))
	recs := genRecords(t, s, rng, 5) // root is still a leaf
	for _, r := range recs {
		tree.Insert(r)
	}
	got, err = tree.RangeAggParallel(tree.RootMDS(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 5 {
		t.Fatalf("leaf-root parallel count = %d", got.Count)
	}
}
