package core

import (
	"sync"
	"sync/atomic"
)

// The node cache is sharded so that concurrent query workers resolving
// cache hits never contend on a single lock: a hit takes only one shard
// RLock, which scales with cores. 2^cacheShardBits shards keep the modulo a
// mask; 16 shards comfortably exceed the worker counts the parallel descent
// runs at while keeping the per-tree footprint trivial. Node IDs are
// sequential, so they are spread over shards with a Fibonacci multiplicative
// hash rather than by their low bits.
const (
	cacheShardBits = 4
	cacheShards    = 1 << cacheShardBits
)

// cacheShard is one lock domain of the node cache. nodes holds the resident
// nodes, dirty the IDs awaiting the next checkpoint, and inflight the
// singleflight table: at most one goroutine faults a given node from the
// store while every concurrent requester waits on its done channel instead
// of decoding the same extent again.
//
// The dirty map carries a per-mark sequence number, not a boolean: a fuzzy
// checkpoint snapshots (id, seq) pairs under the tree lock, writes the
// captured payloads without it, and at install time clears a flag only if
// its sequence is unchanged — a node re-dirtied during the background write
// keeps its (newer) flag and is re-captured by the next checkpoint.
type cacheShard struct {
	mu       sync.RWMutex
	nodes    map[nodeID]*node
	dirty    map[nodeID]uint64
	inflight map[nodeID]*nodeFault
}

// nodeFault is one in-progress fault; n and err are published before done
// is closed.
type nodeFault struct {
	done chan struct{}
	n    *node
	err  error
}

// nodeCache is the tree's sharded in-memory node cache.
type nodeCache struct {
	shards [cacheShards]cacheShard
	// dirtySeq numbers every markDirty/putNew; dirtyCount tracks the
	// number of flagged nodes for the checkpoint auto-trigger's dirty-bytes
	// estimate without scanning the shards.
	dirtySeq   atomic.Uint64
	dirtyCount atomic.Int64
}

func newNodeCache() *nodeCache {
	c := &nodeCache{}
	for i := range c.shards {
		c.shards[i].nodes = make(map[nodeID]*node)
		c.shards[i].dirty = make(map[nodeID]uint64)
	}
	return c
}

// shard maps a node ID to its shard.
func (c *nodeCache) shard(id nodeID) *cacheShard {
	return &c.shards[(uint64(id)*0x9E3779B97F4A7C15)>>(64-cacheShardBits)]
}

// get returns the cached node or nil, taking only the shard read lock.
func (c *nodeCache) get(id nodeID) *node {
	sh := c.shard(id)
	sh.mu.RLock()
	n := sh.nodes[id]
	sh.mu.RUnlock()
	return n
}

// putNew inserts a freshly allocated node and marks it dirty.
func (c *nodeCache) putNew(n *node) {
	seq := c.dirtySeq.Add(1)
	sh := c.shard(n.id)
	sh.mu.Lock()
	sh.nodes[n.id] = n
	if _, ok := sh.dirty[n.id]; !ok {
		c.dirtyCount.Add(1)
	}
	sh.dirty[n.id] = seq
	sh.mu.Unlock()
}

// markDirty flags a node for the next checkpoint. Every call advances the
// node's dirty sequence, so a checkpoint that captured an older sequence
// knows the node changed under it.
func (c *nodeCache) markDirty(id nodeID) {
	seq := c.dirtySeq.Add(1)
	sh := c.shard(id)
	sh.mu.Lock()
	if _, ok := sh.dirty[id]; !ok {
		c.dirtyCount.Add(1)
	}
	sh.dirty[id] = seq
	sh.mu.Unlock()
}

// drop removes a node and its dirty flag.
func (c *nodeCache) drop(id nodeID) {
	sh := c.shard(id)
	sh.mu.Lock()
	delete(sh.nodes, id)
	if _, ok := sh.dirty[id]; ok {
		delete(sh.dirty, id)
		c.dirtyCount.Add(-1)
	}
	sh.mu.Unlock()
}

// dirtyEntry is one captured dirty flag: the node and the sequence of its
// latest mark at capture time.
type dirtyEntry struct {
	id  nodeID
	seq uint64
}

// dirtySnapshot captures the current dirty set with sequence numbers.
func (c *nodeCache) dirtySnapshot() []dirtyEntry {
	var entries []dirtyEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for id, seq := range sh.dirty {
			entries = append(entries, dirtyEntry{id: id, seq: seq})
		}
		sh.mu.RUnlock()
	}
	return entries
}

// dirtyIDs snapshots the IDs currently flagged dirty.
func (c *nodeCache) dirtyIDs() []nodeID {
	entries := c.dirtySnapshot()
	ids := make([]nodeID, len(entries))
	for i, e := range entries {
		ids[i] = e.id
	}
	return ids
}

// dirtyLen reports the number of nodes currently flagged dirty.
func (c *nodeCache) dirtyLen() int64 { return c.dirtyCount.Load() }

// clearDirtyIf removes a node's dirty flag only if its sequence still
// matches the captured one. It reports whether the flag was cleared; false
// means the node was re-dirtied (or dropped) after the capture and stays
// flagged for the next checkpoint.
func (c *nodeCache) clearDirtyIf(id nodeID, seq uint64) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.dirty[id]
	if !ok || cur != seq {
		return false
	}
	delete(sh.dirty, id)
	c.dirtyCount.Add(-1)
	return true
}

// clearDirty removes the dirty flags of flushed nodes unconditionally.
func (c *nodeCache) clearDirty(ids []nodeID) {
	for _, id := range ids {
		sh := c.shard(id)
		sh.mu.Lock()
		if _, ok := sh.dirty[id]; ok {
			delete(sh.dirty, id)
			c.dirtyCount.Add(-1)
		}
		sh.mu.Unlock()
	}
}

// evictClean drops every node that is not dirty. Dirty nodes carry
// un-persisted state, so they stay resident until the next Flush.
func (c *nodeCache) evictClean() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id := range sh.nodes {
			if _, dirty := sh.dirty[id]; !dirty {
				delete(sh.nodes, id)
			}
		}
		sh.mu.Unlock()
	}
}

// len reports the number of resident nodes.
func (c *nodeCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return n
}

// fault resolves a cache miss with singleflight semantics: the first
// requester loads and decodes the extent, every concurrent requester for the
// same node blocks on the leader's done channel and shares the result.
// load runs without any shard lock held. shared reports whether this call
// piggybacked on another goroutine's load.
func (c *nodeCache) fault(id nodeID, load func() (*node, error)) (n *node, shared bool, err error) {
	sh := c.shard(id)
	sh.mu.Lock()
	if n := sh.nodes[id]; n != nil {
		sh.mu.Unlock()
		return n, true, nil
	}
	if f := sh.inflight[id]; f != nil {
		sh.mu.Unlock()
		<-f.done
		return f.n, true, f.err
	}
	f := &nodeFault{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[nodeID]*nodeFault)
	}
	sh.inflight[id] = f
	sh.mu.Unlock()

	n, err = load()
	sh.mu.Lock()
	delete(sh.inflight, id)
	if err == nil {
		// A writer may have installed (or re-created) the node meanwhile;
		// keep the resident copy.
		if prev := sh.nodes[id]; prev != nil {
			n = prev
		} else {
			sh.nodes[id] = n
		}
	}
	sh.mu.Unlock()
	f.n, f.err = n, err
	close(f.done)
	return n, false, err
}
