package core

import "sync"

// The node cache is sharded so that concurrent query workers resolving
// cache hits never contend on a single lock: a hit takes only one shard
// RLock, which scales with cores. 2^cacheShardBits shards keep the modulo a
// mask; 16 shards comfortably exceed the worker counts the parallel descent
// runs at while keeping the per-tree footprint trivial. Node IDs are
// sequential, so they are spread over shards with a Fibonacci multiplicative
// hash rather than by their low bits.
const (
	cacheShardBits = 4
	cacheShards    = 1 << cacheShardBits
)

// cacheShard is one lock domain of the node cache. nodes holds the resident
// nodes, dirty the IDs awaiting the next Flush, and inflight the
// singleflight table: at most one goroutine faults a given node from the
// store while every concurrent requester waits on its done channel instead
// of decoding the same extent again.
type cacheShard struct {
	mu       sync.RWMutex
	nodes    map[nodeID]*node
	dirty    map[nodeID]bool
	inflight map[nodeID]*nodeFault
}

// nodeFault is one in-progress fault; n and err are published before done
// is closed.
type nodeFault struct {
	done chan struct{}
	n    *node
	err  error
}

// nodeCache is the tree's sharded in-memory node cache.
type nodeCache struct {
	shards [cacheShards]cacheShard
}

func newNodeCache() *nodeCache {
	c := &nodeCache{}
	for i := range c.shards {
		c.shards[i].nodes = make(map[nodeID]*node)
		c.shards[i].dirty = make(map[nodeID]bool)
	}
	return c
}

// shard maps a node ID to its shard.
func (c *nodeCache) shard(id nodeID) *cacheShard {
	return &c.shards[(uint64(id)*0x9E3779B97F4A7C15)>>(64-cacheShardBits)]
}

// get returns the cached node or nil, taking only the shard read lock.
func (c *nodeCache) get(id nodeID) *node {
	sh := c.shard(id)
	sh.mu.RLock()
	n := sh.nodes[id]
	sh.mu.RUnlock()
	return n
}

// putNew inserts a freshly allocated node and marks it dirty.
func (c *nodeCache) putNew(n *node) {
	sh := c.shard(n.id)
	sh.mu.Lock()
	sh.nodes[n.id] = n
	sh.dirty[n.id] = true
	sh.mu.Unlock()
}

// markDirty flags a node for the next Flush.
func (c *nodeCache) markDirty(id nodeID) {
	sh := c.shard(id)
	sh.mu.Lock()
	sh.dirty[id] = true
	sh.mu.Unlock()
}

// drop removes a node and its dirty flag.
func (c *nodeCache) drop(id nodeID) {
	sh := c.shard(id)
	sh.mu.Lock()
	delete(sh.nodes, id)
	delete(sh.dirty, id)
	sh.mu.Unlock()
}

// dirtyIDs snapshots the IDs currently flagged dirty.
func (c *nodeCache) dirtyIDs() []nodeID {
	var ids []nodeID
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for id := range sh.dirty {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	return ids
}

// clearDirty removes the dirty flags of flushed nodes.
func (c *nodeCache) clearDirty(ids []nodeID) {
	for _, id := range ids {
		sh := c.shard(id)
		sh.mu.Lock()
		delete(sh.dirty, id)
		sh.mu.Unlock()
	}
}

// evictClean drops every node that is not dirty. Dirty nodes carry
// un-persisted state, so they stay resident until the next Flush.
func (c *nodeCache) evictClean() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id := range sh.nodes {
			if !sh.dirty[id] {
				delete(sh.nodes, id)
			}
		}
		sh.mu.Unlock()
	}
}

// len reports the number of resident nodes.
func (c *nodeCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return n
}

// fault resolves a cache miss with singleflight semantics: the first
// requester loads and decodes the extent, every concurrent requester for the
// same node blocks on the leader's done channel and shares the result.
// load runs without any shard lock held. shared reports whether this call
// piggybacked on another goroutine's load.
func (c *nodeCache) fault(id nodeID, load func() (*node, error)) (n *node, shared bool, err error) {
	sh := c.shard(id)
	sh.mu.Lock()
	if n := sh.nodes[id]; n != nil {
		sh.mu.Unlock()
		return n, true, nil
	}
	if f := sh.inflight[id]; f != nil {
		sh.mu.Unlock()
		<-f.done
		return f.n, true, f.err
	}
	f := &nodeFault{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[nodeID]*nodeFault)
	}
	sh.inflight[id] = f
	sh.mu.Unlock()

	n, err = load()
	sh.mu.Lock()
	delete(sh.inflight, id)
	if err == nil {
		// A writer may have installed (or re-created) the node meanwhile;
		// keep the resident copy.
		if prev := sh.nodes[id]; prev != nil {
			n = prev
		} else {
			sh.nodes[id] = n
		}
	}
	sh.mu.Unlock()
	f.n, f.err = n, err
	close(f.done)
	return n, false, err
}
