package core

import (
	"sort"

	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// splitNode implements the split algorithm of Fig. 5 for an overflowing
// node n. nodeMDS is the describing MDS held by the parent (the top MDS
// (ALL,…,ALL) for the root): its relevant levels drive both the
// split-dimension order and the adaptation of the entries.
//
// The algorithm tries one split dimension after another, ordered by the
// hierarchy level of the node MDS's values in that dimension (highest
// level first: a dimension still described by ALL, or by coarse values,
// has the most headroom to separate the entries). For each candidate
// dimension d the entry MDSs are made mutually comparable — §3.2 requires
// all operands of MDS operations to carry values of the same level per
// dimension — by adapting them to the node's relevant levels, except that
// in dimension d the target level drops one below the node's level. That
// drop is the heart of the DC-tree: the node described by ({Europe},…)
// splits into two *nation-level* groups ("the relevant level of this
// dimension may be decreased by one for the MDSs of the two resulting
// subgroups", §3.2), so directory MDSs stay coarse — a handful of values
// per dimension — and refine one hierarchy level per split on the way
// down. Each candidate dimension is partitioned by the hierarchy split of
// Fig. 6; the first partition that is balanced and has acceptably low
// overlap wins, and the two groups' MDSs are the covers of the adapted
// members (coarse in every non-split dimension, one level finer in the
// split dimension).
//
// If no dimension yields an acceptable split, the node becomes (or grows
// as) a supernode; at the supernode cap, or with supernodes disabled, the
// best partition seen so far is forced instead.
func (t *Tree) splitNode(n *node, nodeMDS mds.MDS) (insertResult, error) {
	total := len(n.entries)
	minFill := int(t.cfg.MinFillRatio * float64(total))
	if minFill < 1 {
		minFill = 1
	}

	type candidate struct {
		g1, g2  []int
		adapted []mds.MDS
		ratio   float64
	}
	var fallback *candidate // best-ratio partition seen, for forced splits

	for _, dim := range t.splitDimensionOrder(nodeMDS) {
		// The split dimension's relevant level decreases as far as needed:
		// on uniform data the coarse levels saturate (every subtree covers
		// every region, every brand, ...) and separation only exists at
		// finer levels, down to the leaf values in the worst case.
		for _, targets := range t.adaptationTargetLadder(nodeMDS, dim) {
			adapted := make([]mds.MDS, total)
			for i := range n.entries {
				a, err := t.describeEntryAt(&n.entries[i], n.leaf, targets)
				if err != nil {
					return insertResult{}, err
				}
				adapted[i] = a
			}
			g1, g2, err := t.hierarchySplit(adapted, dim, minFill)
			if err != nil {
				return insertResult{}, err
			}
			if len(g1) == 0 || len(g2) == 0 {
				continue
			}
			ratio, err := t.groupOverlapRatio(adapted, g1, g2)
			if err != nil {
				return insertResult{}, err
			}
			balanced := len(g1) >= minFill && len(g2) >= minFill
			if balanced && ratio <= t.cfg.MaxOverlapRatio {
				t.metrics.splitsHierarchy.Inc()
				return t.buildSplit(n, g1, g2, adapted)
			}
			if fallback == nil || ratio < fallback.ratio {
				fallback = &candidate{g1: g1, g2: g2, adapted: adapted, ratio: ratio}
			}
		}
	}

	// No acceptable split in any dimension (Fig. 5: "Create supernode").
	mayGrow := !t.cfg.DisableSupernodes &&
		(t.cfg.MaxSupernodeBlocks == 0 || n.blocks < t.cfg.MaxSupernodeBlocks)
	if mayGrow || fallback == nil {
		// fallback == nil cannot happen with ≥ 2 entries, but guard by
		// growing anyway.
		if n.blocks == 1 {
			t.metrics.supernodeCreated.Inc()
		} else {
			t.metrics.supernodeGrown.Inc()
		}
		n.blocks++
		return insertResult{}, nil
	}
	t.metrics.splitsForced.Inc()
	return t.buildSplit(n, fallback.g1, fallback.g2, fallback.adapted)
}

// adaptationTargets returns the per-dimension target levels for a split
// along splitDim: the node's relevant levels everywhere, one level lower
// in the split dimension — the "relevant level may be decreased by one"
// of §3.2, which is what gives the hierarchy split values to separate
// when the node holds a single value (or ALL) in the split dimension.
func (t *Tree) adaptationTargets(nodeMDS mds.MDS, splitDim int) []int {
	ladder := t.adaptationTargetLadder(nodeMDS, splitDim)
	return ladder[0]
}

// adaptationTargetLadder returns the sequence of target-level vectors for
// a split along splitDim: the node's relevant levels everywhere, with the
// split dimension lowered by one, two, ... down to the leaf level.
func (t *Tree) adaptationTargetLadder(nodeMDS mds.MDS, splitDim int) [][]int {
	space := t.space()
	base := make([]int, len(nodeMDS))
	for i := range nodeMDS {
		base[i] = nodeMDS[i].Level
	}
	start := base[splitDim]
	if start == hierarchy.LevelALL {
		start = space[splitDim].TopLevel() + 1
	}
	var ladder [][]int
	for level := start - 1; level >= 0; level-- {
		targets := make([]int, len(base))
		copy(targets, base)
		targets[splitDim] = level
		ladder = append(ladder, targets)
	}
	if len(ladder) == 0 {
		// Split dimension already at the leaf level: separate there.
		targets := make([]int, len(base))
		copy(targets, base)
		ladder = append(ladder, targets)
	}
	return ladder
}

// describeEntryAt returns the minimal describing MDS of an entry's content
// at the target levels. When the entry's stored MDS is at or below the
// targets it is simply lifted; when the entry is *coarser* than a target
// in some dimension (its MDS says ALL or a single high-level value, but
// the split needs one level finer), the description is derived from the
// entry's subtree — Adapt can only generalize, so the finer values must
// come from below. Records ground the recursion: a record is describable
// at every level.
func (t *Tree) describeEntryAt(e *entry, leaf bool, targets []int) (mds.MDS, error) {
	space := t.space()
	needDescent := false
	if !leaf {
		for i, target := range targets {
			if levelAboveInt(e.MDS[i].Level, target) {
				needDescent = true
				break
			}
		}
	}
	if !needDescent {
		return mds.AdaptToLevels(space, e.MDS, targets)
	}
	child, err := t.getNode(e.Child)
	if err != nil {
		return nil, err
	}
	return t.describeNodeAt(child, targets)
}

// describeNodeAt computes the minimal describing MDS of a whole node's
// content at the target levels.
func (t *Tree) describeNodeAt(n *node, targets []int) (mds.MDS, error) {
	members := make([]mds.MDS, len(n.entries))
	for i := range n.entries {
		m, err := t.describeEntryAt(&n.entries[i], n.leaf, targets)
		if err != nil {
			return nil, err
		}
		members[i] = m
	}
	return mds.Cover(t.space(), members...)
}

// levelAboveInt mirrors mds's level ordering with LevelALL on top.
func levelAboveInt(a, b int) bool {
	if a == b {
		return false
	}
	if a == hierarchy.LevelALL {
		return true
	}
	if b == hierarchy.LevelALL {
		return false
	}
	return a > b
}

// splitDimensionOrder returns the dimensions ordered by decreasing
// hierarchy level of the node MDS ("the algorithm always selects the
// dimension with the highest hierarchy level of the elements of the MDS"),
// ties broken by fewer values (more concentrated, hence more separable).
func (t *Tree) splitDimensionOrder(nodeMDS mds.MDS) []int {
	dims := make([]int, len(nodeMDS))
	for i := range dims {
		dims[i] = i
	}
	rank := func(d int) int {
		if nodeMDS[d].Level == hierarchy.LevelALL {
			return hierarchy.LevelALL
		}
		return nodeMDS[d].Level
	}
	sort.SliceStable(dims, func(a, b int) bool {
		ra, rb := rank(dims[a]), rank(dims[b])
		if ra != rb {
			return ra > rb
		}
		return len(nodeMDS[dims[a]].IDs) < len(nodeMDS[dims[b]].IDs)
	})
	return dims
}

// hierarchySplit is the quadratic split of Fig. 6 over level-adapted MDSs,
// splitting along one dimension. It returns the two groups as index lists
// into adapted.
//
// Seeds: the pair whose covering MDS is largest (most dead space if kept
// together). Then, repeatedly, the remaining MDS with the greatest
// difference between its enlargements of the two groups in the split
// dimension is assigned to the group with the minimum resulting overlap,
// ties broken by minimum sum of extensions (volume enlargement), then by
// minimum sum of volumes, then by fewer entries. Per Guttman's original
// quadratic split (which Fig. 6 is based on), once one group grows so
// large that the other needs every remaining MDS to reach the minimum
// fill, the remainder is assigned to the smaller group outright —
// without this rule the greedy loop degenerates on large supernodes,
// where the bigger group's cover swallows everything.
func (t *Tree) hierarchySplit(adapted []mds.MDS, dim, minFill int) (g1, g2 []int, err error) {
	space := t.space()
	k := len(adapted)
	if k < 2 {
		return nil, nil, nil
	}

	// Seed selection: pair with the largest covering MDS.
	seedA, seedB := -1, -1
	var worst float64 = -1
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			cover, err := mds.Cover(space, adapted[i], adapted[j])
			if err != nil {
				return nil, nil, err
			}
			v := cover.Volume()
			if v > worst {
				worst, seedA, seedB = v, i, j
			}
		}
	}

	g1, g2 = []int{seedA}, []int{seedB}
	cov1, cov2 := adapted[seedA], adapted[seedB]

	remaining := make([]int, 0, k-2)
	for i := 0; i < k; i++ {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}

	for len(remaining) > 0 {
		// Guttman's termination rule: if a group needs every remaining
		// entry just to reach the minimum fill, hand them all over.
		if len(g1)+len(remaining) <= minFill {
			g1 = append(g1, remaining...)
			break
		}
		if len(g2)+len(remaining) <= minFill {
			g2 = append(g2, remaining...)
			break
		}
		// Pick the MDS with the greatest difference between the two groups'
		// enlargements in the split dimension.
		pick := -1
		var pickDiff float64 = -1
		for ri, i := range remaining {
			e1, err := dimEnlargement(space, cov1, adapted[i], dim)
			if err != nil {
				return nil, nil, err
			}
			e2, err := dimEnlargement(space, cov2, adapted[i], dim)
			if err != nil {
				return nil, nil, err
			}
			diff := abs(float64(e1 - e2))
			if diff > pickDiff {
				pickDiff, pick = diff, ri
			}
		}
		i := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)

		grown1, err := mds.Cover(space, cov1, adapted[i])
		if err != nil {
			return nil, nil, err
		}
		grown2, err := mds.Cover(space, cov2, adapted[i])
		if err != nil {
			return nil, nil, err
		}
		// Criterion 1: minimum resulting overlap between the groups.
		ov1, err := mds.Overlap(space, grown1, cov2)
		if err != nil {
			return nil, nil, err
		}
		ov2, err := mds.Overlap(space, cov1, grown2)
		if err != nil {
			return nil, nil, err
		}
		into1 := false
		switch {
		case ov1 < ov2:
			into1 = true
		case ov1 > ov2:
			into1 = false
		default:
			// Criterion 2: minimum sum of extensions (volume enlargement).
			ext1 := grown1.Volume() - cov1.Volume()
			ext2 := grown2.Volume() - cov2.Volume()
			switch {
			case ext1 < ext2:
				into1 = true
			case ext1 > ext2:
				into1 = false
			default:
				// Criterion 3: minimum sum of volumes.
				switch {
				case grown1.Volume() < grown2.Volume():
					into1 = true
				case grown1.Volume() > grown2.Volume():
					into1 = false
				default:
					// Final tie: keep the groups balanced.
					into1 = len(g1) <= len(g2)
				}
			}
		}
		if into1 {
			g1 = append(g1, i)
			cov1 = grown1
		} else {
			g2 = append(g2, i)
			cov2 = grown2
		}
	}
	return g1, g2, nil
}

// dimEnlargement returns how many attribute values group cover g would gain
// in the split dimension by absorbing m.
func dimEnlargement(space mds.Space, g, m mds.MDS, dim int) (int, error) {
	union, err := mds.ExtensionIn(space, g, m, dim)
	if err != nil {
		return 0, err
	}
	own, err := mds.ExtensionIn(space, g, g, dim)
	if err != nil {
		return 0, err
	}
	return union - own, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// groupOverlapRatio measures overlap(G1,G2)/extension(G1,G2) of the two
// groups' covers — the "overlap is not too high" acceptance test.
func (t *Tree) groupOverlapRatio(adapted []mds.MDS, g1, g2 []int) (float64, error) {
	space := t.space()
	cov1, err := coverOf(space, adapted, g1)
	if err != nil {
		return 0, err
	}
	cov2, err := coverOf(space, adapted, g2)
	if err != nil {
		return 0, err
	}
	ov, err := mds.Overlap(space, cov1, cov2)
	if err != nil {
		return 0, err
	}
	if ov == 0 {
		return 0, nil
	}
	ext, err := mds.Extension(space, cov1, cov2)
	if err != nil {
		return 0, err
	}
	return ov / ext, nil
}

func coverOf(space mds.Space, adapted []mds.MDS, group []int) (mds.MDS, error) {
	members := make([]mds.MDS, len(group))
	for i, g := range group {
		members[i] = adapted[g]
	}
	return mds.Cover(space, members...)
}

// buildSplit materializes a chosen partition: the original node keeps
// group 1, a fresh sibling receives group 2, and both groups' describing
// MDSs — the covers of the *adapted* members, i.e. at the node's relevant
// levels with the split dimension one level lower — are returned to the
// parent together with the groups' aggregates.
func (t *Tree) buildSplit(n *node, g1, g2 []int, adapted []mds.MDS) (insertResult, error) {
	space := t.space()
	measures := t.schema.Measures()

	origMDS, err := coverOf(space, adapted, g1)
	if err != nil {
		return insertResult{}, err
	}
	newMDS, err := coverOf(space, adapted, g2)
	if err != nil {
		return insertResult{}, err
	}

	take := func(group []int) []entry {
		out := make([]entry, len(group))
		for i, g := range group {
			out[i] = n.entries[g]
		}
		return out
	}
	e1, e2 := take(g1), take(g2)

	sibling := t.newNode(n.leaf)
	n.entries = e1
	sibling.entries = e2
	n.blocks = blocksForEntries(len(e1), n.leaf, &t.cfg)
	sibling.blocks = blocksForEntries(len(e2), n.leaf, &t.cfg)
	t.markDirty(n)
	t.markDirty(sibling)

	// Refine the relevant levels of the fresh nodes: a narrow subtree can
	// usually be described at a much finer level without blowing up the
	// MDS, and finer descriptions mean more pruning and more materialized
	// hits on the query path.
	if origMDS, err = t.refineMDS(n, origMDS); err != nil {
		return insertResult{}, err
	}
	if newMDS, err = t.refineMDS(sibling, newMDS); err != nil {
		return insertResult{}, err
	}

	return insertResult{
		split:   true,
		newID:   sibling.id,
		origMDS: origMDS,
		newMDS:  newMDS,
		origAgg: n.aggregate(measures),
		newAgg:  sibling.aggregate(measures),
	}, nil
}

// refineMDS lowers the relevant level of every dimension of a node's MDS
// as long as the description at the finer level keeps at most
// Config.RefineBound values in that dimension. Refinement preserves
// coverage and minimality (the description is recomputed exactly from the
// subtree at each step) and realizes the paper's observation that node
// MDSs become more specific further down the tree.
func (t *Tree) refineMDS(n *node, m mds.MDS) (mds.MDS, error) {
	bound := t.cfg.RefineBound
	if bound <= 0 {
		return m, nil
	}
	space := t.space()
	levels := make([]int, len(m))
	for d := range m {
		levels[d] = m[d].Level
	}
	for changed := true; changed; {
		changed = false
		for d := range levels {
			var next int
			switch {
			case levels[d] == hierarchy.LevelALL:
				next = space[d].TopLevel()
			case levels[d] > 0:
				next = levels[d] - 1
			default:
				continue
			}
			cand := make([]int, len(levels))
			copy(cand, levels)
			cand[d] = next
			desc, err := t.describeNodeAt(n, cand)
			if err != nil {
				return nil, err
			}
			if len(desc[d].IDs) <= bound {
				m = desc
				levels = cand
				changed = true
			}
		}
	}
	return m, nil
}

// blocksForEntries returns the smallest block count whose capacity holds
// the given number of entries.
func blocksForEntries(entries int, leaf bool, cfg *Config) int {
	per := cfg.DirCapacity
	if leaf {
		per = cfg.LeafCapacity
	}
	b := (entries + per - 1) / per
	if b < 1 {
		b = 1
	}
	return b
}
