package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// nodeID is the logical identifier of a DC-tree node. Logical IDs are
// translated to storage extents through a table, so a node whose encoding
// outgrows (or shrinks below) its extent can be relocated without touching
// the pointers in its parent.
type nodeID uint64

const nilNode nodeID = 0

// extentRef locates a node's current extent. layout records the node
// encoding the extent holds (layoutV2/layoutV3, flatnode.go); zero means
// unspecified and is served by the decode path, which reads v2.
type extentRef struct {
	page   storage.PageID
	blocks int
	layout uint8
}

// Tree is a DC-tree over a data cube. It is safe for concurrent use:
// queries run under a read lock, mutations under a write lock — the
// structure stays continuously available for OLAP while single-record
// updates stream in, which is the paper's motivating scenario.
type Tree struct {
	mu     sync.RWMutex
	schema *cube.Schema
	cfg    Config
	store  storage.Store

	root    nodeID
	rootMDS mds.MDS // cover of the root's entries; Top for an empty tree
	height  int     // 1 = the root is a data node
	count   int64   // live data records

	nextID nodeID
	table  map[nodeID]extentRef
	// pendingFree holds extents superseded by in-memory changes; they are
	// released only after the next durable metadata swap (shadow paging).
	pendingFree []extentRef

	// wal, when non-nil (NewDurable/OpenDurable), makes every acknowledged
	// Insert/Delete durable via write-ahead logging with group commit.
	// checkpointLSN is the WAL frontier the last durable checkpoint
	// superseded: recovery replays only records strictly beyond it.
	wal           *walState
	checkpointLSN uint64

	// replica marks an apply-only tree (OpenReplica/NewReplica): local
	// mutations are rejected and state advances solely through
	// ApplyReplicated, which replays the primary's WAL records and stamps
	// appliedLSN (guarded by t.mu) — the replica's durability frontier,
	// persisted by its checkpoints in place of a WAL LSN.
	replica    bool
	appliedLSN uint64

	// epoch is the replication fencing epoch (guarded by t.mu, persisted
	// in meta v7 and stamped into WAL segment headers). Every promotion
	// bumps it; ApplyReplicated rejects records from lower epochs with
	// ErrFenced, so a deposed primary that keeps writing can never corrupt
	// a follower that has acknowledged the new timeline. Zero on trees
	// that predate fencing — no promotion has ever occurred, so nothing is
	// fenced.
	epoch uint64

	// dictMu guards dictPending: dictionary registration deltas observed by
	// the hierarchy hooks (which fire inside Schema.InternRecord, outside
	// t.mu) and drained into a walOpDictDelta record immediately before the
	// next mutation record, so replayed mutations always find their IDs
	// already registered. Only populated when WALRecordFormat is 2.
	dictMu      sync.Mutex
	dictPending []dictDelta

	// ckptMu serializes checkpoints (Checkpoint/Flush/FlushSync) end to
	// end. Lock order: ckptMu strictly before t.mu — a checkpoint acquires
	// t.mu twice (capture, install) and nothing that holds t.mu may start a
	// checkpoint. cp is the optional auto-trigger goroutine
	// (CheckpointInterval/CheckpointDirtyBytes).
	ckptMu sync.Mutex
	cp     *checkpointer

	// nc is the sharded node cache: hits on the concurrent read path take
	// one shard RLock, misses decode once per node via singleflight.
	nc *nodeCache

	// MVCC snapshots. versionSeq mints monotonic version numbers and
	// latestVersionID/latestVersionLSN stamp the most recent snapshot; all
	// three are guarded by t.mu and persisted in meta v5 so numbers never
	// repeat across restarts. versions holds the live handles (guarded by
	// vmu — never acquired while holding t.mu is fine, but the reverse
	// order is forbidden). pins is the extent refcount ledger shared with
	// checkpoint installs: a live version's extents are parked, not freed.
	versionSeq       uint64
	latestVersionID  uint64
	latestVersionLSN uint64
	vmu              sync.Mutex
	versions         map[uint64]*Version
	pins             *storage.Pins
	// versionGen counts version-registry changes (snapshot, release) and
	// versionGenPersisted records the generation the last durable metadata
	// swap captured; both guarded by t.mu. A checkpoint may be skipped as a
	// no-op only when they are equal — otherwise the meta blob's version
	// manifests (v8) would go stale and a released version could resurrect
	// (or an unreleased one vanish) on reopen.
	versionGen          uint64
	versionGenPersisted uint64

	// qcPool recycles queryCtx mask arenas so steady-state queries build
	// their membership masks without allocating.
	qcPool sync.Pool

	// viewer is the store's zero-copy view interface, when it has one
	// (PagedStore mmap views, MemStore in-memory extents). Clean layout-v3
	// nodes are then queried in place as flatNodes instead of being decoded
	// onto the heap. noZeroCopy turns the flat path off at runtime
	// (SetZeroCopyReads) — benchmarks compare the two paths on one tree.
	viewer     storage.ExtentViewer
	noZeroCopy atomic.Bool

	// metrics is the always-on observability instrumentation (atomic-only
	// on hot paths); slowHook optionally records queries over a latency
	// threshold. Both are usable at their zero value.
	metrics  treeMetrics
	slowHook atomic.Pointer[slowQueryHook]
}

// New creates an empty DC-tree on the given store. The store's metadata
// area becomes owned by the tree (Flush overwrites it).
func New(store storage.Store, schema *cube.Schema, cfg Config) (*Tree, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.BlockSize != store.BlockSize() {
		return nil, fmt.Errorf("%w: config block size %d != store block size %d",
			ErrBadConfig, cfg.BlockSize, store.BlockSize())
	}
	t := &Tree{
		schema:   schema,
		cfg:      cfg,
		store:    store,
		rootMDS:  mds.Top(schema.Dims()),
		height:   1,
		nextID:   1,
		table:    make(map[nodeID]extentRef),
		nc:       newNodeCache(),
		versions: make(map[uint64]*Version),
		pins:     storage.NewPins(),
	}
	t.viewer, _ = store.(storage.ExtentViewer)
	root := t.newNode(true)
	t.root = root.id
	return t, nil
}

// Schema returns the tree's cube schema.
func (t *Tree) Schema() *cube.Schema { return t.schema }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Count returns the number of live data records.
func (t *Tree) Count() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the number of node levels (1 = the root is a data node).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// RootMDS returns a copy of the MDS describing the whole indexed cube.
func (t *Tree) RootMDS() mds.MDS {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rootMDS.Clone()
}

// space is shorthand for the schema's dimension hierarchies.
func (t *Tree) space() mds.Space { return t.schema.Space() }

// newNode allocates a fresh, cached, dirty node. Storage extents are
// assigned lazily at Flush time.
func (t *Tree) newNode(leaf bool) *node {
	id := t.nextID
	t.nextID++
	n := &node{id: id, leaf: leaf, blocks: 1}
	t.nc.putNew(n)
	return n
}

// getNode returns a node, faulting it from the store if necessary. Hits
// take only a shard read lock; concurrent misses on the same node decode
// its extent once (singleflight) and share the result.
func (t *Tree) getNode(id nodeID) (*node, error) {
	if n := t.nc.get(id); n != nil {
		t.metrics.cacheHits.Inc()
		return n, nil
	}
	t.metrics.cacheMisses.Inc()
	n, shared, err := t.nc.fault(id, func() (*node, error) { return t.loadNode(id) })
	if shared {
		t.metrics.cacheFaultsShared.Inc()
	}
	return n, err
}

// loadNode reads and decodes a node's extent from the store, dispatching
// on the extent's recorded layout.
func (t *Tree) loadNode(id nodeID) (*node, error) {
	ref, ok := t.table[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d has no extent", ErrCorrupt, id)
	}
	payload, _, err := t.store.Read(ref.page)
	if err != nil {
		return nil, fmt.Errorf("dctree: reading node %d: %w", id, err)
	}
	if ref.layout == layoutV3 {
		return decodeFlatNode(id, payload, t.schema.Dims(), t.schema.Measures())
	}
	return decodeNode(id, payload, t.schema.Dims(), t.schema.Measures())
}

// getView resolves a node for a read-only descent. Cached (hot or dirty)
// nodes come back as heap nodes; a clean layout-v3 node whose store can
// serve zero-copy views comes back as a flatNode over the extent bytes —
// no decode, no cache insertion (per-visit view construction is index
// math, and keeping flat reads out of the cache leaves its capacity to the
// write path). Everything else falls back to the decode path. Caller holds
// t.mu.RLock for the whole descent, which keeps the viewed extent from
// being freed and rewritten mid-walk.
func (t *Tree) getView(id nodeID) (nodeView, error) {
	if n := t.nc.get(id); n != nil {
		t.metrics.cacheHits.Inc()
		return nodeView{n: n}, nil
	}
	if t.viewer != nil && !t.noZeroCopy.Load() {
		if ref, ok := t.table[id]; ok && ref.layout == layoutV3 {
			if payload, _, err := t.viewer.ViewExtent(ref.page); err == nil {
				f, ferr := makeFlatNode(id, payload, t.schema.Dims(), t.schema.Measures())
				if ferr != nil {
					// A structurally bad frame from a checksum-clean extent:
					// re-reading would yield the same bytes, so fail closed.
					return nodeView{}, ferr
				}
				t.metrics.flatNodeReads.Inc()
				return nodeView{f: f}, nil
			}
			// View not servable (or an integrity error the checked file
			// read will reproduce and report): take the decode path.
		}
	}
	t.metrics.decodeFallbacks.Inc()
	n, err := t.getNode(id)
	return nodeView{n: n}, err
}

// SetZeroCopyReads toggles the flat-node read path at runtime (default
// on). Off, every descent decodes nodes onto the heap through the node
// cache — the pre-v3 behavior; dcbench -mmap uses the toggle to compare
// the two paths over the same image.
func (t *Tree) SetZeroCopyReads(enabled bool) { t.noZeroCopy.Store(!enabled) }

// markDirty flags a node for the next Flush.
func (t *Tree) markDirty(n *node) {
	t.nc.markDirty(n.id)
}

// dropNode removes a node from the cache and schedules its extent (if
// any) for release. The release happens after the next durable metadata
// swap: freeing immediately would let a reused extent corrupt the tree
// the persisted metadata still references if the process dies before the
// next Flush.
func (t *Tree) dropNode(id nodeID) error {
	t.nc.drop(id)
	if ref, ok := t.table[id]; ok {
		delete(t.table, id)
		t.pendingFree = append(t.pendingFree, ref)
	}
	return nil
}

// EvictCache drops all clean nodes from the in-memory cache; subsequent
// accesses fault them back from the store. Dirty nodes are kept: their
// in-memory state has not been persisted yet, so evicting them would lose
// every mutation since the last Flush. Used by tests and by benchmarks that
// measure cold-cache I/O.
func (t *Tree) EvictCache() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nc.evictClean()
}

// CachedNodes reports how many nodes are resident in the cache.
func (t *Tree) CachedNodes() int {
	return t.nc.len()
}

// Store exposes the underlying store (for I/O statistics in experiments).
func (t *Tree) Store() storage.Store { return t.store }
