package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/obs"
	"github.com/dcindex/dctree/internal/storage"
)

// FollowerOptions configures a Follower. The zero value is usable with a
// Dir: defaults fill in poll cadence, chunk size and tree configuration.
type FollowerOptions struct {
	// Dir is the follower's home directory: the replica store
	// (replica.dc), the WAL mirror (wal.*.wal) and the replica's
	// checkpoints all live here. Created if absent.
	Dir string
	// ID is the follower's stable identity, sent with every
	// acknowledgment — the primary's quorum registry and retention floor
	// are keyed by it, so two followers must not share an ID and one
	// follower should keep its ID across restarts. Empty selects Dir.
	ID string
	// Config configures the replica tree when bootstrapping a brand-new
	// follower (block size, node capacities …). It should match the
	// primary's; zero fields take core defaults. Ignored when Dir already
	// holds a replica store.
	Config core.Config
	// Poll is the tailing interval. Zero selects DefaultPoll.
	Poll time.Duration
	// ChunkBytes bounds a single segment range read. Zero selects
	// DefaultChunkBytes.
	ChunkBytes int
	// CheckpointEvery is the replica checkpoint cadence. Checkpoints bound
	// restart replay and let the mirror prune shipped segments; zero
	// checkpoints only at Promote and Close.
	CheckpointEvery time.Duration
	// PromoteAfter arms the promotion timer: once the source has reported
	// unhealthy for this long continuously, Promotable reports true (the
	// follower never promotes on its own — the operator, or dctool
	// replica -auto-promote, calls Promote). Zero disarms the timer.
	PromoteAfter time.Duration
	// WAL configures the mirror when it is reopened as the promoted
	// tree's write-ahead log.
	WAL storage.WALOptions
	// PoolBytes bounds the replica store's buffer pool (≤ 0 default).
	PoolBytes int
}

// DefaultPoll is the follower's tailing interval when none is configured.
const DefaultPoll = 50 * time.Millisecond

// DefaultChunkBytes bounds a single shipping read when none is configured.
const DefaultChunkBytes = 256 << 10

// Follower tails a Source into a local replica: mirrored WAL segments
// plus an apply-only tree that serves read-only queries. Create with
// NewFollower, read through Tree, retire with Close — or take over from a
// dead primary with Promote.
type Follower struct {
	src   Source
	opts  FollowerOptions
	store *storage.PagedStore
	sh    *shipper

	mu        sync.Mutex
	tree      *core.Tree // replica; nil after promotion
	promoted  *core.Tree // read-write tree after Promote
	lastErr   error
	downSince time.Time // zero while the source is healthy
	lastCkpt  time.Time
	closed    bool

	metrics followerMetrics

	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once
}

// followerMetrics instruments the shipping loop (atomics only — read
// concurrently by Metrics and Families).
type followerMetrics struct {
	segmentsShipped obs.Counter
	bytesShipped    obs.Counter
	recordsApplied  obs.Counter
	resyncs         obs.Counter
	checkpoints     obs.Counter
	promotions      obs.Counter
	lagBytes        obs.Gauge
	lagLSN          obs.Gauge
	healthy         obs.Gauge
}

// Metrics is a point-in-time snapshot of a follower's replication state.
type Metrics struct {
	// AppliedLSN is the replica's applied frontier.
	AppliedLSN uint64
	// MirroredLSN is the highest LSN durably copied into the local mirror
	// (may run ahead of AppliedLSN only transiently within a batch).
	MirroredLSN uint64
	// LagBytes is the source log volume not yet mirrored, from the last
	// completed pass.
	LagBytes int64
	// LagLSN is the record-count lag behind the primary's tip, when the
	// transport knows the tip (0 otherwise).
	LagLSN uint64
	// SegmentsShipped counts mirror segment files begun.
	SegmentsShipped int64
	// BytesShipped counts frame bytes appended to the mirror.
	BytesShipped int64
	// RecordsApplied counts records replayed into the replica tree.
	RecordsApplied int64
	// Resyncs counts listing refreshes forced by segments vanishing
	// mid-read (primary truncation or recycling).
	Resyncs int64
	// Checkpoints counts replica checkpoints taken by the follower loop.
	Checkpoints int64
	// Healthy reports the source's last health verdict.
	Healthy bool
	// UnhealthyFor is how long the source has been continuously
	// unhealthy (0 when healthy).
	UnhealthyFor time.Duration
	// Promoted reports whether Promote has completed.
	Promoted bool
}

// NewFollower opens (or bootstraps) the follower state under
// opts.Dir and starts the tailing loop.
//
// Bootstrap: when the directory holds no replica store, the source's
// schema blob builds an empty replica and the log is replayed from its
// oldest retained record — which must cover LSN 1 (primary configured
// with a retention floor from birth) or the bootstrap fails with ErrGap.
// When the directory holds a store (a restarted follower, or an offline
// copy of a primary checkpoint placed there), replay resumes strictly
// past its checkpoint LSN.
func NewFollower(src Source, opts FollowerOptions) (*Follower, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("repl: FollowerOptions.Dir is required")
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = DefaultChunkBytes
	}
	if opts.ID == "" {
		opts.ID = opts.Dir
	}
	if err := opts.Config.Normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	storePath := StorePath(opts.Dir)
	_, statErr := os.Stat(storePath)
	fresh := os.IsNotExist(statErr)

	store, err := storage.OpenPagedStore(storePath, opts.Config.BlockSize, opts.PoolBytes)
	if err != nil {
		return nil, err
	}
	var tree *core.Tree
	if fresh {
		blob, err := src.Schema()
		if err == nil {
			var sch *cube.Schema
			if sch, err = core.DecodeSchema(blob); err == nil {
				tree, err = core.NewReplica(store, sch, opts.Config)
			}
		}
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("repl: bootstrapping replica: %w", err)
		}
	} else {
		tree, err = core.OpenReplica(store)
		if err != nil {
			store.Close()
			return nil, err
		}
	}

	m, err := openMirror(MirrorPrefix(opts.Dir))
	if err == nil {
		// Restart path: fold mirrored records past the checkpoint back in
		// before tailing; ApplyReplicated skips everything already inside.
		err = m.replay(tree.ApplyReplicated)
	}
	if err != nil {
		tree.Close()
		store.Close()
		return nil, err
	}

	f := &Follower{
		src:   src,
		opts:  opts,
		store: store,
		tree:  tree,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	f.sh = &shipper{
		src:   src,
		m:     m,
		chunk: opts.ChunkBytes,
		floor: tree.AppliedLSN() + 1,
		// Epoch seed: the mirror's newest segment, or — when checkpoints
		// pruned the mirror past a promotion point — the replica's
		// persisted epoch. Whichever is higher is what this follower has
		// durably observed.
		epoch: max(m.epoch(), tree.Epoch()),
		apply: tree.ApplyReplicated,
	}
	f.metrics.healthy.Set(1)
	f.lastCkpt = time.Now()
	go f.run()
	return f, nil
}

// StorePath returns the replica store file inside a follower directory.
func StorePath(dir string) string { return filepath.Join(dir, "replica.dc") }

// MirrorPrefix returns the WAL mirror prefix inside a follower directory.
func MirrorPrefix(dir string) string { return filepath.Join(dir, "wal") }

// run is the tailing loop: ship, sync, acknowledge, checkpoint, repeat.
func (f *Follower) run() {
	defer close(f.done)
	t := time.NewTicker(f.opts.Poll)
	defer t.Stop()
	for {
		f.pass()
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
	}
}

// pass performs one shipping pass plus the bookkeeping around it.
func (f *Follower) pass() {
	prog, err := f.sh.runOnce()
	f.note(prog)
	if err == nil && prog.bytes > 0 {
		err = f.sh.m.sync()
	}
	if err == nil {
		// Acknowledge only the durable mirror frontier: the primary may
		// then truncate those records, and this follower can still
		// restart from its own mirror. The ack carries this follower's
		// identity and epoch; ErrFenced back means the SOURCE is a deposed
		// primary (this follower has durably seen a newer timeline).
		err = f.src.Ack(AckInfo{Follower: f.opts.ID, Epoch: f.sh.epoch, LSN: f.sh.m.syncedLSN()})
	}

	healthy := err == nil && f.src.Healthy()

	f.mu.Lock()
	f.lastErr = err
	if healthy {
		f.downSince = time.Time{}
		f.metrics.healthy.Set(1)
	} else {
		if f.downSince.IsZero() {
			f.downSince = time.Now()
		}
		f.metrics.healthy.Set(0)
	}
	ckpt := err == nil && f.opts.CheckpointEvery > 0 &&
		time.Since(f.lastCkpt) >= f.opts.CheckpointEvery
	if ckpt {
		f.lastCkpt = time.Now()
	}
	tree := f.tree
	f.mu.Unlock()

	if ckpt && tree != nil {
		f.checkpoint(tree)
	}
}

// note folds one pass's progress into the counters and lag gauges.
func (f *Follower) note(prog shipProgress) {
	f.metrics.segmentsShipped.Add(int64(prog.segments))
	f.metrics.bytesShipped.Add(prog.bytes)
	f.metrics.recordsApplied.Add(int64(prog.frames))
	f.metrics.resyncs.Add(int64(prog.resyncs))
	f.metrics.lagBytes.Set(prog.lagBytes)
	if prog.tip > 0 {
		applied := f.AppliedLSN()
		if prog.tip > applied {
			f.metrics.lagLSN.Set(int64(prog.tip - applied))
		} else {
			f.metrics.lagLSN.Set(0)
		}
	}
}

// checkpoint persists the replica (applied frontier included) and prunes
// mirror segments the checkpoint has subsumed. The mirror was fsynced by
// the pass that preceded it, so the checkpoint can never claim records
// the mirror might lose.
func (f *Follower) checkpoint(tree *core.Tree) {
	applied := tree.AppliedLSN()
	if err := tree.Flush(); err != nil {
		f.mu.Lock()
		f.lastErr = err
		f.mu.Unlock()
		return
	}
	f.metrics.checkpoints.Inc()
	if _, err := f.sh.m.prune(applied); err != nil {
		f.mu.Lock()
		f.lastErr = err
		f.mu.Unlock()
	}
}

// Tree returns the replica tree for read-only queries (Execute, Scan,
// VersionByID …). Nil once the follower has been promoted or closed.
func (f *Follower) Tree() *core.Tree {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tree
}

// AppliedLSN returns the replica's applied frontier (0 after promotion —
// read the promoted tree instead).
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	tree := f.tree
	f.mu.Unlock()
	if tree == nil {
		return 0
	}
	return tree.AppliedLSN()
}

// Err returns the most recent shipping error (nil while healthy). ErrGap
// is terminal: the follower must be re-bootstrapped.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Healthy reports the source's last health verdict.
func (f *Follower) Healthy() bool { return f.metrics.healthy.Load() == 1 }

// Promotable reports whether the promotion timer has expired: the source
// has been continuously unhealthy for at least PromoteAfter. Always false
// with PromoteAfter zero.
func (f *Follower) Promotable() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.PromoteAfter <= 0 || f.downSince.IsZero() {
		return false
	}
	return time.Since(f.downSince) >= f.opts.PromoteAfter
}

// Metrics snapshots the follower's replication state.
func (f *Follower) Metrics() Metrics {
	f.mu.Lock()
	down := f.downSince
	promoted := f.promoted != nil
	f.mu.Unlock()
	m := Metrics{
		AppliedLSN:      f.AppliedLSN(),
		MirroredLSN:     f.sh.m.syncedLSN(),
		LagBytes:        f.metrics.lagBytes.Load(),
		LagLSN:          uint64(f.metrics.lagLSN.Load()),
		SegmentsShipped: f.metrics.segmentsShipped.Load(),
		BytesShipped:    f.metrics.bytesShipped.Load(),
		RecordsApplied:  f.metrics.recordsApplied.Load(),
		Resyncs:         f.metrics.resyncs.Load(),
		Checkpoints:     f.metrics.checkpoints.Load(),
		Healthy:         f.metrics.healthy.Load() == 1,
		Promoted:        promoted,
	}
	if !down.IsZero() {
		m.UnhealthyFor = time.Since(down)
	}
	return m
}

// Families renders the follower's metrics in Prometheus exposition
// format, complementing the replica tree's own Families.
func (f *Follower) Families() []obs.Family {
	m := f.Metrics()
	healthy := 0.0
	if m.Healthy {
		healthy = 1
	}
	return []obs.Family{
		obs.GaugeFamily("dctree_repl_applied_lsn", "Replica applied frontier (LSN).", float64(m.AppliedLSN)),
		obs.GaugeFamily("dctree_repl_lag_lsn", "Records behind the primary tip (0 when unknown).", float64(m.LagLSN)),
		obs.GaugeFamily("dctree_repl_lag_bytes", "Source log bytes not yet mirrored.", float64(m.LagBytes)),
		obs.CounterFamily("dctree_repl_segments_shipped_total", "Mirror segment files begun.", m.SegmentsShipped),
		obs.CounterFamily("dctree_repl_bytes_shipped_total", "Frame bytes appended to the mirror.", m.BytesShipped),
		obs.CounterFamily("dctree_repl_records_applied_total", "Records replayed into the replica.", m.RecordsApplied),
		obs.CounterFamily("dctree_repl_resyncs_total", "Listing refreshes after a segment vanished mid-read.", m.Resyncs),
		obs.CounterFamily("dctree_repl_checkpoints_total", "Replica checkpoints taken by the follower.", m.Checkpoints),
		obs.CounterFamily("dctree_repl_promotions_total", "Promotions completed (0 or 1).", f.metrics.promotions.Load()),
		obs.GaugeFamily("dctree_repl_source_healthy", "1 while the source reports healthy.", healthy),
	}
}

// Promote turns the follower into a primary: stop tailing, drain whatever
// the source still exposes (best effort — it is usually dead), fsync the
// mirror, checkpoint the replica, and reopen the store read-write with
// the mirror as its write-ahead log. The returned tree owns the follower's
// store; close it with its own Close when done. The follower itself is
// finished — only Metrics and Close remain usable.
//
// Zero acknowledged-write loss: every record the old primary's group
// commit acknowledged was fsynced into its log, and the drain pass reads
// sealed segments in full and the final segment to its last whole frame —
// so the promoted tree contains every acknowledged write that reached the
// transport.
func (f *Follower) Promote() (*core.Tree, error) {
	f.mu.Lock()
	if f.promoted != nil {
		p := f.promoted
		f.mu.Unlock()
		return p, ErrPromoted
	}
	if f.closed || f.tree == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("repl: promote on a closed follower")
	}
	f.mu.Unlock()

	f.halt()
	// Final drain: pick up anything shipped between the last pass and the
	// primary's death. Errors are expected (the source may be gone).
	if prog, err := f.sh.runOnce(); err == nil {
		f.note(prog)
	}
	if err := f.sh.m.close(); err != nil {
		return nil, err
	}

	f.mu.Lock()
	tree := f.tree
	f.tree = nil
	f.mu.Unlock()
	// Close checkpoints the replica, stamping the applied frontier; the
	// subsequent open replays only mirror records past it (normally none).
	if err := tree.Close(); err != nil {
		return nil, err
	}
	rw, err := core.OpenDurableOpts(f.store, MirrorPrefix(f.opts.Dir), f.opts.WAL)
	if err != nil {
		return nil, err
	}
	// Fence the old timeline before the first write is accepted: bump the
	// epoch and rotate onto a segment stamped with it (durable by
	// creation). From here on the old primary's records are refused by
	// every follower that hears from this tree, and its own write path is
	// poisoned by the first acknowledgment that reaches it.
	if _, err := rw.BumpEpoch(); err != nil {
		rw.Close()
		return nil, err
	}
	f.mu.Lock()
	f.promoted = rw
	f.mu.Unlock()
	f.metrics.promotions.Inc()
	return rw, nil
}

// halt stops the tailing loop (idempotent).
func (f *Follower) halt() {
	f.stopped.Do(func() { close(f.stop) })
	<-f.done
}

// Close stops the follower and closes the replica tree, mirror and store
// (a later NewFollower resumes from them). After promotion, close the
// promoted tree first — Close then only releases the underlying store.
func (f *Follower) Close() error {
	f.halt()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	tree := f.tree
	f.tree = nil
	f.mu.Unlock()
	var err error
	if f.sh != nil {
		err = f.sh.m.sync()
	}
	if tree != nil {
		if cerr := tree.Close(); err == nil {
			err = cerr
		}
	}
	if f.sh != nil {
		if cerr := f.sh.m.close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.store.Close(); err == nil {
		err = cerr
	}
	return err
}
