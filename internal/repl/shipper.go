package repl

import (
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/storage"
)

// shipper runs the transport-agnostic tailing loop: poll the source's
// segment listing, copy newly visible whole frames into the mirror, and
// hand each record to the apply callback with its LSN. One shipper pass
// (runOnce) makes progress up to the source's current frontier; the
// follower drives passes on its poll interval, and the stress tests drive
// them in a tight loop against a log being rotated, recycled and
// truncated underneath.
type shipper struct {
	src   Source
	m     *mirror
	chunk int
	// floor is the first LSN the tree still needs (applied+1), consulted
	// only while the mirror is empty to pick the starting segment.
	floor uint64
	// epoch is the follower's fencing epoch: the highest epoch observed in
	// segments actually mirrored (seeded from the mirror and the replica
	// checkpoint at startup). A source whose newest segment falls below
	// it, or a stale-epoch segment offering new frames, is a deposed
	// primary and stops the pass with ErrFenced. Only the shipping
	// goroutine touches it.
	epoch uint64
	// apply receives each shipped record after its frames are in the
	// mirror, with the epoch of the segment it came from. May be nil
	// (mirror-only shipping).
	apply func(epoch, lsn uint64, payload []byte) error
}

// shipProgress summarizes one runOnce pass.
type shipProgress struct {
	frames   int   // records shipped and applied
	bytes    int64 // frame bytes appended to the mirror
	segments int   // new mirror segments begun
	resyncs  int   // ErrSegmentGone encounters (listing refresh needed)
	lagBytes int64 // source bytes beyond the mirror after the pass
	tip      uint64
}

// runOnce ships everything the source currently exposes. A segment
// vanishing mid-read (truncation or recycling on the primary) ends the
// pass early and counts a resync — the next pass starts from a fresh
// listing. ErrGap is permanent: the source no longer holds the records
// the mirror needs next.
func (sh *shipper) runOnce() (shipProgress, error) {
	var prog shipProgress
	segs, err := sh.src.Segments()
	if err != nil {
		return prog, err
	}
	if t, ok := sh.src.(Tipper); ok {
		prog.tip = t.TipLSN()
	}
	if len(segs) == 0 {
		return prog, nil
	}
	// Fencing: the source's current epoch is its newest segment's. A
	// source behind the follower's own epoch is a deposed primary — stop
	// before mirroring a byte. (Old-epoch segments BELOW the newest are
	// legitimate pre-promotion history and individually checked later.)
	if srcEpoch := segs[len(segs)-1].Epoch; srcEpoch < sh.epoch {
		return prog, fmt.Errorf("%w: source epoch %d below follower epoch %d", ErrFenced, srcEpoch, sh.epoch)
	}

	// Position: the index of the first source segment to ship from.
	start := 0
	if sh.m.empty() {
		// Pick the segment containing the first LSN the tree needs. A
		// floor of 0 (fresh bootstrap) needs LSN 1, held by the very
		// first segment the primary ever wrote.
		floor := sh.floor
		if floor == 0 {
			floor = 1
		}
		start = -1
		for i, s := range segs {
			if s.FirstLSN <= floor {
				start = i
			}
		}
		if start < 0 {
			return prog, fmt.Errorf("%w: need lsn %d, source starts at %d", ErrGap, floor, segs[0].FirstLSN)
		}
	} else {
		last := sh.m.last()
		start = -1
		for i, s := range segs {
			if s.Index == last.index {
				if s.FirstLSN != last.firstLSN {
					return prog, fmt.Errorf("%w: source segment %d first lsn %d, mirror has %d", ErrMirrorCorrupt, s.Index, s.FirstLSN, last.firstLSN)
				}
				start = i
				break
			}
			if s.Index > last.index {
				// The source truncated the mirror's active segment; it may
				// only do so once the follower acknowledged it in full, so
				// the next segment must continue exactly at the cursor.
				if s.FirstLSN > sh.m.nextLSN() {
					return prog, fmt.Errorf("%w: need lsn %d, source resumes at %d", ErrGap, sh.m.nextLSN(), s.FirstLSN)
				}
				start = i
				break
			}
		}
		if start < 0 {
			// Every listed segment is older than the mirror's active one —
			// a stale or foreign listing; nothing to ship.
			return prog, nil
		}
	}

	for _, seg := range segs[start:] {
		mirrored, have := sh.m.sizeOf(seg.Index)
		// Fencing: new frames from an epoch below the follower's are the
		// old timeline still being written by a deposed primary. Already
		// fully mirrored old-epoch segments are fine — that is history.
		if seg.Epoch < sh.epoch && (!have || seg.Size > mirrored) {
			return prog, fmt.Errorf("%w: segment %d epoch %d below follower epoch %d", ErrFenced, seg.Index, seg.Epoch, sh.epoch)
		}
		if !have {
			if err := sh.m.beginSegment(seg.HeaderFor()); err != nil {
				return prog, err
			}
			prog.segments++
			mirrored = seg.HeaderSize
		}
		if seg.Epoch > sh.epoch {
			sh.epoch = seg.Epoch // the new timeline is now in the mirror
		}
		off, err := sh.shipSegment(seg, mirrored, &prog)
		if err != nil {
			if errors.Is(err, storage.ErrSegmentGone) {
				// Truncated or recycled under us; refresh next pass.
				prog.resyncs++
				return prog, nil
			}
			return prog, err
		}
		if seg.Sealed && off < seg.Size {
			// A sealed segment's frontier is all whole frames; stopping
			// short means the bytes on disk are damaged.
			return prog, fmt.Errorf("%w: sealed segment %d torn at %d/%d", storage.ErrWALCorrupt, seg.Index, off, seg.Size)
		}
		if off < seg.Size {
			break // torn tail on the active segment; wait for the rest
		}
	}

	// Residual lag: source bytes beyond what this pass mirrored.
	for _, seg := range segs[start:] {
		if mirrored, have := sh.m.sizeOf(seg.Index); have {
			if d := seg.Size - mirrored; d > 0 {
				prog.lagBytes += d
			}
		} else {
			prog.lagBytes += seg.Size - seg.HeaderSize
		}
	}
	return prog, nil
}

// shipSegment copies seg's bytes from offset off up to its listed
// frontier, appending whole frames to the mirror and applying each record.
// Returns the offset reached.
func (sh *shipper) shipSegment(seg storage.WALSegmentInfo, off int64, prog *shipProgress) (int64, error) {
	max := sh.chunk
	for off < seg.Size {
		if rem := seg.Size - off; int64(max) > rem {
			max = int(rem)
		}
		data, err := sh.src.ReadAt(seg, off, max)
		if err != nil {
			return off, err
		}
		payloads, validLen, err := storage.DecodeFrames(data)
		if err != nil {
			return off, err
		}
		if validLen == 0 {
			if len(data) == max && int64(max) < seg.Size-off {
				// Not a torn tail — a frame larger than the read window
				// starts here. Widen and retry.
				max *= 2
				continue
			}
			return off, nil // incomplete frame at the frontier
		}
		lsn := sh.m.nextLSN()
		if err := sh.m.append(data[:validLen], len(payloads)); err != nil {
			return off, err
		}
		if sh.apply != nil {
			for _, p := range payloads {
				if err := sh.apply(seg.Epoch, lsn, p); err != nil {
					return off, err
				}
				lsn++
			}
		}
		prog.frames += len(payloads)
		prog.bytes += validLen
		off += validLen
		max = sh.chunk
		// A chunk that ended inside a frame is re-read whole next
		// iteration from the new frame-aligned offset; an empty follow-up
		// read ends the loop via the validLen == 0 branch.
	}
	return off, nil
}
