package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Lease is the primary's liveness beacon for filesystem-transport
// followers: a file whose modification time the primary refreshes on a
// fixed heartbeat. A follower considers the primary dead when the file
// goes stale past its TTL or disappears — Stop removes it, so a clean
// primary shutdown releases waiting followers immediately.
//
// The lease is advisory, not a lock: it cannot fence a primary that is
// alive but wedged. Fencing epochs (see ErrFenced) are what actually
// kill a deposed primary's timeline; the lease only decides when a
// follower's promotion timer arms.
type Lease struct {
	path  string
	token string
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// leaseSeq disambiguates leases created by the same process in the same
// nanosecond (tests do this routinely).
var leaseSeq atomic.Uint64

// StartLease writes the lease file and begins refreshing it every
// interval until Stop. The interval should be a small fraction of the
// followers' TTL (StartLease(path, ttl/3) against LeaseFresh(path, ttl)
// is the conventional pairing).
//
// The file's content is a token unique to this Lease; Stop removes the
// file only while it still holds that token, so a stale holder shutting
// down late cannot delete a successor's live lease out from under it.
func StartLease(path string, interval time.Duration) (*Lease, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("repl: lease interval must be positive")
	}
	l := &Lease{
		path: path,
		token: fmt.Sprintf("%d-%d-%d\n",
			os.Getpid(), time.Now().UnixNano(), leaseSeq.Add(1)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := l.create(); err != nil {
		return nil, err
	}
	go func() {
		defer close(l.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				// A failed heartbeat (disk full, directory removed) is
				// indistinguishable from death to followers, which is the
				// correct failure direction; nothing to do but retry.
				_ = l.beat()
			}
		}
	}()
	return l, nil
}

// create writes the lease file atomically (temp + rename), so followers
// never observe a partially written token.
func (l *Lease) create() error {
	tmp, err := os.CreateTemp(filepath.Dir(l.path), ".lease-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(l.token); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// beat refreshes the lease file's modification time in place. Bumping
// the timestamp with Chtimes instead of rewriting the content keeps the
// heartbeat from racing readers with a momentarily empty file; the file
// is recreated (atomically) only when someone removed it.
func (l *Lease) beat() error {
	now := time.Now()
	err := os.Chtimes(l.path, now, now)
	if os.IsNotExist(err) {
		return l.create()
	}
	return err
}

// Stop halts the heartbeat and removes the lease file, signalling an
// intentional shutdown to followers. The removal is conditional: if the
// file no longer holds this Lease's token — a newer primary re-leased
// the same path — it is left alone. Safe to call more than once.
func (l *Lease) Stop() {
	l.once.Do(func() {
		close(l.stop)
		<-l.done
		if cur, err := os.ReadFile(l.path); err != nil || string(cur) != l.token {
			return
		}
		_ = os.Remove(l.path)
	})
}

// LeaseFresh reports whether the lease file at path exists and was
// refreshed within ttl — the follower-side liveness check.
//
// "Now" is the filesystem's notion of now, not the local clock: the
// check stats a freshly created probe file next to the lease and
// compares the two modification times. On a shared filesystem this
// makes the comparison immune to wall-clock skew between primary and
// follower hosts — both timestamps come from the same stamping
// authority. Residual skew remains on network filesystems whose clients
// stamp mtimes locally (e.g. NFS without server-side timestamps); keep
// TTLs comfortably above the mount's documented clock tolerance.
func LeaseFresh(path string, ttl time.Duration) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	now := time.Now()
	if probe, err := os.CreateTemp(filepath.Dir(path), ".lease-probe-*"); err == nil {
		name := probe.Name()
		probe.Close()
		if pst, err := os.Stat(name); err == nil {
			now = pst.ModTime()
		}
		os.Remove(name)
	}
	return now.Sub(st.ModTime()) <= ttl
}
