package repl

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Lease is the primary's liveness beacon for filesystem-transport
// followers: a file whose modification time the primary refreshes on a
// fixed heartbeat. A follower considers the primary dead when the file
// goes stale past its TTL or disappears — Stop removes it, so a clean
// primary shutdown releases waiting followers immediately.
//
// The lease is advisory, not a lock: it cannot fence a primary that is
// alive but wedged. Operators who need single-writer guarantees must
// ensure the old primary is down before promoting (see OPERATIONS.md).
type Lease struct {
	path string
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartLease writes the lease file and begins refreshing it every
// interval until Stop. The interval should be a small fraction of the
// followers' TTL (StartLease(path, ttl/3) against LeaseFresh(path, ttl)
// is the conventional pairing).
func StartLease(path string, interval time.Duration) (*Lease, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("repl: lease interval must be positive")
	}
	l := &Lease{path: path, stop: make(chan struct{}), done: make(chan struct{})}
	if err := l.beat(); err != nil {
		return nil, err
	}
	go func() {
		defer close(l.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				// A failed heartbeat (disk full, directory removed) is
				// indistinguishable from death to followers, which is the
				// correct failure direction; nothing to do but retry.
				_ = l.beat()
			}
		}
	}()
	return l, nil
}

// beat refreshes the lease file's modification time.
func (l *Lease) beat() error {
	return os.WriteFile(l.path, []byte(time.Now().UTC().Format(time.RFC3339Nano)+"\n"), 0o644)
}

// Stop halts the heartbeat and removes the lease file, signalling an
// intentional shutdown to followers. Safe to call more than once.
func (l *Lease) Stop() {
	l.once.Do(func() {
		close(l.stop)
		<-l.done
		_ = os.Remove(l.path)
	})
}

// LeaseFresh reports whether the lease file at path exists and was
// refreshed within ttl — the follower-side liveness check.
func LeaseFresh(path string, ttl time.Duration) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	return time.Since(st.ModTime()) <= ttl
}
