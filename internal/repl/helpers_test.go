package repl

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
)

// testSchema builds the same small TPC-D-like cube the core tests use:
// Customer (Region>Nation>Customer), Part (Brand>Part), Time (Year>Month)
// with one measure.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Brand")
	tim := hierarchy.MustNew("Time", "Month", "Year")
	return cube.MustNewSchema([]*hierarchy.Hierarchy{cust, part, tim}, "Price")
}

// genRecords interns n random records into the schema.
func genRecords(t testing.TB, s *cube.Schema, rng *rand.Rand, n int) []cube.Record {
	t.Helper()
	recs := make([]cube.Record, n)
	for i := range recs {
		r, err := s.InternRecord([][]string{
			{fmt.Sprintf("R%d", rng.Intn(4)), fmt.Sprintf("N%d", rng.Intn(12)), fmt.Sprintf("C%d", rng.Intn(500))},
			{fmt.Sprintf("B%d", rng.Intn(8)), fmt.Sprintf("P%d", rng.Intn(300))},
			{fmt.Sprintf("Y%d", rng.Intn(5)), fmt.Sprintf("M%d", rng.Intn(60))},
		}, []float64{math.Round(rng.Float64()*10000) / 100})
		if err != nil {
			t.Fatalf("InternRecord: %v", err)
		}
		recs[i] = r
	}
	return recs
}

// scanMultiset collects a tree's live records keyed by their full content.
func scanMultiset(t testing.TB, tr *core.Tree) map[string]int {
	t.Helper()
	ms := make(map[string]int)
	if err := tr.Scan(func(r cube.Record) bool {
		ms[fmt.Sprint(r.Coords, r.Measures)]++
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return ms
}

// assertTreesEqual compares two trees record-for-record via a sequential
// scan — the seqscan oracle for replication equality.
func assertTreesEqual(t testing.TB, want, got *core.Tree) {
	t.Helper()
	if w, g := want.Count(), got.Count(); w != g {
		t.Fatalf("count mismatch: want %d, got %d", w, g)
	}
	if w, g := scanMultiset(t, want), scanMultiset(t, got); !reflect.DeepEqual(w, g) {
		t.Fatalf("record multisets differ: %d vs %d distinct keys", len(w), len(g))
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
