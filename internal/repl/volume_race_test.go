//go:build race

package repl

// e2eInserts under the race detector: enough volume for segment rotation,
// background checkpoints and truncation to all interleave with the
// follower, without the instrumented run dominating CI. The full 50k
// acceptance volume runs in the uninstrumented test job.
const e2eInserts = 8_000
