package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/dcindex/dctree/internal/storage"
)

// HTTP transport: a Server exposes any Source over four GET endpoints,
// and HTTPSource is its client-side Source. The wire protocol is
// deliberately dumb — JSON listing plus raw byte ranges — so a follower
// can resume from any byte offset and nothing on the server holds
// per-follower state. Acknowledgements piggyback on the listing poll,
// carrying the follower's identity and fencing epoch; a server whose
// primary discovers from the epoch that it has been deposed answers
// 409 Conflict, which the client reports as ErrFenced.
//
//	GET /repl/v1/segments?ack=LSN&epoch=E&follower=ID -> {"tip":…,"segments":[…]}
//	    (409 Conflict when the ack's epoch fences the primary)
//	GET /repl/v1/segment?index=I&first=L&off=O&max=M -> raw bytes
//	    (410 Gone when the segment vanished or was recycled)
//	GET /repl/v1/schema            -> core.EncodeSchema blob
//	GET /repl/v1/health            -> 200 while the source is healthy
//
// See REPLICATION.md for the full wire reference.

// Server serves a Source to HTTP followers. Wrap a WALSource to ship from
// a live primary in-process, or a DirSource to ship someone else's
// segment directory (dctool ship).
type Server struct {
	src Source
}

// NewServer returns a shipping server over src.
func NewServer(src Source) *Server { return &Server{src: src} }

// Handler returns the server's routes, mountable on any mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/v1/segments", s.handleSegments)
	mux.HandleFunc("/repl/v1/segment", s.handleSegment)
	mux.HandleFunc("/repl/v1/schema", s.handleSchema)
	mux.HandleFunc("/repl/v1/health", s.handleHealth)
	return mux
}

// segmentJSON is one listing entry on the wire (Path stays server-side).
// Epoch and HeaderSize are absent (zero) when the server predates
// fencing; the client then assumes a v1 header and epoch 0.
type segmentJSON struct {
	Index      uint64 `json:"index"`
	FirstLSN   uint64 `json:"firstLSN"`
	Size       int64  `json:"size"`
	Sealed     bool   `json:"sealed"`
	Epoch      uint64 `json:"epoch,omitempty"`
	HeaderSize int64  `json:"headerSize,omitempty"`
}

// listingJSON is the /segments response body.
type listingJSON struct {
	// Tip is the primary's last assigned LSN, 0 when the underlying
	// source does not know it.
	Tip      uint64        `json:"tip"`
	Segments []segmentJSON `json:"segments"`
}

func (s *Server) handleSegments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if ack := q.Get("ack"); ack != "" {
		if lsn, err := strconv.ParseUint(ack, 10, 64); err == nil {
			info := AckInfo{Follower: q.Get("follower"), LSN: lsn}
			info.Epoch, _ = strconv.ParseUint(q.Get("epoch"), 10, 64)
			if info.Follower == "" {
				info.Follower = r.RemoteAddr
			}
			if err := s.src.Ack(info); errors.Is(err, ErrFenced) {
				// The primary behind this server has been deposed — tell
				// the follower so it stops polling a dead timeline.
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
		}
	}
	segs, err := s.src.Segments()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := listingJSON{Segments: make([]segmentJSON, 0, len(segs))}
	if t, ok := s.src.(Tipper); ok {
		out.Tip = t.TipLSN()
	}
	for _, seg := range segs {
		out.Segments = append(out.Segments, segmentJSON{
			Index: seg.Index, FirstLSN: seg.FirstLSN, Size: seg.Size, Sealed: seg.Sealed,
			Epoch: seg.Epoch, HeaderSize: seg.HeaderSize,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	index, err1 := strconv.ParseUint(q.Get("index"), 10, 64)
	first, err2 := strconv.ParseUint(q.Get("first"), 10, 64)
	off, err3 := strconv.ParseInt(q.Get("off"), 10, 64)
	max, err4 := strconv.Atoi(q.Get("max"))
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || max <= 0 {
		http.Error(w, "bad segment range parameters", http.StatusBadRequest)
		return
	}
	if max > 4<<20 {
		max = 4 << 20
	}
	// Resolve the segment's current path from a fresh listing; the
	// (index, firstLSN) identity the client pins is then re-verified by
	// the storage-layer header double-check inside ReadAt.
	segs, err := s.src.Segments()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, seg := range segs {
		if seg.Index != index {
			continue
		}
		if seg.FirstLSN != first {
			break // same index, different identity: recycled past the client
		}
		data, err := s.src.ReadAt(seg, off, max)
		if errors.Is(err, storage.ErrSegmentGone) {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
		return
	}
	http.Error(w, "segment gone", http.StatusGone)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	blob, err := s.src.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.src.Healthy() {
		http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// HTTPSource is the client side of a repl.Server: a Source whose listing,
// reads and schema come over HTTP. Health is the server's /health
// endpoint — an unreachable server counts as unhealthy, which is what
// arms a follower's promotion timer.
type HTTPSource struct {
	// Base is the server's root URL, e.g. "http://standby-src:7070".
	Base string
	// Client is the HTTP client to use; nil selects a client with
	// DefaultHTTPTimeout.
	Client *http.Client

	ack atomic.Pointer[AckInfo] // last acknowledgement (nil = none yet)
	tip atomic.Uint64
}

// DefaultHTTPTimeout bounds each shipping request when HTTPSource.Client
// is nil.
const DefaultHTTPTimeout = 10 * time.Second

func (s *HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: DefaultHTTPTimeout}
}

// get issues one GET and returns the body, translating 410 Gone into
// storage.ErrSegmentGone.
func (s *HTTPSource) get(path string) ([]byte, error) {
	resp, err := s.client().Get(s.Base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusGone:
		return nil, storage.ErrSegmentGone
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", ErrFenced, body)
	default:
		return nil, fmt.Errorf("repl: %s: %s: %s", path, resp.Status, body)
	}
}

// Segments polls the server's listing, piggybacking the latest
// acknowledgement.
func (s *HTTPSource) Segments() ([]storage.WALSegmentInfo, error) {
	path := "/repl/v1/segments"
	if a := s.ack.Load(); a != nil {
		path += "?ack=" + strconv.FormatUint(a.LSN, 10) +
			"&epoch=" + strconv.FormatUint(a.Epoch, 10) +
			"&follower=" + url.QueryEscape(a.Follower)
	}
	body, err := s.get(path)
	if err != nil {
		return nil, err
	}
	var out listingJSON
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("repl: decoding segment listing: %w", err)
	}
	s.tip.Store(out.Tip)
	segs := make([]storage.WALSegmentInfo, 0, len(out.Segments))
	for _, e := range out.Segments {
		hs := e.HeaderSize
		if hs == 0 {
			hs = storage.SegmentHeaderSize // pre-fencing server: v1 headers
		}
		segs = append(segs, storage.WALSegmentInfo{
			Index: e.Index, FirstLSN: e.FirstLSN, Size: e.Size, Sealed: e.Sealed,
			Epoch: e.Epoch, HeaderSize: hs,
		})
	}
	return segs, nil
}

// ReadAt fetches a raw byte range of one segment.
func (s *HTTPSource) ReadAt(seg storage.WALSegmentInfo, off int64, max int) ([]byte, error) {
	return s.get(fmt.Sprintf("/repl/v1/segment?index=%d&first=%d&off=%d&max=%d",
		seg.Index, seg.FirstLSN, off, max))
}

// Schema fetches the bootstrap schema blob.
func (s *HTTPSource) Schema() ([]byte, error) { return s.get("/repl/v1/schema") }

// Healthy probes the server's health endpoint.
func (s *HTTPSource) Healthy() bool {
	resp, err := s.client().Get(s.Base + "/repl/v1/health")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Ack records the follower's durable frontier (and identity and epoch) for
// the next listing poll. Delivery is deferred, so a fencing rejection
// surfaces as ErrFenced from a later Segments call, not from Ack itself.
func (s *HTTPSource) Ack(info AckInfo) error {
	s.ack.Store(&info)
	return nil
}

// TipLSN reports the primary tip from the most recent listing.
func (s *HTTPSource) TipLSN() uint64 { return s.tip.Load() }
