//go:build !race

package repl

// e2eInserts is the primary's write volume in the end-to-end test: the
// acceptance bar for the replication arc is ≥ 50k acknowledged inserts
// with background checkpoints running while the follower tails. Under the
// race detector (see volume_race_test.go) the volume is reduced — the
// interleavings it hunts show up within a few thousand records, and the
// instrumented run would otherwise dominate CI.
const e2eInserts = 50_000
