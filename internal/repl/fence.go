package repl

import (
	"github.com/dcindex/dctree/internal/core"
)

// Fencing epochs close the split-brain hole the lease alone cannot: the
// lease is advisory (a partitioned-but-alive primary keeps heartbeating
// its own disk), so promotion must carry authority of its own. Every
// promotion bumps a durable epoch — stamped into the meta blob (v7) and
// into every WAL segment header the new primary writes (v2 headers) — and
// every shipped record carries the epoch of the segment that holds it.
//
// The rules, each enforced where the bytes flow:
//
//   - A follower's epoch advances only from segments it has actually
//     mirrored (plus its replica checkpoint at restart), never from a
//     listing alone. By the time it knows epoch E+1 exists, everything
//     below the promotion point is already in its mirror — so legitimate
//     old-epoch history below the frontier can never false-fence.
//   - A source whose newest segment is below the follower's epoch is a
//     deposed primary: the shipping pass stops with ErrFenced before
//     mirroring a byte (shipper.runOnce).
//   - A segment offering NEW frames beyond the mirror frontier from an
//     epoch below the follower's is likewise refused (the deposed primary
//     kept appending to its old timeline).
//   - core.Tree.ApplyReplicated independently rejects stale-epoch records
//     after its idempotence check, so even a hand-driven apply path
//     cannot fold a deposed primary's writes into a replica.
//   - A primary that receives a follower acknowledgment from a HIGHER
//     epoch has been deposed itself: its group committer is poisoned with
//     ErrFenced exactly like an fsync failure
//     (core.Tree.ObserveFollowerAck), so no further write is ever
//     acknowledged from the old timeline.
//
// Epoch 0 is the pre-fencing state: trees and logs written before this
// protocol carry it, and nothing fences until the first promotion mints
// epoch 2 (fresh durable trees start at 1).
//
// ErrFenced is core.ErrFenced re-exported so transport code and callers
// of this package can match it without importing core.
var ErrFenced = core.ErrFenced
