package repl

import (
	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
)

// PromoteDir promotes a follower directory whose follower process is no
// longer running (dctool promote): it opens the replica store and reopens
// it read-write with the mirror as its write-ahead log. Recovery replays
// any mirrored records past the replica's last checkpoint, so nothing the
// follower shipped is lost even if it died before checkpointing.
//
// blockSize must match the store's (the primary's Config.BlockSize; the
// default for stores created with defaults). The returned tree writes new
// records continuing the old primary's LSN sequence — on a freshly bumped
// fencing epoch, so the old primary's timeline is dead the moment this
// returns; the caller owns both tree and store and must Close them (tree
// first).
func PromoteDir(dir string, blockSize int, wopts storage.WALOptions, poolBytes int) (*core.Tree, *storage.PagedStore, error) {
	store, err := storage.OpenPagedStore(StorePath(dir), blockSize, poolBytes)
	if err != nil {
		return nil, nil, err
	}
	tree, err := core.OpenDurableOpts(store, MirrorPrefix(dir), wopts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	if _, err := tree.BumpEpoch(); err != nil {
		tree.Close()
		store.Close()
		return nil, nil, err
	}
	return tree, store, nil
}
