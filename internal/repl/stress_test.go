package repl

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/storage"
)

// stressPayload is record i's content — self-describing, so the reader
// can detect any substitution of stale or foreign bytes.
func stressPayload(i uint64) []byte {
	return []byte(fmt.Sprintf("rec-%06d|stress-padding-stress-padding", i))
}

// TestShipTailStress tails a live WAL through the directory transport
// while the writer rotates, recycles and truncates it as fast as it can —
// under -race in CI. The follower must never observe a torn frame, a
// recycled segment's stale frames, or a gap: the shipped stream has to be
// exactly records 1..N, each byte-identical to what was appended, with
// truncation never outrunning the acknowledged mirror frontier.
func TestShipTailStress(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "wal")
	const n = 4000

	w, err := storage.OpenWAL(prefix, storage.WALOptions{
		SegmentBytes: 2 << 10, // tiny segments: constant rotation
		RecyclePool:  3,       // retired segments come back rewritten
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetRetainLSN(0) // retain everything until the reader acknowledges

	writerErr := make(chan error, 1)
	var wrote atomic.Uint64
	go func() {
		defer close(writerErr)
		var lastSynced uint64
		for i := uint64(1); i <= n; i++ {
			if _, err := w.Append(stressPayload(i)); err != nil {
				writerErr <- fmt.Errorf("append %d: %w", i, err)
				return
			}
			if i%25 == 0 || i == n {
				if _, err := w.Sync(); err != nil {
					writerErr <- fmt.Errorf("sync at %d: %w", i, err)
					return
				}
				lastSynced = i
				wrote.Store(i)
			}
			if i%150 == 0 {
				// Aggressive checkpoint-style truncation: reach for the
				// whole synced log; the reader's acknowledgements (the
				// retention floor) are the only thing keeping unshipped
				// segments alive.
				if err := w.TruncateBefore(lastSynced); err != nil {
					writerErr <- fmt.Errorf("truncate at %d: %w", i, err)
					return
				}
			}
		}
	}()

	m, err := openMirror(filepath.Join(dir, "mirror"))
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	sh := &shipper{
		src:   &DirSource{Prefix: prefix},
		m:     m,
		chunk: 1 << 10, // small chunks: reads constantly land mid-frontier
		floor: 1,
		apply: func(_, lsn uint64, payload []byte) error {
			if lsn != got+1 {
				return fmt.Errorf("lsn %d out of sequence, want %d", lsn, got+1)
			}
			if want := stressPayload(lsn); !bytes.Equal(payload, want) {
				return fmt.Errorf("record %d corrupted: %q", lsn, payload)
			}
			got = lsn
			return nil
		},
	}

	deadline := time.After(2 * time.Minute)
	for got < n {
		if _, err := sh.runOnce(); err != nil {
			t.Fatalf("runOnce after %d records: %v", got, err)
		}
		if err := m.sync(); err != nil {
			t.Fatal(err)
		}
		w.SetRetainLSN(m.syncedLSN())
		select {
		case err, open := <-writerErr:
			if open && err != nil {
				t.Fatal(err)
			}
			if !open && got >= wrote.Load() && got < n {
				t.Fatalf("writer finished but reader stuck at %d/%d", got, n)
			}
		case <-deadline:
			t.Fatalf("stress timed out at %d/%d records", got, n)
		default:
		}
	}
	if err := <-writerErr; err != nil {
		t.Fatal(err)
	}

	// The mirror must itself be a complete, adoptable WAL holding exactly
	// records 1..n.
	if err := m.close(); err != nil {
		t.Fatal(err)
	}
	mw, err := storage.OpenWAL(filepath.Join(dir, "mirror"), storage.WALOptions{})
	if err != nil {
		t.Fatalf("mirror does not reopen as a WAL: %v", err)
	}
	defer mw.Close()
	var replayed uint64
	if err := mw.Replay(func(lsn uint64, payload []byte) error {
		replayed++
		if lsn != replayed {
			return fmt.Errorf("mirror lsn %d, want %d", lsn, replayed)
		}
		if !bytes.Equal(payload, stressPayload(lsn)) {
			return fmt.Errorf("mirror record %d corrupted", lsn)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != n {
		t.Fatalf("mirror replayed %d records, want %d", replayed, n)
	}
}
