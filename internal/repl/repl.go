// Package repl implements log-shipping replication for dctree.
//
// A follower tails the primary's segmented write-ahead log — sealed
// segments in full, the active segment up to a safe frontier — copies the
// raw frame bytes into a local mirror that is itself a valid WAL, and
// replays every record into an apply-only replica tree
// (core.NewReplica/core.OpenReplica). Between batches the replica serves
// read-only queries, including time travel over the primary's replicated
// snapshots. When the primary dies, Promote seals replay, checkpoints, and
// reopens the mirror as a normal durable tree: the standby becomes the new
// primary, continuing the same LSN sequence, with every record the old
// primary acknowledged intact.
//
// Three transports implement one Source interface:
//
//   - WALSource wraps a live *storage.WAL in process — exact durable
//     frontiers, and follower acknowledgements advance the primary's
//     retention floor (storage.WAL.SetRetainLSN).
//   - DirSource scans a WAL segment directory across processes
//     (storage.ListSegments), the zero-infrastructure transport for
//     followers sharing a filesystem with the primary.
//   - HTTPSource speaks to a repl.Server over HTTP — resumable by byte
//     offset, with acknowledgements piggybacked on the segment poll.
//
// Split brain is closed by fencing epochs (see fence.go): every promotion
// bumps a durable epoch stamped into WAL segment headers, a follower that
// has durably observed the new timeline refuses the old one with
// ErrFenced, and the first new-epoch acknowledgment that reaches a
// deposed primary poisons its write path. Acknowledgments carry the
// follower's identity and epoch (AckInfo); with Config.SyncReplication
// set, the primary withholds write acknowledgments until that many
// followers have confirmed the LSN — quorum acknowledgment on the
// in-process and HTTP transports (DirSource carries no ack channel).
//
// The protocol invariants (frontier rules, the recycling hazard and its
// header double-check defense, gap detection, the promotion state machine
// with its epoch bump, and the failure matrix) are documented in
// REPLICATION.md at the repository root.
package repl

import (
	"errors"
)

// ErrGap reports that the source no longer retains the records the
// follower needs next: the primary truncated its log past the follower's
// mirror frontier. The mirror cannot be extended without a hole, so the
// follower must be re-bootstrapped (or the primary's retention floor —
// WALOptions.RetainSegments, storage.WAL.SetRetainLSN — raised before the
// next attempt).
var ErrGap = errors.New("repl: source no longer retains the records the follower needs")

// ErrPromoted is returned by Follower methods after Promote has handed the
// state over to a read-write tree.
var ErrPromoted = errors.New("repl: follower already promoted")

// ErrMirrorCorrupt reports a follower mirror whose segment files violate
// the mirror invariants (LSN continuity across segments, whole CRC-valid
// frames everywhere but the final tail). It indicates local damage — the
// shipping path never writes such a mirror — and is fixed by removing the
// mirror and re-bootstrapping.
var ErrMirrorCorrupt = errors.New("repl: follower mirror corrupt")
