package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// recordMultiset keys records by full content, exactly like scanMultiset
// does for trees, so inserted slices compare against scanned trees.
func recordMultiset(recs []cube.Record) map[string]int {
	ms := make(map[string]int)
	for _, r := range recs {
		ms[fmt.Sprint(r.Coords, r.Measures)]++
	}
	return ms
}

// TestFencingMatrixInProcess runs the deposed-primary matrix over the
// in-process transport; TestFencingMatrixHTTP runs the identical scenario
// over HTTP (including the 409 Conflict ack rejection). Both must end
// with the old primary's timeline dead: the flapped-back follower refuses
// it with ErrFenced, and the first new-epoch acknowledgment that reaches
// the old primary poisons its write path.
func TestFencingMatrixInProcess(t *testing.T) {
	runFencingMatrix(t, func(tr *core.Tree) Source {
		return &WALSource{Tree: tr}
	})
}

func TestFencingMatrixHTTP(t *testing.T) {
	runFencingMatrix(t, func(tr *core.Tree) Source {
		srv := httptest.NewServer(NewServer(&WALSource{Tree: tr}).Handler())
		t.Cleanup(srv.Close)
		return &HTTPSource{Base: srv.URL}
	})
}

func runFencingMatrix(t *testing.T, mkSource func(*core.Tree) Source) {
	dirA, f1Dir, f2Dir := t.TempDir(), t.TempDir(), t.TempDir()
	cfg := core.DefaultConfig()
	cfg.CommitInterval = -1
	schema := testSchema(t)
	primA, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		dirA+"/wal", storage.WALOptions{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	primA.WAL().SetRetainLSN(0)
	if got := primA.Epoch(); got != 1 {
		t.Fatalf("fresh primary epoch = %d, want 1", got)
	}

	recs := genRecords(t, schema, rand.New(rand.NewSource(11)), 500)
	for _, r := range recs[:400] {
		if err := primA.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	opts := func(dir string) FollowerOptions {
		return FollowerOptions{Dir: dir, Config: cfg, Poll: 2 * time.Millisecond}
	}
	f1, err := NewFollower(mkSource(primA), opts(f1Dir))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFollower(mkSource(primA), opts(f2Dir))
	if err != nil {
		t.Fatal(err)
	}
	tip := primA.WAL().LastLSN()
	waitFor(t, 30*time.Second, "f1 catch-up", func() bool { return f1.AppliedLSN() >= tip })
	waitFor(t, 30*time.Second, "f2 catch-up", func() bool { return f2.AppliedLSN() >= tip })
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	// Failover: f1 becomes the new primary on a bumped epoch.
	primB, err := f1.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer primB.Close()
	if got, want := primB.Epoch(), primA.Epoch()+1; got != want {
		t.Fatalf("promoted epoch = %d, want %d", got, want)
	}
	primB.WAL().SetRetainLSN(0)
	for _, r := range recs[400:450] {
		if err := primB.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Split brain: the deposed primary never noticed and keeps accepting
	// writes on the old timeline. Locally nothing can stop it — fencing
	// must catch it at the replication boundary.
	for _, r := range recs[450:] {
		if err := primA.Insert(r); err != nil {
			t.Fatalf("deposed primary local write: %v", err)
		}
	}

	// f2 re-pointed at the new primary ships across the promotion
	// boundary: its mirror legitimately mixes epochs 1 and 2.
	f2b, err := NewFollower(mkSource(primB), opts(f2Dir))
	if err != nil {
		t.Fatalf("re-pointing follower at new primary: %v", err)
	}
	tipB := primB.WAL().LastLSN()
	waitFor(t, 30*time.Second, "f2 catch-up on new primary", func() bool {
		return f2b.AppliedLSN() >= tipB
	})
	assertTreesEqual(t, primB, f2b.Tree())
	if err := f2b.Close(); err != nil {
		t.Fatal(err)
	}

	// Flap back to the deposed primary: the follower has durably observed
	// epoch 2, so the old timeline's new frames must be refused — ErrFenced,
	// not a silent fork.
	f2c, err := NewFollower(mkSource(primA), opts(f2Dir))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "fencing the old timeline", func() bool {
		return errors.Is(f2c.Err(), ErrFenced)
	})
	appliedAtFence := f2c.AppliedLSN()
	if err := f2c.Close(); err != nil {
		t.Fatal(err)
	}
	if appliedAtFence < tipB {
		t.Fatalf("fenced follower lost ground: applied %d < %d", appliedAtFence, tipB)
	}

	// The first new-epoch acknowledgment that reaches the deposed primary
	// poisons its write path. Over HTTP the ack piggybacks on the next
	// listing poll, so the rejection surfaces there (as a 409).
	src := mkSource(primA)
	ackErr := src.Ack(AckInfo{Follower: "matrix", Epoch: primB.Epoch(), LSN: tip})
	if ackErr == nil {
		_, ackErr = src.Segments()
	}
	if !errors.Is(ackErr, ErrFenced) {
		t.Fatalf("new-epoch ack err = %v, want ErrFenced", ackErr)
	}
	if err := primA.Insert(recs[0]); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed primary Insert err = %v, want ErrFenced", err)
	}
	if got := primA.Metrics().FencingEpoch; got != 1 {
		t.Fatalf("deposed primary fencing epoch = %d, want 1 (it never promoted)", got)
	}
	if got := primB.Metrics().FencingEpoch; got != 2 {
		t.Fatalf("new primary fencing epoch = %d, want 2", got)
	}
	primA.Close() // poisoned close may error; the store is gone either way
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteWhileShipping promotes a follower while writers are still
// hammering the primary — the race the promotion path must survive (run
// under -race in CI). The promoted tree must be a consistent prefix of
// the primary's acknowledged history on a bumped epoch, and must accept
// writes of its own.
func TestPromoteWhileShipping(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	cfg := core.DefaultConfig()
	cfg.CommitInterval = 100 * time.Microsecond
	schema := testSchema(t)
	primary, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		primDir+"/wal", storage.WALOptions{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.WAL().SetRetainLSN(0)

	f, err := NewFollower(&WALSource{Tree: primary}, FollowerOptions{
		Dir: folDir, Config: cfg, Poll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	recs := genRecords(t, schema, rand.New(rand.NewSource(13)), 4000)
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(recs); i += writers {
				if err := primary.Insert(recs[i]); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		}(w)
	}

	waitFor(t, 30*time.Second, "mid-stream progress", func() bool { return f.AppliedLSN() >= 500 })
	rw, err := f.Promote() // writers still running
	if err != nil {
		t.Fatalf("Promote while shipping: %v", err)
	}
	wg.Wait()

	if got, want := rw.Epoch(), primary.Epoch()+1; got != want {
		t.Fatalf("promoted epoch = %d, want %d", got, want)
	}
	// Every promoted record is one the primary acknowledged: the promoted
	// multiset is contained in the primary's.
	promoted, acked := scanMultiset(t, rw), scanMultiset(t, primary)
	for k, n := range promoted {
		if acked[k] < n {
			t.Fatalf("promoted tree holds %d×%q, primary acknowledged %d", n, k, acked[k])
		}
	}
	if rw.Count() < 500 {
		t.Fatalf("promoted count = %d, want >= 500 (progress watermark)", rw.Count())
	}
	if err := rw.Insert(recs[0]); err != nil {
		t.Fatalf("post-promotion insert: %v", err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
}

// killedErr is what a dead transport returns for everything.
var killedErr = errors.New("repl_test: source killed")

// killableSource wraps a Source with a kill switch — the test's kill -9:
// after kill, every method fails and health goes false, exactly like a
// vanished primary process.
type killableSource struct {
	inner Source
	dead  atomic.Bool
}

func (k *killableSource) Segments() ([]storage.WALSegmentInfo, error) {
	if k.dead.Load() {
		return nil, killedErr
	}
	return k.inner.Segments()
}

func (k *killableSource) ReadAt(seg storage.WALSegmentInfo, off int64, max int) ([]byte, error) {
	if k.dead.Load() {
		return nil, killedErr
	}
	return k.inner.ReadAt(seg, off, max)
}

func (k *killableSource) Schema() ([]byte, error) {
	if k.dead.Load() {
		return nil, killedErr
	}
	return k.inner.Schema()
}

func (k *killableSource) Healthy() bool { return !k.dead.Load() && k.inner.Healthy() }

func (k *killableSource) Ack(info AckInfo) error {
	if k.dead.Load() {
		return killedErr
	}
	return k.inner.Ack(info)
}

// TestQuorumSyncZeroAckedWriteLoss is the synchronous-replication crash
// test: with SyncReplication=1 every acknowledged write has been durably
// mirrored on the follower BEFORE its Insert returned, so killing the
// primary (transport dead, no final drain possible) and promoting must
// yield a tree holding exactly the acknowledged records — the seqscan
// oracle proves zero acked-write loss.
func TestQuorumSyncZeroAckedWriteLoss(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	cfg := core.DefaultConfig()
	cfg.CommitInterval = -1
	cfg.SyncReplication = 1
	cfg.SyncReplicationTimeout = 30 * time.Second
	schema := testSchema(t)
	primary, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		primDir+"/wal", storage.WALOptions{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	src := &killableSource{inner: &WALSource{Tree: primary}}
	f, err := NewFollower(src, FollowerOptions{
		Dir: folDir, ID: "quorum-1", Config: cfg, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 200
	recs := genRecords(t, schema, rand.New(rand.NewSource(17)), n)
	for i, r := range recs {
		if err := primary.Insert(r); err != nil {
			t.Fatalf("sync insert %d: %v", i, err)
		}
	}
	if d := primary.Metrics().ReplSyncDegraded; d != 0 {
		t.Fatalf("sync replication degraded %d times; every ack must have been real for the oracle to hold", d)
	}

	// Kill -9: the transport dies with the primary process. Promotion gets
	// no final drain — the mirror alone must hold every acknowledged write.
	src.dead.Store(true)
	rw, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote after kill: %v", err)
	}
	if got, want := rw.Epoch(), primary.Epoch()+1; got != want {
		t.Fatalf("promoted epoch = %d, want %d", got, want)
	}
	if got := rw.Count(); got != n {
		t.Fatalf("promoted count = %d, want %d (all acknowledged writes)", got, n)
	}
	want, got := recordMultiset(recs), scanMultiset(t, rw)
	if len(want) != len(got) {
		t.Fatalf("record multisets differ: %d vs %d distinct keys", len(want), len(got))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("record %q: acknowledged %d, promoted %d", k, n, got[k])
		}
	}

	// The promoted tree is a working primary: one more write, durably.
	if err := rw.Insert(recs[0]); err != nil {
		t.Fatalf("post-promotion insert: %v", err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Epochs persist: reopening the follower directory as a primary bumps
	// again on top of the persisted epoch and recovers every record.
	again, store, err := PromoteDir(folDir, cfg.BlockSize, storage.WALOptions{}, 0)
	if err != nil {
		t.Fatalf("PromoteDir: %v", err)
	}
	defer store.Close()
	defer again.Close()
	if got := again.Epoch(); got != 3 {
		t.Fatalf("re-promoted epoch = %d, want 3 (1 birth, 2 promote, 3 re-promote)", got)
	}
	if got := again.Count(); got != n+1 {
		t.Fatalf("re-promoted count = %d, want %d", got, n+1)
	}
}

// TestSyncReplicationDegrade pins the availability side of the sync knob:
// with no follower acknowledging, writes still complete after the timeout
// and the degradation is counted — a dead follower slows the primary to
// the timeout, never to a halt.
func TestSyncReplicationDegrade(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CommitInterval = -1
	cfg.SyncReplication = 1
	cfg.SyncReplicationTimeout = 20 * time.Millisecond
	schema := testSchema(t)
	tree, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		t.TempDir()+"/wal", storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	recs := genRecords(t, schema, rand.New(rand.NewSource(19)), 3)
	start := time.Now()
	for _, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("degraded insert: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < cfg.SyncReplicationTimeout {
		t.Fatalf("inserts returned in %v, before the sync timeout — no quorum wait happened", elapsed)
	}
	if d := tree.Metrics().ReplSyncDegraded; d < 3 {
		t.Fatalf("degraded count = %d, want >= 3", d)
	}
}
