package repl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/storage"
)

// TestFollowerEndToEndAndPromotion is the replication acceptance test:
// a primary ingests 50k inserts (plus a snapshot and deletes) under
// background checkpoints and log truncation while a filesystem-transport
// follower tails its WAL directory. At the quiesced frontier the follower
// must equal the primary record-for-record; after the primary "dies"
// (kill -9 semantics: the process stops heartbeating, nothing is closed
// cleanly) the promoted follower must hold every acknowledged write and
// accept new ones, durably.
func TestFollowerEndToEndAndPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("long e2e")
	}
	primDir, folDir := t.TempDir(), t.TempDir()
	primPrefix := filepath.Join(primDir, "wal")
	leasePath := filepath.Join(primDir, "primary.lease")

	cfg := core.DefaultConfig()
	cfg.CommitInterval = 100 * time.Microsecond
	cfg.CommitAutoTune = true
	cfg.CheckpointInterval = 50 * time.Millisecond
	schema := testSchema(t)
	primary, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		primPrefix, storage.WALOptions{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Retain the log from LSN 1 until the follower has bootstrapped; the
	// floor then follows the follower's mirrored frontier, so checkpoints
	// truncate behind it while it tails.
	primary.WAL().SetRetainLSN(0)
	if err := WriteSchema(primPrefix, primary); err != nil {
		t.Fatal(err)
	}

	// Primary heartbeat: refreshed on a ticker, never removed — stopping
	// the refresher is the kill -9.
	beat := func() {
		if err := os.WriteFile(leasePath, []byte("alive\n"), 0o644); err != nil {
			t.Error(err)
		}
	}
	beat()
	stopBeat := make(chan struct{})
	var beatDone sync.WaitGroup
	beatDone.Add(1)
	go func() {
		defer beatDone.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-tick.C:
				beat()
			}
		}
	}()

	f, err := NewFollower(&DirSource{Prefix: primPrefix, Lease: leasePath, LeaseTTL: 150 * time.Millisecond},
		FollowerOptions{
			Dir:             folDir,
			Config:          cfg,
			Poll:            3 * time.Millisecond,
			CheckpointEvery: 40 * time.Millisecond,
			PromoteAfter:    300 * time.Millisecond,
			WAL:             storage.WALOptions{SegmentBytes: 64 << 10},
		})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}

	// Operator glue for the directory transport: advance the primary's
	// retention floor to the follower's durable mirror frontier.
	stopFloor := make(chan struct{})
	var floorDone sync.WaitGroup
	floorDone.Add(1)
	go func() {
		defer floorDone.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopFloor:
				return
			case <-tick.C:
				primary.WAL().SetRetainLSN(f.Metrics().MirroredLSN)
			}
		}
	}()

	// Ingest while the follower tails.
	recs := genRecords(t, schema, rand.New(rand.NewSource(1)), e2eInserts)
	var wg sync.WaitGroup
	const writers = 6
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(recs); i += writers {
				if err := primary.Insert(recs[i]); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ver, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	countAtSnap := primary.Count()
	for i := 0; i < 500; i++ {
		if err := primary.Delete(recs[i]); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}

	// Quiesce: the follower catches up to the primary's last LSN.
	tip := primary.WAL().LastLSN()
	waitFor(t, 60*time.Second, "follower catch-up", func() bool {
		if err := f.Err(); err != nil && (errors.Is(err, ErrGap) || errors.Is(err, ErrMirrorCorrupt)) {
			t.Fatalf("follower: %v", err)
		}
		return f.AppliedLSN() >= tip
	})
	close(stopFloor)
	floorDone.Wait()

	assertTreesEqual(t, primary, f.Tree())
	fm := f.Metrics()
	if fm.SegmentsShipped < 2 {
		t.Fatalf("segments shipped = %d, want several (SegmentBytes forces rotation)", fm.SegmentsShipped)
	}
	if fm.Checkpoints == 0 {
		t.Fatal("follower took no replica checkpoints")
	}

	// The follower serves Execute, including AsOf at the primary's
	// replicated snapshot.
	rv, ok := f.Tree().VersionByID(ver.ID())
	if !ok {
		t.Fatalf("version %d not live on follower", ver.ID())
	}
	res, err := f.Tree().Execute(context.Background(), core.QueryRequest{
		Query: mds.Top(schema.Dims()), AsOf: rv,
	})
	if err != nil {
		t.Fatalf("follower AsOf Execute: %v", err)
	}
	if res.Agg.Count != countAtSnap {
		t.Fatalf("AsOf count = %d, want %d", res.Agg.Count, countAtSnap)
	}

	// Kill -9: heartbeats stop; nothing on the primary side is closed.
	close(stopBeat)
	beatDone.Wait()
	waitFor(t, 10*time.Second, "promotion timer", f.Promotable)

	rw, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	// Zero acknowledged-write loss: everything the dead primary
	// acknowledged is present on the promoted tree.
	assertTreesEqual(t, primary, rw)

	// The promoted tree accepts writes, continuing the LSN sequence. New
	// records intern into the promoted tree's own schema — the dead
	// primary's in-memory registrations are irrelevant now.
	more := genRecords(t, rw.Schema(), rand.New(rand.NewSource(2)), 200)
	for i, r := range more {
		if err := rw.Insert(r); err != nil {
			t.Fatalf("post-promotion insert %d: %v", i, err)
		}
	}
	wantCount := rw.Count()
	if err := rw.Close(); err != nil {
		t.Fatalf("closing promoted tree: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing follower: %v", err)
	}

	// Post-promotion writes are durable: a fresh open of the follower
	// directory recovers them.
	again, store, err := PromoteDir(folDir, cfg.BlockSize, storage.WALOptions{}, 0)
	if err != nil {
		t.Fatalf("PromoteDir: %v", err)
	}
	defer store.Close()
	defer again.Close()
	if got := again.Count(); got != wantCount {
		t.Fatalf("reopened count = %d, want %d", got, wantCount)
	}
}

// TestFollowerRestartResume stops a follower mid-stream and starts a new
// one over the same directory: it must resume from its checkpoint plus
// mirrored log, then catch up without re-applying anything twice.
func TestFollowerRestartResume(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	primPrefix := filepath.Join(primDir, "wal")
	cfg := core.DefaultConfig()
	cfg.CommitInterval = -1 // naive mode: every insert durable immediately
	schema := testSchema(t)
	primary, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		primPrefix, storage.WALOptions{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.WAL().SetRetainLSN(0)
	if err := WriteSchema(primPrefix, primary); err != nil {
		t.Fatal(err)
	}

	recs := genRecords(t, schema, rand.New(rand.NewSource(3)), 1200)
	for _, r := range recs[:600] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	opts := FollowerOptions{
		Dir: folDir, Config: cfg,
		Poll: 2 * time.Millisecond, CheckpointEvery: 15 * time.Millisecond,
	}
	src := &DirSource{Prefix: primPrefix}
	f, err := NewFollower(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	tip := primary.WAL().LastLSN()
	waitFor(t, 20*time.Second, "first catch-up", func() bool { return f.AppliedLSN() >= tip })
	if f.Metrics().Checkpoints == 0 {
		// Give the cadence one more beat so restart resumes from a real
		// checkpoint, not just the mirror.
		waitFor(t, 5*time.Second, "a replica checkpoint", func() bool { return f.Metrics().Checkpoints > 0 })
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, r := range recs[600:] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := NewFollower(src, opts)
	if err != nil {
		t.Fatalf("reopening follower: %v", err)
	}
	defer f2.Close()
	tip = primary.WAL().LastLSN()
	waitFor(t, 20*time.Second, "second catch-up", func() bool { return f2.AppliedLSN() >= tip })
	assertTreesEqual(t, primary, f2.Tree())
}

// TestShipperGapDetected pins the failure mode when the primary truncates
// past an empty follower: bootstrap must fail with ErrGap, not silently
// replicate a log with a hole.
func TestShipperGapDetected(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "wal")
	w, err := storage.OpenWAL(prefix, storage.WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 200; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%04d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(150); err != nil {
		t.Fatal(err)
	}
	segs, err := storage.ListSegments(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].FirstLSN <= 1 {
		t.Fatalf("truncation removed nothing (first lsn %d); test needs a real gap", segs[0].FirstLSN)
	}

	m, err := openMirror(filepath.Join(dir, "mirror"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	sh := &shipper{src: &DirSource{Prefix: prefix}, m: m, chunk: DefaultChunkBytes, floor: 1}
	if _, err := sh.runOnce(); !errors.Is(err, ErrGap) {
		t.Fatalf("runOnce err = %v, want ErrGap", err)
	}
}

// TestLease pins the heartbeat semantics: fresh while beating, stale
// after ttl without beats, and gone (immediately takeover-able) after a
// clean Stop.
func TestLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "primary.lease")
	if LeaseFresh(path, time.Minute) {
		t.Fatal("fresh before the lease exists")
	}
	l, err := StartLease(path, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !LeaseFresh(path, time.Minute) {
		t.Fatal("not fresh while beating")
	}
	waitFor(t, 5*time.Second, "staleness under a tiny ttl", func() bool {
		return !LeaseFresh(path, time.Nanosecond)
	})
	l.Stop()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("lease file survives Stop: %v", err)
	}
	if LeaseFresh(path, time.Minute) {
		t.Fatal("fresh after Stop removed the lease")
	}
	l.Stop() // idempotent
}
