package repl

import (
	"fmt"
	"os"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
)

// Source is a follower's view of a primary's write-ahead log. All three
// transports (WALSource, DirSource, HTTPSource) implement it; the shipping
// loop is transport-agnostic.
//
// Frontier contract: Segments reports, per segment, how many bytes a
// follower may safely ship (see storage.WALSegmentInfo.Size for the two
// frontier flavors). ReadAt must never return bytes of a different segment
// than the one described by seg — implementations back this with the
// storage-layer header double-check and report a vanished or recycled
// segment as storage.ErrSegmentGone, which the follower treats as "refresh
// the listing and resume", not an error.
type Source interface {
	// Segments lists the currently shippable segments in index order.
	Segments() ([]storage.WALSegmentInfo, error)
	// ReadAt reads up to max raw bytes of seg starting at byte offset off
	// (offsets include the segment header; off is always at least
	// seg.HeaderSize). Short reads near the frontier are normal.
	ReadAt(seg storage.WALSegmentInfo, off int64, max int) ([]byte, error)
	// Schema returns the primary's schema blob (core.EncodeSchema) for
	// bootstrapping a brand-new replica.
	Schema() ([]byte, error)
	// Healthy reports whether the primary is believed alive. Transports
	// without failure detection return true; the follower's promotion
	// timer runs off consecutive false results.
	Healthy() bool
	// Ack tells the source the follower has durably mirrored every record
	// with LSN <= info.LSN, letting the primary release those segments
	// (retention floor) and — under synchronous replication — counting
	// toward the acknowledgment quorum. info carries the follower's
	// identity and fencing epoch; a source whose primary discovers from
	// the epoch that it has been deposed returns ErrFenced. Best-effort
	// otherwise; implementations may ignore it (DirSource does, which is
	// why synchronous modes require the in-process or HTTP transport).
	Ack(info AckInfo) error
}

// AckInfo is one follower acknowledgment: Follower is a stable identity
// (the quorum registry key — two followers sharing a name count as one),
// Epoch is the follower's current fencing epoch, and LSN is the highest
// record durably mirrored on the follower's disk.
type AckInfo struct {
	Follower string
	Epoch    uint64
	LSN      uint64
}

// Tipper is an optional Source extension for transports that know the
// primary's last assigned LSN, enabling exact replication lag in records.
type Tipper interface {
	// TipLSN returns the highest LSN the primary has assigned, or 0 if
	// unknown.
	TipLSN() uint64
}

// WALSource ships from a live WAL in the same process as the primary tree.
// It reports exact durable frontiers (only fsynced bytes are listed), and
// acknowledgements advance the log's retention floor so checkpoints can
// truncate shipped segments.
type WALSource struct {
	// Tree is the primary. It must have a WAL (opened with NewDurable or
	// OpenDurable).
	Tree *core.Tree
}

// Segments lists the live log's segments at their durable frontiers.
func (s *WALSource) Segments() ([]storage.WALSegmentInfo, error) {
	w := s.Tree.WAL()
	if w == nil {
		return nil, fmt.Errorf("repl: WALSource tree has no WAL")
	}
	return w.Segments(), nil
}

// ReadAt reads segment bytes with the recycling-safe header double-check.
func (s *WALSource) ReadAt(seg storage.WALSegmentInfo, off int64, max int) ([]byte, error) {
	return storage.ReadSegmentRange(seg.Path, seg.HeaderFor(), off, max)
}

// Schema returns the primary's schema blob.
func (s *WALSource) Schema() ([]byte, error) { return s.Tree.EncodeSchema() }

// Healthy always reports true: the source dies with the primary's process.
func (s *WALSource) Healthy() bool { return true }

// Ack folds the follower's confirmation into the primary: the retention
// floor tracks the slowest follower, synchronous writers waiting on the
// quorum wake, and an acknowledgment from a higher epoch poisons the
// primary's write path with ErrFenced (it has been deposed).
func (s *WALSource) Ack(info AckInfo) error {
	return s.Tree.ObserveFollowerAck(info.Follower, info.Epoch, info.LSN)
}

// TipLSN reports the primary's last assigned LSN.
func (s *WALSource) TipLSN() uint64 {
	if w := s.Tree.WAL(); w != nil {
		return w.LastLSN()
	}
	return 0
}

// DirSource ships from a primary's WAL segment directory across process
// boundaries — the filesystem transport. Sizes come from the directory
// scan, so the final segment may extend past the primary's durable
// frontier and may end in a torn frame; the follower validates frames as
// it ships, which makes the shipped view exactly what the primary's own
// crash recovery would reconstruct from those files.
//
// Failure detection is optional: with Lease set, Healthy reports whether
// the lease file is fresh (see StartLease); a primary that stops
// heartbeating — or removes its lease on clean shutdown — lets the
// follower's promotion timer run.
type DirSource struct {
	// Prefix is the primary's WAL path prefix, as passed to OpenDurable.
	Prefix string
	// SchemaPath is the schema blob file used to bootstrap new replicas.
	// Empty selects DefaultSchemaPath(Prefix). See WriteSchema.
	SchemaPath string
	// Lease is the primary's lease file path; empty disables failure
	// detection (Healthy always true).
	Lease string
	// LeaseTTL is how stale the lease may be before the primary counts as
	// dead. Zero selects DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// DefaultLeaseTTL is the lease freshness bound used when DirSource (or a
// dctool follower) does not specify one.
const DefaultLeaseTTL = 3 * time.Second

// DefaultSchemaPath returns the conventional location of the schema
// bootstrap blob for a WAL prefix.
func DefaultSchemaPath(prefix string) string { return prefix + ".schema" }

// WriteSchema atomically writes a tree's schema blob next to its WAL so
// directory-transport followers can bootstrap (DirSource.Schema reads it).
// Call it once after opening the primary; the blob is bootstrap-only, so a
// schema that later registers more dictionary values stays valid.
func WriteSchema(prefix string, t *core.Tree) error {
	blob, err := t.EncodeSchema()
	if err != nil {
		return err
	}
	path := DefaultSchemaPath(prefix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Segments scans the primary's segment directory.
func (s *DirSource) Segments() ([]storage.WALSegmentInfo, error) {
	return storage.ListSegments(s.Prefix)
}

// ReadAt reads segment bytes with the recycling-safe header double-check.
func (s *DirSource) ReadAt(seg storage.WALSegmentInfo, off int64, max int) ([]byte, error) {
	return storage.ReadSegmentRange(seg.Path, seg.HeaderFor(), off, max)
}

// Schema reads the bootstrap blob written by WriteSchema.
func (s *DirSource) Schema() ([]byte, error) {
	path := s.SchemaPath
	if path == "" {
		path = DefaultSchemaPath(s.Prefix)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repl: reading schema blob %s (write it with WriteSchema, or bootstrap from a store copy): %w", path, err)
	}
	return blob, nil
}

// Healthy checks the primary's lease file, if one is configured.
func (s *DirSource) Healthy() bool {
	if s.Lease == "" {
		return true
	}
	ttl := s.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return LeaseFresh(s.Lease, ttl)
}

// Ack is a no-op: directory-transport retention is configured on the
// primary (WALOptions.RetainSegments or an explicit SetRetainLSN), and
// the transport carries no ack channel — synchronous replication modes
// (Config.SyncReplication) therefore see no acknowledgments from
// DirSource followers and degrade on every write; use WALSource or the
// HTTP transport for quorum acknowledgment.
func (s *DirSource) Ack(AckInfo) error { return nil }
