package repl

import (
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
)

// TestFollowerHTTPTransport runs the full follower pipeline over the HTTP
// transport: bootstrap from /schema, tail via /segments + /segment range
// reads, acknowledgements advancing the primary's retention floor, and
// the health endpoint arming the promotion timer when the server dies.
func TestFollowerHTTPTransport(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	cfg := core.DefaultConfig()
	cfg.CommitInterval = -1
	schema := testSchema(t)
	primary, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
		filepath.Join(primDir, "wal"), storage.WALOptions{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.WAL().SetRetainLSN(0)

	srv := httptest.NewServer(NewServer(&WALSource{Tree: primary}).Handler())
	src := &HTTPSource{Base: srv.URL}

	recs := genRecords(t, schema, rand.New(rand.NewSource(5)), 1500)
	for _, r := range recs[:700] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	f, err := NewFollower(src, FollowerOptions{
		Dir: folDir, Config: cfg,
		Poll: 2 * time.Millisecond, CheckpointEvery: 20 * time.Millisecond,
		PromoteAfter: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFollower over HTTP: %v", err)
	}
	defer f.Close()

	for _, r := range recs[700:] {
		if err := primary.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	tip := primary.WAL().LastLSN()
	waitFor(t, 30*time.Second, "HTTP catch-up", func() bool {
		if err := f.Err(); err != nil && errors.Is(err, ErrGap) {
			t.Fatalf("follower: %v", err)
		}
		return f.AppliedLSN() >= tip
	})
	assertTreesEqual(t, primary, f.Tree())
	if got := f.Metrics().LagLSN; got != 0 {
		t.Fatalf("lag lsn after quiesce = %d, want 0 (tip is known over HTTP)", got)
	}

	// Acknowledgements piggybacked on the listing poll advanced the
	// primary's retention floor, so checkpoints may truncate shipped
	// segments behind the follower.
	waitFor(t, 10*time.Second, "retention floor to advance", func() bool {
		r := primary.WAL().RetainLSN()
		return r != math.MaxUint64 && r > 0
	})
	if err := primary.Flush(); err != nil {
		t.Fatal(err)
	}

	// Local writes on the replica stay rejected.
	if err := f.Tree().Insert(recs[0]); !errors.Is(err, core.ErrReplica) {
		t.Fatalf("replica Insert err = %v, want ErrReplica", err)
	}

	// Server death → unhealthy → promotion timer.
	srv.Close()
	waitFor(t, 10*time.Second, "unhealthy after server death", func() bool { return !f.Healthy() })
	waitFor(t, 10*time.Second, "promotable after server death", f.Promotable)
	rw, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	assertTreesEqual(t, primary, rw)
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
}
