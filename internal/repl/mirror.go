package repl

import (
	"fmt"
	"os"
	"sync/atomic"

	"github.com/dcindex/dctree/internal/storage"
)

// mirror is the follower's local copy of the primary's log: segment files
// with the same names, headers and frame bytes as the source, restricted
// to whole CRC-valid frames. Because the copy is byte-identical up to the
// shipped frontier, storage.OpenWAL adopts it directly at promotion, and a
// restarted follower replays it through the tree exactly like crash
// recovery replays a primary's log.
//
// Invariants:
//   - every segment but the last consists solely of whole valid frames;
//   - the last segment likewise (torn source bytes are never written);
//   - FirstLSN of each segment equals the LSN after the previous
//     segment's final record (continuity), so frame ordinals determine
//     every record's LSN without any per-frame LSN field.
type mirror struct {
	prefix string
	segs   []mirrorSeg
	f      *os.File // open handle on the final (writable) segment, nil when empty
	next   uint64   // LSN the next appended frame will carry; 0 when empty
	dirty  bool     // appended bytes not yet fsynced
	// synced is the highest LSN known durable in the mirror (fsynced);
	// atomic because Follower.Metrics reads it from other goroutines.
	synced atomic.Uint64
}

type mirrorSeg struct {
	index    uint64
	firstLSN uint64
	size     int64 // bytes on disk including the segment header
	epoch    uint64
	hdrSize  int64 // header length (v1: 24 bytes, v2: 32)
}

// openMirror scans prefix for mirrored segments, validates the mirror
// invariants, truncates a torn tail on the final segment (a follower crash
// mid-append), and returns the mirror positioned to append.
func openMirror(prefix string) (*mirror, error) {
	m := &mirror{prefix: prefix}
	segs, err := storage.ListSegments(prefix)
	if err != nil {
		return nil, err
	}
	for i, s := range segs {
		data, err := os.ReadFile(s.Path)
		if err != nil {
			return nil, err
		}
		if int64(len(data)) < s.HeaderSize {
			return nil, fmt.Errorf("%w: %s shorter than its header", ErrMirrorCorrupt, s.Path)
		}
		body := data[s.HeaderSize:]
		frames, validLen := storage.ValidFramePrefix(body)
		last := i == len(segs)-1
		if int64(len(body)) > validLen {
			if !last {
				return nil, fmt.Errorf("%w: sealed segment %s has a torn tail", ErrMirrorCorrupt, s.Path)
			}
			if err := os.Truncate(s.Path, s.HeaderSize+validLen); err != nil {
				return nil, err
			}
		}
		if i == 0 {
			m.next = s.FirstLSN
		} else if s.FirstLSN != m.next {
			return nil, fmt.Errorf("%w: segment %s first LSN %d, want %d", ErrMirrorCorrupt, s.Path, s.FirstLSN, m.next)
		}
		m.next += uint64(frames)
		m.segs = append(m.segs, mirrorSeg{
			index: s.Index, firstLSN: s.FirstLSN, size: s.HeaderSize + validLen,
			epoch: s.Epoch, hdrSize: s.HeaderSize,
		})
	}
	if n := len(m.segs); n > 0 {
		f, err := os.OpenFile(storage.SegmentPath(prefix, m.segs[n-1].index), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		m.f = f
	}
	if m.next > 0 {
		m.synced.Store(m.next - 1)
	}
	return m, nil
}

// empty reports whether the mirror holds no segments yet.
func (m *mirror) empty() bool { return len(m.segs) == 0 }

// nextLSN returns the LSN the next appended frame will carry (0 when the
// mirror is empty and unpositioned).
func (m *mirror) nextLSN() uint64 { return m.next }

// last returns the final (writable) segment.
func (m *mirror) last() mirrorSeg { return m.segs[len(m.segs)-1] }

// epoch returns the highest fencing epoch the mirror has durably copied —
// segment epochs are monotone within one log, so it is the final
// segment's. 0 on an empty mirror (nothing observed yet).
func (m *mirror) epoch() uint64 {
	if m.empty() {
		return 0
	}
	return m.last().epoch
}

// sizeOf returns the mirrored byte count of the segment with the given
// index, or false if the mirror does not hold it.
func (m *mirror) sizeOf(index uint64) (int64, bool) {
	for i := len(m.segs) - 1; i >= 0; i-- {
		if m.segs[i].index == index {
			return m.segs[i].size, true
		}
	}
	return 0, false
}

// beginSegment seals the current segment (fsync + close) and starts a new
// mirrored segment file with the given identity, reproducing the source's
// exact header bytes (format version, fencing epoch) so the mirror stays
// byte-identical to the source log. On a non-empty mirror the new
// segment's firstLSN must continue the sequence exactly.
func (m *mirror) beginSegment(hdr storage.SegmentHeader) error {
	if !m.empty() {
		if hdr.FirstLSN != m.next {
			return fmt.Errorf("%w: segment %d starts at lsn %d, mirror expects %d", ErrMirrorCorrupt, hdr.Index, hdr.FirstLSN, m.next)
		}
		if hdr.Index <= m.last().index {
			return fmt.Errorf("%w: segment index %d not above %d", ErrMirrorCorrupt, hdr.Index, m.last().index)
		}
		if err := m.sync(); err != nil {
			return err
		}
		if err := m.f.Close(); err != nil {
			return err
		}
		m.f = nil
	} else {
		m.next = hdr.FirstLSN
		if hdr.FirstLSN > 0 {
			m.synced.Store(hdr.FirstLSN - 1)
		}
	}
	path := storage.SegmentPath(m.prefix, hdr.Index)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	raw := storage.EncodeSegmentHeader(hdr)
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	m.f = f
	m.dirty = true
	m.segs = append(m.segs, mirrorSeg{
		index: hdr.Index, firstLSN: hdr.FirstLSN, size: int64(len(raw)),
		epoch: hdr.Epoch, hdrSize: int64(len(raw)),
	})
	return nil
}

// append writes a run of whole valid frames to the current segment and
// advances the LSN cursor by their count.
func (m *mirror) append(frames []byte, count int) error {
	if m.f == nil {
		return fmt.Errorf("%w: append with no open segment", ErrMirrorCorrupt)
	}
	if _, err := m.f.Write(frames); err != nil {
		return err
	}
	m.segs[len(m.segs)-1].size += int64(len(frames))
	m.next += uint64(count)
	m.dirty = true
	return nil
}

// sync fsyncs the current segment if it has unsynced appends and advances
// the durable mirror frontier.
func (m *mirror) sync() error {
	if !m.dirty || m.f == nil {
		return nil
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.dirty = false
	if m.next > 0 {
		m.synced.Store(m.next - 1)
	}
	return nil
}

// syncedLSN returns the highest LSN known durable in the mirror — the
// frontier a follower may acknowledge to the source. Safe to call from
// any goroutine.
func (m *mirror) syncedLSN() uint64 { return m.synced.Load() }

// prune removes leading sealed segments whose every record has LSN <=
// below — safe once a replica checkpoint at that LSN has been installed,
// because restart replay begins strictly past it. The final segment is
// always kept.
func (m *mirror) prune(below uint64) (int, error) {
	removed := 0
	for len(m.segs) > 1 && m.segs[1].firstLSN <= below+1 {
		if err := os.Remove(storage.SegmentPath(m.prefix, m.segs[0].index)); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		m.segs = m.segs[1:]
		removed++
	}
	return removed, nil
}

// replay streams every mirrored record through fn in LSN order — the
// restart path that re-applies the mirror past a replica checkpoint. Each
// record carries the fencing epoch of the segment that holds it; a mirror
// legitimately mixes epochs around a promotion point, and the applier's
// LSN idempotence check runs before its epoch check so replay can never
// false-fence.
func (m *mirror) replay(fn func(epoch, lsn uint64, payload []byte) error) error {
	lsn := uint64(0)
	for i, s := range m.segs {
		data, err := os.ReadFile(storage.SegmentPath(m.prefix, s.index))
		if err != nil {
			return err
		}
		if int64(len(data)) < s.size {
			return fmt.Errorf("%w: segment %d shrank", ErrMirrorCorrupt, s.index)
		}
		payloads, validLen, err := storage.DecodeFrames(data[s.hdrSize:s.size])
		if err != nil {
			return err
		}
		if validLen != s.size-s.hdrSize {
			return fmt.Errorf("%w: segment %d invalid frames", ErrMirrorCorrupt, s.index)
		}
		if i == 0 {
			lsn = s.firstLSN
		}
		for _, p := range payloads {
			if err := fn(s.epoch, lsn, p); err != nil {
				return err
			}
			lsn++
		}
	}
	return nil
}

// close fsyncs and releases the writable segment handle. The mirror files
// stay on disk — promotion reopens them as the new primary's WAL.
func (m *mirror) close() error {
	if m.f == nil {
		return nil
	}
	err := m.sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}
