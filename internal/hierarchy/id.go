// Package hierarchy implements the concept hierarchies of the DC-tree paper
// (Ester, Kohlhammer, Kriegel, ICDE 2000, §3.1).
//
// A concept hierarchy is a tree over the attribute values of one dimension:
// the root is the special value ALL, the edges are is-a relationships, and
// the hierarchy level of a value is its distance from the leaves (leaves are
// level 0). The hierarchy induces the partial ordering a ⪯ b ("a is-a b")
// that the DC-tree uses instead of an artificial total ordering.
//
// Every attribute value is interned to a fixed-size 32-bit ID exactly as in
// the paper: the highest four bits carry the hierarchy level (so IDs from
// different levels can never be confused) and the remaining 28 bits carry a
// per-level code assigned in insertion order. The insertion-order code also
// serves as the total ordering that the X-tree baseline requires (§5.2).
package hierarchy

import "fmt"

// ID is the interned 32-bit identifier of one attribute value.
//
// Layout: bits 31..28 = hierarchy level, bits 27..0 = per-level code.
// Level 15 is reserved for the ALL value, the root of every hierarchy.
type ID uint32

const (
	// LevelBits is the number of high bits reserved for the level tag.
	LevelBits = 4
	// CodeBits is the number of low bits carrying the per-level code.
	CodeBits = 32 - LevelBits
	// MaxCode is the largest per-level code an ID can carry.
	MaxCode = 1<<CodeBits - 1
	// LevelALL is the reserved level tag of the ALL value.
	LevelALL = 1<<LevelBits - 1
	// MaxLevel is the highest level a named hierarchy layer may occupy.
	MaxLevel = LevelALL - 1
)

// ALL is the root of every concept hierarchy; it denotes the union of all
// values of the dimension.
const ALL = ID(LevelALL << CodeBits)

// MakeID packs a level and a per-level code into an ID.
// It panics if either component is out of range; both are bounded by
// construction everywhere inside this package.
func MakeID(level int, code uint32) ID {
	if level < 0 || level > LevelALL {
		panic(fmt.Sprintf("hierarchy: level %d out of range [0,%d]", level, LevelALL))
	}
	if code > MaxCode {
		panic(fmt.Sprintf("hierarchy: code %d exceeds %d", code, uint32(MaxCode)))
	}
	return ID(uint32(level)<<CodeBits | code)
}

// Level reports the hierarchy level encoded in the ID (0 = leaf).
func (id ID) Level() int { return int(id >> CodeBits) }

// Code reports the per-level code encoded in the ID. Codes are assigned in
// insertion order, which defines the total ordering used by the X-tree
// baseline.
func (id ID) Code() uint32 { return uint32(id) & MaxCode }

// IsALL reports whether the ID is the reserved ALL value.
func (id ID) IsALL() bool { return id.Level() == LevelALL }

// String renders the ID as "Lℓ#code" (or "ALL").
func (id ID) String() string {
	if id.IsALL() {
		return "ALL"
	}
	return fmt.Sprintf("L%d#%d", id.Level(), id.Code())
}
