package hierarchy

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of a complete hierarchy (dimension dictionary), used when
// a DC-tree is persisted: the index is useless without its dictionaries, so
// they are stored in the tree's metadata blob.
//
// Layout:
//
//	uvarint  name length, name bytes
//	uvarint  level count
//	per level: uvarint level-name length, bytes
//	per level (leaf upward): uvarint value count; per value:
//	  uint32 parent ID, uvarint name length, name bytes
//
// Values are written in insertion (code) order, so decoding reassigns the
// identical IDs.

// AppendEncode appends the binary encoding of the hierarchy to buf.
func (h *Hierarchy) AppendEncode(buf []byte) []byte {
	buf = appendString(buf, h.name)
	buf = binary.AppendUvarint(buf, uint64(len(h.levelNames)))
	for _, ln := range h.levelNames {
		buf = appendString(buf, ln)
	}
	for level := 0; level < len(h.levelNames); level++ {
		ids := h.byLevel[level]
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(h.parents[level][id.Code()]))
			buf = appendString(buf, h.valueNames[level][id.Code()])
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeHierarchy parses a hierarchy from the front of buf, returning it and
// the number of bytes consumed.
func DecodeHierarchy(buf []byte) (*Hierarchy, int, error) {
	off := 0
	name, n, err := readString(buf[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("hierarchy decode: name: %w", err)
	}
	off += n
	levels, n := binary.Uvarint(buf[off:])
	if n <= 0 || levels == 0 || levels > MaxLevel+1 {
		return nil, 0, fmt.Errorf("hierarchy decode: bad level count")
	}
	off += n
	levelNames := make([]string, levels)
	for i := range levelNames {
		levelNames[i], n, err = readString(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("hierarchy decode: level name %d: %w", i, err)
		}
		off += n
	}
	h, err := New(name, levelNames...)
	if err != nil {
		return nil, 0, err
	}
	for level := 0; level < int(levels); level++ {
		count, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("hierarchy decode: value count at level %d", level)
		}
		off += n
		for i := uint64(0); i < count; i++ {
			if len(buf[off:]) < 4 {
				return nil, 0, fmt.Errorf("hierarchy decode: truncated parent at level %d", level)
			}
			parent := ID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			vname, n, err := readString(buf[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("hierarchy decode: value name: %w", err)
			}
			off += n
			// Parents live one level up and must already be decoded
			// (levels stream leaf-up, but parents reference upward) —
			// so defer wiring: register with raw parent and fix below.
			id, err := h.registerChildRaw(level, parent, vname)
			if err != nil {
				return nil, 0, err
			}
			if id.Code() != uint32(i) {
				return nil, 0, fmt.Errorf("hierarchy decode: non-dense code at level %d", level)
			}
		}
	}
	// Validate the parent links now that all levels are present.
	if err := h.Validate(); err != nil {
		return nil, 0, fmt.Errorf("hierarchy decode: %w", err)
	}
	return h, off, nil
}

// registerChildRaw is registerChild without the parent-existence implied by
// top-down registration; decoding streams levels leaf-up, so a value's
// parent ID is known before the parent value itself is materialized.
func (h *Hierarchy) registerChildRaw(level int, parent ID, name string) (ID, error) {
	key := scopedKey(parent, name)
	if _, ok := h.intern[level][key]; ok {
		return 0, fmt.Errorf("%w: duplicate %q at level %d", ErrInconsistent, name, level)
	}
	if len(h.byLevel[level]) > MaxCode {
		return 0, fmt.Errorf("%w: level %d of %q", ErrFull, level, h.name)
	}
	id := MakeID(level, uint32(len(h.byLevel[level])))
	h.intern[level][key] = id
	h.byLevel[level] = append(h.byLevel[level], id)
	h.parents[level] = append(h.parents[level], parent)
	h.valueNames[level] = append(h.valueNames[level], name)
	return id, nil
}

func readString(buf []byte) (string, int, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 {
		return "", 0, fmt.Errorf("bad length")
	}
	if uint64(len(buf)-n) < l {
		return "", 0, fmt.Errorf("truncated string")
	}
	return string(buf[n : n+int(l)]), n + int(l), nil
}
