package hierarchy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestFindByName(t *testing.T) {
	h := mustCustomer(t)
	h.Register("Europe", "Germany", "Autos", "C#1")
	h.Register("Europe", "France", "Autos", "C#2")
	h.Register("America", "USA", "Autos", "C#3")
	h.Register("Europe", "Germany", "Wine", "C#4")

	autos, err := h.FindByName(1, "Autos")
	if err != nil {
		t.Fatal(err)
	}
	if len(autos) != 3 {
		t.Fatalf("FindByName(Autos) = %d matches, want 3 (scoped per nation)", len(autos))
	}
	for _, id := range autos {
		if id.Level() != 1 {
			t.Fatalf("match at wrong level: %v", id)
		}
		name, _ := h.ValueName(id)
		if name != "Autos" {
			t.Fatalf("match with wrong name: %q", name)
		}
	}
	none, err := h.FindByName(2, "Atlantis")
	if err != nil || len(none) != 0 {
		t.Fatalf("FindByName(Atlantis) = %v, %v", none, err)
	}
	if _, err := h.FindByName(9, "x"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestLevelIndex(t *testing.T) {
	h := mustCustomer(t)
	for want, name := range []string{"Customer", "MktSegment", "Nation", "Region"} {
		got, err := h.LevelIndex(name)
		if err != nil || got != want {
			t.Fatalf("LevelIndex(%s) = %d, %v; want %d", name, got, err, want)
		}
	}
	if _, err := h.LevelIndex("Continent"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestParentTable(t *testing.T) {
	h := mustCustomer(t)
	leaf, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	table, err := h.ParentTable(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1 {
		t.Fatalf("leaf parent table len = %d", len(table))
	}
	seg, _ := h.Parent(leaf)
	if table[leaf.Code()] != seg {
		t.Fatalf("ParentTable[leaf] = %v, want %v", table[leaf.Code()], seg)
	}
	top, _ := h.ParentTable(3)
	reg, _ := h.AncestorAt(leaf, 3)
	if !top[reg.Code()].IsALL() {
		t.Fatal("top-level parent must be ALL")
	}
	if _, err := h.ParentTable(-1); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := h.ParentTable(4); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestHierarchyCodecRoundtrip(t *testing.T) {
	h := mustCustomer(t)
	rng := rand.New(rand.NewSource(5))
	var leaves []ID
	for i := 0; i < 500; i++ {
		leaf, err := h.Register(
			fmt.Sprintf("R%d", rng.Intn(5)),
			fmt.Sprintf("N%d", rng.Intn(20)),
			fmt.Sprintf("S%d", rng.Intn(4)),
			fmt.Sprintf("C%d", i),
		)
		if err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, leaf)
	}
	buf := h.AppendEncode(nil)
	h2, n, err := DecodeHierarchy(buf)
	if err != nil {
		t.Fatalf("DecodeHierarchy: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if h2.Name() != h.Name() || h2.Depth() != h.Depth() {
		t.Fatalf("shape mismatch: %s/%d", h2.Name(), h2.Depth())
	}
	// Every ID resolves identically in the decoded hierarchy.
	for _, leaf := range leaves {
		p1, _ := h.Path(leaf)
		p2, err := h2.Path(leaf)
		if err != nil || p1 != p2 {
			t.Fatalf("path mismatch for %v: %q vs %q (%v)", leaf, p1, p2, err)
		}
		for lvl := 0; lvl <= 3; lvl++ {
			a1, _ := h.AncestorAt(leaf, lvl)
			a2, _ := h2.AncestorAt(leaf, lvl)
			if a1 != a2 {
				t.Fatalf("ancestor mismatch at level %d: %v vs %v", lvl, a1, a2)
			}
		}
	}
	if err := h2.Validate(); err != nil {
		t.Fatalf("decoded Validate: %v", err)
	}
	// Re-encoding is byte-identical (canonical form).
	buf2 := h2.AppendEncode(nil)
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoding differs")
	}
}

func TestHierarchyCodecRejectsCorrupt(t *testing.T) {
	h := mustCustomer(t)
	h.Register("Europe", "Germany", "Autos", "C#1")
	buf := h.AppendEncode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeHierarchy(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
