package hierarchy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCustomer(t testing.TB) *Hierarchy {
	t.Helper()
	h, err := New("Customer", "Customer", "MktSegment", "Nation", "Region")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func TestIDPacking(t *testing.T) {
	cases := []struct {
		level int
		code  uint32
	}{
		{0, 0}, {0, 1}, {3, 42}, {MaxLevel, MaxCode}, {7, 1 << 20},
	}
	for _, c := range cases {
		id := MakeID(c.level, c.code)
		if id.Level() != c.level {
			t.Errorf("MakeID(%d,%d).Level() = %d", c.level, c.code, id.Level())
		}
		if id.Code() != c.code {
			t.Errorf("MakeID(%d,%d).Code() = %d", c.level, c.code, id.Code())
		}
		if id.IsALL() {
			t.Errorf("MakeID(%d,%d) unexpectedly ALL", c.level, c.code)
		}
	}
	if !ALL.IsALL() {
		t.Error("ALL.IsALL() = false")
	}
	if ALL.Level() != LevelALL {
		t.Errorf("ALL.Level() = %d, want %d", ALL.Level(), LevelALL)
	}
}

func TestIDPackingRoundtripQuick(t *testing.T) {
	f := func(level uint8, code uint32) bool {
		l := int(level) % (LevelALL + 1)
		c := code & MaxCode
		id := MakeID(l, c)
		return id.Level() == l && id.Code() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeIDPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MakeID(-1, 0) },
		func() { MakeID(LevelALL+1, 0) },
		func() { MakeID(0, MaxCode+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIDString(t *testing.T) {
	if got := ALL.String(); got != "ALL" {
		t.Errorf("ALL.String() = %q", got)
	}
	if got := MakeID(2, 7).String(); got != "L2#7" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("empty"); err == nil {
		t.Error("New with no levels should fail")
	}
	names := make([]string, MaxLevel+2)
	for i := range names {
		names[i] = fmt.Sprintf("L%d", i)
	}
	if _, err := New("toodeep", names...); err == nil {
		t.Error("New with too many levels should fail")
	}
	h, err := New("ok", names[:MaxLevel+1]...)
	if err != nil {
		t.Fatalf("New at max depth: %v", err)
	}
	if h.Depth() != MaxLevel+1 {
		t.Errorf("Depth = %d", h.Depth())
	}
}

func TestRegisterAndLookup(t *testing.T) {
	h := mustCustomer(t)
	leaf, err := h.Register("Europe", "Germany", "Autos", "C#1")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if leaf.Level() != 0 {
		t.Errorf("leaf level = %d", leaf.Level())
	}
	again, err := h.Register("Europe", "Germany", "Autos", "C#1")
	if err != nil {
		t.Fatalf("re-Register: %v", err)
	}
	if again != leaf {
		t.Errorf("re-registration returned %v, want %v", again, leaf)
	}
	got, err := h.Lookup("Europe", "Germany", "Autos", "C#1")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != leaf {
		t.Errorf("Lookup = %v, want %v", got, leaf)
	}
	if _, err := h.Lookup("Europe", "Germany", "Autos", "C#404"); err == nil {
		t.Error("Lookup of unknown leaf should fail")
	}
	if _, err := h.Register("Europe", "Germany"); err == nil {
		t.Error("Register with short path should fail")
	}
	if _, err := h.Lookup("Europe", "Germany", "Autos", "C#1", "extra"); err == nil {
		t.Error("Lookup with long path should fail")
	}
}

// TestScopedNames checks that equal strings under different parents intern
// to distinct IDs (per-nation market segments in the paper's schema).
func TestScopedNames(t *testing.T) {
	h := mustCustomer(t)
	a, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	b, _ := h.Register("Europe", "France", "Autos", "C#2")
	segA, _ := h.AncestorAt(a, 1)
	segB, _ := h.AncestorAt(b, 1)
	if segA == segB {
		t.Errorf("identical segment names under different nations interned to same ID %v", segA)
	}
	nameA, _ := h.ValueName(segA)
	nameB, _ := h.ValueName(segB)
	if nameA != "Autos" || nameB != "Autos" {
		t.Errorf("segment names = %q, %q", nameA, nameB)
	}
}

func TestParentChain(t *testing.T) {
	h := mustCustomer(t)
	leaf, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	seg, err := h.Parent(leaf)
	if err != nil {
		t.Fatalf("Parent: %v", err)
	}
	nat, _ := h.Parent(seg)
	reg, _ := h.Parent(nat)
	top, _ := h.Parent(reg)
	if !top.IsALL() {
		t.Errorf("top parent = %v, want ALL", top)
	}
	if seg.Level() != 1 || nat.Level() != 2 || reg.Level() != 3 {
		t.Errorf("levels = %d,%d,%d", seg.Level(), nat.Level(), reg.Level())
	}
	if p, err := h.Parent(ALL); err != nil || !p.IsALL() {
		t.Errorf("Parent(ALL) = %v, %v", p, err)
	}
	if _, err := h.Parent(MakeID(0, 12345)); err == nil {
		t.Error("Parent of unregistered ID should fail")
	}
}

func TestAncestorAt(t *testing.T) {
	h := mustCustomer(t)
	leaf, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	for level := 0; level <= 3; level++ {
		anc, err := h.AncestorAt(leaf, level)
		if err != nil {
			t.Fatalf("AncestorAt(%d): %v", level, err)
		}
		if anc.Level() != level {
			t.Errorf("AncestorAt(%d).Level() = %d", level, anc.Level())
		}
	}
	if anc, err := h.AncestorAt(leaf, LevelALL); err != nil || !anc.IsALL() {
		t.Errorf("AncestorAt(ALL) = %v, %v", anc, err)
	}
	nat, _ := h.AncestorAt(leaf, 2)
	if _, err := h.AncestorAt(nat, 0); err == nil {
		t.Error("lowering a value should fail")
	}
	if _, err := h.AncestorAt(ALL, 2); err == nil {
		t.Error("specializing ALL should fail")
	}
	if _, err := h.AncestorAt(leaf, 9); err == nil {
		t.Error("AncestorAt above named levels should fail")
	}
}

func TestUnderPartialOrdering(t *testing.T) {
	h := mustCustomer(t)
	c1, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	c2, _ := h.Register("Europe", "France", "Wine", "C#2")
	c3, _ := h.Register("America", "USA", "Tech", "C#3")
	germany, _ := h.AncestorAt(c1, 2)
	europe, _ := h.AncestorAt(c1, 3)
	america, _ := h.AncestorAt(c3, 3)

	if !h.Under(c1, germany) || !h.Under(c1, europe) || !h.Under(germany, europe) {
		t.Error("expected c1 ⪯ Germany ⪯ Europe")
	}
	if !h.Under(c2, europe) {
		t.Error("expected c2 ⪯ Europe")
	}
	if h.Under(c3, europe) || h.Under(c1, america) {
		t.Error("cross-region Under should be false")
	}
	if !h.Under(c1, c1) {
		t.Error("Under must be reflexive")
	}
	if !h.Under(c1, ALL) || !h.Under(europe, ALL) || !h.Under(ALL, ALL) {
		t.Error("everything is under ALL")
	}
	if h.Under(ALL, europe) {
		t.Error("ALL under a named value should be false")
	}
	if h.Under(europe, germany) {
		t.Error("Under must not invert the hierarchy")
	}
	if h.Under(germany, c1) {
		t.Error("a coarser value is not under a finer one")
	}
}

func TestValuesAtAndCounts(t *testing.T) {
	h := mustCustomer(t)
	h.Register("Europe", "Germany", "Autos", "C#1")
	h.Register("Europe", "Germany", "Autos", "C#2")
	h.Register("Europe", "France", "Wine", "C#3")
	h.Register("America", "USA", "Tech", "C#4")

	wantCounts := map[int]int{0: 4, 1: 3, 2: 3, 3: 2}
	for level, want := range wantCounts {
		got, err := h.CountAt(level)
		if err != nil {
			t.Fatalf("CountAt(%d): %v", level, err)
		}
		if got != want {
			t.Errorf("CountAt(%d) = %d, want %d", level, got, want)
		}
		vals, err := h.ValuesAt(level)
		if err != nil || len(vals) != want {
			t.Errorf("ValuesAt(%d) len = %d, want %d (err %v)", level, len(vals), want, err)
		}
		for i, id := range vals {
			if id.Code() != uint32(i) || id.Level() != level {
				t.Errorf("ValuesAt(%d)[%d] = %v: codes must be dense insertion order", level, i, id)
			}
		}
	}
	if n, err := h.CountAt(LevelALL); err != nil || n != 1 {
		t.Errorf("CountAt(ALL) = %d, %v", n, err)
	}
	if _, err := h.CountAt(99); err == nil {
		t.Error("CountAt(99) should fail")
	}
	if _, err := h.ValuesAt(-1); err == nil {
		t.Error("ValuesAt(-1) should fail")
	}
}

func TestChildrenAndLeafCount(t *testing.T) {
	h := mustCustomer(t)
	c1, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	h.Register("Europe", "Germany", "Autos", "C#2")
	h.Register("Europe", "Germany", "Wine", "C#3")
	h.Register("Europe", "France", "Wine", "C#4")
	h.Register("America", "USA", "Tech", "C#5")

	topKids, err := h.Children(ALL)
	if err != nil || len(topKids) != 2 {
		t.Fatalf("Children(ALL) = %v, %v; want 2 regions", topKids, err)
	}
	germany, _ := h.AncestorAt(c1, 2)
	kids, _ := h.Children(germany)
	if len(kids) != 2 {
		t.Errorf("Children(Germany) = %d segments, want 2", len(kids))
	}
	if kids, _ := h.Children(c1); kids != nil {
		t.Errorf("Children(leaf) = %v, want nil", kids)
	}
	if _, err := h.Children(MakeID(2, 999)); err == nil {
		t.Error("Children of unknown ID should fail")
	}

	europe, _ := h.AncestorAt(c1, 3)
	if n, _ := h.LeafCountUnder(europe); n != 4 {
		t.Errorf("LeafCountUnder(Europe) = %d, want 4", n)
	}
	if n, _ := h.LeafCountUnder(germany); n != 3 {
		t.Errorf("LeafCountUnder(Germany) = %d, want 3", n)
	}
	if n, _ := h.LeafCountUnder(ALL); n != 5 {
		t.Errorf("LeafCountUnder(ALL) = %d, want 5", n)
	}
	if n, _ := h.LeafCountUnder(c1); n != 1 {
		t.Errorf("LeafCountUnder(leaf) = %d, want 1", n)
	}
	if _, err := h.LeafCountUnder(MakeID(1, 999)); err == nil {
		t.Error("LeafCountUnder of unknown ID should fail")
	}
}

func TestPathRendering(t *testing.T) {
	h := mustCustomer(t)
	leaf, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	p, err := h.Path(leaf)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if p != "Europe/Germany/Autos/C#1" {
		t.Errorf("Path = %q", p)
	}
	if p, _ := h.Path(ALL); p != "ALL" {
		t.Errorf("Path(ALL) = %q", p)
	}
	if _, err := h.Path(MakeID(0, 777)); err == nil {
		t.Error("Path of unknown ID should fail")
	}
}

func TestValidate(t *testing.T) {
	h := mustCustomer(t)
	for i := 0; i < 100; i++ {
		h.Register(fmt.Sprintf("R%d", i%3), fmt.Sprintf("N%d", i%7), fmt.Sprintf("S%d", i%4), fmt.Sprintf("C%d", i))
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Corrupt the parent map and check Validate notices.
	leaf := h.byLevel[0][0]
	h.parents[0][leaf.Code()] = MakeID(3, 0) // skips a level
	if err := h.Validate(); err == nil {
		t.Error("Validate should detect a parent that skips a level")
	}
}

// TestRandomizedPartialOrderLaws drives random registrations and checks the
// algebraic laws of ⪯ (reflexive, antisymmetric across levels, transitive,
// consistent with AncestorAt).
func TestRandomizedPartialOrderLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := mustCustomer(t)
	var leaves []ID
	for i := 0; i < 400; i++ {
		leaf, err := h.Register(
			fmt.Sprintf("R%d", rng.Intn(5)),
			fmt.Sprintf("N%d", rng.Intn(20)),
			fmt.Sprintf("S%d", rng.Intn(5)),
			fmt.Sprintf("C%d", i),
		)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		leaves = append(leaves, leaf)
	}
	for i := 0; i < 2000; i++ {
		a := leaves[rng.Intn(len(leaves))]
		lvl := rng.Intn(4)
		anc, err := h.AncestorAt(a, lvl)
		if err != nil {
			t.Fatalf("AncestorAt: %v", err)
		}
		if !h.Under(a, anc) {
			t.Fatalf("a ⪯ AncestorAt(a) violated: %v, %v", a, anc)
		}
		// Transitivity: anc2 above anc implies a under anc2.
		if lvl < 3 {
			anc2, _ := h.AncestorAt(anc, lvl+1)
			if !h.Under(anc, anc2) || !h.Under(a, anc2) {
				t.Fatalf("transitivity violated: %v %v %v", a, anc, anc2)
			}
		}
		b := leaves[rng.Intn(len(leaves))]
		if a != b && h.Under(a, b) {
			t.Fatalf("distinct leaves cannot be ordered: %v %v", a, b)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after randomized load: %v", err)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{MakeID(2, 5), MakeID(0, 9), MakeID(2, 1), MakeID(1, 0), ALL}
	SortIDs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
	if !ids[len(ids)-1].IsALL() {
		t.Errorf("ALL should sort last: %v", ids)
	}
}

func BenchmarkRegister(b *testing.B) {
	h := mustCustomer(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Register(fmt.Sprintf("R%d", i%5), fmt.Sprintf("N%d", i%25), fmt.Sprintf("S%d", i%5), fmt.Sprintf("C%d", i))
	}
}

func BenchmarkAncestorAt(b *testing.B) {
	h := mustCustomer(b)
	leaf, _ := h.Register("Europe", "Germany", "Autos", "C#1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AncestorAt(leaf, 3)
	}
}
