package hierarchy

import (
	"bytes"
	"testing"
)

// FuzzDecodeHierarchy: arbitrary bytes must either fail or produce a
// hierarchy that passes Validate and round-trips through the encoder.
func FuzzDecodeHierarchy(f *testing.F) {
	h, err := New("Customer", "Region", "Nation", "Customer")
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range [][]string{
		{"EMEA", "Germany", "c-1"},
		{"EMEA", "Germany", "c-2"},
		{"EMEA", "France", "c-3"},
		{"APAC", "Japan", "c-4"},
	} {
		if _, err := h.Register(path...); err != nil {
			f.Fatal(err)
		}
	}
	valid := h.AppendEncode(nil)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	// Negative-length regression seed: uvarint above MaxInt64.
	f.Add(append(bytes.Repeat([]byte{0xff}, 9), 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, n, err := DecodeHierarchy(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("decoded hierarchy fails validation: %v", err)
		}
		// Round-trip: re-encoding the decoded hierarchy and decoding again
		// must reproduce an identical encoding (IDs are assigned in stream
		// order, so the encoding is canonical).
		enc := dec.AppendEncode(nil)
		dec2, _, err := DecodeHierarchy(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding: %v", err)
		}
		if !bytes.Equal(enc, dec2.AppendEncode(nil)) {
			t.Fatal("canonical encoding not stable across a round trip")
		}
	})
}
