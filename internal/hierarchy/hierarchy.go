package hierarchy

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by Hierarchy operations.
var (
	ErrBadLevel     = errors.New("hierarchy: level out of range")
	ErrUnknownValue = errors.New("hierarchy: unknown attribute value")
	ErrUnknownID    = errors.New("hierarchy: unknown id")
	ErrBadPath      = errors.New("hierarchy: path length does not match hierarchy depth")
	ErrInconsistent = errors.New("hierarchy: value already registered under a different parent")
	ErrFull         = errors.New("hierarchy: level is full (2^28 values)")
)

// Hierarchy is one concept hierarchy: the dynamically maintained dictionary
// of attribute values of a single dimension, their interned IDs, and the
// father relation between them (§3.1 of the paper).
//
// The hierarchy has Depth() named levels. Level 0 holds the leaves (the
// finest attribute, e.g. Customer ID) and level Depth()-1 holds the coarsest
// named attribute (e.g. Region). Above all named levels sits the implicit
// root ALL.
//
// A Hierarchy is not safe for concurrent mutation; the DC-tree serializes
// access through its own lock.
type Hierarchy struct {
	name       string
	levelNames []string // index = level; 0 is the leaf level

	// parents and valueNames are dense per-level tables indexed by ID
	// code: the father dictionary and the value strings. Dense slices keep
	// AncestorAt — the single hottest operation of the index — free of
	// map lookups.
	parents    [][]ID
	valueNames [][]string
	byLevel    [][]ID // per level, IDs in insertion (total) order
	intern     []map[string]ID

	// onRegister, when set, observes every NEW value registration (never
	// lookups of existing values). The durable tree uses it to frame
	// dictionary deltas into the WAL so records can carry interned IDs
	// instead of full string paths.
	onRegister RegisterFunc
}

// RegisterFunc observes one new value registration: the freshly minted id,
// its parent (ALL for top-level values) and the value's name.
type RegisterFunc func(id, parent ID, name string)

// SetRegisterHook installs fn to be called on every registration of a value
// that did not exist before (a nil fn removes the hook). Replay-path
// restores via RestoreValue do not fire the hook: they re-apply deltas that
// are already in the log.
func (h *Hierarchy) SetRegisterHook(fn RegisterFunc) { h.onRegister = fn }

// New creates an empty hierarchy for one dimension. levelNames are ordered
// from the leaf level upward, e.g.
//
//	New("Customer", "Customer", "MktSegment", "Nation", "Region")
//
// declares levels 0..3; ALL sits implicitly above "Region".
func New(name string, levelNames ...string) (*Hierarchy, error) {
	if len(levelNames) == 0 {
		return nil, fmt.Errorf("%w: a hierarchy needs at least one level", ErrBadLevel)
	}
	if len(levelNames) > MaxLevel+1 {
		return nil, fmt.Errorf("%w: at most %d levels supported", ErrBadLevel, MaxLevel+1)
	}
	h := &Hierarchy{
		name:       name,
		levelNames: append([]string(nil), levelNames...),
		parents:    make([][]ID, len(levelNames)),
		valueNames: make([][]string, len(levelNames)),
		byLevel:    make([][]ID, len(levelNames)),
		intern:     make([]map[string]ID, len(levelNames)),
	}
	for i := range h.intern {
		h.intern[i] = make(map[string]ID)
	}
	return h, nil
}

// MustNew is New but panics on error; intended for static schema literals.
func MustNew(name string, levelNames ...string) *Hierarchy {
	h, err := New(name, levelNames...)
	if err != nil {
		panic(err)
	}
	return h
}

// Name returns the dimension name the hierarchy describes.
func (h *Hierarchy) Name() string { return h.name }

// Depth returns the number of named levels (excluding ALL).
func (h *Hierarchy) Depth() int { return len(h.levelNames) }

// TopLevel returns the highest named level, Depth()-1.
func (h *Hierarchy) TopLevel() int { return len(h.levelNames) - 1 }

// LevelName returns the attribute name of a level (0 = leaf).
func (h *Hierarchy) LevelName(level int) (string, error) {
	if level < 0 || level >= len(h.levelNames) {
		return "", fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	return h.levelNames[level], nil
}

// Register interns one full concept path ordered from the top named level
// down to the leaf, creating any values that do not exist yet, and returns
// the leaf ID. For the Customer hierarchy above:
//
//	leaf, err := h.Register("Europe", "Germany", "Automobiles", "Customer#42")
//
// Registration is how the DC-tree maintains its dictionaries dynamically:
// new products, customers, etc. slot into the partial ordering naturally
// (Fig. 2 of the paper), with no renumbering of existing values.
//
// A value string may repeat under different parents (market segment names
// repeat per nation); values are identified by their full path. Register
// returns ErrInconsistent only if the same (level, parent, name) triple was
// somehow interned with a conflicting ID, which cannot happen through this
// API.
func (h *Hierarchy) Register(pathTopDown ...string) (ID, error) {
	if len(pathTopDown) != len(h.levelNames) {
		return 0, fmt.Errorf("%w: got %d components, hierarchy %q has %d levels",
			ErrBadPath, len(pathTopDown), h.name, len(h.levelNames))
	}
	parent := ALL
	// Walk from the top named level (h.TopLevel()) down to level 0.
	for i, component := range pathTopDown {
		level := h.TopLevel() - i
		id, err := h.registerChild(level, parent, component)
		if err != nil {
			return 0, err
		}
		parent = id
	}
	return parent, nil
}

// registerChild interns one value at the given level under the given parent.
func (h *Hierarchy) registerChild(level int, parent ID, name string) (ID, error) {
	key := scopedKey(parent, name)
	if id, ok := h.intern[level][key]; ok {
		if h.parents[level][id.Code()] != parent {
			return 0, fmt.Errorf("%w: %q at level %d", ErrInconsistent, name, level)
		}
		return id, nil
	}
	if len(h.byLevel[level]) > MaxCode {
		return 0, fmt.Errorf("%w: level %d of %q", ErrFull, level, h.name)
	}
	id := MakeID(level, uint32(len(h.byLevel[level])))
	h.intern[level][key] = id
	h.byLevel[level] = append(h.byLevel[level], id)
	h.parents[level] = append(h.parents[level], parent)
	h.valueNames[level] = append(h.valueNames[level], name)
	if h.onRegister != nil {
		h.onRegister(id, parent, name)
	}
	return id, nil
}

// RestoreValue re-applies one logged registration delta: value name under
// parent must receive exactly id. It is idempotent — a value already
// registered with the same identity is a no-op — because recovery can
// replay deltas whose registration is also present in a fuzzily captured
// checkpoint. Any OTHER mismatch (a code that would leave a hole in the
// dense per-level numbering, a different parent, a conflicting existing ID)
// means the log and the dictionary disagree and fails closed. The
// registration hook deliberately does not fire: the delta being restored is
// already in the log.
func (h *Hierarchy) RestoreValue(id, parent ID, name string) error {
	level := id.Level()
	if level >= len(h.levelNames) {
		return fmt.Errorf("%w: %d in delta for %q", ErrBadLevel, level, h.name)
	}
	key := scopedKey(parent, name)
	if have, ok := h.intern[level][key]; ok {
		if have != id {
			return fmt.Errorf("%w: delta %v for %q/%q, registered as %v",
				ErrInconsistent, id, h.name, name, have)
		}
		return nil // checkpoint already carried this registration
	}
	if uint32(len(h.byLevel[level])) != id.Code() {
		return fmt.Errorf("%w: delta %v for %q would leave a code hole (next code %d)",
			ErrInconsistent, id, h.name, len(h.byLevel[level]))
	}
	if level == h.TopLevel() {
		if !parent.IsALL() {
			return fmt.Errorf("%w: top-level delta %v has parent %v", ErrInconsistent, id, parent)
		}
	} else if parent.Level() != level+1 || !h.registered(parent) {
		return fmt.Errorf("%w: delta %v parent %v not registered one level up",
			ErrInconsistent, id, parent)
	}
	h.intern[level][key] = id
	h.byLevel[level] = append(h.byLevel[level], id)
	h.parents[level] = append(h.parents[level], parent)
	h.valueNames[level] = append(h.valueNames[level], name)
	return nil
}

// scopedKey scopes a value name by its parent so that identical strings
// under different parents (e.g. per-nation market segments) stay distinct.
func scopedKey(parent ID, name string) string {
	return fmt.Sprintf("%08x/%s", uint32(parent), name)
}

// parentOf returns the father of a registered ID via the dense tables.
func (h *Hierarchy) parentOf(id ID) (ID, bool) {
	if id.IsALL() {
		return ALL, true
	}
	level := id.Level()
	if level >= len(h.parents) || int(id.Code()) >= len(h.parents[level]) {
		return 0, false
	}
	return h.parents[level][id.Code()], true
}

// registered reports whether an ID was interned in this hierarchy.
func (h *Hierarchy) registered(id ID) bool {
	_, ok := h.parentOf(id)
	return ok && !id.IsALL()
}

// Lookup finds the ID of a value by its full top-down path.
func (h *Hierarchy) Lookup(pathTopDown ...string) (ID, error) {
	if len(pathTopDown) > len(h.levelNames) {
		return 0, fmt.Errorf("%w: got %d components, hierarchy %q has %d levels",
			ErrBadPath, len(pathTopDown), h.name, len(h.levelNames))
	}
	parent := ALL
	for i, component := range pathTopDown {
		level := h.TopLevel() - i
		id, ok := h.intern[level][scopedKey(parent, component)]
		if !ok {
			return 0, fmt.Errorf("%w: %q at level %d of %q", ErrUnknownValue, component, level, h.name)
		}
		parent = id
	}
	return parent, nil
}

// Parent returns the direct generalization of id (ALL for top-level values).
func (h *Hierarchy) Parent(id ID) (ID, error) {
	if id.IsALL() {
		return ALL, nil
	}
	p, ok := h.parentOf(id)
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownID, id)
	}
	return p, nil
}

// AncestorAt lifts id to the given level by following the father dictionary.
// level may be LevelALL (returns ALL) or any named level ≥ id.Level().
// Lifting to a level below id's own is an error: the partial ordering only
// generalizes upward.
func (h *Hierarchy) AncestorAt(id ID, level int) (ID, error) {
	if level == LevelALL {
		return ALL, nil
	}
	if level < 0 || level >= len(h.levelNames) {
		return 0, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	if id.IsALL() {
		return 0, fmt.Errorf("%w: cannot specialize ALL to level %d", ErrBadLevel, level)
	}
	if level < id.Level() {
		return 0, fmt.Errorf("%w: cannot lower %v to level %d", ErrBadLevel, id, level)
	}
	cur := id
	for cur.Level() < level {
		p, ok := h.parentOf(cur)
		if !ok {
			return 0, fmt.Errorf("%w: %v", ErrUnknownID, cur)
		}
		cur = p
	}
	return cur, nil
}

// Under reports the partial ordering a ⪯ b of Definition 1: a equals b, b is
// ALL, or a is a (direct or indirect) descendant of b in the hierarchy.
func (h *Hierarchy) Under(a, b ID) bool {
	if b.IsALL() || a == b {
		return true
	}
	if a.IsALL() || a.Level() >= b.Level() {
		return false
	}
	anc, err := h.AncestorAt(a, b.Level())
	return err == nil && anc == b
}

// ValuesAt returns the IDs registered at a level, in insertion order.
// The returned slice is owned by the hierarchy; callers must not mutate it.
func (h *Hierarchy) ValuesAt(level int) ([]ID, error) {
	if level == LevelALL {
		return []ID{ALL}, nil
	}
	if level < 0 || level >= len(h.levelNames) {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	return h.byLevel[level], nil
}

// CountAt returns the number of values registered at a level.
func (h *Hierarchy) CountAt(level int) (int, error) {
	if level == LevelALL {
		return 1, nil
	}
	if level < 0 || level >= len(h.levelNames) {
		return 0, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	return len(h.byLevel[level]), nil
}

// ValueName returns the original string of an interned value.
func (h *Hierarchy) ValueName(id ID) (string, error) {
	if id.IsALL() {
		return "ALL", nil
	}
	level := id.Level()
	if level >= len(h.valueNames) || int(id.Code()) >= len(h.valueNames[level]) {
		return "", fmt.Errorf("%w: %v", ErrUnknownID, id)
	}
	return h.valueNames[level][id.Code()], nil
}

// Path renders the full top-down path of an ID, e.g.
// "Europe/Germany/Automobiles/Customer#42".
func (h *Hierarchy) Path(id ID) (string, error) {
	if id.IsALL() {
		return "ALL", nil
	}
	var parts []string
	cur := id
	for !cur.IsALL() {
		name, err := h.ValueName(cur)
		if err != nil {
			return "", err
		}
		parts = append(parts, name)
		p, err := h.Parent(cur)
		if err != nil {
			return "", err
		}
		cur = p
	}
	// Reverse to top-down order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return joinSlash(parts), nil
}

func joinSlash(parts []string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	buf := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			buf = append(buf, '/')
		}
		buf = append(buf, p...)
	}
	return string(buf)
}

// Children returns the direct specializations of id at the level below it,
// in insertion order. For ALL it returns the values of the top named level.
// This is O(values at child level); it exists for tooling and tests, not for
// the insert/query hot paths, which only walk upward.
func (h *Hierarchy) Children(id ID) ([]ID, error) {
	var childLevel int
	switch {
	case id.IsALL():
		childLevel = h.TopLevel()
	case id.Level() == 0:
		return nil, nil
	default:
		if !h.registered(id) {
			return nil, fmt.Errorf("%w: %v", ErrUnknownID, id)
		}
		childLevel = id.Level() - 1
	}
	var out []ID
	for _, c := range h.byLevel[childLevel] {
		if h.parents[childLevel][c.Code()] == id {
			out = append(out, c)
		}
	}
	return out, nil
}

// LeafCountUnder returns the number of registered leaves below id (or the
// total number of leaves for ALL). Used by workload generators to reason
// about selectivity.
func (h *Hierarchy) LeafCountUnder(id ID) (int, error) {
	if id.IsALL() {
		return len(h.byLevel[0]), nil
	}
	if !h.registered(id) {
		return 0, fmt.Errorf("%w: %v", ErrUnknownID, id)
	}
	if id.Level() == 0 {
		return 1, nil
	}
	n := 0
	for _, leaf := range h.byLevel[0] {
		if h.Under(leaf, id) {
			n++
		}
	}
	return n, nil
}

// ParentTable returns the dense father table of a level: entry c is the
// parent ID of MakeID(level, c). The returned slice is owned by the
// hierarchy and must not be modified; it exists for query-time mask
// propagation, which needs raw indexed access to stay off the allocation
// and function-call paths.
func (h *Hierarchy) ParentTable(level int) ([]ID, error) {
	if level < 0 || level >= len(h.levelNames) {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	return h.parents[level], nil
}

// FindByName returns every ID at the given level whose value name equals
// name. Several IDs can match: value names are scoped by their parent
// (e.g. the market segment "AUTOMOBILE" exists under every nation), and a
// by-name query means "all of them".
func (h *Hierarchy) FindByName(level int, name string) ([]ID, error) {
	if level < 0 || level >= len(h.levelNames) {
		return nil, fmt.Errorf("%w: %d", ErrBadLevel, level)
	}
	var out []ID
	for _, id := range h.byLevel[level] {
		if h.valueNames[level][id.Code()] == name {
			out = append(out, id)
		}
	}
	return out, nil
}

// LevelIndex resolves a level by its attribute name (e.g. "Nation" -> 2).
func (h *Hierarchy) LevelIndex(levelName string) (int, error) {
	for i, n := range h.levelNames {
		if n == levelName {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: hierarchy %q has no level %q", ErrBadLevel, h.name, levelName)
}

// Validate checks internal consistency: every non-top value has a parent one
// level up, codes are dense per level, and names are interned. It is used by
// tests and by dctool's fsck mode.
func (h *Hierarchy) Validate() error {
	for level, ids := range h.byLevel {
		for i, id := range ids {
			if id.Level() != level {
				return fmt.Errorf("hierarchy %q: id %v filed at level %d", h.name, id, level)
			}
			if id.Code() != uint32(i) {
				return fmt.Errorf("hierarchy %q: id %v has non-dense code at index %d", h.name, id, i)
			}
			p, ok := h.parentOf(id)
			if !ok {
				return fmt.Errorf("hierarchy %q: id %v has no parent", h.name, id)
			}
			wantLevel := level + 1
			if level == h.TopLevel() {
				if !p.IsALL() {
					return fmt.Errorf("hierarchy %q: top value %v parent %v is not ALL", h.name, id, p)
				}
			} else if p.Level() != wantLevel {
				return fmt.Errorf("hierarchy %q: id %v parent %v not one level up", h.name, id, p)
			} else if int(p.Code()) >= len(h.byLevel[wantLevel]) {
				return fmt.Errorf("hierarchy %q: id %v parent %v not registered", h.name, id, p)
			}
			if _, err := h.ValueName(id); err != nil {
				return fmt.Errorf("hierarchy %q: id %v has no name", h.name, id)
			}
		}
	}
	return nil
}

// SortIDs sorts a slice of IDs in the canonical order used throughout the
// index: by level tag, then by code — i.e. plain numeric order on the packed
// representation.
func SortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
