package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := New()
	if b.Count() != 0 || b.Contains(0) {
		t.Fatal("fresh bitset not empty")
	}
	rows := []uint32{0, 1, 65535, 65536, 1 << 20, 42, 42}
	for _, r := range rows {
		b.Add(r)
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6 (duplicate collapsed)", b.Count())
	}
	for _, r := range rows {
		if !b.Contains(r) {
			t.Fatalf("missing %d", r)
		}
	}
	for _, r := range []uint32{2, 65534, 1<<20 + 1} {
		if b.Contains(r) {
			t.Fatalf("phantom %d", r)
		}
	}
	var got []uint32
	b.ForEach(func(r uint32) bool { got = append(got, r); return true })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("ForEach not ascending: %v", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("ForEach visited %d", len(got))
	}
	// Early stop.
	n := 0
	b.ForEach(func(uint32) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	if b.String() == "" || b.MemoryBytes() <= 0 {
		t.Fatal("diagnostics empty")
	}
}

func TestContainerConversion(t *testing.T) {
	b := New()
	// Force an array→words conversion by exceeding arrayMax in one chunk.
	for i := 0; i < arrayMax+10; i++ {
		b.Add(uint32(i * 3 % containerBits))
	}
	want := map[uint32]bool{}
	for i := 0; i < arrayMax+10; i++ {
		want[uint32(i*3%containerBits)] = true
	}
	if b.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(want))
	}
	for r := range want {
		if !b.Contains(r) {
			t.Fatalf("missing %d after conversion", r)
		}
	}
	// And back down via And with a sparse set.
	sparse := New()
	sparse.Add(3)
	sparse.Add(9)
	sparse.Add(999999)
	b.And(sparse)
	if b.Count() != 2 || !b.Contains(3) || !b.Contains(9) {
		t.Fatalf("And result: %v", b)
	}
}

// TestSetAlgebraAgainstMap drives random Or/And chains against a map oracle.
func TestSetAlgebraAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 30; round++ {
		mk := func(n int, span uint32) (*Bitset, map[uint32]bool) {
			b, m := New(), map[uint32]bool{}
			for i := 0; i < n; i++ {
				r := rng.Uint32() % span
				b.Add(r)
				m[r] = true
			}
			return b, m
		}
		span := []uint32{1000, 70000, 1 << 21}[round%3]
		a, am := mk(rng.Intn(8000), span)
		c, cm := mk(rng.Intn(8000), span)

		union := a.Clone()
		union.Or(c)
		wantUnion := map[uint32]bool{}
		for r := range am {
			wantUnion[r] = true
		}
		for r := range cm {
			wantUnion[r] = true
		}
		if union.Count() != len(wantUnion) {
			t.Fatalf("round %d: union count %d want %d", round, union.Count(), len(wantUnion))
		}
		union.ForEach(func(r uint32) bool {
			if !wantUnion[r] {
				t.Fatalf("round %d: phantom %d in union", round, r)
			}
			return true
		})

		inter := a.Clone()
		inter.And(c)
		wantInter := 0
		for r := range am {
			if cm[r] {
				wantInter++
				if !inter.Contains(r) {
					t.Fatalf("round %d: missing %d in intersection", round, r)
				}
			}
		}
		if inter.Count() != wantInter {
			t.Fatalf("round %d: inter count %d want %d", round, inter.Count(), wantInter)
		}
		// The original is untouched by Clone-based ops.
		if a.Count() != len(am) {
			t.Fatalf("round %d: source mutated", round)
		}
	}
}

func TestBitsetQuickAddContains(t *testing.T) {
	f := func(rows []uint32) bool {
		b := New()
		seen := map[uint32]bool{}
		for _, r := range rows {
			b.Add(r)
			seen[r] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for r := range seen {
			if !b.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBitsetAdd(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint32(i))
	}
}

func BenchmarkBitsetAndDense(b *testing.B) {
	x, y := New(), New()
	for i := 0; i < 200000; i++ {
		if i%2 == 0 {
			x.Add(uint32(i))
		}
		if i%3 == 0 {
			y.Add(uint32(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.And(y)
	}
}
