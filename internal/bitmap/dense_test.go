package bitmap

import "testing"

func TestDenseSetGet(t *testing.T) {
	d := NewDense(200)
	if len(d) != DenseWords(200) {
		t.Fatalf("words = %d, want %d", len(d), DenseWords(200))
	}
	codes := []uint32{0, 1, 63, 64, 65, 127, 128, 199}
	for _, c := range codes {
		d.Set(c)
	}
	for _, c := range codes {
		if !d.Get(c) {
			t.Errorf("Get(%d) = false after Set", c)
		}
	}
	for _, c := range []uint32{2, 62, 66, 126, 129, 198} {
		if d.Get(c) {
			t.Errorf("Get(%d) = true, never set", c)
		}
	}
	if got := d.Count(); got != len(codes) {
		t.Errorf("Count = %d, want %d", got, len(codes))
	}
	// Codes beyond the backing words read as absent (concurrent inserts may
	// register values after a query snapshot was taken).
	if d.Get(4096) {
		t.Error("out-of-range Get = true")
	}
	d.Clear()
	if d.Count() != 0 {
		t.Errorf("Count after Clear = %d", d.Count())
	}
	for _, c := range codes {
		if d.Get(c) {
			t.Errorf("Get(%d) = true after Clear", c)
		}
	}
}

func TestDenseZeroLength(t *testing.T) {
	var d Dense
	if d.Get(0) || d.Count() != 0 {
		t.Error("zero-length Dense is not empty")
	}
	if DenseWords(0) != 0 || DenseWords(1) != 1 || DenseWords(64) != 1 || DenseWords(65) != 2 {
		t.Error("DenseWords boundaries wrong")
	}
}
