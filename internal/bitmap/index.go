package bitmap

import (
	"errors"
	"fmt"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// Errors returned by the index.
var (
	ErrBadMeasure = errors.New("bitmap: measure index out of range")
	ErrNoDelete   = errors.New("bitmap: deletion requires a rebuild (static index, §2 of the paper)")
)

// Index is a bitmap join index over a data cube: for every dimension and
// every hierarchy level, one compressed bit vector per attribute value,
// marking the fact rows whose coordinate rolls up to that value. Records
// themselves live in a row-ordered arrary (the "fact table").
//
// Append maintains the index incrementally (setting one bit per level per
// dimension); Delete is intentionally unsupported — a bitmap index is the
// paper's example of a *static* derived structure that forces bulk
// rebuild windows.
type Index struct {
	schema *cube.Schema
	recs   []cube.Record
	// bits[d][level][code] is the bit vector of attribute value
	// MakeID(level, code) of dimension d.
	bits [][][]*Bitset

	// RowsFetched counts fact rows touched during query aggregation (the
	// secondary-index penalty: bitmaps locate rows, measures still need
	// fetching).
	RowsFetched int64
}

// NewIndex creates an empty bitmap join index for the schema.
func NewIndex(schema *cube.Schema) *Index {
	bits := make([][][]*Bitset, schema.Dims())
	for d := range bits {
		h, _ := schema.Dim(d)
		bits[d] = make([][]*Bitset, h.Depth())
	}
	return &Index{schema: schema, bits: bits}
}

// Schema returns the indexed cube's schema.
func (ix *Index) Schema() *cube.Schema { return ix.schema }

// Count returns the number of indexed fact rows.
func (ix *Index) Count() int { return len(ix.recs) }

// Append adds one record at the next row position.
func (ix *Index) Append(rec cube.Record) error {
	if err := ix.schema.ValidateRecord(rec); err != nil {
		return err
	}
	row := uint32(len(ix.recs))
	space := ix.schema.Space()
	for d, h := range space {
		cur := rec.Coords[d]
		for level := 0; level < h.Depth(); level++ {
			if level > 0 {
				p, err := h.Parent(cur)
				if err != nil {
					return err
				}
				cur = p
			}
			ix.bit(d, level, cur.Code()).Add(row)
		}
	}
	ix.recs = append(ix.recs, rec.Clone())
	return nil
}

// bit returns (allocating as needed) the bit vector of one value.
func (ix *Index) bit(d, level int, code uint32) *Bitset {
	vectors := ix.bits[d][level]
	for int(code) >= len(vectors) {
		vectors = append(vectors, nil)
	}
	if vectors[code] == nil {
		vectors[code] = New()
	}
	ix.bits[d][level] = vectors
	return vectors[code]
}

// Delete always fails: the paper's point about bitmap indexes (§2).
func (ix *Index) Delete(cube.Record) error { return ErrNoDelete }

// RangeAgg answers a range query: per constrained dimension the value
// bitmaps are ORed, the per-dimension results are ANDed, and the measure
// is aggregated by fetching each qualifying fact row.
func (ix *Index) RangeAgg(q mds.MDS, measure int) (cube.Agg, error) {
	if measure < 0 || measure >= ix.schema.Measures() {
		return cube.Agg{}, fmt.Errorf("%w: %d", ErrBadMeasure, measure)
	}
	if err := q.Validate(ix.schema.Space()); err != nil {
		return cube.Agg{}, err
	}
	var acc *Bitset
	for d := range q {
		if q[d].Level == hierarchy.LevelALL {
			continue
		}
		dim := New()
		vectors := ix.bits[d][q[d].Level]
		for _, id := range q[d].IDs {
			if int(id.Code()) < len(vectors) && vectors[id.Code()] != nil {
				dim.Or(vectors[id.Code()])
			}
		}
		if acc == nil {
			acc = dim
		} else {
			acc.And(dim)
		}
		if acc.Count() == 0 {
			return cube.Agg{}, nil
		}
	}

	var agg cube.Agg
	if acc == nil {
		// Fully unconstrained: aggregate the whole fact table.
		for i := range ix.recs {
			agg.Add(ix.recs[i].Measures[measure])
		}
		ix.RowsFetched += int64(len(ix.recs))
		return agg, nil
	}
	acc.ForEach(func(row uint32) bool {
		agg.Add(ix.recs[row].Measures[measure])
		ix.RowsFetched++
		return true
	})
	return agg, nil
}

// RangeQuery is RangeAgg narrowed to one operator.
func (ix *Index) RangeQuery(q mds.MDS, op cube.Op, measure int) (float64, error) {
	agg, err := ix.RangeAgg(q, measure)
	if err != nil {
		return 0, err
	}
	return agg.Value(op), nil
}

// MemoryBytes estimates the total compressed size of all bit vectors.
func (ix *Index) MemoryBytes() int {
	n := 0
	for _, dim := range ix.bits {
		for _, level := range dim {
			for _, b := range level {
				if b != nil {
					n += b.MemoryBytes()
				}
			}
		}
	}
	return n
}
