package bitmap

// Dense is an uncompressed, word-packed bitset over a small code domain
// (hierarchy-level value codes, not fact rows — for row sets use Bitset).
// It is a plain word slice so callers can carve many bitsets out of one
// shared arena: a Dense of n bits occupies DenseWords(n) words, 8× denser
// than a []bool, and a membership test is one shift-and-mask on a word —
// the compact-hierarchical-representation idea of Brisaboa et al.
// (arXiv:1612.04094) applied to per-query membership masks.
//
// The zero-length Dense is a valid empty set. Get is bounds-tolerant (codes
// beyond the backing words read as absent); Set panics beyond capacity,
// like a slice write.
type Dense []uint64

// DenseWords returns the number of words backing a Dense of n bits.
func DenseWords(n int) int { return (n + 63) / 64 }

// NewDense returns a zeroed Dense with capacity for n bits.
func NewDense(n int) Dense { return make(Dense, DenseWords(n)) }

// Set marks code i as a member.
func (d Dense) Set(i uint32) { d[i>>6] |= 1 << (i & 63) }

// Get reports whether code i is a member; codes beyond the backing words
// are absent.
func (d Dense) Get(i uint32) bool {
	w := int(i >> 6)
	return w < len(d) && d[w]>>(i&63)&1 != 0
}

// Clear zeroes every bit, keeping the capacity.
func (d Dense) Clear() {
	for i := range d {
		d[i] = 0
	}
}

// Count returns the number of set bits.
func (d Dense) Count() int {
	n := 0
	for _, w := range d {
		n += popcount(w)
	}
	return n
}
