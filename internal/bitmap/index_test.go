package bitmap

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/seqscan"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Brand")
	tim := hierarchy.MustNew("Time", "Month", "Year")
	return cube.MustNewSchema([]*hierarchy.Hierarchy{cust, part, tim}, "Price")
}

func genRecords(t testing.TB, s *cube.Schema, rng *rand.Rand, n int) []cube.Record {
	t.Helper()
	recs := make([]cube.Record, n)
	for i := range recs {
		r, err := s.InternRecord([][]string{
			{fmt.Sprintf("R%d", rng.Intn(4)), fmt.Sprintf("N%d", rng.Intn(12)), fmt.Sprintf("C%d", rng.Intn(400))},
			{fmt.Sprintf("B%d", rng.Intn(8)), fmt.Sprintf("P%d", rng.Intn(300))},
			{fmt.Sprintf("Y%d", rng.Intn(5)), fmt.Sprintf("M%d", rng.Intn(60))},
		}, []float64{float64(rng.Intn(1000))})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	return recs
}

// randomQuery mirrors the core test generator: per dimension a random
// level and a random subset of its registered values.
func randomQuery(rng *rand.Rand, s *cube.Schema, selectivity float64) mds.MDS {
	space := s.Space()
	q := make(mds.MDS, len(space))
	for d, h := range space {
		if rng.Intn(6) == 0 {
			q[d] = mds.AllDim()
			continue
		}
		level := rng.Intn(h.Depth())
		vals, _ := h.ValuesAt(level)
		if len(vals) == 0 {
			q[d] = mds.AllDim()
			continue
		}
		k := int(selectivity * float64(len(vals)))
		if k < 1 {
			k = 1
		}
		perm := rng.Perm(len(vals))[:k]
		ids := make([]hierarchy.ID, k)
		for i, p := range perm {
			ids[i] = vals[p]
		}
		hierarchy.SortIDs(ids)
		q[d] = mds.DimSet{Level: level, IDs: ids}
	}
	return q
}

// TestIndexAgainstSeqScan is the oracle: the bitmap index must return the
// same aggregates as the sequential scan for every random query.
func TestIndexAgainstSeqScan(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	recs := genRecords(t, s, rng, 4000)

	ix := NewIndex(s)
	scan := seqscan.New(s)
	for _, r := range recs {
		if err := ix.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := scan.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Count() != 4000 {
		t.Fatalf("Count = %d", ix.Count())
	}

	for i := 0; i < 300; i++ {
		q := randomQuery(rng, s, []float64{0.01, 0.05, 0.25}[i%3])
		want, err := scan.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || got.Sum != want.Sum ||
			(want.Count > 0 && (got.Min != want.Min || got.Max != want.Max)) {
			t.Fatalf("query %d: bitmap %+v != scan %+v\nq=%v", i, got, want, q)
		}
	}
	if ix.RowsFetched == 0 {
		t.Fatal("row-fetch accounting missing")
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("memory accounting missing")
	}
}

func TestIndexSemantics(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(9))
	recs := genRecords(t, s, rng, 200)
	ix := NewIndex(s)
	var total float64
	for _, r := range recs {
		if err := ix.Append(r); err != nil {
			t.Fatal(err)
		}
		total += r.Measures[0]
	}

	// Fully unconstrained query = whole fact table.
	got, err := ix.RangeQuery(mds.Top(3), cube.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("ALL sum = %g want %g", got, total)
	}
	// Disjoint constraint yields the empty aggregate quickly.
	q := mds.Top(3)
	q[0] = mds.DimSet{Level: 0, IDs: []hierarchy.ID{recs[0].Coords[0]}}
	q[1] = mds.DimSet{Level: 0, IDs: []hierarchy.ID{recs[1].Coords[1]}}
	agg, err := ix.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (Not necessarily empty, but must match a manual check.)
	var want cube.Agg
	space := s.Space()
	for _, r := range recs {
		ok, _ := q.ContainsLeaves(space, r.Coords)
		if ok {
			want.Add(r.Measures[0])
		}
	}
	if agg != want {
		t.Fatalf("agg %+v want %+v", agg, want)
	}

	// The paper's point: no deletion without a rebuild.
	if err := ix.Delete(recs[0]); err != ErrNoDelete {
		t.Fatalf("Delete = %v, want ErrNoDelete", err)
	}
	// Validation errors.
	if _, err := ix.RangeAgg(mds.Top(3), 5); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := ix.RangeAgg(mds.Top(2), 0); err == nil {
		t.Fatal("bad arity accepted")
	}
	bad := recs[0].Clone()
	bad.Coords[0] = hierarchy.MakeID(1, 0)
	if err := ix.Append(bad); err == nil {
		t.Fatal("invalid record accepted")
	}
}
