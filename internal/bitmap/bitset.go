// Package bitmap implements the bitmap-index baseline of the DC-tree
// paper's related work (§2): per-attribute-value bit vectors over the
// fact records, with one index per hierarchy level of every dimension
// (the "bitmap join index" of O'Neil/Graefe precomputes exactly these
// dimension-table joins).
//
// The paper's two criticisms of bitmap indexes for dynamic warehouses are
// both reproducible with this implementation:
//
//  1. they are effectively static — Append is cheap, but the index offers
//     no record deletion short of a rebuild, and compressed runs degrade
//     under random single-bit updates;
//  2. they are secondary indexes: a multi-dimensional range query ANDs
//     per-dimension ORs of bit vectors and then still has to fetch every
//     qualifying record for the measure aggregation, so performance
//     degrades toward a scan as selectivity grows.
//
// The bitmaps use a two-container compression scheme (sorted array for
// sparse ranges, packed words for dense ranges) in the spirit of roaring
// bitmaps, sized for fact tables in the hundreds of thousands of rows.
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	// containerBits is the number of row positions one container spans.
	containerBits = 1 << 16
	// arrayMax is the cardinality threshold above which an array
	// container converts to a packed bitmap container.
	arrayMax = 4096
)

// container holds one 2^16-row chunk either as a sorted uint16 array
// (sparse) or as packed words (dense).
type container struct {
	array []uint16 // sorted, nil when words is used
	words []uint64 // 1024 words, nil when array is used
	n     int      // cardinality
}

// Bitset is a compressed set of row positions (uint32).
type Bitset struct {
	keys []uint32     // sorted container keys (row >> 16)
	cs   []*container // parallel to keys
}

// New returns an empty bitset.
func New() *Bitset { return &Bitset{} }

// findContainer returns the index of the container with the given key, or
// the insertion position with found=false.
func (b *Bitset) findContainer(key uint32) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

// Add inserts one row position.
func (b *Bitset) Add(row uint32) {
	key := row >> 16
	low := uint16(row)
	i, ok := b.findContainer(key)
	if !ok {
		c := &container{array: make([]uint16, 0, 8)}
		b.keys = append(b.keys, 0)
		b.cs = append(b.cs, nil)
		copy(b.keys[i+1:], b.keys[i:])
		copy(b.cs[i+1:], b.cs[i:])
		b.keys[i] = key
		b.cs[i] = c
	}
	b.cs[i].add(low)
}

func (c *container) add(v uint16) {
	if c.words != nil {
		w, bit := v>>6, uint64(1)<<(v&63)
		if c.words[w]&bit == 0 {
			c.words[w] |= bit
			c.n++
		}
		return
	}
	lo, hi := 0, len(c.array)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.array[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.array) && c.array[lo] == v {
		return
	}
	c.array = append(c.array, 0)
	copy(c.array[lo+1:], c.array[lo:])
	c.array[lo] = v
	c.n++
	if c.n > arrayMax {
		c.toWords()
	}
}

func (c *container) toWords() {
	words := make([]uint64, containerBits/64)
	for _, v := range c.array {
		words[v>>6] |= uint64(1) << (v & 63)
	}
	c.words = words
	c.array = nil
}

// Contains reports whether a row position is in the set.
func (b *Bitset) Contains(row uint32) bool {
	i, ok := b.findContainer(row >> 16)
	if !ok {
		return false
	}
	return b.cs[i].contains(uint16(row))
}

func (c *container) contains(v uint16) bool {
	if c.words != nil {
		return c.words[v>>6]&(uint64(1)<<(v&63)) != 0
	}
	lo, hi := 0, len(c.array)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.array[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.array) && c.array[lo] == v
}

// Count returns the set's cardinality.
func (b *Bitset) Count() int {
	n := 0
	for _, c := range b.cs {
		n += c.n
	}
	return n
}

// Or folds another bitset into this one (in-place union).
func (b *Bitset) Or(o *Bitset) {
	for j, key := range o.keys {
		i, ok := b.findContainer(key)
		if !ok {
			b.keys = append(b.keys, 0)
			b.cs = append(b.cs, nil)
			copy(b.keys[i+1:], b.keys[i:])
			copy(b.cs[i+1:], b.cs[i:])
			b.keys[i] = key
			b.cs[i] = o.cs[j].clone()
			continue
		}
		b.cs[i].or(o.cs[j])
	}
}

func (c *container) clone() *container {
	out := &container{n: c.n}
	if c.words != nil {
		out.words = append([]uint64(nil), c.words...)
	} else {
		out.array = append([]uint16(nil), c.array...)
	}
	return out
}

func (c *container) or(o *container) {
	if c.words == nil && o.words == nil {
		merged := make([]uint16, 0, len(c.array)+len(o.array))
		i, j := 0, 0
		for i < len(c.array) && j < len(o.array) {
			switch {
			case c.array[i] < o.array[j]:
				merged = append(merged, c.array[i])
				i++
			case c.array[i] > o.array[j]:
				merged = append(merged, o.array[j])
				j++
			default:
				merged = append(merged, c.array[i])
				i++
				j++
			}
		}
		merged = append(merged, c.array[i:]...)
		merged = append(merged, o.array[j:]...)
		c.array = merged
		c.n = len(merged)
		if c.n > arrayMax {
			c.toWords()
		}
		return
	}
	if c.words == nil {
		c.toWords()
	}
	if o.words != nil {
		n := 0
		for w := range c.words {
			c.words[w] |= o.words[w]
			n += popcount(c.words[w])
		}
		c.n = n
		return
	}
	for _, v := range o.array {
		w, bit := v>>6, uint64(1)<<(v&63)
		if c.words[w]&bit == 0 {
			c.words[w] |= bit
			c.n++
		}
	}
}

// And intersects this bitset with another in place.
func (b *Bitset) And(o *Bitset) {
	outKeys := b.keys[:0]
	outCs := b.cs[:0]
	for i, key := range b.keys {
		j, ok := o.findContainer(key)
		if !ok {
			continue
		}
		c := b.cs[i]
		c.and(o.cs[j])
		if c.n > 0 {
			outKeys = append(outKeys, key)
			outCs = append(outCs, c)
		}
	}
	b.keys = outKeys
	b.cs = outCs
}

func (c *container) and(o *container) {
	switch {
	case c.words != nil && o.words != nil:
		n := 0
		for w := range c.words {
			c.words[w] &= o.words[w]
			n += popcount(c.words[w])
		}
		c.n = n
		if c.n <= arrayMax/2 {
			c.toArray()
		}
	case c.words == nil && o.words == nil:
		out := c.array[:0]
		i, j := 0, 0
		for i < len(c.array) && j < len(o.array) {
			switch {
			case c.array[i] < o.array[j]:
				i++
			case c.array[i] > o.array[j]:
				j++
			default:
				out = append(out, c.array[i])
				i++
				j++
			}
		}
		c.array = out
		c.n = len(out)
	case c.words == nil: // c array, o words
		out := c.array[:0]
		for _, v := range c.array {
			if o.words[v>>6]&(uint64(1)<<(v&63)) != 0 {
				out = append(out, v)
			}
		}
		c.array = out
		c.n = len(out)
	default: // c words, o array
		words := make([]uint64, len(c.words))
		n := 0
		for _, v := range o.array {
			w, bit := v>>6, uint64(1)<<(v&63)
			if c.words[w]&bit != 0 {
				words[w] |= bit
				n++
			}
		}
		c.words = words
		c.n = n
		if c.n <= arrayMax/2 {
			c.toArray()
		}
	}
}

func (c *container) toArray() {
	arr := make([]uint16, 0, c.n)
	for w, word := range c.words {
		for word != 0 {
			bit := trailingZeros(word)
			arr = append(arr, uint16(w*64+bit))
			word &= word - 1
		}
	}
	c.array = arr
	c.words = nil
}

// ForEach streams the row positions in ascending order; fn returning
// false stops the iteration.
func (b *Bitset) ForEach(fn func(row uint32) bool) {
	for i, key := range b.keys {
		base := key << 16
		c := b.cs[i]
		if c.words == nil {
			for _, v := range c.array {
				if !fn(base | uint32(v)) {
					return
				}
			}
			continue
		}
		for w, word := range c.words {
			for word != 0 {
				bit := trailingZeros(word)
				if !fn(base | uint32(w*64+bit)) {
					return
				}
				word &= word - 1
			}
		}
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{
		keys: append([]uint32(nil), b.keys...),
		cs:   make([]*container, len(b.cs)),
	}
	for i, c := range b.cs {
		out.cs[i] = c.clone()
	}
	return out
}

// MemoryBytes estimates the compressed in-memory footprint.
func (b *Bitset) MemoryBytes() int {
	n := len(b.keys) * 12
	for _, c := range b.cs {
		if c.words != nil {
			n += len(c.words) * 8
		} else {
			n += len(c.array) * 2
		}
	}
	return n
}

// String renders a short summary.
func (b *Bitset) String() string {
	return fmt.Sprintf("Bitset{%d rows, %d containers, %dB}", b.Count(), len(b.cs), b.MemoryBytes())
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
