package xtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{
		DirCapacity:        6,
		LeafCapacity:       8,
		MinFillRatio:       0.35,
		MaxOverlapRatio:    0.20,
		MaxSupernodeBlocks: 8,
	}
}

func randPoint(rng *rand.Rand, dims int, span uint32) Point {
	p := make(Point, dims)
	for d := range p {
		p[d] = rng.Uint32() % span
	}
	return p
}

func TestRectOps(t *testing.T) {
	r := Rect{Lo: []uint32{1, 2}, Hi: []uint32{4, 6}}
	if err := r.Validate(2); err != nil {
		t.Fatal(err)
	}
	if r.Area() != 20 {
		t.Errorf("Area = %g", r.Area())
	}
	if r.Margin() != 7 {
		t.Errorf("Margin = %g", r.Margin())
	}
	if !r.ContainsPoint(Point{1, 2}) || !r.ContainsPoint(Point{4, 6}) {
		t.Error("closed bounds must be inside")
	}
	if r.ContainsPoint(Point{0, 2}) || r.ContainsPoint(Point{5, 6}) {
		t.Error("outside points reported inside")
	}
	s := Rect{Lo: []uint32{4, 5}, Hi: []uint32{9, 9}}
	if !r.Intersects(s) || !s.Intersects(r) {
		t.Error("touching rectangles must intersect")
	}
	if got := r.OverlapArea(s); got != 2 { // [4,4]×[5,6]
		t.Errorf("OverlapArea = %g", got)
	}
	u := Union(r, s)
	if u.Lo[0] != 1 || u.Hi[1] != 9 {
		t.Errorf("Union = %+v", u)
	}
	if !u.ContainsRect(r) || !u.ContainsRect(s) {
		t.Error("union must contain both")
	}
	far := Rect{Lo: []uint32{100, 100}, Hi: []uint32{101, 101}}
	if r.Intersects(far) || r.OverlapArea(far) != 0 {
		t.Error("disjoint rectangles must not overlap")
	}
	bad := Rect{Lo: []uint32{5, 1}, Hi: []uint32{4, 2}}
	if err := bad.Validate(2); err == nil {
		t.Error("inverted rect accepted")
	}
	if err := r.Validate(3); err == nil {
		t.Error("wrong dims accepted")
	}
	p := RectOf(Point{7, 8})
	if p.Area() != 1 || p.Margin() != 0 {
		t.Errorf("point rect area=%g margin=%g", p.Area(), p.Margin())
	}
}

func TestRectLawsQuick(t *testing.T) {
	mk := func(a, b, c, d uint32) Rect {
		r := Rect{Lo: []uint32{a % 1000, b % 1000}, Hi: []uint32{a%1000 + c%100, b%1000 + d%100}}
		return r
	}
	f := func(a1, b1, c1, d1, a2, b2, c2, d2 uint32) bool {
		r, s := mk(a1, b1, c1, d1), mk(a2, b2, c2, d2)
		u := Union(r, s)
		if !u.ContainsRect(r) || !u.ContainsRect(s) {
			return false
		}
		if r.OverlapArea(s) != s.OverlapArea(r) {
			return false
		}
		if (r.OverlapArea(s) > 0) != r.Intersects(s) {
			return false
		}
		return u.Area() >= r.Area() && u.Area() >= s.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInsertAndQueryAgainstBruteForce(t *testing.T) {
	const dims = 5
	tree, err := New(dims, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	type rec struct {
		p Point
		m float64
	}
	var recs []rec
	for i := 0; i < 2000; i++ {
		p := randPoint(rng, dims, 200)
		m := float64(rng.Intn(1000))
		recs = append(recs, rec{p, m})
		if err := tree.Insert(p, m); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Count() != 2000 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if tree.Height() < 2 {
		t.Fatal("no splits happened")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	for i := 0; i < 200; i++ {
		lo := randPoint(rng, dims, 150)
		q := Rect{Lo: lo, Hi: make([]uint32, dims)}
		for d := range lo {
			q.Hi[d] = lo[d] + uint32(rng.Intn(80))
		}
		var want Agg
		for _, r := range recs {
			if q.ContainsPoint(r.p) {
				want.add(r.m)
			}
		}
		got, _, err := tree.RangeQuery(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: got %+v want %+v", i, got, want)
		}
	}

	// Filtered queries re-check exact membership.
	q := Rect{Lo: make([]uint32, dims), Hi: make([]uint32, dims)}
	for d := range q.Hi {
		q.Hi[d] = 200
	}
	even := func(p Point) bool { return p[0]%2 == 0 }
	var want Agg
	for _, r := range recs {
		if even(r.p) {
			want.add(r.m)
		}
	}
	got, st, err := tree.RangeQuery(q, even)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("filtered: got %+v want %+v", got, want)
	}
	if st.NodesVisited == 0 || st.PointsMatched != int(want.Count) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueryValidation(t *testing.T) {
	tree, _ := New(3, smallConfig())
	if _, _, err := tree.RangeQuery(Rect{Lo: []uint32{0}, Hi: []uint32{1}}, nil); err == nil {
		t.Fatal("wrong-dims query accepted")
	}
	if err := tree.Insert(Point{1, 2}, 1); err == nil {
		t.Fatal("wrong-dims point accepted")
	}
}

func TestSupernodesUnderDuplicates(t *testing.T) {
	// Identical points cannot be partitioned with low overlap: supernodes
	// (or the capped forced split) must absorb them without losing data.
	tree, err := New(4, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := Point{5, 5, 5, 5}
	for i := 0; i < 300; i++ {
		if err := tree.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	q := Rect{Lo: []uint32{5, 5, 5, 5}, Hi: []uint32{5, 5, 5, 5}}
	agg, _, err := tree.RangeQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 300 || agg.Sum != 300 {
		t.Fatalf("agg = %+v", agg)
	}
	if tree.SupernodeCount() == 0 {
		t.Log("note: duplicates handled without supernodes (forced splits)")
	}
}

func TestClusteredDataUsesOverlapMinimalSplit(t *testing.T) {
	// Two well-separated clusters in dimension 0: overlap-minimal splits
	// along that dimension must keep directory overlap at zero.
	tree, err := New(6, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		p := randPoint(rng, 6, 50)
		if i%2 == 0 {
			p[0] += 10000
		}
		if err := tree.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// A query inside one cluster must not visit the other cluster's
	// subtree: node visits should be well under the total.
	q := Rect{Lo: []uint32{10000, 0, 0, 0, 0, 0}, Hi: []uint32{10050, 50, 50, 50, 50, 50}}
	_, st, _ := tree.RangeQuery(q, nil)
	if st.NodesVisited >= tree.NodeCount() {
		t.Fatalf("cluster query visited all %d nodes", tree.NodeCount())
	}
}

func TestLevelStats(t *testing.T) {
	tree, _ := New(3, smallConfig())
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		tree.Insert(randPoint(rng, 3, 100), 1)
	}
	levels := tree.LevelStats()
	if len(levels) != tree.Height() {
		t.Fatalf("levels %d != height %d", len(levels), tree.Height())
	}
	if levels[0].Nodes != 1 {
		t.Fatalf("root level nodes = %d", levels[0].Nodes)
	}
	leaf := levels[len(levels)-1]
	if int64(leaf.Entries) != tree.Count() {
		t.Fatalf("leaf entries %d != count %d", leaf.Entries, tree.Count())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := New(2, Config{DirCapacity: 1, LeafCapacity: 8}); err == nil {
		t.Error("tiny dir capacity accepted")
	}
	if _, err := New(2, Config{MinFillRatio: 0.9}); err == nil {
		t.Error("bad fill ratio accepted")
	}
	if _, err := New(2, Config{MaxOverlapRatio: 3}); err == nil {
		t.Error("bad overlap ratio accepted")
	}
}

func BenchmarkInsert(b *testing.B) {
	tree, _ := New(13, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = randPoint(rng, 13, 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Insert(pts[i%len(pts)], 1)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	tree, _ := New(13, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		tree.Insert(randPoint(rng, 13, 1000), 1)
	}
	queries := make([]Rect, 64)
	for i := range queries {
		lo := randPoint(rng, 13, 900)
		hi := make([]uint32, 13)
		for d := range hi {
			hi[d] = lo[d] + 100
		}
		queries[i] = Rect{Lo: lo, Hi: hi}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeQuery(queries[i%len(queries)], nil)
	}
}
