package xtree

import (
	"errors"
	"fmt"
)

// Config carries the X-tree's tuning knobs; the defaults mirror the
// published parameters (35 % minimum fanout for the overlap-minimal split,
// 20 % maximum overlap for the topological split).
type Config struct {
	DirCapacity        int
	LeafCapacity       int
	MinFillRatio       float64
	MaxOverlapRatio    float64
	MaxSupernodeBlocks int
}

// DefaultConfig returns the baseline configuration. The capacities match
// the DC-tree defaults so both trees see comparable fanouts.
func DefaultConfig() Config {
	return Config{
		DirCapacity:        24,
		LeafCapacity:       48,
		MinFillRatio:       0.35,
		MaxOverlapRatio:    0.20,
		MaxSupernodeBlocks: 64,
	}
}

// Errors returned by the X-tree.
var (
	ErrBadConfig = errors.New("xtree: invalid configuration")
	ErrBadPoint  = errors.New("xtree: point dimensionality mismatch")
)

func (c *Config) normalize() error {
	d := DefaultConfig()
	if c.DirCapacity == 0 {
		c.DirCapacity = d.DirCapacity
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = d.LeafCapacity
	}
	if c.MinFillRatio == 0 {
		c.MinFillRatio = d.MinFillRatio
	}
	if c.MaxOverlapRatio == 0 {
		c.MaxOverlapRatio = d.MaxOverlapRatio
	}
	if c.MaxSupernodeBlocks == 0 {
		c.MaxSupernodeBlocks = d.MaxSupernodeBlocks
	}
	switch {
	case c.DirCapacity < 4 || c.LeafCapacity < 4:
		return fmt.Errorf("%w: capacities too small", ErrBadConfig)
	case c.MinFillRatio < 0 || c.MinFillRatio > 0.5:
		return fmt.Errorf("%w: min fill ratio %g", ErrBadConfig, c.MinFillRatio)
	case c.MaxOverlapRatio < 0 || c.MaxOverlapRatio > 1:
		return fmt.Errorf("%w: max overlap ratio %g", ErrBadConfig, c.MaxOverlapRatio)
	}
	return nil
}

// xentry is one slot of an X-tree node: a child reference with its MBR, or
// a data point with its measure.
type xentry struct {
	rect    Rect
	child   *xnode  // directory entries
	point   Point   // leaf entries
	measure float64 // leaf entries
}

// xnode is an X-tree node. splitDim records the dimension along which the
// node's contents were last split — the "split history" that the
// overlap-minimal split exploits.
type xnode struct {
	leaf     bool
	blocks   int
	entries  []xentry
	splitDim int // -1 until the node participates in a split
}

func (n *xnode) capacity(cfg *Config) int {
	per := cfg.DirCapacity
	if n.leaf {
		per = cfg.LeafCapacity
	}
	return per * n.blocks
}

func (n *xnode) overflowing(cfg *Config) bool {
	return len(n.entries) > n.capacity(cfg)
}

func (n *xnode) mbr() Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.Enlarge(e.rect)
	}
	return r
}

// Tree is an in-memory X-tree over D-dimensional integer points. Like the
// paper's experimental setup, the baseline runs memory-resident; all
// block-level behaviour (capacities, supernodes) is simulated through the
// entry capacities.
type Tree struct {
	dims   int
	cfg    Config
	root   *xnode
	height int
	count  int64
	nodes  int
	supers int
}

// New creates an empty X-tree for D-dimensional points.
func New(dims int, cfg Config) (*Tree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("%w: %d dims", ErrBadConfig, dims)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Tree{
		dims:   dims,
		cfg:    cfg,
		root:   &xnode{leaf: true, blocks: 1, splitDim: -1},
		height: 1,
		nodes:  1,
	}, nil
}

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Count returns the number of stored points.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of live nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// SupernodeCount returns how many live nodes are supernodes.
func (t *Tree) SupernodeCount() int {
	n := 0
	var walk func(x *xnode)
	walk = func(x *xnode) {
		if x.blocks > 1 {
			n++
		}
		if x.leaf {
			return
		}
		for _, e := range x.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return n
}

// Insert adds one point with its measure value.
func (t *Tree) Insert(p Point, measure float64) error {
	if len(p) != t.dims {
		return fmt.Errorf("%w: got %d, want %d", ErrBadPoint, len(p), t.dims)
	}
	newChild := t.insertInto(t.root, p, measure)
	if newChild != nil {
		oldRoot := t.root
		t.root = &xnode{
			leaf:     false,
			blocks:   1,
			splitDim: -1,
			entries: []xentry{
				{rect: oldRoot.mbr(), child: oldRoot},
				{rect: newChild.mbr(), child: newChild},
			},
		}
		t.nodes++
		t.height++
	}
	t.count++
	return nil
}

// insertInto inserts the point below n and returns a new sibling if n was
// split.
func (t *Tree) insertInto(n *xnode, p Point, measure float64) *xnode {
	if n.leaf {
		n.entries = append(n.entries, xentry{rect: RectOf(p), point: append(Point(nil), p...), measure: measure})
		if n.overflowing(&t.cfg) {
			return t.splitNode(n)
		}
		return nil
	}
	idx := t.chooseSubtree(n, p)
	e := &n.entries[idx]
	e.rect.EnlargePoint(p)
	if sibling := t.insertInto(e.child, p, measure); sibling != nil {
		e.rect = e.child.mbr()
		n.entries = append(n.entries, xentry{rect: sibling.mbr(), child: sibling})
		if n.overflowing(&t.cfg) {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs the least growth, R*-style:
// at the level above the leaves the overlap enlargement decides first;
// everywhere the area enlargement and then the absolute area break ties.
func (t *Tree) chooseSubtree(n *xnode, p Point) int {
	childIsLeaf := len(n.entries) > 0 && n.entries[0].child.leaf

	best := 0
	var bestOverlapDelta, bestAreaDelta, bestArea float64
	for i := range n.entries {
		e := &n.entries[i]
		grown := e.rect.Clone()
		grown.EnlargePoint(p)
		areaDelta := grown.Area() - e.rect.Area()
		area := e.rect.Area()

		overlapDelta := 0.0
		if childIsLeaf {
			for j := range n.entries {
				if j == i {
					continue
				}
				overlapDelta += grown.OverlapArea(n.entries[j].rect) - e.rect.OverlapArea(n.entries[j].rect)
			}
		}
		if i == 0 {
			bestOverlapDelta, bestAreaDelta, bestArea = overlapDelta, areaDelta, area
			continue
		}
		better := false
		switch {
		case childIsLeaf && overlapDelta != bestOverlapDelta:
			better = overlapDelta < bestOverlapDelta
		case areaDelta != bestAreaDelta:
			better = areaDelta < bestAreaDelta
		default:
			better = area < bestArea
		}
		if better {
			best, bestOverlapDelta, bestAreaDelta, bestArea = i, overlapDelta, areaDelta, area
		}
	}
	return best
}
