package xtree

import "fmt"

// QueryStats describes the work one range query performed.
type QueryStats struct {
	NodesVisited   int
	EntriesScanned int
	PointsMatched  int
}

// Agg is the aggregate a range query accumulates over matching points'
// measures. Unlike the DC-tree, the X-tree stores no materialized
// aggregates: every matching point is fetched from a data node.
type Agg struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

func (a *Agg) add(x float64) {
	if a.Count == 0 {
		a.Sum, a.Count, a.Min, a.Max = x, 1, x, x
		return
	}
	a.Sum += x
	a.Count++
	if x < a.Min {
		a.Min = x
	}
	if x > a.Max {
		a.Max = x
	}
}

// RangeQuery aggregates the measures of all points inside the query
// rectangle that also pass filter (nil means no extra filtering). The
// filter is how the DC-tree experiments express value-set queries that an
// MBR can only over-approximate (§5.2: the range_mds is converted to a
// range_mbr; exact membership is re-checked per record).
func (t *Tree) RangeQuery(q Rect, filter func(Point) bool) (Agg, QueryStats, error) {
	var st QueryStats
	if err := q.Validate(t.dims); err != nil {
		return Agg{}, st, err
	}
	var agg Agg
	t.queryNode(t.root, q, filter, &agg, &st)
	return agg, st, nil
}

func (t *Tree) queryNode(n *xnode, q Rect, filter func(Point) bool, agg *Agg, st *QueryStats) {
	st.NodesVisited++
	if n.leaf {
		for i := range n.entries {
			st.EntriesScanned++
			e := &n.entries[i]
			if q.ContainsPoint(e.point) && (filter == nil || filter(e.point)) {
				agg.add(e.measure)
				st.PointsMatched++
			}
		}
		return
	}
	for i := range n.entries {
		st.EntriesScanned++
		if q.Intersects(n.entries[i].rect) {
			t.queryNode(n.entries[i].child, q, filter, agg, st)
		}
	}
}

// LevelStat mirrors core.LevelStat for the baseline tree.
type LevelStat struct {
	Level      int
	Nodes      int
	Supernodes int
	Entries    int
	AvgEntries float64
}

// LevelStats reports per-level node statistics.
func (t *Tree) LevelStats() []LevelStat {
	stats := make([]LevelStat, t.height)
	var walk func(n *xnode, level int)
	walk = func(n *xnode, level int) {
		s := &stats[level]
		s.Level = level
		s.Nodes++
		s.Entries += len(n.entries)
		if n.blocks > 1 {
			s.Supernodes++
		}
		if n.leaf {
			return
		}
		for _, e := range n.entries {
			walk(e.child, level+1)
		}
	}
	walk(t.root, 0)
	for i := range stats {
		if stats[i].Nodes > 0 {
			stats[i].AvgEntries = float64(stats[i].Entries) / float64(stats[i].Nodes)
		}
	}
	return stats
}

// Validate deep-checks the structural invariants: every entry's MBR is
// valid and equals (directories) the exact MBR of its child, leaves sit at
// the bottom level, no node overflows, non-root nodes are non-empty, and
// the point count matches.
func (t *Tree) Validate() error {
	var points int64
	var walk func(n *xnode, level int) error
	walk = func(n *xnode, level int) error {
		if n.blocks < 1 {
			return fmt.Errorf("xtree: node with %d blocks", n.blocks)
		}
		if len(n.entries) > n.capacity(&t.cfg) {
			return fmt.Errorf("xtree: node overflows: %d > %d", len(n.entries), n.capacity(&t.cfg))
		}
		if len(n.entries) == 0 && n != t.root {
			return fmt.Errorf("xtree: empty non-root node")
		}
		if n.leaf != (level == t.height-1) {
			return fmt.Errorf("xtree: leaf=%v at level %d of height %d", n.leaf, level, t.height)
		}
		for i := range n.entries {
			e := &n.entries[i]
			if err := e.rect.Validate(t.dims); err != nil {
				return err
			}
			if n.leaf {
				points++
				if len(e.point) != t.dims {
					return fmt.Errorf("xtree: point dims %d", len(e.point))
				}
				want := RectOf(e.point)
				if !e.rect.ContainsRect(want) || !want.ContainsRect(e.rect) {
					return fmt.Errorf("xtree: leaf rect %v != point %v", e.rect, e.point)
				}
				continue
			}
			want := e.child.mbr()
			if !e.rect.ContainsRect(want) || !want.ContainsRect(e.rect) {
				return fmt.Errorf("xtree: entry MBR %v != child MBR %v at level %d", e.rect, want, level)
			}
			if err := walk(e.child, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if points != t.count {
		return fmt.Errorf("xtree: count %d, found %d points", t.count, points)
	}
	return nil
}
