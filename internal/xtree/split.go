package xtree

import "sort"

// splitNode implements the X-tree split algorithm: first the topological
// (R*-style) split; if its overlap is too high, the overlap-minimal split
// guided by the split history; if that one is too unbalanced, the node
// becomes (or grows as) a supernode. On success the receiver keeps the
// first group and the returned sibling holds the second.
func (t *Tree) splitNode(n *xnode) *xnode {
	// 1. Topological split.
	if g1, g2, dim, ok := t.topologicalSplit(n); ok {
		return t.materializeSplit(n, g1, g2, dim)
	}
	// 2. Overlap-minimal split along the split history.
	if g1, g2, dim, ok := t.overlapMinimalSplit(n); ok {
		return t.materializeSplit(n, g1, g2, dim)
	}
	// 3. Supernode.
	if t.cfg.MaxSupernodeBlocks == 0 || n.blocks < t.cfg.MaxSupernodeBlocks {
		n.blocks++
		return nil
	}
	// Safety valve at the cap: force the best topological partition even
	// though it violates the thresholds.
	g1, g2, dim := t.forcedSplit(n)
	return t.materializeSplit(n, g1, g2, dim)
}

// distribution evaluates one candidate partition of sorted entries.
type distribution struct {
	axis    int
	cut     int // first cut elements go left
	margin  float64
	overlap float64
	area    float64
}

// topologicalSplit is the R*-tree split: for every axis, sort the entries
// by lower then upper boundary and evaluate all distributions that respect
// the minimum fill; choose the axis with the least margin sum, then the
// distribution with the least overlap (ties: least area). The split is
// accepted only if its overlap ratio stays under MaxOverlapRatio.
func (t *Tree) topologicalSplit(n *xnode) (g1, g2 []int, dim int, ok bool) {
	total := len(n.entries)
	minFill := int(t.cfg.MinFillRatio * float64(total))
	if minFill < 1 {
		minFill = 1
	}
	if total < 2*minFill {
		return nil, nil, -1, false
	}

	bestAxis, bestAxisMargin := -1, 0.0
	var bestDist distribution
	order := make([]int, total)

	for axis := 0; axis < t.dims; axis++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra, rb := n.entries[order[a]].rect, n.entries[order[b]].rect
			if ra.Lo[axis] != rb.Lo[axis] {
				return ra.Lo[axis] < rb.Lo[axis]
			}
			return ra.Hi[axis] < rb.Hi[axis]
		})

		marginSum := 0.0
		var axisBest distribution
		axisBestSet := false
		for cut := minFill; cut <= total-minFill; cut++ {
			left := n.entries[order[0]].rect.Clone()
			for _, i := range order[1:cut] {
				left.Enlarge(n.entries[i].rect)
			}
			right := n.entries[order[cut]].rect.Clone()
			for _, i := range order[cut+1:] {
				right.Enlarge(n.entries[i].rect)
			}
			d := distribution{
				axis:    axis,
				cut:     cut,
				margin:  left.Margin() + right.Margin(),
				overlap: left.OverlapArea(right),
				area:    left.Area() + right.Area(),
			}
			marginSum += d.margin
			if !axisBestSet || d.overlap < axisBest.overlap ||
				(d.overlap == axisBest.overlap && d.area < axisBest.area) {
				axisBest = d
				axisBestSet = true
			}
		}
		if !axisBestSet {
			continue
		}
		if bestAxis == -1 || marginSum < bestAxisMargin {
			bestAxis, bestAxisMargin = axis, marginSum
			bestDist = axisBest
		}
	}
	if bestAxis == -1 {
		return nil, nil, -1, false
	}

	g1, g2 = t.splitGroups(n, bestDist)
	if t.overlapRatio(n, g1, g2) > t.cfg.MaxOverlapRatio {
		return nil, nil, -1, false
	}
	return g1, g2, bestDist.axis, true
}

// overlapMinimalSplit tries to find a dimension along which the entries
// partition with zero overlap. Per the X-tree paper, such a dimension is
// sought among the split history: for directory nodes, a dimension by
// which *all* children have been split at some point partitions their MBRs
// disjointly. The reproduction checks the recorded split dimensions first
// and falls back to scanning all dimensions (for leaves the history is the
// trivial empty set). The resulting split must still be balanced; an
// overlap-free but unbalanced partition triggers a supernode instead.
func (t *Tree) overlapMinimalSplit(n *xnode) (g1, g2 []int, dim int, ok bool) {
	total := len(n.entries)
	minFill := int(t.cfg.MinFillRatio * float64(total))
	if minFill < 1 {
		minFill = 1
	}

	var candidates []int
	if !n.leaf {
		// Dimensions recorded in the children's split history come first.
		seen := make(map[int]bool)
		for _, e := range n.entries {
			if e.child.splitDim >= 0 && !seen[e.child.splitDim] {
				seen[e.child.splitDim] = true
				candidates = append(candidates, e.child.splitDim)
			}
		}
	}
	for d := 0; d < t.dims; d++ {
		candidates = append(candidates, d)
	}

	order := make([]int, total)
	tried := make(map[int]bool)
	for _, axis := range candidates {
		if tried[axis] {
			continue
		}
		tried[axis] = true
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ra, rb := n.entries[order[a]].rect, n.entries[order[b]].rect
			if ra.Lo[axis] != rb.Lo[axis] {
				return ra.Lo[axis] < rb.Lo[axis]
			}
			return ra.Hi[axis] < rb.Hi[axis]
		})
		// Sweep for an overlap-free cut: max Hi so far < next Lo.
		maxHi := n.entries[order[0]].rect.Hi[axis]
		for cut := 1; cut < total; cut++ {
			cur := n.entries[order[cut]].rect
			if maxHi < cur.Lo[axis] && cut >= minFill && total-cut >= minFill {
				d := distribution{axis: axis, cut: cut}
				g1, g2 = t.splitGroups(n, d)
				// Re-sort not needed: splitGroups re-derives the order.
				return g1, g2, axis, true
			}
			if cur.Hi[axis] > maxHi {
				maxHi = cur.Hi[axis]
			}
		}
	}
	return nil, nil, -1, false
}

// forcedSplit returns the least-bad topological distribution regardless of
// thresholds (used only at the supernode cap).
func (t *Tree) forcedSplit(n *xnode) (g1, g2 []int, dim int) {
	total := len(n.entries)
	order := make([]int, total)
	best := distribution{axis: 0, cut: total / 2}
	bestSet := false
	for axis := 0; axis < t.dims; axis++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return n.entries[order[a]].rect.Lo[axis] < n.entries[order[b]].rect.Lo[axis]
		})
		cut := total / 2
		left := n.entries[order[0]].rect.Clone()
		for _, i := range order[1:cut] {
			left.Enlarge(n.entries[i].rect)
		}
		right := n.entries[order[cut]].rect.Clone()
		for _, i := range order[cut+1:] {
			right.Enlarge(n.entries[i].rect)
		}
		d := distribution{axis: axis, cut: cut, overlap: left.OverlapArea(right), area: left.Area() + right.Area()}
		if !bestSet || d.overlap < best.overlap || (d.overlap == best.overlap && d.area < best.area) {
			best = d
			bestSet = true
		}
	}
	g1, g2 = t.splitGroups(n, best)
	return g1, g2, best.axis
}

// splitGroups converts a distribution into two index groups by re-deriving
// the axis order.
func (t *Tree) splitGroups(n *xnode, d distribution) (g1, g2 []int) {
	order := make([]int, len(n.entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := n.entries[order[a]].rect, n.entries[order[b]].rect
		if ra.Lo[d.axis] != rb.Lo[d.axis] {
			return ra.Lo[d.axis] < rb.Lo[d.axis]
		}
		return ra.Hi[d.axis] < rb.Hi[d.axis]
	})
	g1 = append(g1, order[:d.cut]...)
	g2 = append(g2, order[d.cut:]...)
	return g1, g2
}

// overlapRatio measures the groups' MBR overlap relative to their union
// area.
func (t *Tree) overlapRatio(n *xnode, g1, g2 []int) float64 {
	r1 := n.entries[g1[0]].rect.Clone()
	for _, i := range g1[1:] {
		r1.Enlarge(n.entries[i].rect)
	}
	r2 := n.entries[g2[0]].rect.Clone()
	for _, i := range g2[1:] {
		r2.Enlarge(n.entries[i].rect)
	}
	ov := r1.OverlapArea(r2)
	if ov == 0 {
		return 0
	}
	return ov / Union(r1, r2).Area()
}

// materializeSplit applies a partition: n keeps group 1, the returned new
// sibling gets group 2, and both record the split dimension in their
// history.
func (t *Tree) materializeSplit(n *xnode, g1, g2 []int, dim int) *xnode {
	take := func(group []int) []xentry {
		out := make([]xentry, len(group))
		for i, g := range group {
			out[i] = n.entries[g]
		}
		return out
	}
	e1, e2 := take(g1), take(g2)
	sibling := &xnode{leaf: n.leaf, entries: e2, splitDim: dim}
	n.entries = e1
	n.splitDim = dim
	n.blocks = t.blocksForEntries(len(e1), n.leaf)
	sibling.blocks = t.blocksForEntries(len(e2), n.leaf)
	t.nodes++
	return sibling
}

func (t *Tree) blocksForEntries(entries int, leaf bool) int {
	per := t.cfg.DirCapacity
	if leaf {
		per = t.cfg.LeafCapacity
	}
	b := (entries + per - 1) / per
	if b < 1 {
		b = 1
	}
	return b
}
