// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB 1996), the index structure the DC-tree paper uses as its main
// comparison baseline (§2, §5).
//
// The X-tree is an R-tree variant for high-dimensional point data. It
// extends the R*-tree with (a) an overlap-minimal split that uses the
// nodes' split history, and (b) supernodes: when neither the topological
// (R*-style) split nor the overlap-minimal split produces a balanced,
// low-overlap partition, the node is enlarged to a multiple of the block
// size instead of being split.
//
// In this reproduction the X-tree indexes the data cube through the
// artificial total ordering of the ID codes that the DC-tree's insert
// procedure assigns to attribute values (§5.2, Fig. 10): one integer
// dimension per hierarchy attribute.
package xtree

import "fmt"

// Point is a D-dimensional integer point (the per-attribute ID codes of a
// data record under the total ordering).
type Point []uint32

// Rect is a minimum bounding rectangle: closed integer ranges per
// dimension.
type Rect struct {
	Lo, Hi []uint32
}

// RectOf returns the degenerate rectangle covering one point.
func RectOf(p Point) Rect {
	return Rect{Lo: append([]uint32(nil), p...), Hi: append([]uint32(nil), p...)}
}

// Clone returns a deep copy of the rectangle.
func (r Rect) Clone() Rect {
	return Rect{Lo: append([]uint32(nil), r.Lo...), Hi: append([]uint32(nil), r.Hi...)}
}

// Dims returns the dimensionality.
func (r Rect) Dims() int { return len(r.Lo) }

// Validate checks the rectangle's structural invariants.
func (r Rect) Validate(dims int) error {
	if len(r.Lo) != dims || len(r.Hi) != dims {
		return fmt.Errorf("xtree: rect has %d/%d dims, want %d", len(r.Lo), len(r.Hi), dims)
	}
	for d := range r.Lo {
		if r.Lo[d] > r.Hi[d] {
			return fmt.Errorf("xtree: rect inverted in dim %d: [%d,%d]", d, r.Lo[d], r.Hi[d])
		}
	}
	return nil
}

// ContainsPoint reports whether the point lies inside the rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	for d := range r.Lo {
		if p[d] < r.Lo[d] || p[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] || s.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether the rectangles share at least one cell.
func (r Rect) Intersects(s Rect) bool {
	for d := range r.Lo {
		if s.Hi[d] < r.Lo[d] || s.Lo[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Enlarge grows r in place to cover s.
func (r *Rect) Enlarge(s Rect) {
	for d := range r.Lo {
		if s.Lo[d] < r.Lo[d] {
			r.Lo[d] = s.Lo[d]
		}
		if s.Hi[d] > r.Hi[d] {
			r.Hi[d] = s.Hi[d]
		}
	}
}

// EnlargePoint grows r in place to cover p.
func (r *Rect) EnlargePoint(p Point) {
	for d := range r.Lo {
		if p[d] < r.Lo[d] {
			r.Lo[d] = p[d]
		}
		if p[d] > r.Hi[d] {
			r.Hi[d] = p[d]
		}
	}
}

// Union returns the bounding rectangle of r and s.
func Union(r, s Rect) Rect {
	u := r.Clone()
	u.Enlarge(s)
	return u
}

// Area returns the number of integer cells the rectangle covers, as a
// float64 (extents are +1 because the grid is discrete and ranges are
// closed; a point rectangle has area 1).
func (r Rect) Area() float64 {
	a := 1.0
	for d := range r.Lo {
		a *= float64(r.Hi[d]-r.Lo[d]) + 1
	}
	return a
}

// Margin returns the sum of the edge lengths (the R*-tree's split metric).
func (r Rect) Margin() float64 {
	m := 0.0
	for d := range r.Lo {
		m += float64(r.Hi[d] - r.Lo[d])
	}
	return m
}

// OverlapArea returns the area of the intersection of r and s (0 when
// disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for d := range r.Lo {
		lo, hi := r.Lo[d], r.Hi[d]
		if s.Lo[d] > lo {
			lo = s.Lo[d]
		}
		if s.Hi[d] < hi {
			hi = s.Hi[d]
		}
		if lo > hi {
			return 0
		}
		a *= float64(hi-lo) + 1
	}
	return a
}
