package views

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
	"github.com/dcindex/dctree/internal/seqscan"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	cust := hierarchy.MustNew("Customer", "Customer", "Nation", "Region")
	part := hierarchy.MustNew("Part", "Part", "Brand")
	return cube.MustNewSchema([]*hierarchy.Hierarchy{cust, part}, "Price")
}

func load(t testing.TB, s *cube.Schema, n int, seed int64) ([]cube.Record, *Store, *seqscan.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := New(s)
	scan := seqscan.New(s)
	var recs []cube.Record
	for i := 0; i < n; i++ {
		r, err := s.InternRecord([][]string{
			{fmt.Sprintf("R%d", rng.Intn(4)), fmt.Sprintf("N%d", rng.Intn(10)), fmt.Sprintf("C%d", rng.Intn(200))},
			{fmt.Sprintf("B%d", rng.Intn(6)), fmt.Sprintf("P%d", rng.Intn(150))},
		}, []float64{float64(rng.Intn(500))})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := scan.Insert(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	return recs, st, scan
}

func randomQuery(rng *rand.Rand, s *cube.Schema, sel float64) mds.MDS {
	space := s.Space()
	q := make(mds.MDS, len(space))
	for d, h := range space {
		if rng.Intn(5) == 0 {
			q[d] = mds.AllDim()
			continue
		}
		level := rng.Intn(h.Depth())
		vals, _ := h.ValuesAt(level)
		k := int(sel * float64(len(vals)))
		if k < 1 {
			k = 1
		}
		perm := rng.Perm(len(vals))[:k]
		ids := make([]hierarchy.ID, k)
		for i, p := range perm {
			ids[i] = vals[p]
		}
		hierarchy.SortIDs(ids)
		q[d] = mds.DimSet{Level: level, IDs: ids}
	}
	return q
}

func TestViewsAgainstSeqScan(t *testing.T) {
	s := testSchema(t)
	_, st, scan := load(t, s, 3000, 5)
	if err := st.Build(5000); err != nil {
		t.Fatal(err)
	}
	if st.ViewCount() == 0 {
		t.Fatal("greedy selected no views")
	}
	if st.TotalCells() > 5000 {
		t.Fatalf("budget exceeded: %d cells", st.TotalCells())
	}

	rng := rand.New(rand.NewSource(7))
	answered := 0
	for i := 0; i < 200; i++ {
		q := randomQuery(rng, s, []float64{0.05, 0.25, 0.6}[i%3])
		want, err := scan.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.RangeAgg(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || got.Sum != want.Sum ||
			(want.Count > 0 && (got.Min != want.Min || got.Max != want.Max)) {
			t.Fatalf("query %d: views %+v != scan %+v\nq=%v", i, got, want, q)
		}
		answered++
	}
	if st.CellsScanned == 0 {
		t.Fatal("no query was ever answered from a view")
	}
	if st.Fallbacks == int64(answered) {
		t.Fatal("every query fell back to the fact table")
	}
}

func TestViewsAreStatic(t *testing.T) {
	s := testSchema(t)
	recs, st, _ := load(t, s, 300, 11)
	if err := st.Build(2000); err != nil {
		t.Fatal(err)
	}
	q := mds.Top(2)
	if _, err := st.RangeAgg(q, 0); err != nil {
		t.Fatal(err)
	}
	// The paper's point: one insert makes every view stale.
	if err := st.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RangeAgg(q, 0); err != ErrStale {
		t.Fatalf("query on stale views = %v, want ErrStale", err)
	}
	// Rebuild (the bulk-update window) restores service.
	if err := st.Build(2000); err != nil {
		t.Fatal(err)
	}
	got, err := st.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != int64(len(recs)+1) {
		t.Fatalf("count after rebuild = %d", got.Count)
	}
}

func TestViewsValidation(t *testing.T) {
	s := testSchema(t)
	_, st, _ := load(t, s, 100, 13)
	if err := st.Build(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RangeAgg(mds.Top(2), 5); err == nil {
		t.Fatal("bad measure accepted")
	}
	if _, err := st.RangeAgg(mds.Top(1), 0); err == nil {
		t.Fatal("bad arity accepted")
	}
	bad := cube.Record{}
	if err := st.Append(bad); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestZeroBudgetFallsBack(t *testing.T) {
	s := testSchema(t)
	_, st, scan := load(t, s, 500, 17)
	if err := st.Build(0); err != nil {
		t.Fatal(err)
	}
	if st.ViewCount() != 0 {
		t.Fatalf("views under zero budget: %d", st.ViewCount())
	}
	rng := rand.New(rand.NewSource(19))
	q := randomQuery(rng, s, 0.25)
	want, _ := scan.RangeAgg(q, 0)
	got, err := st.RangeAgg(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("fallback answer %+v != scan %+v", got, want)
	}
	if st.Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}
