// Package views implements the materialized-view baseline of the DC-tree
// paper's related work (§2): precomputed aggregations of the data cube at
// selected combinations of hierarchy levels, with the greedy view
// selection of Harinarayan, Rajaraman and Ullman ("Implementing Data
// Cubes Efficiently", SIGMOD 1996, the paper's [7]).
//
// A view is one cell-level of the cube lattice: a vector of hierarchy
// levels, one per dimension, with the measures pre-aggregated per
// coordinate tuple. A range query whose per-dimension levels are all at
// or above some materialized view's levels is answered by rolling the
// view's cells up; everything else falls back to the fact table.
//
// The paper's criticism is reproduced directly: "The proposed approach is
// static, i.e. it is useful only for the initial load of the cube but
// does not support incremental changes" — Insert after Build returns
// ErrStale until the views are rebuilt, which is exactly the bulk-update
// window the DC-tree exists to avoid.
package views

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/mds"
)

// Errors returned by the view store.
var (
	ErrStale      = errors.New("views: materialized views are stale; Rebuild required (static structure, §2 of the paper)")
	ErrBadMeasure = errors.New("views: measure index out of range")
)

// Level vectors are encoded as strings for map keys.
func levelKey(levels []int) string {
	b := make([]byte, len(levels))
	for i, l := range levels {
		b[i] = byte(l)
	}
	return string(b)
}

// View is one materialized aggregation: cells keyed by the concatenated
// coordinate IDs at the view's levels.
type View struct {
	Levels []int
	Cells  map[string]cube.AggVector
}

// cellKey encodes a coordinate tuple.
func cellKey(coords []hierarchy.ID) string {
	b := make([]byte, 0, len(coords)*4)
	for _, c := range coords {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// Store holds the fact records plus the materialized views.
type Store struct {
	schema *cube.Schema
	recs   []cube.Record
	views  map[string]*View
	stale  bool

	// CellsScanned counts view cells examined across queries; Fallbacks
	// counts queries no view could answer (full fact scans).
	CellsScanned int64
	Fallbacks    int64
}

// New creates an empty store; load records with Append, then call Build.
func New(schema *cube.Schema) *Store {
	return &Store{schema: schema, views: make(map[string]*View)}
}

// Schema returns the cube schema.
func (s *Store) Schema() *cube.Schema { return s.schema }

// Count returns the number of fact records.
func (s *Store) Count() int { return len(s.recs) }

// Append adds a fact record. Once views are built, appending marks them
// stale: queries fail until Rebuild — the §2 static-structure behaviour.
func (s *Store) Append(rec cube.Record) error {
	if err := s.schema.ValidateRecord(rec); err != nil {
		return err
	}
	s.recs = append(s.recs, rec.Clone())
	if len(s.views) > 0 {
		s.stale = true
	}
	return nil
}

// viewSize estimates a view's cell count as the product of the level
// cardinalities, capped by the fact count (the HRU size estimate).
func (s *Store) viewSize(levels []int) int {
	size := 1
	for d, h := range s.schema.Space() {
		n, err := h.CountAt(levels[d])
		if err != nil || n == 0 {
			n = 1
		}
		size *= n
		if size > len(s.recs) {
			return len(s.recs)
		}
	}
	return size
}

// Build materializes views greedily under a total cell budget: starting
// from nothing (every query answered by the fact table), repeatedly pick
// the lattice view with the largest benefit per cell — the HRU greedy —
// until the budget is exhausted. The lattice is the cross product of
// hierarchy levels plus ALL per dimension.
func (s *Store) Build(budgetCells int) error {
	s.views = make(map[string]*View)
	s.stale = false
	space := s.schema.Space()

	// Enumerate the lattice of level vectors.
	var lattice [][]int
	var enumerate func(d int, cur []int)
	enumerate = func(d int, cur []int) {
		if d == len(space) {
			lattice = append(lattice, append([]int(nil), cur...))
			return
		}
		for l := 0; l <= space[d].TopLevel(); l++ {
			enumerate(d+1, append(cur, l))
		}
		enumerate(d+1, append(cur, hierarchy.LevelALL))
	}
	enumerate(0, nil)

	// Greedy selection by benefit density. The benefit of view V is the
	// total saving over the finer views it can answer: Σ (size(fact) -
	// size(V)) over lattice points at or above V's levels, following HRU
	// with the fact table as the default answering view.
	type cand struct {
		levels  []int
		size    int
		density float64
	}
	fact := len(s.recs)
	var cands []cand
	for _, levels := range lattice {
		size := s.viewSize(levels)
		if size >= fact || size == 0 {
			continue // never cheaper than the fact table
		}
		answerable := 0
		for _, other := range lattice {
			if levelsAtOrAbove(other, levels) {
				answerable++
			}
		}
		benefit := float64(answerable) * float64(fact-size)
		cands = append(cands, cand{levels: levels, size: size, density: benefit / float64(size)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].density > cands[j].density })

	remaining := budgetCells
	for _, c := range cands {
		if c.size > remaining {
			continue
		}
		if err := s.materialize(c.levels); err != nil {
			return err
		}
		remaining -= c.size
	}
	return nil
}

// levelsAtOrAbove reports whether query levels q can be answered from a
// view at levels v: every dimension of v is at or below (finer than) q.
func levelsAtOrAbove(q, v []int) bool {
	for d := range q {
		if levelAbove(v[d], q[d]) {
			return false
		}
	}
	return true
}

func levelAbove(a, b int) bool {
	if a == b {
		return false
	}
	if a == hierarchy.LevelALL {
		return true
	}
	if b == hierarchy.LevelALL {
		return false
	}
	return a > b
}

// materialize builds one view by a single scan of the fact table.
func (s *Store) materialize(levels []int) error {
	space := s.schema.Space()
	v := &View{Levels: append([]int(nil), levels...), Cells: make(map[string]cube.AggVector)}
	coords := make([]hierarchy.ID, len(space))
	for i := range s.recs {
		rec := &s.recs[i]
		for d, h := range space {
			if levels[d] == hierarchy.LevelALL {
				coords[d] = hierarchy.ALL
				continue
			}
			anc, err := h.AncestorAt(rec.Coords[d], levels[d])
			if err != nil {
				return err
			}
			coords[d] = anc
		}
		key := cellKey(coords)
		agg, ok := v.Cells[key]
		if !ok {
			agg = cube.NewAggVector(s.schema.Measures())
			v.Cells[key] = agg
		}
		agg.AddRecord(rec.Measures)
	}
	s.views[levelKey(levels)] = v
	return nil
}

// ViewCount reports how many views are materialized.
func (s *Store) ViewCount() int { return len(s.views) }

// TotalCells reports the total number of materialized cells.
func (s *Store) TotalCells() int {
	n := 0
	for _, v := range s.views {
		n += len(v.Cells)
	}
	return n
}

// RangeAgg answers a range query from the best materialized view, or by a
// fact-table scan when no view matches the query's levels.
func (s *Store) RangeAgg(q mds.MDS, measure int) (cube.Agg, error) {
	if measure < 0 || measure >= s.schema.Measures() {
		return cube.Agg{}, fmt.Errorf("%w: %d", ErrBadMeasure, measure)
	}
	if err := q.Validate(s.schema.Space()); err != nil {
		return cube.Agg{}, err
	}
	if s.stale {
		return cube.Agg{}, ErrStale
	}
	qLevels := make([]int, len(q))
	for d := range q {
		qLevels[d] = q[d].Level
	}

	// Pick the smallest answering view.
	var best *View
	for _, v := range s.views {
		if levelsAtOrAbove(qLevels, v.Levels) {
			if best == nil || len(v.Cells) < len(best.Cells) {
				best = v
			}
		}
	}
	if best == nil {
		// Fallback: scan the fact table.
		s.Fallbacks++
		var agg cube.Agg
		space := s.schema.Space()
		for i := range s.recs {
			ok, err := q.ContainsLeaves(space, s.recs[i].Coords)
			if err != nil {
				return cube.Agg{}, err
			}
			if ok {
				agg.Add(s.recs[i].Measures[measure])
			}
		}
		return agg, nil
	}

	// Roll the view's cells up into the query.
	space := s.schema.Space()
	var agg cube.Agg
	for key, cells := range best.Cells {
		s.CellsScanned++
		inRange := true
		for d := range q {
			if q[d].Level == hierarchy.LevelALL {
				continue
			}
			c := decodeCoord(key, d)
			anc, err := space[d].AncestorAt(c, q[d].Level)
			if err != nil {
				return cube.Agg{}, err
			}
			if !member(q[d].IDs, anc) {
				inRange = false
				break
			}
		}
		if inRange {
			agg.Merge(cells[measure])
		}
	}
	return agg, nil
}

func decodeCoord(key string, d int) hierarchy.ID {
	o := d * 4
	return hierarchy.ID(uint32(key[o]) | uint32(key[o+1])<<8 | uint32(key[o+2])<<16 | uint32(key[o+3])<<24)
}

func member(ids []hierarchy.ID, id hierarchy.ID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// RangeQuery is RangeAgg narrowed to one operator.
func (s *Store) RangeQuery(q mds.MDS, op cube.Op, measure int) (float64, error) {
	agg, err := s.RangeAgg(q, measure)
	if err != nil {
		return 0, err
	}
	return agg.Value(op), nil
}
