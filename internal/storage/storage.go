// Package storage provides the block-oriented node stores underneath the
// DC-tree and the X-tree baseline.
//
// Both index structures are disk-based designs: nodes occupy one block of a
// fixed size, except supernodes, which occupy a multiple of the block size
// (X-tree §2 / DC-tree §4.2). The stores therefore manage *extents* — runs
// of consecutive blocks addressed by the PageID of their first block — and
// account every logical I/O, so experiments can report block reads/writes
// alongside wall-clock time.
//
// Two implementations are provided: MemStore (in-memory, used by the
// performance experiments, which measure CPU time like the paper) and
// PagedStore (file-backed with a write-through LRU buffer pool, used for
// persistence). Both serve raw bytes; node encoding lives with the index
// structures.
package storage

import (
	"errors"
	"sync/atomic"
)

// PageID addresses an extent by its first block. 0 is the nil PageID.
type PageID uint64

// NilPage is the zero PageID; no extent is ever allocated at 0.
const NilPage PageID = 0

// Errors returned by stores.
var (
	ErrNotFound   = errors.New("storage: no extent at page id")
	ErrTooLarge   = errors.New("storage: payload exceeds extent capacity")
	ErrBadExtent  = errors.New("storage: extent size must be at least one block")
	ErrClosed     = errors.New("storage: store is closed")
	ErrCorrupt    = errors.New("storage: corrupt store file")
	ErrNoMeta     = errors.New("storage: no metadata stored")
	ErrOverlap    = errors.New("storage: extent overlaps an existing allocation")
	ErrDoubleFree = errors.New("storage: extent already free")
	// ErrChecksum marks data whose stored CRC32C does not match its
	// contents: a torn write, bit rot, or outside modification. The store
	// fails closed — no payload is returned — rather than decode garbage.
	ErrChecksum = errors.New("storage: checksum mismatch")
)

// Stats counts logical I/O operations. Reads and Writes count extents
// touched at the store interface; for PagedStore, Misses counts extents
// actually fetched from the file and Hits those served by the buffer pool.
type Stats struct {
	Reads        int64
	Writes       int64
	Allocs       int64
	Frees        int64
	Hits         int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
}

// Sub returns the delta s - t, for measuring an operation window.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:        s.Reads - t.Reads,
		Writes:       s.Writes - t.Writes,
		Allocs:       s.Allocs - t.Allocs,
		Frees:        s.Frees - t.Frees,
		Hits:         s.Hits - t.Hits,
		Misses:       s.Misses - t.Misses,
		BytesRead:    s.BytesRead - t.BytesRead,
		BytesWritten: s.BytesWritten - t.BytesWritten,
	}
}

// statsCounters is the stores' internal, atomically updated form of Stats:
// concurrent readers (the DC-tree runs queries under a shared read lock,
// so several goroutines may fault nodes at once) and metrics snapshots
// never race with each other or with updates.
type statsCounters struct {
	reads, writes, allocs, frees atomic.Int64
	hits, misses                 atomic.Int64
	bytesRead, bytesWritten      atomic.Int64
}

// snapshot materializes the counters as a Stats value.
func (c *statsCounters) snapshot() Stats {
	return Stats{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		Allocs:       c.allocs.Load(),
		Frees:        c.frees.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// reset zeroes every counter.
func (c *statsCounters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
}

// Store is a block-extent store.
//
// Implementations are not required to be safe for concurrent use; the index
// structures serialize access through their own locks.
type Store interface {
	// BlockSize returns the block size in bytes.
	BlockSize() int

	// Alloc reserves an extent of the given number of consecutive blocks
	// and returns its PageID.
	Alloc(blocks int) (PageID, error)

	// Write replaces the payload of an extent. The payload must fit the
	// extent: len(data) ≤ blocks*BlockSize() - ExtentHeaderSize.
	Write(id PageID, blocks int, data []byte) error

	// Read returns the payload of an extent and its size in blocks.
	// The returned slice must not be modified by the caller.
	Read(id PageID) (data []byte, blocks int, err error)

	// Free releases an extent.
	Free(id PageID, blocks int) error

	// SetMeta stores an uninterpreted metadata blob (index root pointer,
	// schema, dictionaries); GetMeta returns the last stored blob.
	SetMeta(data []byte) error
	GetMeta() ([]byte, error)

	// Stats returns a snapshot of the I/O counters.
	Stats() Stats

	// ResetStats zeroes the I/O counters.
	ResetStats()

	// Sync flushes buffered state to stable storage, if any.
	Sync() error

	// Close releases resources. A closed store rejects all operations.
	Close() error
}

// ExtentHeaderSize is the per-extent bookkeeping overhead (block count,
// payload length, and CRC32C of the payload) that PagedStore writes at the
// front of each extent. All stores reserve it so capacity math is identical
// across backends. Pre-checksum (v1) images used 8-byte headers; they stay
// readable, and their extra 4 bytes of capacity is only a read-side
// allowance.
const ExtentHeaderSize = 12

// ExtentCapacity returns the payload capacity of an extent of n blocks.
func ExtentCapacity(blockSize, blocks int) int {
	return blockSize*blocks - ExtentHeaderSize
}

// BlocksFor returns the number of blocks needed to hold a payload.
func BlocksFor(blockSize, payload int) int {
	n := (payload + ExtentHeaderSize + blockSize - 1) / blockSize
	if n < 1 {
		n = 1
	}
	return n
}
