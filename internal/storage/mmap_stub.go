//go:build !linux && !darwin

package storage

import (
	"errors"
	"os"
)

// mmapSupported: this platform has no mmap path; ViewExtent serves every
// view through the plain-read fallback (a checked file read), which keeps
// the flat-node code path exercised with identical semantics.
const mmapSupported = false

func mmapFile(f *os.File, length int) ([]byte, error) {
	return nil, errors.New("storage: mmap not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
