package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, prefix string, opts WALOptions) *WAL {
	t.Helper()
	w, err := OpenWAL(prefix, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

// collect replays the log into a map lsn → payload and the ordered lsn list.
func collect(t *testing.T, w *WAL) (map[uint64]string, []uint64) {
	t.Helper()
	recs := make(map[uint64]string)
	var order []uint64
	if err := w.Replay(func(lsn uint64, payload []byte) error {
		recs[lsn] = string(payload)
		order = append(order, lsn)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, order
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 1; i <= 10; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append %d: lsn %d", i, lsn)
		}
	}
	if covered, err := w.Sync(); err != nil || covered != 10 {
		t.Fatalf("Sync = %d, %v", covered, err)
	}
	recs, order := collect(t, w)
	if len(order) != 10 || order[0] != 1 || recs[7] != "rec-7" {
		t.Fatalf("replayed %v", order)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, LSNs continue.
	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	recs, order = collect(t, w)
	if len(order) != 10 || recs[10] != "rec-10" {
		t.Fatalf("reopened replay %v", order)
	}
	lsn, err := w.Append([]byte("rec-11"))
	if err != nil || lsn != 11 {
		t.Fatalf("append after reopen: lsn %d, %v", lsn, err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 256})
	payload := make([]byte, 40)
	for i := 0; i < 50; i++ {
		payload[0] = byte(i)
		if _, err := w.Append(payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	_, order := collect(t, w)
	if len(order) != 50 || order[49] != 50 {
		t.Fatalf("replay across segments: %d records, last lsn %v", len(order), order[len(order)-1])
	}
	w.Close()

	// Reopen re-validates LSN continuity across all segments.
	w = openTestWAL(t, prefix, WALOptions{SegmentBytes: 256})
	defer w.Close()
	if got := w.LastLSN(); got != 50 {
		t.Fatalf("LastLSN after reopen = %d", got)
	}
}

func TestWALTornTailTruncatedOnReopen(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	path, synced := w.ActiveSegment()
	w.Close()

	// Simulate a torn in-flight append: garbage past the synced frontier.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	_, order := collect(t, w)
	if len(order) != 5 {
		t.Fatalf("replay after torn tail: %d records", len(order))
	}
	if _, newSynced := w.ActiveSegment(); newSynced != synced {
		t.Fatalf("torn tail not truncated: synced %d, want %d", newSynced, synced)
	}
	// Appends continue cleanly at the next LSN.
	if lsn, err := w.Append([]byte("after")); err != nil || lsn != 6 {
		t.Fatalf("append after torn-tail recovery: lsn %d, %v", lsn, err)
	}
}

func TestWALCRCMismatchEndsLog(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	path, _ := w.ActiveSegment()
	w.Close()

	// Flip one payload byte of the LAST record: its CRC no longer matches,
	// so the log must reopen with only the two preceding records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	_, order := collect(t, w)
	if len(order) != 2 {
		t.Fatalf("replay after corrupt tail record: %d records, want 2", len(order))
	}
}

func TestWALTruncatePreservesLSNs(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	for i := 0; i < 7; i++ {
		if _, err := w.Append([]byte("x-record")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	if err := w.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if n := w.Records(); n != 0 {
		t.Fatalf("records after truncate = %d", n)
	}
	_, order := collect(t, w)
	if len(order) != 0 {
		t.Fatalf("replay after truncate: %v", order)
	}
	lsn, err := w.Append([]byte("first-after"))
	if err != nil || lsn != 8 {
		t.Fatalf("append after truncate: lsn %d, %v", lsn, err)
	}

	// Exactly one live segment remains; retired files may sit in the
	// recycle pool (named outside the numeric segment scheme).
	segs, err := findSegments(prefix)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after truncate: %v (%v)", segs, err)
	}
}

func TestWALTruncateSurvivesCrashBetweenCreateAndRemove(t *testing.T) {
	// A crash between "create fresh segment" and "remove old segments"
	// leaves both on disk; reopening must see a contiguous log whose tail
	// is the fresh (empty) segment, and the LSN counter must not reset.
	dir := t.TempDir()
	prefix := filepath.Join(dir, "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte("keep-record")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	// Simulate the crash image: copy segment files, then truncate the live
	// log; the image keeps the old segment PLUS the fresh one the real
	// Truncate creates first. We reproduce it by hand: create the successor
	// segment the way Truncate would, without deleting the old one.
	path, _ := w.ActiveSegment()
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	newPath, _ := w.ActiveSegment()
	fresh, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	crash := filepath.Join(dir, "crash")
	if err := os.MkdirAll(crash, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crash, filepath.Base(path)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crash, filepath.Base(newPath)), fresh, 0o644); err != nil {
		t.Fatal(err)
	}

	cw := openTestWAL(t, filepath.Join(crash, "idx"), WALOptions{})
	defer cw.Close()
	_, order := collect(t, cw)
	if len(order) != 4 {
		t.Fatalf("crash image replay: %d records, want the 4 old ones", len(order))
	}
	if lsn, err := cw.Append([]byte("continues")); err != nil || lsn != 5 {
		t.Fatalf("append on crash image: lsn %d, %v", lsn, err)
	}
}

func TestWALHeaderlessTailSegmentDiscarded(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("solid-rec")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	w.Close()
	// A crash during rotation can leave a next segment with a torn header.
	if err := os.WriteFile(walSegmentPath(prefix, 2), []byte("DCW"), 0o644); err != nil {
		t.Fatal(err)
	}
	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	_, order := collect(t, w)
	if len(order) != 3 {
		t.Fatalf("replay: %d records, want 3", len(order))
	}
	if lsn, err := w.Append([]byte("next")); err != nil || lsn != 4 {
		t.Fatalf("append: lsn %d, %v", lsn, err)
	}
}

func TestWALRejectsBadRecords(t *testing.T) {
	w := openTestWAL(t, filepath.Join(t.TempDir(), "idx"), WALOptions{})
	defer w.Close()
	if _, err := w.Append(nil); !errors.Is(err, ErrWALRecord) {
		t.Fatalf("empty append: %v", err)
	}
}

func TestWALClosedOps(t *testing.T) {
	w := openTestWAL(t, filepath.Join(t.TempDir(), "idx"), WALOptions{})
	w.Close()
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append on closed: %v", err)
	}
	if _, err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("sync on closed: %v", err)
	}
	if err := w.Truncate(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("truncate on closed: %v", err)
	}
}
