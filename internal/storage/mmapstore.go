package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// Memory-mapped zero-copy extent views.
//
// Checkpointed node extents are immutable until the translation table stops
// referencing them (shadow paging: a checkpoint always writes dirty nodes
// to freshly allocated extents), which makes them safe to serve directly
// out of a read-only, shared mapping of the store file: the OS page cache
// becomes the node cache and a cold node access costs a few bounds checks
// instead of a buffer-pool copy.
//
// The region manager below maps the file once and grows the mapping lazily:
// a view request beyond the mapped length (the file grew since the last
// map) remaps to the current file size, counting one remap per growth
// episode rather than per view. Superseded mappings are retired, not
// unmapped, until Close — so a view handed out before a remap stays valid
// for as long as the caller holds it. Callers must bound view lifetimes by
// the same rule that makes views safe at all: hold the tree read lock (live
// queries) or an extent pin (MVCC versions), so the viewed extent cannot be
// freed, reallocated and rewritten underneath the view.
//
// Payload checksums are verified once per extent: the first view CRCs the
// mapped payload and records the page in a verified bitmap; later views are
// pure pointer math. A rewrite of the page (extent reuse after a free)
// invalidates its bit.

// ViewStats counts zero-copy view traffic on a store.
type ViewStats struct {
	// Views counts extent views served zero-copy from the mapping (for
	// MemStore, from the in-memory extent).
	Views int64
	// Remaps counts mapping growths (the file outgrew the mapped length).
	Remaps int64
	// Fallbacks counts ViewExtent calls served by a plain checked read
	// because mmap is unsupported, disabled, or could not cover the extent.
	Fallbacks int64
}

// ExtentViewer is implemented by stores that can serve extent payloads as
// stable read-only views without copying. The returned slice must not be
// modified and stays valid only while the extent is live (not freed and
// reallocated); callers enforce that with locks or pins.
type ExtentViewer interface {
	ViewExtent(id PageID) (data []byte, blocks int, err error)
	ViewStats() ViewStats
}

// viewStatsCounters is the atomic internal form of ViewStats.
type viewStatsCounters struct {
	views, remaps, fallbacks atomic.Int64
}

func (c *viewStatsCounters) snapshot() ViewStats {
	return ViewStats{
		Views:     c.views.Load(),
		Remaps:    c.remaps.Load(),
		Fallbacks: c.fallbacks.Load(),
	}
}

// mmapRegion manages the read-only mapping of one PagedStore file.
type mmapRegion struct {
	mu        sync.RWMutex
	f         *os.File
	blockSize int
	enabled   bool // off: unsupported platform, SetMmapViews(false), or map failure
	cur       []byte
	retired   [][]byte // superseded mappings, kept until close for outstanding views
	verified  []uint64 // bitmap of pages whose payload CRC was already checked
	gen       uint64   // bumped by invalidate; suppresses stale verified-bit writes
	stats     viewStatsCounters
}

func (m *mmapRegion) init(f *os.File, blockSize int) {
	m.f = f
	m.blockSize = blockSize
	m.enabled = mmapSupported
}

// setEnabled toggles the mapped path (tests and operational fallback). The
// plain-read path serves every view while disabled.
func (m *mmapRegion) setEnabled(on bool) {
	m.mu.Lock()
	m.enabled = on && mmapSupported
	m.mu.Unlock()
}

// invalidate drops the page's verified bit: its extent was rewritten, so
// the cached CRC verdict no longer describes the bytes in the mapping.
func (m *mmapRegion) invalidate(id PageID) {
	m.mu.Lock()
	m.gen++
	if w := int(id / 64); w < len(m.verified) {
		m.verified[w] &^= 1 << (id % 64)
	}
	m.mu.Unlock()
}

// close unmaps everything; outstanding views become invalid, which is fine
// because the store they came from is closed too.
func (m *mmapRegion) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enabled = false
	if m.cur != nil {
		_ = munmapFile(m.cur)
		m.cur = nil
	}
	for _, b := range m.retired {
		_ = munmapFile(b)
	}
	m.retired = nil
	m.verified = nil
}

// remap grows the mapping to the current file size if that covers need.
// Caller must not hold m.mu.
func (m *mmapRegion) remap(need int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.enabled {
		return false
	}
	if int64(len(m.cur)) >= need {
		return true // another goroutine remapped meanwhile
	}
	st, err := m.f.Stat()
	if err != nil || st.Size() < need || st.Size() > int64(int(^uint(0)>>1)) {
		return false
	}
	nb, err := mmapFile(m.f, int(st.Size()))
	if err != nil {
		// Map failures (address space, platform quirks) latch the region
		// off; the plain-read path serves everything from here on.
		m.enabled = false
		return false
	}
	if m.cur != nil {
		m.retired = append(m.retired, m.cur)
		m.stats.remaps.Add(1)
	}
	m.cur = nb
	return true
}

// view serves one extent from the mapping. ok=false means "not servable
// here, use the plain-read fallback"; ok=true with err!=nil is a hard
// integrity failure (corrupt header or checksum mismatch) that a file read
// would reproduce, so it is returned instead of retried.
func (m *mmapRegion) view(id PageID) (data []byte, blocks int, err error, ok bool) {
	off := int64(id) * int64(m.blockSize)
	for attempt := 0; ; attempt++ {
		m.mu.RLock()
		if !m.enabled {
			m.mu.RUnlock()
			return nil, 0, nil, false
		}
		b := m.cur
		if int64(len(b)) < off+extentHeaderV1 {
			m.mu.RUnlock()
			if attempt > 0 || !m.remap(off+extentHeaderV1) {
				return nil, 0, nil, false
			}
			continue
		}
		word := binary.LittleEndian.Uint32(b[off:])
		length := int64(binary.LittleEndian.Uint32(b[off+4:]))
		checksummed := word&extentFlagCRC != 0
		blocks = int(word &^ uint32(extentFlagCRC))
		payloadOff, capacity := int64(extentHeaderV1), int64(m.blockSize*blocks-extentHeaderV1)
		if checksummed {
			payloadOff, capacity = int64(ExtentHeaderSize), int64(ExtentCapacity(m.blockSize, blocks))
		}
		if blocks < 1 || length > capacity {
			m.mu.RUnlock()
			return nil, 0, fmt.Errorf("%w: extent %d header blocks=%d len=%d", ErrCorrupt, id, blocks, length), true
		}
		end := off + payloadOff + length
		if int64(len(b)) < end {
			m.mu.RUnlock()
			if attempt > 0 || !m.remap(end) {
				return nil, 0, nil, false
			}
			continue
		}
		var want uint32
		verified := !checksummed
		if checksummed {
			want = binary.LittleEndian.Uint32(b[off+extentChecksumAt:])
			if w := int(id / 64); w < len(m.verified) && m.verified[w]&(1<<(id%64)) != 0 {
				verified = true
			}
		}
		gen := m.gen
		m.mu.RUnlock()

		data = b[off+payloadOff : end : end]
		if !verified {
			if got := crc32.Checksum(data, castagnoli); got != want {
				return nil, 0, fmt.Errorf("%w: extent %d crc 0x%08x, want 0x%08x", ErrChecksum, id, got, want), true
			}
			m.mu.Lock()
			// Only cache the verdict if no write invalidated anything since
			// the CRC ran; a concurrent rewrite must not be masked.
			if m.gen == gen {
				w := int(id / 64)
				if w >= len(m.verified) {
					grown := make([]uint64, w+1)
					copy(grown, m.verified)
					m.verified = grown
				}
				m.verified[w] |= 1 << (id % 64)
			}
			m.mu.Unlock()
		}
		m.stats.views.Add(1)
		return data, blocks, nil, true
	}
}

// ViewExtent implements ExtentViewer: a zero-copy, CRC-verified-once view
// of an extent's payload out of the file mapping. When the mapping cannot
// serve the extent (unsupported platform, disabled, map failure, or the
// extent lies beyond a file the mapping cannot grow over) it falls back to
// a plain checked read — same bytes, same verification, one copy.
//
// The returned slice must be treated as read-only and must not outlive the
// caller's guarantee that the extent stays live (tree read lock or extent
// pin): a freed and reallocated extent is rewritten in place.
func (s *PagedStore) ViewExtent(id PageID) ([]byte, int, error) {
	if id == NilPage {
		return nil, 0, fmt.Errorf("%w: nil page", ErrNotFound)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, 0, ErrClosed
	}
	if data, blocks, err, ok := s.mm.view(id); ok {
		// A mapped view is a logical read served without a backing-file
		// fault — account it as a buffer-pool hit so the store's read
		// ledger (Reads == Hits + Misses) covers the zero-copy path too.
		if err == nil {
			s.stats.reads.Add(1)
			s.stats.hits.Add(1)
			s.stats.bytesRead.Add(int64(len(data)))
		}
		return data, blocks, err
	}
	s.mm.stats.fallbacks.Add(1)
	data, blocks, _, err := s.readExtentFile(id)
	if err == nil {
		s.stats.reads.Add(1)
		s.stats.misses.Add(1)
		s.stats.bytesRead.Add(int64(len(data)))
	}
	return data, blocks, err
}

// ViewStats implements ExtentViewer.
func (s *PagedStore) ViewStats() ViewStats { return s.mm.stats.snapshot() }

// SetMmapViews toggles the memory-mapped view path at runtime. Disabling it
// routes every ViewExtent through the plain-read fallback (used by tests
// and as an operational escape hatch); enabling it is a no-op on platforms
// without mmap support.
func (s *PagedStore) SetMmapViews(on bool) { s.mm.setEnabled(on) }

// VerifyExtentView force-verifies one extent through the mapped view path:
// unlike ViewExtent it never consults the verified bitmap, so it checks the
// bytes as they are mapped right now (dctool verify -mmap). Falls back to
// the plain file read when the mapping cannot serve the extent.
func (s *PagedStore) VerifyExtentView(id PageID) (blocks int, checksummed bool, mapped bool, err error) {
	if id == NilPage {
		return 0, false, false, fmt.Errorf("%w: nil page", ErrNotFound)
	}
	s.mm.mu.RLock()
	enabled := s.mm.enabled
	s.mm.mu.RUnlock()
	if enabled {
		// Invalidate clears the verified bit, forcing view() to re-CRC.
		s.mm.invalidate(id)
		if data, blocks, err, ok := s.mm.view(id); ok {
			_ = data
			return blocks, true, true, err
		}
	}
	_, blocks, checksummed, err = s.readExtentFile(id)
	return blocks, checksummed, false, err
}

// ViewExtent implements ExtentViewer for MemStore: the extent's backing
// slice itself, zero-copy. Safe because MemStore never recycles PageIDs and
// node extents are written exactly once (shadow paging), so a view taken
// under the tree read lock or an extent pin never sees a rewrite.
func (s *MemStore) ViewExtent(id PageID) ([]byte, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	e, ok := s.extents[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.viewStats.views.Add(1)
	s.stats.reads.Add(1)
	s.stats.hits.Add(1)
	s.stats.bytesRead.Add(int64(len(e.data)))
	return e.data, e.blocks, nil
}

// ViewStats implements ExtentViewer.
func (s *MemStore) ViewStats() ViewStats { return s.viewStats.snapshot() }
