package storage

import (
	"sync"
	"testing"
)

func TestPinsFreeUnpinnedIsImmediate(t *testing.T) {
	p := NewPins()
	if p.FreeOrDefer(7, 2) {
		t.Fatal("free of an unpinned extent should not defer")
	}
	if s := p.Stats(); s.PinnedExtents != 0 || s.DeferredExtents != 0 {
		t.Fatalf("ledger not empty: %+v", s)
	}
}

func TestPinsDeferAndRelease(t *testing.T) {
	p := NewPins()
	if !p.Pin(7) {
		t.Fatal("pin refused")
	}
	if !p.FreeOrDefer(7, 3) {
		t.Fatal("free of a pinned extent should defer")
	}
	if s := p.Stats(); s.DeferredExtents != 1 || s.DeferredBlocks != 3 {
		t.Fatalf("deferred census wrong: %+v", s)
	}
	ext, due := p.Unpin(7)
	if !due || ext != (Extent{Page: 7, Blocks: 3}) {
		t.Fatalf("unpin did not surface the deferred free: %v %v", ext, due)
	}
	if s := p.Stats(); s.PinnedExtents != 0 || s.DeferredExtents != 0 {
		t.Fatalf("ledger not empty after release: %+v", s)
	}
}

func TestPinsSharedAcrossSnapshots(t *testing.T) {
	p := NewPins()
	p.Pin(9)
	p.Pin(9) // second snapshot shares the extent
	if !p.FreeOrDefer(9, 1) {
		t.Fatal("free should defer while pinned")
	}
	if _, due := p.Unpin(9); due {
		t.Fatal("free surfaced while another pin is live")
	}
	if !p.Pinned(9) {
		t.Fatal("extent should still be pinned")
	}
	ext, due := p.Unpin(9)
	if !due || ext.Page != 9 {
		t.Fatalf("last unpin must surface the free, got %v %v", ext, due)
	}
}

func TestPinsUnpinWithoutDeferredFree(t *testing.T) {
	p := NewPins()
	p.Pin(4)
	if ext, due := p.Unpin(4); due {
		t.Fatalf("no free was parked, got %v", ext)
	}
	// The extent was never freed, so it may be pinned again later.
	if !p.Pin(4) {
		t.Fatal("re-pin after clean unpin refused")
	}
}

func TestPinsRefusesResurrection(t *testing.T) {
	p := NewPins()
	p.Pin(5)
	p.FreeOrDefer(5, 1)
	if p.Pin(5) {
		t.Fatal("pinning an extent with a parked free must be refused")
	}
}

func TestPinsUnpinUnknownPage(t *testing.T) {
	p := NewPins()
	if ext, due := p.Unpin(123); due {
		t.Fatalf("unpin of unknown page surfaced a free: %v", ext)
	}
}

func TestPinsConcurrent(t *testing.T) {
	p := NewPins()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				page := PageID(i%16 + 1)
				if p.Pin(page) {
					p.Unpin(page)
				}
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.PinnedExtents != 0 {
		t.Fatalf("pins leaked: %+v", s)
	}
}
