package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// copyWALImage snapshots a crash image of the log the way the recovery
// harness does: sealed segments are copied whole (rotation fsyncs them
// before sealing), the active segment is chopped at its durable frontier —
// modeling the loss of every byte a crash is allowed to take.
func copyWALImage(t *testing.T, w *WAL, srcPrefix, dstPrefix string) {
	t.Helper()
	w.mu.Lock()
	segs := append([]walSegment(nil), w.sealed...)
	active := w.active
	w.mu.Unlock()
	cp := func(src, dst string, limit int64) {
		t.Helper()
		in, err := os.Open(src)
		if err != nil {
			t.Fatal(err)
		}
		defer in.Close()
		out, err := os.Create(dst)
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		if _, err := io.Copy(out, io.LimitReader(in, limit)); err != nil {
			t.Fatal(err)
		}
	}
	for _, seg := range segs {
		cp(seg.path, walSegmentPath(dstPrefix, seg.index), 1<<62)
	}
	cp(active.path, walSegmentPath(dstPrefix, active.index), active.synced)
}

// TestWALSyncRotationRaceKeepsAckedRecords pins the durable-frontier
// contract satellite #2 is about: every LSN a completed Sync reported
// covered must survive a crash image built from sealed-segments-whole plus
// active-segment-chopped-at-ActiveSegment-frontier — even when rotations
// land while the fsync is in flight, which previously left the frontier
// attributed to the wrong segment.
func TestWALSyncRotationRaceKeepsAckedRecords(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "idx")
	// Tiny segments force rotations constantly; SyncDelay widens the window
	// between the fsync and the frontier update that the rotation must not
	// corrupt.
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 256, SyncDelay: time.Millisecond})

	var (
		maxCovered atomic.Uint64
		stop       atomic.Bool
		wg         sync.WaitGroup
	)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("g%d-rec-%06d-padding-padding", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			covered, err := w.Sync()
			if err != nil {
				t.Errorf("Sync: %v", err)
				return
			}
			for {
				cur := maxCovered.Load()
				if covered <= cur || maxCovered.CompareAndSwap(cur, covered) {
					break
				}
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Deliberately NO final Sync: the tail past the frontier is genuinely
	// volatile, exactly what the chop should discard.
	imgPrefix := filepath.Join(dir, "img")
	copyWALImage(t, w, prefix, imgPrefix)
	covered := maxCovered.Load()
	w.Close()

	img := openTestWAL(t, imgPrefix, WALOptions{})
	defer img.Close()
	seen := make(map[uint64]bool)
	if err := img.Replay(func(lsn uint64, payload []byte) error {
		seen[lsn] = true
		return nil
	}); err != nil {
		t.Fatalf("Replay of crash image: %v", err)
	}
	if covered == 0 {
		t.Fatal("no Sync completed; race window never exercised")
	}
	for lsn := uint64(1); lsn <= covered; lsn++ {
		if !seen[lsn] {
			t.Fatalf("acknowledged record lsn %d (≤ covered %d) lost from crash image", lsn, covered)
		}
	}
	if img.records < int64(covered) {
		t.Fatalf("image holds %d records, Sync covered %d", img.records, covered)
	}
}

// TestWALSyncAfterRotationAdvancesNewSegment checks the deterministic half
// of the fix: a Sync completing after a rotation must not smear the old
// segment's byte offset onto the new active segment, and the next Sync on
// the new segment advances its own frontier from the header up.
func TestWALSyncAfterRotationAdvancesNewSegment(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 128})
	defer w.Close()

	// Fill past the rotation threshold so the next Append rotates.
	for w.size < w.opts.SegmentBytes {
		if _, err := w.Append([]byte("fill-the-first-segment-up")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	oldPath, oldSynced := w.ActiveSegment()
	if _, err := w.Append([]byte("rotates-into-segment-two")); err != nil {
		t.Fatal(err)
	}
	newPath, newSynced := w.ActiveSegment()
	if newPath == oldPath {
		t.Fatalf("rotation did not happen (size %d ≥ %d)", w.size, w.opts.SegmentBytes)
	}
	// The fresh segment has synced nothing beyond its header yet; the old
	// frontier must not leak in (the pre-fix code kept one global offset).
	if newSynced != walSegHeaderV2Size {
		t.Fatalf("new segment frontier = %d, want header size %d (old was %d)",
			newSynced, walSegHeaderV2Size, oldSynced)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, after := w.ActiveSegment(); after <= walSegHeaderV2Size {
		t.Fatalf("frontier did not advance after Sync: %d", after)
	}
}
