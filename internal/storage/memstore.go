package storage

import (
	"fmt"
	"sync"
)

// MemStore is an in-memory Store. It keeps full I/O accounting so that
// experiments can compare logical block traffic between index structures
// even when running without a disk, matching the paper's setup of measuring
// CPU-bound query times with a memory-resident index.
//
// MemStore is safe for concurrent use: queries fault nodes under the
// tree's shared read lock while a background checkpoint allocates and
// writes shadow extents, so reads take a shared lock and mutations an
// exclusive one.
type MemStore struct {
	mu        sync.RWMutex
	blockSize int
	next      PageID
	extents   map[PageID]memExtent
	meta      []byte
	stats     statsCounters
	viewStats viewStatsCounters
	closed    bool
}

type memExtent struct {
	blocks int
	data   []byte
}

// NewMemStore creates an in-memory store with the given block size.
func NewMemStore(blockSize int) *MemStore {
	if blockSize < ExtentHeaderSize*2 {
		panic(fmt.Sprintf("storage: block size %d too small", blockSize))
	}
	return &MemStore{
		blockSize: blockSize,
		next:      1,
		extents:   make(map[PageID]memExtent),
	}
}

// BlockSize implements Store.
func (s *MemStore) BlockSize() int { return s.blockSize }

// Alloc implements Store.
func (s *MemStore) Alloc(blocks int) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return NilPage, ErrClosed
	}
	if blocks < 1 {
		return NilPage, ErrBadExtent
	}
	id := s.next
	s.next += PageID(blocks)
	s.extents[id] = memExtent{blocks: blocks}
	s.stats.allocs.Add(1)
	return id, nil
}

// Write implements Store.
func (s *MemStore) Write(id PageID, blocks int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.extents[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if e.blocks != blocks {
		return fmt.Errorf("%w: extent %d has %d blocks, got %d", ErrBadExtent, id, e.blocks, blocks)
	}
	if len(data) > ExtentCapacity(s.blockSize, blocks) {
		return fmt.Errorf("%w: %d bytes into %d blocks of %d", ErrTooLarge, len(data), blocks, s.blockSize)
	}
	e.data = append(e.data[:0], data...)
	s.extents[id] = e
	s.stats.writes.Add(1)
	s.stats.bytesWritten.Add(int64(len(data)))
	return nil
}

// Read implements Store.
func (s *MemStore) Read(id PageID) ([]byte, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	e, ok := s.extents[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.stats.reads.Add(1)
	s.stats.hits.Add(1)
	s.stats.bytesRead.Add(int64(len(e.data)))
	return e.data, e.blocks, nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID, blocks int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.extents[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrDoubleFree, id)
	}
	if e.blocks != blocks {
		return fmt.Errorf("%w: extent %d has %d blocks, got %d", ErrBadExtent, id, e.blocks, blocks)
	}
	delete(s.extents, id)
	s.stats.frees.Add(1)
	return nil
}

// SetMeta implements Store.
func (s *MemStore) SetMeta(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.meta = append(s.meta[:0], data...)
	return nil
}

// GetMeta implements Store.
func (s *MemStore) GetMeta() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.meta == nil {
		return nil, ErrNoMeta
	}
	return append([]byte(nil), s.meta...), nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats { return s.stats.snapshot() }

// ResetStats implements Store.
func (s *MemStore) ResetStats() { s.stats.reset() }

// Sync implements Store (no-op).
func (s *MemStore) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.extents = nil
	return nil
}

// ExtentCount returns the number of live extents (for tests and fsck).
func (s *MemStore) ExtentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.extents)
}
