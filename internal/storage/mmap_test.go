package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mmapTestStore creates a store with a handful of extents of varying block
// counts and returns it with the ids and payloads written.
func mmapTestStore(t *testing.T) (*PagedStore, []PageID, [][]byte) {
	s, _, ids, payloads := mmapTestStorePath(t)
	return s, ids, payloads
}

func mmapTestStorePath(t *testing.T) (*PagedStore, string, []PageID, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.dc")
	s, err := OpenPagedStore(path, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var ids []PageID
	var payloads [][]byte
	for i, blocks := range []int{1, 2, 1, 4, 1} {
		p := make([]byte, ExtentCapacity(256, blocks)-i*13)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		id, err := s.Alloc(blocks)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, blocks, p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		payloads = append(payloads, p)
	}
	return s, path, ids, payloads
}

// TestViewExtentMatchesRead: the mapped view of every extent is
// byte-identical to the buffered Read, and repeated views hit the verified
// bitmap (the view counter advances, the fallback counter does not).
func TestViewExtentMatchesRead(t *testing.T) {
	s, ids, payloads := mmapTestStore(t)
	for round := 0; round < 2; round++ {
		for i, id := range ids {
			got, blocks, err := s.ViewExtent(id)
			if err != nil {
				t.Fatalf("ViewExtent(%d): %v", id, err)
			}
			want, wantBlocks, err := s.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if blocks != wantBlocks || !bytes.Equal(got, want) {
				t.Fatalf("extent %d: view (%d blocks, %d bytes) != read (%d blocks, %d bytes)",
					id, blocks, len(got), wantBlocks, len(want))
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("extent %d: view differs from written payload", id)
			}
		}
	}
	vs := s.ViewStats()
	if vs.Views != int64(2*len(ids)) || vs.Fallbacks != 0 {
		t.Fatalf("view stats = %+v, want %d views, 0 fallbacks", vs, 2*len(ids))
	}
}

// TestViewExtentChecksumFailClosed: flipping a payload byte on disk makes
// the next view (and VerifyExtentView, which bypasses the verified bitmap)
// fail with ErrChecksum rather than serve the corrupt bytes.
func TestViewExtentChecksumFailClosed(t *testing.T) {
	s, path, ids, _ := mmapTestStorePath(t)
	id := ids[1]
	// Corrupt one payload byte directly in the file. Views read through a
	// shared mapping, so no reopen is needed for visibility.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(id)*256 + int64(ExtentHeaderSize) + 5
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.ViewExtent(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ViewExtent on corrupt extent: err = %v, want ErrChecksum", err)
	}
	if _, _, _, err := s.VerifyExtentView(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyExtentView on corrupt extent: err = %v, want ErrChecksum", err)
	}
	// Other extents still verify.
	if _, _, err := s.ViewExtent(ids[0]); err != nil {
		t.Fatalf("ViewExtent(%d) after sibling corruption: %v", ids[0], err)
	}
}

// TestViewRemapOnGrowth: a view taken before the file grows stays readable
// after later allocations force a remap, and the new extent is viewable.
func TestViewRemapOnGrowth(t *testing.T) {
	s, ids, payloads := mmapTestStore(t)
	old, _, err := s.ViewExtent(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	oldCopy := append([]byte(nil), old...)

	// Grow the file well past the current mapping.
	var lastID PageID
	var lastPayload []byte
	for i := 0; i < 64; i++ {
		p := make([]byte, 100)
		for j := range p {
			p[j] = byte(i + j)
		}
		id, err := s.Alloc(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, 2, p); err != nil {
			t.Fatal(err)
		}
		lastID, lastPayload = id, p
	}
	got, _, err := s.ViewExtent(lastID)
	if err != nil {
		t.Fatalf("ViewExtent after growth: %v", err)
	}
	if !bytes.Equal(got, lastPayload) {
		t.Fatal("view of freshly written extent differs from payload")
	}
	if vs := s.ViewStats(); vs.Remaps == 0 {
		t.Fatalf("view stats = %+v, want at least one remap", vs)
	}
	// The pre-growth view still reads the original bytes: retired mappings
	// stay mapped until Close.
	if !bytes.Equal(old, oldCopy) || !bytes.Equal(old, payloads[0]) {
		t.Fatal("pre-growth view no longer matches its payload")
	}
}

// TestViewInvalidateOnRewrite: rewriting an extent in place invalidates its
// verified bit, and the next view re-verifies and serves the new bytes.
func TestViewInvalidateOnRewrite(t *testing.T) {
	s, err := OpenPagedStore(filepath.Join(t.TempDir(), "store.dc"), 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		p := []byte(fmt.Sprintf("payload round %d", round))
		if err := s.Write(id, 1, p); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.ViewExtent(id)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round %d: view = %q, want %q", round, got, p)
		}
	}
}

// TestSetMmapViewsFallback: disabling the mapping routes views through the
// plain-read fallback (counted as such) with identical results.
func TestSetMmapViewsFallback(t *testing.T) {
	s, ids, payloads := mmapTestStore(t)
	s.SetMmapViews(false)
	for i, id := range ids {
		got, _, err := s.ViewExtent(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("extent %d: fallback view differs from payload", id)
		}
	}
	vs := s.ViewStats()
	if vs.Fallbacks != int64(len(ids)) {
		t.Fatalf("view stats = %+v, want %d fallbacks", vs, len(ids))
	}
	s.SetMmapViews(true)
	if _, _, err := s.ViewExtent(ids[0]); err != nil {
		t.Fatal(err)
	}
	if vs := s.ViewStats(); mmapSupported && vs.Views == 0 {
		t.Fatalf("view stats = %+v, want mapped views after re-enable", vs)
	}
}

// TestMemStoreViewExtent: MemStore serves zero-copy views of its extents.
func TestMemStoreViewExtent(t *testing.T) {
	s := NewMemStore(256)
	defer s.Close()
	id, err := s.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("memstore view payload")
	if err := s.Write(id, 1, payload); err != nil {
		t.Fatal(err)
	}
	got, blocks, err := s.ViewExtent(id)
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 1 || !bytes.Equal(got, payload) {
		t.Fatalf("view = (%d blocks, %q)", blocks, got)
	}
	if vs := s.ViewStats(); vs.Views != 1 {
		t.Fatalf("view stats = %+v", vs)
	}
}
