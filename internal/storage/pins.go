package storage

import (
	"sort"
	"sync"
)

// Extent pinning for snapshot readers.
//
// The DC-tree persists with shadow paging: a checkpoint install writes fresh
// extents and frees the superseded ones. An MVCC snapshot, however, keeps
// reading the extents its captured translation table references — without any
// tree lock — so a later install must not return those extents to the
// allocator while the snapshot is live. Pins is the refcount ledger both
// sides share: snapshot capture pins every extent of its table, installs
// route frees through FreeOrDefer (which parks the free instead of executing
// it while a pin is held), and the snapshot's release unpins and surfaces the
// parked frees for execution.
//
// Pins never talks to a Store itself: it only decides *whether* an extent may
// be freed now. The owner executes (or retries) the store.Free calls, so
// error handling and free-retry policy stay in one place.

// Extent pairs a PageID with its size in blocks — the two values a deferred
// Free needs.
type Extent struct {
	Page   PageID
	Blocks int
}

// Pins is a refcount ledger over extents. Safe for concurrent use.
type Pins struct {
	mu       sync.Mutex
	refs     map[PageID]int
	deferred map[PageID]int // page → blocks of a Free that arrived while pinned
}

// NewPins returns an empty ledger.
func NewPins() *Pins {
	return &Pins{
		refs:     make(map[PageID]int),
		deferred: make(map[PageID]int),
	}
}

// Pin takes one reference on an extent. Pinning an extent whose free is
// already deferred is forbidden by the owner's protocol (a superseded extent
// never re-enters a translation table) and would resurrect a dead extent;
// Pin reports it by returning false and taking no reference.
func (p *Pins) Pin(page PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dead := p.deferred[page]; dead {
		return false
	}
	p.refs[page]++
	return true
}

// FreeOrDefer decides an extent's fate at free time: unpinned extents return
// false (the caller frees them now); pinned extents have their free parked
// and return true. Double-deferring the same page is the owner's bug — the
// shadow-paging protocol frees each superseded extent exactly once — and is
// tolerated by keeping the first record.
func (p *Pins) FreeOrDefer(page PageID, blocks int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.refs[page] == 0 {
		return false
	}
	if _, ok := p.deferred[page]; !ok {
		p.deferred[page] = blocks
	}
	return true
}

// Unpin drops one reference. When the last reference goes and a deferred
// free is parked on the extent, the extent is returned with due=true: the
// caller must now execute the free.
func (p *Pins) Unpin(page PageID) (ext Extent, due bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.refs[page]
	if !ok {
		return Extent{}, false
	}
	if n > 1 {
		p.refs[page] = n - 1
		return Extent{}, false
	}
	delete(p.refs, page)
	blocks, parked := p.deferred[page]
	if !parked {
		return Extent{}, false
	}
	delete(p.deferred, page)
	return Extent{Page: page, Blocks: blocks}, true
}

// Deferred returns the parked frees currently waiting behind pins, sorted
// by page. Checkpoint installs persist this list in the metadata blob so a
// reopening process can restore the ledger exactly: re-pin the extents the
// durable version manifests reference, then re-park these frees behind
// them.
func (p *Pins) Deferred() []Extent {
	p.mu.Lock()
	out := make([]Extent, 0, len(p.deferred))
	for page, blocks := range p.deferred {
		out = append(out, Extent{Page: page, Blocks: blocks})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// Pinned reports whether the extent currently holds any reference.
func (p *Pins) Pinned(page PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refs[page] > 0
}

// PinStats is a point-in-time census of the ledger.
type PinStats struct {
	PinnedExtents   int // extents with at least one reference
	DeferredExtents int // extents whose free is parked behind a pin
	DeferredBlocks  int // blocks held back from the allocator by those frees
}

// Stats returns a census of pinned extents and parked frees.
func (p *Pins) Stats() PinStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PinStats{PinnedExtents: len(p.refs), DeferredExtents: len(p.deferred)}
	for _, blocks := range p.deferred {
		s.DeferredBlocks += blocks
	}
	return s
}
