package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// openTrunc truncates a file to size bytes (corruption helper).
func openTrunc(path string, size int64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// stores returns fresh instances of every Store implementation for
// conformance testing.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	paged, err := OpenPagedStore(filepath.Join(t.TempDir(), "store.dc"), 256, 1<<16)
	if err != nil {
		t.Fatalf("OpenPagedStore: %v", err)
	}
	return map[string]Store{
		"mem":   NewMemStore(256),
		"paged": paged,
	}
}

func TestStoreConformance(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if s.BlockSize() != 256 {
				t.Fatalf("BlockSize = %d", s.BlockSize())
			}

			id, err := s.Alloc(1)
			if err != nil || id == NilPage {
				t.Fatalf("Alloc: %v %v", id, err)
			}
			payload := []byte("hello dc-tree")
			if err := s.Write(id, 1, payload); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, blocks, err := s.Read(id)
			if err != nil || blocks != 1 || !bytes.Equal(got, payload) {
				t.Fatalf("Read = %q, %d, %v", got, blocks, err)
			}

			// Overwrite shrinks.
			if err := s.Write(id, 1, []byte("x")); err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			got, _, _ = s.Read(id)
			if string(got) != "x" {
				t.Fatalf("after rewrite Read = %q", got)
			}

			// Oversized payload rejected.
			big := make([]byte, ExtentCapacity(256, 1)+1)
			if err := s.Write(id, 1, big); err == nil {
				t.Fatal("oversized write accepted")
			}
			// Exactly-full payload accepted.
			full := make([]byte, ExtentCapacity(256, 1))
			for i := range full {
				full[i] = byte(i)
			}
			if err := s.Write(id, 1, full); err != nil {
				t.Fatalf("full write: %v", err)
			}
			got, _, _ = s.Read(id)
			if !bytes.Equal(got, full) {
				t.Fatal("full payload mismatch")
			}

			// Multi-block extents (supernodes).
			super, err := s.Alloc(3)
			if err != nil {
				t.Fatalf("Alloc(3): %v", err)
			}
			superPayload := make([]byte, ExtentCapacity(256, 3))
			rand.New(rand.NewSource(1)).Read(superPayload)
			if err := s.Write(super, 3, superPayload); err != nil {
				t.Fatalf("super write: %v", err)
			}
			got, blocks, err = s.Read(super)
			if err != nil || blocks != 3 || !bytes.Equal(got, superPayload) {
				t.Fatalf("super read blocks=%d err=%v", blocks, err)
			}

			// Free and error paths.
			if err := s.Free(super, 3); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if err := s.Free(super, 3); err == nil {
				t.Fatal("double free accepted")
			}
			if _, err := s.Alloc(0); err == nil {
				t.Fatal("Alloc(0) accepted")
			}

			// Meta blob.
			if _, err := s.GetMeta(); err == nil {
				t.Fatal("GetMeta before SetMeta should fail")
			}
			meta := []byte(`{"root": 7}`)
			if err := s.SetMeta(meta); err != nil {
				t.Fatalf("SetMeta: %v", err)
			}
			got2, err := s.GetMeta()
			if err != nil || !bytes.Equal(got2, meta) {
				t.Fatalf("GetMeta = %q, %v", got2, err)
			}
			// Meta can grow beyond one block.
			bigMeta := make([]byte, 256*4)
			for i := range bigMeta {
				bigMeta[i] = byte(i * 7)
			}
			if err := s.SetMeta(bigMeta); err != nil {
				t.Fatalf("SetMeta big: %v", err)
			}
			got2, _ = s.GetMeta()
			if !bytes.Equal(got2, bigMeta) {
				t.Fatal("big meta mismatch")
			}

			// Stats moved.
			st := s.Stats()
			if st.Reads == 0 || st.Writes == 0 || st.Allocs == 0 || st.Frees == 0 {
				t.Fatalf("stats not accounted: %+v", st)
			}
			s.ResetStats()
			if s.Stats() != (Stats{}) {
				t.Fatal("ResetStats did not zero")
			}

			if err := s.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, _, err := s.Read(id); err != ErrClosed {
				t.Fatalf("Read after close = %v", err)
			}
			if err := s.Close(); err != ErrClosed {
				t.Fatalf("double close = %v", err)
			}
		})
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 5, Allocs: 3, Frees: 1, Hits: 7, Misses: 3, BytesRead: 100, BytesWritten: 50}
	b := Stats{Reads: 4, Writes: 2, Allocs: 1, Frees: 0, Hits: 3, Misses: 1, BytesRead: 40, BytesWritten: 20}
	d := a.Sub(b)
	want := Stats{Reads: 6, Writes: 3, Allocs: 2, Frees: 1, Hits: 4, Misses: 2, BytesRead: 60, BytesWritten: 30}
	if d != want {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestBlocksForAndCapacity(t *testing.T) {
	if BlocksFor(256, 0) != 1 {
		t.Error("empty payload still needs one block")
	}
	if BlocksFor(256, ExtentCapacity(256, 1)) != 1 {
		t.Error("exactly-full payload fits one block")
	}
	if BlocksFor(256, ExtentCapacity(256, 1)+1) != 2 {
		t.Error("one byte over needs two blocks")
	}
	if got := BlocksFor(256, 1000); got != 4 {
		t.Errorf("BlocksFor(256,1000) = %d", got)
	}
}

func TestPagedStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.dc")
	s, err := OpenPagedStore(path, 128, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	type ext struct {
		id     PageID
		blocks int
		data   []byte
	}
	rng := rand.New(rand.NewSource(42))
	var live []ext
	for i := 0; i < 200; i++ {
		blocks := 1 + rng.Intn(4)
		id, err := s.Alloc(blocks)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, rng.Intn(ExtentCapacity(128, blocks)+1))
		rng.Read(data)
		if err := s.Write(id, blocks, data); err != nil {
			t.Fatal(err)
		}
		live = append(live, ext{id, blocks, data})
		// Randomly free ~25%.
		if len(live) > 4 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			if err := s.Free(live[k].id, live[k].blocks); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	if err := s.SetMeta([]byte("root=42")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify every live extent plus meta.
	s2, err := OpenPagedStore(path, 128, 1<<16)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	meta, err := s2.GetMeta()
	if err != nil || string(meta) != "root=42" {
		t.Fatalf("meta after reopen = %q, %v", meta, err)
	}
	for _, e := range live {
		data, blocks, err := s2.Read(e.id)
		if err != nil || blocks != e.blocks || !bytes.Equal(data, e.data) {
			t.Fatalf("extent %d after reopen: blocks=%d err=%v match=%v",
				e.id, blocks, err, bytes.Equal(data, e.data))
		}
	}
	// Freed extents must be reusable after reopen.
	id, err := s2.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(id, 2, []byte("reused")); err != nil {
		t.Fatal(err)
	}
}

func TestPagedStoreReopenWrongBlockSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bs.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenPagedStore(path, 256, 0); err == nil {
		t.Fatal("reopen with different block size accepted")
	}
}

func TestPagedStoreCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.dc")
	s, _ := OpenPagedStore(path, 128, 0)
	s.Close()
	// Truncate into the header.
	f, err := openTrunc(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenPagedStore(path, 128, 0); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

func TestPagedStoreBufferPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.dc")
	// Tiny pool: 2 extents of ~120 bytes fit, third evicts.
	s, err := OpenPagedStore(path, 128, 240)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []PageID
	payload := make([]byte, 100)
	for i := 0; i < 3; i++ {
		id, _ := s.Alloc(1)
		payload[0] = byte(i)
		if err := s.Write(id, 1, payload); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.ResetStats()
	// ids[0] was evicted by writes of ids[1], ids[2]: reading it misses.
	if _, _, err := s.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("expected cold miss, stats = %+v", st)
	}
	// Re-reading hits.
	s.Read(ids[0])
	st = s.Stats()
	if st.Hits != 1 {
		t.Fatalf("expected warm hit, stats = %+v", st)
	}
	// A payload larger than the pool is served but not cached.
	big, _ := s.Alloc(4)
	bigData := make([]byte, 300)
	if err := s.Write(big, 4, bigData); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	s.Read(big)
	s.Read(big)
	st = s.Stats()
	if st.Misses != 2 {
		t.Fatalf("oversized payload should never cache, stats = %+v", st)
	}
}

func TestLRUPoolEviction(t *testing.T) {
	p := newLRUPool(10)
	p.put(1, 1, []byte("aaaa"))
	p.put(2, 1, []byte("bbbb"))
	if p.len() != 2 || p.used != 8 {
		t.Fatalf("len=%d used=%d", p.len(), p.used)
	}
	// Touch 1 so 2 becomes LRU, then insert 3 to evict 2.
	p.get(1)
	p.put(3, 1, []byte("cccc"))
	if _, _, ok := p.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, _, ok := p.get(1); !ok {
		t.Fatal("1 should have survived")
	}
	// Refresh with different size adjusts used bytes.
	p.put(1, 1, []byte("aa"))
	data, _, ok := p.get(1)
	if !ok || string(data) != "aa" {
		t.Fatalf("refresh: %q %v", data, ok)
	}
	p.drop(1)
	if _, _, ok := p.get(1); ok {
		t.Fatal("dropped entry still cached")
	}
	p.drop(999) // no-op
}

func TestMemStoreExtentCount(t *testing.T) {
	s := NewMemStore(256)
	a, _ := s.Alloc(1)
	b, _ := s.Alloc(2)
	if s.ExtentCount() != 2 {
		t.Fatalf("ExtentCount = %d", s.ExtentCount())
	}
	s.Free(a, 1)
	if s.ExtentCount() != 1 {
		t.Fatalf("ExtentCount = %d", s.ExtentCount())
	}
	// Wrong block count on write/free rejected.
	if err := s.Write(b, 1, []byte("x")); err == nil {
		t.Fatal("wrong blocks on write accepted")
	}
	if err := s.Free(b, 1); err == nil {
		t.Fatal("wrong blocks on free accepted")
	}
	if _, _, err := s.Read(PageID(999)); err == nil {
		t.Fatal("read of unknown id accepted")
	}
	if err := s.Write(PageID(999), 1, nil); err == nil {
		t.Fatal("write of unknown id accepted")
	}
}

func BenchmarkMemStoreReadWrite(b *testing.B) {
	s := NewMemStore(4096)
	id, _ := s.Alloc(1)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write(id, 1, payload)
		s.Read(id)
	}
}

func BenchmarkPagedStoreWarmRead(b *testing.B) {
	path := filepath.Join(b.TempDir(), fmt.Sprintf("bench%d.dc", b.N))
	s, err := OpenPagedStore(path, 4096, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	id, _ := s.Alloc(1)
	s.Write(id, 1, make([]byte, 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(id)
	}
}
