package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fillSegments appends enough records to leave the log with at least n
// sealed segments, then syncs.
func fillSegments(t *testing.T, w *WAL, n int) uint64 {
	t.Helper()
	var last uint64
	for len(w.sealed) < n {
		lsn, err := w.Append([]byte(fmt.Sprintf("payload-%d", w.nextLSN)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
	}
	if _, err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return last
}

func recycleFiles(t *testing.T, prefix string) []string {
	t.Helper()
	matches, err := filepath.Glob(prefix + ".recycle*.wal")
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestWALRecycleLifecycle(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	opts := WALOptions{SegmentBytes: 128}
	w := openTestWAL(t, prefix, opts)

	// Retire a few sealed segments: they must land in the pool, not be
	// removed, and stay invisible to the live log.
	fillSegments(t, w, 3)
	before := w.Records()
	if err := w.TruncateBefore(w.sealed[len(w.sealed)-1].firstLSN - 1); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	pool := recycleFiles(t, prefix)
	if len(pool) == 0 {
		t.Fatal("no segments were recycled into the pool")
	}
	if w.Records() >= before {
		t.Fatalf("records not reduced by truncation: %d -> %d", before, w.Records())
	}
	if segs, _ := findSegments(prefix); len(segs) != len(w.sealed)+1 {
		t.Fatalf("pool files leaked into findSegments: %v", segs)
	}

	// New segment creations must be served from the pool.
	for w.Stats().Recycled == 0 {
		if _, err := w.Append([]byte("rotate-me-through-the-pool")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := w.Stats().Recycled; got == 0 {
		t.Fatalf("Recycled = %d, want > 0", got)
	}

	// Replay integrity is unaffected by reuse: contiguous LSNs, correct
	// payloads.
	recs, order := collect(t, w)
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("non-contiguous LSNs after recycling: %v", order)
		}
	}
	for lsn, p := range recs {
		if !strings.HasPrefix(p, "payload-") && p != "rotate-me-through-the-pool" {
			t.Fatalf("lsn %d: unexpected payload %q", lsn, p)
		}
	}

	// Reopen adopts the pool and the log itself is unchanged.
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	wantRecords := w.Records()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w = openTestWAL(t, prefix, opts)
	defer w.Close()
	if w.Records() != wantRecords {
		t.Fatalf("records after reopen = %d, want %d", w.Records(), wantRecords)
	}
	if len(recycleFiles(t, prefix)) != len(w.recycle) {
		t.Fatalf("pool not adopted: disk %v vs tracked %v", recycleFiles(t, prefix), w.recycle)
	}
}

func TestWALRecycleHalfRewrittenPoolFileIgnored(t *testing.T) {
	// A crash between rewriting a pooled file's header and renaming it into
	// the log leaves a pool-named file with a live-looking header. Open must
	// treat it as pool inventory, never as part of the log.
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("live")); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	w.Close()

	// Fabricate the half-rewritten pool file: a valid header claiming the
	// next segment index.
	rp := walRecyclePath(prefix, 7)
	f, err := os.Create(rp)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSegHeader(f, 2, 99, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	if n := w.Records(); n != 3 {
		t.Fatalf("records = %d, want 3 (pool file replayed into the log?)", n)
	}
	if _, order := collect(t, w); len(order) != 3 {
		t.Fatalf("replayed %v", order)
	}
	if w.recycleSeq != 8 {
		t.Fatalf("recycleSeq = %d, want 8 (must not reuse adopted names)", w.recycleSeq)
	}
}

func TestWALRecycleDisabled(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 128, RecyclePool: -1})
	defer w.Close()
	fillSegments(t, w, 2)
	if err := w.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if pool := recycleFiles(t, prefix); len(pool) != 0 {
		t.Fatalf("recycling disabled but pool files exist: %v", pool)
	}
	if got := w.Stats().Recycled; got != 0 {
		t.Fatalf("Recycled = %d, want 0", got)
	}
}

func TestWALRecyclePoolCapEnforced(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	opts := WALOptions{SegmentBytes: 128, RecyclePool: 2}
	w := openTestWAL(t, prefix, opts)
	fillSegments(t, w, 6)
	if err := w.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if pool := recycleFiles(t, prefix); len(pool) != 2 {
		t.Fatalf("pool size %d, want cap 2: %v", len(pool), pool)
	}
	w.Close()

	// Extra pool files beyond the cap (e.g. after lowering the knob) are
	// discarded on open.
	for i := 10; i < 15; i++ {
		if err := os.WriteFile(walRecyclePath(prefix, uint64(i)), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w = openTestWAL(t, prefix, opts)
	defer w.Close()
	if pool := recycleFiles(t, prefix); len(pool) != 2 {
		t.Fatalf("pool size after reopen %d, want 2: %v", len(pool), pool)
	}
}

func TestWALTruncateBeforePartialFailureIdempotent(t *testing.T) {
	// Inject a removal failure by swapping a sealed segment file for a
	// non-empty directory (os.Remove fails with ENOTEMPTY). The truncation
	// must keep its accounting consistent with disk, and a retry after the
	// obstacle clears must finish the job — including tolerating segments
	// that already disappeared.
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 128, RecyclePool: -1})
	defer w.Close()
	last := fillSegments(t, w, 3)
	_ = last
	if len(w.sealed) < 3 {
		t.Fatalf("want ≥3 sealed segments, have %d", len(w.sealed))
	}
	cutLSN := w.sealed[2].firstLSN - 1 // retire sealed[0] and sealed[1]
	victim := w.sealed[1]

	// Replace sealed[1] with a non-empty directory.
	if w.sealed[1].f != nil {
		w.sealed[1].f.Close()
		w.sealed[1].f = nil
	}
	if err := os.Remove(victim.path); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(victim.path, "block"), 0o755); err != nil {
		t.Fatal(err)
	}

	recordsBefore := w.Records()
	err := w.TruncateBefore(cutLSN)
	if err == nil {
		t.Fatal("TruncateBefore succeeded despite blocked removal")
	}
	// sealed[0] was retired and accounted; the victim and everything after
	// it must still be tracked.
	removed := int64(victim.firstLSN - 1) // LSNs of sealed[0] (log starts at 1)
	if got := w.Records(); got != recordsBefore-removed {
		t.Fatalf("records after partial failure = %d, want %d", got, recordsBefore-removed)
	}
	if len(w.sealed) == 0 || w.sealed[0].path != victim.path {
		t.Fatalf("failed segment no longer tracked: %v", w.sealed)
	}

	// Clear the obstacle; the retry must complete, treating the
	// already-removed sealed[0] position as done (it re-walks only the
	// retained suffix) and the now-missing files as success.
	if err := os.RemoveAll(victim.path); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(cutLSN); err != nil {
		t.Fatalf("retry TruncateBefore: %v", err)
	}
	// All records below cutLSN in retired segments are gone; replay must
	// start at sealed[2]'s first LSN.
	_, order := collect(t, w)
	if len(order) == 0 || order[0] != cutLSN+1 {
		t.Fatalf("replay after retry starts at %v, want %d", order, cutLSN+1)
	}
	// A second retry is a no-op.
	if err := w.TruncateBefore(cutLSN); err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
}
