package storage

import "container/list"

// lruPool is the PagedStore's buffer pool: an LRU cache of extent payloads
// bounded by total payload bytes. It is write-through — the store writes to
// the file first and then refreshes the pool — so eviction never loses data.
type lruPool struct {
	capacity int
	used     int
	order    *list.List // front = most recently used
	entries  map[PageID]*list.Element
}

type lruEntry struct {
	id     PageID
	blocks int
	data   []byte
}

func newLRUPool(capacity int) *lruPool {
	return &lruPool{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[PageID]*list.Element),
	}
}

// get returns the cached payload, marking the extent most recently used.
// The returned slice is the cached buffer: callers must not modify it.
func (p *lruPool) get(id PageID) ([]byte, int, bool) {
	el, ok := p.entries[id]
	if !ok {
		return nil, 0, false
	}
	p.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.data, e.blocks, true
}

// put inserts or refreshes an extent payload, evicting least-recently-used
// entries until the pool fits its capacity. Payloads larger than the whole
// pool are not cached.
func (p *lruPool) put(id PageID, blocks int, data []byte) {
	if len(data) > p.capacity {
		p.drop(id)
		return
	}
	if el, ok := p.entries[id]; ok {
		e := el.Value.(*lruEntry)
		p.used += len(data) - len(e.data)
		e.blocks = blocks
		e.data = append(e.data[:0], data...)
		p.order.MoveToFront(el)
	} else {
		e := &lruEntry{id: id, blocks: blocks, data: append([]byte(nil), data...)}
		p.entries[id] = p.order.PushFront(e)
		p.used += len(data)
	}
	for p.used > p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*lruEntry)
		p.order.Remove(back)
		delete(p.entries, e.id)
		p.used -= len(e.data)
	}
}

// drop removes an extent from the pool (on Free).
func (p *lruPool) drop(id PageID) {
	if el, ok := p.entries[id]; ok {
		e := el.Value.(*lruEntry)
		p.order.Remove(el)
		delete(p.entries, id)
		p.used -= len(e.data)
	}
}

// len reports the number of cached extents (for tests).
func (p *lruPool) len() int { return p.order.Len() }
