package storage

import (
	"errors"
	"sync"
)

// ErrInjected is returned by a FaultStore whose armed fault has fired. Once
// fired the store keeps failing — a crashed process does not come back —
// until the caller Disarms it (typically after snapshotting the underlying
// file as a crash image).
var ErrInjected = errors.New("storage: injected fault")

// FaultMode selects the failure a FaultStore injects when its op budget
// runs out.
type FaultMode int

const (
	// FailNone disables injection; the wrapper is transparent.
	FailNone FaultMode = iota
	// FailStop rejects the op before it reaches the inner store: nothing
	// is written. Models a crash just before the I/O.
	FailStop
	// TornWrite lets a prefix of the payload reach the inner store with the
	// tail zeroed, then fails. Models a write torn mid-sector by power loss.
	TornWrite
	// ShortRead truncates the payload returned by Read to half its length
	// (without an error). Models a read that silently came back short;
	// callers must detect it via their own framing or checksums.
	ShortRead
)

// FaultStore wraps a Store and injects a failure after a configurable
// number of mutating operations, for crash-consistency tests. Mutating ops
// (Alloc, Write, Free, SetMeta, Sync) count against the budget; Read counts
// only in ShortRead mode. A CrashPoint hook, when set, is called before
// every counted op with the op name and the number of ops remaining, so a
// test can snapshot files at the exact pre-crash instant.
type FaultStore struct {
	inner Store

	mu         sync.Mutex
	plan       FaultPlan
	fired      bool
	sticky     bool // a fired non-transient fault keeps failing every op
	ops        int64
	crashPoint func(op string, remaining int64)
}

// FaultPlan schedules one injected fault.
type FaultPlan struct {
	// Mode is the failure injected when the budget runs out.
	Mode FaultMode
	// Op restricts counting (and firing) to operations with this name —
	// "alloc", "write", "free", "setmeta", "sync", "read" — so a test can
	// aim at, say, exactly the second Free of a checkpoint. Empty counts
	// every operation.
	Op string
	// Budget is the number of counted operations allowed before the fault
	// fires (0 fires on the next counted op).
	Budget int64
	// Transient makes the fault fire once and disarm — a soft error such
	// as ENOSPC from a store that otherwise keeps working — instead of the
	// default fail-stop behavior where a crashed store rejects every
	// subsequent operation.
	Transient bool
}

// NewFaultStore wraps inner with fault injection disarmed.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner}
}

// Arm schedules mode to fire after n more counted operations (n = 0 fires
// on the next one). It also clears any previously fired state.
func (s *FaultStore) Arm(mode FaultMode, n int64) {
	s.ArmPlan(FaultPlan{Mode: mode, Budget: n})
}

// ArmPlan schedules an injected fault with full control over the op kind
// it targets and whether it is transient. It clears any previously fired
// state.
func (s *FaultStore) ArmPlan(p FaultPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
	s.fired = false
	s.sticky = false
}

// Disarm turns injection off and clears the fired state.
func (s *FaultStore) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = FaultPlan{}
	s.fired = false
	s.sticky = false
}

// SetCrashPoint registers fn to run before every counted operation. Pass
// nil to remove the hook.
func (s *FaultStore) SetCrashPoint(fn func(op string, remaining int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashPoint = fn
}

// Ops returns the number of counted operations observed so far.
func (s *FaultStore) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Fired reports whether the armed fault has gone off.
func (s *FaultStore) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Inner returns the wrapped store (tests snapshot its file directly).
func (s *FaultStore) Inner() Store { return s.inner }

// step counts one operation and decides whether the fault fires on it.
// It returns the active mode when this op must fail (or tear), FailNone
// otherwise.
func (s *FaultStore) step(op string) FaultMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	if s.sticky {
		return FailStop // crashed processes stay crashed
	}
	if s.crashPoint != nil {
		s.crashPoint(op, s.plan.Budget)
	}
	if s.plan.Mode == FailNone || (s.plan.Op != "" && s.plan.Op != op) {
		return FailNone
	}
	if s.plan.Budget > 0 {
		s.plan.Budget--
		return FailNone
	}
	s.fired = true
	mode := s.plan.Mode
	if s.plan.Transient {
		s.plan.Mode = FailNone // one soft error, then back to normal
	} else {
		s.sticky = true
	}
	return mode
}

// BlockSize implements Store.
func (s *FaultStore) BlockSize() int { return s.inner.BlockSize() }

// Alloc implements Store.
func (s *FaultStore) Alloc(blocks int) (PageID, error) {
	if s.step("alloc") != FailNone {
		return NilPage, ErrInjected
	}
	return s.inner.Alloc(blocks)
}

// Write implements Store. In TornWrite mode the firing op writes a prefix
// of the payload with the tail zeroed before failing.
func (s *FaultStore) Write(id PageID, blocks int, data []byte) error {
	switch s.step("write") {
	case FailNone:
		return s.inner.Write(id, blocks, data)
	case TornWrite:
		torn := make([]byte, len(data))
		copy(torn, data[:len(data)/2])
		if err := s.inner.Write(id, blocks, torn); err != nil {
			return err
		}
		return ErrInjected
	default:
		return ErrInjected
	}
}

// Read implements Store. Reads are counted (and may fail) only in
// ShortRead mode: crash tests measure their budgets in mutating ops.
func (s *FaultStore) Read(id PageID) ([]byte, int, error) {
	s.mu.Lock()
	shortMode := s.plan.Mode == ShortRead && !s.fired
	crashed := s.sticky
	s.mu.Unlock()
	if crashed {
		return nil, 0, ErrInjected
	}
	if !shortMode {
		return s.inner.Read(id)
	}
	if s.step("read") != FailNone {
		data, blocks, err := s.inner.Read(id)
		if err != nil {
			return nil, 0, err
		}
		return data[:len(data)/2], blocks, nil
	}
	return s.inner.Read(id)
}

// Free implements Store.
func (s *FaultStore) Free(id PageID, blocks int) error {
	if s.step("free") != FailNone {
		return ErrInjected
	}
	return s.inner.Free(id, blocks)
}

// SetMeta implements Store.
func (s *FaultStore) SetMeta(data []byte) error {
	switch s.step("setmeta") {
	case FailNone:
		return s.inner.SetMeta(data)
	case TornWrite:
		torn := make([]byte, len(data))
		copy(torn, data[:len(data)/2])
		if err := s.inner.SetMeta(torn); err != nil {
			return err
		}
		return ErrInjected
	default:
		return ErrInjected
	}
}

// GetMeta implements Store.
func (s *FaultStore) GetMeta() ([]byte, error) {
	s.mu.Lock()
	crashed := s.sticky
	s.mu.Unlock()
	if crashed {
		return nil, ErrInjected
	}
	return s.inner.GetMeta()
}

// Stats implements Store.
func (s *FaultStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *FaultStore) ResetStats() { s.inner.ResetStats() }

// Sync implements Store.
func (s *FaultStore) Sync() error {
	if s.step("sync") != FailNone {
		return ErrInjected
	}
	return s.inner.Sync()
}

// Close implements Store. Close always reaches the inner store so tests
// can release file handles even after a fault fired.
func (s *FaultStore) Close() error { return s.inner.Close() }
