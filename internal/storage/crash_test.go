package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// snapshot copies the store file as-is: the disk image a crash at this
// instant would leave behind.
func snapshot(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMetaDoubleBufferSurvivesCrash checks the SetMeta/Sync contract: a
// crash between SetMeta and Sync leaves the previous metadata visible,
// and the superseded meta extent is not recycled until the swap is
// durable.
func TestMetaDoubleBufferSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta([]byte("meta-v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// New meta written but not yet committed by Sync.
	if err := s.SetMeta([]byte("meta-v2")); err != nil {
		t.Fatal(err)
	}
	crashImage := filepath.Join(dir, "crash.dc")
	snapshot(t, path, crashImage)

	// The crash image must reopen with v1.
	crashed, err := OpenPagedStore(crashImage, 128, 0)
	if err != nil {
		t.Fatalf("reopening crash image: %v", err)
	}
	meta, err := crashed.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("meta-v1")) {
		t.Fatalf("crash image meta = %q, want v1", meta)
	}
	crashed.Close()

	// The live store commits v2 with Sync and survives reopen.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	committed := filepath.Join(dir, "committed.dc")
	snapshot(t, path, committed)
	s.Close()
	reopened, err := OpenPagedStore(committed, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	meta, err = reopened.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("meta-v2")) {
		t.Fatalf("committed meta = %q, want v2", meta)
	}
}

// TestFreelistDoubleBufferSurvivesTornWrite is the regression test for the
// crash window between storeFreelist and the header write: the freelist
// must never be rewritten in place, or a torn write there corrupts the
// state the current durable header points to. The test stops the sync
// exactly after the freelist extent is written (before the header), tears
// that write in the crash image, and requires the image to reopen with the
// previously committed freelist.
func TestFreelistDoubleBufferSurvivesTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Committed state: two freed extents on the durable freelist.
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := s.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, 1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Free(ids[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(ids[1], 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	committedFree := len(s.free[1])

	// Mutate the list, then run only the freelist half of the next sync —
	// the crash happens before the header write.
	if err := s.Free(ids[2], 1); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if err := s.storeFreelist(); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	newFreeID, newFreeBlk := s.freeID, s.freeBlk
	s.mu.Unlock()

	crashImage := filepath.Join(dir, "crash.dc")
	snapshot(t, path, crashImage)
	s.Close()

	// Tear the in-flight freelist write: scribble over the extent that was
	// being written when the crash hit.
	img, err := os.OpenFile(crashImage, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{0xff}, newFreeBlk*128)
	if _, err := img.WriteAt(garbage, int64(newFreeID)*128); err != nil {
		t.Fatal(err)
	}
	img.Close()

	crashed, err := OpenPagedStore(crashImage, 128, 0)
	if err != nil {
		t.Fatalf("crash image with torn freelist write failed to reopen: %v", err)
	}
	defer crashed.Close()
	if got := len(crashed.free[1]); got != committedFree {
		t.Fatalf("crash image freelist has %d single-block extents, want the committed %d", got, committedFree)
	}
}

// TestCloseDurablyPersistsFreelist: freed extents must survive Close and be
// reused after reopening.
func TestCloseDurablyPersistsFreelist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(a, 2, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("Alloc after reopen = %d, want freed extent %d reused", got, a)
	}
}

// TestMetaExtentNotRecycledBeforeSync hammers SetMeta without Sync and
// verifies the old committed metadata never gets overwritten by extent
// reuse.
func TestMetaExtentNotRecycledBeforeSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetMeta([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Several uncommitted meta rewrites plus unrelated traffic.
	for i := 0; i < 10; i++ {
		if err := s.SetMeta(bytes.Repeat([]byte{byte('a' + i)}, 50)); err != nil {
			t.Fatal(err)
		}
		id, err := s.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, 1, []byte("noise")); err != nil {
			t.Fatal(err)
		}
	}
	crashImage := filepath.Join(dir, "crash.dc")
	snapshot(t, path, crashImage)
	crashed, err := OpenPagedStore(crashImage, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer crashed.Close()
	meta, err := crashed.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("committed")) {
		t.Fatalf("crash image meta = %q, want the committed blob", meta)
	}
}
