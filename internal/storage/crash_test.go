package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// snapshot copies the store file as-is: the disk image a crash at this
// instant would leave behind.
func snapshot(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMetaDoubleBufferSurvivesCrash checks the SetMeta/Sync contract: a
// crash between SetMeta and Sync leaves the previous metadata visible,
// and the superseded meta extent is not recycled until the swap is
// durable.
func TestMetaDoubleBufferSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta([]byte("meta-v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// New meta written but not yet committed by Sync.
	if err := s.SetMeta([]byte("meta-v2")); err != nil {
		t.Fatal(err)
	}
	crashImage := filepath.Join(dir, "crash.dc")
	snapshot(t, path, crashImage)

	// The crash image must reopen with v1.
	crashed, err := OpenPagedStore(crashImage, 128, 0)
	if err != nil {
		t.Fatalf("reopening crash image: %v", err)
	}
	meta, err := crashed.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("meta-v1")) {
		t.Fatalf("crash image meta = %q, want v1", meta)
	}
	crashed.Close()

	// The live store commits v2 with Sync and survives reopen.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	committed := filepath.Join(dir, "committed.dc")
	snapshot(t, path, committed)
	s.Close()
	reopened, err := OpenPagedStore(committed, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	meta, err = reopened.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("meta-v2")) {
		t.Fatalf("committed meta = %q, want v2", meta)
	}
}

// TestMetaExtentNotRecycledBeforeSync hammers SetMeta without Sync and
// verifies the old committed metadata never gets overwritten by extent
// reuse.
func TestMetaExtentNotRecycledBeforeSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.dc")
	s, err := OpenPagedStore(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetMeta([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Several uncommitted meta rewrites plus unrelated traffic.
	for i := 0; i < 10; i++ {
		if err := s.SetMeta(bytes.Repeat([]byte{byte('a' + i)}, 50)); err != nil {
			t.Fatal(err)
		}
		id, err := s.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, 1, []byte("noise")); err != nil {
			t.Fatal(err)
		}
	}
	crashImage := filepath.Join(dir, "crash.dc")
	snapshot(t, path, crashImage)
	crashed, err := OpenPagedStore(crashImage, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer crashed.Close()
	meta, err := crashed.GetMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("committed")) {
		t.Fatalf("crash image meta = %q, want the committed blob", meta)
	}
}
