package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWALSegmentsFrontier(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 512})
	defer w.Close()

	if _, err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	segs := w.Segments()
	if len(segs) != 1 || segs[0].Sealed {
		t.Fatalf("fresh log segments = %+v", segs)
	}
	// Unsynced appends must be invisible to shippers: the frontier stays
	// at the header until a Sync covers the record.
	if segs[0].Size != segs[0].HeaderSize {
		t.Fatalf("unsynced frontier = %d, want %d", segs[0].Size, segs[0].HeaderSize)
	}
	if segs[0].HeaderSize != SegmentHeaderV2Size {
		t.Fatalf("fresh segment header size = %d, want v2 %d", segs[0].HeaderSize, SegmentHeaderV2Size)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if segs = w.Segments(); segs[0].Size <= segs[0].HeaderSize {
		t.Fatalf("synced frontier = %d", segs[0].Size)
	}

	last := fillSegments(t, w, 2)
	segs = w.Segments()
	if len(segs) < 3 {
		t.Fatalf("want >=2 sealed segments, got %+v", segs)
	}
	var lsn uint64 = 1
	for i, s := range segs {
		if s.FirstLSN != lsn {
			t.Fatalf("segment %d first lsn %d, want %d", i, s.FirstLSN, lsn)
		}
		sealed := i < len(segs)-1
		if s.Sealed != sealed {
			t.Fatalf("segment %d sealed=%v", i, s.Sealed)
		}
		if sealed {
			st, err := os.Stat(s.Path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Size != st.Size() {
				t.Fatalf("sealed segment %d frontier %d != file size %d", i, s.Size, st.Size())
			}
			next := segs[i+1].FirstLSN
			lsn = s.LastLSN(next) + 1
		}
	}
	if last == 0 {
		t.Fatal("no records appended")
	}

	// The directory scan sees the same set (sizes may exceed the durable
	// frontier on the active segment; never on sealed ones).
	listed, err := ListSegments(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(segs) {
		t.Fatalf("ListSegments = %d entries, Segments = %d", len(listed), len(segs))
	}
	for i := range segs {
		if listed[i].Index != segs[i].Index || listed[i].FirstLSN != segs[i].FirstLSN {
			t.Fatalf("listing mismatch at %d: %+v vs %+v", i, listed[i], segs[i])
		}
	}
}

func TestWALRetainSegments(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 512, RetainSegments: 2})
	defer w.Close()
	last := fillSegments(t, w, 4)

	if err := w.TruncateBefore(last); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	segs := w.Segments()
	sealed := len(segs) - 1
	if sealed < 2 {
		t.Fatalf("retention violated: %d sealed segments left, want >=2", sealed)
	}
	// Everything the cushion keeps must still replay.
	_, order := collect(t, w)
	if len(order) == 0 || order[0] != segs[0].FirstLSN {
		t.Fatalf("replay starts at %v, want %d", order, segs[0].FirstLSN)
	}
}

func TestWALRetainLSNFloor(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 512})
	defer w.Close()
	last := fillSegments(t, w, 3)

	segs := w.Segments()
	floor := segs[1].FirstLSN // keep records beyond the first segment
	w.SetRetainLSN(floor)
	if err := w.TruncateBefore(last); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	_, order := collect(t, w)
	if len(order) == 0 || order[0] > floor+1 {
		t.Fatalf("floor violated: replay starts at %v, floor %d", order[:min(3, len(order))], floor)
	}
	for _, s := range w.Segments()[:len(w.Segments())-1] {
		if _, err := os.Stat(s.Path); err != nil {
			t.Fatalf("retained segment missing: %v", err)
		}
	}

	// Lifting the floor lets the next truncation advance fully.
	w.SetRetainLSN(^uint64(0))
	if err := w.TruncateBefore(last); err != nil {
		t.Fatalf("TruncateBefore after lift: %v", err)
	}
	if n := w.Records(); n != 0 {
		t.Fatalf("records after full truncate = %d", n)
	}
}

func TestReadSegmentRangeHeaderGuard(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 1 << 20})
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := w.Segments()[0]
	want := seg.HeaderFor()

	data, err := ReadSegmentRange(seg.Path, want, seg.HeaderSize, int(seg.Size))
	if err != nil {
		t.Fatalf("ReadSegmentRange: %v", err)
	}
	frames, valid := ValidFramePrefix(data)
	if frames != 5 || valid != seg.Size-seg.HeaderSize {
		t.Fatalf("frames=%d valid=%d size=%d", frames, valid, seg.Size)
	}
	payloads, _, err := DecodeFrames(data)
	if err != nil || len(payloads) != 5 || string(payloads[3]) != "rec-3" {
		t.Fatalf("DecodeFrames = %d payloads, %v", len(payloads), err)
	}

	// A header that no longer matches — the recycle-rewrite signature —
	// must fail the read instead of returning frames.
	if _, err := ReadSegmentRange(seg.Path, SegmentHeader{Index: seg.Index + 7, FirstLSN: 1, HeaderSize: want.HeaderSize}, seg.HeaderSize, 64); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("mismatched header: err = %v, want ErrSegmentGone", err)
	}
	if _, err := ReadSegmentRange(seg.Path+".nope", want, seg.HeaderSize, 64); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("missing file: err = %v, want ErrSegmentGone", err)
	}
}

func TestDecodeFramesTornTail(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 1 << 20})
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("torn-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := w.Segments()[0]
	raw, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	data := raw[seg.HeaderSize:]

	// Chop mid-frame: the valid prefix shrinks by exactly one frame and
	// the torn bytes stay pending, never decoded.
	payloads, valid, err := DecodeFrames(data[:len(data)-3])
	if err != nil || len(payloads) != 2 {
		t.Fatalf("torn decode: %d payloads, %v", len(payloads), err)
	}
	if valid >= int64(len(data)) {
		t.Fatalf("valid=%d beyond torn prefix", valid)
	}
}
