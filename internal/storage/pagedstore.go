package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// PagedStore is a file-backed Store with a write-through LRU buffer pool.
//
// File layout:
//
//	block 0:            header (magic, block size, next page, meta/freelist
//	                    extent pointers)
//	block n (n ≥ 1):    extents; each extent starts with an 8-byte header
//	                    (block count, payload length) followed by payload
//
// The freelist and the user metadata blob are themselves stored as extents
// and re-written on Sync/Close. Reads served from the buffer pool count as
// Hits; reads that fault from the file count as Misses.
//
// PagedStore is safe for concurrent use. Reads in particular may run
// concurrently with each other (the DC-tree serves queries under a shared
// read lock, so several goroutines can fault nodes at once): the pool is
// consulted and refilled under the store mutex, but the file fault itself
// runs unlocked on os.File.ReadAt, which is safe for concurrent callers.
type PagedStore struct {
	mu          sync.Mutex // guards everything below except stats and f
	f           *os.File
	blockSize   int
	next        PageID
	free        map[int][]PageID // blocks -> extent ids, LIFO per size class
	metaID      PageID
	metaBlk     int
	freeID      PageID
	freeBlk     int
	pool        *lruPool
	pendingFree []extentSpan
	stats       statsCounters
	closed      bool
	dirtyHdr    bool
}

// extentSpan identifies an extent scheduled for release after the next
// durable header write.
type extentSpan struct {
	id     PageID
	blocks int
}

const (
	pagedMagic      = "DCSTORE1"
	headerSize      = 8 + 4 + 8 + 8 + 4 + 8 + 4
	minPagedBlock   = 64
	defaultPoolSize = 4 << 20
)

// OpenPagedStore opens (or creates) a file-backed store. blockSize is only
// used at creation time; reopening validates it against the file header.
// poolBytes bounds the buffer pool (≤ 0 selects a 4 MiB default).
func OpenPagedStore(path string, blockSize int, poolBytes int) (*PagedStore, error) {
	if blockSize < minPagedBlock {
		return nil, fmt.Errorf("%w: block size %d below minimum %d", ErrBadExtent, blockSize, minPagedBlock)
	}
	if poolBytes <= 0 {
		poolBytes = defaultPoolSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &PagedStore{
		f:         f,
		blockSize: blockSize,
		next:      1,
		free:      make(map[int][]PageID),
		pool:      newLRUPool(poolBytes),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.loadFreelist(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *PagedStore) writeHeader() error {
	buf := make([]byte, headerSize)
	copy(buf, pagedMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.blockSize))
	binary.LittleEndian.PutUint64(buf[12:], uint64(s.next))
	binary.LittleEndian.PutUint64(buf[20:], uint64(s.metaID))
	binary.LittleEndian.PutUint32(buf[28:], uint32(s.metaBlk))
	binary.LittleEndian.PutUint64(buf[32:], uint64(s.freeID))
	binary.LittleEndian.PutUint32(buf[40:], uint32(s.freeBlk))
	if _, err := s.f.WriteAt(buf, 0); err != nil {
		return err
	}
	s.dirtyHdr = false
	return nil
}

func (s *PagedStore) readHeader() error {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(headerSize)), buf); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(buf[:8]) != pagedMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	bs := int(binary.LittleEndian.Uint32(buf[8:]))
	if bs != s.blockSize {
		return fmt.Errorf("%w: file block size %d, opened with %d", ErrCorrupt, bs, s.blockSize)
	}
	s.next = PageID(binary.LittleEndian.Uint64(buf[12:]))
	s.metaID = PageID(binary.LittleEndian.Uint64(buf[20:]))
	s.metaBlk = int(binary.LittleEndian.Uint32(buf[28:]))
	s.freeID = PageID(binary.LittleEndian.Uint64(buf[32:]))
	s.freeBlk = int(binary.LittleEndian.Uint32(buf[40:]))
	return nil
}

// BlockSize implements Store.
func (s *PagedStore) BlockSize() int { return s.blockSize }

// Alloc implements Store.
func (s *PagedStore) Alloc(blocks int) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocLocked(blocks)
}

func (s *PagedStore) allocLocked(blocks int) (PageID, error) {
	if s.closed {
		return NilPage, ErrClosed
	}
	if blocks < 1 {
		return NilPage, ErrBadExtent
	}
	s.stats.allocs.Add(1)
	if ids := s.free[blocks]; len(ids) > 0 {
		id := ids[len(ids)-1]
		s.free[blocks] = ids[:len(ids)-1]
		return id, nil
	}
	id := s.next
	s.next += PageID(blocks)
	s.dirtyHdr = true
	return id, nil
}

// Write implements Store.
func (s *PagedStore) Write(id PageID, blocks int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id == NilPage || blocks < 1 {
		return ErrBadExtent
	}
	if len(data) > ExtentCapacity(s.blockSize, blocks) {
		return fmt.Errorf("%w: %d bytes into %d blocks of %d", ErrTooLarge, len(data), blocks, s.blockSize)
	}
	s.stats.writes.Add(1)
	s.stats.bytesWritten.Add(int64(len(data)))
	return s.writeExtent(id, blocks, data)
}

func (s *PagedStore) writeExtent(id PageID, blocks int, data []byte) error {
	buf := make([]byte, ExtentHeaderSize+len(data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(blocks))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
	copy(buf[ExtentHeaderSize:], data)
	if _, err := s.f.WriteAt(buf, int64(id)*int64(s.blockSize)); err != nil {
		return err
	}
	s.pool.put(id, blocks, data)
	return nil
}

// Read implements Store. Concurrent Reads are safe and overlap on the file
// fault: only the pool lookup and refill hold the store mutex.
func (s *PagedStore) Read(id PageID) ([]byte, int, error) {
	if id == NilPage {
		return nil, 0, fmt.Errorf("%w: nil page", ErrNotFound)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	s.stats.reads.Add(1)
	if data, blocks, ok := s.pool.get(id); ok {
		s.mu.Unlock()
		s.stats.hits.Add(1)
		s.stats.bytesRead.Add(int64(len(data)))
		return data, blocks, nil
	}
	s.mu.Unlock()

	s.stats.misses.Add(1)
	data, blocks, err := s.readExtent(id)
	if err != nil {
		return nil, 0, err
	}
	s.stats.bytesRead.Add(int64(len(data)))

	s.mu.Lock()
	if !s.closed {
		s.pool.put(id, blocks, data)
	}
	s.mu.Unlock()
	return data, blocks, nil
}

func (s *PagedStore) readExtent(id PageID) ([]byte, int, error) {
	off := int64(id) * int64(s.blockSize)
	hdr := make([]byte, ExtentHeaderSize)
	if _, err := s.f.ReadAt(hdr, off); err != nil {
		return nil, 0, fmt.Errorf("%w: extent %d: %v", ErrNotFound, id, err)
	}
	blocks := int(binary.LittleEndian.Uint32(hdr[0:]))
	length := int(binary.LittleEndian.Uint32(hdr[4:]))
	if blocks < 1 || length > ExtentCapacity(s.blockSize, blocks) {
		return nil, 0, fmt.Errorf("%w: extent %d header blocks=%d len=%d", ErrCorrupt, id, blocks, length)
	}
	data := make([]byte, length)
	if _, err := s.f.ReadAt(data, off+ExtentHeaderSize); err != nil {
		return nil, 0, fmt.Errorf("%w: extent %d body: %v", ErrCorrupt, id, err)
	}
	return data, blocks, nil
}

// Free implements Store.
func (s *PagedStore) Free(id PageID, blocks int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeLocked(id, blocks)
}

func (s *PagedStore) freeLocked(id PageID, blocks int) error {
	if s.closed {
		return ErrClosed
	}
	if id == NilPage || blocks < 1 {
		return ErrBadExtent
	}
	for _, f := range s.free[blocks] {
		if f == id {
			return fmt.Errorf("%w: %d", ErrDoubleFree, id)
		}
	}
	s.free[blocks] = append(s.free[blocks], id)
	s.pool.drop(id)
	s.stats.frees.Add(1)
	return nil
}

// SetMeta implements Store. The metadata blob is double-buffered: it is
// always written to a fresh extent, and the previous extent is released
// only after the next Sync has durably pointed the header at the new one
// — so a crash anywhere in between still reopens with the old metadata.
func (s *PagedStore) SetMeta(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	blocks := BlocksFor(s.blockSize, len(data))
	id, err := s.allocLocked(blocks)
	if err != nil {
		return err
	}
	if err := s.writeExtent(id, blocks, data); err != nil {
		return err
	}
	if s.metaID != NilPage {
		s.pendingFree = append(s.pendingFree, extentSpan{id: s.metaID, blocks: s.metaBlk})
	}
	s.metaID, s.metaBlk = id, blocks
	s.dirtyHdr = true
	return nil
}

// GetMeta implements Store.
func (s *PagedStore) GetMeta() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.metaID == NilPage {
		return nil, ErrNoMeta
	}
	data, _, err := s.readExtent(s.metaID)
	return data, err
}

// Stats implements Store.
func (s *PagedStore) Stats() Stats { return s.stats.snapshot() }

// ResetStats implements Store.
func (s *PagedStore) ResetStats() { s.stats.reset() }

// Sync implements Store: persists the freelist and header, fsyncs, and
// only then releases extents whose replacement the header now references.
func (s *PagedStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *PagedStore) syncLocked() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.storeFreelist(); err != nil {
		return err
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	for _, span := range s.pendingFree {
		if err := s.freeLocked(span.id, span.blocks); err != nil {
			return err
		}
	}
	s.pendingFree = nil
	return nil
}

// Close implements Store.
func (s *PagedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.syncLocked(); err != nil {
		s.f.Close()
		s.closed = true
		return err
	}
	s.closed = true
	return s.f.Close()
}

// encodeFreelist serializes a free map as a count followed by (id, blocks)
// uvarint pairs.
func encodeFreelist(free map[int][]PageID) []byte {
	var buf []byte
	n := 0
	for _, ids := range free {
		n += len(ids)
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for blocks, ids := range free {
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
			buf = binary.AppendUvarint(buf, uint64(blocks))
		}
	}
	return buf
}

// storeFreelist serializes the freelist into its own extent. Like the
// metadata blob, the list is double-buffered: it is always written to a
// fresh extent and the previous one is released only after the next durable
// header write, so a write torn by a crash can never corrupt the freelist
// the current on-disk header references.
func (s *PagedStore) storeFreelist() error {
	old := extentSpan{id: s.freeID, blocks: s.freeBlk}
	// Size the extent with the current map, allocate (which may pop a free
	// entry — shrinking the list, so the bound still holds), then serialize
	// the final state.
	blocks := BlocksFor(s.blockSize, len(encodeFreelist(s.free)))
	id, err := s.allocLocked(blocks)
	if err != nil {
		return err
	}
	if err := s.writeExtent(id, blocks, encodeFreelist(s.free)); err != nil {
		return err
	}
	s.freeID, s.freeBlk = id, blocks
	s.dirtyHdr = true
	if old.id != NilPage {
		s.pendingFree = append(s.pendingFree, old)
	}
	return nil
}

func (s *PagedStore) loadFreelist() error {
	if s.freeID == NilPage {
		return nil
	}
	data, _, err := s.readExtent(s.freeID)
	if err != nil {
		return err
	}
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return fmt.Errorf("%w: freelist count", ErrCorrupt)
	}
	pos := off
	for i := uint64(0); i < n; i++ {
		id, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return fmt.Errorf("%w: freelist entry %d", ErrCorrupt, i)
		}
		pos += k
		blocks, k2 := binary.Uvarint(data[pos:])
		if k2 <= 0 {
			return fmt.Errorf("%w: freelist entry %d size", ErrCorrupt, i)
		}
		pos += k2
		s.free[int(blocks)] = append(s.free[int(blocks)], PageID(id))
	}
	return nil
}
