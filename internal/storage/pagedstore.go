package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// PagedStore is a file-backed Store with a write-through LRU buffer pool.
//
// File layout (format v2, magic "DCSTORE2"):
//
//	block 0:            header (magic, block size, next page, meta/freelist
//	                    extent pointers, CRC32C of the preceding fields)
//	block n (n ≥ 1):    extents; each extent starts with a 12-byte header
//	                    (block count with the checksum flag in the high bit,
//	                    payload length, CRC32C of the payload) followed by
//	                    the payload
//
// Every extent payload — node encodings, the metadata blob, the freelist —
// is covered by a CRC32C (Castagnoli) verified on every file read; a
// mismatch surfaces as ErrChecksum instead of a garbage decode. v1 images
// (magic "DCSTORE1", 8-byte unchecksummed extent headers) still open:
// extents without the checksum flag skip verification, and every write —
// including the header rewrite on the next Sync — produces v2, so an old
// image upgrades incrementally in place.
//
// The freelist and the user metadata blob are themselves stored as extents
// and re-written on Sync/Close. Reads served from the buffer pool count as
// Hits; reads that fault from the file count as Misses.
//
// PagedStore is safe for concurrent use. Reads in particular may run
// concurrently with each other (the DC-tree serves queries under a shared
// read lock, so several goroutines can fault nodes at once): the pool is
// consulted and refilled under the store mutex, but the file fault itself
// runs unlocked on os.File.ReadAt, which is safe for concurrent callers.
type PagedStore struct {
	mu          sync.Mutex // guards everything below except stats and f
	f           *os.File
	blockSize   int
	next        PageID
	free        map[int][]PageID // blocks -> extent ids, LIFO per size class
	metaID      PageID
	metaBlk     int
	freeID      PageID
	freeBlk     int
	pool        *lruPool
	pendingFree []extentSpan
	stats       statsCounters
	closed      bool
	dirtyHdr    bool
	mm          mmapRegion // zero-copy extent views (mmapstore.go)
}

// extentSpan identifies an extent scheduled for release after the next
// durable header write.
type extentSpan struct {
	id     PageID
	blocks int
}

const (
	pagedMagic      = "DCSTORE2"
	pagedMagicV1    = "DCSTORE1"
	headerSize      = 8 + 4 + 8 + 8 + 4 + 8 + 4
	headerSizeV2    = headerSize + 4 // + CRC32C of the preceding fields
	minPagedBlock   = 64
	defaultPoolSize = 4 << 20

	// extentFlagCRC marks a v2 extent header: the high bit of the block
	// count word says "a CRC32C of the payload follows at offset 8". v1
	// extents never set it (block counts are far below 2^31).
	extentFlagCRC    = 1 << 31
	extentHeaderV1   = 8 // v1 extents: block count, payload length only
	extentChecksumAt = 8 // v2 extents: CRC32C offset within the header
)

// castagnoli is the CRC32C polynomial table used for all page checksums
// (the same polynomial storage engines use for torn-page detection; it has
// hardware support on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpenPagedStore opens (or creates) a file-backed store. blockSize is only
// used at creation time; reopening validates it against the file header.
// poolBytes bounds the buffer pool (≤ 0 selects a 4 MiB default).
func OpenPagedStore(path string, blockSize int, poolBytes int) (*PagedStore, error) {
	if blockSize < minPagedBlock {
		return nil, fmt.Errorf("%w: block size %d below minimum %d", ErrBadExtent, blockSize, minPagedBlock)
	}
	if poolBytes <= 0 {
		poolBytes = defaultPoolSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &PagedStore{
		f:         f,
		blockSize: blockSize,
		next:      1,
		free:      make(map[int][]PageID),
		pool:      newLRUPool(poolBytes),
	}
	s.mm.init(f, blockSize)
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.loadFreelist(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// writeHeader always writes the v2 header: the fields followed by their
// CRC32C. Reopening a v1 image therefore upgrades its header on the first
// Sync.
func (s *PagedStore) writeHeader() error {
	buf := make([]byte, headerSizeV2)
	copy(buf, pagedMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.blockSize))
	binary.LittleEndian.PutUint64(buf[12:], uint64(s.next))
	binary.LittleEndian.PutUint64(buf[20:], uint64(s.metaID))
	binary.LittleEndian.PutUint32(buf[28:], uint32(s.metaBlk))
	binary.LittleEndian.PutUint64(buf[32:], uint64(s.freeID))
	binary.LittleEndian.PutUint32(buf[40:], uint32(s.freeBlk))
	binary.LittleEndian.PutUint32(buf[headerSize:], crc32.Checksum(buf[:headerSize], castagnoli))
	if _, err := s.f.WriteAt(buf, 0); err != nil {
		return err
	}
	s.dirtyHdr = false
	return nil
}

func (s *PagedStore) readHeader() error {
	buf := make([]byte, headerSizeV2)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(headerSize)), buf[:headerSize]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	switch string(buf[:8]) {
	case pagedMagic:
		if _, err := io.ReadFull(io.NewSectionReader(s.f, int64(headerSize), 4), buf[headerSize:]); err != nil {
			return fmt.Errorf("%w: short header checksum: %v", ErrCorrupt, err)
		}
		want := binary.LittleEndian.Uint32(buf[headerSize:])
		if got := crc32.Checksum(buf[:headerSize], castagnoli); got != want {
			return fmt.Errorf("%w: store header crc 0x%08x, want 0x%08x", ErrChecksum, got, want)
		}
	case pagedMagicV1:
		// Pre-checksum image: accept as-is and rewrite the header in v2
		// form on the next durable sync.
		s.dirtyHdr = true
	default:
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	bs := int(binary.LittleEndian.Uint32(buf[8:]))
	if bs != s.blockSize {
		return fmt.Errorf("%w: file block size %d, opened with %d", ErrCorrupt, bs, s.blockSize)
	}
	s.next = PageID(binary.LittleEndian.Uint64(buf[12:]))
	s.metaID = PageID(binary.LittleEndian.Uint64(buf[20:]))
	s.metaBlk = int(binary.LittleEndian.Uint32(buf[28:]))
	s.freeID = PageID(binary.LittleEndian.Uint64(buf[32:]))
	s.freeBlk = int(binary.LittleEndian.Uint32(buf[40:]))
	return nil
}

// BlockSize implements Store.
func (s *PagedStore) BlockSize() int { return s.blockSize }

// Alloc implements Store.
func (s *PagedStore) Alloc(blocks int) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocLocked(blocks)
}

func (s *PagedStore) allocLocked(blocks int) (PageID, error) {
	if s.closed {
		return NilPage, ErrClosed
	}
	if blocks < 1 {
		return NilPage, ErrBadExtent
	}
	s.stats.allocs.Add(1)
	if ids := s.free[blocks]; len(ids) > 0 {
		id := ids[len(ids)-1]
		s.free[blocks] = ids[:len(ids)-1]
		return id, nil
	}
	id := s.next
	s.next += PageID(blocks)
	s.dirtyHdr = true
	return id, nil
}

// Write implements Store.
func (s *PagedStore) Write(id PageID, blocks int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id == NilPage || blocks < 1 {
		return ErrBadExtent
	}
	if len(data) > ExtentCapacity(s.blockSize, blocks) {
		return fmt.Errorf("%w: %d bytes into %d blocks of %d", ErrTooLarge, len(data), blocks, s.blockSize)
	}
	s.stats.writes.Add(1)
	s.stats.bytesWritten.Add(int64(len(data)))
	return s.writeExtent(id, blocks, data)
}

// writeExtent writes a v2 extent: the block-count word carries the
// checksum flag, and the payload's CRC32C sits between the length and the
// payload. Rewriting an extent of a v1 image upgrades it in place.
func (s *PagedStore) writeExtent(id PageID, blocks int, data []byte) error {
	buf := make([]byte, ExtentHeaderSize+len(data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(blocks)|extentFlagCRC)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[extentChecksumAt:], crc32.Checksum(data, castagnoli))
	copy(buf[ExtentHeaderSize:], data)
	if _, err := s.f.WriteAt(buf, int64(id)*int64(s.blockSize)); err != nil {
		return err
	}
	// The mapping shares pages with the file, so the new bytes are already
	// visible there; only the cached CRC verdict for this page is stale.
	s.mm.invalidate(id)
	s.pool.put(id, blocks, data)
	return nil
}

// Read implements Store. Concurrent Reads are safe and overlap on the file
// fault: only the pool lookup and refill hold the store mutex.
func (s *PagedStore) Read(id PageID) ([]byte, int, error) {
	if id == NilPage {
		return nil, 0, fmt.Errorf("%w: nil page", ErrNotFound)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	s.stats.reads.Add(1)
	if data, blocks, ok := s.pool.get(id); ok {
		s.mu.Unlock()
		s.stats.hits.Add(1)
		s.stats.bytesRead.Add(int64(len(data)))
		return data, blocks, nil
	}
	s.mu.Unlock()

	s.stats.misses.Add(1)
	data, blocks, err := s.readExtent(id)
	if err != nil {
		return nil, 0, err
	}
	s.stats.bytesRead.Add(int64(len(data)))

	s.mu.Lock()
	if !s.closed {
		s.pool.put(id, blocks, data)
	}
	s.mu.Unlock()
	return data, blocks, nil
}

// readExtent faults an extent from the file. A v2 extent (checksum flag
// set) has its payload verified against the stored CRC32C and fails with
// ErrChecksum on mismatch; a v1 extent (flag clear, 8-byte header) is
// served unverified for read compatibility with pre-checksum images.
func (s *PagedStore) readExtent(id PageID) ([]byte, int, error) {
	data, blocks, _, err := s.readExtentFile(id)
	return data, blocks, err
}

func (s *PagedStore) readExtentFile(id PageID) ([]byte, int, bool, error) {
	off := int64(id) * int64(s.blockSize)
	hdr := make([]byte, extentHeaderV1)
	if _, err := s.f.ReadAt(hdr, off); err != nil {
		return nil, 0, false, fmt.Errorf("%w: extent %d: %v", ErrNotFound, id, err)
	}
	word := binary.LittleEndian.Uint32(hdr[0:])
	length := int(binary.LittleEndian.Uint32(hdr[4:]))
	checksummed := word&extentFlagCRC != 0
	blocks := int(word &^ uint32(extentFlagCRC))
	payloadOff, capacity := int64(extentHeaderV1), s.blockSize*blocks-extentHeaderV1
	if checksummed {
		payloadOff, capacity = int64(ExtentHeaderSize), ExtentCapacity(s.blockSize, blocks)
	}
	if blocks < 1 || length > capacity {
		return nil, 0, false, fmt.Errorf("%w: extent %d header blocks=%d len=%d", ErrCorrupt, id, blocks, length)
	}
	var want uint32
	if checksummed {
		var sum [4]byte
		if _, err := s.f.ReadAt(sum[:], off+extentChecksumAt); err != nil {
			return nil, 0, false, fmt.Errorf("%w: extent %d checksum: %v", ErrCorrupt, id, err)
		}
		want = binary.LittleEndian.Uint32(sum[:])
	}
	data := make([]byte, length)
	if _, err := s.f.ReadAt(data, off+payloadOff); err != nil {
		return nil, 0, false, fmt.Errorf("%w: extent %d body: %v", ErrCorrupt, id, err)
	}
	if checksummed {
		if got := crc32.Checksum(data, castagnoli); got != want {
			return nil, 0, false, fmt.Errorf("%w: extent %d crc 0x%08x, want 0x%08x", ErrChecksum, id, got, want)
		}
	}
	return data, blocks, checksummed, nil
}

// VerifyExtent reads an extent directly from the backing file — bypassing
// the buffer pool, so it checks what is actually on disk — and verifies its
// checksum. It reports the extent's size in blocks and whether it carried a
// checksum (false only for extents of a pre-checksum v1 image).
func (s *PagedStore) VerifyExtent(id PageID) (blocks int, checksummed bool, err error) {
	if id == NilPage {
		return 0, false, fmt.Errorf("%w: nil page", ErrNotFound)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, false, ErrClosed
	}
	_, blocks, checksummed, err = s.readExtentFile(id)
	return blocks, checksummed, err
}

// Free implements Store.
func (s *PagedStore) Free(id PageID, blocks int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeLocked(id, blocks)
}

func (s *PagedStore) freeLocked(id PageID, blocks int) error {
	if s.closed {
		return ErrClosed
	}
	if id == NilPage || blocks < 1 {
		return ErrBadExtent
	}
	for _, f := range s.free[blocks] {
		if f == id {
			return fmt.Errorf("%w: %d", ErrDoubleFree, id)
		}
	}
	s.free[blocks] = append(s.free[blocks], id)
	s.pool.drop(id)
	s.stats.frees.Add(1)
	return nil
}

// SetMeta implements Store. The metadata blob is double-buffered: it is
// always written to a fresh extent, and the previous extent is released
// only after the next Sync has durably pointed the header at the new one
// — so a crash anywhere in between still reopens with the old metadata.
func (s *PagedStore) SetMeta(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	blocks := BlocksFor(s.blockSize, len(data))
	id, err := s.allocLocked(blocks)
	if err != nil {
		return err
	}
	if err := s.writeExtent(id, blocks, data); err != nil {
		return err
	}
	if s.metaID != NilPage {
		s.pendingFree = append(s.pendingFree, extentSpan{id: s.metaID, blocks: s.metaBlk})
	}
	s.metaID, s.metaBlk = id, blocks
	s.dirtyHdr = true
	return nil
}

// GetMeta implements Store.
func (s *PagedStore) GetMeta() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.metaID == NilPage {
		return nil, ErrNoMeta
	}
	data, _, err := s.readExtent(s.metaID)
	return data, err
}

// Stats implements Store.
func (s *PagedStore) Stats() Stats { return s.stats.snapshot() }

// ResetStats implements Store.
func (s *PagedStore) ResetStats() { s.stats.reset() }

// Sync implements Store: persists the freelist and header, fsyncs, and
// only then releases extents whose replacement the header now references.
func (s *PagedStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *PagedStore) syncLocked() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.storeFreelist(); err != nil {
		return err
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	for _, span := range s.pendingFree {
		if err := s.freeLocked(span.id, span.blocks); err != nil {
			return err
		}
	}
	s.pendingFree = nil
	return nil
}

// Close implements Store.
func (s *PagedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.syncLocked(); err != nil {
		s.mm.close()
		s.f.Close()
		s.closed = true
		return err
	}
	s.closed = true
	s.mm.close()
	return s.f.Close()
}

// encodeFreelist serializes a free map as a count followed by (id, blocks)
// uvarint pairs.
func encodeFreelist(free map[int][]PageID) []byte {
	var buf []byte
	n := 0
	for _, ids := range free {
		n += len(ids)
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for blocks, ids := range free {
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
			buf = binary.AppendUvarint(buf, uint64(blocks))
		}
	}
	return buf
}

// storeFreelist serializes the freelist into its own extent. Like the
// metadata blob, the list is double-buffered: it is always written to a
// fresh extent and the previous one is released only after the next durable
// header write, so a write torn by a crash can never corrupt the freelist
// the current on-disk header references.
func (s *PagedStore) storeFreelist() error {
	old := extentSpan{id: s.freeID, blocks: s.freeBlk}
	// Size the extent with the current map, allocate (which may pop a free
	// entry — shrinking the list, so the bound still holds), then serialize
	// the final state.
	blocks := BlocksFor(s.blockSize, len(encodeFreelist(s.free)))
	id, err := s.allocLocked(blocks)
	if err != nil {
		return err
	}
	if err := s.writeExtent(id, blocks, encodeFreelist(s.free)); err != nil {
		return err
	}
	s.freeID, s.freeBlk = id, blocks
	s.dirtyHdr = true
	if old.id != NilPage {
		s.pendingFree = append(s.pendingFree, old)
	}
	return nil
}

func (s *PagedStore) loadFreelist() error {
	if s.freeID == NilPage {
		return nil
	}
	data, _, err := s.readExtent(s.freeID)
	if err != nil {
		return err
	}
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return fmt.Errorf("%w: freelist count", ErrCorrupt)
	}
	pos := off
	for i := uint64(0); i < n; i++ {
		id, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return fmt.Errorf("%w: freelist entry %d", ErrCorrupt, i)
		}
		pos += k
		blocks, k2 := binary.Uvarint(data[pos:])
		if k2 <= 0 {
			return fmt.Errorf("%w: freelist entry %d size", ErrCorrupt, i)
		}
		pos += k2
		s.free[int(blocks)] = append(s.free[int(blocks)], PageID(id))
	}
	return nil
}
