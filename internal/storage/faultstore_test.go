package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultStoreFailStopBudget(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128))
	fs.Arm(FailStop, 2)

	// Two ops within budget succeed.
	id, err := fs.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(id, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// The third fires and every later op stays failed.
	if err := fs.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past budget: %v", err)
	}
	if !fs.Fired() {
		t.Fatal("Fired() = false after injection")
	}
	if _, err := fs.Alloc(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("op after crash: %v", err)
	}
	if _, _, err := fs.Read(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after crash: %v", err)
	}

	// Disarm models the post-crash reopen: the store works again.
	fs.Disarm()
	if data, _, err := fs.Read(id); err != nil || !bytes.Equal(data, []byte("ok")) {
		t.Fatalf("read after disarm: %q, %v", data, err)
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128))
	id, err := fs.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm(TornWrite, 0)
	payload := []byte("abcdefgh")
	if err := fs.Write(id, 1, payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %v", err)
	}
	fs.Disarm()
	data, _, err := fs.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("abcd"), make([]byte, 4)...)
	if !bytes.Equal(data, want) {
		t.Fatalf("torn payload = %q, want prefix+zeros %q", data, want)
	}
}

func TestFaultStoreShortRead(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128))
	id, err := fs.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(id, 1, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	fs.Arm(ShortRead, 0)
	data, _, err := fs.Read(id)
	if err != nil {
		t.Fatalf("short read should not error: %v", err)
	}
	if !bytes.Equal(data, []byte("abcd")) {
		t.Fatalf("short read = %q, want %q", data, "abcd")
	}
}

func TestFaultStoreCrashPointHook(t *testing.T) {
	fs := NewFaultStore(NewMemStore(128))
	var seen []string
	fs.SetCrashPoint(func(op string, remaining int64) { seen = append(seen, op) })
	id, _ := fs.Alloc(1)
	fs.Write(id, 1, []byte("x"))
	fs.Sync()
	want := []string{"alloc", "write", "sync"}
	if len(seen) != len(want) {
		t.Fatalf("crash points %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("crash points %v, want %v", seen, want)
		}
	}
	if fs.Ops() != 3 {
		t.Fatalf("Ops() = %d", fs.Ops())
	}
}
