package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WAL is a segmented, append-only write-ahead log. The DC-tree appends one
// logical record per acknowledged mutation before it is reflected in any
// durable tree state; replaying the log past the last checkpoint therefore
// reconstructs every acknowledged update after a crash.
//
// On-disk layout: a log is a set of segment files named
//
//	<prefix>.<index>.wal
//
// where <index> is a monotonically increasing 8-digit decimal. Each segment
// starts with a fixed header — 32 bytes in the current v2 format (magic,
// segment index, LSN of its first record, fencing epoch); 24 bytes in the
// epoch-less v1 format, which remains readable — followed by framed
// records:
//
//	uint32  payload length
//	uint32  CRC32 (IEEE) of the payload
//	bytes   payload
//
// Records carry log sequence numbers (LSNs), assigned 1,2,3,… and monotone
// across segment rotation AND across Truncate, so a checkpoint can durably
// record "everything ≤ L is superseded" and recovery can skip exactly those
// records even if the truncation itself was lost to a crash.
//
// Crash behavior: a torn append leaves an invalid frame at the tail of the
// last segment; OpenWAL truncates the file back to the last valid frame, so
// the log always reopens to a clean prefix of the append order. An invalid
// frame in any non-final position is corruption and fails Replay.
//
// Concurrency: Append serializes on an internal mutex; Sync snapshots the
// active file and runs the fsync outside the mutex, so appenders are never
// blocked behind a disk flush — the property group commit relies on.
//
// Appends are buffered in memory: Append performs no syscall, and Sync
// writes the accumulated frames with a single write before the fsync. A
// buffered record is exactly as volatile as an unsynced page-cache write,
// so the durability contract is unchanged — nothing is acknowledged until
// Sync covers it — while the per-append cost drops to a memcpy, which is
// what lets the group committer drain many appenders per disk flush.
type WAL struct {
	mu       sync.Mutex
	prefix   string
	opts     WALOptions
	f        *os.File // active segment
	active   walSegment
	size     int64  // logical bytes in the active segment (flushed + buffered)
	flushed  int64  // bytes actually written to the active file
	buf      []byte // frames appended but not yet written to the file
	nextLSN  uint64
	records  int64 // records currently stored across all segments
	sealed   []walSegment
	closed   bool
	appends  atomic.Int64
	syncs    atomic.Int64
	appended atomic.Int64 // logical payload bytes appended
	stored   atomic.Int64 // frame bytes written (overhead + stored payload)
	recycled atomic.Int64 // segments reused from the recycle pool
	// syncedLSN tracks the LSN half of the durable frontier (updated by
	// Sync and by rotation, whose fsync seals a whole segment); the byte
	// half lives per segment in walSegment.synced — Sync snapshots the
	// active segment's INDEX and only advances the frontier of that same
	// segment, so a rotation or truncation racing the fsync can never leave
	// the frontier describing bytes of a segment that is no longer active.
	syncedLSN uint64

	// retainLSN is the replication retention floor (SetRetainLSN):
	// TruncateBefore never discards records with LSN above it, so a
	// follower that acknowledged shipping up to the floor can always
	// resume. MaxUint64 (the initial value) disables the floor.
	retainLSN uint64

	// epoch is the fencing epoch stamped into the header of every segment
	// this log creates. It only ever rises (SetEpoch/BumpEpoch); on open it
	// is recovered as the maximum epoch across the surviving segment
	// headers, so a promotion's bump survives any crash once the first
	// post-bump segment header is durable.
	epoch uint64

	// recycle is the pool of retired segment files awaiting reuse
	// (non-numeric names, invisible to findSegments); recycleSeq names them
	// uniquely across the log's lifetime.
	recycle    []string
	recycleSeq uint64
	poolCap    int
}

// walSegment identifies one segment file.
type walSegment struct {
	index    uint64
	path     string
	firstLSN uint64
	f        *os.File // sealed segments keep their handle until Truncate/Close
	// synced is the segment's durable byte frontier: everything below it
	// survived an fsync. Sealed segments are durable in full (rotation
	// fsyncs before sealing), so theirs equals the file size; the active
	// segment's advances with each completed Sync that it was the active
	// segment of — tracked per segment precisely so a rotation racing a
	// Sync cannot misattribute one segment's frontier to another.
	synced int64
	// epoch and hdrSize mirror the segment's on-disk header: the fencing
	// epoch it was created under and the header length (v1 segments carry
	// no epoch and a 24-byte header; both are preserved verbatim so mixed
	// logs stay byte-stable across reopen).
	epoch   uint64
	hdrSize int64
}

// WALOptions tunes a write-ahead log.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// ≤ 0 selects the 4 MiB default.
	SegmentBytes int64
	// SyncDelay models a slower log device by sleeping this long inside
	// every Sync, on top of the real fsync. Benchmarks use it to study the
	// disk-bound regime (commit latencies in the milliseconds) that fast
	// container filesystems hide. 0 in production.
	SyncDelay time.Duration
	// Compress LZ-compresses record payloads on append (per frame, flagged
	// in the frame's length word; frames that do not shrink stay raw).
	// Replay is format-agnostic, so logs mix compressed and raw frames
	// freely and the knob can change between opens.
	Compress bool
	// RecyclePool caps how many truncated/rotated-out segment files are
	// kept (renamed, not removed) for reuse by the next segment creation,
	// avoiding the create/remove metadata churn of every checkpoint.
	// 0 selects the default of 4; negative disables recycling.
	RecyclePool int
	// RetainSegments keeps at least this many of the newest sealed
	// segments through TruncateBefore even when a checkpoint supersedes
	// them — a static retention cushion for log-shipping followers that
	// tail the segment directory without an acknowledgment channel (the
	// dynamic floor is SetRetainLSN). 0 retains nothing extra.
	RetainSegments int
}

// WALStats is a snapshot of the log's activity counters.
type WALStats struct {
	Appends       int64 // records appended
	Syncs         int64 // fsync calls issued
	BytesAppended int64 // logical payload bytes appended (pre-compression)
	BytesStored   int64 // frame bytes written: overhead + (compressed) payload
	Records       int64 // records currently stored (since last truncate)
	Segments      int   // segment files currently on disk (excluding the pool)
	Recycled      int64 // segment creations served from the recycle pool
}

// Errors returned by the WAL.
var (
	ErrWALClosed  = errors.New("storage: wal is closed")
	ErrWALCorrupt = errors.New("storage: wal corrupt")
	ErrWALRecord  = errors.New("storage: wal record too large")
)

// errWALNoHeader marks a segment file with no valid header. For the final
// segment this means a crash during segment creation (the file holds no
// records and is safely discarded); anywhere else it is corruption.
var errWALNoHeader = fmt.Errorf("%w: no valid segment header", ErrWALCorrupt)

const (
	walMagic           = "DCWAL001"
	walMagicV2         = "DCWAL002"
	walSegHeaderSize   = 8 + 8 + 8     // v1: magic, segment index, first LSN
	walSegHeaderV2Size = 8 + 8 + 8 + 8 // v2: v1 fields + fencing epoch
	walFrameOverhead   = 8             // uint32 length + uint32 crc
	walMaxRecord       = 64 << 20
	walDefaultSeg      = 4 << 20
	walDefaultPool     = 4
	// walFrameCompressed flags a frame whose payload is walCompress output
	// in the top bit of the frame's length word (lengths are ≤ 64 MiB, so
	// the bit is otherwise always clear — including in every v1 log, which
	// therefore stays readable unchanged).
	walFrameCompressed = uint32(1) << 31
)

// walSegmentPath names segment files: <prefix>.<index 8-digit>.wal.
func walSegmentPath(prefix string, index uint64) string {
	return fmt.Sprintf("%s.%08d.wal", prefix, index)
}

// walRecyclePath names recycle-pool files. The middle token is not a
// decimal segment index, so findSegments (and therefore open, replay and
// crash images) never mistake a pooled file for part of the log.
func walRecyclePath(prefix string, seq uint64) string {
	return fmt.Sprintf("%s.recycle%06d.wal", prefix, seq)
}

// OpenWAL opens (or creates) the write-ahead log with the given file
// prefix. Existing segments are scanned front to back: every frame is
// CRC-checked, LSN continuity across segments is verified, and a torn tail
// in the final segment is truncated away, so the reopened log is exactly
// the valid prefix of what was appended before the crash.
func OpenWAL(prefix string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = walDefaultSeg
	}
	if opts.SegmentBytes < walSegHeaderV2Size+walFrameOverhead {
		return nil, fmt.Errorf("%w: segment size %d too small", ErrBadExtent, opts.SegmentBytes)
	}
	w := &WAL{prefix: prefix, opts: opts, nextLSN: 1, poolCap: opts.RecyclePool, retainLSN: ^uint64(0)}
	if w.poolCap == 0 {
		w.poolCap = walDefaultPool
	} else if w.poolCap < 0 {
		w.poolCap = 0
	}
	if err := w.adoptRecyclePool(); err != nil {
		return nil, err
	}

	segs, err := findSegments(prefix)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.createSegment(1, 1); err != nil {
			return nil, err
		}
		return w, nil
	}

	// Scan every segment in order. All but the last must be fully valid;
	// the last may have a torn tail, which is truncated, or — after a crash
	// during segment creation — no valid header at all, in which case it
	// holds no records and is replaced.
	for i := range segs {
		last := i == len(segs)-1
		info, err := scanSegment(segs[i].path, last)
		if err != nil {
			if last && errors.Is(err, errWALNoHeader) {
				if err := os.Remove(segs[i].path); err != nil {
					return nil, err
				}
				break
			}
			return nil, err
		}
		if info.index != segs[i].index {
			return nil, fmt.Errorf("%w: segment %s header index %d", ErrWALCorrupt, segs[i].path, info.index)
		}
		if i > 0 && info.firstLSN != w.nextLSN {
			return nil, fmt.Errorf("%w: segment %s starts at lsn %d, want %d",
				ErrWALCorrupt, segs[i].path, info.firstLSN, w.nextLSN)
		}
		if info.epoch < w.epoch {
			// Epochs only ever rise; a later segment from an earlier epoch
			// means two logs were interleaved into one directory.
			return nil, fmt.Errorf("%w: segment %s epoch %d below predecessor epoch %d",
				ErrWALCorrupt, segs[i].path, info.epoch, w.epoch)
		}
		w.epoch = info.epoch
		if i == 0 {
			w.nextLSN = info.firstLSN
		}
		w.nextLSN += uint64(info.records)
		w.records += info.records
		seg := walSegment{index: info.index, path: segs[i].path, firstLSN: info.firstLSN,
			epoch: info.epoch, hdrSize: info.hdrSize}
		if last {
			f, err := os.OpenFile(segs[i].path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			if info.validSize < info.fileSize {
				// Torn tail: cut back to the last valid frame and make the
				// truncation durable before accepting new appends.
				if err := f.Truncate(info.validSize); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, err
				}
			}
			w.f = f
			seg.synced = info.validSize
			w.active = seg
			w.size = info.validSize
			w.flushed = info.validSize
		} else {
			seg.synced = info.fileSize
			w.sealed = append(w.sealed, seg)
		}
	}
	if w.f == nil {
		// The final segment was discarded (torn creation): continue in a
		// fresh one right after it.
		if err := w.createSegment(segs[len(segs)-1].index+1, w.nextLSN); err != nil {
			return nil, err
		}
	}
	w.syncedLSN = w.nextLSN - 1
	return w, nil
}

// walSegFile is one discovered segment file.
type walSegFile struct {
	index uint64
	path  string
}

// findSegments lists the segment files of a prefix in index order.
func findSegments(prefix string) ([]walSegFile, error) {
	matches, err := filepath.Glob(prefix + ".*.wal")
	if err != nil {
		return nil, err
	}
	var cands []walSegFile
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(m, prefix+"."), ".wal")
		idx, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			continue // unrelated file
		}
		cands = append(cands, walSegFile{index: idx, path: m})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].index < cands[j].index })
	return cands, nil
}

// adoptRecyclePool rediscovers recycle-pool files left by a previous
// process (including one that crashed between reusing a pooled file and
// renaming it into the log — the half-rewritten file simply stays pooled).
// Files beyond the pool cap are removed.
func (w *WAL) adoptRecyclePool() error {
	matches, err := filepath.Glob(w.prefix + ".recycle*.wal")
	if err != nil {
		return err
	}
	type pooled struct {
		seq  uint64
		path string
	}
	var found []pooled
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(m, w.prefix+".recycle"), ".wal")
		seq, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			continue // unrelated file
		}
		found = append(found, pooled{seq: seq, path: m})
		if seq >= w.recycleSeq {
			w.recycleSeq = seq + 1
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	for i, p := range found {
		if i < w.poolCap {
			w.recycle = append(w.recycle, p.path)
			continue
		}
		if err := os.Remove(p.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// retireLocked disposes of a superseded segment file: renamed into the
// recycle pool when there is room, removed otherwise. A missing file
// counts as success, so a truncation retried after a partial failure is
// idempotent. Caller holds w.mu.
func (w *WAL) retireLocked(path string) error {
	if len(w.recycle) < w.poolCap {
		rp := walRecyclePath(w.prefix, w.recycleSeq)
		switch err := os.Rename(path, rp); {
		case err == nil:
			w.recycleSeq++
			w.recycle = append(w.recycle, rp)
			return nil
		case os.IsNotExist(err):
			return nil
		}
		// Rename refused (e.g. cross-device prefix tricks): fall through to
		// plain removal rather than failing the truncation.
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// segmentInfo is the result of validating one segment file.
type segmentInfo struct {
	index     uint64
	firstLSN  uint64
	epoch     uint64 // fencing epoch (0 for v1 headers)
	hdrSize   int64  // on-disk header length (v1 or v2)
	records   int64
	validSize int64 // offset just past the last valid frame
	fileSize  int64
}

// parseSegHeader dispatches on the header magic and fills the header
// fields of info. v1 (24-byte, epoch-less) and v2 (32-byte, carrying the
// fencing epoch) headers are both accepted; a v1 segment reads as epoch 0.
func parseSegHeader(data []byte, info *segmentInfo) bool {
	switch {
	case len(data) >= walSegHeaderSize && string(data[:8]) == walMagic:
		info.hdrSize = walSegHeaderSize
	case len(data) >= walSegHeaderV2Size && string(data[:8]) == walMagicV2:
		info.hdrSize = walSegHeaderV2Size
		info.epoch = binary.LittleEndian.Uint64(data[24:])
	default:
		return false
	}
	info.index = binary.LittleEndian.Uint64(data[8:])
	info.firstLSN = binary.LittleEndian.Uint64(data[16:])
	return true
}

// scanSegment validates a segment's header and frames. When tolerateTail
// is true an invalid frame ends the scan cleanly (torn tail of the final
// segment); otherwise it is corruption.
func scanSegment(path string, tolerateTail bool) (segmentInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segmentInfo{}, err
	}
	info := segmentInfo{fileSize: int64(len(data))}
	if !parseSegHeader(data, &info) {
		return segmentInfo{}, fmt.Errorf("%w: segment %s header", errWALNoHeader, path)
	}
	off := info.hdrSize
	for {
		n, ok := frameAt(data, off)
		if !ok {
			if off < int64(len(data)) && !tolerateTail {
				return segmentInfo{}, fmt.Errorf("%w: segment %s bad frame at %d", ErrWALCorrupt, path, off)
			}
			break
		}
		off += n
		info.records++
	}
	info.validSize = off
	return info, nil
}

// frameAt validates the frame starting at off and returns its total size.
// The CRC covers the stored bytes, so validation needs no decompression.
func frameAt(data []byte, off int64) (int64, bool) {
	if int64(len(data))-off < walFrameOverhead {
		return 0, false
	}
	word := binary.LittleEndian.Uint32(data[off:])
	length := int64(word &^ walFrameCompressed)
	if length == 0 || length > walMaxRecord {
		return 0, false
	}
	if int64(len(data))-off < walFrameOverhead+length {
		return 0, false
	}
	sum := binary.LittleEndian.Uint32(data[off+4:])
	payload := data[off+walFrameOverhead : off+walFrameOverhead+length]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, false
	}
	return walFrameOverhead + length, true
}

// framePayload extracts (decompressing if flagged) the logical payload of
// a frame frameAt already validated. A CRC-valid frame that fails to
// decompress cannot be a torn write — the CRC covers every stored byte —
// so it is reported as corruption.
func framePayload(data []byte, off, frameSize int64) ([]byte, error) {
	word := binary.LittleEndian.Uint32(data[off:])
	stored := data[off+walFrameOverhead : off+frameSize]
	if word&walFrameCompressed == 0 {
		return stored, nil
	}
	return walDecompress(stored)
}

// createSegment installs a fresh active segment (called with the caller
// holding w.mu or during construction): a file from the recycle pool when
// one is available, a newly created one otherwise.
func (w *WAL) createSegment(index, firstLSN uint64) error {
	path := walSegmentPath(w.prefix, index)
	f := w.reuseRecycledLocked(index, firstLSN, path)
	if f == nil {
		var err error
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if err := writeSegHeader(f, index, firstLSN, w.epoch); err != nil {
			f.Close()
			return err
		}
		// The header (and the file's existence) must survive a crash before
		// the first Sync, or recovery would see a headerless tail segment.
		// This fsync is also what makes an epoch bump durable: BumpEpoch
		// returns only after the first new-epoch segment header is on disk.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	syncDir(filepath.Dir(path))
	w.f = f
	w.active = walSegment{index: index, path: path, firstLSN: firstLSN,
		epoch: w.epoch, hdrSize: walSegHeaderV2Size, synced: walSegHeaderV2Size}
	w.size = walSegHeaderV2Size
	w.flushed = walSegHeaderV2Size
	w.buf = w.buf[:0]
	return nil
}

// writeSegHeader writes and leaves durable-pending a segment header (always
// the current v2 format — v1 headers are only ever read, never written).
func writeSegHeader(f *os.File, index, firstLSN, epoch uint64) error {
	hdr := make([]byte, walSegHeaderV2Size)
	copy(hdr, walMagicV2)
	binary.LittleEndian.PutUint64(hdr[8:], index)
	binary.LittleEndian.PutUint64(hdr[16:], firstLSN)
	binary.LittleEndian.PutUint64(hdr[24:], epoch)
	_, err := f.WriteAt(hdr, 0)
	return err
}

// reuseRecycledLocked pops a pooled segment file and rewrites it into the
// segment at (index, firstLSN): new header, stale frames cut off, both
// fsynced BEFORE the rename claims the numeric name — so a crash at any
// point either leaves the file in the pool (ignored by open) or installs a
// fully valid empty segment. Returns nil (falling back to a fresh create)
// on any error; the pool is an optimization, never a correctness
// dependency. Caller holds w.mu.
func (w *WAL) reuseRecycledLocked(index, firstLSN uint64, path string) *os.File {
	for len(w.recycle) > 0 {
		rp := w.recycle[len(w.recycle)-1]
		w.recycle = w.recycle[:len(w.recycle)-1]
		f, err := os.OpenFile(rp, os.O_RDWR, 0o644)
		if err != nil {
			continue // pool entry vanished or unreadable; try the next
		}
		if err := writeSegHeader(f, index, firstLSN, w.epoch); err == nil {
			if err = f.Truncate(walSegHeaderV2Size); err == nil {
				if err = f.Sync(); err == nil {
					if err = os.Rename(rp, path); err == nil {
						w.recycled.Add(1)
						return f
					}
				}
			}
		}
		f.Close()
		os.Remove(rp) // best effort: a half-rewritten pool file is useless
	}
	return nil
}

// syncDir best-effort fsyncs a directory so file creation/removal is
// durable (not all filesystems support it; errors are ignored).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Append frames one record into the log's buffer and returns its LSN. No
// syscall is made; the record reaches the file (in one batched write) and
// the disk only when a subsequent Sync returns (group commit batches many
// appends into one Sync).
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > walMaxRecord {
		return 0, fmt.Errorf("%w: %d bytes", ErrWALRecord, len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	stored := payload
	lengthWord := uint32(len(payload))
	if w.opts.Compress {
		if c := walCompress(payload); c != nil {
			stored = c
			lengthWord = uint32(len(c)) | walFrameCompressed
		}
	}
	var hdr [walFrameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:], lengthWord)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(stored))
	w.buf = append(append(w.buf, hdr[:]...), stored...)
	w.size += walFrameOverhead + int64(len(stored))
	lsn := w.nextLSN
	w.nextLSN++
	w.records++
	w.appends.Add(1)
	w.appended.Add(int64(len(payload)))
	w.stored.Add(walFrameOverhead + int64(len(stored)))
	return lsn, nil
}

// flushLocked writes the buffered frames to the active file in one
// syscall. Caller holds w.mu.
func (w *WAL) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf, w.flushed); err != nil {
		return err
	}
	w.flushed += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// rotateLocked seals the active segment (fsyncing it, so everything in a
// sealed segment is durable) and opens the next one.
func (w *WAL) rotateLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	sealed := w.active
	sealed.f = w.f
	sealed.synced = w.flushed // the fsync above covered the whole file
	if w.nextLSN-1 > w.syncedLSN {
		w.syncedLSN = w.nextLSN - 1
	}
	if err := w.createSegment(w.active.index+1, w.nextLSN); err != nil {
		// Keep appending to the old segment; rotation retries next time.
		w.f = sealed.f
		return err
	}
	w.sealed = append(w.sealed, sealed)
	return nil
}

// Sync makes every record appended so far durable and returns the highest
// LSN covered: the buffered frames are written with a single syscall, then
// fsynced. The fsync runs outside the WAL mutex: concurrent Appends
// proceed (their records are simply not covered by this Sync).
func (w *WAL) Sync() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	// Snapshot the segment's INDEX alongside the handle: after the fsync,
	// the frontier update must be attributed to this same segment, never to
	// whatever is active by then. A rotation racing the fsync seals the
	// snapshot segment with its own full-size frontier; a truncation
	// supersedes it entirely — in both cases the post-fsync re-check below
	// sees the index mismatch and leaves the (already reset) frontier of
	// the new active segment alone instead of advancing it with stale
	// bytes, and the LSN frontier still advances to cover this Sync.
	f := w.f
	idx := w.active.index
	target := w.nextLSN - 1
	size := w.size
	w.mu.Unlock()

	if err := f.Sync(); err != nil {
		w.mu.Lock()
		stillActive := idx == w.active.index
		synced := w.syncedLSN
		w.mu.Unlock()
		if stillActive {
			return 0, err
		}
		// The segment was sealed or truncated away while the fsync was in
		// flight: rotation fsynced it whole, or a concurrent checkpoint
		// superseded its records — either way the durable frontier already
		// covers everything that matters.
		return synced, nil
	}
	w.syncs.Add(1)
	if w.opts.SyncDelay > 0 {
		time.Sleep(w.opts.SyncDelay)
	}

	w.mu.Lock()
	if target > w.syncedLSN {
		w.syncedLSN = target
	}
	if idx == w.active.index && size > w.active.synced {
		w.active.synced = size
	}
	w.mu.Unlock()
	return target, nil
}

// Replay calls fn for every record in the log in append order. It re-reads
// the segment files, so it reflects exactly what recovery after a crash
// would see. fn errors abort the replay.
func (w *WAL) Replay(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	// Replay reads the segment files, so buffered frames must reach them
	// first (they are part of the log's contents, just not yet durable).
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	segs := make([]walSegment, 0, len(w.sealed)+1)
	segs = append(segs, w.sealed...)
	segs = append(segs, w.active)
	activeSize := w.size
	w.mu.Unlock()

	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if i == len(segs)-1 && int64(len(data)) > activeSize {
			// Appends racing with the replay: ignore frames past the
			// snapshot taken above.
			data = data[:activeSize]
		}
		var hdr segmentInfo
		if !parseSegHeader(data, &hdr) {
			return fmt.Errorf("%w: segment %s header", ErrWALCorrupt, seg.path)
		}
		lsn := hdr.firstLSN
		off := hdr.hdrSize
		for {
			n, ok := frameAt(data, off)
			if !ok {
				if off < int64(len(data)) && i < len(segs)-1 {
					return fmt.Errorf("%w: segment %s bad frame at %d", ErrWALCorrupt, seg.path, off)
				}
				break
			}
			payload, err := framePayload(data, off, n)
			if err != nil {
				return fmt.Errorf("%w: segment %s frame at %d: %v", ErrWALCorrupt, seg.path, off, err)
			}
			if err := fn(lsn, payload); err != nil {
				return err
			}
			lsn++
			off += n
		}
	}
	return nil
}

// Truncate discards every record in the log — the checkpoint step after
// the tree has durably persisted a state that supersedes them. The LSN
// counter is preserved: a fresh segment whose header carries the next LSN
// is created and synced FIRST, then the old segments are removed, so a
// crash at any point leaves a log that replays to a suffix of the original
// (and the checkpoint LSN recorded by the tree filters that suffix).
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	return w.truncateAllLocked()
}

// TruncateBefore discards records with LSN ≤ lsn — the log-compaction step
// of a fuzzy checkpoint, whose durable metadata supersedes exactly the
// records up to its captured LSN while appends made during the background
// write phase must survive. When lsn covers the whole log this is a full
// Truncate; otherwise only sealed segments wholly at or below lsn are
// removed. Records ≤ lsn sharing a segment with later ones are left in
// place: recovery filters replay by the checkpoint LSN, so they are
// skipped, never re-applied — the same reason a crash before any part of
// the truncation is safe.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	// Replication retention: the dynamic floor (SetRetainLSN) caps how far
	// the truncation may reach, and RetainSegments keeps a static cushion
	// of the newest sealed segments. Both exist so that a follower tailing
	// the segment directory never finds the log truncated past the records
	// it has yet to ship.
	if lsn > w.retainLSN {
		lsn = w.retainLSN
	}
	if lsn >= w.nextLSN-1 && w.opts.RetainSegments <= 0 {
		if w.records == 0 && len(w.sealed) == 0 {
			return nil // nothing to discard; keep the active segment
		}
		return w.truncateAllLocked()
	}
	maxCut := len(w.sealed) - w.opts.RetainSegments
	if maxCut < 0 {
		maxCut = 0
	}
	cut := 0
	for cut < maxCut {
		// The last LSN of sealed[i] is the first LSN of the next segment
		// minus one.
		nextFirst := w.active.firstLSN
		if cut+1 < len(w.sealed) {
			nextFirst = w.sealed[cut+1].firstLSN
		}
		if nextFirst-1 > lsn {
			break
		}
		cut++
	}
	if cut == 0 {
		return nil
	}
	retired := 0
	var firstErr error
	for i := 0; i < cut; i++ {
		seg := w.sealed[i]
		nextFirst := w.active.firstLSN
		if i+1 < len(w.sealed) {
			nextFirst = w.sealed[i+1].firstLSN
		}
		if seg.f != nil {
			seg.f.Close()
			w.sealed[i].f = nil // never double-close on retry
		}
		// retireLocked treats an already-missing file as success, so a
		// retry after a partial failure re-walks the same prefix without
		// double-counting; the record count only moves with a successful
		// retirement, keeping it consistent with the files on disk.
		if err := w.retireLocked(seg.path); err != nil {
			// Keep the not-yet-retired suffix (including this segment)
			// tracked so a retry or Close still sees it.
			w.sealed = append([]walSegment(nil), w.sealed[i:]...)
			firstErr = err
			break
		}
		w.records -= int64(nextFirst - seg.firstLSN)
		retired++
	}
	if firstErr == nil {
		w.sealed = append([]walSegment(nil), w.sealed[cut:]...)
	}
	// One directory sync covers every retirement of this pass — including
	// the ones that preceded a mid-loop failure, whose removal must not
	// remain volatile just because a later one failed.
	if retired > 0 {
		syncDir(filepath.Dir(w.active.path))
	}
	return firstErr
}

// truncateAllLocked is the full truncation: a fresh segment carrying the
// next LSN is created and synced FIRST, then every old segment is removed.
func (w *WAL) truncateAllLocked() error {
	old := append(append([]walSegment(nil), w.sealed...), walSegment{
		index: w.active.index, path: w.active.path, f: w.f,
	})
	if err := w.createSegment(w.active.index+1, w.nextLSN); err != nil {
		return err
	}
	w.sealed = nil
	w.records = 0
	w.syncedLSN = w.nextLSN - 1
	var firstErr error
	for _, seg := range old {
		if seg.f != nil {
			seg.f.Close()
		}
		if err := w.retireLocked(seg.path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The new segment has already replaced the old ones in w's accounting;
	// sync the directory once regardless of individual retirement failures
	// so every completed rename/removal is durable.
	syncDir(filepath.Dir(w.active.path))
	return firstErr
}

// Close syncs and closes the log files.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	w.closed = true
	err := w.flushLocked()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	for _, seg := range w.sealed {
		if seg.f != nil {
			seg.f.Close()
		}
	}
	return err
}

// LastLSN returns the LSN of the most recently appended record (0 if none
// was ever appended).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// SyncedLSN returns the highest LSN known durable.
func (w *WAL) SyncedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncedLSN
}

// Epoch returns the log's current fencing epoch: the epoch stamped into
// segments created from now on, recovered on open as the maximum across the
// surviving segment headers (0 for a log of pure v1 segments).
func (w *WAL) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// SetEpoch raises the fencing epoch (lowering is a no-op: epochs are
// monotone). Future segments carry the new epoch; if the log is still
// completely empty — a fresh tree reconciling its initial epoch before the
// first append — the active segment's header is restamped in place so even
// the very first segment carries it.
func (w *WAL) SetEpoch(epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || epoch <= w.epoch {
		return
	}
	w.epoch = epoch
	if w.records == 0 && len(w.sealed) == 0 && len(w.buf) == 0 && w.flushed == w.active.hdrSize {
		if err := writeSegHeader(w.f, w.active.index, w.active.firstLSN, epoch); err == nil {
			// Best-effort durability: the epoch also lives in the tree meta,
			// which is what a crash before this fsync falls back to.
			_ = w.f.Sync()
			w.active.epoch = epoch
			if w.active.hdrSize != walSegHeaderV2Size {
				w.active.hdrSize = walSegHeaderV2Size
				w.active.synced = walSegHeaderV2Size
				w.size = walSegHeaderV2Size
				w.flushed = walSegHeaderV2Size
			}
		}
	}
}

// BumpEpoch increments the fencing epoch and forces a rotation, so every
// record appended after it returns lives in a segment stamped with the new
// epoch — and the bump itself is durable (createSegment fsyncs the new
// header) before any post-bump record can be acknowledged. Promotion calls
// this exactly once per takeover.
func (w *WAL) BumpEpoch() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	w.epoch++
	if err := w.rotateLocked(); err != nil {
		w.epoch--
		return 0, err
	}
	return w.epoch, nil
}

// Records returns the number of records currently stored in the log.
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// ActiveSegment reports the active segment's path and the byte offset of
// its durable frontier (everything below it survived the last Sync). Crash
// tests chop copies of the file strictly beyond this offset to model torn
// in-flight appends without losing acknowledged records.
func (w *WAL) ActiveSegment() (path string, syncedBytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active.path, w.active.synced
}

// Stats returns a snapshot of the log's activity counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	segments := len(w.sealed) + 1
	records := w.records
	w.mu.Unlock()
	return WALStats{
		Appends:       w.appends.Load(),
		Syncs:         w.syncs.Load(),
		BytesAppended: w.appended.Load(),
		BytesStored:   w.stored.Load(),
		Records:       records,
		Segments:      segments,
		Recycled:      w.recycled.Load(),
	}
}
