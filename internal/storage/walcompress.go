package storage

import (
	"encoding/binary"
	"fmt"
)

// Dependency-free LZ77-style compression for WAL record payloads.
//
// Warehouse insert streams repeat heavily — dimension path prefixes, value
// name stems, measure encodings — so even a small greedy matcher recovers
// most of the redundancy at memcpy-like speeds. The format is deliberately
// tiny and self-delimiting:
//
//	uvarint  decompressed length
//	tokens:
//	  0xxxxxxx                  literal run of (x+1) bytes, which follow
//	  1xxxxxxx uvarint-distance match of length (x+4) at the given
//	                            backwards distance (≥ 1)
//
// Compression is optional (WALOptions.Compress) and per-frame: a frame
// whose compressed form is not smaller is stored raw, flagged by the top
// bit of the frame's length word, so decompression cost is only ever paid
// where the bytes were actually saved.

const (
	walLitMax   = 128 // longest literal run one token can carry
	walMatchMin = 4   // shortest match worth a token
	walMatchMax = 127 + walMatchMin
	// walCompressMin skips frames too small to amortize the token overhead.
	walCompressMin = 32

	walHashBits = 13
	walHashLen  = 1 << walHashBits
)

// walHash4 hashes the 4 bytes at src[i:] into the match table.
func walHash4(src []byte, i int) uint32 {
	v := binary.LittleEndian.Uint32(src[i:])
	return (v * 2654435761) >> (32 - walHashBits)
}

// walCompress returns the compressed form of src, or nil when compression
// does not shrink it (the caller then stores the frame raw).
func walCompress(src []byte) []byte {
	if len(src) < walCompressMin {
		return nil
	}
	dst := make([]byte, 0, len(src))
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	var table [walHashLen]int32 // position+1 of the last occurrence per hash
	litStart := 0
	i := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > walLitMax {
				n = walLitMax
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i+walMatchMin <= len(src) {
		h := walHash4(src, i)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || src[cand] != src[i] ||
			binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		length := walMatchMin
		for i+length < len(src) && length < walMatchMax && src[cand+length] == src[i+length] {
			length++
		}
		flushLits(i)
		dst = append(dst, 0x80|byte(length-walMatchMin))
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		i += length
		litStart = i
		if len(dst) >= len(src) {
			return nil // already losing; store raw
		}
	}
	flushLits(len(src))
	if len(dst) >= len(src) {
		return nil
	}
	return dst
}

// walDecompress expands a frame compressed by walCompress. It is fully
// bounds-checked: arbitrary (corrupt) input yields an error, never a panic
// — decompression sits on the recovery path, where the input is whatever
// the crash left behind.
func walDecompress(src []byte) ([]byte, error) {
	size, n := binary.Uvarint(src)
	// A match token expands at most walMatchMax bytes from 2 input bytes, so
	// any honest frame satisfies size ≤ len(src)·walMatchMax; a larger claim
	// is corrupt and must not drive the allocation below.
	if n <= 0 || size > walMaxRecord || size > uint64(len(src))*walMatchMax {
		return nil, fmt.Errorf("%w: compressed frame size", ErrWALCorrupt)
	}
	dst := make([]byte, 0, size)
	off := n
	for off < len(src) {
		tok := src[off]
		off++
		if tok&0x80 == 0 { // literal run
			run := int(tok) + 1
			if off+run > len(src) {
				return nil, fmt.Errorf("%w: truncated literal run", ErrWALCorrupt)
			}
			dst = append(dst, src[off:off+run]...)
			off += run
			continue
		}
		length := int(tok&0x7f) + walMatchMin
		dist, n := binary.Uvarint(src[off:])
		if n <= 0 || dist == 0 || dist > uint64(len(dst)) {
			return nil, fmt.Errorf("%w: bad match distance", ErrWALCorrupt)
		}
		off += n
		pos := len(dst) - int(dist)
		for k := 0; k < length; k++ { // may self-overlap; copy byte-wise
			dst = append(dst, dst[pos+k])
		}
	}
	if uint64(len(dst)) != size {
		return nil, fmt.Errorf("%w: decompressed length %d, want %d", ErrWALCorrupt, len(dst), size)
	}
	return dst, nil
}
