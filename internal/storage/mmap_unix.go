//go:build linux || darwin

package storage

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can serve zero-copy extent views
// from a read-only memory mapping of the store file. On other platforms
// ViewExtent transparently degrades to a checked file read.
const mmapSupported = true

// mmapFile maps length bytes of f read-only and shared, so bytes written
// through the file descriptor (checkpoint extent writes) are visible in the
// mapping without any explicit invalidation.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
