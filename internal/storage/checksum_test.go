package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildChecksummedStore creates a closed v2 store file holding one known
// data extent and a metadata blob, and returns the path plus the extent's
// id and payload.
func buildChecksummedStore(t *testing.T) (path string, id PageID, payload []byte) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "store.dc")
	s, err := OpenPagedStore(path, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload = make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	id, err = s.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta([]byte("meta-blob-0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path, id, payload
}

// headerPointers reads the meta and freelist extent ids straight from a
// closed store file's header.
func headerPointers(t *testing.T, path string) (metaID, freeID PageID) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return PageID(binary.LittleEndian.Uint64(raw[20:])),
		PageID(binary.LittleEndian.Uint64(raw[32:]))
}

// flipByte flips one byte of the file at off.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestPagedStoreChecksumRoundtrip(t *testing.T) {
	path, id, payload := buildChecksummedStore(t)
	s, err := OpenPagedStore(path, 256, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	got, blocks, err := s.Read(id)
	if err != nil || blocks != 1 {
		t.Fatalf("Read = %d blocks, %v", blocks, err)
	}
	if string(got) != string(payload) {
		t.Fatal("payload mismatch after reopen")
	}
	if _, checksummed, err := s.VerifyExtent(id); err != nil || !checksummed {
		t.Fatalf("VerifyExtent = checksummed %v, %v", checksummed, err)
	}
	meta, err := s.GetMeta()
	if err != nil || string(meta) != "meta-blob-0123456789" {
		t.Fatalf("GetMeta = %q, %v", meta, err)
	}
}

// TestPagedStoreCorruptionMatrix flips a single byte in each distinct
// region of a closed store file — data extent payload, its stored CRC, the
// metadata extent, the freelist extent, and the header — and asserts the
// store fails closed with ErrChecksum instead of decoding garbage.
func TestPagedStoreCorruptionMatrix(t *testing.T) {
	const blockSize = 256
	pristine, id, _ := buildChecksummedStore(t)
	metaID, freeID := headerPointers(t, pristine)
	if metaID == NilPage || freeID == NilPage {
		t.Fatalf("header pointers meta=%d free=%d", metaID, freeID)
	}

	copyTo := func(dst string) {
		raw, err := os.ReadFile(pristine)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		off  int64 // byte to flip
		// check opens the damaged file and must observe ErrChecksum.
		check func(t *testing.T, path string)
	}{
		{
			name: "data-extent-payload",
			off:  int64(id)*blockSize + ExtentHeaderSize + 17,
			check: func(t *testing.T, path string) {
				s, err := OpenPagedStore(path, blockSize, 0)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer s.Close()
				if _, _, err := s.Read(id); !errors.Is(err, ErrChecksum) {
					t.Fatalf("Read = %v, want ErrChecksum", err)
				}
				if _, _, err := s.VerifyExtent(id); !errors.Is(err, ErrChecksum) {
					t.Fatalf("VerifyExtent = %v, want ErrChecksum", err)
				}
			},
		},
		{
			name: "data-extent-stored-crc",
			off:  int64(id)*blockSize + extentChecksumAt,
			check: func(t *testing.T, path string) {
				s, err := OpenPagedStore(path, blockSize, 0)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer s.Close()
				if _, _, err := s.Read(id); !errors.Is(err, ErrChecksum) {
					t.Fatalf("Read = %v, want ErrChecksum", err)
				}
			},
		},
		{
			name: "meta-extent-payload",
			off:  int64(metaID)*blockSize + ExtentHeaderSize + 3,
			check: func(t *testing.T, path string) {
				s, err := OpenPagedStore(path, blockSize, 0)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer s.Close()
				if _, err := s.GetMeta(); !errors.Is(err, ErrChecksum) {
					t.Fatalf("GetMeta = %v, want ErrChecksum", err)
				}
			},
		},
		{
			name: "freelist-extent-payload",
			off:  int64(freeID)*blockSize + ExtentHeaderSize,
			check: func(t *testing.T, path string) {
				if _, err := OpenPagedStore(path, blockSize, 0); !errors.Is(err, ErrChecksum) {
					t.Fatalf("open = %v, want ErrChecksum", err)
				}
			},
		},
		{
			name: "store-header",
			off:  13, // inside the next-page field
			check: func(t *testing.T, path string) {
				if _, err := OpenPagedStore(path, blockSize, 0); !errors.Is(err, ErrChecksum) {
					t.Fatalf("open = %v, want ErrChecksum", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "damaged.dc")
			copyTo(path)
			flipByte(t, path, tc.off)
			tc.check(t, path)
		})
	}
}

// TestPagedStoreV1Compat hand-builds a pre-checksum (v1) store image and
// verifies it still opens and reads, that VerifyExtent reports its extents
// as unchecksummed, and that rewriting upgrades the image to v2 in place.
func TestPagedStoreV1Compat(t *testing.T) {
	const blockSize = 256
	path := filepath.Join(t.TempDir(), "legacy.dc")

	// v1 layout: 44-byte header (no CRC), extents with 8-byte headers
	// (block count without the checksum flag, payload length).
	payload := []byte("legacy v1 extent payload")
	file := make([]byte, 2*blockSize)
	copy(file, pagedMagicV1)
	binary.LittleEndian.PutUint32(file[8:], blockSize)
	binary.LittleEndian.PutUint64(file[12:], 2) // next page after the one extent
	// metaID/metaBlk and freeID/freeBlk stay zero: no metadata, no freelist.
	binary.LittleEndian.PutUint32(file[blockSize:], 1) // blocks, flag clear
	binary.LittleEndian.PutUint32(file[blockSize+4:], uint32(len(payload)))
	copy(file[blockSize+extentHeaderV1:], payload)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenPagedStore(path, blockSize, 0)
	if err != nil {
		t.Fatalf("open v1 image: %v", err)
	}
	got, blocks, err := s.Read(1)
	if err != nil || blocks != 1 || string(got) != string(payload) {
		t.Fatalf("Read v1 extent = %q (%d blocks), %v", got, blocks, err)
	}
	if _, checksummed, err := s.VerifyExtent(1); err != nil || checksummed {
		t.Fatalf("VerifyExtent v1 = checksummed %v, %v", checksummed, err)
	}

	// Rewrite the extent and sync: both it and the header upgrade to v2.
	fresh := []byte("rewritten under v2 rules")
	if err := s.Write(1, 1, fresh); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:8]) != pagedMagic {
		t.Fatalf("header magic after upgrade = %q", raw[:8])
	}
	want := binary.LittleEndian.Uint32(raw[headerSize:])
	if gotCRC := crc32.Checksum(raw[:headerSize], castagnoli); gotCRC != want {
		t.Fatalf("upgraded header crc 0x%08x, stored 0x%08x", gotCRC, want)
	}

	s, err = OpenPagedStore(path, blockSize, 0)
	if err != nil {
		t.Fatalf("reopen upgraded image: %v", err)
	}
	defer s.Close()
	if _, checksummed, err := s.VerifyExtent(1); err != nil || !checksummed {
		t.Fatalf("VerifyExtent after upgrade = checksummed %v, %v", checksummed, err)
	}
	got, _, err = s.Read(1)
	if err != nil || string(got) != string(fresh) {
		t.Fatalf("Read after upgrade = %q, %v", got, err)
	}
}

// TestWALTruncateBefore drives the segment-granular truncation: only sealed
// segments wholly at or below the cut LSN are removed, every record past
// the cut survives, and LSNs keep advancing afterwards.
func TestWALTruncateBefore(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 256})
	payload := make([]byte, 40)
	const n = 50
	for i := 1; i <= n; i++ {
		payload[0] = byte(i)
		if _, err := w.Append(payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Stats().Segments)
	}

	const cut = uint64(n / 2)
	if err := w.TruncateBefore(cut); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	_, order := collect(t, w)
	if len(order) == 0 || len(order) >= n {
		t.Fatalf("replay after truncate: %d records", len(order))
	}
	// Segment granularity may keep records ≤ cut, but must keep EVERY
	// record past the cut, contiguously through the last LSN.
	first := order[0]
	if first > cut+1 {
		t.Fatalf("first surviving lsn %d lost records ≤ %d past the cut", first, cut)
	}
	for i, lsn := range order {
		if lsn != first+uint64(i) {
			t.Fatalf("replay gap at %d: lsn %d", i, lsn)
		}
	}
	if last := order[len(order)-1]; last != n {
		t.Fatalf("last surviving lsn %d, want %d", last, n)
	}

	// Appends continue with the next LSN.
	if lsn, err := w.Append(payload); err != nil || lsn != n+1 {
		t.Fatalf("append after truncate: lsn %d, %v", lsn, err)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Reopen validates continuity of the surviving segments.
	w = openTestWAL(t, prefix, WALOptions{SegmentBytes: 256})
	defer w.Close()
	if got := w.LastLSN(); got != n+1 {
		t.Fatalf("LastLSN after reopen = %d", got)
	}
}

// TestWALTruncateBeforeFrontier covers the full-truncate fast path: a cut
// at the last LSN drops every segment, and an idle second call is a no-op.
func TestWALTruncateBeforeFrontier(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{SegmentBytes: 256})
	defer w.Close()
	for i := 1; i <= 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(w.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if recs, _ := collect(t, w); len(recs) != 0 {
		t.Fatalf("%d records survived a frontier truncate", len(recs))
	}
	if w.Records() != 0 {
		t.Fatalf("Records = %d after frontier truncate", w.Records())
	}
	// Idle log: a second frontier truncate must not churn segments.
	segs := w.Stats().Segments
	if err := w.TruncateBefore(w.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Segments; got != segs {
		t.Fatalf("idle truncate churned segments: %d -> %d", segs, got)
	}
	if lsn, err := w.Append([]byte("next")); err != nil || lsn != 21 {
		t.Fatalf("append after frontier truncate: lsn %d, %v", lsn, err)
	}
}
