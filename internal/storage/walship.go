package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Log shipping support: the segmented WAL doubles as a replication stream.
// A follower process tails the primary's segment files — sealed segments in
// full, the active segment up to its durable frontier — and replays the
// records into its own replica of the store. This file holds the pieces of
// that protocol that belong to the storage layer: safe enumeration of the
// segment set, reading segment bytes without racing rotation and
// recycling, and the retention floor that keeps segments on disk until
// followers have shipped them.
//
// The one hazard specific to reading another process's live log is segment
// recycling: a sealed segment that a checkpoint retires is renamed into
// the recycle pool and may be REWRITTEN in place (new header, truncated,
// re-appended) before being renamed back into the log under a new index. A
// reader holding the file open across that rewrite could observe
// CRC-valid frames that belong to a different segment. The defense is the
// header double-check: every read validates the fixed header against the
// expected (index, firstLSN, epoch) BOTH before and after reading the byte
// range, and reuse rewrites the header first — so any read that overlapped
// a rewrite fails with ErrSegmentGone instead of returning stale frames.

// WALSegmentInfo describes one segment of a write-ahead log as visible to
// a log-shipping reader.
type WALSegmentInfo struct {
	// Index is the segment's position in the log (monotone, never reused).
	Index uint64
	// Path is the segment file's location.
	Path string
	// FirstLSN is the LSN of the segment's first record.
	FirstLSN uint64
	// Epoch is the fencing epoch the segment was created under (0 for
	// epoch-less v1 segments). A follower rejects segments that would
	// extend its mirror with frames from an epoch below its own.
	Epoch uint64
	// HeaderSize is the length of the segment's on-disk header (24 for v1,
	// 32 for v2) — the offset of its first frame, which mirrors must
	// preserve to stay byte-identical.
	HeaderSize int64
	// Size is the number of readable bytes, including the header.
	// For a live WAL (WAL.Segments) this is the durable frontier — sealed
	// segments are durable in full, the active one up to its last fsync.
	// For a directory scan (ListSegments) it is the file size, which may
	// end in a torn frame that readers must tolerate on the final segment.
	Size int64
	// Sealed reports whether the segment will never be appended to again.
	Sealed bool
}

// LastLSN returns the LSN of the segment's final record given the first
// LSN of its successor (segments store only their own first LSN).
func (s WALSegmentInfo) LastLSN(nextFirstLSN uint64) uint64 { return nextFirstLSN - 1 }

// ErrSegmentGone reports a segment file that no longer holds the expected
// segment: it was truncated away, or recycled into a new segment, between
// the reader learning about it and reading it. Followers resynchronize
// from a fresh Segments listing when they see it.
var ErrSegmentGone = errors.New("storage: wal segment gone or recycled")

// SegmentHeader is the parsed fixed header of a WAL segment file — v1
// (24 bytes, epoch-less) or v2 (32 bytes, carrying the fencing epoch).
type SegmentHeader struct {
	Index    uint64
	FirstLSN uint64
	// Epoch is the fencing epoch stamped into a v2 header; 0 for v1.
	Epoch uint64
	// HeaderSize is the on-disk header length (SegmentHeaderSize for v1,
	// SegmentHeaderV2Size for v2), which is also the offset of the
	// segment's first frame.
	HeaderSize int64
}

// HeaderFor returns the parsed-header view of a listed segment — the
// `want` a reader passes to ReadSegmentRange so the double-check pins the
// exact segment identity (index, firstLSN, epoch, header format) it read
// from the listing.
func (s WALSegmentInfo) HeaderFor() SegmentHeader {
	return SegmentHeader{Index: s.Index, FirstLSN: s.FirstLSN, Epoch: s.Epoch, HeaderSize: s.HeaderSize}
}

// Segments enumerates the log's current segments with their durable byte
// frontiers: every byte below a segment's Size survived an fsync, so a
// follower that ships only those bytes never replicates a record the
// primary could still lose. The listing is a consistent snapshot under the
// log's mutex; segments may be retired concurrently afterwards, which
// readers detect via ErrSegmentGone.
func (w *WAL) Segments() []WALSegmentInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs := make([]WALSegmentInfo, 0, len(w.sealed)+1)
	for _, s := range w.sealed {
		segs = append(segs, WALSegmentInfo{
			Index: s.index, Path: s.path, FirstLSN: s.firstLSN,
			Epoch: s.epoch, HeaderSize: s.hdrSize, Size: s.synced, Sealed: true,
		})
	}
	segs = append(segs, WALSegmentInfo{
		Index: w.active.index, Path: w.active.path, FirstLSN: w.active.firstLSN,
		Epoch: w.active.epoch, HeaderSize: w.active.hdrSize,
		Size: w.active.synced, Sealed: false,
	})
	return segs
}

// SetRetainLSN sets the log's replication retention floor: TruncateBefore
// keeps every record with LSN strictly greater than lsn on disk regardless
// of how far checkpoints have advanced, so a follower that has acknowledged
// shipping up to lsn can always resume. MaxUint64 (the initial value)
// disables the floor; 0 retains everything. Truncate (the full reset) is
// not affected.
func (w *WAL) SetRetainLSN(lsn uint64) {
	w.mu.Lock()
	w.retainLSN = lsn
	w.mu.Unlock()
}

// RetainLSN returns the current replication retention floor.
func (w *WAL) RetainLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.retainLSN
}

// ListSegments lists the numeric segment files of a WAL prefix in index
// order by scanning the directory — the cross-process view a follower has
// of a primary's log when no shipping server mediates. Sizes are file
// sizes: the final (active) segment may end in bytes not yet durable on
// the primary, or in a torn frame; followers validate frames as they ship.
// Segment files that vanish between listing and header read (a concurrent
// truncation) are skipped.
func ListSegments(prefix string) ([]WALSegmentInfo, error) {
	files, err := findSegments(prefix)
	if err != nil {
		return nil, err
	}
	segs := make([]WALSegmentInfo, 0, len(files))
	for _, f := range files {
		hdr, size, err := readHeaderAndSize(f.path)
		if err != nil {
			if errors.Is(err, ErrSegmentGone) {
				continue
			}
			return nil, err
		}
		if hdr.Index != f.index {
			// Mid-recycle rewrite caught between rename steps; not part of
			// the log right now.
			continue
		}
		segs = append(segs, WALSegmentInfo{
			Index: hdr.Index, Path: f.path, FirstLSN: hdr.FirstLSN,
			Epoch: hdr.Epoch, HeaderSize: hdr.HeaderSize, Size: size,
		})
	}
	for i := range segs {
		segs[i].Sealed = i < len(segs)-1
	}
	return segs, nil
}

// readHeaderAndSize reads and validates a segment file's header and
// returns it with the current file size. A missing file or invalid header
// is ErrSegmentGone.
func readHeaderAndSize(path string) (SegmentHeader, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return SegmentHeader{}, 0, ErrSegmentGone
		}
		return SegmentHeader{}, 0, err
	}
	defer f.Close()
	hdr, err := readHeader(f)
	if err != nil {
		return SegmentHeader{}, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return SegmentHeader{}, 0, err
	}
	return hdr, st.Size(), nil
}

// readHeader reads and validates the fixed segment header (either format)
// from an open file. An absent or foreign header is ErrSegmentGone (the
// file is being created or was recycled), not corruption.
func readHeader(f *os.File) (SegmentHeader, error) {
	var buf [walSegHeaderV2Size]byte
	n, err := f.ReadAt(buf[:], 0)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return SegmentHeader{}, err
	}
	var info segmentInfo
	if !parseSegHeader(buf[:n], &info) {
		return SegmentHeader{}, ErrSegmentGone
	}
	return SegmentHeader{
		Index:      info.index,
		FirstLSN:   info.firstLSN,
		Epoch:      info.epoch,
		HeaderSize: info.hdrSize,
	}, nil
}

// ReadSegmentHeader reads and validates the header of one segment file.
func ReadSegmentHeader(path string) (SegmentHeader, error) {
	hdr, _, err := readHeaderAndSize(path)
	return hdr, err
}

// ReadSegmentRange reads up to max raw bytes of the segment at path
// starting at byte offset off, on behalf of a log-shipping reader. The
// header is validated against want both BEFORE and AFTER the range read:
// segment reuse rewrites the header first, so a read that overlapped a
// recycle rewrite — the only way the file's bytes can change other than
// growing — fails with ErrSegmentGone rather than returning frames of a
// different segment. A short (or empty) result near the end of the file is
// normal for the active segment and not an error.
func ReadSegmentRange(path string, want SegmentHeader, off int64, max int) ([]byte, error) {
	if off < walSegHeaderSize || max <= 0 {
		return nil, fmt.Errorf("storage: bad segment range off=%d max=%d", off, max)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrSegmentGone
		}
		return nil, err
	}
	defer f.Close()
	check := func() error {
		hdr, err := readHeader(f)
		if err != nil {
			return err
		}
		if hdr != want {
			return ErrSegmentGone
		}
		return nil
	}
	if err := check(); err != nil {
		return nil, err
	}
	buf := make([]byte, max)
	n, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if err := check(); err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// EncodeSegmentHeader renders a segment header in the format hdr.HeaderSize
// selects (v2 when unset) — the bytes a follower writes at the start of a
// mirrored segment file so its mirror stays byte-identical to the source
// and reopens as a valid WAL.
func EncodeSegmentHeader(hdr SegmentHeader) []byte {
	if hdr.HeaderSize == walSegHeaderSize {
		buf := make([]byte, walSegHeaderSize)
		copy(buf, walMagic)
		binary.LittleEndian.PutUint64(buf[8:], hdr.Index)
		binary.LittleEndian.PutUint64(buf[16:], hdr.FirstLSN)
		return buf
	}
	buf := make([]byte, walSegHeaderV2Size)
	copy(buf, walMagicV2)
	binary.LittleEndian.PutUint64(buf[8:], hdr.Index)
	binary.LittleEndian.PutUint64(buf[16:], hdr.FirstLSN)
	binary.LittleEndian.PutUint64(buf[24:], hdr.Epoch)
	return buf
}

// SegmentHeaderSize is the length of the v1 segment file header — the
// minimum any segment carries. Readers must use a segment's own
// WALSegmentInfo.HeaderSize for frame offsets; this constant survives as
// the lower bound (and the header length of pre-epoch logs).
const SegmentHeaderSize = walSegHeaderSize

// SegmentHeaderV2Size is the length of the v2 (epoch-carrying) segment
// file header, the format every newly created segment uses.
const SegmentHeaderV2Size = walSegHeaderV2Size

// SegmentPath returns the file path of the segment with the given index
// under a WAL prefix — the naming a mirrored log must reproduce for
// OpenWAL to adopt it.
func SegmentPath(prefix string, index uint64) string { return walSegmentPath(prefix, index) }

// DecodeFrames parses the leading whole, CRC-valid frames of data (raw
// segment bytes with no header) and returns their logical payloads
// (decompressed when the frame is compressed) along with the byte length
// of the valid prefix. Bytes past validLen are an incomplete or torn
// frame: a follower keeps them pending until the rest arrives. A CRC-valid
// frame that fails to decompress is corruption, reported as ErrWALCorrupt.
func DecodeFrames(data []byte) (payloads [][]byte, validLen int64, err error) {
	var off int64
	for {
		n, ok := frameAt(data, off)
		if !ok {
			return payloads, off, nil
		}
		p, err := framePayload(data, off, n)
		if err != nil {
			return payloads, off, fmt.Errorf("%w: frame at %d: %v", ErrWALCorrupt, off, err)
		}
		payloads = append(payloads, p)
		off += n
	}
}

// ValidFramePrefix returns the byte length and frame count of the leading
// whole, CRC-valid frames of data (raw segment bytes with no header),
// without materializing payloads — the validation a follower runs before
// appending shipped bytes to its mirror.
func ValidFramePrefix(data []byte) (frames int, validLen int64) {
	var off int64
	for {
		n, ok := frameAt(data, off)
		if !ok {
			return frames, off
		}
		frames++
		off += n
	}
}
