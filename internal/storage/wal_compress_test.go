package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWALCompressRoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte(strings.Repeat("warehouse/region/emea/", 40)),
		[]byte(strings.Repeat("a", 500)),
		bytes.Repeat([]byte{0x00, 0x01, 0x02, 0x03}, 64),
		[]byte("short"), // below walCompressMin: must decline
	}
	for i, src := range cases {
		c := walCompress(src)
		if c == nil {
			if len(src) >= walCompressMin && bytes.Contains(src, src[:8]) && len(src) > 100 {
				t.Errorf("case %d: highly repetitive input not compressed", i)
			}
			continue
		}
		if len(c) >= len(src) {
			t.Fatalf("case %d: walCompress returned non-shrinking output", i)
		}
		got, err := walDecompress(c)
		if err != nil {
			t.Fatalf("case %d: walDecompress: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: roundtrip mismatch", i)
		}
	}
}

func TestWALCompressIncompressibleStoredRaw(t *testing.T) {
	// Pseudo-random bytes (xorshift, no repeated 4-grams to speak of) must
	// be declined so the frame is stored raw.
	src := make([]byte, 4096)
	x := uint32(0x9e3779b9)
	for i := range src {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		src[i] = byte(x)
	}
	if c := walCompress(src); c != nil {
		t.Fatalf("incompressible input compressed to %d bytes", len(c))
	}
}

func TestWALCompressedLogRoundTrip(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	opts := WALOptions{SegmentBytes: 4096, Compress: true}
	w := openTestWAL(t, prefix, opts)
	var want []string
	for i := 0; i < 200; i++ {
		// Compression is per frame, so the redundancy it can recover is the
		// redundancy WITHIN one record — which v1 mutation records have in
		// spades: every dimension re-spells shared path prefixes.
		p := strings.Repeat(fmt.Sprintf("region/emea/nation/germany/customer/cust-%06d|", i), 4)
		want = append(want, p)
		if _, err := w.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.BytesStored >= st.BytesAppended {
		t.Fatalf("compression saved nothing: stored %d ≥ appended %d", st.BytesStored, st.BytesAppended)
	}
	check := func(w *WAL) {
		t.Helper()
		recs, order := collect(t, w)
		if len(order) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(order), len(want))
		}
		for i, p := range want {
			if recs[uint64(i+1)] != p {
				t.Fatalf("lsn %d: %q, want %q", i+1, recs[uint64(i+1)], p)
			}
		}
	}
	check(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay is format-agnostic: reopening with compression off still
	// decompresses flagged frames (and vice versa — the knob can change
	// between opens).
	w = openTestWAL(t, prefix, WALOptions{SegmentBytes: 4096, Compress: false})
	check(w)
	if _, err := w.Append(bytes.Repeat([]byte("raw-after"), 20)); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	w.Close()
	w = openTestWAL(t, prefix, opts)
	defer w.Close()
	if _, order := collect(t, w); len(order) != len(want)+1 {
		t.Fatalf("mixed raw/compressed log replayed %d records", len(order))
	}
}

func TestWALCompressedTornTailTruncated(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "idx")
	opts := WALOptions{Compress: true}
	w := openTestWAL(t, prefix, opts)
	payload := []byte(strings.Repeat("dimension/path/", 30))
	for i := 0; i < 5; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	path, _ := w.ActiveSegment()
	w.Close()

	// Flip one byte inside the last frame's payload: the CRC mismatch makes
	// it a torn tail, truncated on reopen.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w = openTestWAL(t, prefix, opts)
	defer w.Close()
	if _, order := collect(t, w); len(order) != 4 {
		t.Fatalf("replayed %d records after torn compressed tail, want 4", len(order))
	}
}

func TestWALCRCValidButUndecompressableIsCorrupt(t *testing.T) {
	// A frame whose CRC verifies but whose compressed payload cannot be
	// expanded cannot be a torn write (the CRC covers every stored byte) —
	// it must surface as ErrWALCorrupt, never as a silent truncation or a
	// panic.
	prefix := filepath.Join(t.TempDir(), "idx")
	w := openTestWAL(t, prefix, WALOptions{})
	if _, err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	path, _ := w.ActiveSegment()
	w.Close()

	// Craft: size claims 5 bytes, then a match token with no distance.
	bad := []byte{0x05, 0xff}
	var frame [walFrameOverhead]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(bad))|walFrameCompressed)
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(bad))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame[:])
	f.Write(bad)
	f.Close()

	w = openTestWAL(t, prefix, WALOptions{})
	defer w.Close()
	err = w.Replay(func(lsn uint64, payload []byte) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Replay = %v, want ErrWALCorrupt", err)
	}
}

func TestWALDecompressCorruptInputs(t *testing.T) {
	// Arbitrary corrupt compressed frames must error, never panic or
	// over-allocate.
	cases := [][]byte{
		{},
		{0x80, 0x01},                   // size claim with no tokens → length mismatch
		{0xff, 0xff, 0xff, 0xff, 0x7f}, // huge size claim
		{0x05, 0x81, 0x00},             // match distance 0
		{0x05, 0x81, 0x7f},             // distance beyond output
		{0x0a, 0x7f, 0x41},             // literal run past input end
		append([]byte{0x40}, bytes.Repeat([]byte{0xff}, 10)...), // negative-uvarint style
	}
	for i, src := range cases {
		if out, err := walDecompress(src); err == nil {
			t.Fatalf("case %d: walDecompress accepted corrupt input (len %d)", i, len(out))
		}
	}
}
