// Package bench contains the experiment drivers that regenerate every
// figure of the DC-tree paper's evaluation (§5): insertion time (Fig. 11),
// query time per selectivity against the X-tree and the sequential search
// (Fig. 12), and node sizes per level (Fig. 13), plus the ablations called
// out in DESIGN.md.
//
// The drivers print the same series the paper plots. Absolute seconds
// differ from the 1999 HP C160 testbed; the comparisons of interest are
// the shapes: who wins, by what factor, and where the selectivity
// trade-off falls.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: one figure's series.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f3(x float64) string   { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string   { return fmt.Sprintf("%.1f", x) }
func d(x int) string        { return fmt.Sprintf("%d", x) }
func fx(x float64) string   { return fmt.Sprintf("%.2fx", x) }
func ms(sec float64) string { return fmt.Sprintf("%.3f", sec*1000) }

func d64(x int64) string { return fmt.Sprintf("%d", x) }
