package bench

import (
	"strings"
	"testing"

	"github.com/dcindex/dctree/internal/tpcd"
)

// tinyOptions keeps harness tests fast while exercising every driver with
// verification on.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.Sizes = []int{600, 1200}
	opt.QueriesPerPoint = 10
	opt.Verify = true
	opt.Scale = tpcd.Scale{
		Regions: 5, NationsPerRegion: 5, SegmentsPerNation: 5,
		Customers: 300, Suppliers: 50, Brands: 10, TypesPerBrand: 4,
		Parts: 400, Years: 3, DaysPerMonth: 10,
	}
	opt.DCConfig.BlockSize = 1024
	opt.DCConfig.DirCapacity = 8
	opt.DCConfig.LeafCapacity = 12
	opt.XConfig.DirCapacity = 8
	opt.XConfig.LeafCapacity = 12
	return opt
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Note:    "n",
		Columns: []string{"a", "bbbb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	for _, want := range []string{"== T ==", "a", "bbbb", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "a,bbbb\n1,2\n") {
		t.Errorf("CSV = %q", b.String())
	}
}

func TestAllDriversRunAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep is slow")
	}
	opt := tinyOptions()
	tables, err := All(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Fatalf("All returned %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q has no rows", tbl.Title)
		}
		if len(tbl.Columns) == 0 {
			t.Errorf("table %q has no columns", tbl.Title)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("table %q row arity %d != %d", tbl.Title, len(row), len(tbl.Columns))
			}
		}
	}
}

func TestBuildTimesInsertion(t *testing.T) {
	opt := tinyOptions()
	s, err := build(opt, 500, buildFlags{dc: true, x: true, scan: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.dc.Count() != 500 || s.xt.Count() != 500 || s.scan.Count() != 500 {
		t.Fatalf("counts: %d %d %d", s.dc.Count(), s.xt.Count(), s.scan.Count())
	}
	if s.dcInsert <= 0 || s.xInsert <= 0 {
		t.Fatalf("insert timers not recorded: %v %v", s.dcInsert, s.xInsert)
	}
	// The query timer runs and verification passes.
	dcSec, xSec, scanSec, err := s.queryTimes(opt, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if dcSec <= 0 || xSec <= 0 || scanSec <= 0 {
		t.Fatalf("query timers: %g %g %g", dcSec, xSec, scanSec)
	}
}

func TestFig13ReportsLevels(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig13NodeSizes(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(opt.Sizes) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestMetricsDump(t *testing.T) {
	opt := tinyOptions()
	opt.Verify = false
	var b strings.Builder
	if err := MetricsDump(opt, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dctree_inserts_total 600",
		"# TYPE dctree_query_duration_seconds histogram",
		`dctree_splits_total{kind="hierarchy"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("MetricsDump output missing %q", want)
		}
	}
	if err := MetricsDump(Options{}, &b); err == nil {
		t.Error("MetricsDump accepted empty Options")
	}
}
