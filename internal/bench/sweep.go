package bench

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
)

// latencyStore charges every extent read a fixed latency, modeling the
// paper's disk-resident setting (a node fault costs one block read) on top
// of the in-memory store. The latency is switchable at runtime so tree
// construction stays fast.
type latencyStore struct {
	storage.Store
	delay atomic.Int64 // nanoseconds added per Read
}

func (s *latencyStore) Read(id storage.PageID) ([]byte, int, error) {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Store.Read(id)
}

// SweepPoint is one (variant, worker count) cell of the workers sweep.
type SweepPoint struct {
	Variant       string  `json:"variant"` // "hot" or "cold"
	Workers       int     `json:"workers"`
	MsPerQuery    float64 `json:"ms_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Speedup is relative to workers=1 of the same variant.
	Speedup float64 `json:"speedup_vs_1_worker"`
	// TasksSpawned / TasksStolen are the work-stealing queue's counters for
	// this cell (delta of the tree metrics over the cell's queries).
	TasksSpawned int64 `json:"tasks_spawned"`
	TasksStolen  int64 `json:"tasks_stolen"`
}

// SweepResult is the JSON shape dcbench -workers-sweep emits.
type SweepResult struct {
	Records     int     `json:"records"`
	Queries     int     `json:"queries"`
	Selectivity float64 `json:"selectivity"`
	// ColdReadLatencyUS is the per-node-fault latency the cold variant
	// charges, in microseconds.
	ColdReadLatencyUS float64 `json:"cold_read_latency_us"`
	// GOMAXPROCS / NumCPU qualify the hot variant: on a single-core host a
	// CPU-bound descent cannot scale, only the fault-overlapping cold
	// variant can.
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []SweepPoint `json:"points"`
}

// WorkersSweep measures parallel range-query throughput across worker
// counts, in two variants: hot (warm node cache, CPU-bound) and cold (cache
// evicted per query, every node fault charged coldLatency — the paper's
// disk-bound cost model, where scaling comes from overlapping faults).
func WorkersSweep(opt Options, workerCounts []int, coldLatency time.Duration) (*SweepResult, error) {
	n := opt.Sizes[0]
	scale := opt.Scale
	if scale == (tpcd.Scale{}) {
		scale = tpcd.ScaleFor(n)
	}
	gen, err := tpcd.New(opt.Seed, scale)
	if err != nil {
		return nil, err
	}
	ls := &latencyStore{Store: storage.NewMemStore(opt.DCConfig.BlockSize)}
	tree, err := core.New(ls, gen.Schema(), opt.DCConfig)
	if err != nil {
		return nil, err
	}
	for _, r := range gen.Records(n) {
		if err := tree.Insert(r); err != nil {
			return nil, err
		}
	}
	if err := tree.Flush(); err != nil {
		return nil, err
	}

	const selectivity = 0.25
	qg := gen.Queries(opt.Seed + 77)
	queries := make([]tpcd.Query, opt.QueriesPerPoint)
	for i := range queries {
		if queries[i], err = qg.Query(selectivity); err != nil {
			return nil, err
		}
	}

	res := &SweepResult{
		Records:           n,
		Queries:           len(queries),
		Selectivity:       selectivity,
		ColdReadLatencyUS: float64(coldLatency) / float64(time.Microsecond),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
	}
	for _, variant := range []struct {
		name  string
		delay time.Duration
		cold  bool
	}{
		{"hot", 0, false},
		{"cold", coldLatency, true},
	} {
		base := 0.0
		for _, workers := range workerCounts {
			before := tree.Metrics()
			var elapsed time.Duration
			for _, q := range queries {
				if variant.cold {
					tree.EvictCache()
				}
				ls.delay.Store(int64(variant.delay))
				start := time.Now()
				_, err := tree.Execute(context.Background(),
					core.QueryRequest{Query: q.MDS, Parallel: workers})
				elapsed += time.Since(start)
				ls.delay.Store(0)
				if err != nil {
					return nil, err
				}
			}
			after := tree.Metrics()
			sec := elapsed.Seconds() / float64(len(queries))
			p := SweepPoint{
				Variant:       variant.name,
				Workers:       workers,
				MsPerQuery:    sec * 1000,
				QueriesPerSec: 1 / sec,
				TasksSpawned:  after.ParallelTasksSpawned - before.ParallelTasksSpawned,
				TasksStolen:   after.ParallelTasksStolen - before.ParallelTasksStolen,
			}
			if base == 0 {
				base = sec
			}
			p.Speedup = base / sec
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}
