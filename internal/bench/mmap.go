package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
)

// MmapVariant is one read-path mode of the zero-copy benchmark: the same
// cold query workload answered either by decoding every faulted extent
// into heap nodes (the legacy path) or by walking flat layout-v3 extents
// in place through the store's memory mapping.
type MmapVariant struct {
	Mode    string  `json:"mode"` // "decode" or "mmap"
	Queries int     `json:"queries"`
	Seconds float64 `json:"seconds"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per query (runtime mallocs delta /
	// queries) — the zero-copy path's headline: descents over mapped flat
	// nodes allocate nothing per node.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Read-path accounting from the tree's metrics over the measured run.
	FlatNodeReads   int64 `json:"flat_node_reads"`
	DecodeFallbacks int64 `json:"decode_fallbacks"`
	MmapViews       int64 `json:"mmap_views"`
	MmapRemaps      int64 `json:"mmap_remaps"`
	MmapFallbacks   int64 `json:"mmap_fallbacks"`
}

// MmapBenchResult is the JSON shape dcbench -mmap emits.
type MmapBenchResult struct {
	Records     int           `json:"records"`
	Queries     int           `json:"queries"`
	Selectivity float64       `json:"selectivity"`
	Variants    []MmapVariant `json:"variants"`
	// Speedup is decode ns/op over mmap ns/op; AllocReduction the fraction
	// of per-query allocations the flat path eliminates.
	Speedup        float64 `json:"speedup"`
	AllocReduction float64 `json:"alloc_reduction"`
	// Host metadata so recorded numbers carry their context.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// mmapBenchSelectivity keeps the workload descent-heavy: moderate ranges
// visit many directory and data nodes per query, which is exactly where
// the decode-vs-view difference lives.
const mmapBenchSelectivity = 0.05

// MmapBench measures the cold read path — every query starts with an empty
// node cache, so each node visit faults an extent — comparing the heap
// decode path against zero-copy flat views over the memory-mapped store
// file. Both variants run the identical query workload against the same
// on-disk layout-v3 image.
func MmapBench(opt Options, n, queries int) (*MmapBenchResult, error) {
	dir, err := os.MkdirTemp("", "dctree-mmap-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := opt.DCConfig
	st, err := storage.OpenPagedStore(filepath.Join(dir, "bench.dct"), cfg.BlockSize, 0)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	scale := opt.Scale
	if scale == (tpcd.Scale{}) {
		scale = tpcd.ScaleFor(n)
	}
	gen, err := tpcd.New(opt.Seed, scale)
	if err != nil {
		return nil, err
	}
	tree, err := core.New(st, gen.Schema(), cfg)
	if err != nil {
		return nil, err
	}
	defer tree.Close()
	for _, r := range gen.Records(n) {
		if err := tree.Insert(r); err != nil {
			return nil, err
		}
	}
	if err := tree.Flush(); err != nil {
		return nil, err
	}

	qg := gen.Queries(opt.Seed + 77)
	qs := make([]tpcd.Query, queries)
	for i := range qs {
		q, err := qg.Query(mmapBenchSelectivity)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}

	res := &MmapBenchResult{
		Records:     n,
		Queries:     queries,
		Selectivity: mmapBenchSelectivity,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	for _, mode := range []string{"decode", "mmap"} {
		v, err := runMmapVariant(tree, qs, mode)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	if m := res.Variants[1].NsPerOp; m > 0 {
		res.Speedup = res.Variants[0].NsPerOp / m
	}
	if d := res.Variants[0].AllocsPerOp; d > 0 {
		res.AllocReduction = 1 - res.Variants[1].AllocsPerOp/d
	}
	return res, nil
}

func runMmapVariant(tree *core.Tree, qs []tpcd.Query, mode string) (MmapVariant, error) {
	tree.SetZeroCopyReads(mode == "mmap")
	// Warm pass: fault every query's working set once so dictionary and
	// mapping setup costs are off the clock, then measure fully cold.
	for _, q := range qs[:minInt(3, len(qs))] {
		tree.EvictCache()
		if _, err := tree.Execute(context.Background(), core.QueryRequest{Query: q.MDS}); err != nil {
			return MmapVariant{}, err
		}
	}

	before := tree.Metrics()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for _, q := range qs {
		tree.EvictCache()
		if _, err := tree.Execute(context.Background(), core.QueryRequest{Query: q.MDS}); err != nil {
			return MmapVariant{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	after := tree.Metrics()

	nq := float64(len(qs))
	v := MmapVariant{
		Mode:            mode,
		Queries:         len(qs),
		Seconds:         elapsed.Seconds(),
		NsPerOp:         float64(elapsed.Nanoseconds()) / nq,
		AllocsPerOp:     float64(ms1.Mallocs-ms0.Mallocs) / nq,
		BytesPerOp:      float64(ms1.TotalAlloc-ms0.TotalAlloc) / nq,
		FlatNodeReads:   after.FlatNodeReads - before.FlatNodeReads,
		DecodeFallbacks: after.DecodeFallbacks - before.DecodeFallbacks,
		MmapViews:       after.MmapViews - before.MmapViews,
		MmapRemaps:      after.MmapRemaps - before.MmapRemaps,
		MmapFallbacks:   after.MmapFallbacks - before.MmapFallbacks,
	}
	if mode == "mmap" && v.FlatNodeReads == 0 {
		return v, fmt.Errorf("bench: mmap variant served no flat node reads (platform fallback?)")
	}
	return v, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
