package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
)

// delayStore injects a fixed latency into every extent read, modeling the
// paper's disk-resident setting (a node fault costs a block read) on top of
// the in-memory store. Latency is switchable at runtime so tree construction
// stays fast.
type delayStore struct {
	storage.Store
	delay atomic.Int64 // nanoseconds added per Read
}

func (s *delayStore) Read(id storage.PageID) ([]byte, int, error) {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Store.Read(id)
}

// readPathTreeSize is the data-set size the read-path benchmarks index.
const readPathTreeSize = 30000

// buildReadPathTree loads a TPC-D-style tree onto the given store.
func buildReadPathTree(tb testing.TB, st storage.Store) (*core.Tree, *tpcd.Gen) {
	tb.Helper()
	cfg := core.DefaultConfig()
	gen, err := tpcd.New(1, tpcd.ScaleFor(readPathTreeSize))
	if err != nil {
		tb.Fatal(err)
	}
	tree, err := core.New(st, gen.Schema(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range gen.Records(readPathTreeSize) {
		if err := tree.Insert(r); err != nil {
			tb.Fatal(err)
		}
	}
	return tree, gen
}

// benchQueries pre-generates a fixed query workload so every benchmark
// iteration (and every worker count) sees identical work.
func benchQueries(tb testing.TB, gen *tpcd.Gen, selectivity float64, n int) []tpcd.Query {
	tb.Helper()
	qg := gen.Queries(77)
	qs := make([]tpcd.Query, n)
	for i := range qs {
		var err error
		qs[i], err = qg.Query(selectivity)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return qs
}

// BenchmarkQueryMasks measures query-context construction plus descent for a
// mid-selectivity range query; allocs/op is dominated by the per-query
// membership masks, so it tracks the mask arena's effectiveness.
func BenchmarkQueryMasks(b *testing.B) {
	tree, gen := buildReadPathTree(b, storage.NewMemStore(core.DefaultConfig().BlockSize))
	qs := benchQueries(b, gen, 0.05, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := core.QueryRequest{Query: qs[i%len(qs)].MDS}
		if _, err := tree.Execute(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelScaling measures one range query fanned over a worker
// pool, sweeping the worker count.
//
// The hot variant runs over a warm in-memory cache and is CPU-bound: on a
// single-core host it cannot scale and measures pure pool overhead. The cold
// variant evicts the node cache before every query and charges each node
// fault a fixed latency — the paper's disk-bound cost model — so worker
// counts scale by overlapping faults even on one core.
func BenchmarkParallelScaling(b *testing.B) {
	ds := &delayStore{Store: storage.NewMemStore(core.DefaultConfig().BlockSize)}
	tree, gen := buildReadPathTree(b, ds)
	if err := tree.Flush(); err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(b, gen, 0.25, 32)
	for _, variant := range []struct {
		name  string
		delay time.Duration
		cold  bool
	}{
		{"hot", 0, false},
		{"cold-100us", 100 * time.Microsecond, true},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", variant.name, workers), func(b *testing.B) {
				ds.delay.Store(int64(variant.delay))
				defer ds.delay.Store(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if variant.cold {
						b.StopTimer()
						tree.EvictCache()
						b.StartTimer()
					}
					q := qs[i%len(qs)]
					if _, err := tree.RangeAggParallel(q.MDS, 0, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
