package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/hierarchy"
	"github.com/dcindex/dctree/internal/storage"
)

// WALVariant is one durable-insert configuration of the WAL benchmark.
type WALVariant struct {
	Mode string `json:"mode"` // "fsync_per_insert" or "group_commit"
	// Workers is the number of concurrent inserters (1 for the naive
	// mode: with an fsync inside every Insert there is nothing to
	// overlap).
	Workers          int     `json:"workers"`
	CommitIntervalUS float64 `json:"commit_interval_us,omitempty"`
	// SyncDelayUS is the modeled log-device latency added to every fsync
	// (0 = the raw filesystem), mirroring the workers sweep's cold
	// variant: fast container filesystems commit in ~100 µs where the
	// paper's warehouse disks take milliseconds.
	SyncDelayUS   float64 `json:"sync_delay_us,omitempty"`
	Records       int     `json:"records"`
	Seconds       float64 `json:"seconds"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	WALAppends    int64   `json:"wal_appends"`
	WALFsyncs     int64   `json:"wal_fsyncs"`
	// MeanBatch is appends per fsync — the group-commit amortization.
	MeanBatch float64 `json:"mean_batch"`
	// Format is the WAL record format of the format-comparison variants
	// (1 = full string paths, 2 = dictionary deltas + interned IDs).
	Format   int  `json:"format,omitempty"`
	Compress bool `json:"compress,omitempty"`
	// WALBytesStored is frame bytes written to the log; BytesPerInsert is
	// that divided by the acknowledged inserts — the footprint the format
	// comparison is about. DictDeltas counts dictionary registrations the
	// v2 variants logged as delta records (their bytes are included).
	WALBytesStored int64   `json:"wal_bytes_stored,omitempty"`
	BytesPerInsert float64 `json:"bytes_per_insert,omitempty"`
	DictDeltas     int64   `json:"dict_deltas,omitempty"`
}

// WALBenchResult is the JSON shape dcbench -wal emits.
type WALBenchResult struct {
	Records int `json:"records"`
	// FsyncProbeUS is the measured cost of one fsync on the benchmark
	// directory's filesystem — the floor the naive mode pays per insert.
	FsyncProbeUS float64      `json:"fsync_probe_us"`
	Variants     []WALVariant `json:"variants"`
	// Speedups of group commit over fsync-per-insert, at equal modeled
	// device latency: raw compares the best raw group-commit variant
	// against the raw naive baseline; modeled-disk compares the two
	// SyncDelay variants.
	SpeedupRaw         float64 `json:"speedup_raw"`
	SpeedupModeledDisk float64 `json:"speedup_modeled_disk"`
	// Bytes written to the log per acknowledged insert on the TPC-D-style
	// deep-hierarchy stream, by record format; the reduction is v1 over v2
	// (uncompressed) — the win of logging interned IDs plus one-time
	// dictionary deltas instead of re-spelling every hierarchy path.
	BytesPerInsertV1  float64 `json:"bytes_per_insert_v1"`
	BytesPerInsertV2  float64 `json:"bytes_per_insert_v2"`
	WALBytesReduction float64 `json:"wal_bytes_reduction"`
}

// walBenchSchema builds a deliberately small cube (one two-level
// dimension, one measure): the benchmark's subject is the commit path —
// WAL append, group commit, fsync — so the tree work per insert is kept
// light to not drown the signal in MDS arithmetic. Records get unique
// leaf values in blocks of 64 under one parent.
func walBenchSchema(n int) (*cube.Schema, []cube.Record, error) {
	h, err := hierarchy.New("K", "Leaf", "Top")
	if err != nil {
		return nil, nil, err
	}
	schema, err := cube.NewSchema([]*hierarchy.Hierarchy{h}, "V")
	if err != nil {
		return nil, nil, err
	}
	recs := make([]cube.Record, n)
	for i := range recs {
		recs[i], err = schema.InternRecord(
			[][]string{{fmt.Sprintf("T%d", i/64), fmt.Sprintf("L%d", i)}},
			[]float64{float64(i)},
		)
		if err != nil {
			return nil, nil, err
		}
	}
	return schema, recs, nil
}

// walFormatSchema builds the TPC-D-style deep cube for the record-format
// comparison: three dimensions of three levels each, with realistically
// long member names. The v1 format re-spells every level's name on every
// record; the v2 format logs interned IDs plus a one-time dictionary delta
// per new member.
func walFormatSchema() (*cube.Schema, error) {
	cust, err := hierarchy.New("Customer", "Customer", "Nation", "Region")
	if err != nil {
		return nil, err
	}
	part, err := hierarchy.New("Part", "Part", "Brand", "Manufacturer")
	if err != nil {
		return nil, err
	}
	tim, err := hierarchy.New("Time", "Day", "Month", "Year")
	if err != nil {
		return nil, err
	}
	return cube.NewSchema([]*hierarchy.Hierarchy{cust, part, tim}, "Revenue")
}

var walRegions = [5]string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// walFactPaths returns the i-th fact of the format-comparison stream.
// Dimension members are reused across facts (member cardinality well below
// the fact count — the data-warehouse pattern the paper targets), so the
// v2 format amortizes each member's delta across many facts.
func walFactPaths(i, n int) [][]string {
	cust := i % maxInt(n/8, 1)
	nation := cust % 25
	prt := (i * 7) % maxInt(n/16, 1)
	brand := prt % 25
	day := (i * 13) % 365
	month := day / 31
	return [][]string{
		{walRegions[nation%5], fmt.Sprintf("NATION-%02d", nation), fmt.Sprintf("Customer#%09d", cust)},
		{fmt.Sprintf("MFGR#%d", brand%5), fmt.Sprintf("Brand#%02d", brand), fmt.Sprintf("Part#%08d", prt)},
		{"1998", fmt.Sprintf("1998-%02d", month+1), fmt.Sprintf("1998-%02d-%02d", month+1, day%31+1)},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// walFormatRun streams n facts into a fresh durable tree configured with
// the given record format, interning each fact's paths just before its
// insert (dimension discovery during load, as a warehouse ETL would), and
// reports the log's byte footprint.
func walFormatRun(opt Options, n, format int, compress bool, dir string) (WALVariant, error) {
	schema, err := walFormatSchema()
	if err != nil {
		return WALVariant{}, err
	}
	cfg := opt.DCConfig
	cfg.CommitInterval = -1 // naive: every insert individually acknowledged
	cfg.WALRecordFormat = format
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return WALVariant{}, err
	}
	st, err := storage.OpenPagedStore(filepath.Join(dir, "store.dc"), cfg.BlockSize, 0)
	if err != nil {
		return WALVariant{}, err
	}
	tree, err := core.NewDurableOpts(st, schema, cfg, filepath.Join(dir, "idx"),
		storage.WALOptions{Compress: compress})
	if err != nil {
		st.Close()
		return WALVariant{}, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		rec, err := schema.InternRecord(walFactPaths(i, n), []float64{float64(i)})
		if err == nil {
			err = tree.Insert(rec)
		}
		if err != nil {
			tree.Close()
			st.Close()
			return WALVariant{}, err
		}
	}
	elapsed := time.Since(start)
	stats := tree.WALStats()
	deltas := tree.Metrics().WALDictDeltas
	if err := tree.Close(); err != nil {
		st.Close()
		return WALVariant{}, err
	}
	if err := st.Close(); err != nil {
		return WALVariant{}, err
	}
	return WALVariant{
		Mode:           "record_format",
		Workers:        1,
		Records:        n,
		Seconds:        elapsed.Seconds(),
		InsertsPerSec:  float64(n) / elapsed.Seconds(),
		WALAppends:     stats.Appends,
		WALFsyncs:      stats.Syncs,
		Format:         format,
		Compress:       compress,
		WALBytesStored: stats.BytesStored,
		BytesPerInsert: float64(stats.BytesStored) / float64(n),
		DictDeltas:     deltas,
	}, nil
}

// WALBench compares durable-insert throughput of the naive mode (an fsync
// inside every Insert, CommitInterval < 0) against group commit, on the
// raw filesystem and with a modeled disk-class commit latency
// (syncDelay), all on a file-backed store and log in dir (a temp
// directory when empty).
func WALBench(opt Options, n, workers int, interval, syncDelay time.Duration, dir string) (*WALBenchResult, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "dcwalbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	res := &WALBenchResult{Records: n, FsyncProbeUS: probeFsync(dir)}

	// The modeled-disk naive run pays the full device latency per record;
	// cap its record count so the benchmark finishes in seconds (the
	// throughput measurement does not need equal counts across variants).
	naiveModeledN := n / 5
	if naiveModeledN < 200 {
		naiveModeledN = 200
	}
	runs := []struct {
		mode     string
		workers  int
		interval time.Duration
		delay    time.Duration
		n        int
	}{
		{"fsync_per_insert", 1, -1, 0, n},
		{"group_commit", workers, core.DefaultConfig().CommitInterval, 0, n},
		{"group_commit", workers, interval, 0, n},
		{"fsync_per_insert", 1, -1, syncDelay, naiveModeledN},
		{"group_commit", workers, interval, syncDelay, n},
	}
	for i, r := range runs {
		schema, recs, err := walBenchSchema(r.n)
		if err != nil {
			return nil, err
		}
		cfg := opt.DCConfig
		cfg.CommitInterval = r.interval
		sub := filepath.Join(dir, fmt.Sprintf("run%d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		st, err := storage.OpenPagedStore(filepath.Join(sub, "store.dc"), cfg.BlockSize, 0)
		if err != nil {
			return nil, err
		}
		tree, err := core.NewDurableOpts(st, schema, cfg, filepath.Join(sub, "idx"),
			storage.WALOptions{SyncDelay: r.delay})
		if err != nil {
			st.Close()
			return nil, err
		}

		start := time.Now()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		per := (len(recs) + r.workers - 1) / r.workers
		for w := 0; w < r.workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > len(recs) {
				hi = len(recs)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []cube.Record) {
				defer wg.Done()
				for _, rec := range part {
					if err := tree.Insert(rec); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(recs[lo:hi])
		}
		wg.Wait()
		elapsed := time.Since(start)
		stats := tree.WALStats()
		if err := tree.Close(); err != nil {
			st.Close()
			return nil, err
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}

		v := WALVariant{
			Mode:          r.mode,
			Workers:       r.workers,
			SyncDelayUS:   float64(r.delay) / float64(time.Microsecond),
			Records:       len(recs),
			Seconds:       elapsed.Seconds(),
			InsertsPerSec: float64(len(recs)) / elapsed.Seconds(),
			WALAppends:    stats.Appends,
			WALFsyncs:     stats.Syncs,
		}
		if r.interval >= 0 {
			v.CommitIntervalUS = float64(cfg.CommitInterval) / float64(time.Microsecond)
		}
		if stats.Syncs > 0 {
			v.MeanBatch = float64(stats.Appends) / float64(stats.Syncs)
		}
		res.Variants = append(res.Variants, v)
	}

	for _, v := range res.Variants[1:3] {
		if s := v.InsertsPerSec / res.Variants[0].InsertsPerSec; s > res.SpeedupRaw {
			res.SpeedupRaw = s
		}
	}
	res.SpeedupModeledDisk = res.Variants[4].InsertsPerSec / res.Variants[3].InsertsPerSec

	// Record-format comparison on the deep-hierarchy stream: v1 string
	// paths, v2 interned IDs + dict deltas, and v2 with payload compression.
	formatRuns := []struct {
		format   int
		compress bool
	}{{1, false}, {2, false}, {2, true}}
	for i, fr := range formatRuns {
		v, err := walFormatRun(opt, n, fr.format, fr.compress,
			filepath.Join(dir, fmt.Sprintf("fmt%d", i)))
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
		switch {
		case fr.format == 1 && !fr.compress:
			res.BytesPerInsertV1 = v.BytesPerInsert
		case fr.format == 2 && !fr.compress:
			res.BytesPerInsertV2 = v.BytesPerInsert
		}
	}
	if res.BytesPerInsertV2 > 0 {
		res.WALBytesReduction = res.BytesPerInsertV1 / res.BytesPerInsertV2
	}
	return res, nil
}

// probeFsync measures one fsync on dir's filesystem (microseconds).
func probeFsync(dir string) float64 {
	f, err := os.CreateTemp(dir, "fsync-probe")
	if err != nil {
		return 0
	}
	defer os.Remove(f.Name())
	defer f.Close()
	buf := make([]byte, 64)
	const n = 50
	start := time.Now()
	for i := 0; i < n; i++ {
		f.Write(buf)
		f.Sync()
	}
	return float64(time.Since(start)) / n / float64(time.Microsecond)
}
