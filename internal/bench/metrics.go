package bench

import (
	"fmt"
	"io"
)

// MetricsDump exercises the DC-tree with the standard benchmark workload
// (build at the smallest configured size, then the random query mix at
// every selectivity) and writes the tree's observability snapshot in
// Prometheus text format. It backs `dcbench -metrics`, giving a quick
// end-to-end view of the instrumentation: insert/query latency histograms,
// per-kind split counters, materialized-hit and pruning ratios, and the
// store's I/O counters.
func MetricsDump(opt Options, w io.Writer) error {
	if len(opt.Sizes) == 0 {
		return fmt.Errorf("bench: no data-set size configured")
	}
	s, err := build(opt, opt.Sizes[0], buildFlags{dc: true})
	if err != nil {
		return err
	}
	for _, sel := range []float64{0.01, 0.05, 0.25} {
		if _, err := s.queryWork(opt, sel); err != nil {
			return err
		}
	}
	// The roll-up mix exercises the materialized-aggregate shortcut, so the
	// hit-ratio gauges have content.
	if _, err := s.rollupWork(opt); err != nil {
		return err
	}
	return s.dc.Metrics().WriteProm(w)
}
