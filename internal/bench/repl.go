package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/repl"
	"github.com/dcindex/dctree/internal/storage"
)

// ReplBenchResult is the JSON shape dcbench -replica emits: what log
// shipping costs the primary, how closely a filesystem-transport follower
// tracks it, and what a promotion pause looks like. Version 2 adds the
// synchronous-replication section (dcbench -replica -sync): the same
// storm with SyncReplication=1, every insert held until a follower
// acknowledged its LSN.
type ReplBenchResult struct {
	Version int `json:"version"`
	Records int `json:"records"`
	Workers int `json:"workers"`
	// BaselineInsertsPerSec is the primary's durable-insert throughput
	// with no follower attached.
	BaselineInsertsPerSec float64 `json:"baseline_inserts_per_sec"`
	// ReplicatedInsertsPerSec is the same workload while a follower tails
	// the WAL directory and the retention floor tracks its progress.
	ReplicatedInsertsPerSec float64 `json:"replicated_inserts_per_sec"`
	// PrimaryOverheadPct is the throughput cost of being shipped from
	// (positive = slower with the follower attached).
	PrimaryOverheadPct float64 `json:"primary_overhead_pct"`
	// MaxLagBytes is the largest source-bytes-behind the follower showed
	// while the insert storm ran (sampled every 10 ms).
	MaxLagBytes int64 `json:"max_lag_bytes"`
	// DrainMS is how long after the last acknowledged insert the follower
	// needed to reach the primary's final LSN.
	DrainMS float64 `json:"drain_ms"`
	// ApplyPerSec is the follower's record apply rate over the whole run
	// (records applied / time from first to last apply opportunity).
	ApplyPerSec float64 `json:"apply_per_sec"`
	// PromoteMS is the wall time of Promote() on the quiesced follower:
	// final drain, replica checkpoint, and reopening the mirror as a
	// read-write WAL.
	PromoteMS float64 `json:"promote_ms"`
	// Shipping volume over the replicated run.
	SegmentsShipped int64 `json:"segments_shipped"`
	BytesShipped    int64 `json:"bytes_shipped"`
	Resyncs         int64 `json:"resyncs"`
	// FollowerCheckpoints is how many replica checkpoints the follower
	// took while tailing (each bounds its restart replay).
	FollowerCheckpoints int64 `json:"follower_checkpoints"`

	// SyncReplication is the quorum size the sync section ran with (0 when
	// -sync was off and the section is absent).
	SyncReplication int `json:"sync_replication,omitempty"`
	// SyncInsertsPerSec is the primary's insert throughput with every
	// write held for a follower acknowledgment (in-process transport).
	SyncInsertsPerSec float64 `json:"sync_inserts_per_sec,omitempty"`
	// SyncOverheadPct is the throughput cost of synchronous acknowledgment
	// versus the async replicated run.
	SyncOverheadPct float64 `json:"sync_overhead_pct,omitempty"`
	// SyncDegraded counts writes acknowledged on local durability alone
	// because the quorum wait timed out (0 = every ack was real).
	SyncDegraded int64 `json:"sync_degraded"`
}

// replInsert drives the records through durable inserts from `workers`
// goroutines and returns the elapsed wall time.
func replInsert(tree *core.Tree, recs []cube.Record, workers int) (time.Duration, error) {
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(recs); i += workers {
				if err := tree.Insert(recs[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("insert %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start), firstErr
}

// ReplBench measures log-shipping replication end to end on the
// filesystem transport: a baseline insert storm with no follower, the
// same storm with a follower tailing (lag sampled as it runs), the
// post-quiesce drain, and a promotion. With sync true a third storm runs
// under SyncReplication=1 on the in-process transport (the only cheap
// ack channel), reporting what quorum acknowledgment costs on top of
// async shipping. dir == "" uses a temp directory.
func ReplBench(opt Options, n, workers int, dir string, syncRun bool) (*ReplBenchResult, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "dcreplbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	cfg := opt.DCConfig
	wopts := storage.WALOptions{SegmentBytes: 256 << 10}

	build := func(sub string, cfg core.Config) (*core.Tree, []cube.Record, error) {
		schema, recs, err := walBenchSchema(n)
		if err != nil {
			return nil, nil, err
		}
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, err
		}
		tree, err := core.NewDurableOpts(storage.NewMemStore(cfg.BlockSize), schema, cfg,
			filepath.Join(dir, sub, "wal"), wopts)
		if err != nil {
			return nil, nil, err
		}
		return tree, recs, nil
	}

	res := &ReplBenchResult{Version: 2, Records: n, Workers: workers}

	// Baseline: no follower.
	base, recs, err := build("base", cfg)
	if err != nil {
		return nil, err
	}
	elapsed, err := replInsert(base, recs, workers)
	if err != nil {
		return nil, err
	}
	res.BaselineInsertsPerSec = float64(n) / elapsed.Seconds()
	if err := base.Close(); err != nil {
		return nil, err
	}

	// Replicated: follower tails the WAL directory while the storm runs.
	prim, recs, err := build("prim", cfg)
	if err != nil {
		return nil, err
	}
	primPrefix := filepath.Join(dir, "prim", "wal")
	prim.WAL().SetRetainLSN(0)
	if err := repl.WriteSchema(primPrefix, prim); err != nil {
		return nil, err
	}
	f, err := repl.NewFollower(&repl.DirSource{Prefix: primPrefix}, repl.FollowerOptions{
		Dir:             filepath.Join(dir, "fol"),
		Config:          cfg,
		Poll:            2 * time.Millisecond,
		CheckpointEvery: 100 * time.Millisecond,
		WAL:             wopts,
	})
	if err != nil {
		return nil, err
	}

	stopSample := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				m := f.Metrics()
				if m.LagBytes > res.MaxLagBytes {
					res.MaxLagBytes = m.LagBytes
				}
				prim.WAL().SetRetainLSN(m.MirroredLSN)
			}
		}
	}()

	applyStart := time.Now()
	elapsed, err = replInsert(prim, recs, workers)
	if err != nil {
		return nil, err
	}
	res.ReplicatedInsertsPerSec = float64(n) / elapsed.Seconds()
	res.PrimaryOverheadPct = 100 * (res.BaselineInsertsPerSec - res.ReplicatedInsertsPerSec) /
		res.BaselineInsertsPerSec

	// Drain: time from quiesce to full catch-up.
	tip := prim.WAL().LastLSN()
	drainStart := time.Now()
	for f.AppliedLSN() < tip {
		if err := f.Err(); err != nil {
			close(stopSample)
			sampleDone.Wait()
			return nil, fmt.Errorf("follower: %w", err)
		}
		time.Sleep(time.Millisecond)
	}
	res.DrainMS = float64(time.Since(drainStart).Microseconds()) / 1000
	close(stopSample)
	sampleDone.Wait()

	fm := f.Metrics()
	res.SegmentsShipped = fm.SegmentsShipped
	res.BytesShipped = fm.BytesShipped
	res.Resyncs = fm.Resyncs
	res.FollowerCheckpoints = fm.Checkpoints
	res.ApplyPerSec = float64(fm.RecordsApplied) / time.Since(applyStart).Seconds()

	if got, want := f.Tree().Count(), prim.Count(); got != want {
		return nil, fmt.Errorf("replica count %d != primary %d", got, want)
	}

	// Promotion: the primary is simply abandoned (kill -9 semantics).
	promoteStart := time.Now()
	rw, err := f.Promote()
	if err != nil {
		return nil, err
	}
	res.PromoteMS = float64(time.Since(promoteStart).Microseconds()) / 1000
	if got, want := rw.Count(), prim.Count(); got != want {
		return nil, fmt.Errorf("promoted count %d != primary %d", got, want)
	}
	if err := rw.Close(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if !syncRun {
		return res, nil
	}

	// Synchronous: the same storm, every insert held until the follower
	// acknowledges its LSN. The in-process transport is the ack channel
	// (DirSource carries none), so the overhead measured is the quorum
	// round-trip itself, not transport noise.
	scfg := cfg
	scfg.SyncReplication = 1
	res.SyncReplication = 1
	sprim, srecs, err := build("sync", scfg)
	if err != nil {
		return nil, err
	}
	sf, err := repl.NewFollower(&repl.WALSource{Tree: sprim}, repl.FollowerOptions{
		Dir:             filepath.Join(dir, "syncfol"),
		ID:              "bench-sync",
		Config:          scfg,
		Poll:            time.Millisecond,
		CheckpointEvery: 100 * time.Millisecond,
		WAL:             wopts,
	})
	if err != nil {
		return nil, err
	}
	elapsed, err = replInsert(sprim, srecs, workers)
	if err != nil {
		return nil, err
	}
	res.SyncInsertsPerSec = float64(n) / elapsed.Seconds()
	res.SyncOverheadPct = 100 * (res.ReplicatedInsertsPerSec - res.SyncInsertsPerSec) /
		res.ReplicatedInsertsPerSec
	res.SyncDegraded = sprim.Metrics().ReplSyncDegraded
	if err := sf.Close(); err != nil {
		return nil, err
	}
	return res, sprim.Close()
}
