package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/dcindex/dctree/internal/bitmap"
	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/seqscan"
	"github.com/dcindex/dctree/internal/storage"
	"github.com/dcindex/dctree/internal/tpcd"
	"github.com/dcindex/dctree/internal/views"
	"github.com/dcindex/dctree/internal/xtree"
)

// Options parameterizes all experiment drivers.
type Options struct {
	// Sizes are the data-set sizes to sweep (the paper: 100k..300k).
	Sizes []int
	// QueriesPerPoint is the number of random queries averaged per size
	// (the paper: 100).
	QueriesPerPoint int
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Scale fixes the dimension-table cardinalities. The zero value
	// selects tpcd.ScaleFor(n): dimension tables that grow with the data
	// set, like TPC-D's scale factor.
	Scale tpcd.Scale
	// DCConfig / XConfig tune the two trees.
	DCConfig core.Config
	XConfig  xtree.Config
	// Verify cross-checks the three systems' answers on every query
	// (disable for pure timing runs).
	Verify bool
	// SkipAblation drops the ablation table from All (the config sweeps
	// rebuild the DC-tree several times, which dominates large runs).
	SkipAblation bool
}

// DefaultOptions returns laptop-friendly defaults: the paper's shape with
// smaller sizes. Use cmd/dcbench -n 100000,200000,300000 for the full run.
func DefaultOptions() Options {
	return Options{
		Sizes:           []int{10000, 20000, 30000},
		QueriesPerPoint: 100,
		Seed:            1,
		DCConfig:        core.DefaultConfig(),
		XConfig:         xtree.DefaultConfig(),
		Verify:          false,
	}
}

// systems bundles the three competitors over one generated data set.
type systems struct {
	gen    *tpcd.Gen
	recs   []cube.Record
	points []xtree.Point

	dc   *core.Tree
	xt   *xtree.Tree
	scan *seqscan.Store
	bm   *bitmap.Index

	dcInsert   time.Duration
	xInsert    time.Duration
	scanInsert time.Duration
	bmInsert   time.Duration
}

// buildFlags selects which systems to construct.
type buildFlags struct{ dc, x, scan, bm bool }

// build generates n records and loads the selected systems, timing each
// system's insertion loop separately (generation excluded).
func build(opt Options, n int, which buildFlags) (*systems, error) {
	scale := opt.Scale
	if scale == (tpcd.Scale{}) {
		scale = tpcd.ScaleFor(n)
	}
	gen, err := tpcd.New(opt.Seed, scale)
	if err != nil {
		return nil, err
	}
	s := &systems{gen: gen, recs: gen.Records(n)}
	if which.x {
		s.points = make([]xtree.Point, n)
		for i, r := range s.recs {
			p, err := gen.XPoint(r)
			if err != nil {
				return nil, err
			}
			s.points[i] = p
		}
	}

	if which.dc {
		dc, err := core.New(storage.NewMemStore(opt.DCConfig.BlockSize), gen.Schema(), opt.DCConfig)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, r := range s.recs {
			if err := dc.Insert(r); err != nil {
				return nil, err
			}
		}
		s.dcInsert = time.Since(start)
		s.dc = dc
	}
	if which.x {
		xt, err := xtree.New(gen.XDims(), opt.XConfig)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i, p := range s.points {
			if err := xt.Insert(p, s.recs[i].Measures[0]); err != nil {
				return nil, err
			}
		}
		s.xInsert = time.Since(start)
		s.xt = xt
	}
	if which.scan {
		scan := seqscan.New(gen.Schema())
		start := time.Now()
		for _, r := range s.recs {
			if err := scan.Insert(r); err != nil {
				return nil, err
			}
		}
		s.scanInsert = time.Since(start)
		s.scan = scan
	}
	if which.bm {
		bm := bitmap.NewIndex(gen.Schema())
		start := time.Now()
		for _, r := range s.recs {
			if err := bm.Append(r); err != nil {
				return nil, err
			}
		}
		s.bmInsert = time.Since(start)
		s.bm = bm
	}
	return s, nil
}

// queryWork aggregates per-query averages of both wall-clock and logical
// work. Logical node visits approximate the paper's 1999 cost model, where
// a node visit meant a block read.
type queryWork struct {
	dcSec, xSec, scanSec float64
	dcVisits, xVisits    float64
	dcMaterializedHits   float64
	dcEntries, xEntries  float64
	scanRecords          float64
}

// queryTimes runs the generated query workload against the built systems
// and returns the average seconds per query for each.
func (s *systems) queryTimes(opt Options, selectivity float64) (dcSec, xSec, scanSec float64, err error) {
	w, err := s.queryWork(opt, selectivity)
	if err != nil {
		return 0, 0, 0, err
	}
	return w.dcSec, w.xSec, w.scanSec, nil
}

// queryWork runs the workload and collects both timing and work counters.
func (s *systems) queryWork(opt Options, selectivity float64) (queryWork, error) {
	var w queryWork
	qg := s.gen.Queries(opt.Seed + int64(selectivity*1000) + 77)
	queries := make([]tpcd.Query, opt.QueriesPerPoint)
	for i := range queries {
		var err error
		queries[i], err = qg.Query(selectivity)
		if err != nil {
			return w, err
		}
	}

	if opt.Verify {
		if err := s.verify(queries); err != nil {
			return w, err
		}
	}

	nq := float64(len(queries))
	if s.dc != nil {
		start := time.Now()
		for _, q := range queries {
			res, err := s.dc.Execute(context.Background(),
				core.QueryRequest{Query: q.MDS, CollectStats: true})
			if err != nil {
				return w, err
			}
			w.dcVisits += float64(res.Stats.NodesVisited)
			w.dcEntries += float64(res.Stats.EntriesScanned)
			w.dcMaterializedHits += float64(res.Stats.MaterializedHits)
		}
		w.dcSec = time.Since(start).Seconds() / nq
		w.dcVisits /= nq
		w.dcEntries /= nq
		w.dcMaterializedHits /= nq
	}
	if s.xt != nil {
		start := time.Now()
		for _, q := range queries {
			_, st, err := s.xt.RangeQuery(q.Rect, q.Filter)
			if err != nil {
				return w, err
			}
			w.xVisits += float64(st.NodesVisited)
			w.xEntries += float64(st.EntriesScanned)
		}
		w.xSec = time.Since(start).Seconds() / nq
		w.xVisits /= nq
		w.xEntries /= nq
	}
	if s.scan != nil {
		before := s.scan.RecordsScanned
		start := time.Now()
		for _, q := range queries {
			if _, err := s.scan.RangeAgg(q.MDS, 0); err != nil {
				return w, err
			}
		}
		w.scanSec = time.Since(start).Seconds() / nq
		w.scanRecords = float64(s.scan.RecordsScanned-before) / nq
	}
	return w, nil
}

// verify cross-checks that every built system returns the same aggregate
// for every query — the experiment harness's correctness oracle.
func (s *systems) verify(queries []tpcd.Query) error {
	for i, q := range queries {
		var want cube.Agg
		var haveWant bool
		if s.scan != nil {
			w, err := s.scan.RangeAgg(q.MDS, 0)
			if err != nil {
				return err
			}
			want, haveWant = w, true
		}
		if s.dc != nil {
			res, err := s.dc.Execute(context.Background(), core.QueryRequest{Query: q.MDS})
			if err != nil {
				return err
			}
			got := res.Agg
			if haveWant {
				if got.Count != want.Count || !close6(got.Sum, want.Sum) {
					return fmt.Errorf("bench: query %d: dc %+v != scan %+v", i, got, want)
				}
			} else {
				want, haveWant = got, true
			}
		}
		if s.xt != nil && haveWant {
			got, _, err := s.xt.RangeQuery(q.Rect, q.Filter)
			if err != nil {
				return err
			}
			if got.Count != want.Count || !close6(got.Sum, want.Sum) {
				return fmt.Errorf("bench: query %d: xtree %+v != reference %+v", i, got, want)
			}
		}
		if s.bm != nil && haveWant {
			got, err := s.bm.RangeAgg(q.MDS, 0)
			if err != nil {
				return err
			}
			if got.Count != want.Count || !close6(got.Sum, want.Sum) {
				return fmt.Errorf("bench: query %d: bitmap %+v != reference %+v", i, got, want)
			}
		}
	}
	return nil
}

func close6(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if b > scale {
		scale = b
	} else if -b > scale {
		scale = -b
	}
	return diff <= 1e-6*scale+1e-9
}

// Fig11aInsert regenerates Figure 11(a): total insertion time of the
// DC-tree vs the X-tree over the data-set sizes.
func Fig11aInsert(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 11(a): Insertion Time (total)",
		Note:    "paper: X-tree inserts significantly faster in total; both grow linearly",
		Columns: []string{"records", "dc_tree_s", "x_tree_s", "dc/x"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, x: true})
		if err != nil {
			return nil, err
		}
		dc, x := s.dcInsert.Seconds(), s.xInsert.Seconds()
		ratio := 0.0
		if x > 0 {
			ratio = dc / x
		}
		t.AddRow(d(n), f3(dc), f3(x), fx(ratio))
	}
	return t, nil
}

// Fig11bInsertPerRecord regenerates Figure 11(b): the DC-tree's insertion
// time per data record, which must stay flat (≈0.025 s on 1999 hardware)
// as the data set grows.
func Fig11bInsertPerRecord(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 11(b): DC-tree Insertion Time per Data Record",
		Note:    "paper: ~0.025 s/record on a 1999 HP C160; flat in the data-set size",
		Columns: []string{"records", "ms_per_record"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), ms(s.dcInsert.Seconds()/float64(n)))
	}
	return t, nil
}

// Fig12Query regenerates Figures 12(a)-(c): average time per range query,
// DC-tree vs X-tree, at the given selectivity (0.01, 0.05, 0.25).
func Fig12Query(opt Options, selectivity float64, figure string) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 12(%s): Time per Query, Selectivity %g%%",
			figure, selectivity*100),
		Note:    "paper: DC-tree ≈4.5x faster than the X-tree at every size",
		Columns: []string{"records", "dc_ms_per_query", "x_ms_per_query", "speedup"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, x: true, scan: opt.Verify})
		if err != nil {
			return nil, err
		}
		dcSec, xSec, _, err := s.queryTimes(opt, selectivity)
		if err != nil {
			return nil, err
		}
		sp := 0.0
		if dcSec > 0 {
			sp = xSec / dcSec
		}
		t.AddRow(d(n), ms(dcSec), ms(xSec), fx(sp))
	}
	return t, nil
}

// Fig12dSeqScan regenerates Figure 12(d): DC-tree vs sequential search at
// selectivity 25 % (the DC-tree's worst case; still ≥12.5x in the paper).
func Fig12dSeqScan(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 12(d): Time per Query, Selectivity 25% — DC-tree vs Sequential Search",
		Note:    "paper: ≥12.5x speedup even in the DC-tree's worst case",
		Columns: []string{"records", "dc_ms_per_query", "seqscan_ms_per_query", "speedup"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, scan: true})
		if err != nil {
			return nil, err
		}
		dcSec, _, scanSec, err := s.queryTimes(opt, 0.25)
		if err != nil {
			return nil, err
		}
		sp := 0.0
		if dcSec > 0 {
			sp = scanSec / dcSec
		}
		t.AddRow(d(n), ms(dcSec), ms(scanSec), fx(sp))
	}
	return t, nil
}

// Fig13NodeSizes regenerates Figure 13: average node size (entries) at the
// two highest levels below the root. The paper observes the second level
// stabilizing around 2.5x the single-block directory capacity (supernode
// effect) while the highest level stabilizes near 15 entries.
func Fig13NodeSizes(opt Options) (*Table, error) {
	t := &Table{
		Title: "Figure 13: Node Sizes (avg entries) per Level below the Root",
		Note: fmt.Sprintf("directory capacity per block = %d; paper: 2nd level ≈ 2.5x capacity via supernodes",
			opt.DCConfig.DirCapacity),
		Columns: []string{"records", "level1_avg_entries", "level2_avg_entries", "level1_supernodes", "level2_supernodes", "height"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true})
		if err != nil {
			return nil, err
		}
		levels, err := s.dc.LevelStats()
		if err != nil {
			return nil, err
		}
		get := func(lvl int) (string, string) {
			if lvl >= len(levels) {
				return "-", "-"
			}
			return f1(levels[lvl].AvgEntries), d(levels[lvl].Supernodes)
		}
		e1, s1 := get(1)
		e2, s2 := get(2)
		t.AddRow(d(n), e1, e2, s1, s2, d(len(levels)))
	}
	return t, nil
}

// Speedups aggregates the headline claims: the query speedup factors of
// the DC-tree over the X-tree per selectivity, and over the sequential
// search at 25 %.
func Speedups(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Headline speedups (DC-tree vs baselines, largest size)",
		Note:    "paper: ≈4.5x vs X-tree across selectivities; ≥12.5x vs sequential search at 25%",
		Columns: []string{"comparison", "selectivity", "dc_ms", "baseline_ms", "speedup"},
	}
	n := opt.Sizes[len(opt.Sizes)-1]
	s, err := build(opt, n, buildFlags{dc: true, x: true, scan: true})
	if err != nil {
		return nil, err
	}
	for _, sel := range []float64{0.01, 0.05, 0.25} {
		dcSec, xSec, scanSec, err := s.queryTimes(opt, sel)
		if err != nil {
			return nil, err
		}
		t.AddRow("DC vs X-tree", fmt.Sprintf("%g%%", sel*100), ms(dcSec), ms(xSec), fx(xSec/dcSec))
		if sel == 0.25 {
			t.AddRow("DC vs seq. search", "25%", ms(dcSec), ms(scanSec), fx(scanSec/dcSec))
		}
	}
	return t, nil
}

// Rollup measures the OLAP roll-up workload of the paper's motivating
// scenarios (§1): one or two dimensions constrained at coarse hierarchy
// levels, the rest unconstrained. This is where the materialized
// directory aggregates dominate: most of the range is answered without
// descending, while the X-tree and the scan must fetch every matching
// record.
func Rollup(opt Options) (*Table, error) {
	t := &Table{
		Title: "OLAP roll-up queries (1-2 coarse dimensions constrained)",
		Note:  "the paper's motivating workload; dc_mat_hits = subtrees answered from directory aggregates",
		Columns: []string{"records", "dc_ms", "x_ms", "scan_ms",
			"dc/x_speedup", "dc/scan_speedup", "dc_mat_hits", "dc_node_visits"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, x: true, scan: true})
		if err != nil {
			return nil, err
		}
		w, err := s.rollupWork(opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), ms(w.dcSec), ms(w.xSec), ms(w.scanSec),
			fx(w.xSec/w.dcSec), fx(w.scanSec/w.dcSec), f1(w.dcMaterializedHits), f1(w.dcVisits))
	}
	return t, nil
}

// rollupWork runs the roll-up workload against the built systems.
func (s *systems) rollupWork(opt Options) (queryWork, error) {
	var w queryWork
	qg := s.gen.Queries(opt.Seed + 4242)
	queries := make([]tpcd.Query, opt.QueriesPerPoint)
	for i := range queries {
		var err error
		queries[i], err = qg.Rollup(1 + i%2)
		if err != nil {
			return w, err
		}
	}
	if opt.Verify {
		if err := s.verify(queries); err != nil {
			return w, err
		}
	}
	nq := float64(len(queries))
	if s.dc != nil {
		start := time.Now()
		for _, q := range queries {
			res, err := s.dc.Execute(context.Background(),
				core.QueryRequest{Query: q.MDS, CollectStats: true})
			if err != nil {
				return w, err
			}
			w.dcVisits += float64(res.Stats.NodesVisited)
			w.dcMaterializedHits += float64(res.Stats.MaterializedHits)
		}
		w.dcSec = time.Since(start).Seconds() / nq
		w.dcVisits /= nq
		w.dcMaterializedHits /= nq
	}
	if s.xt != nil {
		start := time.Now()
		for _, q := range queries {
			if _, _, err := s.xt.RangeQuery(q.Rect, q.Filter); err != nil {
				return w, err
			}
		}
		w.xSec = time.Since(start).Seconds() / nq
	}
	if s.scan != nil {
		start := time.Now()
		for _, q := range queries {
			if _, err := s.scan.RangeAgg(q.MDS, 0); err != nil {
				return w, err
			}
		}
		w.scanSec = time.Since(start).Seconds() / nq
	}
	return w, nil
}

// Bitmap compares the DC-tree against a bitmap join index (§2 related
// work): per-attribute-value compressed bit vectors at every hierarchy
// level. The bitmap index is fast on low selectivities but must fetch
// every qualifying fact row for the aggregation (secondary index), cannot
// delete without a rebuild, and its memory grows with levels × values.
func Bitmap(opt Options) (*Table, error) {
	t := &Table{
		Title: "Bitmap join index baseline (§2 related work)",
		Note:  "bitmaps locate rows but still fetch every matching record; deletion requires a rebuild",
		Columns: []string{"records", "selectivity", "dc_ms", "bitmap_ms",
			"dc/bitmap", "bitmap_rows_fetched", "bitmap_MB"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, bm: true, scan: opt.Verify})
		if err != nil {
			return nil, err
		}
		for _, sel := range []float64{0.01, 0.05, 0.25} {
			qg := s.gen.Queries(opt.Seed + int64(sel*1000) + 77)
			queries := make([]tpcd.Query, opt.QueriesPerPoint)
			for i := range queries {
				queries[i], err = qg.Query(sel)
				if err != nil {
					return nil, err
				}
			}
			if opt.Verify {
				if err := s.verify(queries); err != nil {
					return nil, err
				}
			}
			nq := float64(len(queries))
			start := time.Now()
			for _, q := range queries {
				if _, err := s.dc.Execute(context.Background(), core.QueryRequest{Query: q.MDS}); err != nil {
					return nil, err
				}
			}
			dcSec := time.Since(start).Seconds() / nq

			before := s.bm.RowsFetched
			start = time.Now()
			for _, q := range queries {
				if _, err := s.bm.RangeAgg(q.MDS, 0); err != nil {
					return nil, err
				}
			}
			bmSec := time.Since(start).Seconds() / nq
			fetched := float64(s.bm.RowsFetched-before) / nq

			t.AddRow(d(n), fmt.Sprintf("%g%%", sel*100), ms(dcSec), ms(bmSec),
				fx(bmSec/dcSec), f1(fetched),
				fmt.Sprintf("%.1f", float64(s.bm.MemoryBytes())/(1<<20)))
		}
	}
	return t, nil
}

// Views compares the DC-tree against statically materialized views with
// HRU greedy selection (§2 related work, the paper's [7]). The last two
// columns are the paper's whole argument in one row: a single record
// insert costs the view store a full rebuild, while the DC-tree absorbs
// it in microseconds and stays continuously queryable.
func Views(opt Options) (*Table, error) {
	t := &Table{
		Title: "Materialized-view baseline (HRU greedy selection, §2 related work)",
		Note:  "update cost is the point: one insert ⇒ full view rebuild vs one dynamic DC-tree insert",
		Columns: []string{"records", "views", "cells", "dc_ms_per_query", "views_ms_per_query",
			"view_fallbacks", "rebuild_after_1_insert_ms", "dc_insert_ms"},
	}
	for _, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true})
		if err != nil {
			return nil, err
		}
		vs := views.New(s.gen.Schema())
		for _, r := range s.recs {
			if err := vs.Append(r); err != nil {
				return nil, err
			}
		}
		budget := n / 2 // half the fact table's cells
		if err := vs.Build(budget); err != nil {
			return nil, err
		}

		qg := s.gen.Queries(opt.Seed + 4242)
		queries := make([]tpcd.Query, opt.QueriesPerPoint)
		for i := range queries {
			queries[i], err = qg.Rollup(1 + i%2)
			if err != nil {
				return nil, err
			}
		}
		if opt.Verify {
			for i, q := range queries {
				wantRes, err := s.dc.Execute(context.Background(), core.QueryRequest{Query: q.MDS})
				if err != nil {
					return nil, err
				}
				want := wantRes.Agg
				got, err := vs.RangeAgg(q.MDS, 0)
				if err != nil {
					return nil, err
				}
				if got.Count != want.Count || !close6(got.Sum, want.Sum) {
					return nil, fmt.Errorf("bench: query %d: views %+v != dc %+v", i, got, want)
				}
			}
		}
		nq := float64(len(queries))
		start := time.Now()
		for _, q := range queries {
			if _, err := s.dc.Execute(context.Background(), core.QueryRequest{Query: q.MDS}); err != nil {
				return nil, err
			}
		}
		dcSec := time.Since(start).Seconds() / nq
		fallbacksBefore := vs.Fallbacks
		start = time.Now()
		for _, q := range queries {
			if _, err := vs.RangeAgg(q.MDS, 0); err != nil {
				return nil, err
			}
		}
		vSec := time.Since(start).Seconds() / nq
		fallbacks := vs.Fallbacks - fallbacksBefore

		// The update trade-off: one new record.
		extra := s.gen.Record()
		start = time.Now()
		if err := s.dc.Insert(extra); err != nil {
			return nil, err
		}
		dcInsert := time.Since(start)
		if err := vs.Append(extra); err != nil {
			return nil, err
		}
		start = time.Now()
		if err := vs.Build(budget); err != nil {
			return nil, err
		}
		rebuild := time.Since(start)

		t.AddRow(d(n), d(vs.ViewCount()), d(vs.TotalCells()),
			ms(dcSec), ms(vSec), d64(fallbacks),
			ms(rebuild.Seconds()), ms(dcInsert.Seconds()))
	}
	return t, nil
}

// Ablation measures the contribution of the DC-tree's design choices:
// materialized aggregates on/off, supernodes on/off, and the split
// overlap threshold.
func Ablation(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Ablation: query time at selectivity 5% (smallest size)",
		Columns: []string{"variant", "insert_s", "dc_ms_per_query", "height", "supernodes"},
	}
	n := opt.Sizes[0]
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"default", func(*core.Config) {}},
		{"no materialization", func(c *core.Config) { c.Materialize = false }},
		{"no supernodes", func(c *core.Config) { c.DisableSupernodes = true }},
		{"overlap threshold 0%", func(c *core.Config) { c.MaxOverlapRatio = 0.001 }},
		{"overlap threshold 50%", func(c *core.Config) { c.MaxOverlapRatio = 0.5 }},
		{"hierarchy-blind choose_subtree", func(c *core.Config) { c.FlatChooseSubtree = true }},
	}
	for _, v := range variants {
		o := opt
		v.mutate(&o.DCConfig)
		s, err := build(o, n, buildFlags{dc: true})
		if err != nil {
			return nil, err
		}
		dcSec, _, _, err := s.queryTimes(o, 0.05)
		if err != nil {
			return nil, err
		}
		levels, err := s.dc.LevelStats()
		if err != nil {
			return nil, err
		}
		supers := 0
		for _, l := range levels {
			supers += l.Supernodes
		}
		t.AddRow(v.name, f3(s.dcInsert.Seconds()), ms(dcSec), d(len(levels)), d(supers))
	}

	// Bulk load vs dynamic insertion: the §1 trade-off the DC-tree is
	// designed to avoid — a bulk window builds the index faster, but the
	// warehouse is offline while it runs.
	{
		scale := opt.Scale
		if scale == (tpcd.Scale{}) {
			scale = tpcd.ScaleFor(n)
		}
		gen, err := tpcd.New(opt.Seed, scale)
		if err != nil {
			return nil, err
		}
		recs := gen.Records(n)
		dc, err := core.New(storage.NewMemStore(opt.DCConfig.BlockSize), gen.Schema(), opt.DCConfig)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := dc.BulkLoad(recs); err != nil {
			return nil, err
		}
		bulkSec := time.Since(start)
		s := &systems{gen: gen, recs: recs, dc: dc, dcInsert: bulkSec}
		dcSec, _, _, err := s.queryTimes(opt, 0.05)
		if err != nil {
			return nil, err
		}
		levels, err := dc.LevelStats()
		if err != nil {
			return nil, err
		}
		supers := 0
		for _, l := range levels {
			supers += l.Supernodes
		}
		t.AddRow("bulk load (offline)", f3(bulkSec.Seconds()), ms(dcSec), d(len(levels)), d(supers))
	}
	return t, nil
}

// All runs every experiment and returns the tables in paper order.
// Unlike the standalone drivers, All builds each data-set size exactly
// once (DC-tree, X-tree and sequential scan together) and derives every
// figure from the shared builds, which keeps the paper-scale sweep
// (100k–300k records) tractable.
func All(opt Options) ([]*Table, error) {
	builds := make([]*systems, len(opt.Sizes))
	for i, n := range opt.Sizes {
		s, err := build(opt, n, buildFlags{dc: true, x: true, scan: true, bm: true})
		if err != nil {
			return nil, err
		}
		builds[i] = s
	}

	fig11a := &Table{
		Title:   "Figure 11(a): Insertion Time (total)",
		Note:    "paper: X-tree inserts significantly faster in total; both grow linearly",
		Columns: []string{"records", "dc_tree_s", "x_tree_s", "dc/x"},
	}
	fig11b := &Table{
		Title:   "Figure 11(b): DC-tree Insertion Time per Data Record",
		Note:    "paper: ~0.025 s/record on a 1999 HP C160; flat in the data-set size",
		Columns: []string{"records", "ms_per_record"},
	}
	fig13 := &Table{
		Title: "Figure 13: Node Sizes (avg entries) per Level below the Root",
		Note: fmt.Sprintf("directory capacity per block = %d; paper: 2nd level ≈ 2.5x capacity via supernodes",
			opt.DCConfig.DirCapacity),
		Columns: []string{"records", "level1_avg_entries", "level2_avg_entries", "level1_supernodes", "level2_supernodes", "height"},
	}
	fig12 := map[float64]*Table{}
	for _, f := range []struct {
		sel float64
		fig string
	}{{0.01, "a"}, {0.05, "b"}, {0.25, "c"}} {
		fig12[f.sel] = &Table{
			Title: fmt.Sprintf("Figure 12(%s): Time per Query, Selectivity %g%%",
				f.fig, f.sel*100),
			Note:    "paper: DC-tree ≈4.5x faster than the X-tree at every size",
			Columns: []string{"records", "dc_ms_per_query", "x_ms_per_query", "speedup"},
		}
	}
	fig12d := &Table{
		Title:   "Figure 12(d): Time per Query, Selectivity 25% — DC-tree vs Sequential Search",
		Note:    "paper: ≥12.5x speedup even in the DC-tree's worst case",
		Columns: []string{"records", "dc_ms_per_query", "seqscan_ms_per_query", "speedup"},
	}
	speed := &Table{
		Title:   "Headline speedups (DC-tree vs baselines, largest size)",
		Note:    "paper: ≈4.5x vs X-tree across selectivities; ≥12.5x vs sequential search at 25%",
		Columns: []string{"comparison", "selectivity", "dc_ms", "baseline_ms", "speedup"},
	}
	logio := &Table{
		Title: "Logical I/O per query (node visits — the paper's 1999 disk-bound cost model)",
		Note:  "dc_mat_hits = subtrees answered from materialized aggregates without descending",
		Columns: []string{"records", "selectivity", "dc_node_visits", "x_node_visits",
			"dc_mat_hits", "seqscan_records"},
	}
	rollup := &Table{
		Title: "OLAP roll-up queries (1-2 coarse dimensions constrained)",
		Note:  "the paper's motivating workload; dc_mat_hits = subtrees answered from directory aggregates",
		Columns: []string{"records", "dc_ms", "x_ms", "scan_ms",
			"dc/x_speedup", "dc/scan_speedup", "dc_mat_hits", "dc_node_visits"},
	}
	bmTable := &Table{
		Title: "Bitmap join index baseline (§2 related work)",
		Note:  "bitmaps locate rows but still fetch every matching record; deletion requires a rebuild",
		Columns: []string{"records", "selectivity", "dc_ms", "bitmap_ms",
			"dc/bitmap", "bitmap_MB"},
	}

	for i, s := range builds {
		n := opt.Sizes[i]
		dcIns, xIns := s.dcInsert.Seconds(), s.xInsert.Seconds()
		ratio := 0.0
		if xIns > 0 {
			ratio = dcIns / xIns
		}
		fig11a.AddRow(d(n), f3(dcIns), f3(xIns), fx(ratio))
		fig11b.AddRow(d(n), ms(dcIns/float64(n)))

		levels, err := s.dc.LevelStats()
		if err != nil {
			return nil, err
		}
		get := func(lvl int) (string, string) {
			if lvl >= len(levels) {
				return "-", "-"
			}
			return f1(levels[lvl].AvgEntries), d(levels[lvl].Supernodes)
		}
		e1, s1 := get(1)
		e2, s2 := get(2)
		fig13.AddRow(d(n), e1, e2, s1, s2, d(len(levels)))

		rw, err := s.rollupWork(opt)
		if err != nil {
			return nil, err
		}
		rollup.AddRow(d(n), ms(rw.dcSec), ms(rw.xSec), ms(rw.scanSec),
			fx(rw.xSec/rw.dcSec), fx(rw.scanSec/rw.dcSec), f1(rw.dcMaterializedHits), f1(rw.dcVisits))

		last := i == len(builds)-1
		for _, sel := range []float64{0.01, 0.05, 0.25} {
			w, err := s.queryWork(opt, sel)
			if err != nil {
				return nil, err
			}
			dcSec, xSec, scanSec := w.dcSec, w.xSec, w.scanSec
			sp := 0.0
			if dcSec > 0 {
				sp = xSec / dcSec
			}
			fig12[sel].AddRow(d(n), ms(dcSec), ms(xSec), fx(sp))
			logio.AddRow(d(n), fmt.Sprintf("%g%%", sel*100),
				f1(w.dcVisits), f1(w.xVisits), f1(w.dcMaterializedHits), f1(w.scanRecords))
			bmSec, err := s.bitmapTime(opt, sel)
			if err != nil {
				return nil, err
			}
			bmTable.AddRow(d(n), fmt.Sprintf("%g%%", sel*100), ms(dcSec), ms(bmSec),
				fx(bmSec/dcSec), fmt.Sprintf("%.1f", float64(s.bm.MemoryBytes())/(1<<20)))
			if sel == 0.25 {
				scanSp := 0.0
				if dcSec > 0 {
					scanSp = scanSec / dcSec
				}
				fig12d.AddRow(d(n), ms(dcSec), ms(scanSec), fx(scanSp))
			}
			if last {
				speed.AddRow("DC vs X-tree", fmt.Sprintf("%g%%", sel*100), ms(dcSec), ms(xSec), fx(sp))
				if sel == 0.25 {
					speed.AddRow("DC vs seq. search", "25%", ms(dcSec), ms(scanSec), fx(scanSec/dcSec))
				}
			}
		}
	}

	tables := []*Table{
		fig11a, fig11b,
		fig12[0.01], fig12[0.05], fig12[0.25],
		fig12d, fig13, speed, logio, rollup, bmTable,
	}
	if !opt.SkipAblation {
		ablation, err := Ablation(opt)
		if err != nil {
			return nil, err
		}
		tables = append(tables, ablation)
	}
	return tables, nil
}

// bitmapTime measures the bitmap index's average query time on the same
// workload queryWork uses.
func (s *systems) bitmapTime(opt Options, selectivity float64) (float64, error) {
	if s.bm == nil {
		return 0, nil
	}
	qg := s.gen.Queries(opt.Seed + int64(selectivity*1000) + 77)
	queries := make([]tpcd.Query, opt.QueriesPerPoint)
	for i := range queries {
		var err error
		queries[i], err = qg.Query(selectivity)
		if err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for _, q := range queries {
		if _, err := s.bm.RangeAgg(q.MDS, 0); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(len(queries)), nil
}
