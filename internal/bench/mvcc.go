package bench

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/cube"
	"github.com/dcindex/dctree/internal/storage"
)

// MVCCVariant is one scan-mode run of the snapshot benchmark: a single
// writer inserts records one at a time while a scanner goroutine runs
// full-table scans back to back, either against the live tree (each scan
// holds the tree read lock for its whole duration, excluding the writer)
// or against MVCC snapshots (each scan pins a version and runs without the
// tree lock). The no_scan baseline measures the same insert workload with
// the scanner off.
type MVCCVariant struct {
	Mode          string  `json:"mode"` // "no_scan", "locked_scan" or "snapshot_scan"
	Records       int     `json:"records"`
	Seconds       float64 `json:"seconds"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// Insert latency percentiles over every single Insert call. The p99
	// carries the scan interference: with locked scans an insert that
	// arrives mid-scan waits out the rest of the pass.
	P50InsertUS float64 `json:"p50_insert_us"`
	P99InsertUS float64 `json:"p99_insert_us"`
	MaxInsertUS float64 `json:"max_insert_us"`
	// Scanner-side accounting: completed full scans, records they
	// delivered, and (snapshot mode) versions captured and released.
	Scans          int64 `json:"scans"`
	RecordsScanned int64 `json:"records_scanned"`
	Snapshots      int64 `json:"snapshots"`
	// Durable-version accounting (format v2, snapshot mode only): versions
	// released by the KeepLast retention policy the variant runs under,
	// overlay extents/bytes the background checkpoints persisted for live
	// versions, and checkpoint frees parked behind version pins.
	VersionsPruned  int64 `json:"versions_pruned"`
	OverlayExtents  int64 `json:"overlay_extents_persisted"`
	OverlayBytes    int64 `json:"overlay_bytes_persisted"`
	ScanFreesParked int64 `json:"frees_parked"`
}

// MVCCBenchResult is the JSON shape dcbench -snapshot-scan emits.
// Format v2: the snapshot variant holds versions live under a KeepLast
// retention policy instead of releasing each scan's version inline, so the
// background checkpoints exercise the durable-overlay write path (meta v8)
// and retention does the pruning.
type MVCCBenchResult struct {
	FormatVersion int           `json:"format_version"`
	Records       int           `json:"records"`
	Variants      []MVCCVariant `json:"variants"`
	// P99 insert latency of each scanning mode relative to the no-scan
	// baseline. The snapshot ratio is the headline: it stays near 1 while
	// the locked ratio grows with scan length.
	LockedP99Ratio   float64 `json:"locked_p99_ratio"`
	SnapshotP99Ratio float64 `json:"snapshot_p99_ratio"`
}

// mvccCheckpointEvery is the background checkpoint cadence every variant
// runs under. Checkpoints keep the dirty-node set small, which is what
// makes snapshot capture cheap: the overlay only has to encode nodes
// dirtied since the last checkpoint. They also make the snapshot variant
// exercise the extent-pinning path — live versions hold their extents
// across checkpoint installs.
const mvccCheckpointEvery = 50 * time.Millisecond

// MVCCBench measures insert tail latency while long scans run, comparing
// lock-holding live scans against MVCC snapshot scans. All three variants
// run the identical insert workload of n pre-interned records on an
// in-memory store with fuzzy checkpoints ticking in the background.
func MVCCBench(opt Options, n int) (*MVCCBenchResult, error) {
	res := &MVCCBenchResult{FormatVersion: 2, Records: n}
	for _, mode := range []string{"no_scan", "locked_scan", "snapshot_scan"} {
		v, err := runMVCCVariant(opt, mode, n)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	base := res.Variants[0].P99InsertUS
	if base > 0 {
		res.LockedP99Ratio = res.Variants[1].P99InsertUS / base
		res.SnapshotP99Ratio = res.Variants[2].P99InsertUS / base
	}
	return res, nil
}

func runMVCCVariant(opt Options, mode string, n int) (MVCCVariant, error) {
	var v MVCCVariant
	schema, recs, err := walBenchSchema(n)
	if err != nil {
		return v, err
	}
	cfg := opt.DCConfig
	if mode == "snapshot_scan" {
		// Format v2: versions stay live until retention prunes them, so the
		// background checkpoints persist their overlays (meta v8) — the
		// durable-version write path is part of what this variant measures.
		cfg.VersionRetention = core.VersionRetention{KeepLast: 2}
	}
	tree, err := core.New(storage.NewMemStore(cfg.BlockSize), schema, cfg)
	if err != nil {
		return v, err
	}
	defer tree.Close()

	// Seed half the records before the clock starts so the very first
	// scans are already long enough to interfere, then checkpoint so the
	// seeded nodes start clean.
	seed := len(recs) / 2
	for _, rec := range recs[:seed] {
		if err := tree.Insert(rec); err != nil {
			return v, err
		}
	}
	if err := tree.Flush(); err != nil {
		return v, err
	}

	var (
		stop     atomic.Bool
		scanErr  error
		ckptErr  error
		scans    atomic.Int64
		scanned  atomic.Int64
		captured atomic.Int64
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(mvccCheckpointEvery)
		defer ticker.Stop()
		for !stop.Load() {
			<-ticker.C
			if err := tree.Checkpoint(context.Background()); err != nil {
				ckptErr = err
				return
			}
		}
	}()
	if mode != "no_scan" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := func(cube.Record) bool { scanned.Add(1); return true }
			for !stop.Load() {
				if mode == "locked_scan" {
					if err := tree.Scan(count); err != nil {
						scanErr = err
						return
					}
				} else {
					snap, err := tree.Snapshot()
					if err != nil {
						scanErr = err
						return
					}
					captured.Add(1)
					// No inline Release: the snapshot stays live until the
					// KeepLast retention policy (applied by later Snapshot
					// calls and checkpoint starts) prunes it.
					if err := snap.Scan(count); err != nil {
						scanErr = err
						return
					}
				}
				scans.Add(1)
			}
		}()
	}

	lat := make([]time.Duration, 0, len(recs)-seed)
	start := time.Now()
	for _, rec := range recs[seed:] {
		t0 := time.Now()
		if err := tree.Insert(rec); err != nil {
			stop.Store(true)
			wg.Wait()
			return v, err
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	if scanErr != nil {
		return v, scanErr
	}
	if ckptErr != nil {
		return v, ckptErr
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Microsecond)
	}
	m := tree.Metrics()
	v = MVCCVariant{
		Mode:            mode,
		Records:         len(lat),
		Seconds:         elapsed.Seconds(),
		InsertsPerSec:   float64(len(lat)) / elapsed.Seconds(),
		P50InsertUS:     pct(0.50),
		P99InsertUS:     pct(0.99),
		MaxInsertUS:     float64(lat[len(lat)-1]) / float64(time.Microsecond),
		Scans:           scans.Load(),
		RecordsScanned:  scanned.Load(),
		Snapshots:       captured.Load(),
		VersionsPruned:  m.VersionsPruned,
		OverlayExtents:  m.VersionOverlayExtents,
		OverlayBytes:    m.VersionOverlayBytes,
		ScanFreesParked: m.SnapshotFreesParked,
	}
	return v, nil
}
