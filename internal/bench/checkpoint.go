package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/dcindex/dctree/internal/core"
	"github.com/dcindex/dctree/internal/storage"
)

// CheckpointVariant is one checkpoint-mode run of the checkpoint benchmark:
// a single writer inserts records while a background goroutine periodically
// checkpoints the tree, either with the synchronous baseline (capture,
// write and install under one continuous hold of the tree write lock) or
// with the fuzzy protocol (extent writes run without the lock).
type CheckpointVariant struct {
	Mode          string  `json:"mode"` // "sync_flush" or "fuzzy_checkpoint"
	Records       int     `json:"records"`
	Checkpoints   int64   `json:"checkpoints"`
	Seconds       float64 `json:"seconds"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// Insert latency percentiles over every single Insert call. The p99 and
	// max carry the checkpoint interference: with the synchronous baseline
	// an insert that lands during a flush waits out the whole store pass.
	P50InsertUS float64 `json:"p50_insert_us"`
	P99InsertUS float64 `json:"p99_insert_us"`
	MaxInsertUS float64 `json:"max_insert_us"`
	// WriterStallSeconds is the tree's own accounting of how long writers
	// were excluded by checkpointing (for the fuzzy mode: the capture and
	// install critical sections only).
	WriterStallSeconds float64 `json:"writer_stall_seconds"`
	PagesWritten       int64   `json:"pages_written"`
	RequeuedNodes      int64   `json:"requeued_nodes"`
}

// CheckpointBenchResult is the JSON shape dcbench -checkpoint emits.
type CheckpointBenchResult struct {
	Records           int                 `json:"records"`
	CheckpointEveryUS float64             `json:"checkpoint_every_us"`
	Variants          []CheckpointVariant `json:"variants"`
	P99Speedup        float64             `json:"p99_speedup"`         // sync p99 / fuzzy p99
	StallReductionPct float64             `json:"stall_reduction_pct"` // 1 - fuzzy/sync stall
	ThroughputSpeedup float64             `json:"throughput_speedup"`  // fuzzy / sync inserts/s
}

// CheckpointBench measures insert tail latency under periodic checkpoints,
// synchronous versus fuzzy, on a file-backed store and WAL in dir (a temp
// directory when empty). Both modes run the identical workload: n durable
// inserts with a checkpoint fired every `every` of wall time.
func CheckpointBench(opt Options, n int, every time.Duration, dir string) (*CheckpointBenchResult, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "dcckptbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	res := &CheckpointBenchResult{
		Records:           n,
		CheckpointEveryUS: float64(every) / float64(time.Microsecond),
	}
	for i, mode := range []string{"sync_flush", "fuzzy_checkpoint"} {
		sub := filepath.Join(dir, fmt.Sprintf("run%d", i))
		v, err := runCheckpointVariant(opt, mode, n, every, sub)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	syncV, fuzzyV := res.Variants[0], res.Variants[1]
	if fuzzyV.P99InsertUS > 0 {
		res.P99Speedup = syncV.P99InsertUS / fuzzyV.P99InsertUS
	}
	if syncV.WriterStallSeconds > 0 {
		res.StallReductionPct = 100 * (1 - fuzzyV.WriterStallSeconds/syncV.WriterStallSeconds)
	}
	if syncV.InsertsPerSec > 0 {
		res.ThroughputSpeedup = fuzzyV.InsertsPerSec / syncV.InsertsPerSec
	}
	return res, nil
}

func runCheckpointVariant(opt Options, mode string, n int, every time.Duration, dir string) (CheckpointVariant, error) {
	var v CheckpointVariant
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return v, err
	}
	schema, recs, err := walBenchSchema(n)
	if err != nil {
		return v, err
	}
	cfg := opt.DCConfig
	st, err := storage.OpenPagedStore(filepath.Join(dir, "store.dc"), cfg.BlockSize, 0)
	if err != nil {
		return v, err
	}
	defer st.Close()
	tree, err := core.NewDurable(st, schema, cfg, filepath.Join(dir, "idx"))
	if err != nil {
		return v, err
	}

	stop := make(chan struct{})
	var ckptErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			var err error
			if mode == "sync_flush" {
				err = tree.FlushSync()
			} else {
				err = tree.Checkpoint(context.Background())
			}
			if err != nil {
				ckptErr = err
				return
			}
		}
	}()

	lat := make([]time.Duration, len(recs))
	start := time.Now()
	for i, rec := range recs {
		t0 := time.Now()
		if err := tree.Insert(rec); err != nil {
			close(stop)
			wg.Wait()
			tree.Close()
			return v, err
		}
		lat[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if ckptErr != nil {
		tree.Close()
		return v, ckptErr
	}
	m := tree.Metrics()
	if err := tree.Close(); err != nil {
		return v, err
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Microsecond)
	}
	v = CheckpointVariant{
		Mode:               mode,
		Records:            len(recs),
		Checkpoints:        m.Checkpoints,
		Seconds:            elapsed.Seconds(),
		InsertsPerSec:      float64(len(recs)) / elapsed.Seconds(),
		P50InsertUS:        pct(0.50),
		P99InsertUS:        pct(0.99),
		MaxInsertUS:        float64(lat[len(lat)-1]) / float64(time.Microsecond),
		WriterStallSeconds: m.CheckpointWriterStallSeconds,
		PagesWritten:       m.CheckpointPagesWritten,
		RequeuedNodes:      m.CheckpointRequeuedNodes,
	}
	return v, nil
}
